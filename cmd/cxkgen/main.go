// Command cxkgen emits one of the synthetic evaluation corpora as XML files
// plus a labels.tsv with the three reference classifications, so the
// datasets can be inspected or fed to cxkcluster — and/or streams the
// generated collection through the ingestion pipeline to a preprocessed
// corpus gob ready for cxkcluster/cxkpeer, with no XML round-trip.
//
// Usage:
//
//	cxkgen -dataset dblp [-docs 240] [-seed 424242] -out ./corpus
//	cxkgen -dataset ieee -corpus ieee.gob -kind hybrid -out ""
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xmlclust/internal/corpus"
	"xmlclust/internal/dataset"
	"xmlclust/internal/tuple"
	"xmlclust/internal/xmltree"
)

func main() {
	var (
		name    = flag.String("dataset", "dblp", "corpus: dblp | ieee | shakespeare | wikipedia")
		docs    = flag.Int("docs", 0, "number of documents (0 = corpus default)")
		seed    = flag.Int64("seed", 424242, "generation seed")
		out     = flag.String("out", "corpus", "output directory for XML + labels.tsv (\"\" = skip XML emission)")
		gobOut  = flag.String("corpus", "", "also stream the collection through the ingestion pipeline and save the preprocessed corpus gob here")
		kind    = flag.String("kind", "hybrid", "reference classification for -corpus labels: structure | content | hybrid")
		maxTup  = flag.Int("maxtuples", 0, "cap on tree tuples per document for -corpus (0 = default)")
		ingestW = flag.Int("ingest-workers", 0, "parse/extract workers for -corpus (0 = one per CPU); the corpus is identical for any value")
	)
	flag.Parse()

	gen, ok := dataset.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q (have: %v)", *name, dataset.Names()))
	}
	if *out == "" && *gobOut == "" {
		fatal(fmt.Errorf("nothing to do: pass -out for XML files and/or -corpus for a preprocessed gob"))
	}
	col := gen(dataset.Spec{Docs: *docs, Seed: *seed})

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		labels, err := os.Create(filepath.Join(*out, "labels.tsv"))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(labels, "file\tstructure\tcontent\thybrid")
		for i, tree := range col.Trees {
			fn := fmt.Sprintf("%s-%04d.xml", col.Name, i)
			f, err := os.Create(filepath.Join(*out, fn))
			if err != nil {
				fatal(err)
			}
			if err := xmltree.Render(f, tree); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(labels, "%s\t%d\t%d\t%d\n",
				fn, col.StructLabels[i], col.ContentLabels[i], col.HybridLabels[i])
		}
		if err := labels.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d documents (%s: %d structural × %d content → %d hybrid classes) to %s\n",
			len(col.Trees), col.Name, col.NumStruct, col.NumContent, col.NumHybrid, *out)
	}

	if *gobOut != "" {
		ck, err := classKind(*kind)
		if err != nil {
			fatal(err)
		}
		c, stats, err := corpus.Build(col.Source(ck), corpus.Options{
			Tuple:   tuple.Options{MaxTuplesPerTree: *maxTup},
			Workers: *ingestW,
		})
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*gobOut)
		if err != nil {
			fatal(err)
		}
		if err := c.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("ingested %s; saved %s-labeled corpus to %s\n", stats.String(), ck, *gobOut)
	}
}

func classKind(s string) (dataset.ClassKind, error) {
	switch s {
	case "structure":
		return dataset.ByStructure, nil
	case "content":
		return dataset.ByContent, nil
	case "hybrid":
		return dataset.ByHybrid, nil
	}
	return 0, fmt.Errorf("unknown -kind %q (structure | content | hybrid)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkgen:", err)
	os.Exit(1)
}
