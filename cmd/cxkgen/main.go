// Command cxkgen emits one of the synthetic evaluation corpora as XML files
// plus a labels.tsv with the three reference classifications, so the
// datasets can be inspected or fed to cxkcluster.
//
// Usage:
//
//	cxkgen -dataset dblp [-docs 240] [-seed 424242] -out ./corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xmlclust/internal/dataset"
	"xmlclust/internal/xmltree"
)

func main() {
	var (
		name = flag.String("dataset", "dblp", "corpus: dblp | ieee | shakespeare | wikipedia")
		docs = flag.Int("docs", 0, "number of documents (0 = corpus default)")
		seed = flag.Int64("seed", 424242, "generation seed")
		out  = flag.String("out", "corpus", "output directory")
	)
	flag.Parse()

	gen, ok := dataset.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown dataset %q (have: %v)", *name, dataset.Names()))
	}
	col := gen(dataset.Spec{Docs: *docs, Seed: *seed})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	labels, err := os.Create(filepath.Join(*out, "labels.tsv"))
	if err != nil {
		fatal(err)
	}
	defer labels.Close()
	fmt.Fprintln(labels, "file\tstructure\tcontent\thybrid")
	for i, tree := range col.Trees {
		fn := fmt.Sprintf("%s-%04d.xml", col.Name, i)
		f, err := os.Create(filepath.Join(*out, fn))
		if err != nil {
			fatal(err)
		}
		if err := xmltree.Render(f, tree); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(labels, "%s\t%d\t%d\t%d\n",
			fn, col.StructLabels[i], col.ContentLabels[i], col.HybridLabels[i])
	}
	fmt.Printf("wrote %d documents (%s: %d structural × %d content → %d hybrid classes) to %s\n",
		len(col.Trees), col.Name, col.NumStruct, col.NumContent, col.NumHybrid, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkgen:", err)
	os.Exit(1)
}
