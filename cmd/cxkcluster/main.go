// Command cxkcluster clusters a collection of XML documents with CXK-means
// and prints the per-document cluster assignment.
//
// Usage:
//
//	cxkcluster -k 8 [-f 0.5] [-gamma 0.7] [-peers 4] [-seed 1] [-tcp] sources...
//
// Each argument is an XML file, a directory (walked recursively for *.xml)
// or a tar/tar.gz archive of XML documents. Ingestion is streaming: the
// pipeline holds O(-ingest-workers) parsed trees at any instant, so corpus
// size is bounded by the transactional model, not by the XML.
//
// The run is cancellable: SIGINT/SIGTERM (Ctrl-C) aborts the job at the
// next clean round boundary. -progress streams round-by-round events to
// stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"xmlclust"
)

func main() {
	var (
		k        = flag.Int("k", 4, "number of clusters")
		f        = flag.Float64("f", 0.5, "structure/content balance f ∈ [0,1]")
		gamma    = flag.Float64("gamma", 0.7, "γ-matching threshold ∈ [0,1]")
		peers    = flag.Int("peers", 1, "number of P2P nodes (1 = centralized)")
		workers  = flag.Int("workers", 0, "worker goroutines per peer (0 = one per CPU, 1 = serial); output is identical for any value")
		ingestW  = flag.Int("ingest-workers", 0, "parse/extract workers for ingestion (0 = one per CPU, 1 = serial); the corpus is identical for any value")
		seed     = flag.Int64("seed", 1, "random seed")
		tcp      = flag.Bool("tcp", false, "run peers over loopback TCP")
		unequal  = flag.Bool("unequal", false, "skewed data distribution (half the peers hold twice the data)")
		maxTup   = flag.Int("maxtuples", 0, "cap on tree tuples per document (0 = default)")
		verbose  = flag.Bool("v", false, "print per-transaction assignments")
		progress = flag.Bool("progress", false, "stream per-round progress events to stderr")
		noIndex  = flag.Bool("no-rep-index", false, "disable the inverted representative index and scan all representatives per assignment (output is identical either way)")
		noDelta  = flag.Bool("no-delta-rounds", false, "disable the cross-round delta engine and recompute every round from scratch (output is identical either way)")
		saveTo   = flag.String("save", "", "write the preprocessed corpus to this file after building")
		loadFm   = flag.String("load", "", "load a preprocessed corpus instead of parsing XML")
	)
	flag.Parse()
	if flag.NArg() == 0 && *loadFm == "" {
		fmt.Fprintln(os.Stderr, "usage: cxkcluster [flags] dir-or-file-or-archive...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *loadFm != "" {
		// A loaded corpus is already preprocessed: silently dropping the
		// preprocessing knobs (or extra XML sources) would run with settings
		// other than the ones the user asked for.
		switch {
		case flag.NArg() > 0:
			fatal(fmt.Errorf("-load is exclusive with XML sources (got %v); preprocess them into the corpus first", flag.Args()))
		case *ingestW != 0:
			fatal(errors.New("-ingest-workers applies to XML ingestion and has no effect with -load"))
		case *maxTup != 0:
			fatal(errors.New("-maxtuples applies to XML ingestion and has no effect with -load; rebuild the corpus to change it"))
		}
	}

	var corpus *xmlclust.Corpus
	var docNames []string
	if *loadFm != "" {
		f, err := os.Open(*loadFm)
		if err != nil {
			fatal(err)
		}
		corpus, err = xmlclust.LoadCorpus(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded corpus: %d transactions, %d items, vocabulary %d\n",
			len(corpus.Transactions), corpus.Items.Len(), corpus.Terms.Len())
	} else {
		srcs := make([]xmlclust.Source, 0, flag.NArg())
		for _, a := range flag.Args() {
			src, err := xmlclust.OpenSource(a)
			if err != nil {
				fatal(err)
			}
			srcs = append(srcs, namedSource{src, &docNames})
		}
		var stats xmlclust.IngestStats
		var err error
		corpus, stats, err = xmlclust.BuildCorpusFromSource(
			xmlclust.MultiSource(srcs...),
			xmlclust.CorpusOptions{MaxTuplesPerTree: *maxTup, IngestWorkers: *ingestW},
		)
		if err != nil {
			fatal(err)
		}
		if stats.Docs == 0 {
			fatal(fmt.Errorf("no XML documents found in %v", flag.Args()))
		}
		fmt.Println(stats.String())
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fatal(err)
		}
		if err := xmlclust.SaveCorpus(f, corpus); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved corpus to %s\n", *saveTo)
	}

	// Ctrl-C / SIGTERM cancels the clustering job at a clean round
	// boundary. Installed only now: the ingestion above does not watch a
	// context, so hooking signals earlier would swallow Ctrl-C for the
	// whole ingest instead of keeping the default kill behavior there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		fatal(err)
	}
	var events func(xmlclust.Event)
	if *progress {
		events = progressPrinter()
	}
	indexMode := xmlclust.RepIndexAuto
	if *noIndex {
		indexMode = xmlclust.RepIndexOff
	}
	deltaMode := xmlclust.DeltaRoundsAuto
	if *noDelta {
		deltaMode = xmlclust.DeltaRoundsOff
	}
	res, err := eng.Cluster(ctx, xmlclust.ClusterOptions{
		K: *k, F: *f, Gamma: *gamma, Peers: *peers, Workers: *workers,
		Seed: *seed, UseTCP: *tcp, UnequalSplit: *unequal,
		IndexReps: indexMode, DeltaRounds: deltaMode, Events: events,
	})
	if errors.Is(err, xmlclust.ErrCanceled) {
		fmt.Fprintln(os.Stderr, "cxkcluster: interrupted, run aborted at a round boundary")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("clustered in %d rounds, wall %v", res.Rounds, res.WallTime.Round(1e6))
	if *peers > 1 {
		fmt.Printf(", traffic %d msgs / %d bytes", res.TrafficMsgs, res.TrafficBytes)
	}
	fmt.Println()

	docCluster := xmlclust.DocumentClusters(corpus, res.Assign)
	byCluster := map[int][]string{}
	for doc, cl := range docCluster {
		name := fmt.Sprintf("document %d", doc)
		if doc < len(docNames) {
			name = docNames[doc]
		}
		byCluster[cl] = append(byCluster[cl], name)
	}
	ids := make([]int, 0, len(byCluster))
	for cl := range byCluster {
		ids = append(ids, cl)
	}
	sort.Ints(ids)
	for _, cl := range ids {
		name := fmt.Sprintf("cluster %d", cl)
		if cl == xmlclust.TrashCluster {
			name = "trash"
		}
		files := byCluster[cl]
		sort.Strings(files)
		fmt.Printf("%s (%d documents):\n", name, len(files))
		for _, p := range files {
			fmt.Printf("  %s\n", p)
		}
	}
	if *verbose {
		fmt.Println("per-transaction assignments:")
		for i, tr := range corpus.Transactions {
			fmt.Printf("  doc %d tuple %d → %d\n", tr.Doc, tr.TupleIndex, res.Assign[i])
		}
	}
}

// progressPrinter renders the engine's event stream as one stderr line per
// completed peer round plus start/termination markers. Events arrive
// serialized, so no extra locking is needed. The index and delta counters on
// events are run-wide running totals; the printer differences consecutive
// events to report the work done (and skipped) since the last line.
func progressPrinter() func(xmlclust.Event) {
	var lastCand, lastSkip, lastReused, lastDocSkip int64
	return func(ev xmlclust.Event) {
		switch ev.Kind {
		case xmlclust.EventRoundStart:
			if ev.Peer == 0 { // one marker per round, not one per peer
				fmt.Fprintf(os.Stderr, "round %d …\n", ev.Round+1)
			}
		case xmlclust.EventRoundEnd:
			line := fmt.Sprintf("  peer %d round %d: objective %.4f, sent %d msgs / %d B",
				ev.Peer, ev.Round+1, ev.Objective, ev.SentMsgs, ev.SentBytes)
			if dc, ds := ev.IndexCandidates-lastCand, ev.IndexSkipped-lastSkip; dc+ds > 0 {
				line += fmt.Sprintf(", reps evaluated %d / skipped %d", dc, ds)
				lastCand, lastSkip = ev.IndexCandidates, ev.IndexSkipped
			}
			if dr, dd := ev.RepsReused-lastReused, ev.DocsSkipped-lastDocSkip; dr+dd > 0 {
				line += fmt.Sprintf(", delta: %d reps reused / %d docs skipped", dr, dd)
				lastReused, lastDocSkip = ev.RepsReused, ev.DocsSkipped
			}
			fmt.Fprintf(os.Stderr, "%s, %v elapsed\n", line, ev.Elapsed.Round(time.Millisecond))
		case xmlclust.EventDone:
			if ev.Peer == -1 {
				fmt.Fprintf(os.Stderr, "done: %d rounds in %v (kernel: %d matrix rows pruned, %d warm-scratch reuses; index: %d reps evaluated, %d skipped; delta: %d reps reused, %d docs skipped, %d B saved)\n",
					ev.Round, ev.Elapsed.Round(time.Millisecond), ev.PrunedRows, ev.ScratchReuses,
					ev.IndexCandidates, ev.IndexSkipped, ev.RepsReused, ev.DocsSkipped, ev.DeltaRepBytes)
			}
		}
	}
}

// namedSource records document names as they stream through, so the final
// report can print file names instead of document ids. Names are recorded
// in source order, which is the document-id order of the merge.
type namedSource struct {
	xmlclust.Source
	names *[]string
}

func (s namedSource) Next() (*xmlclust.Document, error) {
	d, err := s.Source.Next()
	if err == nil {
		*s.names = append(*s.names, d.Name)
	}
	return d, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkcluster:", err)
	os.Exit(1)
}
