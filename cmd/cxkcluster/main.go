// Command cxkcluster clusters a collection of XML documents with CXK-means
// and prints the per-document cluster assignment.
//
// Usage:
//
//	cxkcluster -k 8 [-f 0.5] [-gamma 0.7] [-peers 4] [-seed 1] [-tcp] sources...
//
// Each argument is an XML file, a directory (walked recursively for *.xml)
// or a tar/tar.gz archive of XML documents. Ingestion is streaming: the
// pipeline holds O(-ingest-workers) parsed trees at any instant, so corpus
// size is bounded by the transactional model, not by the XML.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"xmlclust"
)

func main() {
	var (
		k       = flag.Int("k", 4, "number of clusters")
		f       = flag.Float64("f", 0.5, "structure/content balance f ∈ [0,1]")
		gamma   = flag.Float64("gamma", 0.7, "γ-matching threshold")
		peers   = flag.Int("peers", 1, "number of P2P nodes (1 = centralized)")
		workers = flag.Int("workers", 0, "worker goroutines per peer (0 = one per CPU, 1 = serial); output is identical for any value")
		ingestW = flag.Int("ingest-workers", 0, "parse/extract workers for ingestion (0 = one per CPU, 1 = serial); the corpus is identical for any value")
		seed    = flag.Int64("seed", 1, "random seed")
		tcp     = flag.Bool("tcp", false, "run peers over loopback TCP")
		unequal = flag.Bool("unequal", false, "skewed data distribution (half the peers hold twice the data)")
		maxTup  = flag.Int("maxtuples", 0, "cap on tree tuples per document (0 = default)")
		verbose = flag.Bool("v", false, "print per-transaction assignments")
		saveTo  = flag.String("save", "", "write the preprocessed corpus to this file after building")
		loadFm  = flag.String("load", "", "load a preprocessed corpus instead of parsing XML")
	)
	flag.Parse()
	if flag.NArg() == 0 && *loadFm == "" {
		fmt.Fprintln(os.Stderr, "usage: cxkcluster [flags] dir-or-file-or-archive...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var corpus *xmlclust.Corpus
	var docNames []string
	if *loadFm != "" {
		f, err := os.Open(*loadFm)
		if err != nil {
			fatal(err)
		}
		corpus, err = xmlclust.LoadCorpus(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded corpus: %d transactions, %d items, vocabulary %d\n",
			len(corpus.Transactions), corpus.Items.Len(), corpus.Terms.Len())
	} else {
		srcs := make([]xmlclust.Source, 0, flag.NArg())
		for _, a := range flag.Args() {
			src, err := xmlclust.OpenSource(a)
			if err != nil {
				fatal(err)
			}
			srcs = append(srcs, namedSource{src, &docNames})
		}
		var stats xmlclust.IngestStats
		var err error
		corpus, stats, err = xmlclust.BuildCorpusFromSource(
			xmlclust.MultiSource(srcs...),
			xmlclust.CorpusOptions{MaxTuplesPerTree: *maxTup, IngestWorkers: *ingestW},
		)
		if err != nil {
			fatal(err)
		}
		if stats.Docs == 0 {
			fatal(fmt.Errorf("no XML documents found in %v", flag.Args()))
		}
		fmt.Println(stats.String())
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fatal(err)
		}
		if err := xmlclust.SaveCorpus(f, corpus); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved corpus to %s\n", *saveTo)
	}

	res, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: *k, F: *f, Gamma: *gamma, Peers: *peers, Workers: *workers,
		Seed: *seed, UseTCP: *tcp, UnequalSplit: *unequal,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("clustered in %d rounds, wall %v", res.Rounds, res.WallTime.Round(1e6))
	if *peers > 1 {
		fmt.Printf(", traffic %d msgs / %d bytes", res.TrafficMsgs, res.TrafficBytes)
	}
	fmt.Println()

	docCluster := xmlclust.DocumentClusters(corpus, res.Assign)
	byCluster := map[int][]string{}
	for doc, cl := range docCluster {
		name := fmt.Sprintf("document %d", doc)
		if doc < len(docNames) {
			name = docNames[doc]
		}
		byCluster[cl] = append(byCluster[cl], name)
	}
	ids := make([]int, 0, len(byCluster))
	for cl := range byCluster {
		ids = append(ids, cl)
	}
	sort.Ints(ids)
	for _, cl := range ids {
		name := fmt.Sprintf("cluster %d", cl)
		if cl == xmlclust.TrashCluster {
			name = "trash"
		}
		files := byCluster[cl]
		sort.Strings(files)
		fmt.Printf("%s (%d documents):\n", name, len(files))
		for _, p := range files {
			fmt.Printf("  %s\n", p)
		}
	}
	if *verbose {
		fmt.Println("per-transaction assignments:")
		for i, tr := range corpus.Transactions {
			fmt.Printf("  doc %d tuple %d → %d\n", tr.Doc, tr.TupleIndex, res.Assign[i])
		}
	}
}

// namedSource records document names as they stream through, so the final
// report can print file names instead of document ids. Names are recorded
// in source order, which is the document-id order of the merge.
type namedSource struct {
	xmlclust.Source
	names *[]string
}

func (s namedSource) Next() (*xmlclust.Document, error) {
	d, err := s.Source.Next()
	if err == nil {
		*s.names = append(*s.names, d.Name)
	}
	return d, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkcluster:", err)
	os.Exit(1)
}
