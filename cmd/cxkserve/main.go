// Command cxkserve runs the incremental clustering service as an HTTP
// daemon: it holds a clustered corpus in memory and lets clients add,
// remove, classify and query XML documents while a background maintenance
// loop keeps the clustering fresh (see internal/serve for the model and the
// equivalence guarantee against a from-scratch run).
//
// Usage:
//
//	cxkserve -listen :8080 -k 8 [-corpus seed-dir/]
//
// -corpus optionally seeds the service before the listener comes up: the
// path is walked like cxkcluster's ingest (directory of *.xml, tar[.gz]
// archive, or single file), every document is added, and one initial
// refresh clusters the seed collection. Without it the service starts
// empty and clusters once documents arrive over HTTP.
//
// Endpoints (JSON):
//
//	POST   /v1/documents       {"name","xml","label"?} → add + assign
//	GET    /v1/documents       list all documents (tombstones included)
//	GET    /v1/documents/{id}  one document
//	DELETE /v1/documents/{id}  remove (takes effect fully at next refresh)
//	POST   /v1/classify        {"xml"} → read-only classification
//	GET    /v1/clusters/{id}   members of a cluster ("trash" for the trash)
//	GET    /v1/stats           service statistics
//	POST   /v1/maintenance     run one maintenance round now
//	POST   /v1/refresh         force a full representative refresh now
//	GET    /healthz            liveness probe
//
// SIGINT/SIGTERM drains gracefully: in-flight requests finish, the
// maintenance loop stops, and the process exits 130 on interrupt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // handlers exposed only behind -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlclust"
	"xmlclust/internal/serve"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "HTTP listen address")
		corpusF = flag.String("corpus", "", "optional seed collection: directory / tar[.gz] archive / XML file")
		k       = flag.Int("k", 4, "number of clusters")
		f       = flag.Float64("f", 0.5, "structure/content balance f ∈ [0,1]")
		gamma   = flag.Float64("gamma", 0.7, "γ-matching threshold")
		seed    = flag.Int64("seed", 1, "random seed of every refresh run")
		workers = flag.Int("workers", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
		rounds  = flag.Int("maxrounds", 0, "bound on clustering rounds per refresh (0 = default)")
		maxTup  = flag.Int("maxtuples", 0, "cap on tree tuples per document (0 = default)")
		drift   = flag.Float64("drift", 0, "dirty-transaction fraction that triggers a refresh (0 = default 0.25, negative = refresh on any drift)")
		every   = flag.Duration("maintenance", serve.DefaultMaintenanceInterval, "maintenance loop interval")
		quiet   = flag.Bool("q", false, "suppress the progress log on stderr")
		noIndex = flag.Bool("no-rep-index", false, "disable the inverted representative index for all assignment scans (output is identical either way)")
		noDelta = flag.Bool("no-delta-rounds", false, "disable the cross-round delta engine in refresh runs (output is identical either way)")
		pprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service listener")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "cxkserve: "+format+"\n", args...)
		}
	}
	indexMode := xmlclust.RepIndexAuto
	if *noIndex {
		indexMode = xmlclust.RepIndexOff
	}
	deltaMode := xmlclust.DeltaRoundsAuto
	if *noDelta {
		deltaMode = xmlclust.DeltaRoundsOff
	}
	svc, err := serve.NewService(serve.Config{
		K: *k, F: *f, Gamma: *gamma, Seed: *seed,
		Workers: *workers, MaxRounds: *rounds, MaxTuplesPerTree: *maxTup,
		DriftThreshold: *drift, IndexReps: indexMode, DeltaRounds: deltaMode,
		OnMaintenance: func(rs serve.RoundStats, err error) {
			switch {
			case err != nil:
				logf("maintenance: %v", err)
			case rs.Refreshed:
				logf("maintenance: %d dirty docs, drift %.3f → refreshed in %d rounds",
					rs.DirtyDocs, rs.Drift, rs.RefreshRounds)
			case rs.DirtyDocs > 0:
				logf("maintenance: re-relocated %d dirty docs (%d reassigned), drift %.3f",
					rs.DirtyDocs, rs.Reassigned, rs.Drift)
			}
		},
	})
	if err != nil {
		fatal(err)
	}

	// Seed ingest runs before signal handling is installed, mirroring
	// cxkpeer: the ingest does not watch a context, so hooking signals
	// earlier would make Ctrl-C a no-op until the listener is up.
	if *corpusF != "" {
		n, err := seedService(svc, *corpusF)
		if err != nil {
			fatal(err)
		}
		if err := svc.Refresh(context.Background()); err != nil {
			fatal(err)
		}
		st := svc.Stats()
		logf("seeded %d documents from %s: %d transactions, cluster sizes %v, %d trash",
			n, *corpusF, st.LiveTxns, st.ClusterSizes, st.Trash)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := http.Handler(serve.NewHandler(svc))
	if *pprof {
		// The blank net/http/pprof import registers its handlers on the
		// default mux; mount that mux under /debug/pprof/ so a live round
		// loop can be CPU/heap-profiled, and keep the service API at /.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	server := &http.Server{Addr: *listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	go svc.Run(ctx, *every)
	logf("listening on %s (k=%d f=%g gamma=%g seed=%d, maintenance every %v)",
		*listen, *k, *f, *gamma, *seed, *every)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second Ctrl-C kills hard
	logf("shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cxkserve: shutdown:", err)
		os.Exit(1)
	}
	os.Exit(130)
}

// seedService streams every document of the source into the service as raw
// XML bytes, so the retained-bytes refresh path sees exactly the on-disk
// input. Returns the number of documents added.
func seedService(svc *serve.Service, path string) (int, error) {
	src, err := xmlclust.OpenSource(path)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	n := 0
	for {
		doc, err := src.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if doc.Open == nil {
			return n, fmt.Errorf("seed document %q yields a pre-parsed tree; cxkserve needs raw XML", doc.Name)
		}
		rc, err := doc.Open()
		if err != nil {
			return n, err
		}
		raw, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return n, err
		}
		if _, err := svc.AddDocument(context.Background(), doc.Name, raw, doc.Label); err != nil {
			return n, fmt.Errorf("seed document %q: %w", doc.Name, err)
		}
		n++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkserve:", err)
	os.Exit(1)
}
