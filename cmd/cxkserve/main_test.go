package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// e2eDocs is a small two-topic collection, separable at k=2 with γ=0.3
// (cross-topic item similarity is zero there, so any seed separates it).
func e2eDocs() []string {
	var docs []string
	for i := 0; i < 4; i++ {
		docs = append(docs, fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i))
	}
	for i := 0; i < 4; i++ {
		docs = append(docs, fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i))
	}
	return docs
}

// buildServeBinary compiles cxkserve into dir (skipping when no toolchain).
func buildServeBinary(t *testing.T, dir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := filepath.Join(dir, "cxkserve")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cxkserve: %v\n%s", err, out)
	}
	return bin
}

// reserveAddr picks a loopback address that is free right now.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("cxkserve never became healthy")
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestE2EServeHTTP drives a real cxkserve process over HTTP: seed a corpus
// directory, start the daemon, add more documents, refresh, classify a
// held-out document, query stats, and shut the process down with SIGINT.
func TestE2EServeHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process e2e in -short mode")
	}
	dir := t.TempDir()
	bin := buildServeBinary(t, dir)
	docs := e2eDocs()

	// Seed directory with the first six documents; the last two arrive over
	// HTTP. Names are zero-padded so the lexical walk preserves add order.
	seedDir := filepath.Join(dir, "seed")
	if err := os.Mkdir(seedDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs[:6] {
		if err := os.WriteFile(filepath.Join(seedDir, fmt.Sprintf("doc%02d.xml", i)), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	addr := reserveAddr(t)
	base := "http://" + addr
	cmd := exec.Command(bin,
		"-listen", addr,
		"-corpus", seedDir,
		"-k", "2", "-f", "0.5", "-gamma", "0.3", "-seed", "7",
		"-maintenance", "100ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	waitHealthy(t, base)

	// The seed ingest must have clustered the six documents already.
	var st struct {
		LiveDocs  int   `json:"live_docs"`
		Trash     int   `json:"trash"`
		Refreshes int   `json:"refreshes"`
		Sizes     []int `json:"cluster_sizes"`
	}
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.LiveDocs != 6 || st.Refreshes != 1 || st.Trash != 0 {
		t.Fatalf("stats after seed ingest: %+v", st)
	}

	// Add the remaining documents over HTTP and force a refresh.
	for i, doc := range docs[6:] {
		var info struct {
			ID int `json:"id"`
		}
		if code := postJSON(t, base+"/v1/documents", map[string]any{
			"name": fmt.Sprintf("doc%02d.xml", 6+i), "xml": doc,
		}, &info); code != http.StatusCreated {
			t.Fatalf("add doc %d: status %d", 6+i, code)
		}
		if info.ID != 6+i {
			t.Fatalf("doc %d got id %d", 6+i, info.ID)
		}
	}
	if code := postJSON(t, base+"/v1/refresh", nil, &st); code != http.StatusOK {
		t.Fatalf("refresh: status %d", code)
	}
	if st.LiveDocs != 8 || st.Trash != 0 {
		t.Fatalf("stats after refresh: %+v", st)
	}
	for _, n := range st.Sizes {
		if n != 4 {
			t.Fatalf("cluster sizes %v, want [4 4]", st.Sizes)
		}
	}

	// A held-out report must classify with the stored reports (doc 4 is a
	// report in the seed set).
	var cl struct {
		Cluster int `json:"cluster"`
	}
	if code := postJSON(t, base+"/v1/classify", map[string]any{
		"xml": `<db><report key="rx"><editor>bob dylan</editor><heading>routing wireless networks holdout</heading><lab>NETLAB</lab></report></db>`,
	}, &cl); code != http.StatusOK {
		t.Fatalf("classify: status %d", code)
	}
	var report struct {
		Cluster int `json:"cluster"`
	}
	resp, err = http.Get(base + "/v1/documents/4")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cl.Cluster != report.Cluster {
		t.Fatalf("held-out report classified to %d, stored reports sit in %d", cl.Cluster, report.Cluster)
	}

	// Graceful shutdown: SIGINT drains and exits 130.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	var exitErr *exec.ExitError
	if !asExitError(err, &exitErr) || exitErr.ExitCode() != 130 {
		t.Fatalf("SIGINT exit: %v, want exit code 130", err)
	}
}

func asExitError(err error, out **exec.ExitError) bool {
	if e, ok := err.(*exec.ExitError); ok {
		*out = e
		return true
	}
	return false
}
