package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"xmlclust"
	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
	"xmlclust/internal/sim"
)

// kernelBench is the machine-readable record the kernel experiment emits
// with -json: the similarity-kernel micro numbers (columnar warm/cold and
// the frozen seed baseline on the same pair stream), the derived
// speedup-vs-seed ratio the CI regression smoke gates on, and the
// F-measure of a full clustering run on the same corpus — so a kernel
// "win" that silently changed the answer is visible in the same artifact.
type kernelBench struct {
	Experiment    string  `json:"experiment"`
	Dataset       string  `json:"dataset"`
	Docs          int     `json:"docs"`
	Transactions  int     `json:"transactions"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	WarmNsPerOp   float64 `json:"warm_ns_per_op"`
	WarmAllocs    float64 `json:"warm_allocs_per_op"`
	ColdNsPerOp   float64 `json:"cold_ns_per_op"`
	SeedNsPerOp   float64 `json:"seed_ns_per_op"`
	SeedAllocs    float64 `json:"seed_allocs_per_op"`
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
	FMeasure      float64 `json:"f_measure"`
}

// runKernel measures the transaction-similarity kernel on a generated
// corpus: the columnar warm path (one reused Scratch), the cold path (a
// fresh Scratch per evaluation) and the frozen seed implementation, all on
// the identical transaction pair stream, then runs one full clustering to
// attach an accuracy figure. It first re-verifies kernel-vs-seed equality
// on every measured pair — a throughput number for a kernel that diverged
// would be meaningless. With minSpeedup > 0 it exits non-zero when
// speedup-vs-seed falls below the bar (the CI bench-regression smoke).
func runKernel(ds string, scale experiments.Scale, workers int, jsonPath string, minSpeedup float64) error {
	gen, _ := dataset.ByName(ds)
	col := gen(dataset.Spec{Docs: scale.Docs[ds], Seed: experiments.DataSeed})
	corpus := col.BuildCorpus(dataset.ByHybrid, scale.MaxTuples, workers)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.8})
	trs := corpus.Transactions
	if len(trs) < 2 {
		return fmt.Errorf("kernel experiment needs ≥2 transactions, corpus has %d", len(trs))
	}

	// Correctness gate before any timing: kernel == seed on the pair stream.
	sc := sim.NewScratch()
	for i, tr1 := range trs {
		tr2 := trs[(i+7)%len(trs)]
		if got, want := cx.Transactions(tr1, tr2, sc), sim.SeedTransactions(cx, tr1, tr2); got != want {
			return fmt.Errorf("kernel diverged from seed on pair (%d,%d): %v vs %v", i, (i+7)%len(trs), got, want)
		}
	}

	pairStream := func(run func(tr1, tr2 *xmlclust.Transaction)) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(trs[i%len(trs)], trs[(i+7)%len(trs)])
			}
		}
	}
	warm := testing.Benchmark(pairStream(func(tr1, tr2 *xmlclust.Transaction) {
		cx.Transactions(tr1, tr2, sc)
	}))
	cold := testing.Benchmark(pairStream(func(tr1, tr2 *xmlclust.Transaction) {
		cx.Transactions(tr1, tr2, sim.NewScratch())
	}))
	seed := testing.Benchmark(pairStream(func(tr1, tr2 *xmlclust.Transaction) {
		sim.SeedTransactions(cx, tr1, tr2)
	}))

	k := col.K(dataset.ByHybrid)
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		return err
	}
	res, err := eng.Cluster(context.Background(), xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.8, Seed: scale.Seeds[0], Workers: workers,
	})
	if err != nil {
		return err
	}
	scores := xmlclust.Evaluate(xmlclust.Labels(corpus), res.Assign, k)

	r := kernelBench{
		Experiment:    "kernel",
		Dataset:       ds,
		Docs:          scale.Docs[ds],
		Transactions:  len(trs),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		WarmNsPerOp:   float64(warm.NsPerOp()),
		WarmAllocs:    float64(warm.AllocsPerOp()),
		ColdNsPerOp:   float64(cold.NsPerOp()),
		SeedNsPerOp:   float64(seed.NsPerOp()),
		SeedAllocs:    float64(seed.AllocsPerOp()),
		SpeedupVsSeed: float64(seed.NsPerOp()) / float64(warm.NsPerOp()),
		FMeasure:      scores.FMeasure,
	}
	fmt.Printf("Similarity kernel — columnar vs seed (%s, hybrid, f=0.5 γ=0.8, %d txns)\n", ds, len(trs))
	fmt.Printf("%-22s %12s %12s\n", "variant", "ns/op", "allocs/op")
	fmt.Printf("%-22s %12d %12d\n", "columnar warm", warm.NsPerOp(), warm.AllocsPerOp())
	fmt.Printf("%-22s %12d %12d\n", "columnar cold", cold.NsPerOp(), cold.AllocsPerOp())
	fmt.Printf("%-22s %12d %12d\n", "seed (pointer-based)", seed.NsPerOp(), seed.AllocsPerOp())
	fmt.Printf("speedup-vs-seed %.2fx, clustering F-measure %.3f\n", r.SpeedupVsSeed, r.FMeasure)

	if jsonPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if minSpeedup > 0 && r.SpeedupVsSeed < minSpeedup {
		return fmt.Errorf("speedup-vs-seed %.2fx below the %.2fx bar", r.SpeedupVsSeed, minSpeedup)
	}
	return nil
}
