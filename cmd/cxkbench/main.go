// Command cxkbench runs the paper's evaluation experiments and prints the
// tables and figure series (Sect. 5 of the paper; see EXPERIMENTS.md).
//
// Usage:
//
//	cxkbench -exp fig7                # Fig. 7 on all four corpora
//	cxkbench -exp fig8 -dataset DBLP  # one Fig. 8 panel
//	cxkbench -exp table1|table2|gamma|rules|cache|all
//	cxkbench -scale paper             # paper-geometry profile (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig7 | fig8 | table1 | table2 | gamma | rules | cache | workers | semantics | cost | all")
		ds      = flag.String("dataset", "", "restrict to one corpus (fig7/fig8/gamma/workers)")
		scaleFl = flag.String("scale", "quick", "profile: quick | paper")
		workers = flag.Int("workers", 1, "intra-peer worker goroutines, also used as ingest workers for corpus preparation (0 = one per CPU); results are identical for any value")
	)
	flag.Parse()

	scale := experiments.QuickScale()
	if *scaleFl == "paper" {
		scale = experiments.PaperScale()
	}
	scale.Workers = *workers
	fmt.Printf("profile %q: docs=%v figMs=%v tableMs=%v seeds=%v workers=%d\n\n",
		scale.Name, scale.Docs, scale.FigMs, scale.TableMs, scale.Seeds, scale.Workers)

	want := func(name string) bool { return *exp == "all" || *exp == name }
	datasets := dataset.Names()
	if *ds != "" {
		datasets = []string{canonical(*ds)}
	}

	if want("fig7") {
		for _, d := range datasets {
			res, err := experiments.Fig7(d, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("table1") {
		for _, s := range []experiments.Setting{experiments.ContentDriven, experiments.HybridDriven, experiments.StructureDriven} {
			res, err := experiments.AccuracyTable(s, false, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("table2") {
		for _, s := range []experiments.Setting{experiments.ContentDriven, experiments.HybridDriven, experiments.StructureDriven} {
			res, err := experiments.AccuracyTable(s, true, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("fig8") {
		fig8Sets := datasets
		if *ds == "" {
			fig8Sets = []string{"DBLP", "IEEE"} // the paper's two panels
		}
		for _, d := range fig8Sets {
			res, err := experiments.Fig8(d, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("gamma") {
		gammaSets := datasets
		if *ds == "" {
			gammaSets = []string{"DBLP"}
		}
		for _, d := range gammaSets {
			kind := dataset.ByHybrid
			if d == "Wikipedia" {
				kind = dataset.ByContent
			}
			pts, err := experiments.GammaSweep(d, kind, 0.5, []float64{0.5, 0.6, 0.7, 0.8, 0.9}, scale, scale.Seeds[0])
			check(err)
			experiments.WriteGammaSweep(os.Stdout, d, pts)
			fmt.Println()
		}
	}
	if want("rules") {
		pts, err := experiments.ReturnRuleAblation("DBLP", dataset.ByHybrid, scale, scale.Seeds[0])
		check(err)
		experiments.WriteRuleAblation(os.Stdout, "DBLP", pts)
		fmt.Println()
	}
	if want("cache") {
		pts, err := experiments.PathCacheAblation("DBLP", scale, scale.Seeds[0])
		check(err)
		experiments.WriteCacheAblation(os.Stdout, "DBLP", pts)
		fmt.Println()
	}
	if want("workers") {
		wSets := datasets
		if *ds == "" {
			wSets = []string{"DBLP"}
		}
		for _, d := range wSets {
			pts, err := experiments.WorkersAblation(d, []int{1, 2, 4, 8}, scale, scale.Seeds[0])
			check(err)
			experiments.WriteWorkersAblation(os.Stdout, d, pts)
			fmt.Println()
		}
	}
	if want("semantics") {
		pts, err := experiments.SemanticsAblation(scale, scale.Seeds[0])
		check(err)
		experiments.WriteSemanticsAblation(os.Stdout, pts)
		fmt.Println()
	}
	if want("cost") {
		res, err := experiments.CostModel("DBLP", scale)
		check(err)
		res.Write(os.Stdout)
		fmt.Println()
	}
}

func canonical(name string) string {
	for _, n := range dataset.Names() {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	fmt.Fprintf(os.Stderr, "cxkbench: unknown dataset %q (have %v)\n", name, dataset.Names())
	os.Exit(2)
	return ""
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxkbench:", err)
		os.Exit(1)
	}
}
