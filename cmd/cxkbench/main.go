// Command cxkbench runs the paper's evaluation experiments and prints the
// tables and figure series (Sect. 5 of the paper; see EXPERIMENTS.md).
//
// Usage:
//
//	cxkbench -exp fig7                # Fig. 7 on all four corpora
//	cxkbench -exp fig8 -dataset DBLP  # one Fig. 8 panel
//	cxkbench -exp table1|table2|gamma|rules|cache|sweep|kernel|all
//	cxkbench -scale paper             # paper-geometry profile (slow)
//	cxkbench -exp kernel -json BENCH_kernel.json -min-speedup 1.3
//
// The sweep experiment exercises the public Engine API: one Engine fans an
// f×γ grid over its shared similarity caches (Engine.Sweep), printing the
// per-cell scores and the cache warmth the grid accumulated.
//
// The kernel experiment benchmarks the columnar similarity kernel against
// the frozen seed implementation on one corpus, optionally writing the
// numbers (ns/op, allocs/op, speedup-vs-seed, clustering F-measure) as a
// machine-readable JSON artifact and gating on a minimum speedup — the CI
// bench-regression smoke and the input of the bench trajectory.
//
// The rounds experiment benchmarks the cross-round delta engine (memoized
// representatives, anchored relocation, digest-marker exchange) against
// full per-round recomputation, gates on byte-identical output plus the
// final round's document-skip fraction, and writes BENCH_rounds.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xmlclust"
	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig7 | fig8 | table1 | table2 | gamma | rules | cache | workers | semantics | cost | sweep | kernel | relocate | rounds | all")
		ds      = flag.String("dataset", "", "restrict to one corpus (fig7/fig8/gamma/workers/sweep/kernel)")
		scaleFl = flag.String("scale", "quick", "profile: quick | paper")
		workers = flag.Int("workers", 1, "intra-peer worker goroutines, also used as ingest workers for corpus preparation (0 = one per CPU); results are identical for any value")
		jsonFl  = flag.String("json", "", "write the kernel/relocate/rounds experiment's results as JSON to this path (e.g. BENCH_kernel.json)")
		minSpd  = flag.Float64("min-speedup", 0, "kernel/relocate/rounds experiment: exit non-zero if the gated speedup (vs seed / at k=256 / vs full rounds) falls below this bar (0 = no gate)")
	)
	flag.Parse()
	if *jsonFl != "" {
		// Fail on an unwritable artifact path before burning benchmark time,
		// not after: CI jobs that upload the JSON want the error up front.
		f, err := os.OpenFile(*jsonFl, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			check(fmt.Errorf("cannot write -json artifact: %w", err))
		}
		f.Close()
	}

	scale := experiments.QuickScale()
	if *scaleFl == "paper" {
		scale = experiments.PaperScale()
	}
	scale.Workers = *workers
	fmt.Printf("profile %q: docs=%v figMs=%v tableMs=%v seeds=%v workers=%d\n\n",
		scale.Name, scale.Docs, scale.FigMs, scale.TableMs, scale.Seeds, scale.Workers)

	want := func(name string) bool { return *exp == "all" || *exp == name }
	datasets := dataset.Names()
	if *ds != "" {
		datasets = []string{canonical(*ds)}
	}

	if want("fig7") {
		for _, d := range datasets {
			res, err := experiments.Fig7(d, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("table1") {
		for _, s := range []experiments.Setting{experiments.ContentDriven, experiments.HybridDriven, experiments.StructureDriven} {
			res, err := experiments.AccuracyTable(s, false, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("table2") {
		for _, s := range []experiments.Setting{experiments.ContentDriven, experiments.HybridDriven, experiments.StructureDriven} {
			res, err := experiments.AccuracyTable(s, true, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("fig8") {
		fig8Sets := datasets
		if *ds == "" {
			fig8Sets = []string{"DBLP", "IEEE"} // the paper's two panels
		}
		for _, d := range fig8Sets {
			res, err := experiments.Fig8(d, scale)
			check(err)
			res.Write(os.Stdout)
			fmt.Println()
		}
	}
	if want("gamma") {
		gammaSets := datasets
		if *ds == "" {
			gammaSets = []string{"DBLP"}
		}
		for _, d := range gammaSets {
			kind := dataset.ByHybrid
			if d == "Wikipedia" {
				kind = dataset.ByContent
			}
			pts, err := experiments.GammaSweep(d, kind, 0.5, []float64{0.5, 0.6, 0.7, 0.8, 0.9}, scale, scale.Seeds[0])
			check(err)
			experiments.WriteGammaSweep(os.Stdout, d, pts)
			fmt.Println()
		}
	}
	if want("rules") {
		pts, err := experiments.ReturnRuleAblation("DBLP", dataset.ByHybrid, scale, scale.Seeds[0])
		check(err)
		experiments.WriteRuleAblation(os.Stdout, "DBLP", pts)
		fmt.Println()
	}
	if want("cache") {
		pts, err := experiments.PathCacheAblation("DBLP", scale, scale.Seeds[0])
		check(err)
		experiments.WriteCacheAblation(os.Stdout, "DBLP", pts)
		fmt.Println()
	}
	if want("workers") {
		wSets := datasets
		if *ds == "" {
			wSets = []string{"DBLP"}
		}
		for _, d := range wSets {
			pts, err := experiments.WorkersAblation(d, []int{1, 2, 4, 8}, scale, scale.Seeds[0])
			check(err)
			experiments.WriteWorkersAblation(os.Stdout, d, pts)
			fmt.Println()
		}
	}
	if want("semantics") {
		pts, err := experiments.SemanticsAblation(scale, scale.Seeds[0])
		check(err)
		experiments.WriteSemanticsAblation(os.Stdout, pts)
		fmt.Println()
	}
	if want("cost") {
		res, err := experiments.CostModel("DBLP", scale)
		check(err)
		res.Write(os.Stdout)
		fmt.Println()
	}
	if want("sweep") {
		d := "DBLP"
		if *ds != "" {
			d = canonical(*ds)
		}
		check(runSweep(d, scale, *workers))
		fmt.Println()
	}
	if want("kernel") {
		d := "DBLP"
		if *ds != "" {
			d = canonical(*ds)
		}
		check(runKernel(d, scale, *workers, *jsonFl, *minSpd))
		fmt.Println()
	}
	if want("relocate") {
		d := "DBLP"
		if *ds != "" {
			d = canonical(*ds)
		}
		check(runRelocate(d, scale, *workers, *jsonFl, *minSpd))
		fmt.Println()
	}
	if want("rounds") {
		d := "DBLP"
		if *ds != "" {
			d = canonical(*ds)
		}
		check(runRounds(d, scale, *workers, *jsonFl, *minSpd))
		fmt.Println()
	}
}

// runSweep drives the public Engine.Sweep surface over an f×γ grid on one
// generated corpus: every cell reuses the engine's warm structural caches,
// so the grid's aggregate compute is far below #cells × cold-run cost (see
// BenchmarkSweepWarmVsCold for the tracked number).
func runSweep(ds string, scale experiments.Scale, workers int) error {
	gen, _ := dataset.ByName(ds)
	col := gen(dataset.Spec{Docs: scale.Docs[ds], Seed: experiments.DataSeed})
	corpus := col.BuildCorpus(dataset.ByHybrid, scale.MaxTuples, workers)
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		return err
	}
	spec := xmlclust.SweepSpec{
		Base:   xmlclust.ClusterOptions{K: col.K(dataset.ByHybrid), Seed: scale.Seeds[0], Workers: workers},
		Fs:     []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Gammas: []float64{0.6, 0.7, 0.8},
	}
	t0 := time.Now()
	cells, err := eng.Sweep(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("Engine sweep — f×γ grid (%s, hybrid, centralized, k=%d)\n", ds, spec.Base.K)
	fmt.Printf("%6s %6s %12s %8s %12s %10s %12s\n", "f", "γ", "F-measure", "trash", "wall", "pruned", "warm-reuse")
	for _, c := range cells {
		fmt.Printf("%6.1f %6.1f %12.3f %8.2f %12s %10d %12d\n",
			c.Options.F, c.Options.Gamma, c.Scores.FMeasure, c.Scores.Trash,
			c.Result.WallTime.Round(time.Microsecond), c.Result.PrunedRows, c.Result.ScratchReuses)
	}
	fmt.Printf("%d cells in %v elapsed (%v summed cell wall time); %d structural pair sims cached\n",
		len(cells), time.Since(t0).Round(time.Millisecond),
		xmlclust.SweepDuration(cells).Round(time.Millisecond), eng.CachedPathSims())
	return nil
}

func canonical(name string) string {
	for _, n := range dataset.Names() {
		if strings.EqualFold(n, name) {
			return n
		}
	}
	fmt.Fprintf(os.Stderr, "cxkbench: unknown dataset %q (have %v)\n", name, dataset.Names())
	os.Exit(2)
	return ""
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxkbench:", err)
		os.Exit(1)
	}
}
