package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"xmlclust"
	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
)

// roundsPoint is one collaborative round of the delta-on trajectory run:
// the per-round differences of the run-wide delta counters, showing the
// cross-round caches warming as the clustering converges.
type roundsPoint struct {
	Round      int   `json:"round"`
	RepsReused int64 `json:"reps_reused"`
	// DocsSkipped counts documents whose relocation this round was decided
	// from the cached anchor with zero kernel evaluations. DocSkipFrac
	// normalizes by the corpus size; a round whose relocation fixpoint loop
	// needs two passes can exceed 1.0 (both passes count their skips).
	DocsSkipped int64   `json:"docs_skipped"`
	DocSkipFrac float64 `json:"doc_skip_frac"`
}

// roundsBench is the machine-readable artifact of the rounds experiment:
// full recomputation vs the cross-round delta engine on the same corpus,
// with the byte-identity pre-gate result, the full-run speedup the CI
// regression smoke gates on, the per-round skip trajectory, and the
// multi-peer exchange savings.
type roundsBench struct {
	Experiment   string `json:"experiment"`
	Dataset      string `json:"dataset"`
	Docs         int    `json:"docs"`
	Transactions int    `json:"transactions"`
	K            int    `json:"k"`
	GoMaxProcs   int    `json:"gomaxprocs"`
	Workers      int    `json:"workers"`
	Rounds       int    `json:"rounds"`
	Identical    bool   `json:"assignments_identical"`
	// FullNsPerRun / DeltaNsPerRun time one complete centralized clustering
	// job (every round, relocation + representative generation) with the
	// delta engine off vs on.
	FullNsPerRun  float64 `json:"full_ns_per_run"`
	DeltaNsPerRun float64 `json:"delta_ns_per_run"`
	Speedup       float64 `json:"speedup"`
	// Counter totals of the delta-on trajectory run.
	RepsReused  int64 `json:"reps_reused"`
	DocsSkipped int64 `json:"docs_skipped"`
	// LateRoundSkipFrac aggregates DocsSkipped over the second half of the
	// rounds, normalized by documents × rounds — the convergence dividend
	// the delta engine exists for. The experiment fails below the
	// lateSkipBar regardless of -min-speedup: late rounds that still pay
	// kernel evaluations per document mean the anchors are not being
	// reused. (Aggregated rather than final-round-only: a run can
	// terminate on a revisited representative state, so the very last
	// round may legitimately fold freshly changed representatives.)
	LateRoundSkipFrac float64       `json:"late_round_skip_frac"`
	Trajectory        []roundsPoint `json:"trajectory"`
	// Exchange savings of a 3-peer run: wire bytes with full representative
	// shipping vs digest markers for unchanged representatives.
	PeerTrafficFullBytes  int64 `json:"peer_traffic_full_bytes"`
	PeerTrafficDeltaBytes int64 `json:"peer_traffic_delta_bytes"`
	DeltaRepBytesSaved    int64 `json:"delta_rep_bytes_saved"`
}

// lateSkipBar is the evidence bar on the late-round document-skip
// fraction: once the run approaches convergence, (nearly) every relocation
// must resolve from the cached anchors without touching the kernel.
const lateSkipBar = 0.8

// exchangePeers sizes the multi-peer leg measuring the delta representative
// exchange (layer 3); the timing and trajectory legs run centralized.
const exchangePeers = 3

// runRounds benchmarks the cross-round delta engine against full per-round
// recomputation on a generated corpus, end to end through the public
// Engine. Before any timing it asserts the two modes produce byte-identical
// assignments and representatives — a speedup for a run that diverged would
// be meaningless. The delta-on run streams round events; differencing the
// run-wide counters between consecutive rounds yields the skip trajectory,
// whose final round must clear lateSkipBar. With minSpeedup > 0 it exits
// non-zero when the full-run speedup falls below the bar (the CI
// rounds-regression smoke).
func runRounds(ds string, scale experiments.Scale, workers int, jsonPath string, minSpeedup float64) error {
	gen, _ := dataset.ByName(ds)
	col := gen(dataset.Spec{Docs: scale.Docs[ds], Seed: experiments.DataSeed})
	corpus := col.BuildCorpus(dataset.ByHybrid, scale.MaxTuples, workers)
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		return err
	}
	k := col.K(dataset.ByHybrid)
	base := xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.7, Seed: experiments.DataSeed, Workers: workers,
	}
	opt := func(mode xmlclust.DeltaRoundsMode) xmlclust.ClusterOptions {
		o := base
		o.DeltaRounds = mode
		return o
	}
	ctx := context.Background()

	r := roundsBench{
		Experiment: "rounds", Dataset: ds,
		Docs: scale.Docs[ds], Transactions: len(corpus.Transactions), K: k,
		GoMaxProcs: runtime.GOMAXPROCS(0), Workers: workers,
		Identical: true,
	}
	fmt.Printf("Delta rounds — cross-round memoization vs full recomputation (%s, hybrid, k=%d, f=%g γ=%g, %d txns)\n",
		ds, k, base.F, base.Gamma, r.Transactions)

	// Byte-identity pre-gate (also warms the engine's similarity caches, so
	// the timed runs below compare the round loops, not cache population).
	full, err := eng.Cluster(ctx, opt(xmlclust.DeltaRoundsOff))
	if err != nil {
		return err
	}
	delta, err := eng.Cluster(ctx, opt(xmlclust.DeltaRoundsOn))
	if err != nil {
		return err
	}
	for i := range full.Assign {
		if full.Assign[i] != delta.Assign[i] {
			r.Identical = false
			return fmt.Errorf("delta run diverged at transaction %d (full %d, delta %d)",
				i, full.Assign[i], delta.Assign[i])
		}
	}
	if len(full.Reps) != len(delta.Reps) {
		return fmt.Errorf("delta run produced %d representatives, full run %d", len(delta.Reps), len(full.Reps))
	}
	for j := range full.Reps {
		a, b := full.Reps[j], delta.Reps[j]
		if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
			r.Identical = false
			return fmt.Errorf("delta run diverged at representative %d", j)
		}
	}
	if full.Rounds != delta.Rounds {
		return fmt.Errorf("delta run took %d rounds, full run %d", delta.Rounds, full.Rounds)
	}
	r.Rounds = full.Rounds

	// Skip trajectory: one instrumented delta-on run, differencing the
	// run-wide counters carried on consecutive round events. The counters
	// are totals of the engine's shared similarity context, so the very
	// first event (round 0's start marker) supplies the pre-run baseline —
	// the pre-gate runs above already moved them.
	var lastReused, lastSkipped int64
	primed := false
	traj, err := eng.Cluster(ctx, func() xmlclust.ClusterOptions {
		o := opt(xmlclust.DeltaRoundsOn)
		o.Events = func(ev xmlclust.Event) {
			if !primed {
				lastReused, lastSkipped = ev.RepsReused, ev.DocsSkipped
				primed = true
			}
			if ev.Kind != xmlclust.EventRoundEnd {
				return
			}
			p := roundsPoint{
				Round:       ev.Round + 1,
				RepsReused:  ev.RepsReused - lastReused,
				DocsSkipped: ev.DocsSkipped - lastSkipped,
			}
			p.DocSkipFrac = float64(p.DocsSkipped) / float64(len(corpus.Transactions))
			lastReused, lastSkipped = ev.RepsReused, ev.DocsSkipped
			r.Trajectory = append(r.Trajectory, p)
		}
		return o
	}())
	if err != nil {
		return err
	}
	r.RepsReused, r.DocsSkipped = traj.RepsReused, traj.DocsSkipped
	fmt.Printf("%8s %12s %13s %10s\n", "round", "reps reused", "docs skipped", "skip frac")
	for _, p := range r.Trajectory {
		fmt.Printf("%8d %12d %13d %9.2f\n", p.Round, p.RepsReused, p.DocsSkipped, p.DocSkipFrac)
	}
	if n := len(r.Trajectory); n > 0 {
		late := r.Trajectory[n/2:]
		var skipped int64
		for _, p := range late {
			skipped += p.DocsSkipped
		}
		r.LateRoundSkipFrac = float64(skipped) / float64(len(late)*len(corpus.Transactions))
	}
	if r.LateRoundSkipFrac < lateSkipBar {
		return fmt.Errorf("late-round skip fraction %.2f below the %.2f evidence bar: late rounds still pay kernel evaluations per document",
			r.LateRoundSkipFrac, lateSkipBar)
	}
	fmt.Printf("late-round skip fraction %.2f (rounds %d–%d)\n",
		r.LateRoundSkipFrac, len(r.Trajectory)/2+1, len(r.Trajectory))

	// Timing: complete clustering jobs, delta off vs on, on the now-warm
	// engine.
	fullBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Cluster(ctx, opt(xmlclust.DeltaRoundsOff)); err != nil {
				b.Fatal(err)
			}
		}
	})
	deltaBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Cluster(ctx, opt(xmlclust.DeltaRoundsOn)); err != nil {
				b.Fatal(err)
			}
		}
	})
	r.FullNsPerRun = float64(fullBench.NsPerOp())
	r.DeltaNsPerRun = float64(deltaBench.NsPerOp())
	r.Speedup = r.FullNsPerRun / r.DeltaNsPerRun

	// Exchange savings: a small multi-peer job, where unchanged
	// representatives ship as 24-byte digest markers instead of full wire
	// transactions. Assignments stay byte-identical (checked again — this
	// leg exercises layer 3, which the centralized runs above never touch).
	peerOpt := func(mode xmlclust.DeltaRoundsMode) xmlclust.ClusterOptions {
		o := opt(mode)
		o.Peers = exchangePeers
		return o
	}
	pf, err := eng.Cluster(ctx, peerOpt(xmlclust.DeltaRoundsOff))
	if err != nil {
		return err
	}
	pd, err := eng.Cluster(ctx, peerOpt(xmlclust.DeltaRoundsOn))
	if err != nil {
		return err
	}
	for i := range pf.Assign {
		if pf.Assign[i] != pd.Assign[i] {
			r.Identical = false
			return fmt.Errorf("%d-peer delta run diverged at transaction %d (full %d, delta %d)",
				exchangePeers, i, pf.Assign[i], pd.Assign[i])
		}
	}
	r.PeerTrafficFullBytes = pf.TrafficBytes
	r.PeerTrafficDeltaBytes = pd.TrafficBytes
	r.DeltaRepBytesSaved = pd.DeltaRepBytes

	fmt.Printf("assignments, representatives and round counts identical (%d rounds)\n", r.Rounds)
	fmt.Printf("full %14.0f ns/run   delta %14.0f ns/run   speedup %.2fx\n",
		r.FullNsPerRun, r.DeltaNsPerRun, r.Speedup)
	fmt.Printf("%d-peer traffic: %d B full shipping → %d B delta exchange (%d B saved by digest markers)\n",
		exchangePeers, r.PeerTrafficFullBytes, r.PeerTrafficDeltaBytes, r.DeltaRepBytesSaved)

	if jsonPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if minSpeedup > 0 && r.Speedup < minSpeedup {
		return fmt.Errorf("delta-round speedup %.2fx below the %.2fx bar", r.Speedup, minSpeedup)
	}
	return nil
}
