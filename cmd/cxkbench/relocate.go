package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"xmlclust/internal/cluster"
	"xmlclust/internal/dataset"
	"xmlclust/internal/experiments"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// relocatePoint is one representative-set size of the relocate experiment.
type relocatePoint struct {
	K int `json:"k"`
	// FlatNsPerPass / IndexedNsPerPass time one full relocation pass over
	// every transaction (flat branch-and-bound scan vs index-guided scan;
	// the indexed time includes the per-pass index rebuild, exactly as the
	// clustering loop pays it each refinement phase).
	FlatNsPerPass    float64 `json:"flat_ns_per_pass"`
	IndexedNsPerPass float64 `json:"indexed_ns_per_pass"`
	// EvaluatedRepsPerDoc / SkippedRepsPerDoc average the index counters of
	// one pass: representatives the kernel actually scored per document vs
	// representatives the candidate bound proved could not win.
	EvaluatedRepsPerDoc float64 `json:"evaluated_reps_per_doc"`
	SkippedRepsPerDoc   float64 `json:"skipped_reps_per_doc"`
	Speedup             float64 `json:"speedup"`
}

// relocateBench is the machine-readable artifact of the relocate
// experiment: indexed vs flat relocation across representative-set sizes,
// with the byte-identity pre-gate result and the k=256 speedup the CI
// regression smoke gates on.
type relocateBench struct {
	Experiment    string          `json:"experiment"`
	Dataset       string          `json:"dataset"`
	Docs          int             `json:"docs"`
	Transactions  int             `json:"transactions"`
	GoMaxProcs    int             `json:"gomaxprocs"`
	Workers       int             `json:"workers"`
	F             float64         `json:"f"`
	Gamma         float64         `json:"gamma"`
	Identical     bool            `json:"assignments_identical"`
	Points        []relocatePoint `json:"points"`
	SpeedupAtK256 float64         `json:"speedup_at_k256"`
}

// relocateKs are the representative-set sizes the experiment scans — the
// axis along which the flat scan's O(n·k) cost grows while the indexed
// scan's grows with the candidates that share anything with each document.
var relocateKs = []int{8, 64, 256, 1024}

// runRelocate benchmarks index-guided relocation against the flat
// branch-and-bound scan on a generated corpus across representative-set
// sizes. Representatives are transactions sampled deterministically from
// the corpus (the same proxy for a frozen representative set at every k).
// Before any timing it asserts that both paths produce byte-identical
// assignments at every k — a speedup for a scan that diverged would be
// meaningless. With minSpeedup > 0 it exits non-zero when the k=256
// speedup falls below the bar (the CI relocate-regression smoke).
func runRelocate(ds string, scale experiments.Scale, workers int, jsonPath string, minSpeedup float64) error {
	gen, _ := dataset.ByName(ds)
	col := gen(dataset.Spec{Docs: scale.Docs[ds], Seed: experiments.DataSeed})
	corpus := col.BuildCorpus(dataset.ByHybrid, scale.MaxTuples, workers)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.8})
	trs := corpus.Transactions
	if len(trs) < 2 {
		return fmt.Errorf("relocate experiment needs ≥2 transactions, corpus has %d", len(trs))
	}

	r := relocateBench{
		Experiment: "relocate", Dataset: ds,
		Docs: scale.Docs[ds], Transactions: len(trs),
		GoMaxProcs: runtime.GOMAXPROCS(0), Workers: workers,
		F: cx.Params.F, Gamma: cx.Params.Gamma,
		Identical: true,
	}

	rng := rand.New(rand.NewSource(experiments.DataSeed))
	fmt.Printf("Relocation — indexed vs flat scan (%s, hybrid, f=%g γ=%g, %d txns)\n",
		ds, r.F, r.Gamma, len(trs))
	fmt.Printf("%6s %14s %14s %9s %14s %14s\n",
		"k", "flat ns/pass", "index ns/pass", "speedup", "evaluated/doc", "skipped/doc")
	for _, k := range relocateKs {
		reps := sampleReps(rng, trs, k)

		// Byte-identity pre-gate: the two paths must agree assignment for
		// assignment before either is worth timing.
		flatAssign := cluster.RelocateWorkers(cx, trs, reps, workers)
		ix := sim.NewRepIndex()
		ix.Build(cx, reps)
		idxAssign, err := cluster.RelocateCtxIndexed(nil, cx, trs, reps, workers, ix)
		if err != nil {
			return err
		}
		for i := range flatAssign {
			if flatAssign[i] != idxAssign[i] {
				r.Identical = false
				return fmt.Errorf("k=%d: indexed assignment diverged at transaction %d (flat %d, indexed %d)",
					k, i, flatAssign[i], idxAssign[i])
			}
		}

		// One instrumented pass for the evaluated/skipped-per-doc averages.
		candBefore := cx.Counters.IndexCandidates.Load()
		skipBefore := cx.Counters.IndexSkipped.Load()
		if _, err := cluster.RelocateCtxIndexed(nil, cx, trs, reps, workers, ix); err != nil {
			return err
		}
		perDoc := float64(len(trs))
		evaluated := float64(cx.Counters.IndexCandidates.Load()-candBefore) / perDoc
		skipped := float64(cx.Counters.IndexSkipped.Load()-skipBefore) / perDoc

		flat := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cluster.RelocateWorkers(cx, trs, reps, workers)
			}
		})
		indexed := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Build(cx, reps) // rebuilt per pass, as the clustering loop pays it
				if _, err := cluster.RelocateCtxIndexed(nil, cx, trs, reps, workers, ix); err != nil {
					b.Fatal(err)
				}
			}
		})

		p := relocatePoint{
			K:                   k,
			FlatNsPerPass:       float64(flat.NsPerOp()),
			IndexedNsPerPass:    float64(indexed.NsPerOp()),
			EvaluatedRepsPerDoc: evaluated,
			SkippedRepsPerDoc:   skipped,
			Speedup:             float64(flat.NsPerOp()) / float64(indexed.NsPerOp()),
		}
		r.Points = append(r.Points, p)
		if k == 256 {
			r.SpeedupAtK256 = p.Speedup
		}
		fmt.Printf("%6d %14d %14d %8.2fx %14.1f %14.1f\n",
			k, flat.NsPerOp(), indexed.NsPerOp(), p.Speedup, evaluated, skipped)
	}
	fmt.Printf("assignments byte-identical at every k; speedup at k=256: %.2fx\n", r.SpeedupAtK256)

	if jsonPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if minSpeedup > 0 && r.SpeedupAtK256 < minSpeedup {
		return fmt.Errorf("relocate speedup %.2fx at k=256 below the %.2fx bar", r.SpeedupAtK256, minSpeedup)
	}
	return nil
}

// sampleReps draws k representatives from the corpus deterministically:
// a fresh permutation per call, wrapping around (duplicates) when k exceeds
// the corpus — both paths handle duplicate representatives identically.
func sampleReps(rng *rand.Rand, trs []*txn.Transaction, k int) []*txn.Transaction {
	perm := rng.Perm(len(trs))
	reps := make([]*txn.Transaction, k)
	for i := range reps {
		reps[i] = trs[perm[i%len(perm)]]
	}
	return reps
}
