// Command cxkpeer runs ONE CXK-means peer as its own OS process, so a
// cluster of m machines (or m processes on one machine) executes the
// collaborative protocol over real TCP.
//
// Usage:
//
//	cxkpeer -id 0 -peers host0:9000,host1:9000,host2:9000 -corpus corpus.gob -k 8
//
// Every process must be started with the same -peers table, -corpus data
// and clustering flags (-k -f -gamma -seed -maxrounds -unequal
// -no-delta-rounds): the data partition and per-peer seeds are derived
// deterministically from them, so the process cluster reproduces the
// in-process engine byte-identically. -no-delta-rounds in particular
// changes the wire protocol, so a deployment that disagrees on it fails
// fast at startup instead of producing a divergent run.
//
// Peer 0 is the coordinator: it plays node N0 (startup broadcast), collects
// every peer's final assignment and prints the corpus-wide result to stdout
// as "transaction<TAB>cluster" lines (cluster −1 is the trash cluster).
// -corpus accepts either the gob produced by `cxkcluster -save` (preprocess
// once, ship the file to every peer) or raw data — a directory walked
// recursively for *.xml, a tar/tar.gz archive, or a single XML file —
// which every peer ingests through the streaming pipeline; identical input
// yields identical corpora on every peer, so no separate preprocessing
// step is required.
//
// -checkpoint-dir enables the elastic peer fabric: round-boundary
// checkpoints (cadence -checkpoint-every) persisted locally and replicated
// to the coordinator, so the session survives peer loss. A crashed peer's
// slot is retaken by restarting with -resume (reuses the surviving
// checkpoint store) or, from a fresh machine, with -join (the coordinator
// streams the slot state and partition slice). SIGHUP requests a graceful
// leave: the peer hands its state to the coordinator at the next boundary
// and exits 0. Recovery is bounded by -recovery-windows extra round
// timeouts. -debug-addr serves the fabric counters over HTTP (GET
// /v1/stats), -reps-out writes the final representatives digest (the
// recovery-equivalence artifact), and -failpoint-round is a chaos drill
// that SIGKILLs the process at a given round boundary — the CI recovery
// gate uses it to kill a peer deterministically mid-session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xmlclust"
)

func main() {
	var (
		id      = flag.Int("id", 0, "this peer's id in [0, #peers)")
		peers   = flag.String("peers", "", "comma-separated peer address table, index = peer id (required)")
		listen  = flag.String("listen", "", "local listen address (default: the -peers entry for -id)")
		corpusF = flag.String("corpus", "", "corpus gob from `cxkcluster -save`, or a directory / tar[.gz] archive / XML file to ingest (required)")
		maxTup  = flag.Int("maxtuples", 0, "cap on tree tuples per document when ingesting raw XML (0 = default; must match across peers)")
		ingestW = flag.Int("ingest-workers", 0, "parse/extract workers when ingesting raw XML (0 = one per CPU); the corpus is identical for any value")
		k       = flag.Int("k", 4, "number of clusters")
		f       = flag.Float64("f", 0.5, "structure/content balance f ∈ [0,1]")
		gamma   = flag.Float64("gamma", 0.7, "γ-matching threshold")
		seed    = flag.Int64("seed", 1, "random seed (must match across peers)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = one per CPU, 1 = serial); output is identical for any value")
		rounds  = flag.Int("maxrounds", 0, "bound on collaborative rounds (0 = default)")
		unequal = flag.Bool("unequal", false, "skewed data distribution (half the peers hold twice the data)")
		roundTO = flag.Duration("round-timeout", 0, "per-round receive deadline (0 = default, negative = none)")
		startTO = flag.Duration("startup-timeout", 0, "how long to wait for the coordinator's startup message (0 = default, negative = none)")
		dialTO  = flag.Duration("dial-timeout", 30*time.Second, "how long to wait for peer listeners to come up")
		quiet   = flag.Bool("q", false, "suppress the per-peer summary on stderr")
		noIndex = flag.Bool("no-rep-index", false, "disable the inverted representative index for this peer's assignment scans (purely local; output is identical either way)")
		noDelta = flag.Bool("no-delta-rounds", false, "disable the cross-round delta engine, including the delta representative exchange (must match across ALL peers; output is identical either way)")

		ckptDir   = flag.String("checkpoint-dir", "", "enable the elastic peer fabric: persist round-boundary checkpoints here (crash recovery, -resume/-join, graceful leave on SIGHUP)")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence in rounds (0 = every round; requires -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "rejoin a running session from the local -checkpoint-dir after a crash (not valid on peer 0)")
		join      = flag.Bool("join", false, "take over this peer's slot as a fresh process: the coordinator streams the slot state and partition slice (not valid on peer 0)")
		recWin    = flag.Int("recovery-windows", 0, "extra round-timeout windows granted to recovery before giving up (0 = default 2)")
		debugAddr = flag.String("debug-addr", "", "serve fabric counters over HTTP at this address (GET /v1/stats; requires -checkpoint-dir)")
		dbgPprof  = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on -debug-addr")
		failRound = flag.Int("failpoint-round", 0, "chaos drill: SIGKILL this process at the given round boundary (0 = off; requires -checkpoint-dir)")
		repsOut   = flag.String("reps-out", "", "write the final representatives digest (and per-peer round count) to this file — the recovery-equivalence comparison artifact")
	)
	flag.Parse()
	if *peers == "" || *corpusF == "" {
		fmt.Fprintln(os.Stderr, "usage: cxkpeer -id N -peers addr,addr,... -corpus file [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	addrs := strings.Split(*peers, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	corpus, stats, err := xmlclust.OpenCorpus(*corpusF, xmlclust.CorpusOptions{
		MaxTuplesPerTree: *maxTup, IngestWorkers: *ingestW,
	})
	if err != nil {
		fatal(err)
	}
	if stats.Docs > 0 && !*quiet {
		fmt.Fprintf(os.Stderr, "cxkpeer %d: ingested %s\n", *id, stats.String())
	}

	// SIGINT/SIGTERM shuts the session down gracefully: the peer aborts at
	// its next safe protocol boundary instead of vanishing mid-round and
	// leaving neighbours to hit their round deadlines. Installed after the
	// ingest above, which does not watch a context — hooking signals
	// earlier would make Ctrl-C a no-op for the whole ingest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP requests a graceful leave: the peer hands its state to the
	// coordinator at the next checkpoint boundary and exits cleanly, so a
	// replacement can -join the slot without a rollback storm.
	var leaveCh chan struct{}
	if *ckptDir != "" {
		leaveCh = make(chan struct{})
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			<-hup
			close(leaveCh)
		}()
	}

	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		fatal(err)
	}
	indexMode := xmlclust.RepIndexAuto
	if *noIndex {
		indexMode = xmlclust.RepIndexOff
	}
	deltaMode := xmlclust.DeltaRoundsAuto
	if *noDelta {
		deltaMode = xmlclust.DeltaRoundsOff
	}
	res, err := eng.ClusterDistributed(ctx, xmlclust.DistributedOptions{
		K: *k, F: *f, Gamma: *gamma,
		ID: *id, PeerAddrs: addrs, Listen: *listen,
		Workers: *workers, UnequalSplit: *unequal,
		Seed: *seed, MaxRounds: *rounds, IndexReps: indexMode, DeltaRounds: deltaMode,
		RoundTimeout: *roundTO, StartupTimeout: *startTO, DialTimeout: *dialTO,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery,
		Resume: *resume, Join: *join, RecoveryWindows: *recWin,
		Leave: leaveCh, DebugAddr: *debugAddr, FailpointRound: *failRound,
		DebugPprof: *dbgPprof,
	})
	if errors.Is(err, xmlclust.ErrCanceled) {
		fmt.Fprintf(os.Stderr, "cxkpeer %d: interrupted, session aborted at a protocol boundary\n", *id)
		os.Exit(130)
	}
	if errors.Is(err, xmlclust.ErrLeft) {
		fmt.Fprintf(os.Stderr, "cxkpeer %d: left the session gracefully, state handed to the coordinator\n", *id)
		return
	}
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "cxkpeer %d/%d: %d local transactions, %d rounds, wall %v\n",
			*id, len(addrs), len(res.LocalAssign), res.Rounds, res.WallTime.Round(time.Millisecond))
	}
	if *repsOut != "" {
		artifact := fmt.Sprintf("peer %d rounds %d reps %016x\n", res.ID, res.Rounds, res.RepsDigest)
		if err := os.WriteFile(*repsOut, []byte(artifact), 0o644); err != nil {
			fatal(err)
		}
	}
	if res.Assign != nil { // coordinator: print the corpus-wide assignment
		for i, a := range res.Assign {
			fmt.Printf("%d\t%d\n", i, a)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxkpeer:", err)
	os.Exit(1)
}
