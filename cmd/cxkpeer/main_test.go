package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmlclust"
)

// e2eCorpus builds a small two-topic corpus and returns it plus the path of
// its serialized form (the file every peer process loads).
func e2eCorpus(t *testing.T, dir string) (*xmlclust.Corpus, string) {
	t.Helper()
	var trees []*xmlclust.Tree
	for i := 0; i < 6; i++ {
		doc := fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i)
		tree, err := xmlclust.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	for i := 0; i < 6; i++ {
		doc := fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i)
		tree, err := xmlclust.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})
	path := filepath.Join(dir, "corpus.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlclust.SaveCorpus(f, corpus); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return corpus, path
}

// reservePorts picks n distinct loopback addresses that are free right now.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestE2EThreeProcessEquivalence is the acceptance check of the distributed
// runtime: a 3-peer cluster running as 3 separate OS processes over real
// loopback TCP must produce assignments identical to the in-process
// ChanTransport engine for the same seed, k, f, γ.
func TestE2EThreeProcessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "cxkpeer")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cxkpeer: %v\n%s", err, out)
	}

	corpus, corpusPath := e2eCorpus(t, dir)
	const k, seed = 2, 4
	want, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.7, Peers: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	addrs := reservePorts(t, 3)
	peers := strings.Join(addrs, ",")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var coordOut bytes.Buffer
	procs := make([]*exec.Cmd, 3)
	// Start the followers first, the coordinator last: the dial-retry in
	// the Node transport must absorb any start order anyway.
	for _, id := range []int{1, 2, 0} {
		cmd := exec.CommandContext(ctx, bin,
			"-id", fmt.Sprint(id),
			"-peers", peers,
			"-corpus", corpusPath,
			"-k", fmt.Sprint(k),
			"-f", "0.5",
			"-gamma", "0.7",
			"-seed", fmt.Sprint(seed),
			"-dial-timeout", "30s",
		)
		cmd.Stderr = os.Stderr
		if id == 0 {
			cmd.Stdout = &coordOut
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting peer %d: %v", id, err)
		}
		procs[id] = cmd
	}
	for id, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("peer %d exited with error: %v", id, err)
		}
	}

	got := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(coordOut.Bytes()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var idx, cl int
		if _, err := fmt.Sscanf(line, "%d\t%d", &idx, &cl); err != nil {
			t.Fatalf("unparsable coordinator output %q: %v", line, err)
		}
		got[idx] = cl
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Assign) {
		t.Fatalf("coordinator reported %d assignments, want %d", len(got), len(want.Assign))
	}
	for i, a := range want.Assign {
		if got[i] != a {
			t.Fatalf("assignment %d differs: 3-process run %d vs in-process %d", i, got[i], a)
		}
	}
}
