package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmlclust"
)

// e2eDocs is a small two-topic collection, separable at k=2.
func e2eDocs() []string {
	var docs []string
	for i := 0; i < 6; i++ {
		docs = append(docs, fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i))
	}
	for i := 0; i < 6; i++ {
		docs = append(docs, fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i))
	}
	return docs
}

// e2eCorpus builds the collection in memory and returns it plus the path of
// its serialized form (the file every peer process loads).
func e2eCorpus(t *testing.T, dir string) (*xmlclust.Corpus, string) {
	t.Helper()
	var trees []*xmlclust.Tree
	for _, doc := range e2eDocs() {
		tree, err := xmlclust.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})
	path := filepath.Join(dir, "corpus.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlclust.SaveCorpus(f, corpus); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return corpus, path
}

// reservePorts picks n distinct loopback addresses that are free right now.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// buildPeerBinary compiles cxkpeer into dir (skipping when no toolchain).
func buildPeerBinary(t *testing.T, dir string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := filepath.Join(dir, "cxkpeer")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cxkpeer: %v\n%s", err, out)
	}
	return bin
}

// runThreeProcs launches a 3-peer cluster as 3 OS processes over loopback
// with the given -corpus argument and returns the coordinator's corpus-wide
// assignment.
func runThreeProcs(t *testing.T, bin, corpusArg string, k int, seed int64) map[int]int {
	t.Helper()
	addrs := reservePorts(t, 3)
	peers := strings.Join(addrs, ",")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var coordOut bytes.Buffer
	procs := make([]*exec.Cmd, 3)
	// Start the followers first, the coordinator last: the dial-retry in
	// the Node transport must absorb any start order anyway.
	for _, id := range []int{1, 2, 0} {
		cmd := exec.CommandContext(ctx, bin,
			"-id", fmt.Sprint(id),
			"-peers", peers,
			"-corpus", corpusArg,
			"-k", fmt.Sprint(k),
			"-f", "0.5",
			"-gamma", "0.7",
			"-seed", fmt.Sprint(seed),
			"-dial-timeout", "30s",
		)
		cmd.Stderr = os.Stderr
		if id == 0 {
			cmd.Stdout = &coordOut
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting peer %d: %v", id, err)
		}
		procs[id] = cmd
	}
	for id, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("peer %d exited with error: %v", id, err)
		}
	}

	got := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(coordOut.Bytes()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var idx, cl int
		if _, err := fmt.Sscanf(line, "%d\t%d", &idx, &cl); err != nil {
			t.Fatalf("unparsable coordinator output %q: %v", line, err)
		}
		got[idx] = cl
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

func assertAssignEqual(t *testing.T, got map[int]int, want []int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: coordinator reported %d assignments, want %d", label, len(got), len(want))
	}
	for i, a := range want {
		if got[i] != a {
			t.Fatalf("%s: assignment %d differs: 3-process run %d vs in-process %d", label, i, got[i], a)
		}
	}
}

// TestE2EThreeProcessEquivalence is the acceptance check of the distributed
// runtime: a 3-peer cluster running as 3 separate OS processes over real
// loopback TCP must produce assignments identical to the in-process
// ChanTransport engine for the same seed, k, f, γ.
func TestE2EThreeProcessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildPeerBinary(t, dir)
	corpus, corpusPath := e2eCorpus(t, dir)
	const k, seed = 2, 4
	// The reference runs with the delta engine OFF while the spawned peer
	// processes run the default (delta ON, digest-marker exchange over real
	// TCP) — the equality below gates cross-mode byte-identity end to end.
	want, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.7, Peers: 3, Seed: seed,
		DeltaRounds: xmlclust.DeltaRoundsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runThreeProcs(t, bin, corpusPath, k, seed)
	assertAssignEqual(t, got, want.Assign, "gob corpus")
}

// TestE2ERawDirectoryCorpus points every peer process at a raw XML
// directory instead of a preprocessed gob: each peer ingests the directory
// through the streaming pipeline independently, and because ingestion is
// deterministic the cluster still reproduces the in-process assignments —
// no separate preprocessing step required.
func TestE2ERawDirectoryCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildPeerBinary(t, dir)

	xmlDir := filepath.Join(dir, "docs")
	if err := os.MkdirAll(xmlDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, doc := range e2eDocs() {
		if err := os.WriteFile(filepath.Join(xmlDir, fmt.Sprintf("doc-%02d.xml", i)), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	src, err := xmlclust.DirSource(xmlDir)
	if err != nil {
		t.Fatal(err)
	}
	corpus, _, err := xmlclust.BuildCorpusFromSource(src, xmlclust.CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const k, seed = 2, 4
	// Delta OFF reference vs default-ON peer processes, as in
	// TestE2EThreeProcessEquivalence.
	want, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.7, Peers: 3, Seed: seed,
		DeltaRounds: xmlclust.DeltaRoundsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runThreeProcs(t, bin, xmlDir, k, seed)
	assertAssignEqual(t, got, want.Assign, "raw directory corpus")
}
