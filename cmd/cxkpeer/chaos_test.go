package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"xmlclust"
)

// Chaos e2e: a 4-process cluster loses one peer to SIGKILL mid-session and
// recovers — by -resume (the replacement reuses the victim's checkpoint
// store) or by -join (a storeless replacement gets the state streamed by the
// coordinator). The gate is the tentpole equivalence: final corpus-wide
// assignments AND representatives byte-identical to the uninterrupted
// in-process run.

// chaosDocs generates a randomized tie-heavy collection (three templates,
// tiny vocabulary, overlapping venues) — the regime where a nondeterministic
// recovery would diverge visibly.
func chaosDocs(docs int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	authors := []string{"alice cooper", "bob dylan", "carol king"}
	topics := []string{"mining frequent patterns", "routing wireless networks", "parsing xml streams"}
	venues := []string{"KDD", "NETCONF", "XMLPRAGUE"}
	out := make([]string, 0, docs)
	for i := 0; i < docs; i++ {
		g := rng.Intn(len(topics))
		out = append(out, fmt.Sprintf(`<db><paper key="p%d">
			<writer>%s</writer>
			<name>%s number%d</name>
			<venue>%s</venue>
		</paper></db>`, i, authors[g], topics[g], rng.Intn(3), venues[rng.Intn(len(venues))]))
	}
	return out
}

// chaosCorpus builds the chaos collection and serializes it for the peer
// processes.
func chaosCorpus(t *testing.T, dir string) (*xmlclust.Corpus, string) {
	t.Helper()
	var trees []*xmlclust.Tree
	for _, doc := range chaosDocs(32, 9) {
		tree, err := xmlclust.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{})
	path := filepath.Join(dir, "corpus.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := xmlclust.SaveCorpus(f, corpus); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return corpus, path
}

func TestE2EChaosKillResume(t *testing.T) { runChaos(t, false) }
func TestE2EChaosKillJoin(t *testing.T)   { runChaos(t, true) }

func runChaos(t *testing.T, freshStore bool) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildPeerBinary(t, dir)
	corpus, corpusPath := chaosCorpus(t, dir)

	const (
		m         = 4
		k         = 4
		seed      = 1
		victim    = 2
		failRound = 2
	)
	// Delta OFF reference: the spawned peer processes run the default delta
	// engine (anchored relocation + digest-marker exchange), and the digest
	// comparison below must hold across modes even through crash recovery.
	ref, err := xmlclust.Cluster(corpus, xmlclust.ClusterOptions{
		K: k, F: 0.5, Gamma: 0.6, Peers: m, Seed: seed,
		DeltaRounds: xmlclust.DeltaRoundsOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rounds <= failRound {
		t.Fatalf("reference run converged in %d rounds; the failpoint at round %d would outlive the session — pick a harder corpus",
			ref.Rounds, failRound)
	}
	refDigest := xmlclust.RepsDigest(corpus, ref.Reps)

	addrs := reservePorts(t, m)
	peers := strings.Join(addrs, ",")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	ckptDirs := make([]string, m)
	repsOuts := make([]string, m)
	for id := 0; id < m; id++ {
		ckptDirs[id] = filepath.Join(dir, fmt.Sprintf("ckpt-%d", id))
		repsOuts[id] = filepath.Join(dir, fmt.Sprintf("reps-%d.txt", id))
	}

	var coordOut bytes.Buffer
	start := func(id int, extra ...string) *exec.Cmd {
		t.Helper()
		args := []string{
			"-id", fmt.Sprint(id),
			"-peers", peers,
			"-corpus", corpusPath,
			"-k", fmt.Sprint(k),
			"-f", "0.5",
			"-gamma", "0.6",
			"-seed", fmt.Sprint(seed),
			"-dial-timeout", "30s",
			// Failure detection must fire well inside the CI step budget,
			// and recovery (join + admission + fan-out) must fit inside the
			// granted windows even on a loaded runner.
			"-round-timeout", "2s",
			"-startup-timeout", "60s",
			"-recovery-windows", "4",
			"-checkpoint-dir", ckptDirs[id],
			"-reps-out", repsOuts[id],
		}
		args = append(args, extra...)
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stderr = os.Stderr
		if id == 0 {
			cmd.Stdout = &coordOut
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting peer %d: %v", id, err)
		}
		return cmd
	}

	// Followers first, coordinator last; the victim carries the failpoint
	// and SIGKILLs itself at the round-2 boundary, mid-session.
	procs := make([]*exec.Cmd, m)
	for _, id := range []int{1, 2, 3, 0} {
		var extra []string
		if id == victim {
			extra = []string{"-failpoint-round", fmt.Sprint(failRound)}
		}
		procs[id] = start(id, extra...)
	}

	// The victim must die by SIGKILL, not converge or error out.
	err = procs[victim].Wait()
	if err == nil {
		t.Fatal("victim exited cleanly; the failpoint never fired")
	}
	ws, ok := procs[victim].ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("victim did not die by SIGKILL: %v (%v)", err, procs[victim].ProcessState)
	}

	// Start the replacement. -resume restarts from the victim's surviving
	// checkpoint store; -join takes over the slot with a fresh store and
	// receives the state + partition slice from the coordinator.
	mode := "-resume"
	if freshStore {
		mode = "-join"
		ckptDirs[victim] = filepath.Join(dir, "ckpt-joiner")
	}
	replacement := start(victim, mode)

	for _, id := range []int{0, 1, 3} {
		if err := procs[id].Wait(); err != nil {
			t.Fatalf("peer %d exited with error: %v", id, err)
		}
	}
	if err := replacement.Wait(); err != nil {
		t.Fatalf("replacement exited with error: %v", err)
	}

	// Gate 1: corpus-wide assignments byte-identical to the uninterrupted
	// in-process run.
	got := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(coordOut.Bytes()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var idx, cl int
		if _, err := fmt.Sscanf(line, "%d\t%d", &idx, &cl); err != nil {
			t.Fatalf("unparsable coordinator output %q: %v", line, err)
		}
		got[idx] = cl
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	assertAssignEqual(t, got, ref.Assign, mode)

	// Gate 2: every surviving process (and the replacement) converged to
	// representatives byte-identical to the reference run.
	for id := 0; id < m; id++ {
		raw, err := os.ReadFile(repsOuts[id])
		if err != nil {
			t.Fatalf("peer %d wrote no reps artifact: %v", id, err)
		}
		var gotID, gotRounds int
		var digest uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(string(raw)), "peer %d rounds %d reps %x", &gotID, &gotRounds, &digest); err != nil {
			t.Fatalf("unparsable reps artifact %q: %v", raw, err)
		}
		if digest != refDigest {
			t.Errorf("%s: peer %d representatives digest %016x, reference %016x", mode, id, digest, refDigest)
		}
	}
}
