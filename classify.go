package xmlclust

import (
	"context"
	"fmt"

	"xmlclust/internal/cluster"
	"xmlclust/internal/parallel"
	"xmlclust/internal/sim"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
)

// ClassifyOptions configures a read-only classification job: assigning
// transactions to a fixed representative set without running a clustering
// round. The similarity knobs mirror ClusterOptions.
type ClassifyOptions struct {
	// F ∈ [0,1] balances structural vs content similarity (Eq. 1).
	F float64
	// Gamma ∈ [0,1] is the γ-matching threshold (Eq. 2).
	Gamma float64
	// Workers bounds the goroutines scanning the transactions (0 = one per
	// CPU, 1 = serial; negative values are rejected with an *OptionsError).
	// The assignment is byte-identical for every legal value.
	Workers int
	// MaxTuplesPerTree caps tuple extraction in Engine.Classify
	// (0 = tuple package default). It should match the cap the corpus was
	// built with so documents decompose the same way on both paths.
	MaxTuplesPerTree int
	// IndexReps selects the inverted representative index for the scan
	// (default RepIndexAuto = on; the assignment is byte-identical in every
	// mode). Without a prebuilt Index the index is built per call — worth it
	// from a few dozen representatives up; pass RepIndexOff for tiny rep
	// sets on hot paths.
	IndexReps RepIndexMode
	// Index, when non-nil, is a prebuilt representative index from
	// Engine.BuildRepIndex. It is used only when it matches this call — same
	// engine, same (F, Gamma) and the identical representative slice
	// contents — otherwise the call behaves as if Index were nil. A serving
	// layer that classifies many documents against a frozen representative
	// set should build once and reuse.
	Index *RepIndex
}

// RepIndex is a prebuilt inverted representative index bound to one
// (engine, F, Gamma, representative-set) combination — the amortized form
// of ClassifyOptions.IndexReps for serving layers that classify a stream of
// documents against frozen representatives. Build it with
// Engine.BuildRepIndex and pass it via ClassifyOptions.Index. A RepIndex is
// immutable after construction and safe for concurrent use; items interned
// after it was built (online document adds) are handled soundly by
// construction, so it never needs eager rebuilding — rebuild only when the
// representative set changes.
type RepIndex struct {
	ix   *sim.RepIndex
	cx   *sim.Context
	reps []*Transaction
}

// Enabled reports whether the index is active — false when the premises of
// the pruning bound fail for the (F, Gamma) it was built with (γ = 0 or a
// semantic tag matcher), in which case scans fall back to the flat path.
func (ri *RepIndex) Enabled() bool { return ri != nil && ri.ix.Enabled() }

// Entries reports the number of inverted-index postings keys (distinct
// tags + distinct terms) the index holds.
func (ri *RepIndex) Entries() int {
	if ri == nil {
		return 0
	}
	return ri.ix.Entries()
}

// Reps reports how many non-empty representatives the index covers.
func (ri *RepIndex) Reps() int {
	if ri == nil {
		return 0
	}
	return ri.ix.Active()
}

// BuildRepIndex builds an inverted representative index over reps for the
// given similarity knobs, sharing the engine's warm caches. The returned
// index matches ClassifyTransactions calls with the same (F, Gamma) and the
// identical representative slice contents.
func (e *Engine) BuildRepIndex(reps []*Transaction, f, gamma float64) (*RepIndex, error) {
	if err := validateKFGamma(1, f, gamma); err != nil {
		return nil, err
	}
	cx := e.simContext(sim.Params{F: f, Gamma: gamma})
	ix := sim.NewRepIndex()
	ix.Build(cx, reps)
	return &RepIndex{ix: ix, cx: cx, reps: reps}, nil
}

// matches reports whether the prebuilt index covers exactly this scan:
// the same similarity context and the same representative pointers in the
// same order.
func (ri *RepIndex) matches(cx *sim.Context, reps []*Transaction) bool {
	if ri == nil || ri.cx != cx || len(ri.reps) != len(reps) {
		return false
	}
	for i := range reps {
		if ri.reps[i] != reps[i] {
			return false
		}
	}
	return true
}

// Classification is the outcome of classifying one document (or an explicit
// transaction set) against a fixed representative set.
type Classification struct {
	// Cluster is the document-level majority vote over Assign (ties to the
	// lower cluster id; TrashCluster when every transaction landed in the
	// trash).
	Cluster int
	// Assign maps input transaction index → cluster in [0,len(reps)) or
	// TrashCluster.
	Assign []int
	// Sims holds the winning similarity per transaction (0 for trash).
	Sims []float64
	// PrunedRows and ScratchReuses are the similarity-kernel counter deltas
	// of this call (see Result for their meaning; the same concurrency
	// attribution caveat applies).
	PrunedRows    int64
	ScratchReuses int64
	// IndexCandidates and IndexSkipped are the representative-index deltas
	// of this call (see Result; zero when the scan ran flat).
	IndexCandidates int64
	IndexSkipped    int64
}

// ClassifyTransactions assigns each transaction to its most similar
// representative — the relocation step of CXK-means under a frozen
// representative set, sharing the engine's warm similarity caches and the
// branch-and-bound kernel. It is read-only with respect to clustering
// state: no assignment, representative or corpus transaction is touched,
// so it is safe to call concurrently with Cluster jobs on the same engine
// (the serving layer does exactly that). ctx cancels the scan with an
// error wrapping ErrCanceled; a nil ctx never cancels.
func (e *Engine) ClassifyTransactions(ctx context.Context, trs []*Transaction, reps []*Transaction, opts ClassifyOptions) (*Classification, error) {
	if err := validateKFGamma(1, opts.F, opts.Gamma); err != nil {
		return nil, err
	}
	if err := validateRunOptions(0, opts.Workers, 0); err != nil {
		return nil, err
	}
	cx := e.simContext(sim.Params{F: opts.F, Gamma: opts.Gamma})
	prunedBefore := cx.Counters.PrunedRows.Load()
	reusesBefore := cx.Counters.ScratchReuses.Load()
	candBefore := cx.Counters.IndexCandidates.Load()
	skipBefore := cx.Counters.IndexSkipped.Load()

	// Pick the index tier: a matching prebuilt index wins; otherwise build
	// one for this call unless the mode forces the flat scan.
	var ix *sim.RepIndex
	if opts.IndexReps.enabled() {
		if opts.Index.matches(cx, reps) {
			ix = opts.Index.ix
		} else {
			ix = sim.NewRepIndex()
			ix.Build(cx, reps)
		}
	}

	assign := make([]int, len(trs))
	sims := make([]float64, len(trs))
	nw := parallel.WorkerCount(opts.Workers, len(trs))
	scratches := make([]*sim.Scratch, nw)
	var queries []*sim.RepQuery
	if ix != nil && ix.Enabled() {
		queries = make([]*sim.RepQuery, nw)
	}
	err := parallel.ForCtxWorkers(ctx, opts.Workers, len(trs), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		var rq *sim.RepQuery
		if queries != nil {
			rq = queries[w]
			if rq == nil {
				rq = sim.NewRepQuery()
				queries[w] = rq
			}
		}
		assign[i], sims[i] = cluster.RelocateOneIndexed(cx, trs[i], reps, ix, rq, sc)
	})
	if err != nil {
		return nil, fmt.Errorf("xmlclust: classify: %w: %w", ErrCanceled, err)
	}
	return &Classification{
		Cluster:         MajorityCluster(assign),
		Assign:          assign,
		Sims:            sims,
		PrunedRows:      cx.Counters.PrunedRows.Load() - prunedBefore,
		ScratchReuses:   cx.Counters.ScratchReuses.Load() - reusesBefore,
		IndexCandidates: cx.Counters.IndexCandidates.Load() - candBefore,
		IndexSkipped:    cx.Counters.IndexSkipped.Load() - skipBefore,
	}, nil
}

// ExtractTransactions decomposes a parsed tree into transactions over the
// engine's item domain WITHOUT adding the document to the corpus: unseen
// paths and items are interned into the shared tables (append-only and
// concurrency-safe — existing ids and similarities are unaffected), but
// nothing is appended to the corpus's transaction set. The returned
// transactions carry document id −1 to mark them transient.
//
// Items first seen here have zero content vectors until a weighting pass
// assigns them, so their content similarity is 0 (structural similarity is
// unaffected); the serving layer weights them with the accumulator's
// frozen-itf online pass before classifying.
func (e *Engine) ExtractTransactions(t *Tree, maxTuples int) []*Transaction {
	res := tuple.Extract(t, tuple.Options{MaxTuplesPerTree: maxTuples})
	out := make([]*Transaction, 0, len(res.Tuples))
	for _, tt := range res.Tuples {
		ids := make([]txn.ItemID, 0, len(tt.Leaves))
		for _, lf := range tt.Leaves {
			pid := e.corpus.Paths.Intern(lf.Path)
			ids = append(ids, e.corpus.Items.Intern(pid, lf.Node.Value))
		}
		out = append(out, txn.NewTransaction(ids, -1, tt.Index, -1))
	}
	return out
}

// Classify extracts a document's transactions against the engine's item
// domain and classifies them against reps, returning the per-transaction
// assignment and the document-level majority cluster. The document is NOT
// added to the corpus and no clustering state changes (see
// ExtractTransactions for the interning and weighting caveats).
func (e *Engine) Classify(ctx context.Context, t *Tree, reps []*Transaction, opts ClassifyOptions) (*Classification, error) {
	return e.ClassifyTransactions(ctx, e.ExtractTransactions(t, opts.MaxTuplesPerTree), reps, opts)
}
