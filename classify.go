package xmlclust

import (
	"context"
	"fmt"

	"xmlclust/internal/cluster"
	"xmlclust/internal/parallel"
	"xmlclust/internal/sim"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
)

// ClassifyOptions configures a read-only classification job: assigning
// transactions to a fixed representative set without running a clustering
// round. The similarity knobs mirror ClusterOptions.
type ClassifyOptions struct {
	// F ∈ [0,1] balances structural vs content similarity (Eq. 1).
	F float64
	// Gamma ∈ [0,1] is the γ-matching threshold (Eq. 2).
	Gamma float64
	// Workers bounds the goroutines scanning the transactions (0 = one per
	// CPU, 1 = serial; negative values are rejected with an *OptionsError).
	// The assignment is byte-identical for every legal value.
	Workers int
	// MaxTuplesPerTree caps tuple extraction in Engine.Classify
	// (0 = tuple package default). It should match the cap the corpus was
	// built with so documents decompose the same way on both paths.
	MaxTuplesPerTree int
}

// Classification is the outcome of classifying one document (or an explicit
// transaction set) against a fixed representative set.
type Classification struct {
	// Cluster is the document-level majority vote over Assign (ties to the
	// lower cluster id; TrashCluster when every transaction landed in the
	// trash).
	Cluster int
	// Assign maps input transaction index → cluster in [0,len(reps)) or
	// TrashCluster.
	Assign []int
	// Sims holds the winning similarity per transaction (0 for trash).
	Sims []float64
	// PrunedRows and ScratchReuses are the similarity-kernel counter deltas
	// of this call (see Result for their meaning; the same concurrency
	// attribution caveat applies).
	PrunedRows    int64
	ScratchReuses int64
}

// ClassifyTransactions assigns each transaction to its most similar
// representative — the relocation step of CXK-means under a frozen
// representative set, sharing the engine's warm similarity caches and the
// branch-and-bound kernel. It is read-only with respect to clustering
// state: no assignment, representative or corpus transaction is touched,
// so it is safe to call concurrently with Cluster jobs on the same engine
// (the serving layer does exactly that). ctx cancels the scan with an
// error wrapping ErrCanceled; a nil ctx never cancels.
func (e *Engine) ClassifyTransactions(ctx context.Context, trs []*Transaction, reps []*Transaction, opts ClassifyOptions) (*Classification, error) {
	if err := validateKFGamma(1, opts.F, opts.Gamma); err != nil {
		return nil, err
	}
	if err := validateRunOptions(0, opts.Workers, 0); err != nil {
		return nil, err
	}
	cx := e.simContext(sim.Params{F: opts.F, Gamma: opts.Gamma})
	prunedBefore := cx.Counters.PrunedRows.Load()
	reusesBefore := cx.Counters.ScratchReuses.Load()

	assign := make([]int, len(trs))
	sims := make([]float64, len(trs))
	scratches := make([]*sim.Scratch, parallel.WorkerCount(opts.Workers, len(trs)))
	err := parallel.ForCtxWorkers(ctx, opts.Workers, len(trs), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		assign[i], sims[i] = cluster.RelocateOne(cx, trs[i], reps, sc)
	})
	if err != nil {
		return nil, fmt.Errorf("xmlclust: classify: %w: %w", ErrCanceled, err)
	}
	return &Classification{
		Cluster:       MajorityCluster(assign),
		Assign:        assign,
		Sims:          sims,
		PrunedRows:    cx.Counters.PrunedRows.Load() - prunedBefore,
		ScratchReuses: cx.Counters.ScratchReuses.Load() - reusesBefore,
	}, nil
}

// ExtractTransactions decomposes a parsed tree into transactions over the
// engine's item domain WITHOUT adding the document to the corpus: unseen
// paths and items are interned into the shared tables (append-only and
// concurrency-safe — existing ids and similarities are unaffected), but
// nothing is appended to the corpus's transaction set. The returned
// transactions carry document id −1 to mark them transient.
//
// Items first seen here have zero content vectors until a weighting pass
// assigns them, so their content similarity is 0 (structural similarity is
// unaffected); the serving layer weights them with the accumulator's
// frozen-itf online pass before classifying.
func (e *Engine) ExtractTransactions(t *Tree, maxTuples int) []*Transaction {
	res := tuple.Extract(t, tuple.Options{MaxTuplesPerTree: maxTuples})
	out := make([]*Transaction, 0, len(res.Tuples))
	for _, tt := range res.Tuples {
		ids := make([]txn.ItemID, 0, len(tt.Leaves))
		for _, lf := range tt.Leaves {
			pid := e.corpus.Paths.Intern(lf.Path)
			ids = append(ids, e.corpus.Items.Intern(pid, lf.Node.Value))
		}
		out = append(out, txn.NewTransaction(ids, -1, tt.Index, -1))
	}
	return out
}

// Classify extracts a document's transactions against the engine's item
// domain and classifies them against reps, returning the per-transaction
// assignment and the document-level majority cluster. The document is NOT
// added to the corpus and no clustering state changes (see
// ExtractTransactions for the interning and weighting caveats).
func (e *Engine) Classify(ctx context.Context, t *Tree, reps []*Transaction, opts ClassifyOptions) (*Classification, error) {
	return e.ClassifyTransactions(ctx, e.ExtractTransactions(t, opts.MaxTuplesPerTree), reps, opts)
}
