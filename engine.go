package xmlclust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux; they are
	// only reachable when DistributedOptions.DebugPprof mounts that mux on
	// the debug listener (cxkpeer -pprof).
	_ "net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmlclust/internal/core"
	"xmlclust/internal/fabric"
	"xmlclust/internal/p2p"
	"xmlclust/internal/pkmeans"
	"xmlclust/internal/sim"
)

// Engine is a reusable clustering handle bound to one corpus. It owns the
// interning tables and a params-keyed similarity-context cache with two
// reuse layers:
//
//   - the structural tag-path pair similarities of Eq. 3 depend only on the
//     paths — never on (f, γ) — so every job on the same Engine shares one
//     warm structural cache;
//   - jobs that repeat a (F, Gamma) pair reuse the same similarity context,
//     including its bounded item-pair memo of Eq. 1 values (cosine +
//     structural + f-mix), the dominant cost of γ-matching.
//
// Content vectors live in the corpus and are shared across all runs.
// Sweep-heavy workloads (the paper's Sect. 5 protocol re-clusters one
// corpus across f, γ, k and peer-count grids) therefore pay the similarity
// groundwork once instead of once per cell.
//
// An Engine is safe for concurrent use: multiple jobs may run on it at the
// same time (Sweep does exactly that).
type Engine struct {
	corpus  *Corpus
	opts    EngineOptions
	paths   *sim.PathCache
	labeled bool
	// itemBudget is the engine-wide remaining-entry budget shared by every
	// per-params item memo; nil when the memo is disabled.
	itemBudget *atomic.Int64

	mu       sync.Mutex
	contexts map[sim.Params]*sim.Context
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// MaxCachedContexts bounds the params-keyed similarity-context cache
	// (0 = DefaultMaxCachedContexts, negative = unbounded). The bound only
	// matters for adversarially large parameter grids.
	MaxCachedContexts int
	// ItemCachePairs is the ENGINE-WIDE budget for the item-similarity
	// memos (Eq. 1 values; 0 = sim.DefaultItemCachePairs ≈ 1M pairs ≈
	// 24 MB, negative = disable). One memo is only valid for one (F, Gamma)
	// pair, so every per-params context draws from this single shared
	// budget — a large sweep grid competes for the same capacity instead of
	// multiplying it. The memo is what makes repeated runs at the same
	// (F, Gamma) measurably faster; it never changes results, only wall
	// time and memory.
	ItemCachePairs int
}

// DefaultMaxCachedContexts bounds the per-Engine similarity-context cache
// when EngineOptions.MaxCachedContexts is zero.
const DefaultMaxCachedContexts = 256

// NewEngine binds a reusable clustering engine to a corpus. The corpus must
// not be mutated while the engine is in use.
func NewEngine(corpus *Corpus, opts EngineOptions) (*Engine, error) {
	if corpus == nil {
		return nil, fmt.Errorf("xmlclust: NewEngine: nil corpus")
	}
	if opts.MaxCachedContexts == 0 {
		opts.MaxCachedContexts = DefaultMaxCachedContexts
	}
	e := &Engine{
		corpus:   corpus,
		opts:     opts,
		paths:    sim.NewPathCache(),
		contexts: map[sim.Params]*sim.Context{},
	}
	if opts.ItemCachePairs >= 0 {
		pairs := opts.ItemCachePairs
		if pairs == 0 {
			pairs = sim.DefaultItemCachePairs
		}
		e.itemBudget = &atomic.Int64{}
		e.itemBudget.Store(int64(pairs))
	}
	for _, tr := range corpus.Transactions {
		if tr.Label >= 0 {
			e.labeled = true
			break
		}
	}
	return e, nil
}

// Corpus returns the corpus the engine is bound to.
func (e *Engine) Corpus() *Corpus { return e.corpus }

// CachedPathSims reports how many structural tag-path pair similarities the
// engine has accumulated so far — the warmth of the shared Eq. 3 cache.
func (e *Engine) CachedPathSims() int { return e.paths.Len() }

// simContext returns the engine's similarity context for the given params,
// creating and caching it on first use. All contexts share the engine's
// structural path cache.
func (e *Engine) simContext(p sim.Params) *sim.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cx, ok := e.contexts[p]; ok {
		return cx
	}
	if max := e.opts.MaxCachedContexts; max > 0 && len(e.contexts) >= max {
		for k := range e.contexts { // evict one arbitrary entry; values are cheap to rebuild
			delete(e.contexts, k)
			break
		}
	}
	cx := sim.NewContextShared(e.corpus, p, e.paths)
	if e.itemBudget != nil {
		cx.ItemCache = sim.NewItemSimCacheShared(e.itemBudget)
	}
	e.contexts[p] = cx
	return cx
}

// ErrCanceled reports that a job's context was canceled (or its deadline
// expired) and the run aborted at the nearest safe boundary. The context's
// own error (context.Canceled / context.DeadlineExceeded) stays in the
// chain, so errors.Is works against either sentinel.
var ErrCanceled = core.ErrCanceled

// Sentinels of the elastic peer fabric (DistributedOptions.CheckpointDir),
// matched with errors.Is.
var (
	// ErrLeft reports that this peer departed gracefully after a Leave
	// request: its state was handed to the coordinator and the session
	// ended on purpose, not by failure.
	ErrLeft = core.ErrLeft
	// ErrCoordinatorLost reports that peer 0 became unreachable.
	// Coordinator death is not recovered from — restart the session.
	ErrCoordinatorLost = core.ErrCoordinatorLost
	// ErrRecoveryTimeout reports that a stalled session exhausted its
	// recovery windows without a replacement peer completing the rollback.
	ErrRecoveryTimeout = core.ErrRecoveryTimeout
	// ErrCheckpointMismatch reports a checkpoint (or join) from a different
	// run configuration: restoring it would diverge silently.
	ErrCheckpointMismatch = fabric.ErrCheckpointMismatch
	// ErrNoCheckpoint reports a Resume with no usable local checkpoint.
	ErrNoCheckpoint = fabric.ErrNoCheckpoint
)

// OptionsError reports an option field outside its legal range. It is the
// typed validation failure of every Engine entry point (and of the legacy
// wrappers, which delegate to them).
type OptionsError struct {
	// Field names the offending option (e.g. "K", "F", "Gamma").
	Field string
	// Value is the rejected value.
	Value float64
	// Reason states the constraint that was violated.
	Reason string
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("xmlclust: invalid option %s = %v: %s", e.Field, e.Value, e.Reason)
}

// validateKFGamma checks the option ranges shared by every entry point:
// K ≥ 1 and F, Gamma ∈ [0,1] (Eq. 1 and Eq. 2 are undefined outside the
// unit interval; NaN is rejected too).
func validateKFGamma(k int, f, gamma float64) error {
	if k < 1 {
		return &OptionsError{Field: "K", Value: float64(k), Reason: "need at least one cluster"}
	}
	if math.IsNaN(f) || f < 0 || f > 1 {
		return &OptionsError{Field: "F", Value: f, Reason: "structure/content balance must lie in [0,1] (Eq. 1)"}
	}
	if math.IsNaN(gamma) || gamma < 0 || gamma > 1 {
		return &OptionsError{Field: "Gamma", Value: gamma, Reason: "γ-matching threshold must lie in [0,1] (Eq. 2)"}
	}
	return nil
}

// validateRunOptions checks the execution-shaping options: MaxRounds,
// Workers and RoundTimeout must not be negative — zero always selects the
// documented default, and negative values used to be accepted silently
// while misbehaving downstream (a negative MaxRounds fell back to the
// default round bound, a negative Workers aliased "one per CPU", a negative
// RoundTimeout armed already-expired deadlines).
func validateRunOptions(maxRounds, workers int, roundTimeout time.Duration) error {
	if maxRounds < 0 {
		return &OptionsError{Field: "MaxRounds", Value: float64(maxRounds), Reason: "round bound must not be negative; use 0 for the default"}
	}
	if workers < 0 {
		return &OptionsError{Field: "Workers", Value: float64(workers), Reason: "worker count must not be negative; use 0 for one worker per CPU"}
	}
	if roundTimeout < 0 {
		return &OptionsError{Field: "RoundTimeout", Value: roundTimeout.Seconds(), Reason: "receive deadline must not be negative; use 0 to disable it"}
	}
	return nil
}

// ValidateClusterOptions checks a ClusterOptions value against every
// constraint the entry points enforce (K ≥ 1, F and Gamma in [0,1],
// non-negative MaxRounds / Workers / RoundTimeout), returning a typed
// *OptionsError naming the offending field. Engine.Cluster and
// Engine.Sweep apply exactly this validation; callers that assemble
// options from external input (flags, HTTP requests) can reject bad
// values up front with the same error surface.
func ValidateClusterOptions(opts ClusterOptions) error {
	if err := validateKFGamma(opts.K, opts.F, opts.Gamma); err != nil {
		return err
	}
	return validateRunOptions(opts.MaxRounds, opts.Workers, opts.RoundTimeout)
}

// Event is one progress notification of a running job: phase changes,
// round boundaries with the peer's local objective and traffic so far, and
// termination. See ClusterOptions.Events.
type Event = core.Event

// EventKind discriminates events.
type EventKind = core.EventKind

// The event kinds delivered to ClusterOptions.Events.
const (
	EventPhaseChange   = core.EventPhaseChange
	EventRoundStart    = core.EventRoundStart
	EventRepsExchanged = core.EventRepsExchanged
	EventRoundEnd      = core.EventRoundEnd
	EventDone          = core.EventDone
)

// serializedObserver adapts a user event callback to the concurrent
// observer contract of the engines: peers emit from their own goroutines,
// so the callback is serialized behind a mutex and never runs concurrently
// with itself.
func serializedObserver(fn func(Event)) core.Observer {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	return func(ev core.Event) {
		mu.Lock()
		defer mu.Unlock()
		fn(ev)
	}
}

// Cluster runs one clustering job on the engine's corpus. ctx cancels the
// job at its next safe boundary (phase edges, blocking receives and the
// relocation fork-join all observe it) with an error wrapping ErrCanceled;
// a nil ctx never cancels. Progress is streamed through opts.Events when
// set.
//
// For a fixed seed the result is byte-identical to a run on a fresh engine
// (and to the deprecated Cluster free function): the caches only memoize
// pure functions of the corpus.
func (e *Engine) Cluster(ctx context.Context, opts ClusterOptions) (*Result, error) {
	if err := ValidateClusterOptions(opts); err != nil {
		return nil, err
	}
	peers := opts.Peers
	if peers <= 0 {
		peers = 1
	}
	cx := e.simContext(sim.Params{F: opts.F, Gamma: opts.Gamma})
	n := len(e.corpus.Transactions)
	var part [][]int
	if opts.UnequalSplit {
		part = core.UnequalPartition(n, peers, opts.Seed)
	} else {
		part = core.EqualPartition(n, peers, opts.Seed)
	}
	var transport p2p.Transport
	if opts.UseTCP {
		t, err := p2p.NewTCPTransport(peers)
		if err != nil {
			return nil, err
		}
		defer t.Close()
		transport = t
	}
	observer := serializedObserver(opts.Events)
	// Kernel-counter snapshot for the per-job delta reported in Result.
	// Jobs at the same (F, Gamma) share one context; when such jobs run
	// concurrently (a sweep with K or Peers axes) the deltas attribute the
	// overlap to whichever cell reads last — totals across cells stay exact.
	prunedBefore := cx.Counters.PrunedRows.Load()
	reusesBefore := cx.Counters.ScratchReuses.Load()
	candBefore := cx.Counters.IndexCandidates.Load()
	skipBefore := cx.Counters.IndexSkipped.Load()
	reusedBefore := cx.Counters.RepsReused.Load()
	docSkipBefore := cx.Counters.DocsSkipped.Load()
	deltaBytesBefore := cx.Counters.DeltaRepBytes.Load()

	var res *core.Result
	var err error
	switch opts.Algorithm {
	case PKMeans:
		res, err = pkmeans.Run(ctx, cx, e.corpus, pkmeans.Options{
			K: opts.K, Params: cx.Params, Peers: peers, Partition: part,
			Seed: opts.Seed, MaxRounds: opts.MaxRounds, Transport: transport,
			Workers: opts.Workers, IndexReps: opts.IndexReps.enabled(),
			DeltaRounds: opts.DeltaRounds.enabled(),
			Observer:    observer,
		})
	default:
		res, err = core.Run(ctx, cx, e.corpus, core.Options{
			K: opts.K, Params: cx.Params, Peers: peers, Partition: part,
			Seed: opts.Seed, MaxRounds: opts.MaxRounds, Transport: transport,
			Workers: opts.Workers, RoundTimeout: opts.RoundTimeout,
			IndexReps:   opts.IndexReps.enabled(),
			DeltaRounds: opts.DeltaRounds.enabled(),
			Observer:    observer,
		})
	}
	if err != nil {
		return nil, err
	}
	msgs, bytes := res.TotalTraffic()
	return &Result{
		Assign:          res.Assign,
		Reps:            res.Reps,
		Rounds:          res.Rounds,
		WallTime:        res.WallTime,
		SimulatedTime:   res.SimulatedTime(p2p.DefaultTimeModel()),
		TrafficBytes:    bytes,
		TrafficMsgs:     msgs,
		K:               opts.K,
		PrunedRows:      cx.Counters.PrunedRows.Load() - prunedBefore,
		ScratchReuses:   cx.Counters.ScratchReuses.Load() - reusesBefore,
		IndexCandidates: cx.Counters.IndexCandidates.Load() - candBefore,
		IndexSkipped:    cx.Counters.IndexSkipped.Load() - skipBefore,
		RepsReused:      cx.Counters.RepsReused.Load() - reusedBefore,
		DocsSkipped:     cx.Counters.DocsSkipped.Load() - docSkipBefore,
		DeltaRepBytes:   cx.Counters.DeltaRepBytes.Load() - deltaBytesBefore,
	}, nil
}

// ClusterDistributed runs ONE peer of a multi-process CXK-means cluster on
// the engine's corpus: it listens on this peer's address, dials the others
// through the shared address table and executes the session engine over the
// real wire. Launch one process per entry of PeerAddrs (see cmd/cxkpeer);
// the coordinator's result carries the assembled corpus-wide assignment.
// ctx cancels the session at its next safe boundary with an error wrapping
// ErrCanceled — the graceful-shutdown path for daemon deployments.
func (e *Engine) ClusterDistributed(ctx context.Context, opts DistributedOptions) (*DistributedResult, error) {
	if err := validateKFGamma(opts.K, opts.F, opts.Gamma); err != nil {
		return nil, err
	}
	// DistributedOptions documents negative RoundTimeout/StartupTimeout as
	// "no deadline", so only the unambiguous fields are range-checked here.
	if err := validateRunOptions(opts.MaxRounds, opts.Workers, 0); err != nil {
		return nil, err
	}
	m := len(opts.PeerAddrs)
	if m == 0 {
		return nil, fmt.Errorf("xmlclust: need at least one peer address")
	}
	if opts.ID < 0 || opts.ID >= m {
		return nil, fmt.Errorf("xmlclust: peer id %d outside [0,%d)", opts.ID, m)
	}
	if opts.Resume && opts.Join {
		return nil, fmt.Errorf("xmlclust: Resume and Join are mutually exclusive")
	}
	if opts.CheckpointDir == "" && (opts.Resume || opts.Join || opts.Leave != nil || opts.DebugAddr != "" || opts.FailpointRound > 0) {
		return nil, fmt.Errorf("xmlclust: Resume/Join/Leave/DebugAddr/FailpointRound need the fabric — set CheckpointDir")
	}
	if opts.ID == 0 && (opts.Resume || opts.Join) {
		return nil, fmt.Errorf("xmlclust: peer 0 cannot resume or join (%w on coordinator death)", ErrCoordinatorLost)
	}
	listen := opts.Listen
	if listen == "" {
		listen = opts.PeerAddrs[opts.ID]
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("xmlclust: listen %s: %w", listen, err)
	}
	node := p2p.NewNode(opts.ID, ln, opts.PeerAddrs, p2p.NodeOptions{DialTimeout: opts.DialTimeout})
	defer node.Close()

	cx := e.simContext(sim.Params{F: opts.F, Gamma: opts.Gamma})
	n := len(e.corpus.Transactions)
	var part [][]int
	if opts.UnequalSplit {
		part = core.UnequalPartition(n, m, opts.Seed)
	} else {
		part = core.EqualPartition(n, m, opts.Seed)
	}
	rt := opts.RoundTimeout
	switch {
	case rt == 0:
		rt = DefaultRoundTimeout
	case rt < 0:
		rt = 0
	}
	st := opts.StartupTimeout
	if st == 0 {
		st = DefaultStartupTimeout
	}
	copts := core.Options{
		K: opts.K, Params: cx.Params, Peers: m, Partition: part,
		Seed: opts.Seed, MaxRounds: opts.MaxRounds, Transport: node,
		Workers: opts.Workers, RoundTimeout: rt, StartupTimeout: st,
		IndexReps:   opts.IndexReps.enabled(),
		DeltaRounds: opts.DeltaRounds.enabled(),
		Observer:    serializedObserver(opts.Events),
	}
	if opts.CheckpointDir != "" {
		store, err := fabric.NewStore(opts.CheckpointDir)
		if err != nil {
			return nil, err
		}
		fab, err := fabric.NewPeer(fabric.Config{
			ID: opts.ID, Transport: node, Store: store,
			Corpus: e.corpus, Partition: part,
			Fingerprint: fabric.ConfigFingerprint(opts.K, m, opts.F, opts.Gamma,
				opts.Seed, n, core.PartitionFingerprint(part)),
			Every:           opts.CheckpointEvery,
			RecoveryWindows: opts.RecoveryWindows,
		})
		if err != nil {
			return nil, err
		}
		if opts.Resume {
			latest, err := store.LatestRound(opts.ID)
			if err != nil {
				return nil, err
			}
			if latest < 0 {
				return nil, fmt.Errorf("%w for peer %d in %s (a fresh process joins with Join)",
					ErrNoCheckpoint, opts.ID, opts.CheckpointDir)
			}
		}
		if opts.Resume || opts.Join {
			if err := fab.SendJoin(); err != nil {
				return nil, err
			}
			copts.Rejoin = true
		}
		if opts.Leave != nil {
			done := make(chan struct{})
			defer close(done)
			go func() {
				select {
				case <-opts.Leave:
					fab.RequestLeave()
				case <-done:
				}
			}()
		}
		if opts.DebugAddr != "" {
			dln, err := net.Listen("tcp", opts.DebugAddr)
			if err != nil {
				return nil, fmt.Errorf("xmlclust: debug listener %s: %w", opts.DebugAddr, err)
			}
			handler := http.Handler(fab.Metrics().Handler())
			if opts.DebugPprof {
				dm := http.NewServeMux()
				dm.Handle("/debug/pprof/", http.DefaultServeMux)
				dm.Handle("/", handler)
				handler = dm
			}
			srv := &http.Server{Handler: handler}
			go srv.Serve(dln)
			defer srv.Close()
		}
		defer func() { fab.Metrics().AddStaleDrops(node.DroppedStale()) }()
		copts.Hooks = fab
		if opts.FailpointRound > 0 {
			copts.Hooks = &failpointHooks{Hooks: fab, round: opts.FailpointRound}
		}
	}
	pres, err := core.RunPeer(ctx, cx, e.corpus, copts, opts.ID)
	if err != nil {
		return nil, err
	}
	return &DistributedResult{
		ID:          pres.ID,
		LocalAssign: pres.Assign,
		Assign:      pres.Global,
		Reps:        pres.Reps,
		Rounds:      pres.Rounds,
		WallTime:    pres.WallTime,
		RepsDigest:  core.RepsDigest(e.corpus.Items, pres.Reps),
	}, nil
}

// failpointHooks wraps the fabric hooks with the FailpointRound chaos drill:
// on reaching the configured round boundary the process SIGKILLs itself —
// before the boundary checkpoint, so recovery must barrier on the previous
// round exactly as after a genuine mid-round crash.
type failpointHooks struct {
	core.Hooks
	round int
}

func (f *failpointHooks) RoundBoundary(st *core.SessionState) (*core.SessionState, error) {
	if st.Round >= f.round {
		proc, err := os.FindProcess(os.Getpid())
		if err == nil {
			err = proc.Kill()
		}
		if err != nil {
			os.Exit(137)
		}
		select {} // SIGKILL is in flight; never reach the checkpoint write
	}
	return f.Hooks.RoundBoundary(st)
}

// RepsDigest returns the canonical fingerprint of a representative set over
// a corpus's item table (FNV-1a over each representative's sorted raw item
// ids): equal digests mean byte-identical representatives. It makes an
// in-process Result comparable with DistributedResult.RepsDigest — the
// recovery-equivalence gate digests the reference run with it.
func RepsDigest(c *Corpus, reps []*Transaction) uint64 {
	return core.RepsDigest(c.Items, reps)
}

// SweepSpec describes a grid of clustering jobs over one corpus — the
// paper's Sect. 5 protocol (re-cluster the same data across f, γ, k and
// peer counts). Base supplies every option the axes do not override; an
// empty axis means "keep Base's value". Cells are enumerated
// deterministically with F outermost, then Gamma, K and Peers innermost.
type SweepSpec struct {
	// Base is the job template. Base.Events is ignored — per-cell event
	// streams from concurrently running cells would interleave without a
	// cell identity; use OnCell for sweep progress instead.
	Base ClusterOptions
	// Fs, Gammas, Ks, Peers are the grid axes (empty = Base's value).
	Fs     []float64
	Gammas []float64
	Ks     []int
	Peers  []int
	// Concurrency bounds how many cells run at once (0 = one per CPU,
	// 1 = sequential). Cells share the engine's warm similarity caches
	// either way; results are independent of the schedule.
	Concurrency int
	// OnCell, when non-nil, is invoked once per finished cell, serialized
	// and in no particular cell order (cells finish as they complete).
	OnCell func(SweepCell)
}

// SweepCell is one grid cell's outcome.
type SweepCell struct {
	// Index is the cell's position in the deterministic grid enumeration.
	Index int
	// Options are the fully resolved options the cell ran with.
	Options ClusterOptions
	// Result is the clustering outcome.
	Result *Result
	// Scores holds the Sect. 5.3 validity measures against the corpus
	// ground truth; valid only when Labeled is true.
	Scores Scores
	// Labeled reports whether the corpus carries ground-truth labels.
	Labeled bool
}

// cells enumerates the grid deterministically.
func (s *SweepSpec) cells() []ClusterOptions {
	fs := s.Fs
	if len(fs) == 0 {
		fs = []float64{s.Base.F}
	}
	gammas := s.Gammas
	if len(gammas) == 0 {
		gammas = []float64{s.Base.Gamma}
	}
	ks := s.Ks
	if len(ks) == 0 {
		ks = []int{s.Base.K}
	}
	peers := s.Peers
	if len(peers) == 0 {
		peers = []int{s.Base.Peers}
	}
	out := make([]ClusterOptions, 0, len(fs)*len(gammas)*len(ks)*len(peers))
	for _, f := range fs {
		for _, g := range gammas {
			for _, k := range ks {
				for _, m := range peers {
					opts := s.Base
					opts.F, opts.Gamma, opts.K, opts.Peers = f, g, k, m
					opts.Events = nil
					out = append(out, opts)
				}
			}
		}
	}
	return out
}

// Sweep fans the grid of jobs over the engine with bounded concurrency and
// returns one cell per grid point, in grid order. Every cell runs against
// the engine's shared similarity caches, so after the first cell of each
// (F, Gamma) pair the structural work is warm. The whole grid is validated
// up front (typed OptionsError, no cells run on a bad grid); the first
// failing cell cancels the remainder; cancellation of ctx returns an error
// wrapping ErrCanceled.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec) ([]SweepCell, error) {
	cells := spec.cells()
	for i, opts := range cells {
		if err := ValidateClusterOptions(opts); err != nil {
			return nil, fmt.Errorf("xmlclust: sweep cell %d: %w", i, err)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	conc := spec.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	if conc > len(cells) {
		conc = len(cells)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		labels  []int
		results = make([]SweepCell, len(cells))
		errs    = make([]error, len(cells))
		sem     = make(chan struct{}, conc)
		onCell  sync.Mutex
		wg      sync.WaitGroup
	)
	if e.labeled {
		labels = Labels(e.corpus)
	}
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cctx.Err() != nil && ctx.Err() == nil {
				// A sibling cell failed; record the abort without running.
				errs[i] = fmt.Errorf("%w: sweep aborted by failing cell", ErrCanceled)
				return
			}
			res, err := e.Cluster(cctx, cells[i])
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			cell := SweepCell{Index: i, Options: cells[i], Result: res, Labeled: e.labeled}
			if e.labeled {
				cell.Scores = Evaluate(labels, res.Assign, cells[i].K)
			}
			results[i] = cell
			if spec.OnCell != nil {
				onCell.Lock()
				spec.OnCell(cell)
				onCell.Unlock()
			}
		}(i)
	}
	wg.Wait()
	// The parent context's cancellation outranks per-cell failures; then
	// report the lowest-index cell error for determinism.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			return nil, fmt.Errorf("xmlclust: sweep cell %d (f=%g γ=%g k=%d m=%d): %w",
				i, cells[i].F, cells[i].Gamma, cells[i].K, cells[i].Peers, err)
		}
	}
	for _, err := range errs { // every remaining error is a cancellation
		if err != nil {
			return nil, fmt.Errorf("xmlclust: sweep: %w", err)
		}
	}
	return results, nil
}

// SweepDuration sums the wall time of a sweep's cells (the cells run
// concurrently, so this is the aggregate compute, not the elapsed time).
func SweepDuration(cells []SweepCell) time.Duration {
	var d time.Duration
	for i := range cells {
		if cells[i].Result != nil {
			d += cells[i].Result.WallTime
		}
	}
	return d
}
