module xmlclust

go 1.24
