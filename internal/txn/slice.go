package txn

import (
	"fmt"
	"math"

	"xmlclust/internal/xmltree"
)

// ColumnarSlice is a standalone, gob-encodable extract of the columnar
// arena covering a subset of corpus transactions — the unit the elastic
// peer fabric streams when handing a partition slice to a joining peer. It
// reuses the format-2 block layout (item-id and tag-path-id columns with
// span offsets), so producing one from an arena-backed corpus is a
// near-memcpy of the selected spans.
//
// Every process of a distributed session loads the same corpus, so the
// receiver does not install the blocks: it rebuilds the same slice locally
// and verifies the transfer column-by-column (VerifyColumnarSlice),
// turning a diverging corpus or partition into a typed error instead of
// silently wrong clustering. Weights are excluded on purpose — they are
// derived state (L2 norms) and carry no identity beyond the ids.
type ColumnarSlice struct {
	// Indices are the corpus transaction indices, in slice order.
	Indices []int
	// Offsets delimit spans: span i is [Offsets[i], Offsets[i+1]).
	Offsets []int32
	// ItemIDs and TagPathIDs are the concatenated column blocks.
	ItemIDs    []ItemID
	TagPathIDs []xmltree.PathID
}

// ColumnarSlice extracts the column blocks of the given transaction
// indices. Arena-backed corpora copy published spans; hand-assembled or
// gob-restored corpora without a columnar view fall back to per-transaction
// table resolution, producing identical blocks.
func (c *Corpus) ColumnarSlice(idxs []int) (*ColumnarSlice, error) {
	cs := &ColumnarSlice{
		Indices: append([]int(nil), idxs...),
		Offsets: make([]int32, 1, len(idxs)+1),
	}
	for _, idx := range idxs {
		if idx < 0 || idx >= len(c.Transactions) {
			return nil, fmt.Errorf("txn: slice index %d outside corpus of %d transactions", idx, len(c.Transactions))
		}
		tr := c.Transactions[idx]
		// The item column of a span is exactly tr.Items (appendSpan copies
		// it), so only the tag-path block needs resolving: from the arena
		// when the transaction owns a span, else from the item table.
		cs.ItemIDs = append(cs.ItemIDs, tr.Items...)
		if tr.cols != nil {
			cs.TagPathIDs = append(cs.TagPathIDs, tr.cols.TagPathSpan(tr.colStart, len(tr.Items))...)
		} else {
			tps := make([]xmltree.PathID, len(tr.Items))
			c.Items.mu.RLock()
			for i, id := range tr.Items {
				tps[i] = c.Items.tagPaths[id]
			}
			c.Items.mu.RUnlock()
			cs.TagPathIDs = append(cs.TagPathIDs, tps...)
		}
		if len(cs.ItemIDs) > math.MaxInt32 {
			return nil, fmt.Errorf("txn: columnar slice exceeds int32 positions")
		}
		cs.Offsets = append(cs.Offsets, int32(len(cs.ItemIDs)))
	}
	return cs, nil
}

// Spans returns the number of transactions the slice covers.
func (cs *ColumnarSlice) Spans() int { return len(cs.Indices) }

// Bytes returns the approximate encoded size of the slice (diagnostics and
// rebalance accounting).
func (cs *ColumnarSlice) Bytes() int64 {
	return int64(8*len(cs.Indices) + 4*len(cs.Offsets) + 4*len(cs.ItemIDs) + 4*len(cs.TagPathIDs))
}

// Fingerprint hashes the slice (FNV-1a over indices, offsets and both
// column blocks) so peers can cross-check a transfer cheaply before the
// full column comparison.
func (cs *ColumnarSlice) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, idx := range cs.Indices {
		mix(uint64(idx))
	}
	mix(^uint64(0))
	for _, o := range cs.Offsets {
		mix(uint64(o))
	}
	mix(^uint64(0))
	for _, id := range cs.ItemIDs {
		mix(uint64(id))
	}
	mix(^uint64(0))
	for _, tp := range cs.TagPathIDs {
		mix(uint64(tp))
	}
	return h
}

// VerifyColumnarSlice checks a received slice against this corpus: the same
// indices must produce identical column blocks. A mismatch means the sender
// and receiver loaded diverging corpora (or partitions) and continuing
// would cluster silently wrong data.
func (c *Corpus) VerifyColumnarSlice(cs *ColumnarSlice) error {
	mine, err := c.ColumnarSlice(cs.Indices)
	if err != nil {
		return err
	}
	if len(mine.Offsets) != len(cs.Offsets) || len(mine.ItemIDs) != len(cs.ItemIDs) ||
		len(mine.TagPathIDs) != len(cs.TagPathIDs) {
		return fmt.Errorf("txn: columnar slice shape diverges from local corpus (%d/%d/%d vs %d/%d/%d positions)",
			len(cs.Offsets), len(cs.ItemIDs), len(cs.TagPathIDs),
			len(mine.Offsets), len(mine.ItemIDs), len(mine.TagPathIDs))
	}
	for i, o := range mine.Offsets {
		if cs.Offsets[i] != o {
			return fmt.Errorf("txn: columnar slice span %d diverges from local corpus", i)
		}
	}
	for i, id := range mine.ItemIDs {
		if cs.ItemIDs[i] != id {
			return fmt.Errorf("txn: columnar slice item column diverges at position %d", i)
		}
	}
	for i, tp := range mine.TagPathIDs {
		if cs.TagPathIDs[i] != tp {
			return fmt.Errorf("txn: columnar slice tag-path column diverges at position %d", i)
		}
	}
	return nil
}
