package txn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// persistFormat versions the on-disk corpus encoding. Format 1 stored one
// wireTransaction record per transaction; format 2 stores the transaction
// set as columnar blocks (one flat id arena plus an offset table), which
// gob encodes as three contiguous slices instead of a length-prefixed
// struct per transaction — smaller streams, and decoding is a near-memcpy.
// Load accepts both.
const persistFormat = 2

// ErrCorruptCorpus tags every structural-corruption error Load returns —
// truncated streams, offset tables that do not tile the arena, spans with
// out-of-range or unsorted ids, dangling constituents, inconsistent
// interning tables. Callers distinguish "this stream is damaged" from
// version skew ("unsupported corpus format", not wrapped) and plain I/O
// with errors.Is.
var ErrCorruptCorpus = errors.New("corrupt corpus stream")

// wireCorpus is the gob representation of a preprocessed corpus. Trees are
// not persisted — a corpus is self-contained for clustering (the
// transactions and weighted items carry everything the algorithms read).
type wireCorpus struct {
	Format int
	Paths  []string
	Terms  []string
	Items  []wireItem
	// Transactions is the format-1 array-of-structs encoding; nil in
	// format-2 streams (gob omits empty slices).
	Transactions []wireTransaction
	// Format-2 columnar transaction blocks: TxnItems is the flat arena of
	// item ids, transaction i spanning [TxnOffsets[i], TxnOffsets[i+1]);
	// docs, tuple indices and labels are parallel per-transaction columns.
	// Tag paths and weights are not persisted — they are derived columns,
	// rebuilt from the item table on load.
	TxnItems      []ItemID
	TxnOffsets    []int32
	TxnDocs       []int32
	TxnTuples     []int32
	TxnLabels     []int32
	TruncatedDocs int
	MaxDepth      int
}

type wireItem struct {
	Path         int32
	Answer       string
	Vector       []vector.Entry
	Synthetic    bool
	Constituents []ItemID
}

type wireTransaction struct {
	Items      []ItemID
	Doc        int
	TupleIndex int
	Label      int
}

// Save serializes the corpus (without source trees) so preprocessing can be
// done once and reused across clustering runs. The transaction set is
// written as format-2 columnar blocks derived from Transactions directly,
// so hand-assembled corpora save identically to builder-built ones.
func (c *Corpus) Save(w io.Writer) error {
	wc := wireCorpus{
		Format:        persistFormat,
		TruncatedDocs: c.TruncatedDocs,
		MaxDepth:      c.MaxDepth,
	}
	for i := 0; i < c.Paths.Len(); i++ {
		wc.Paths = append(wc.Paths, c.Paths.Path(xmltree.PathID(i)).String())
	}
	for i := 0; i < c.Terms.Len(); i++ {
		wc.Terms = append(wc.Terms, c.Terms.Term(int32(i)))
	}
	for i := 0; i < c.Items.Len(); i++ {
		it := c.Items.Get(ItemID(i))
		wc.Items = append(wc.Items, wireItem{
			Path:         int32(it.Path),
			Answer:       it.Answer,
			Vector:       it.Vector.Entries(),
			Synthetic:    it.Synthetic,
			Constituents: it.Constituents,
		})
	}
	total := 0
	for _, tr := range c.Transactions {
		total += len(tr.Items)
	}
	wc.TxnItems = make([]ItemID, 0, total)
	wc.TxnOffsets = make([]int32, 1, len(c.Transactions)+1)
	wc.TxnDocs = make([]int32, 0, len(c.Transactions))
	wc.TxnTuples = make([]int32, 0, len(c.Transactions))
	wc.TxnLabels = make([]int32, 0, len(c.Transactions))
	for _, tr := range c.Transactions {
		wc.TxnItems = append(wc.TxnItems, tr.Items...)
		wc.TxnOffsets = append(wc.TxnOffsets, int32(len(wc.TxnItems)))
		wc.TxnDocs = append(wc.TxnDocs, int32(tr.Doc))
		wc.TxnTuples = append(wc.TxnTuples, int32(tr.TupleIndex))
		wc.TxnLabels = append(wc.TxnLabels, int32(tr.Label))
	}
	if err := gob.NewEncoder(w).Encode(wc); err != nil {
		return fmt.Errorf("txn: save corpus: %w", err)
	}
	return nil
}

// corrupt wraps a corruption description with the typed sentinel.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("txn: load corpus: %w: %s", ErrCorruptCorpus, fmt.Sprintf(format, args...))
}

// Load deserializes a corpus written by Save — the current columnar format
// or the legacy format 1. The returned corpus has no source trees;
// everything the clustering pipeline needs is restored, including
// interning-table identities and the columnar similarity view. Damaged
// streams fail with an error wrapping ErrCorruptCorpus, never a panic or a
// silently short corpus.
func Load(r io.Reader) (*Corpus, error) {
	var wc wireCorpus
	if err := gob.NewDecoder(r).Decode(&wc); err != nil {
		return nil, fmt.Errorf("txn: load corpus: %w: %w", ErrCorruptCorpus, err)
	}
	if wc.Format != persistFormat && wc.Format != 1 {
		return nil, fmt.Errorf("txn: unsupported corpus format %d", wc.Format)
	}
	paths := xmltree.NewPathTable()
	for i, p := range wc.Paths {
		if id := paths.Intern(xmltree.ParsePath(p)); int(id) != i {
			return nil, corrupt("path table at %d (%q)", i, p)
		}
	}
	terms := NewTermTable()
	for i, t := range wc.Terms {
		if id := terms.Intern(t); int(id) != i {
			return nil, corrupt("term table at %d (%q)", i, t)
		}
	}
	items := NewItemTable(paths)
	for i, wi := range wc.Items {
		if wi.Path < 0 || int(wi.Path) >= paths.Len() {
			return nil, corrupt("item %d references unknown path %d", i, wi.Path)
		}
		var id ItemID
		if wi.Synthetic {
			for _, cid := range wi.Constituents {
				if cid < 0 || int(cid) >= i {
					return nil, corrupt("synthetic item %d references unknown constituent %d", i, cid)
				}
			}
			id = items.InternSynthetic(xmltree.PathID(wi.Path), wi.Answer, vector.FromEntries(wi.Vector), wi.Constituents)
		} else {
			id = items.Intern(xmltree.PathID(wi.Path), wi.Answer)
			items.SetVector(id, vector.FromEntries(wi.Vector))
		}
		if int(id) != i {
			return nil, corrupt("item table at %d", i)
		}
	}
	c := &Corpus{
		Paths:         paths,
		Items:         items,
		Terms:         terms,
		TruncatedDocs: wc.TruncatedDocs,
		MaxDepth:      wc.MaxDepth,
	}
	var err error
	if wc.Format == 1 {
		err = loadTransactionsV1(c, &wc)
	} else {
		err = loadTransactionsColumnar(c, &wc)
	}
	if err != nil {
		return nil, err
	}
	if c.cols == nil {
		c.RebuildColumnar()
	}
	return c, nil
}

// loadTransactionsV1 restores the legacy array-of-structs transaction
// encoding; the columnar view is rebuilt by the caller.
func loadTransactionsV1(c *Corpus, wc *wireCorpus) error {
	n := c.Items.Len()
	for i, wt := range wc.Transactions {
		for _, id := range wt.Items {
			if id < 0 || int(id) >= n {
				return corrupt("transaction %d references unknown item %d", i, id)
			}
		}
		c.Transactions = append(c.Transactions, &Transaction{
			Items: wt.Items, Doc: wt.Doc, TupleIndex: wt.TupleIndex, Label: wt.Label,
		})
	}
	return nil
}

// loadTransactionsColumnar validates and restores the format-2 blocks: the
// offset table must tile the id arena exactly, the per-transaction columns
// must agree on the transaction count, and every span must hold strictly
// ascending ids within the item table. Transactions alias the flat arena
// (capacity-clamped so no span can grow into its neighbor), which also
// becomes the in-memory columnar view — one backing array end to end.
func loadTransactionsColumnar(c *Corpus, wc *wireCorpus) error {
	nTx := 0
	switch {
	case len(wc.TxnOffsets) == 0:
		if len(wc.TxnItems) != 0 {
			return corrupt("columnar block has %d item positions but no offset table", len(wc.TxnItems))
		}
	default:
		if wc.TxnOffsets[0] != 0 {
			return corrupt("columnar offset table starts at %d, want 0", wc.TxnOffsets[0])
		}
		if got := int(wc.TxnOffsets[len(wc.TxnOffsets)-1]); got != len(wc.TxnItems) {
			return corrupt("columnar offset table ends at %d, arena has %d positions", got, len(wc.TxnItems))
		}
		nTx = len(wc.TxnOffsets) - 1
	}
	if len(wc.TxnDocs) != nTx || len(wc.TxnTuples) != nTx || len(wc.TxnLabels) != nTx {
		return corrupt("columnar transaction columns disagree: %d offsets vs %d docs, %d tuples, %d labels",
			nTx, len(wc.TxnDocs), len(wc.TxnTuples), len(wc.TxnLabels))
	}
	nItems := c.Items.Len()
	co := &Columnar{
		itemIDs:    wc.TxnItems,
		tagPathIDs: make([]xmltree.PathID, len(wc.TxnItems)),
		weights:    make([]float64, len(wc.TxnItems)),
		offsets:    wc.TxnOffsets,
	}
	if nTx == 0 {
		co.offsets = []int32{0}
	}
	for i := 0; i < nTx; i++ {
		lo, hi := wc.TxnOffsets[i], wc.TxnOffsets[i+1]
		if hi < lo {
			return corrupt("transaction %d spans [%d, %d): negative length", i, lo, hi)
		}
		span := wc.TxnItems[lo:hi:hi]
		var prev ItemID = -1
		for _, id := range span {
			if id < 0 || int(id) >= nItems {
				return corrupt("transaction %d references unknown item %d", i, id)
			}
			if id <= prev {
				return corrupt("transaction %d span not strictly ascending at item %d", i, id)
			}
			prev = id
		}
		c.Transactions = append(c.Transactions, &Transaction{
			Items:      span,
			Doc:        int(wc.TxnDocs[i]),
			TupleIndex: int(wc.TxnTuples[i]),
			Label:      int(wc.TxnLabels[i]),
			cols:       co,
			colStart:   lo,
		})
	}
	c.Items.mu.RLock()
	for i, id := range co.itemIDs {
		co.tagPathIDs[i] = c.Items.tagPaths[id]
		co.weights[i] = c.Items.vecs[id].Norm()
	}
	c.Items.mu.RUnlock()
	co.refreshed = len(co.itemIDs)
	// Publish the tag-path header for the kernel's lock-free span reads —
	// the restored transactions carry spans without going through appendSpan.
	h := co.tagPathIDs
	co.tagPathsPub.Store(&h)
	c.cols = co
	return nil
}
