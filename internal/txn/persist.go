package txn

import (
	"encoding/gob"
	"fmt"
	"io"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// persistFormat versions the on-disk corpus encoding.
const persistFormat = 1

// wireCorpus is the gob representation of a preprocessed corpus. Trees are
// not persisted — a corpus is self-contained for clustering (the
// transactions and weighted items carry everything the algorithms read).
type wireCorpus struct {
	Format        int
	Paths         []string
	Terms         []string
	Items         []wireItem
	Transactions  []wireTransaction
	TruncatedDocs int
	MaxDepth      int
}

type wireItem struct {
	Path         int32
	Answer       string
	Vector       []vector.Entry
	Synthetic    bool
	Constituents []ItemID
}

type wireTransaction struct {
	Items      []ItemID
	Doc        int
	TupleIndex int
	Label      int
}

// Save serializes the corpus (without source trees) so preprocessing can be
// done once and reused across clustering runs.
func (c *Corpus) Save(w io.Writer) error {
	wc := wireCorpus{
		Format:        persistFormat,
		TruncatedDocs: c.TruncatedDocs,
		MaxDepth:      c.MaxDepth,
	}
	for i := 0; i < c.Paths.Len(); i++ {
		wc.Paths = append(wc.Paths, c.Paths.Path(xmltree.PathID(i)).String())
	}
	for i := 0; i < c.Terms.Len(); i++ {
		wc.Terms = append(wc.Terms, c.Terms.Term(int32(i)))
	}
	for i := 0; i < c.Items.Len(); i++ {
		it := c.Items.Get(ItemID(i))
		wc.Items = append(wc.Items, wireItem{
			Path:         int32(it.Path),
			Answer:       it.Answer,
			Vector:       it.Vector.Entries(),
			Synthetic:    it.Synthetic,
			Constituents: it.Constituents,
		})
	}
	for _, tr := range c.Transactions {
		wc.Transactions = append(wc.Transactions, wireTransaction{
			Items: tr.Items, Doc: tr.Doc, TupleIndex: tr.TupleIndex, Label: tr.Label,
		})
	}
	if err := gob.NewEncoder(w).Encode(wc); err != nil {
		return fmt.Errorf("txn: save corpus: %w", err)
	}
	return nil
}

// Load deserializes a corpus written by Save. The returned corpus has no
// source trees (Trees is nil); everything the clustering pipeline needs is
// restored, including interning-table identities.
func Load(r io.Reader) (*Corpus, error) {
	var wc wireCorpus
	if err := gob.NewDecoder(r).Decode(&wc); err != nil {
		return nil, fmt.Errorf("txn: load corpus: %w", err)
	}
	if wc.Format != persistFormat {
		return nil, fmt.Errorf("txn: unsupported corpus format %d", wc.Format)
	}
	paths := xmltree.NewPathTable()
	for i, p := range wc.Paths {
		if id := paths.Intern(xmltree.ParsePath(p)); int(id) != i {
			return nil, fmt.Errorf("txn: corrupt path table at %d (%q)", i, p)
		}
	}
	terms := NewTermTable()
	for i, t := range wc.Terms {
		if id := terms.Intern(t); int(id) != i {
			return nil, fmt.Errorf("txn: corrupt term table at %d (%q)", i, t)
		}
	}
	items := NewItemTable(paths)
	for i, wi := range wc.Items {
		if wi.Path < 0 || int(wi.Path) >= paths.Len() {
			return nil, fmt.Errorf("txn: item %d references unknown path %d", i, wi.Path)
		}
		var id ItemID
		if wi.Synthetic {
			for _, cid := range wi.Constituents {
				if cid < 0 || int(cid) >= i {
					return nil, fmt.Errorf("txn: synthetic item %d references unknown constituent %d", i, cid)
				}
			}
			id = items.InternSynthetic(xmltree.PathID(wi.Path), wi.Answer, vector.FromEntries(wi.Vector), wi.Constituents)
		} else {
			id = items.Intern(xmltree.PathID(wi.Path), wi.Answer)
			items.SetVector(id, vector.FromEntries(wi.Vector))
		}
		if int(id) != i {
			return nil, fmt.Errorf("txn: corrupt item table at %d", i)
		}
	}
	c := &Corpus{
		Paths:         paths,
		Items:         items,
		Terms:         terms,
		TruncatedDocs: wc.TruncatedDocs,
		MaxDepth:      wc.MaxDepth,
	}
	n := items.Len()
	for i, wt := range wc.Transactions {
		for _, id := range wt.Items {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("txn: transaction %d references unknown item %d", i, id)
			}
		}
		c.Transactions = append(c.Transactions, &Transaction{
			Items: wt.Items, Doc: wt.Doc, TupleIndex: wt.TupleIndex, Label: wt.Label,
		})
	}
	return c, nil
}
