package txn

import "sync"

// TermTable interns index terms (preprocessed word stems) into dense int32
// ids — the vocabulary V of the collection. Safe for concurrent use.
type TermTable struct {
	mu    sync.RWMutex
	byStr map[string]int32
	terms []string
}

// NewTermTable creates an empty vocabulary.
func NewTermTable() *TermTable {
	return &TermTable{byStr: make(map[string]int32)}
}

// Intern returns the id for term, registering it if unseen.
func (tt *TermTable) Intern(term string) int32 {
	tt.mu.RLock()
	id, ok := tt.byStr[term]
	tt.mu.RUnlock()
	if ok {
		return id
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if id, ok := tt.byStr[term]; ok {
		return id
	}
	id = int32(len(tt.terms))
	tt.terms = append(tt.terms, term)
	tt.byStr[term] = id
	return id
}

// Lookup returns the id for term and whether it is in the vocabulary.
func (tt *TermTable) Lookup(term string) (int32, bool) {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	id, ok := tt.byStr[term]
	return id, ok
}

// Term returns the string for an id.
func (tt *TermTable) Term(id int32) string {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	return tt.terms[id]
}

// Len returns the vocabulary size |V|.
func (tt *TermTable) Len() int {
	tt.mu.RLock()
	defer tt.mu.RUnlock()
	return len(tt.terms)
}
