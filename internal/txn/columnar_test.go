package txn

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// randomXMLDoc produces a small random document over a deliberately tiny
// tag and answer vocabulary, so repeated values intern to the same item
// across documents and exact similarity ties are common — the tie-heavy
// regime the columnar view must reproduce faithfully.
func randomXMLDoc(rng *rand.Rand) string {
	tags := []string{"title", "author", "year"}
	answers := []string{"alpha", "beta", "gamma", "delta"}
	doc := "<dblp>"
	for e := 0; e < 1+rng.Intn(3); e++ {
		doc += "<inproceedings>"
		for l := 0; l < 1+rng.Intn(4); l++ {
			tag := tags[rng.Intn(len(tags))]
			doc += fmt.Sprintf("<%s>%s</%s>", tag, answers[rng.Intn(len(answers))], tag)
		}
		doc += "</inproceedings>"
	}
	return doc + "</dblp>"
}

func addRandomDocs(t *testing.T, b *Builder, rng *rand.Rand, n int) {
	t.Helper()
	for d := 0; d < n; d++ {
		tree, err := xmltree.ParseString(randomXMLDoc(rng), xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		b.Add(tree)
	}
}

// assertColumnarMirrors checks the SoA invariants position by position: the
// arena covers exactly the corpus's transactions in order, each span's item
// ids equal the pointer-based Transaction.Items, the tag-path column
// replicates Item.TagPath per position, the weight column holds each
// position's current vector norm, and offsets are monotone with sane
// bounds.
func assertColumnarMirrors(t *testing.T, c *Corpus) {
	t.Helper()
	co := c.Columnar()
	if co == nil {
		t.Fatal("corpus has no columnar view")
	}
	if co.NumSpans() != len(c.Transactions) {
		t.Fatalf("NumSpans = %d, want %d transactions", co.NumSpans(), len(c.Transactions))
	}
	total := 0
	for _, tr := range c.Transactions {
		total += tr.Len()
	}
	if co.Len() != total {
		t.Fatalf("arena Len = %d, want Σ|tr| = %d", co.Len(), total)
	}
	pos := int32(0)
	for i, tr := range c.Transactions {
		ids, tagPaths, weights := co.Span(i)
		if len(ids) != tr.Len() || len(tagPaths) != tr.Len() || len(weights) != tr.Len() {
			t.Fatalf("span %d: column lengths %d/%d/%d, want %d",
				i, len(ids), len(tagPaths), len(weights), tr.Len())
		}
		cols, start := tr.ColumnarSpan()
		if cols != co || start != pos {
			t.Fatalf("span %d: transaction records (cols=%p,start=%d), want (%p,%d)",
				i, cols, start, co, pos)
		}
		pos += int32(tr.Len())
		for j, id := range tr.Items {
			if ids[j] != id {
				t.Fatalf("span %d pos %d: arena id %d, transaction id %d", i, j, ids[j], id)
			}
			it := c.Items.Get(id)
			if tagPaths[j] != it.TagPath {
				t.Fatalf("span %d pos %d: arena tag path %d, item table %d", i, j, tagPaths[j], it.TagPath)
			}
			if weights[j] != it.Vector.Norm() {
				t.Fatalf("span %d pos %d: arena weight %v, vector norm %v", i, j, weights[j], it.Vector.Norm())
			}
		}
	}
}

// TestColumnarMirrorsBuilderCorpus: randomized builder-built corpora
// round-trip exactly between the SoA arena and the pointer-based
// transactions, across several corpus shapes.
func TestColumnarMirrorsBuilderCorpus(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(BuildOptions{})
		addRandomDocs(t, b, rng, 3+rng.Intn(6))
		c := b.Finish()
		assertColumnarMirrors(t, c)
	}
}

// TestColumnarReopenAppends: a reopened builder keeps extending the same
// arena — the online serving path — and the invariants hold over the
// combined old+new transaction set after every appended document.
func TestColumnarReopenAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(BuildOptions{})
	addRandomDocs(t, b, rng, 4)
	c := b.Finish()
	coBefore := c.Columnar()

	rb := ReopenBuilder(c, b.Docs(), BuildOptions{})
	for d := 0; d < 5; d++ {
		addRandomDocs(t, rb, rng, 1)
		assertColumnarMirrors(t, c)
	}
	if c.Columnar() != coBefore {
		t.Error("reopening replaced the arena instead of extending it")
	}
}

// TestReopenBuilderRebuildsMissingView: a hand-assembled corpus (no
// columnar view, the state of a legacy-format load before Load learned to
// rebuild) gains a view covering its existing transactions the moment it
// is reopened, and new documents extend it.
func TestReopenBuilderRebuildsMissingView(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder(BuildOptions{})
	addRandomDocs(t, b, rng, 3)
	built := b.Finish()

	// Strip the view by rebuilding a bare corpus over the same tables and
	// fresh spanless transactions.
	bare := &Corpus{Paths: built.Paths, Items: built.Items, Terms: built.Terms}
	for _, tr := range built.Transactions {
		bare.Transactions = append(bare.Transactions,
			NewTransaction(append([]ItemID(nil), tr.Items...), tr.Doc, tr.TupleIndex, tr.Label))
	}
	if bare.Columnar() != nil {
		t.Fatal("bare corpus unexpectedly has a view")
	}
	rb := ReopenBuilder(bare, b.Docs(), BuildOptions{})
	assertColumnarMirrors(t, bare)
	addRandomDocs(t, rb, rng, 2)
	assertColumnarMirrors(t, bare)
}

// TestColumnarWeightRefresh: SetVector leaves the weight column stale by
// design; a full refresh syncs every position, and the incremental refresh
// only covers positions appended since the last pass.
func TestColumnarWeightRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := NewBuilder(BuildOptions{})
	addRandomDocs(t, b, rng, 4)
	c := b.Finish()
	c.RefreshColumnarWeights()

	// Rewrite every item's vector: full refresh must propagate all norms.
	for id := 0; id < c.Items.Len(); id++ {
		c.Items.SetVector(ItemID(id), vector.FromMap(map[int32]float64{int32(id): float64(id + 1)}))
	}
	c.RefreshColumnarWeights()
	assertColumnarMirrors(t, c)

	// Incremental: append documents through a reopened builder, give only
	// the new items vectors, and refresh just the new positions.
	rb := ReopenBuilder(c, b.Docs(), BuildOptions{})
	oldItems := c.Items.Len()
	addRandomDocs(t, rb, rng, 2)
	for id := oldItems; id < c.Items.Len(); id++ {
		c.Items.SetVector(ItemID(id), vector.FromMap(map[int32]float64{int32(id): 2}))
	}
	c.RefreshNewColumnarWeights()
	assertColumnarMirrors(t, c)
}

// TestColumnarEmptyCorpus: a builder that never sees a document still
// yields a coherent (empty) view — zero spans, zero positions — and
// RebuildColumnar on an empty hand-assembled corpus does the same.
func TestColumnarEmptyCorpus(t *testing.T) {
	c := NewBuilder(BuildOptions{}).Finish()
	co := c.Columnar()
	if co == nil {
		t.Fatal("empty builder corpus has no view")
	}
	if co.Len() != 0 {
		t.Fatalf("empty arena Len = %d", co.Len())
	}
	paths := xmltree.NewPathTable()
	bare := &Corpus{Paths: paths, Items: NewItemTable(paths), Terms: NewTermTable()}
	bare.RebuildColumnar()
	if n := bare.Columnar().NumSpans(); n != 0 {
		t.Fatalf("rebuilt empty corpus has %d spans", n)
	}
}
