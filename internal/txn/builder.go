package txn

import (
	"xmlclust/internal/tuple"
	"xmlclust/internal/xmltree"
)

// DocSink observes each completed document during incremental corpus
// building: doc is the document id and trs the transactions extracted from
// it (a sub-slice of Corpus.Transactions; read-only). It is the hook the
// ttf.itf accumulator attaches to, so per-document term counts can be
// folded away while the tree is still the only document in memory — without
// a txn→weighting dependency.
type DocSink interface {
	ObserveDoc(doc int, trs []*Transaction)
}

// Builder constructs a transactional corpus incrementally: Add one parsed
// tree at a time, Finish once. Unlike the batch Build entry point, the
// builder never retains the trees it is fed — each tree is released to the
// garbage collector as soon as its tuples are extracted and interned — so
// corpus size is bounded by the transactional model, not by the XML.
// Documents are numbered in Add order, which fully determines the interning
// tables: feeding the same trees in the same order yields a corpus
// byte-identical to Build's, however the trees were produced.
//
// A Builder is not safe for concurrent use; parallel ingestion serializes
// Add calls through an index-ordered merge (see internal/corpus).
type Builder struct {
	opts  BuildOptions
	c     *Corpus
	sinks []DocSink
	docs  int
	done  bool
}

// NewBuilder creates an empty corpus builder.
func NewBuilder(opts BuildOptions) *Builder {
	paths := xmltree.NewPathTable()
	return &Builder{
		opts: opts,
		c: &Corpus{
			Paths: paths,
			Items: NewItemTable(paths),
			Terms: NewTermTable(),
			cols:  &Columnar{},
		},
	}
}

// ReopenBuilder resumes incremental building on a corpus that an earlier
// builder already finished: the returned builder appends new documents to
// c, numbering them from nextDoc (normally the document count of the
// finished corpus, so ids never collide — the builder cannot infer it from
// c because documents may legitimately contribute zero transactions).
// Interning tables are shared, so items and paths of the new documents
// dedupe against the existing collection and the combined corpus stays
// consistent. The caller owns weighting consistency: items first seen
// through a reopened builder carry zero vectors until a weighting pass
// (weighting.Accumulator.WeighNew or a full re-Finalize) assigns them.
// This is the online-ingestion entry point of the serving layer.
func ReopenBuilder(c *Corpus, nextDoc int, opts BuildOptions) *Builder {
	if c == nil {
		panic("txn: ReopenBuilder on nil corpus")
	}
	if nextDoc < 0 {
		panic("txn: ReopenBuilder with negative next document id")
	}
	if c.cols == nil {
		// Hand-assembled or legacy-loaded corpora resume without a columnar
		// view; build one covering the existing transactions so the reopened
		// corpus gets (and keeps extending) the contiguous-scan path.
		c.RebuildColumnar()
	}
	return &Builder{opts: opts, c: c, docs: nextDoc}
}

// Corpus exposes the corpus under construction. The interning tables are
// valid from the start (observers need them); Transactions grows with Add.
func (b *Builder) Corpus() *Corpus { return b.c }

// Observe registers a sink notified after each document's transactions are
// appended. Sinks run on the Add goroutine, in document order. Registering
// a sink on a finished builder panics: it could never fire.
func (b *Builder) Observe(s DocSink) {
	if b.done {
		panic("txn: Builder.Observe after Finish")
	}
	b.sinks = append(b.sinks, s)
}

// Docs returns the number of documents added so far.
func (b *Builder) Docs() int { return b.docs }

// Add extracts the tree tuples of t and appends its transactions. The
// document's label comes from BuildOptions.Labels when the slice covers its
// id, else −1.
func (b *Builder) Add(t *xmltree.Tree) {
	b.AddLabeled(t, b.labelFor(b.docs))
}

// AddLabeled is Add with an explicit ground-truth label (−1 = unknown).
func (b *Builder) AddLabeled(t *xmltree.Tree, label int) {
	b.AddExtracted(t, tuple.Extract(t, b.opts.Tuple), label)
}

// AddExtracted appends a document whose tuple extraction already ran —
// the entry point of the parallel ingest pipeline, where extraction happens
// on worker goroutines and only the order-sensitive interning is serialized
// here. res must be tuple.Extract(t, opts.Tuple) for the builder's options.
func (b *Builder) AddExtracted(t *xmltree.Tree, res tuple.Result, label int) {
	if b.done {
		panic("txn: Builder.Add after Finish")
	}
	docID := b.docs
	b.docs++
	t.DocID = docID
	if d := t.Depth(); d > b.c.MaxDepth {
		b.c.MaxDepth = d
	}
	if res.Truncated {
		b.c.TruncatedDocs++
	}
	start := len(b.c.Transactions)
	for _, tt := range res.Tuples {
		ids := make([]ItemID, 0, len(tt.Leaves))
		for _, lf := range tt.Leaves {
			pid := b.c.Paths.Intern(lf.Path)
			ids = append(ids, b.c.Items.Intern(pid, lf.Node.Value))
		}
		tr := NewTransaction(ids, docID, tt.Index, label)
		// The columnar arena grows with every published transaction — here,
		// not in Finish — so the online serving path (a reopened builder that
		// appends documents forever without a second Finish) keeps the
		// contiguous-scan layout current too.
		b.c.cols.appendSpan(b.c.Items, tr)
		b.c.Transactions = append(b.c.Transactions, tr)
	}
	for _, s := range b.sinks {
		s.ObserveDoc(docID, b.c.Transactions[start:])
	}
}

// Finish seals the builder and returns the corpus. Vectors are zero until a
// weighting finalize pass runs (weighting.Accumulator or weighting.Apply).
// Any Add/AddLabeled/AddExtracted after Finish panics: a silent append
// would mutate a corpus whose itf weights are already finalized, leaving
// the new items with stale (zero) weights. Callers that genuinely need to
// grow a finished corpus reopen it explicitly with ReopenBuilder and run
// their own weighting pass.
func (b *Builder) Finish() *Corpus {
	b.done = true
	return b.c
}

func (b *Builder) labelFor(docID int) int {
	if docID < len(b.opts.Labels) {
		return b.opts.Labels[docID]
	}
	return -1
}
