// Package txn implements the transactional model for XML tree tuples
// (Sect. 3.3 of the paper): the item domain is built over the leaves of the
// tree tuple collection — each item is a pair ⟨complete path, answer⟩ — and
// every tree tuple becomes a transaction, i.e. the set of items of its
// leaves. Items are interned collection-wide so that identical
// path/answer combinations map to one identifier (cf. Fig. 4(b)).
//
// The package maintains two views of the transaction set. The
// pointer-based view (Transaction.Items resolving through ItemTable) is
// the mutation and bookkeeping surface. The columnar view (Columnar) is a
// struct-of-arrays arena — contiguous item-id, tag-path and weight blocks
// with transactions as [start, end) spans — kept current by the builder on
// every published transaction; it is the similarity kernel's scan layout
// and the gob persistence format (format 2, see persist.go). Both views
// share one source of truth: the columnar blocks are derived columns of
// the item table, refreshed through Corpus.RefreshColumnarWeights /
// RefreshNewColumnarWeights after weighting passes.
package txn

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// ItemID identifies an interned tree tuple item.
type ItemID int32

// Item is an XML tree tuple item ⟨p, Aτ(p)⟩ plus the derived artifacts the
// clustering pipeline needs: the interned tag-path prefix for structural
// similarity and the ttf.itf-weighted TCU vector for content similarity.
type Item struct {
	ID      ItemID
	Path    xmltree.PathID // complete path p
	TagPath xmltree.PathID // p without its trailing @attr/S symbol
	Answer  string         // the answer string (TCU raw text)
	// Vector is the weighted textual content unit vector. It is assigned
	// once by the weighting stage (or at conflation time for synthetic
	// items) and read-only afterwards.
	Vector vector.Sparse
	// Synthetic marks items created by conflateItems during representative
	// generation rather than extracted from a document.
	Synthetic bool
	// Constituents lists the raw (non-synthetic) items a synthetic item was
	// conflated from, sorted ascending; nil for raw items. Keeping the
	// decomposition lets repeated conflation stay exact (no double-counted
	// content when representatives are themselves merged).
	Constituents []ItemID
}

// Flatten returns the raw constituent ids of an item: itself when raw, its
// Constituents when synthetic.
func (i *Item) Flatten() []ItemID {
	if i.Constituents == nil {
		return []ItemID{i.ID}
	}
	return i.Constituents
}

type itemKey struct {
	path   xmltree.PathID
	answer string
}

// ItemTable interns items by (complete path, answer). It is safe for
// concurrent use: peers conflate representative items concurrently.
//
// Besides the canonical *Item records the table maintains two parallel
// columns — tag paths and TCU vectors indexed by id — so the similarity
// kernel's bulk resolution reads flat arrays instead of dereferencing an
// Item per element. The columns are plain derived copies of the Item
// fields, kept in lock step by Intern/InternSynthetic/SetVector.
type ItemTable struct {
	paths *xmltree.PathTable

	mu    sync.RWMutex
	byKey map[itemKey]ItemID
	items []*Item
	// Columns of items, indexed by id.
	tagPaths []xmltree.PathID
	vecs     []vector.Sparse
	// vecVer counts SetVector calls; similarity scratches key their
	// resolved-vector memos on it so a weighting pass (which rewrites
	// vectors in place) invalidates every memo instead of silently serving
	// stale content similarities.
	vecVer atomic.Uint64
}

// NewItemTable creates an empty table bound to a path table.
func NewItemTable(paths *xmltree.PathTable) *ItemTable {
	return &ItemTable{paths: paths, byKey: make(map[itemKey]ItemID)}
}

// Paths returns the bound path table.
func (it *ItemTable) Paths() *xmltree.PathTable { return it.paths }

// Intern returns the id of the item ⟨path, answer⟩, registering it if new.
func (it *ItemTable) Intern(path xmltree.PathID, answer string) ItemID {
	key := itemKey{path: path, answer: answer}
	it.mu.RLock()
	id, ok := it.byKey[key]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.byKey[key]; ok {
		return id
	}
	id = ItemID(len(it.items))
	tp := it.paths.TagPath(path)
	it.items = append(it.items, &Item{
		ID:      id,
		Path:    path,
		TagPath: tp,
		Answer:  answer,
	})
	it.tagPaths = append(it.tagPaths, tp)
	it.vecs = append(it.vecs, vector.Sparse{})
	it.byKey[key] = id
	return id
}

// InternSynthetic interns a conflated item carrying a pre-merged vector and
// its raw constituent decomposition. The answer must already be the
// canonical merged-answer key so equal conflations intern to equal ids.
func (it *ItemTable) InternSynthetic(path xmltree.PathID, answer string, vec vector.Sparse, constituents []ItemID) ItemID {
	key := itemKey{path: path, answer: answer}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.byKey[key]; ok {
		return id
	}
	id := ItemID(len(it.items))
	tp := it.paths.TagPath(path)
	it.items = append(it.items, &Item{
		ID:           id,
		Path:         path,
		TagPath:      tp,
		Answer:       answer,
		Vector:       vec,
		Synthetic:    true,
		Constituents: append([]ItemID(nil), constituents...),
	})
	it.tagPaths = append(it.tagPaths, tp)
	it.vecs = append(it.vecs, vec)
	it.byKey[key] = id
	return id
}

// Get returns the item for id. The returned pointer is shared; callers must
// treat it as read-only (except the weighting stage, which runs before any
// concurrent access).
func (it *ItemTable) Get(id ItemID) *Item {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.items[id]
}

// Resolve fills out (which must have len(ids)) with the items of ids under
// a single lock acquisition — the bulk form of Get for loops that
// dereference whole transactions at once.
func (it *ItemTable) Resolve(ids []ItemID, out []*Item) {
	it.mu.RLock()
	for i, id := range ids {
		out[i] = it.items[id]
	}
	it.mu.RUnlock()
}

// ResolveVectors fills out (which must have len(ids)) with the TCU vectors
// of ids under a single lock acquisition, reading the flat vector column —
// the similarity kernel's per-transaction content resolution: no *Item is
// touched, and the copied headers stay valid however the table grows.
func (it *ItemTable) ResolveVectors(ids []ItemID, out []vector.Sparse) {
	it.mu.RLock()
	for i, id := range ids {
		out[i] = it.vecs[id]
	}
	it.mu.RUnlock()
}

// ResolveColumns fills tps and vecs (each len(ids)) with the tag-path and
// vector columns of ids under one lock acquisition — the kernel's fallback
// resolution for transactions without a columnar span (synthetic
// representatives, hand-assembled corpora, classify-time transients).
func (it *ItemTable) ResolveColumns(ids []ItemID, tps []xmltree.PathID, vecs []vector.Sparse) {
	it.mu.RLock()
	for i, id := range ids {
		tps[i] = it.tagPaths[id]
		vecs[i] = it.vecs[id]
	}
	it.mu.RUnlock()
}

// VecVersion returns the monotone count of SetVector calls. Kernel
// scratches pair it with the table identity to decide whether a memoized
// transaction resolution is still current.
func (it *ItemTable) VecVersion() uint64 { return it.vecVer.Load() }

// Len returns the number of interned items.
func (it *ItemTable) Len() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.items)
}

// SetVector assigns the weighted TCU vector of an item (weighting stage).
func (it *ItemTable) SetVector(id ItemID, v vector.Sparse) {
	it.mu.Lock()
	it.items[id].Vector = v
	it.vecs[id] = v
	it.mu.Unlock()
	it.vecVer.Add(1)
}

// MergedAnswerKey canonicalizes a set of answers for conflated items: the
// distinct answers, sorted, joined with the unit separator.
func MergedAnswerKey(answers []string) string {
	set := map[string]struct{}{}
	for _, a := range answers {
		if a != "" {
			set[a] = struct{}{}
		}
	}
	distinct := make([]string, 0, len(set))
	for a := range set {
		distinct = append(distinct, a)
	}
	sort.Strings(distinct)
	return strings.Join(distinct, "\x1f")
}

// String renders an item for debugging.
func (i *Item) String() string {
	return fmt.Sprintf("e%d⟨%v,%q⟩", i.ID, i.Path, i.Answer)
}
