package txn

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

func roundtrip(t *testing.T, c *Corpus) *Corpus {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestPersistRoundtrip(t *testing.T) {
	c := buildPaperCorpus(t)
	// Give a couple of items vectors and add a synthetic one, as a
	// clustered corpus would have.
	c.Items.SetVector(0, vector.FromMap(map[int32]float64{1: 0.5, 3: 1.5}))
	c.Terms.Intern("zaki")
	c.Terms.Intern("mine")
	it0 := c.Items.Get(0)
	syn := c.Items.InternSynthetic(it0.Path, MergedAnswerKey([]string{"a", "b"}),
		vector.FromMap(map[int32]float64{2: 1}), []ItemID{0, 1})

	back := roundtrip(t, c)
	if back.Items.Len() != c.Items.Len() {
		t.Fatalf("items %d != %d", back.Items.Len(), c.Items.Len())
	}
	if back.Paths.Len() != c.Paths.Len() || back.Terms.Len() != c.Terms.Len() {
		t.Fatal("table sizes differ")
	}
	if len(back.Transactions) != len(c.Transactions) {
		t.Fatal("transaction counts differ")
	}
	for i, tr := range c.Transactions {
		if !tr.Equal(back.Transactions[i]) {
			t.Fatalf("transaction %d differs", i)
		}
		if back.Transactions[i].Doc != tr.Doc || back.Transactions[i].Label != tr.Label {
			t.Fatalf("transaction %d metadata differs", i)
		}
	}
	for i := 0; i < c.Items.Len(); i++ {
		a, b := c.Items.Get(ItemID(i)), back.Items.Get(ItemID(i))
		if a.Answer != b.Answer || a.Path != b.Path || a.Synthetic != b.Synthetic {
			t.Fatalf("item %d differs: %+v vs %+v", i, a, b)
		}
		if !vector.Equal(a.Vector, b.Vector) {
			t.Fatalf("item %d vector differs", i)
		}
	}
	// Synthetic constituents survive.
	bs := back.Items.Get(syn)
	if len(bs.Constituents) != 2 || bs.Constituents[0] != 0 || bs.Constituents[1] != 1 {
		t.Fatalf("synthetic constituents = %v", bs.Constituents)
	}
	// Interning identity: re-interning an existing pair yields the old id.
	if got := back.Items.Intern(it0.Path, it0.Answer); got != 0 {
		t.Errorf("re-intern gave %d, want 0", got)
	}
}

func TestPersistEmptyCorpus(t *testing.T) {
	c := Build(nil, BuildOptions{})
	back := roundtrip(t, c)
	if len(back.Transactions) != 0 || back.Items.Len() != 0 {
		t.Error("empty corpus roundtrip not empty")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestLoadWrongFormat(t *testing.T) {
	c := buildPaperCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the format by re-encoding with a bumped version marker: the
	// easiest reliable corruption is truncating the stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestLoadFutureFormat(t *testing.T) {
	// A corpus written by a future release bumps persistFormat; today's
	// reader must reject it with a readable error, not a gob panic or a
	// silent misread. gob tolerates unknown fields, so the envelope decodes
	// and the Format check is what must fire.
	wc := wireCorpus{Format: persistFormat + 41, Paths: []string{"a.S"}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wc); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("future persistFormat must not load")
	}
	if !strings.Contains(err.Error(), "unsupported corpus format") {
		t.Fatalf("unhelpful error for future format: %v", err)
	}
}

func TestLoadRejectsDanglingConstituents(t *testing.T) {
	c := buildPaperCorpus(t)
	it0 := c.Items.Get(0)
	c.Items.InternSynthetic(it0.Path, MergedAnswerKey([]string{"x", "y"}),
		vector.FromMap(map[int32]float64{0: 1}), []ItemID{0, 1})
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var wc wireCorpus
	if err := gob.NewDecoder(&buf).Decode(&wc); err != nil {
		t.Fatal(err)
	}
	// Corrupt the synthetic item's decomposition to a forward reference.
	syn := len(wc.Items) - 1
	if !wc.Items[syn].Synthetic {
		t.Fatal("expected last item to be the synthetic one")
	}
	wc.Items[syn].Constituents = []ItemID{ItemID(len(wc.Items) + 5)}
	var corrupted bytes.Buffer
	if err := gob.NewEncoder(&corrupted).Encode(wc); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&corrupted); err == nil {
		t.Fatal("dangling synthetic constituent must not load")
	} else if !strings.Contains(err.Error(), "constituent") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestPersistRoundtripWeightedSyntheticCorpus(t *testing.T) {
	// Full-pipeline round trip: weighted vectors plus several synthetic
	// conflations, including a re-conflation that merges a synthetic item's
	// constituents with a fresh raw item — the shape representatives take
	// after a few collaborative rounds.
	c := buildPaperCorpus(t)
	for i := 0; i < c.Items.Len(); i++ {
		// Stand-in weighted vectors (package txn cannot import weighting).
		c.Items.SetVector(ItemID(i), vector.FromMap(map[int32]float64{int32(i): 1.5, int32(i + 1): 0.25}))
	}
	it0, it1, it2 := c.Items.Get(0), c.Items.Get(1), c.Items.Get(2)
	syn1 := c.Items.InternSynthetic(it0.Path,
		MergedAnswerKey([]string{it0.Answer, it1.Answer}),
		vector.Scale(vector.Add(it0.Vector, it1.Vector), 0.5),
		[]ItemID{it0.ID, it1.ID})
	syn2 := c.Items.InternSynthetic(it0.Path,
		MergedAnswerKey([]string{it0.Answer, it1.Answer, it2.Answer}),
		vector.Scale(vector.Add(c.Items.Get(syn1).Vector, it2.Vector), 0.5),
		append(append([]ItemID(nil), c.Items.Get(syn1).Constituents...), it2.ID))

	back := roundtrip(t, c)
	for _, id := range []ItemID{syn1, syn2} {
		a, b := c.Items.Get(id), back.Items.Get(id)
		if !b.Synthetic {
			t.Fatalf("item %d lost Synthetic flag", id)
		}
		if a.Answer != b.Answer {
			t.Fatalf("item %d answer %q != %q", id, a.Answer, b.Answer)
		}
		if len(a.Constituents) != len(b.Constituents) {
			t.Fatalf("item %d constituents %v != %v", id, a.Constituents, b.Constituents)
		}
		for i := range a.Constituents {
			if a.Constituents[i] != b.Constituents[i] {
				t.Fatalf("item %d constituents %v != %v", id, a.Constituents, b.Constituents)
			}
		}
		if !vector.Equal(a.Vector, b.Vector) {
			t.Fatalf("item %d vector differs after roundtrip", id)
		}
	}
	// The restored table re-conflates to the same id (interning identity).
	s := back.Items.Get(syn1)
	if got := back.Items.InternSynthetic(s.Path, s.Answer, s.Vector, s.Constituents); got != syn1 {
		t.Fatalf("re-conflation interned %d, want %d", got, syn1)
	}
}

func TestPersistPreservesMaxDepthAndTruncation(t *testing.T) {
	tree, _ := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	c := Build([]*xmltree.Tree{tree}, BuildOptions{})
	c.TruncatedDocs = 3
	back := roundtrip(t, c)
	if back.MaxDepth != c.MaxDepth || back.TruncatedDocs != 3 {
		t.Errorf("metadata lost: %+v", back)
	}
}
