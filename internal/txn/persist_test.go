package txn

import (
	"bytes"
	"strings"
	"testing"

	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

func roundtrip(t *testing.T, c *Corpus) *Corpus {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestPersistRoundtrip(t *testing.T) {
	c := buildPaperCorpus(t)
	// Give a couple of items vectors and add a synthetic one, as a
	// clustered corpus would have.
	c.Items.SetVector(0, vector.FromMap(map[int32]float64{1: 0.5, 3: 1.5}))
	c.Terms.Intern("zaki")
	c.Terms.Intern("mine")
	it0 := c.Items.Get(0)
	syn := c.Items.InternSynthetic(it0.Path, MergedAnswerKey([]string{"a", "b"}),
		vector.FromMap(map[int32]float64{2: 1}), []ItemID{0, 1})

	back := roundtrip(t, c)
	if back.Items.Len() != c.Items.Len() {
		t.Fatalf("items %d != %d", back.Items.Len(), c.Items.Len())
	}
	if back.Paths.Len() != c.Paths.Len() || back.Terms.Len() != c.Terms.Len() {
		t.Fatal("table sizes differ")
	}
	if len(back.Transactions) != len(c.Transactions) {
		t.Fatal("transaction counts differ")
	}
	for i, tr := range c.Transactions {
		if !tr.Equal(back.Transactions[i]) {
			t.Fatalf("transaction %d differs", i)
		}
		if back.Transactions[i].Doc != tr.Doc || back.Transactions[i].Label != tr.Label {
			t.Fatalf("transaction %d metadata differs", i)
		}
	}
	for i := 0; i < c.Items.Len(); i++ {
		a, b := c.Items.Get(ItemID(i)), back.Items.Get(ItemID(i))
		if a.Answer != b.Answer || a.Path != b.Path || a.Synthetic != b.Synthetic {
			t.Fatalf("item %d differs: %+v vs %+v", i, a, b)
		}
		if !vector.Equal(a.Vector, b.Vector) {
			t.Fatalf("item %d vector differs", i)
		}
	}
	// Synthetic constituents survive.
	bs := back.Items.Get(syn)
	if len(bs.Constituents) != 2 || bs.Constituents[0] != 0 || bs.Constituents[1] != 1 {
		t.Fatalf("synthetic constituents = %v", bs.Constituents)
	}
	// Interning identity: re-interning an existing pair yields the old id.
	if got := back.Items.Intern(it0.Path, it0.Answer); got != 0 {
		t.Errorf("re-intern gave %d, want 0", got)
	}
}

func TestPersistEmptyCorpus(t *testing.T) {
	c := Build(nil, BuildOptions{})
	back := roundtrip(t, c)
	if len(back.Transactions) != 0 || back.Items.Len() != 0 {
		t.Error("empty corpus roundtrip not empty")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestLoadWrongFormat(t *testing.T) {
	c := buildPaperCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the format by re-encoding with a bumped version marker: the
	// easiest reliable corruption is truncating the stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestPersistPreservesMaxDepthAndTruncation(t *testing.T) {
	tree, _ := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	c := Build([]*xmltree.Tree{tree}, BuildOptions{})
	c.TruncatedDocs = 3
	back := roundtrip(t, c)
	if back.MaxDepth != c.MaxDepth || back.TruncatedDocs != 3 {
		t.Errorf("metadata lost: %+v", back)
	}
}
