package txn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
)

func sliceTestCorpus(t *testing.T, n int) *Corpus {
	t.Helper()
	b := NewBuilder(BuildOptions{})
	addRandomDocs(t, b, rand.New(rand.NewSource(7)), n)
	return b.Finish()
}

// TestColumnarSliceMatchesTransactions: the extracted blocks must mirror
// the pointer-based transactions span by span, for arena-backed and
// view-less corpora alike.
func TestColumnarSliceMatchesTransactions(t *testing.T) {
	c := sliceTestCorpus(t, 12)
	idxs := []int{3, 0, 7, 7, 11}
	check := func(c *Corpus) {
		t.Helper()
		cs, err := c.ColumnarSlice(idxs)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Spans() != len(idxs) {
			t.Fatalf("slice covers %d spans, want %d", cs.Spans(), len(idxs))
		}
		for i, idx := range idxs {
			tr := c.Transactions[idx]
			lo, hi := cs.Offsets[i], cs.Offsets[i+1]
			if int(hi-lo) != len(tr.Items) {
				t.Fatalf("span %d has %d positions, transaction %d has %d", i, hi-lo, idx, len(tr.Items))
			}
			for p, id := range cs.ItemIDs[lo:hi] {
				if id != tr.Items[p] {
					t.Fatalf("span %d position %d: item %v vs %v", i, p, id, tr.Items[p])
				}
				if cs.TagPathIDs[lo+int32(p)] != c.Items.Get(id).TagPath {
					t.Fatalf("span %d position %d: tag path diverges from item table", i, p)
				}
			}
		}
	}
	if c.Columnar() == nil {
		t.Fatal("builder corpus lacks the columnar view")
	}
	check(c)
	// A hand-assembled corpus (no arena) must produce identical blocks.
	bare := &Corpus{Paths: c.Paths, Items: c.Items, Transactions: c.Transactions}
	want, err := c.ColumnarSlice(idxs)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.VerifyColumnarSlice(want); err != nil {
		t.Fatalf("fallback path diverges from arena path: %v", err)
	}
	if got, _ := bare.ColumnarSlice(idxs); got.Fingerprint() != want.Fingerprint() {
		t.Fatal("fingerprints diverge between arena and fallback paths")
	}
}

// TestColumnarSliceGobAndVerify: a slice must survive the wire (gob) and
// verify against a receiver that loaded the same corpus; tampering with any
// column must be detected.
func TestColumnarSliceGobAndVerify(t *testing.T) {
	c := sliceTestCorpus(t, 10)
	cs, err := c.ColumnarSlice([]int{1, 4, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cs); err != nil {
		t.Fatal(err)
	}
	var back ColumnarSlice
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != cs.Fingerprint() {
		t.Fatal("fingerprint changed across gob round-trip")
	}
	if err := c.VerifyColumnarSlice(&back); err != nil {
		t.Fatalf("faithful transfer rejected: %v", err)
	}
	if back.Bytes() <= 0 {
		t.Error("slice reports no wire size")
	}

	tampered := back
	tampered.ItemIDs = append([]ItemID(nil), back.ItemIDs...)
	tampered.ItemIDs[0]++
	err = c.VerifyColumnarSlice(&tampered)
	if err == nil || !strings.Contains(err.Error(), "item column") {
		t.Fatalf("tampered item column not detected: %v", err)
	}
	if tampered.Fingerprint() == back.Fingerprint() {
		t.Error("fingerprint blind to item column change")
	}
}

// TestColumnarSliceBadIndex: out-of-range indices are a caller bug surfaced
// as an error, not a panic.
func TestColumnarSliceBadIndex(t *testing.T) {
	c := sliceTestCorpus(t, 3)
	if _, err := c.ColumnarSlice([]int{0, len(c.Transactions)}); err == nil {
		t.Fatal("index past the corpus must fail")
	}
	if _, err := c.ColumnarSlice([]int{-1}); err == nil {
		t.Fatal("negative index must fail")
	}
}
