package txn

import (
	"sort"

	"xmlclust/internal/tuple"
	"xmlclust/internal/xmltree"
)

// Transaction is the item set Iτ of one tree tuple (or of a synthetic
// cluster representative). Items are sorted ascending and distinct.
type Transaction struct {
	Items []ItemID
	// Doc is the source document id; -1 for synthetic representatives.
	Doc int
	// TupleIndex is the tuple's enumeration index within its document.
	TupleIndex int
	// Label is the ground-truth class index when known, else -1.
	Label int

	// cols/colStart locate the transaction's [colStart, colStart+len(Items))
	// span inside its corpus's columnar arena. nil cols means no span —
	// synthetic representatives, hand-assembled corpora and gob-decoded
	// transactions (unexported fields never travel) — and similarity then
	// resolves through the item table instead of the arena.
	cols     *Columnar
	colStart int32
}

// ColumnarSpan returns the transaction's columnar arena and span start
// (nil, 0 when the transaction has no span). The span always covers exactly
// len(Items) positions holding the same ids as Items.
func (t *Transaction) ColumnarSpan() (*Columnar, int32) { return t.cols, t.colStart }

// NewTransaction builds a transaction from possibly unsorted, possibly
// duplicated item ids.
func NewTransaction(items []ItemID, doc, tupleIndex, label int) *Transaction {
	sorted := append([]ItemID(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:0]
	var prev ItemID = -1
	for _, id := range sorted {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return &Transaction{Items: out, Doc: doc, TupleIndex: tupleIndex, Label: label}
}

// Len returns the number of items.
func (t *Transaction) Len() int { return len(t.Items) }

// Contains reports whether the transaction holds item id.
func (t *Transaction) Contains(id ItemID) bool {
	i := sort.Search(len(t.Items), func(i int) bool { return t.Items[i] >= id })
	return i < len(t.Items) && t.Items[i] == id
}

// UnionSize returns |a ∪ b| for the two sorted item sets.
func UnionSize(a, b *Transaction) int {
	i, j, n := 0, 0, 0
	for i < len(a.Items) && j < len(b.Items) {
		switch {
		case a.Items[i] == b.Items[j]:
			i++
			j++
		case a.Items[i] < b.Items[j]:
			i++
		default:
			j++
		}
		n++
	}
	return n + (len(a.Items) - i) + (len(b.Items) - j)
}

// Equal reports whether two transactions hold exactly the same item set.
func (t *Transaction) Equal(o *Transaction) bool {
	if o == nil || len(t.Items) != len(o.Items) {
		return false
	}
	for i := range t.Items {
		if t.Items[i] != o.Items[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy. The columnar span carries over: the clone
// holds the same item set, so the original's arena block describes it too.
func (t *Transaction) Clone() *Transaction {
	return &Transaction{
		Items:      append([]ItemID(nil), t.Items...),
		Doc:        t.Doc,
		TupleIndex: t.TupleIndex,
		Label:      t.Label,
		cols:       t.cols,
		colStart:   t.colStart,
	}
}

// Corpus bundles a preprocessed XML collection: interning tables, the
// transaction set S and provenance metadata. A Corpus is immutable after
// the weighting stage, except for the concurrent-safe interning of
// synthetic representative items during clustering.
type Corpus struct {
	Paths *xmltree.PathTable
	Items *ItemTable
	Terms *TermTable
	// Transactions is the set S of XML transactions for the collection.
	Transactions []*Transaction
	// TruncatedDocs counts documents whose tuple enumeration hit the cap.
	TruncatedDocs int
	// MaxDepth is the maximum tree depth over the collection.
	MaxDepth int

	// cols is the columnar (SoA) view of Transactions, maintained by the
	// builder and Load; nil for hand-assembled corpora (see Columnar).
	cols *Columnar
}

// BuildOptions configures corpus construction.
type BuildOptions struct {
	Tuple tuple.Options
	// Labels optionally assigns a ground-truth class per document (indexed
	// by DocID); transactions inherit their document's label.
	Labels []int
}

// Build parses nothing: it takes already-parsed trees, extracts tree tuples
// and constructs the transactional corpus. Vectors are zero until
// weighting.Apply is run. Build is the batch driver over Builder; streaming
// callers use Builder (or internal/corpus) directly and never hold the
// whole tree slice.
func Build(trees []*xmltree.Tree, opts BuildOptions) *Corpus {
	b := NewBuilder(opts)
	for _, t := range trees {
		b.Add(t)
	}
	return b.Finish()
}

// MaxTransactionLen returns |trmax| over a set of transactions (0 if empty).
func MaxTransactionLen(trs []*Transaction) int {
	max := 0
	for _, tr := range trs {
		if tr.Len() > max {
			max = tr.Len()
		}
	}
	return max
}
