package txn

import (
	"math"
	"sync"
	"sync/atomic"

	"xmlclust/internal/xmltree"
)

// Columnar is the struct-of-arrays view of a corpus's transaction set: one
// arena of contiguous parallel blocks — item ids, tag-path ids and content
// weights — with each transaction owning a [start, start+len) span into
// them. The similarity kernel scans the blocks sequentially instead of
// dereferencing a *Item per element, which removes the pointer-chase from
// the n1×n2 inner loop of Eq. 4; persistence reuses the same blocks as the
// format-2 gob encoding, so saving a corpus is a near-memcpy of the arena.
//
// The view is derived state: item ids are exactly the transactions' sorted
// id sets, tag-path ids replicate Item.TagPath per position, and weights
// hold the L2 norm of each position's TCU vector (refreshed after a
// weighting pass; diagnostics and round-trip checks read them, the kernel
// deliberately does not — it resolves vectors from the authoritative
// ItemTable so a mid-stream re-weighting can never split the two).
//
// Concurrency: the builder appends under the arena lock while kernels read
// published spans lock-free-after-snapshot — a span's elements are
// immutable once its transaction is published, so the short RLock in
// TagPathSpan only protects the slice headers against a concurrent append's
// reallocation, and the returned subslice stays valid even if the backing
// array is later outgrown.
type Columnar struct {
	mu         sync.RWMutex
	itemIDs    []ItemID
	tagPathIDs []xmltree.PathID
	weights    []float64
	// offsets[i] is the arena start of span i; offsets has one trailing
	// entry holding the arena length, so span i is [offsets[i], offsets[i+1]).
	// Spans are appended in corpus-transaction order, so for builder-built
	// and Load-restored corpora span i belongs to Corpus.Transactions[i].
	offsets []int32
	// refreshed is the position watermark of the last weight refresh:
	// positions below it carry current norms, positions at or above were
	// appended since and may still hold pre-weighting zeros.
	refreshed int
	// tagPathsPub is the atomically published tagPathIDs slice header, so
	// the kernel's per-pair TagPathSpan read costs one atomic load instead
	// of an RWMutex round trip. Safe because a published header's visible
	// prefix is immutable: appends only write past the previous length (or
	// into a fresh backing array), and the new header is stored after those
	// writes, so readers of any loaded header never observe a torn span.
	tagPathsPub atomic.Pointer[[]xmltree.PathID]
}

// Len returns the number of arena positions (Σ transaction lengths).
func (co *Columnar) Len() int {
	co.mu.RLock()
	defer co.mu.RUnlock()
	return len(co.itemIDs)
}

// NumSpans returns the number of transaction spans in the arena.
func (co *Columnar) NumSpans() int {
	co.mu.RLock()
	defer co.mu.RUnlock()
	if len(co.offsets) == 0 {
		// Offsets are lazily initialized by the first append; an arena that
		// never saw one has zero spans, not -1.
		return 0
	}
	return len(co.offsets) - 1
}

// Span returns the three column blocks of span i. The slices alias the
// arena and must be treated as read-only; weights reflect the last refresh.
func (co *Columnar) Span(i int) (ids []ItemID, tagPaths []xmltree.PathID, weights []float64) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	lo, hi := co.offsets[i], co.offsets[i+1]
	return co.itemIDs[lo:hi:hi], co.tagPathIDs[lo:hi:hi], co.weights[lo:hi:hi]
}

// TagPathSpan returns the tag-path block of the span starting at start with
// n positions — the kernel's per-transaction structural input, on the
// hottest read path of the whole system (twice per transaction pair). It
// reads the atomically published header instead of taking the arena lock;
// the subslice aliases the arena, and span contents are immutable once
// published, so it stays valid indefinitely.
func (co *Columnar) TagPathSpan(start int32, n int) []xmltree.PathID {
	tps := *co.tagPathsPub.Load()
	return tps[start : int(start)+n : int(start)+n]
}

// appendSpan appends tr's columns to the arena and records the span on the
// transaction. Called with every transaction the builder publishes, in
// order; tab supplies the tag-path and vector columns of the ids.
func (co *Columnar) appendSpan(tab *ItemTable, tr *Transaction) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.offsets) == 0 {
		co.offsets = append(co.offsets, 0)
	}
	start := len(co.itemIDs)
	if start+len(tr.Items) > math.MaxInt32 {
		panic("txn: columnar arena exceeds int32 positions")
	}
	co.itemIDs = append(co.itemIDs, tr.Items...)
	tab.mu.RLock()
	for _, id := range tr.Items {
		co.tagPathIDs = append(co.tagPathIDs, tab.tagPaths[id])
		co.weights = append(co.weights, tab.vecs[id].Norm())
	}
	tab.mu.RUnlock()
	co.offsets = append(co.offsets, int32(len(co.itemIDs)))
	h := co.tagPathIDs
	co.tagPathsPub.Store(&h)
	tr.cols, tr.colStart = co, int32(start)
}

// refreshWeights recomputes the weight column from the current item
// vectors: the whole arena when full, else only the positions appended
// since the previous refresh (older spans cannot reference items a WeighNew
// pass touched — ids are interned before the spans that use them, and
// WeighNew never rewrites an already-weighted item).
func (co *Columnar) refreshWeights(tab *ItemTable, full bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	start := co.refreshed
	if full {
		start = 0
	}
	tab.mu.RLock()
	for i := start; i < len(co.itemIDs); i++ {
		co.weights[i] = tab.vecs[co.itemIDs[i]].Norm()
	}
	tab.mu.RUnlock()
	co.refreshed = len(co.itemIDs)
}

// Columnar returns the corpus's columnar view, or nil when the corpus was
// assembled by hand (struct literals in tests, gob-decoded transaction
// sets) — similarity falls back to per-transaction table resolution then.
func (c *Corpus) Columnar() *Columnar { return c.cols }

// RebuildColumnar (re)derives the columnar view covering every current
// transaction, in order. Load calls it to give restored corpora the
// contiguous-scan path; ReopenBuilder calls it when resuming a corpus that
// never had a view (then keeps extending it incrementally).
func (c *Corpus) RebuildColumnar() {
	co := &Columnar{}
	for _, tr := range c.Transactions {
		co.appendSpan(c.Items, tr)
	}
	co.refreshed = len(co.itemIDs)
	c.cols = co
}

// RefreshColumnarWeights brings the full weight column up to date with the
// item vectors — the hook a batch weighting Finalize runs after rewriting
// every raw item's vector.
func (c *Corpus) RefreshColumnarWeights() {
	if c.cols != nil {
		c.cols.refreshWeights(c.Items, true)
	}
}

// RefreshNewColumnarWeights updates only the positions appended since the
// last refresh — the online hook for WeighNew, which weights freshly
// interned items without touching already-weighted ones, so older spans
// keep current norms by construction.
func (c *Corpus) RefreshNewColumnarWeights() {
	if c.cols != nil {
		c.cols.refreshWeights(c.Items, false)
	}
}
