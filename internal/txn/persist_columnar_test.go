package txn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// savedPaperStream builds the paper corpus and returns its format-2 gob
// stream plus the decoded wire envelope, for tests that mutate one block
// and re-encode.
func savedPaperStream(t *testing.T) ([]byte, wireCorpus) {
	t.Helper()
	c := buildPaperCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var wc wireCorpus
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&wc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), wc
}

func reencode(t *testing.T, wc wireCorpus) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wc); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestLoadTruncatedColumnarStream: cutting the format-2 stream at any
// point must yield a readable error wrapping ErrCorruptCorpus — never a
// panic, never a silently short corpus.
func TestLoadTruncatedColumnarStream(t *testing.T) {
	stream, _ := savedPaperStream(t)
	cuts := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"header-only", 8},
		{"quarter", len(stream) / 4},
		{"half", len(stream) / 2},
		{"three-quarters", 3 * len(stream) / 4},
		{"one-byte-short", len(stream) - 1},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Load(bytes.NewReader(stream[:tc.n]))
			if err == nil {
				t.Fatalf("truncation at %d/%d bytes loaded a corpus with %d transactions",
					tc.n, len(stream), len(c.Transactions))
			}
			if !errors.Is(err, ErrCorruptCorpus) {
				t.Fatalf("truncation error does not wrap ErrCorruptCorpus: %v", err)
			}
		})
	}
}

// TestLoadCorruptColumnarBlocks: each structurally-damaged columnar block
// must be rejected with ErrCorruptCorpus and a message naming the damage.
func TestLoadCorruptColumnarBlocks(t *testing.T) {
	_, base := savedPaperStream(t)
	if len(base.TxnOffsets) < 3 || len(base.TxnItems) < 3 {
		t.Fatalf("paper corpus too small to corrupt meaningfully: %d offsets, %d items",
			len(base.TxnOffsets), len(base.TxnItems))
	}
	// Locate a span with at least two positions for the ordering cases.
	wide := -1
	for i := 0; i+1 < len(base.TxnOffsets); i++ {
		if base.TxnOffsets[i+1]-base.TxnOffsets[i] >= 2 {
			wide = i
			break
		}
	}
	if wide < 0 {
		t.Fatal("no transaction with ≥2 items in the paper corpus")
	}
	cases := []struct {
		name    string
		mutate  func(wc *wireCorpus)
		mention string
	}{
		{
			name:    "offsets-start-nonzero",
			mutate:  func(wc *wireCorpus) { wc.TxnOffsets[0] = 1 },
			mention: "starts at",
		},
		{
			name:    "offsets-end-short",
			mutate:  func(wc *wireCorpus) { wc.TxnOffsets[len(wc.TxnOffsets)-1]-- },
			mention: "ends at",
		},
		{
			name: "offsets-decreasing",
			mutate: func(wc *wireCorpus) {
				wc.TxnOffsets[wide+1] = base.TxnOffsets[wide] - 1
				// Keep the final offset consistent so only the negative span fires.
				if wide+1 == len(wc.TxnOffsets)-1 {
					wc.TxnItems = wc.TxnItems[:wc.TxnOffsets[wide+1]]
				}
			},
			mention: "negative length",
		},
		{
			name: "item-id-out-of-range",
			mutate: func(wc *wireCorpus) {
				wc.TxnItems[0] = ItemID(len(wc.Items) + 7)
			},
			mention: "unknown item",
		},
		{
			name: "item-id-negative",
			mutate: func(wc *wireCorpus) {
				wc.TxnItems[0] = -2
			},
			mention: "unknown item",
		},
		{
			name: "span-not-ascending",
			mutate: func(wc *wireCorpus) {
				lo := base.TxnOffsets[wide]
				wc.TxnItems[lo], wc.TxnItems[lo+1] = wc.TxnItems[lo+1], wc.TxnItems[lo]
			},
			mention: "ascending",
		},
		{
			name: "span-duplicate-id",
			mutate: func(wc *wireCorpus) {
				lo := base.TxnOffsets[wide]
				wc.TxnItems[lo+1] = wc.TxnItems[lo]
			},
			mention: "ascending",
		},
		{
			name: "docs-column-short",
			mutate: func(wc *wireCorpus) {
				wc.TxnDocs = wc.TxnDocs[:len(wc.TxnDocs)-1]
			},
			mention: "columns disagree",
		},
		{
			name: "labels-column-long",
			mutate: func(wc *wireCorpus) {
				wc.TxnLabels = append(wc.TxnLabels, 0)
			},
			mention: "columns disagree",
		},
		{
			name: "items-without-offsets",
			mutate: func(wc *wireCorpus) {
				wc.TxnOffsets = nil
				wc.TxnDocs, wc.TxnTuples, wc.TxnLabels = nil, nil, nil
			},
			mention: "no offset table",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wc := base
			wc.TxnItems = append([]ItemID(nil), base.TxnItems...)
			wc.TxnOffsets = append([]int32(nil), base.TxnOffsets...)
			wc.TxnDocs = append([]int32(nil), base.TxnDocs...)
			wc.TxnTuples = append([]int32(nil), base.TxnTuples...)
			wc.TxnLabels = append([]int32(nil), base.TxnLabels...)
			tc.mutate(&wc)
			_, err := Load(reencode(t, wc))
			if err == nil {
				t.Fatal("corrupted block loaded cleanly")
			}
			if !errors.Is(err, ErrCorruptCorpus) {
				t.Fatalf("error does not wrap ErrCorruptCorpus: %v", err)
			}
			if !strings.Contains(err.Error(), tc.mention) {
				t.Fatalf("error %q does not mention %q", err, tc.mention)
			}
		})
	}
}

// TestLoadFormatVersionSkewIsNotCorruption pins the error taxonomy: an
// unknown format number is version skew, reported without the corruption
// sentinel so callers can tell "upgrade your reader" from "your file is
// damaged".
func TestLoadFormatVersionSkewIsNotCorruption(t *testing.T) {
	_, wc := savedPaperStream(t)
	wc.Format = persistFormat + 41
	_, err := Load(reencode(t, wc))
	if err == nil {
		t.Fatal("future format loaded")
	}
	if errors.Is(err, ErrCorruptCorpus) {
		t.Fatalf("version skew misreported as corruption: %v", err)
	}
}

// TestLoadLegacyFormat1Stream: a stream written by the previous release
// (format 1, one record per transaction) still loads, reproduces the same
// transaction set, and gains a columnar view on load.
func TestLoadLegacyFormat1Stream(t *testing.T) {
	c := buildPaperCorpus(t)
	_, wc := savedPaperStream(t)
	legacy := wc
	legacy.Format = 1
	legacy.TxnItems, legacy.TxnOffsets = nil, nil
	legacy.TxnDocs, legacy.TxnTuples, legacy.TxnLabels = nil, nil, nil
	for i := 0; i+1 < len(wc.TxnOffsets); i++ {
		lo, hi := wc.TxnOffsets[i], wc.TxnOffsets[i+1]
		legacy.Transactions = append(legacy.Transactions, wireTransaction{
			Items:      wc.TxnItems[lo:hi],
			Doc:        int(wc.TxnDocs[i]),
			TupleIndex: int(wc.TxnTuples[i]),
			Label:      int(wc.TxnLabels[i]),
		})
	}
	back, err := Load(reencode(t, legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Transactions) != len(c.Transactions) {
		t.Fatalf("legacy load has %d transactions, want %d", len(back.Transactions), len(c.Transactions))
	}
	for i, tr := range c.Transactions {
		if !tr.Equal(back.Transactions[i]) {
			t.Fatalf("legacy transaction %d differs", i)
		}
	}
	assertColumnarMirrors(t, back)
}

// TestColumnarEncodingSmaller pins the size win of the columnar format on
// a DBLP-shaped sample (many small bibliographic records): re-encoding the
// same corpus with the legacy one-record-per-transaction layout must be
// strictly larger than the format-2 stream Save writes, since gob charges
// each wireTransaction a type tag, field numbers and a length prefix that
// the flat arena pays once. The observed delta is logged for the README's
// perf table.
func TestColumnarEncodingSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	b := NewBuilder(BuildOptions{})
	addRandomDocs(t, b, rng, 160)
	c := b.Finish()

	var v2 bytes.Buffer
	if err := c.Save(&v2); err != nil {
		t.Fatal(err)
	}
	var wc wireCorpus
	if err := gob.NewDecoder(bytes.NewReader(v2.Bytes())).Decode(&wc); err != nil {
		t.Fatal(err)
	}
	legacy := wc
	legacy.Format = 1
	for i := 0; i+1 < len(wc.TxnOffsets); i++ {
		lo, hi := wc.TxnOffsets[i], wc.TxnOffsets[i+1]
		legacy.Transactions = append(legacy.Transactions, wireTransaction{
			Items:      wc.TxnItems[lo:hi],
			Doc:        int(wc.TxnDocs[i]),
			TupleIndex: int(wc.TxnTuples[i]),
			Label:      int(wc.TxnLabels[i]),
		})
	}
	legacy.TxnItems, legacy.TxnOffsets = nil, nil
	legacy.TxnDocs, legacy.TxnTuples, legacy.TxnLabels = nil, nil, nil
	v1 := reencode(t, legacy)

	if v2.Len() >= v1.Len() {
		t.Fatalf("columnar stream (%d bytes) not smaller than legacy (%d bytes)", v2.Len(), v1.Len())
	}
	t.Logf("%d transactions: format 1 %d bytes, format 2 %d bytes (%.1f%% smaller)",
		len(c.Transactions), v1.Len(), v2.Len(), 100*(1-float64(v2.Len())/float64(v1.Len())))
}

// TestLoadedCorpusHasColumnarView: a format-2 round trip restores the
// contiguous-scan view directly from the wire blocks, satisfying the same
// position-by-position invariants as a builder-built corpus.
func TestLoadedCorpusHasColumnarView(t *testing.T) {
	c := buildPaperCorpus(t)
	back := roundtrip(t, c)
	assertColumnarMirrors(t, back)
	// The flat wire arena backs both the view and every transaction: the
	// span recorded on each transaction must address its own items.
	for _, tr := range back.Transactions {
		cols, start := tr.ColumnarSpan()
		if cols == nil {
			t.Fatal("restored transaction has no span")
		}
		tps := cols.TagPathSpan(start, tr.Len())
		for j, id := range tr.Items {
			if tps[j] != back.Items.Get(id).TagPath {
				t.Fatalf("restored span tag path mismatch at %d", j)
			}
		}
	}
}
