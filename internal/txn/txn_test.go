package txn

import (
	"sync"
	"testing"

	"xmlclust/internal/tuple"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

const paperDoc = `
<dblp>
  <inproceedings key="conf/kdd/ZakiA03">
    <author>M.J. Zaki</author>
    <author>C.C. Aggarwal</author>
    <title>XRules: an effective structural classifier for XML data</title>
    <year>2003</year>
    <booktitle>KDD</booktitle>
    <pages>316-325</pages>
  </inproceedings>
  <inproceedings key="conf/kdd/Zaki02">
    <author>M.J. Zaki</author>
    <title>Efficiently mining frequent trees in a forest</title>
    <year>2002</year>
    <booktitle>KDD</booktitle>
    <pages>71-80</pages>
  </inproceedings>
</dblp>`

func buildPaperCorpus(t *testing.T) *Corpus {
	t.Helper()
	tree, err := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Build([]*xmltree.Tree{tree}, BuildOptions{})
}

// TestPaperItemDomain reproduces Fig. 4: 3 transactions over 11 distinct
// items.
func TestPaperItemDomain(t *testing.T) {
	c := buildPaperCorpus(t)
	if len(c.Transactions) != 3 {
		t.Fatalf("transactions = %d, want 3", len(c.Transactions))
	}
	if c.Items.Len() != 11 {
		t.Fatalf("items = %d, want 11 (Fig. 4(b))", c.Items.Len())
	}
	for _, tr := range c.Transactions {
		if tr.Len() != 6 {
			t.Errorf("transaction %d has %d items, want 6", tr.TupleIndex, tr.Len())
		}
	}
}

// TestPaperSharedItems checks that tr1 and tr2 share 5 items (all but the
// author) and tr3 shares the booktitle and author items as in Fig. 4(c).
func TestPaperSharedItems(t *testing.T) {
	c := buildPaperCorpus(t)
	tr1, tr2, tr3 := c.Transactions[0], c.Transactions[1], c.Transactions[2]
	if got := tr1.Len() + tr2.Len() - UnionSize(tr1, tr2); got != 5 {
		t.Errorf("tr1∩tr2 = %d, want 5", got)
	}
	// tr3 shares booktitle 'KDD' and author 'M.J. Zaki' with tr1.
	if got := tr1.Len() + tr3.Len() - UnionSize(tr1, tr3); got != 2 {
		t.Errorf("tr1∩tr3 = %d, want 2", got)
	}
	// tr2 (Aggarwal tuple) shares only booktitle with tr3.
	if got := tr2.Len() + tr3.Len() - UnionSize(tr2, tr3); got != 1 {
		t.Errorf("tr2∩tr3 = %d, want 1", got)
	}
}

func TestItemTableInternSemantics(t *testing.T) {
	paths := xmltree.NewPathTable()
	items := NewItemTable(paths)
	p := paths.Intern(xmltree.ParsePath("a.b.S"))
	id1 := items.Intern(p, "hello")
	id2 := items.Intern(p, "hello")
	id3 := items.Intern(p, "world")
	if id1 != id2 {
		t.Errorf("same item interned twice")
	}
	if id1 == id3 {
		t.Errorf("different answers share id")
	}
	it := items.Get(id1)
	if it.Answer != "hello" || it.Path != p {
		t.Errorf("item fields wrong: %+v", it)
	}
	if got := paths.Path(it.TagPath).String(); got != "a.b" {
		t.Errorf("tag path = %q", got)
	}
}

func TestItemFlatten(t *testing.T) {
	paths := xmltree.NewPathTable()
	items := NewItemTable(paths)
	p := paths.Intern(xmltree.ParsePath("a.b.S"))
	raw1 := items.Intern(p, "x")
	raw2 := items.Intern(p, "y")
	syn := items.InternSynthetic(p, MergedAnswerKey([]string{"x", "y"}), vector.Sparse{}, []ItemID{raw1, raw2})
	if got := items.Get(raw1).Flatten(); len(got) != 1 || got[0] != raw1 {
		t.Errorf("raw flatten = %v", got)
	}
	if got := items.Get(syn).Flatten(); len(got) != 2 {
		t.Errorf("synthetic flatten = %v", got)
	}
	if !items.Get(syn).Synthetic {
		t.Error("synthetic flag unset")
	}
	// Equal conflations intern to the same id.
	syn2 := items.InternSynthetic(p, MergedAnswerKey([]string{"y", "x"}), vector.Sparse{}, []ItemID{raw1, raw2})
	if syn != syn2 {
		t.Errorf("equal conflations got distinct ids")
	}
}

func TestMergedAnswerKeyCanonical(t *testing.T) {
	a := MergedAnswerKey([]string{"b", "a", "b", ""})
	b := MergedAnswerKey([]string{"a", "b"})
	if a != b {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
	if MergedAnswerKey(nil) != "" {
		t.Errorf("empty key should be empty string")
	}
}

func TestNewTransactionDedupSort(t *testing.T) {
	tr := NewTransaction([]ItemID{5, 1, 5, 3, 1}, 0, 0, -1)
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Items[i-1] >= tr.Items[i] {
			t.Fatalf("not sorted: %v", tr.Items)
		}
	}
	if !tr.Contains(3) || tr.Contains(2) {
		t.Errorf("Contains wrong")
	}
}

func TestUnionSize(t *testing.T) {
	a := NewTransaction([]ItemID{1, 2, 3}, 0, 0, -1)
	b := NewTransaction([]ItemID{3, 4}, 0, 0, -1)
	if got := UnionSize(a, b); got != 4 {
		t.Errorf("union = %d, want 4", got)
	}
	empty := NewTransaction(nil, 0, 0, -1)
	if got := UnionSize(a, empty); got != 3 {
		t.Errorf("union with empty = %d", got)
	}
	if got := UnionSize(empty, empty); got != 0 {
		t.Errorf("union of empties = %d", got)
	}
}

func TestTransactionEqualClone(t *testing.T) {
	a := NewTransaction([]ItemID{1, 2}, 3, 4, 5)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Items[0] = 9
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if a.Equal(nil) {
		t.Error("equal to nil")
	}
	if a.Equal(NewTransaction([]ItemID{1}, 0, 0, -1)) {
		t.Error("different lengths equal")
	}
}

func TestBuildLabelsPropagate(t *testing.T) {
	tree, _ := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	c := Build([]*xmltree.Tree{tree}, BuildOptions{Labels: []int{7}})
	for _, tr := range c.Transactions {
		if tr.Label != 7 {
			t.Errorf("label = %d, want 7", tr.Label)
		}
		if tr.Doc != 0 {
			t.Errorf("doc = %d, want 0", tr.Doc)
		}
	}
}

func TestBuildTruncationCounter(t *testing.T) {
	tree := xmltree.NewTree("r")
	for g := 0; g < 4; g++ {
		for c := 0; c < 6; c++ {
			el := tree.AddElement(tree.Root, map[int]string{0: "a", 1: "b", 2: "c", 3: "d"}[g])
			tree.AddText(el, MergedAnswerKey([]string{string(rune('a' + c))}))
		}
	}
	c := Build([]*xmltree.Tree{tree}, BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: 5}})
	if c.TruncatedDocs != 1 {
		t.Errorf("TruncatedDocs = %d, want 1", c.TruncatedDocs)
	}
	if len(c.Transactions) != 5 {
		t.Errorf("transactions = %d, want 5", len(c.Transactions))
	}
}

func TestMaxTransactionLen(t *testing.T) {
	trs := []*Transaction{
		NewTransaction([]ItemID{1}, 0, 0, -1),
		NewTransaction([]ItemID{1, 2, 3}, 0, 0, -1),
	}
	if got := MaxTransactionLen(trs); got != 3 {
		t.Errorf("MaxTransactionLen = %d", got)
	}
	if got := MaxTransactionLen(nil); got != 0 {
		t.Errorf("MaxTransactionLen(nil) = %d", got)
	}
}

func TestTermTable(t *testing.T) {
	tt := NewTermTable()
	a := tt.Intern("cluster")
	b := tt.Intern("cluster")
	c := tt.Intern("xml")
	if a != b || a == c {
		t.Errorf("intern ids wrong: %d %d %d", a, b, c)
	}
	if tt.Len() != 2 {
		t.Errorf("Len = %d", tt.Len())
	}
	if tt.Term(a) != "cluster" {
		t.Errorf("Term = %q", tt.Term(a))
	}
	if id, ok := tt.Lookup("xml"); !ok || id != c {
		t.Errorf("Lookup = %d %v", id, ok)
	}
	if _, ok := tt.Lookup("absent"); ok {
		t.Error("found absent term")
	}
}

func TestItemTableConcurrentIntern(t *testing.T) {
	paths := xmltree.NewPathTable()
	items := NewItemTable(paths)
	p := paths.Intern(xmltree.ParsePath("a.b.S"))
	var wg sync.WaitGroup
	results := make([]ItemID, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = items.Intern(p, "shared")
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if results[g] != results[0] {
			t.Fatalf("concurrent intern diverged")
		}
	}
	if items.Len() != 1 {
		t.Fatalf("items = %d, want 1", items.Len())
	}
}

func TestCorpusMaxDepth(t *testing.T) {
	c := buildPaperCorpus(t)
	if c.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", c.MaxDepth)
	}
}
