package txn

import (
	"bytes"
	"fmt"
	"testing"

	"xmlclust/internal/tuple"
	"xmlclust/internal/xmltree"
)

func builderTestTrees(t *testing.T, n int) []*xmltree.Tree {
	t.Helper()
	trees := make([]*xmltree.Tree, n)
	for i := range trees {
		doc := fmt.Sprintf(
			`<doc id="%d"><title>title %d</title><a>alpha %d</a><a>beta</a><nested><deep>leaf %d</deep></nested></doc>`,
			i, i, i%3, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tree
	}
	return trees
}

func corpusFingerprint(t *testing.T, c *Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBuilderMatchesBatchBuild(t *testing.T) {
	opts := BuildOptions{
		Tuple:  tuple.Options{MaxTuplesPerTree: 8},
		Labels: []int{2, 0, 1}, // shorter than the corpus: tail docs → −1
	}
	mk := func() []*xmltree.Tree { return builderTestTrees(t, 5) }

	batch := Build(mk(), opts)
	b := NewBuilder(opts)
	for _, tree := range mk() {
		b.Add(tree)
	}
	incremental := b.Finish()

	if !bytes.Equal(corpusFingerprint(t, batch), corpusFingerprint(t, incremental)) {
		t.Fatal("incremental builder corpus differs from batch Build")
	}
	if b.Docs() != 5 {
		t.Fatalf("Docs() = %d, want 5", b.Docs())
	}
	for i, tr := range incremental.Transactions {
		want := -1
		if tr.Doc < len(opts.Labels) {
			want = opts.Labels[tr.Doc]
		}
		if tr.Label != want {
			t.Fatalf("transaction %d (doc %d) label %d, want %d", i, tr.Doc, tr.Label, want)
		}
	}
}

func TestBuilderAddLabeledOverrides(t *testing.T) {
	trees := builderTestTrees(t, 2)
	b := NewBuilder(BuildOptions{})
	b.AddLabeled(trees[0], 7)
	b.AddLabeled(trees[1], -1)
	c := b.Finish()
	for _, tr := range c.Transactions {
		want := 7
		if tr.Doc == 1 {
			want = -1
		}
		if tr.Label != want {
			t.Fatalf("doc %d label %d, want %d", tr.Doc, tr.Label, want)
		}
	}
}

// recordingSink verifies the observer contract: called once per document,
// in order, with exactly that document's transactions.
type recordingSink struct {
	docs []int
	txns []int
}

func (r *recordingSink) ObserveDoc(doc int, trs []*Transaction) {
	r.docs = append(r.docs, doc)
	r.txns = append(r.txns, len(trs))
	for _, tr := range trs {
		if tr.Doc != doc {
			panic(fmt.Sprintf("sink got transaction of doc %d in doc %d's batch", tr.Doc, doc))
		}
	}
}

func TestBuilderObserveDocOrder(t *testing.T) {
	trees := builderTestTrees(t, 4)
	sink := &recordingSink{}
	b := NewBuilder(BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: 8}})
	b.Observe(sink)
	for _, tree := range trees {
		b.Add(tree)
	}
	c := b.Finish()
	if len(sink.docs) != 4 {
		t.Fatalf("sink saw %d documents, want 4", len(sink.docs))
	}
	total := 0
	for i, d := range sink.docs {
		if d != i {
			t.Fatalf("sink docs out of order: %v", sink.docs)
		}
		total += sink.txns[i]
	}
	if total != len(c.Transactions) {
		t.Fatalf("sink saw %d transactions, corpus has %d", total, len(c.Transactions))
	}
}

func TestBuilderTruncationAndDepth(t *testing.T) {
	// Many same-label siblings force tuple truncation at a tiny cap.
	wide := "<r>"
	for i := 0; i < 6; i++ {
		wide += fmt.Sprintf("<x><y>a%d</y></x>", i)
	}
	wide += "</r>"
	tree, err := xmltree.ParseString(wide, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: 2}})
	b.Add(tree)
	c := b.Finish()
	if c.TruncatedDocs != 1 {
		t.Fatalf("TruncatedDocs = %d, want 1", c.TruncatedDocs)
	}
	if c.MaxDepth != tree.Depth() {
		t.Fatalf("MaxDepth = %d, want %d", c.MaxDepth, tree.Depth())
	}
}

// TestBuilderUseAfterFinishPanics pins the use-after-Finish guard on every
// mutating entry point: a silent post-Finish append would grow a corpus
// whose itf weights are already finalized, leaving the new items with
// stale zero weights — exactly the corruption an online serving layer
// would otherwise hit.
func TestBuilderUseAfterFinishPanics(t *testing.T) {
	tree := builderTestTrees(t, 1)[0]
	cases := []struct {
		name string
		use  func(b *Builder)
	}{
		{"Add", func(b *Builder) { b.Add(tree) }},
		{"AddLabeled", func(b *Builder) { b.AddLabeled(tree, 3) }},
		{"AddExtracted", func(b *Builder) {
			b.AddExtracted(tree, tuple.Extract(tree, tuple.Options{}), -1)
		}},
		{"Observe", func(b *Builder) { b.Observe(&recordingSink{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(BuildOptions{})
			b.Finish()
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after Finish should panic", tc.name)
				}
			}()
			tc.use(b)
		})
	}
}

// TestReopenBuilder pins the deliberate escape hatch: reopening a finished
// corpus appends documents with non-colliding ids against the shared
// interning tables, and the reopened builder re-arms the Finish guard.
func TestReopenBuilder(t *testing.T) {
	trees := builderTestTrees(t, 3)
	opts := BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: 8}}
	b := NewBuilder(opts)
	b.Add(trees[0])
	b.Add(trees[1])
	c := b.Finish()
	itemsBefore, txnsBefore := c.Items.Len(), len(c.Transactions)

	rb := ReopenBuilder(c, b.Docs(), opts)
	if rb.Corpus() != c {
		t.Fatal("reopened builder must build onto the same corpus")
	}
	sink := &recordingSink{}
	rb.Observe(sink)
	rb.AddLabeled(trees[2], 5)
	if got := rb.Finish(); got != c {
		t.Fatal("Finish of a reopened builder must return the same corpus")
	}

	if len(c.Transactions) <= txnsBefore {
		t.Fatal("reopened builder appended no transactions")
	}
	for _, tr := range c.Transactions[txnsBefore:] {
		if tr.Doc != 2 {
			t.Fatalf("appended transaction carries doc id %d, want 2", tr.Doc)
		}
		if tr.Label != 5 {
			t.Fatalf("appended transaction carries label %d, want 5", tr.Label)
		}
	}
	if len(sink.docs) != 1 || sink.docs[0] != 2 {
		t.Fatalf("sink saw docs %v, want [2]", sink.docs)
	}
	// Shared interning: trees repeat answers, so the appended document must
	// dedupe against existing items rather than re-intern everything.
	if grown := c.Items.Len() - itemsBefore; grown >= itemsBefore {
		t.Fatalf("item table grew by %d from %d — interning not shared?", grown, itemsBefore)
	}

	// The reopened builder's own Finish re-arms the guard.
	defer func() {
		if recover() == nil {
			t.Fatal("Add after reopened Finish should panic")
		}
	}()
	rb.Add(trees[0])
}
