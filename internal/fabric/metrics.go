package fabric

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// Metrics is the fabric's per-peer observability surface: monotonic counters
// updated lock-free from the session goroutine, read from an optional debug
// HTTP listener (cxkpeer -debug-addr) mirroring cxkserve's /v1/stats.
type Metrics struct {
	rounds      atomic.Int64
	ckptWritten atomic.Int64
	ckptLoaded  atomic.Int64
	rebalanced  atomic.Int64 // bytes of partition slices sent or received
	epoch       atomic.Int64
	staleDrops  atomic.Int64
	suspects    atomic.Int64
	lastBeat    atomic.Int64 // unix nanos of the last round boundary
}

// MetricsSnapshot is the JSON shape served at GET /v1/stats.
type MetricsSnapshot struct {
	Rounds              int64   `json:"rounds"`
	CheckpointsWritten  int64   `json:"checkpoints_written"`
	CheckpointsRestored int64   `json:"checkpoints_restored"`
	BytesRebalanced     int64   `json:"bytes_rebalanced"`
	Epoch               int64   `json:"epoch"`
	StaleFramesDropped  int64   `json:"stale_frames_dropped"`
	SuspectsRaised      int64   `json:"suspects_raised"`
	LastBeatAgeSeconds  float64 `json:"last_beat_age_seconds"`
}

func (m *Metrics) beat() { m.lastBeat.Store(time.Now().UnixNano()) }

// AddStaleDrops folds node-level stale-frame drops into the snapshot (the
// p2p layer counts them; the fabric only reports them).
func (m *Metrics) AddStaleDrops(n int64) { m.staleDrops.Add(n) }

// atomicFlag is a set/clear/test bool shared between the session goroutine
// and the process's control surface (signal handlers, join bootstrap).
type atomicFlag struct{ v atomic.Bool }

func (f *atomicFlag) set()        { f.v.Store(true) }
func (f *atomicFlag) clear()      { f.v.Store(false) }
func (f *atomicFlag) isSet() bool { return f.v.Load() }

// Snapshot captures the counters at one instant.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Rounds:              m.rounds.Load(),
		CheckpointsWritten:  m.ckptWritten.Load(),
		CheckpointsRestored: m.ckptLoaded.Load(),
		BytesRebalanced:     m.rebalanced.Load(),
		Epoch:               m.epoch.Load(),
		StaleFramesDropped:  m.staleDrops.Load(),
		SuspectsRaised:      m.suspects.Load(),
		LastBeatAgeSeconds:  -1,
	}
	if beat := m.lastBeat.Load(); beat != 0 {
		s.LastBeatAgeSeconds = time.Since(time.Unix(0, beat)).Seconds()
	}
	return s
}

// Handler serves the counters:
//
//	GET /v1/stats → MetricsSnapshot
//	GET /healthz  → 200 "ok"
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m.Snapshot())
	})
	return mux
}
