package fabric

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xmlclust/internal/core"
)

func testState(round, epoch int) *core.SessionState {
	return &core.SessionState{
		Epoch: epoch, Round: round, Rounds: round, K: 2,
		Zs:     [][]int{{0}, {1}},
		Assign: []int{0, 1, 0},
		Sizes:  []int{2, 1},
		Global: []core.WireTxn{{}, {}}, LocalRp: []core.WireTxn{{}, {}},
	}
}

func TestStoreSaveLoadLatest(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = 0xfeedface
	if _, err := st.Latest(1, fp); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: want ErrNoCheckpoint, got %v", err)
	}
	for _, r := range []int{0, 2, 4} {
		if err := st.Save(1, fp, testState(r, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Save(3, fp, testState(7, 0)); err != nil {
		t.Fatal(err)
	}
	rounds, err := st.Rounds(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 4 {
		t.Fatalf("slot 1 rounds = %v", rounds)
	}
	latest, err := st.LatestRound(1)
	if err != nil || latest != 4 {
		t.Fatalf("LatestRound = %d, %v; want 4", latest, err)
	}
	got, err := st.Load(1, 2, fp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 2 || got.K != 2 || len(got.Assign) != 3 {
		t.Fatalf("loaded state diverges: %+v", got)
	}
	// Overwriting a round is idempotent (recovery replays boundaries).
	if err := st.Save(1, fp, testState(2, 1)); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load(1, 2, fp)
	if err != nil || got.Epoch != 1 {
		t.Fatalf("overwrite not visible: epoch %d, %v", got.Epoch, err)
	}
}

func TestStoreFingerprintMismatch(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(0, 111, testState(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(0, 1, 222); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("want ErrCheckpointMismatch, got %v", err)
	}
	if _, err := st.Latest(0, 222); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("Latest: want ErrCheckpointMismatch, got %v", err)
	}
	if _, err := st.Load(0, 9, 111); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing round: want ErrNoCheckpoint, got %v", err)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Stray files (aborted temp writes, user debris) must not break scans.
	for _, name := range []string{"ckpt-12345.tmp", "notes.txt", "ckpt-x-ry.gob"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Save(0, 1, testState(3, 0)); err != nil {
		t.Fatal(err)
	}
	latest, err := st.LatestRound(0)
	if err != nil || latest != 3 {
		t.Fatalf("LatestRound = %d, %v; want 3", latest, err)
	}
}

func TestConfigFingerprintDistinguishes(t *testing.T) {
	base := ConfigFingerprint(4, 3, 0.5, 0.6, 7, 100, 42)
	variants := []uint64{
		ConfigFingerprint(5, 3, 0.5, 0.6, 7, 100, 42),
		ConfigFingerprint(4, 4, 0.5, 0.6, 7, 100, 42),
		ConfigFingerprint(4, 3, 0.4, 0.6, 7, 100, 42),
		ConfigFingerprint(4, 3, 0.5, 0.7, 7, 100, 42),
		ConfigFingerprint(4, 3, 0.5, 0.6, 8, 100, 42),
		ConfigFingerprint(4, 3, 0.5, 0.6, 7, 101, 42),
		ConfigFingerprint(4, 3, 0.5, 0.6, 7, 100, 43),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with the base fingerprint", i)
		}
	}
	if again := ConfigFingerprint(4, 3, 0.5, 0.6, 7, 100, 42); again != base {
		t.Error("fingerprint is not deterministic")
	}
}
