package fabric

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	m := &Metrics{}
	m.rounds.Add(5)
	m.ckptWritten.Add(3)
	m.ckptLoaded.Add(1)
	m.rebalanced.Add(4096)
	m.epoch.Store(2)
	m.AddStaleDrops(7)
	m.beat()

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: %s", resp.Status)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Rounds != 5 || snap.CheckpointsWritten != 3 || snap.CheckpointsRestored != 1 ||
		snap.BytesRebalanced != 4096 || snap.Epoch != 2 || snap.StaleFramesDropped != 7 {
		t.Fatalf("snapshot diverges: %+v", snap)
	}
	if snap.LastBeatAgeSeconds < 0 {
		t.Fatalf("beat not recorded: %+v", snap)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %s", hz.Status)
	}
}

func TestMetricsNeverBeatenAge(t *testing.T) {
	m := &Metrics{}
	if age := m.Snapshot().LastBeatAgeSeconds; age != -1 {
		t.Fatalf("fresh metrics report age %v, want -1", age)
	}
}
