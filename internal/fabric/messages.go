package fabric

import (
	"xmlclust/internal/core"
	"xmlclust/internal/p2p"
	"xmlclust/internal/txn"
)

// Control-plane messages of the elastic fabric. All of them implement
// core.ControlPayload, so sessions route them to the fabric hooks from any
// phase; they travel epoch-less (p2p.EpochAny) because control traffic is
// what moves peers BETWEEN membership epochs — a node-level epoch filter
// must never drop the very message that would advance a straggler.

// JoinMsg asks the coordinator to admit the sender into the session: a
// replacement for a crashed peer (-resume, HasStore true — the local
// checkpoint store survived), or a fresh process taking over a slot
// (-join, HasStore false — the coordinator streams the state over).
type JoinMsg struct {
	// Slot is the peer id the sender wants to occupy.
	Slot int
	// HasStore reports whether the sender can restore rounds ≤ Latest from
	// its local checkpoint store.
	HasStore bool
	// Latest is the newest locally restorable round (-1 when none).
	Latest int
	// Fingerprint is the sender's run-configuration fingerprint; it must
	// match the coordinator's or the join is rejected.
	Fingerprint uint64
}

// CheckpointMsg replicates a member's round-boundary state to the
// coordinator, so a crashed member's slot can be handed to a fresh process
// that never saw the member's disk.
type CheckpointMsg struct {
	Slot        int
	Fingerprint uint64
	State       core.SessionState
}

// SuspectMsg reports a stalled receive: a member that exhausted one round
// timeout tells the coordinator something is wrong (and, by getting an
// error back from the transport, learns whether the coordinator itself is
// the casualty).
type SuspectMsg struct {
	From  int
	Round int
	Phase int
}

// LeaveMsg announces a graceful departure at a round boundary: the sender
// hands its partition back by attaching its final boundary state, which the
// coordinator holds as the slot's checkpoint until a replacement joins.
type LeaveMsg struct {
	Slot        int
	Fingerprint uint64
	State       core.SessionState
}

// ResumeMsg is the coordinator's rollback barrier: every surviving member
// restores its own checkpoint at Round from local storage and re-enters the
// round loop under Epoch.
type ResumeMsg struct {
	Epoch int
	Round int
	// Joined lists the slots being taken over by new processes in this
	// epoch. Survivors must drop any cached transport connection to those
	// slots: the connection leads to the dead predecessor, and TCP loses
	// the first frame written to a dead socket silently.
	Joined []int
}

// SliceMsg is the coordinator's state transfer to a storeless joiner: the
// slot's replicated session state at the rollback round plus the columnar
// blocks of the slot's partition slice (PR 7 format-2 layout) for
// verification against the joiner's locally loaded corpus.
type SliceMsg struct {
	Slot        int
	Epoch       int
	Round       int
	Fingerprint uint64
	State       core.SessionState
	Slice       txn.ColumnarSlice
}

// SessionControl marks the fabric messages as session-control payloads.
func (JoinMsg) SessionControl()       {}
func (CheckpointMsg) SessionControl() {}
func (SuspectMsg) SessionControl()    {}
func (LeaveMsg) SessionControl()      {}
func (ResumeMsg) SessionControl()     {}
func (SliceMsg) SessionControl()      {}

func init() {
	p2p.RegisterWireType(JoinMsg{})
	p2p.RegisterWireType(CheckpointMsg{})
	p2p.RegisterWireType(SuspectMsg{})
	p2p.RegisterWireType(LeaveMsg{})
	p2p.RegisterWireType(ResumeMsg{})
	p2p.RegisterWireType(SliceMsg{})
}

// epochStamper is the transport capability of stamping an explicit epoch on
// one send; p2p.Node and TCPTransport implement it.
type epochStamper interface {
	SendStamped(from, to, epoch int, payload any) error
}

// connResetter is the transport capability of dropping a cached outgoing
// connection (p2p.Node). The fabric resets the connection to a slot whenever
// it learns a new process occupies it; transports without connection caching
// (ChanTransport) have nothing to reset.
type connResetter interface {
	ResetConn(to int)
}

// resetConn drops the transport's cached connection to a peer, if the
// transport caches connections at all.
func resetConn(tr p2p.Transport, to int) {
	if cr, ok := tr.(connResetter); ok {
		cr.ResetConn(to)
	}
}

// sendCtl delivers a control message epoch-less when the transport can
// stamp (so node-level filters pass it through regardless of view), and
// plainly otherwise (sessions route control payloads before any epoch
// check, so in-process transports need no stamping).
func sendCtl(tr p2p.Transport, from, to int, payload any) error {
	if es, ok := tr.(epochStamper); ok {
		return es.SendStamped(from, to, p2p.EpochAny, payload)
	}
	return tr.Send(from, to, payload)
}
