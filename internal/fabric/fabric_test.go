package fabric

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"xmlclust/internal/core"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// fabricCorpus builds a randomized tie-heavy corpus: documents draw from
// three templates with tiny vocabularies, so many transactions are
// identical across documents and similarity ties abound — exactly the
// regime where a nondeterministic restore would diverge visibly.
func fabricCorpus(t testing.TB, docs int, seed int64) *txn.Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	authors := []string{"alice cooper", "bob dylan", "carol king"}
	topics := []string{"mining frequent patterns", "routing wireless networks", "parsing xml streams"}
	venues := []string{"KDD", "NETCONF", "XMLPRAGUE"}
	var trees []*xmltree.Tree
	for i := 0; i < docs; i++ {
		g := rng.Intn(len(topics))
		doc := fmt.Sprintf(`<db><paper key="p%d">
			<writer>%s</writer>
			<name>%s number%d</name>
			<venue>%s</venue>
		</paper></db>`, i, authors[g], topics[g], rng.Intn(3), venues[rng.Intn(len(venues))])
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := txn.Build(trees, txn.BuildOptions{})
	weighting.Apply(corpus)
	return corpus
}

// hookFns adapts closures to core.Hooks (nil fields are pass-through).
type hookFns struct {
	boundary func(st *core.SessionState) (*core.SessionState, error)
}

func (h *hookFns) RoundBoundary(st *core.SessionState) (*core.SessionState, error) {
	if h.boundary != nil {
		return h.boundary(st)
	}
	return nil, nil
}
func (h *hookFns) Control(env p2p.Envelope) (*core.SessionState, error)       { return nil, nil }
func (h *hookFns) Deadline(ph core.Phase, round int) (*core.SessionState, error) { return nil, nil }
func (h *hookFns) SendFailed(to, round int, err error) error                  { return err }

func gobBytes(t *testing.T, st *core.SessionState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runPair runs an m-peer in-process session over a channel transport,
// capturing every peer's round-boundary states. When initials is non-nil
// the peers install those states instead of waiting for a StartMsg.
func runPair(t *testing.T, corpus *txn.Corpus, part [][]int, k int, initials []*core.SessionState) ([]*core.SessionResult, [][]*core.SessionState) {
	t.Helper()
	m := len(part)
	tr := p2p.NewChanTransport(m, nil)
	defer tr.Close()
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	states := make([][]*core.SessionState, m)
	peers := make([]*core.Peer, m)
	for id := 0; id < m; id++ {
		id := id
		local := make([]*txn.Transaction, len(part[id]))
		for j, idx := range part[id] {
			local[j] = corpus.Transactions[idx]
		}
		cfg := core.PeerConfig{
			ID: id, Ctx: cx, Local: local, Transport: tr,
			Sizer: core.Sizer(corpus.Items), Seed: 1 + int64(id),
			Hooks: &hookFns{boundary: func(st *core.SessionState) (*core.SessionState, error) {
				states[id] = append(states[id], st)
				return nil, nil
			}},
		}
		if initials != nil {
			cfg.Initial = initials[id]
		}
		peers[id] = core.NewPeer(cfg)
	}
	if initials == nil {
		start := core.StartMsg{Zs: core.ResponsibilityPartition(k, m), K: k, F: 0.5, Gamma: 0.6}
		for i := 0; i < m; i++ {
			if err := tr.Send(0, i, start); err != nil {
				t.Fatal(err)
			}
		}
	}
	results := make([]*core.SessionResult, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for id := 0; id < m; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = peers[id].RunSession(context.Background())
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", id, err)
		}
	}
	return results, states
}

// TestCheckpointRestoreEveryBoundary is the fabric's determinism property
// test: persisting the session state through the Store at EVERY round
// boundary of a tie-heavy session and restarting both peers from the
// restored states replays the remaining session to byte-identical output.
// The store round-trip itself must be byte-stable under gob.
func TestCheckpointRestoreEveryBoundary(t *testing.T) {
	corpus := fabricCorpus(t, 24, 5)
	const k = 3
	part := core.EqualPartition(len(corpus.Transactions), 2, 5)
	ref, states := runPair(t, corpus, part, k, nil)
	refDigest := core.RepsDigest(corpus.Items, ref[0].Reps)

	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = 0xabcde
	common := len(states[0])
	if len(states[1]) < common {
		common = len(states[1])
	}
	if common < 2 {
		t.Fatalf("only %d round boundaries; corpus converges too fast for the property", common)
	}
	for r := 0; r < common; r++ {
		initials := make([]*core.SessionState, 2)
		for id := 0; id < 2; id++ {
			st := states[id][r]
			if err := store.Save(id, fp, st); err != nil {
				t.Fatal(err)
			}
			loaded, err := store.Load(id, st.Round, fp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gobBytes(t, st), gobBytes(t, loaded)) {
				t.Fatalf("peer %d round %d: state changed across the store round-trip", id, r)
			}
			initials[id] = loaded
		}
		res, _ := runPair(t, corpus, part, k, initials)
		for id := 0; id < 2; id++ {
			if !intsEqual(res[id].Assign, ref[id].Assign) {
				t.Fatalf("restore at boundary %d: peer %d assignments diverged", r, id)
			}
		}
		if d := core.RepsDigest(corpus.Items, res[0].Reps); d != refDigest {
			t.Fatalf("restore at boundary %d: representatives diverged (%016x vs %016x)", r, d, refDigest)
		}
	}
	// A checkpoint from a differently configured run must refuse to load.
	if _, err := store.Load(0, states[0][0].Round, fp+1); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("want ErrCheckpointMismatch, got %v", err)
	}
}

// ---------------------------------------------------------------- recovery

var errTestCrash = errors.New("fabric test: simulated crash")

// crashAfter wraps the fabric hooks of the victim: at the given round
// boundary it kills the peer's transport (so survivors see dead-neighbour
// send failures, like a SIGKILL) and fails the session.
type crashAfter struct {
	*Peer
	round   int
	node    *p2p.Node
	crashed chan struct{}
}

func (c *crashAfter) RoundBoundary(st *core.SessionState) (*core.SessionState, error) {
	if st.Round >= c.round {
		c.node.Close()
		close(c.crashed)
		return nil, errTestCrash
	}
	return c.Peer.RoundBoundary(st)
}

// buildNodes starts m loopback nodes with a shared address table.
func buildNodes(t *testing.T, m int) ([]*p2p.Node, []string) {
	t.Helper()
	listeners := make([]net.Listener, m)
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*p2p.Node, m)
	for i := 0; i < m; i++ {
		nodes[i] = p2p.NewNode(i, listeners[i], addrs, p2p.NodeOptions{DialTimeout: 2 * time.Second})
	}
	return nodes, addrs
}

func TestRecoveryAfterCrashResume(t *testing.T) { testRecovery(t, false) }
func TestRecoveryAfterCrashJoin(t *testing.T)   { testRecovery(t, true) }

// testRecovery is the recovery-equivalence gate: a 4-peer session over real
// TCP nodes loses a peer at a round boundary; a replacement process takes
// the slot back — restoring from the victim's surviving checkpoint store
// (resume) or receiving the coordinator's state transfer (join) — and the
// final corpus-wide assignments and representatives must be byte-identical
// to an uninterrupted run.
func testRecovery(t *testing.T, freshStore bool) {
	corpus := fabricCorpus(t, 32, 9)
	const m, k, victim, crashRound = 4, 4, 2, 1
	seed := int64(3)
	roundTimeout := 1200 * time.Millisecond
	params := sim.Params{F: 0.5, Gamma: 0.6}
	part := core.EqualPartition(len(corpus.Transactions), m, seed)

	// Uninterrupted reference (the in-process driver is byte-identical to
	// the multi-process deployment for the same parameters).
	cxRef := sim.NewContext(corpus, params)
	ref, err := core.Run(context.Background(), cxRef, corpus, core.Options{
		K: k, Params: params, Peers: m, Partition: part, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rounds <= crashRound {
		t.Fatalf("reference converged in %d rounds; nothing to crash mid-session", ref.Rounds)
	}
	refDigest := core.RepsDigest(corpus.Items, ref.Reps)

	nodes, addrs := buildNodes(t, m)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	dirs := make([]string, m)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	fp := ConfigFingerprint(k, m, params.F, params.Gamma, seed, len(corpus.Transactions), core.PartitionFingerprint(part))

	runPeer := func(id int, node *p2p.Node, hooks core.Hooks, rejoin bool) (*core.PeerResult, error) {
		// Each peer gets its own similarity context, like one OS process per
		// peer in a real deployment.
		cx := sim.NewContext(corpus, params)
		return core.RunPeer(context.Background(), cx, corpus, core.Options{
			K: k, Params: params, Peers: m, Partition: part, Seed: seed,
			Transport: node, RoundTimeout: roundTimeout, StartupTimeout: 10 * time.Second,
			Hooks: hooks, Rejoin: rejoin,
		}, id)
	}

	crashed := make(chan struct{})
	results := make([]*core.PeerResult, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for id := 0; id < m; id++ {
		store, err := NewStore(dirs[id])
		if err != nil {
			t.Fatal(err)
		}
		fab, err := NewPeer(Config{
			ID: id, Transport: nodes[id], Store: store, Corpus: corpus,
			Partition: part, Fingerprint: fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		var hooks core.Hooks = fab
		if id == victim {
			hooks = &crashAfter{Peer: fab, round: crashRound, node: nodes[victim], crashed: crashed}
		}
		wg.Add(1)
		go func(id int, hooks core.Hooks) {
			defer wg.Done()
			res, err := runPeer(id, nodes[id], hooks, false)
			if id == victim {
				if !errors.Is(err, errTestCrash) {
					errs[id] = fmt.Errorf("victim failed with %v, want the simulated crash", err)
				}
				return
			}
			results[id], errs[id] = res, err
		}(id, hooks)
	}

	<-crashed
	crashedAt := time.Now()

	// The replacement process: same slot, same address, fresh everything
	// else. Resume reuses the victim's checkpoint store; join starts with
	// an empty one and relies on the coordinator's state transfer.
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addrs[victim])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding the victim's address: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	node2 := p2p.NewNode(victim, ln2, addrs, p2p.NodeOptions{DialTimeout: 2 * time.Second})
	defer node2.Close()
	dir2 := dirs[victim]
	if freshStore {
		dir2 = t.TempDir()
	}
	store2, err := NewStore(dir2)
	if err != nil {
		t.Fatal(err)
	}
	fab2, err := NewPeer(Config{
		ID: victim, Transport: node2, Store: store2, Corpus: corpus,
		Partition: part, Fingerprint: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resumedAt time.Time
	resumed := &hookWrap{Peer: fab2, onBoundary: func() {
		if resumedAt.IsZero() {
			resumedAt = time.Now()
		}
	}}
	if err := fab2.SendJoin(); err != nil {
		t.Fatal(err)
	}
	res2, err := runPeer(victim, node2, resumed, true)
	if err != nil {
		t.Fatalf("replacement: %v", err)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", id, err)
		}
	}

	if results[0] == nil || results[0].Global == nil {
		t.Fatal("coordinator produced no corpus-wide assignment")
	}
	if !intsEqual(results[0].Global, ref.Assign) {
		t.Fatal("recovered run diverged from the uninterrupted reference in assignments")
	}
	for _, pr := range []*core.PeerResult{results[0], results[1], results[3], res2} {
		if d := core.RepsDigest(corpus.Items, pr.Reps); d != refDigest {
			t.Fatalf("peer %d representatives diverged (%016x vs %016x)", pr.ID, d, refDigest)
		}
	}

	if resumedAt.IsZero() {
		t.Fatal("replacement never reached a round boundary")
	}
	recovery := resumedAt.Sub(crashedAt)
	t.Logf("recovery (crash → replacement back in the round loop): %v", recovery)
	if recovery > 2*roundTimeout {
		t.Errorf("recovery took %v, above the 2× round-timeout bound (%v)", recovery, 2*roundTimeout)
	}

	snap := fab2.Metrics().Snapshot()
	if snap.CheckpointsRestored < 1 {
		t.Errorf("replacement restored %d checkpoints, want ≥ 1", snap.CheckpointsRestored)
	}
	if freshStore && snap.BytesRebalanced == 0 {
		t.Error("join recovery moved no partition-slice bytes")
	}
	if snap.Epoch < 1 {
		t.Errorf("replacement still at epoch %d, want ≥ 1", snap.Epoch)
	}
}

// hookWrap forwards to the fabric peer, additionally observing boundaries.
type hookWrap struct {
	*Peer
	onBoundary func()
}

func (h *hookWrap) RoundBoundary(st *core.SessionState) (*core.SessionState, error) {
	h.onBoundary()
	return h.Peer.RoundBoundary(st)
}
