// Package fabric implements the elastic peer fabric of distributed
// CXK-means sessions: round-boundary checkpointing with replication to the
// coordinator, dynamic membership (join/leave at round boundaries under
// epoch-stamped views), and failure recovery by rolling every peer back to
// the last common checkpoint.
//
// The fabric layers on internal/core through the core.Hooks interface: it
// never touches protocol internals, only round-boundary states (capture /
// install) and the control-plane messages of messages.go. Because the
// protocol is deterministic given (corpus, partition, seed, k, f, γ), a
// session that loses a peer mid-round and recovers replays to final
// assignments and representatives byte-identical to an uninterrupted run —
// the equivalence the recovery tests enforce.
//
// Roles. Peer 0 (the coordinator) is the membership authority: members
// replicate their boundary checkpoints to it, joins and leaves funnel
// through it, and on failure it computes the rollback barrier — the newest
// round C that every slot can restore — bumps the membership epoch and
// broadcasts ResumeMsg (survivors restore locally) or SliceMsg (a storeless
// joiner receives the slot state plus its partition slice in the columnar
// format-2 layout, verified against the joiner's own corpus). Coordinator
// death is not recovered from: members fail with core.ErrCoordinatorLost.
package fabric

import (
	"fmt"

	"xmlclust/internal/core"
	"xmlclust/internal/p2p"
	"xmlclust/internal/txn"
)

// Defaults for the tunable knobs of Config.
const (
	// DefaultEvery checkpoints every round boundary.
	DefaultEvery = 1
	// DefaultRecoveryWindows grants two extra receive windows after the
	// first expiry before a peer gives up — recovery must complete within
	// 2× the round timeout.
	DefaultRecoveryWindows = 2
)

// Config parameterizes one peer's fabric layer.
type Config struct {
	// ID is this peer's slot (0 = coordinator).
	ID int
	// Transport is the session transport; control traffic is sent through
	// it epoch-less when it supports stamping (p2p.Node, TCPTransport).
	Transport p2p.Transport
	// Store is the local checkpoint store.
	Store *Store
	// Corpus is the locally loaded corpus (partition slices are built and
	// verified against it).
	Corpus *txn.Corpus
	// Partition is the full responsibility partition Z_1..Z_m.
	Partition [][]int
	// Fingerprint is the run-configuration fingerprint (ConfigFingerprint);
	// checkpoints and joins under a different fingerprint are rejected.
	Fingerprint uint64
	// Every is the checkpoint cadence in rounds (default DefaultEvery).
	// Replication to the coordinator happens at the same cadence, so the
	// rollback barrier is always locally restorable by every survivor.
	Every int
	// RecoveryWindows is how many extra receive windows a stalled peer
	// grants recovery before failing with core.ErrRecoveryTimeout (default
	// DefaultRecoveryWindows).
	RecoveryWindows int
	// Metrics receives the fabric counters (optional).
	Metrics *Metrics
}

// Peer is the fabric layer of one session peer. It implements core.Hooks;
// wire it into core.Options.Hooks (plus Rejoin for a joining process) and
// run the session as usual. All hook methods run on the session goroutine;
// SendJoin and RequestLeave are safe from other goroutines.
type Peer struct {
	cfg         Config
	coordinator bool
	epoch       int

	leave   atomicFlag
	joining atomicFlag

	// Failure-detection accounting (session goroutine only).
	windows   int
	suspected bool

	// Coordinator state (session goroutine only).
	pending []JoinMsg
	replica map[int]map[int]*core.SessionState // slot → round → boundary state
	latest  map[int]int                        // slot → newest replicated round
}

// NewPeer validates the configuration and builds the fabric layer.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("fabric: need a transport")
	}
	m := cfg.Transport.Peers()
	if cfg.ID < 0 || cfg.ID >= m {
		return nil, fmt.Errorf("fabric: peer id %d outside transport of %d peers", cfg.ID, m)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("fabric: need a checkpoint store")
	}
	if cfg.Corpus == nil {
		return nil, fmt.Errorf("fabric: need the corpus")
	}
	if len(cfg.Partition) != m {
		return nil, fmt.Errorf("fabric: partition has %d parts for %d peers", len(cfg.Partition), m)
	}
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.RecoveryWindows <= 0 {
		cfg.RecoveryWindows = DefaultRecoveryWindows
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	p := &Peer{cfg: cfg, coordinator: cfg.ID == 0}
	if p.coordinator {
		p.replica = make(map[int]map[int]*core.SessionState, m)
		p.latest = make(map[int]int, m)
		for i := 0; i < m; i++ {
			p.latest[i] = -1
		}
	}
	return p, nil
}

// Metrics returns the peer's counters.
func (p *Peer) Metrics() *Metrics { return p.cfg.Metrics }

// RequestLeave asks for a graceful departure: at the next cadence-aligned
// round boundary the peer hands its final state to the coordinator and the
// session terminates with core.ErrLeft.
func (p *Peer) RequestLeave() { p.leave.set() }

// SendJoin announces this peer to the coordinator as a (re)joining process
// for its slot and must be called before the session runs (with
// core.Options.Rejoin set). A local checkpoint store whose newest
// checkpoint fails the fingerprint check surfaces ErrCheckpointMismatch
// here, before the coordinator is bothered.
func (p *Peer) SendJoin() error {
	if p.coordinator {
		return fmt.Errorf("fabric: the coordinator cannot join (%w on coordinator death)", core.ErrCoordinatorLost)
	}
	p.joining.set()
	return p.sendJoinMsg()
}

func (p *Peer) sendJoinMsg() error {
	latest, err := p.cfg.Store.LatestRound(p.cfg.ID)
	if err != nil {
		return err
	}
	if latest >= 0 {
		// Restorability check up front: a stale store from a different run
		// must not advertise rounds the coordinator would then barrier on.
		if _, err := p.cfg.Store.Load(p.cfg.ID, latest, p.cfg.Fingerprint); err != nil {
			return err
		}
	}
	msg := JoinMsg{Slot: p.cfg.ID, HasStore: latest >= 0, Latest: latest, Fingerprint: p.cfg.Fingerprint}
	if err := sendCtl(p.cfg.Transport, p.cfg.ID, 0, msg); err != nil {
		return fmt.Errorf("%w: join announcement: %v", core.ErrCoordinatorLost, err)
	}
	return nil
}

// RoundBoundary implements core.Hooks: checkpoint at the configured
// cadence, replicate to the coordinator, honor leave requests, and (on the
// coordinator) admit pending joins.
func (p *Peer) RoundBoundary(st *core.SessionState) (*core.SessionState, error) {
	m := p.cfg.Metrics
	m.rounds.Add(1)
	m.epoch.Store(int64(st.Epoch))
	m.beat()
	p.epoch = st.Epoch
	p.windows = 0
	p.suspected = false

	onCadence := st.Round%p.cfg.Every == 0
	if onCadence {
		if err := p.cfg.Store.Save(p.cfg.ID, p.cfg.Fingerprint, st); err != nil {
			return nil, err
		}
		m.ckptWritten.Add(1)
	}

	if p.coordinator {
		if onCadence {
			p.record(0, st)
		}
		if len(p.pending) > 0 {
			return p.admit()
		}
		return nil, nil
	}

	if onCadence {
		if p.leave.isSet() {
			if err := sendCtl(p.cfg.Transport, p.cfg.ID, 0, LeaveMsg{
				Slot: p.cfg.ID, Fingerprint: p.cfg.Fingerprint, State: *st,
			}); err != nil {
				return nil, fmt.Errorf("%w: leave handoff: %v", core.ErrCoordinatorLost, err)
			}
			return nil, core.ErrLeft
		}
		if err := sendCtl(p.cfg.Transport, p.cfg.ID, 0, CheckpointMsg{
			Slot: p.cfg.ID, Fingerprint: p.cfg.Fingerprint, State: *st,
		}); err != nil {
			return nil, fmt.Errorf("%w: checkpoint replication: %v", core.ErrCoordinatorLost, err)
		}
	}
	return nil, nil
}

// Control implements core.Hooks: the fabric's control-plane dispatch.
func (p *Peer) Control(env p2p.Envelope) (*core.SessionState, error) {
	switch msg := env.Payload.(type) {
	case CheckpointMsg:
		if !p.coordinator {
			return nil, nil
		}
		if msg.Fingerprint != p.cfg.Fingerprint {
			return nil, fmt.Errorf("%w: replica from slot %d under fingerprint %016x, this run is %016x",
				ErrCheckpointMismatch, msg.Slot, msg.Fingerprint, p.cfg.Fingerprint)
		}
		st := msg.State
		p.record(msg.Slot, &st)
		return nil, nil

	case LeaveMsg:
		if !p.coordinator {
			return nil, nil
		}
		if msg.Fingerprint != p.cfg.Fingerprint {
			return nil, fmt.Errorf("%w: leave handoff from slot %d under a foreign fingerprint",
				ErrCheckpointMismatch, msg.Slot)
		}
		// The departing peer's final state becomes the slot's checkpoint
		// until a replacement joins; the stalled round then barriers on it.
		st := msg.State
		p.record(msg.Slot, &st)
		return nil, nil

	case JoinMsg:
		if !p.coordinator {
			return nil, nil
		}
		if msg.Fingerprint != p.cfg.Fingerprint {
			// A misconfigured joiner cannot be admitted; dropping the
			// request lets a correctly configured replacement still win.
			return nil, nil
		}
		// The slot is occupied by a new process: a cached connection still
		// leads to its dead predecessor and must not carry the admission.
		resetConn(p.cfg.Transport, msg.Slot)
		for i, q := range p.pending {
			if q.Slot == msg.Slot {
				p.pending[i] = msg
				return nil, nil
			}
		}
		p.pending = append(p.pending, msg)
		return nil, nil

	case SuspectMsg:
		// Informational: the coordinator's own deadline drives recovery,
		// and the member learns about coordinator death from the send
		// failing, not from a reply.
		return nil, nil

	case ResumeMsg:
		if p.coordinator {
			return nil, nil
		}
		for _, slot := range msg.Joined {
			if slot != p.cfg.ID {
				resetConn(p.cfg.Transport, slot)
			}
		}
		st, err := p.cfg.Store.Load(p.cfg.ID, msg.Round, p.cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		st.Epoch = msg.Epoch
		p.cfg.Metrics.ckptLoaded.Add(1)
		p.joining.clear()
		p.windows = 0
		p.suspected = false
		return st, nil

	case SliceMsg:
		if p.coordinator {
			return nil, nil
		}
		if msg.Fingerprint != p.cfg.Fingerprint {
			return nil, fmt.Errorf("%w: state transfer under fingerprint %016x, this run is %016x",
				ErrCheckpointMismatch, msg.Fingerprint, p.cfg.Fingerprint)
		}
		if err := p.cfg.Corpus.VerifyColumnarSlice(&msg.Slice); err != nil {
			return nil, err
		}
		st := msg.State
		st.Epoch = msg.Epoch
		if err := p.cfg.Store.Save(p.cfg.ID, p.cfg.Fingerprint, &st); err != nil {
			return nil, err
		}
		p.cfg.Metrics.ckptWritten.Add(1)
		p.cfg.Metrics.rebalanced.Add(msg.Slice.Bytes())
		p.cfg.Metrics.ckptLoaded.Add(1)
		p.joining.clear()
		p.windows = 0
		p.suspected = false
		return &st, nil
	}
	return nil, nil
}

// Deadline implements core.Hooks: failure detection. A member's first
// expiry raises a SuspectMsg (whose send failure exposes coordinator
// death); the coordinator's expiry is its cue to admit pending joins.
// Either side grants RecoveryWindows extra windows, then gives up.
func (p *Peer) Deadline(phase core.Phase, round int) (*core.SessionState, error) {
	p.windows++
	if p.coordinator {
		if len(p.pending) > 0 {
			st, err := p.admit()
			if err != nil || st != nil {
				return st, err
			}
		}
	} else if p.joining.isSet() {
		// The announcement may have raced a dying coordinator or been sent
		// before the listener came up; re-announce instead of suspecting.
		if err := p.sendJoinMsg(); err != nil {
			return nil, err
		}
	} else if !p.suspected {
		p.suspected = true
		p.cfg.Metrics.suspects.Add(1)
		if err := sendCtl(p.cfg.Transport, p.cfg.ID, 0, SuspectMsg{
			From: p.cfg.ID, Round: round, Phase: int(phase),
		}); err != nil {
			return nil, fmt.Errorf("%w: suspect report: %v", core.ErrCoordinatorLost, err)
		}
	}
	if p.windows > p.cfg.RecoveryWindows {
		return nil, fmt.Errorf("%w: %s round %d stalled through %d windows",
			core.ErrRecoveryTimeout, phase, round, p.windows)
	}
	return nil, nil
}

// SendFailed implements core.Hooks: a failed protocol send to a member is
// swallowed — the receive deadline and the coordinator's barrier reconcile
// the session — but a member that cannot reach the coordinator is done.
func (p *Peer) SendFailed(to, round int, err error) error {
	if !p.coordinator && to == 0 {
		return fmt.Errorf("%w: send to coordinator in round %d: %v", core.ErrCoordinatorLost, round, err)
	}
	return nil
}

// record stores a replicated boundary state on the coordinator and prunes
// rounds below the current barrier (they can never be rolled back to:
// the barrier is the minimum of per-slot latests, which only grows).
func (p *Peer) record(slot int, st *core.SessionState) {
	byRound := p.replica[slot]
	if byRound == nil {
		byRound = make(map[int]*core.SessionState)
		p.replica[slot] = byRound
	}
	byRound[st.Round] = st
	if st.Round > p.latest[slot] {
		p.latest[slot] = st.Round
	}
	if c := p.barrier(); c > 0 {
		for _, rounds := range p.replica {
			for r := range rounds {
				if r < c {
					delete(rounds, r)
				}
			}
		}
	}
}

// barrier returns the newest round every slot has replicated (-1 when some
// slot never has).
func (p *Peer) barrier() int {
	c := int(^uint(0) >> 1)
	for _, r := range p.latest {
		if r < c {
			c = r
		}
	}
	return c
}

// admit computes the rollback barrier for the pending joins, bumps the
// epoch, broadcasts the recovery fan-out and returns the coordinator's own
// state at the barrier for installation. Returns (nil, nil) when some slot
// has nothing to barrier on yet — the joins stay queued for the next
// boundary or window.
func (p *Peer) admit() (*core.SessionState, error) {
	// Per-slot constraint: survivors restore from their own store (≤ their
	// replicated latest); a joining slot can additionally restore from its
	// surviving store, so its constraint is the better of the two.
	joining := make(map[int]JoinMsg, len(p.pending))
	for _, j := range p.pending {
		joining[j.Slot] = j
	}
	c := int(^uint(0) >> 1)
	for slot, r := range p.latest {
		if j, ok := joining[slot]; ok && j.HasStore && j.Latest > r {
			r = j.Latest
		}
		if r < c {
			c = r
		}
	}
	if c < 0 {
		return nil, nil
	}

	newEpoch := p.epoch + 1
	joined := make([]int, 0, len(p.pending))
	for _, j := range p.pending {
		joined = append(joined, j.Slot)
	}
	for _, j := range p.pending {
		if j.HasStore && j.Latest >= c {
			if err := sendCtl(p.cfg.Transport, 0, j.Slot, ResumeMsg{Epoch: newEpoch, Round: c, Joined: joined}); err != nil {
				// The joiner died again; its next announcement re-queues it.
				continue
			}
			continue
		}
		st := p.replica[j.Slot][c]
		if st == nil {
			return nil, fmt.Errorf("fabric: no replica for joining slot %d at barrier round %d", j.Slot, c)
		}
		slice, err := p.cfg.Corpus.ColumnarSlice(p.cfg.Partition[j.Slot])
		if err != nil {
			return nil, err
		}
		out := *st
		out.Epoch = newEpoch
		if err := sendCtl(p.cfg.Transport, 0, j.Slot, SliceMsg{
			Slot: j.Slot, Epoch: newEpoch, Round: c,
			Fingerprint: p.cfg.Fingerprint, State: out, Slice: *slice,
		}); err != nil {
			continue
		}
		p.cfg.Metrics.rebalanced.Add(slice.Bytes())
	}
	for slot := 1; slot < p.cfg.Transport.Peers(); slot++ {
		if _, isJoining := joining[slot]; isJoining {
			continue
		}
		// A survivor that died since its last replica misses the resume;
		// its replacement's join triggers the next barrier.
		_ = sendCtl(p.cfg.Transport, 0, slot, ResumeMsg{Epoch: newEpoch, Round: c, Joined: joined})
	}

	own := p.replica[0][c]
	if own == nil {
		return nil, fmt.Errorf("fabric: coordinator has no own replica at barrier round %d", c)
	}
	for slot := range p.latest {
		if p.latest[slot] > c {
			p.latest[slot] = c
		}
	}
	p.pending = p.pending[:0]
	p.epoch = newEpoch
	p.windows = 0
	p.cfg.Metrics.epoch.Store(int64(newEpoch))
	st := *own
	st.Epoch = newEpoch
	return &st, nil
}
