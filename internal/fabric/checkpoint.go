package fabric

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"xmlclust/internal/core"
)

// Typed checkpoint failures, matched with errors.Is.
var (
	// ErrCheckpointMismatch reports a checkpoint written under a different
	// run configuration (k, f, γ, seed, corpus, partition or peer count):
	// restoring it would replay a different protocol and diverge silently.
	ErrCheckpointMismatch = errors.New("fabric: checkpoint configuration mismatch")
	// ErrNoCheckpoint reports that no restorable checkpoint exists for the
	// requested slot (or round).
	ErrNoCheckpoint = errors.New("fabric: no checkpoint")
)

// ConfigFingerprint condenses the run parameters a checkpoint depends on
// into one comparable value (FNV-1a, like core.PartitionFingerprint). Two
// processes with equal fingerprints replay byte-identically from any common
// checkpoint; everything else is ErrCheckpointMismatch territory.
func ConfigFingerprint(k, peers int, f, gamma float64, seed int64, txns int, partitionHash uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(k))
	mix(uint64(peers))
	mix(math.Float64bits(f))
	mix(math.Float64bits(gamma))
	mix(uint64(seed))
	mix(uint64(txns))
	mix(partitionHash)
	return h
}

// checkpoint is the on-disk envelope: the session state plus the identity
// needed to refuse restoring it into the wrong run.
type checkpoint struct {
	Fingerprint uint64
	Slot        int
	State       core.SessionState
}

// Store persists round-boundary checkpoints, one gob file per (slot,
// round), written atomically (temp file + rename) so a crash mid-write
// never leaves a truncated checkpoint that a restore would trip over.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("fabric: checkpoint store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: checkpoint dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(slot, round int) string {
	return filepath.Join(st.dir, fmt.Sprintf("ckpt-%d-r%d.gob", slot, round))
}

// Save persists a boundary state for the slot under the given
// configuration fingerprint.
func (st *Store) Save(slot int, fp uint64, state *core.SessionState) error {
	tmp, err := os.CreateTemp(st.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("fabric: checkpoint temp: %w", err)
	}
	cp := checkpoint{Fingerprint: fp, Slot: slot, State: *state}
	if err := gob.NewEncoder(tmp).Encode(&cp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: checkpoint encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(slot, state.Round)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fabric: checkpoint publish: %w", err)
	}
	return nil
}

// Load restores the slot's state at the given round. A checkpoint written
// under a different configuration fails with ErrCheckpointMismatch; a
// missing file with ErrNoCheckpoint.
func (st *Store) Load(slot, round int, fp uint64) (*core.SessionState, error) {
	f, err := os.Open(st.path(slot, round))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w for slot %d round %d in %s", ErrNoCheckpoint, slot, round, st.dir)
		}
		return nil, fmt.Errorf("fabric: checkpoint open: %w", err)
	}
	defer f.Close()
	var cp checkpoint
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("fabric: checkpoint decode (slot %d round %d): %w", slot, round, err)
	}
	if cp.Fingerprint != fp {
		return nil, fmt.Errorf("%w: slot %d round %d written under fingerprint %016x, this run is %016x",
			ErrCheckpointMismatch, slot, round, cp.Fingerprint, fp)
	}
	if cp.Slot != slot {
		return nil, fmt.Errorf("%w: file for slot %d carries slot %d", ErrCheckpointMismatch, slot, cp.Slot)
	}
	return &cp.State, nil
}

// Rounds lists the slot's checkpointed rounds in ascending order.
func (st *Store) Rounds(slot int) ([]int, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("fabric: checkpoint scan: %w", err)
	}
	var rounds []int
	for _, e := range entries {
		var s, r int
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-%d-r%d.gob", &s, &r); n == 2 && s == slot {
			rounds = append(rounds, r)
		}
	}
	sort.Ints(rounds)
	return rounds, nil
}

// LatestRound returns the slot's newest checkpointed round, or -1 when the
// store holds none.
func (st *Store) LatestRound(slot int) (int, error) {
	rounds, err := st.Rounds(slot)
	if err != nil {
		return -1, err
	}
	if len(rounds) == 0 {
		return -1, nil
	}
	return rounds[len(rounds)-1], nil
}

// Latest restores the slot's newest checkpoint.
func (st *Store) Latest(slot int, fp uint64) (*core.SessionState, error) {
	round, err := st.LatestRound(slot)
	if err != nil {
		return nil, err
	}
	if round < 0 {
		return nil, fmt.Errorf("%w for slot %d in %s", ErrNoCheckpoint, slot, st.dir)
	}
	return st.Load(slot, round, fp)
}
