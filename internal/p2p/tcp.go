package p2p

import (
	"errors"
	"fmt"
	"net"
)

// TCPTransport is the in-process loopback adapter over the single-peer Node
// transport: it hosts m Nodes on 127.0.0.1 ephemeral ports behind the
// classic all-peers Transport interface, so tests and single-machine runs
// exercise the same wire format, handshake and accounting as a real
// multi-process deployment.
type TCPTransport struct {
	nodes []*Node
}

// NewTCPTransport creates m peers listening on 127.0.0.1 ephemeral ports.
func NewTCPTransport(m int) (*TCPTransport, error) {
	listeners := make([]net.Listener, m)
	addrs := make([]string, m)
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("p2p: listen peer %d: %w", i, err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	t := &TCPTransport{nodes: make([]*Node, m)}
	for i := 0; i < m; i++ {
		t.nodes[i] = NewNode(i, listeners[i], addrs, NodeOptions{})
	}
	return t, nil
}

// Send implements Transport by routing through the sending peer's Node.
func (t *TCPTransport) Send(from, to int, payload any) error {
	if from < 0 || from >= len(t.nodes) {
		return fmt.Errorf("p2p: unknown sender %d", from)
	}
	return t.nodes[from].Send(from, to, payload)
}

// SendStamped sends with an explicit epoch stamp (EpochAny for control
// traffic that must cross membership views) through the sending peer's Node.
func (t *TCPTransport) SendStamped(from, to, epoch int, payload any) error {
	if from < 0 || from >= len(t.nodes) {
		return fmt.Errorf("p2p: unknown sender %d", from)
	}
	return t.nodes[from].SendStamped(from, to, epoch, payload)
}

// Recv implements Transport.
func (t *TCPTransport) Recv(self int) <-chan Envelope { return t.nodes[self].Recv(self) }

// SetEpoch implements EpochSetter by routing to the peer's Node.
func (t *TCPTransport) SetEpoch(self, epoch int) {
	if self >= 0 && self < len(t.nodes) {
		t.nodes[self].SetEpoch(self, epoch)
	}
}

// Peers implements Transport.
func (t *TCPTransport) Peers() int { return len(t.nodes) }

// Close shuts every Node down; it waits for all accept/read goroutines to
// exit before returning. Idempotent.
func (t *TCPTransport) Close() error {
	var firstErr error
	for _, n := range t.nodes {
		if err := n.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats exposes the send-side counters summed over all peers (messages,
// actual encoded bytes).
func (t *TCPTransport) Stats() (msgs, bytes int64) {
	for _, n := range t.nodes {
		m, b := n.SentStats()
		msgs += m
		bytes += b
	}
	return msgs, bytes
}

// RecvStats exposes the receive-side counters summed over all peers. For a
// quiesced transport they reconcile exactly with Stats: frames are
// length-prefixed, so both sides count identical wire sizes.
func (t *TCPTransport) RecvStats() (msgs, bytes int64) {
	for _, n := range t.nodes {
		m, b := n.RecvStats()
		msgs += m
		bytes += b
	}
	return msgs, bytes
}

// Addrs exposes the listen addresses (diagnostics).
func (t *TCPTransport) Addrs() []string {
	addrs := make([]string, len(t.nodes))
	for i, n := range t.nodes {
		addrs[i] = n.Addr()
	}
	return addrs
}

// Node exposes the underlying single-peer transport of one peer.
func (t *TCPTransport) Node(i int) (*Node, error) {
	if i < 0 || i >= len(t.nodes) {
		return nil, errors.New("p2p: node index out of range")
	}
	return t.nodes[i], nil
}
