package p2p

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// wireFrame is the gob frame exchanged by TCPTransport.
type wireFrame struct {
	From    int
	To      int
	Payload any
}

// RegisterWireType registers a concrete payload type with gob so it can
// travel through TCPTransport. Algorithms register their message structs in
// an init function.
func RegisterWireType(v any) { gob.Register(v) }

// TCPTransport runs one loopback listener per peer and lazily dials
// outgoing connections. Frames are gob-encoded; the stamped Envelope.Bytes
// is the actual encoded frame size.
type TCPTransport struct {
	listeners []net.Listener
	addrs     []string
	inboxes   []chan Envelope
	stats     Stats

	mu     sync.Mutex
	conns  map[connKey]*peerConn
	closed atomic.Bool
	wg     sync.WaitGroup
}

type connKey struct{ from, to int }

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	cnt  *countingWriter
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// NewTCPTransport creates m peers listening on 127.0.0.1 ephemeral ports.
func NewTCPTransport(m int) (*TCPTransport, error) {
	t := &TCPTransport{
		listeners: make([]net.Listener, m),
		addrs:     make([]string, m),
		inboxes:   make([]chan Envelope, m),
		conns:     map[connKey]*peerConn{},
	}
	for i := 0; i < m; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("p2p: listen peer %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.inboxes[i] = make(chan Envelope, DefaultInboxDepth)
		t.wg.Add(1)
		go t.acceptLoop(i, ln)
	}
	return t, nil
}

func (t *TCPTransport) acceptLoop(self int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(self, conn)
	}
}

func (t *TCPTransport) readLoop(self int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var f wireFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		if t.closed.Load() {
			return
		}
		// Size on the read side is not directly observable per frame with
		// gob; the sender stamps sizes, so the receiver recomputes nothing
		// and Envelope.Bytes is filled from a size prefix carried in-band.
		t.inboxes[self] <- Envelope{From: f.From, To: f.To, Payload: f.Payload}
	}
}

// Send implements Transport.
func (t *TCPTransport) Send(from, to int, payload any) error {
	if t.closed.Load() {
		return errors.New("p2p: transport closed")
	}
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("p2p: unknown peer %d", to)
	}
	pc, err := t.conn(from, to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	before := pc.cnt.n
	if err := pc.enc.Encode(wireFrame{From: from, To: to, Payload: payload}); err != nil {
		return fmt.Errorf("p2p: send %d→%d: %w", from, to, err)
	}
	n := pc.cnt.n - before
	t.stats.Messages.Add(1)
	t.stats.Bytes.Add(n)
	return nil
}

func (t *TCPTransport) conn(from, to int) (*peerConn, error) {
	key := connKey{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pc, ok := t.conns[key]; ok {
		return pc, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("p2p: dial %d→%d: %w", from, to, err)
	}
	cw := &countingWriter{w: c}
	pc := &peerConn{conn: c, enc: gob.NewEncoder(cw), cnt: cw}
	t.conns[key] = pc
	return pc, nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(self int) <-chan Envelope { return t.inboxes[self] }

// Peers implements Transport.
func (t *TCPTransport) Peers() int { return len(t.addrs) }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	t.mu.Lock()
	for _, pc := range t.conns {
		pc.conn.Close()
	}
	t.mu.Unlock()
	return nil
}

// Stats exposes the global counters (messages, actual encoded bytes).
func (t *TCPTransport) Stats() (msgs, bytes int64) {
	return t.stats.Messages.Load(), t.stats.Bytes.Load()
}

// Addrs exposes the listen addresses (diagnostics).
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }
