package p2p

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

type testMsg struct {
	From int
	Body string
}

func init() { RegisterWireType(testMsg{}) }

func TestChanTransportDelivery(t *testing.T) {
	tr := NewChanTransport(3, func(any) int64 { return 10 })
	defer tr.Close()
	if tr.Peers() != 3 {
		t.Fatalf("Peers = %d", tr.Peers())
	}
	if err := tr.Send(0, 2, testMsg{From: 0, Body: "hi"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-tr.Recv(2):
		if env.From != 0 || env.To != 2 || env.Bytes != 10 {
			t.Errorf("envelope = %+v", env)
		}
		if m, ok := env.Payload.(testMsg); !ok || m.Body != "hi" {
			t.Errorf("payload = %+v", env.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	msgs, bytes := tr.Stats()
	if msgs != 1 || bytes != 10 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestChanTransportSelfSend(t *testing.T) {
	tr := NewChanTransport(1, nil)
	defer tr.Close()
	if err := tr.Send(0, 0, testMsg{Body: "self"}); err != nil {
		t.Fatal(err)
	}
	env := <-tr.Recv(0)
	if env.Payload.(testMsg).Body != "self" {
		t.Error("self-send failed")
	}
}

func TestChanTransportUnknownPeer(t *testing.T) {
	tr := NewChanTransport(2, nil)
	defer tr.Close()
	if err := tr.Send(0, 5, testMsg{}); err == nil {
		t.Error("send to unknown peer should fail")
	}
	if err := tr.Send(0, -1, testMsg{}); err == nil {
		t.Error("send to negative peer should fail")
	}
}

func TestChanTransportClosed(t *testing.T) {
	tr := NewChanTransport(2, nil)
	tr.Close()
	if err := tr.Send(0, 1, testMsg{}); err == nil {
		t.Error("send after close should fail")
	}
}

func TestChanTransportConcurrentSenders(t *testing.T) {
	tr := NewChanTransport(4, func(any) int64 { return 1 })
	defer tr.Close()
	const perSender = 50
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := tr.Send(s, 3, testMsg{From: s}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < 4*perSender; i++ {
		select {
		case <-tr.Recv(3):
		case <-time.After(time.Second):
			t.Fatalf("only %d messages delivered", i)
		}
	}
	msgs, bytes := tr.Stats()
	if msgs != 4*perSender || bytes != 4*perSender {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestTCPTransportDelivery(t *testing.T) {
	defer checkGoroutines(t)()
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Peers() != 3 {
		t.Fatalf("Peers = %d", tr.Peers())
	}
	if len(tr.Addrs()) != 3 {
		t.Fatalf("Addrs = %v", tr.Addrs())
	}
	if err := tr.Send(1, 2, testMsg{From: 1, Body: "over tcp"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-tr.Recv(2):
		if m, ok := env.Payload.(testMsg); !ok || m.Body != "over tcp" || m.From != 1 {
			t.Errorf("payload = %+v", env.Payload)
		}
		if env.From != 1 || env.To != 2 {
			t.Errorf("envelope = %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tcp message not delivered")
	}
	msgs, bytes := tr.Stats()
	if msgs != 1 || bytes <= 0 {
		t.Errorf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

func TestTCPTransportManyMessagesOrdered(t *testing.T) {
	defer checkGoroutines(t)()
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if err := tr.Send(0, 1, testMsg{From: i}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case env := <-tr.Recv(1):
			// Per-connection ordering must hold.
			if env.Payload.(testMsg).From != i {
				t.Fatalf("out of order: got %d want %d", env.Payload.(testMsg).From, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d messages", i)
		}
	}
}

func TestTCPTransportBidirectional(t *testing.T) {
	defer checkGoroutines(t)()
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for dir := 0; dir < 2; dir++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			to := 1 - from
			for i := 0; i < 20; i++ {
				if err := tr.Send(from, to, testMsg{From: from, Body: fmt.Sprint(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(dir)
	}
	wg.Wait()
	for peer := 0; peer < 2; peer++ {
		for i := 0; i < 20; i++ {
			select {
			case <-tr.Recv(peer):
			case <-time.After(5 * time.Second):
				t.Fatalf("peer %d stalled at %d", peer, i)
			}
		}
	}
}

func TestTCPTransportCloseIdempotent(t *testing.T) {
	defer checkGoroutines(t)()
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, 1, testMsg{}); err == nil {
		t.Error("send after close should fail")
	}
}

func TestTimeModelCommTime(t *testing.T) {
	tm := TimeModel{LatencyPerMsg: time.Millisecond, BytesPerSecond: 1000}
	if got := tm.CommTime(0, 0); got != 0 {
		t.Errorf("empty comm time = %v", got)
	}
	// 2 messages + 500 bytes at 1000 B/s → 2ms + 500ms.
	want := 2*time.Millisecond + 500*time.Millisecond
	if got := tm.CommTime(2, 500); got != want {
		t.Errorf("comm time = %v, want %v", got, want)
	}
	// Zero bandwidth: only latency counts.
	tm.BytesPerSecond = 0
	if got := tm.CommTime(3, 1000); got != 3*time.Millisecond {
		t.Errorf("latency-only = %v", got)
	}
}

func TestDefaultTimeModel(t *testing.T) {
	tm := DefaultTimeModel()
	if tm.LatencyPerMsg <= 0 || tm.BytesPerSecond <= 0 {
		t.Errorf("default model degenerate: %+v", tm)
	}
	// 1 GB over gigabit ≈ 8 seconds.
	d := tm.CommTime(0, 1_000_000_000)
	if d < 7*time.Second || d > 9*time.Second {
		t.Errorf("1GB transfer time = %v", d)
	}
}

func BenchmarkChanTransportSend(b *testing.B) {
	tr := NewChanTransport(2, func(any) int64 { return 8 })
	defer tr.Close()
	go func() {
		for range tr.Recv(1) {
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Send(0, 1, testMsg{From: i})
	}
}

// TestTCPTransportRecvStatsReconcile asserts the sender- and receiver-side
// accounting of the TCP adapter agree exactly, and that the read path
// stamps the actual wire size on every envelope.
func TestTCPTransportRecvStatsReconcile(t *testing.T) {
	defer checkGoroutines(t)()
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 30
	for i := 0; i < n; i++ {
		if err := tr.Send(i%3, (i+1)%3, testMsg{From: i, Body: "acct"}); err != nil {
			t.Fatal(err)
		}
	}
	var envBytes int64
	for peer := 0; peer < 3; peer++ {
		for i := 0; i < n/3; i++ {
			select {
			case env := <-tr.Recv(peer):
				if env.Bytes <= 0 {
					t.Fatalf("peer %d: read path did not stamp wire size", peer)
				}
				envBytes += env.Bytes
			case <-time.After(5 * time.Second):
				t.Fatalf("peer %d stalled after %d messages", peer, i)
			}
		}
	}
	sentMsgs, sentBytes := tr.Stats()
	recvMsgs, recvBytes := tr.RecvStats()
	if sentMsgs != n || recvMsgs != n {
		t.Errorf("messages: sent %d recv %d want %d", sentMsgs, recvMsgs, n)
	}
	if sentBytes != recvBytes || sentBytes <= 0 {
		t.Errorf("bytes diverge: sent %d recv %d", sentBytes, recvBytes)
	}
	if envBytes != recvBytes {
		t.Errorf("envelope sizes (%d) disagree with recv counter (%d)", envBytes, recvBytes)
	}
}
