package p2p

import (
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// checkGoroutines returns a deferred leak check: the goroutine count must
// return to its starting level once the transport under test is closed.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// newNodes starts m nodes wired to each other on loopback ephemeral ports.
func newNodes(t *testing.T, m int) []*Node {
	t.Helper()
	listeners := make([]net.Listener, m)
	addrs := make([]string, m)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, m)
	for i := range nodes {
		nodes[i] = NewNode(i, listeners[i], addrs, NodeOptions{})
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

func TestNodeDelivery(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 3)
	if nodes[0].ID() != 0 || nodes[0].Peers() != 3 {
		t.Fatalf("node identity: id=%d m=%d", nodes[0].ID(), nodes[0].Peers())
	}
	if err := nodes[1].Send(1, 2, testMsg{From: 1, Body: "node wire"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-nodes[2].Recv(2):
		if m, ok := env.Payload.(testMsg); !ok || m.Body != "node wire" || m.From != 1 {
			t.Errorf("payload = %+v", env.Payload)
		}
		if env.From != 1 || env.To != 2 {
			t.Errorf("envelope = %+v", env)
		}
		if env.Bytes <= 0 {
			t.Errorf("read path did not stamp wire size: %d", env.Bytes)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
	for _, n := range nodes {
		n.Close()
	}
}

func TestNodeRejectsForeignSender(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	if err := nodes[0].Send(1, 0, testMsg{}); err == nil {
		t.Error("node 0 must refuse to send as peer 1")
	}
	if err := nodes[0].Send(0, 5, testMsg{}); err == nil {
		t.Error("send to unknown peer should fail")
	}
	for _, n := range nodes {
		n.Close()
	}
}

func TestNodeSelfSend(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	if err := nodes[0].Send(0, 0, testMsg{Body: "self"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-nodes[0].Recv(0):
		if env.Payload.(testMsg).Body != "self" {
			t.Error("self-send failed")
		}
		if env.Bytes <= 0 {
			t.Error("self-send not size-accounted")
		}
	case <-time.After(time.Second):
		t.Fatal("self-send not delivered")
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestNodeStatsReconcile sends traffic in every direction and asserts that
// the sender-side and receiver-side counters agree exactly: the frame size
// travels on the wire, so both ends count identical bytes.
func TestNodeStatsReconcile(t *testing.T) {
	defer checkGoroutines(t)()
	const m = 3
	nodes := newNodes(t, m)
	want := 0
	for from := 0; from < m; from++ {
		for to := 0; to < m; to++ {
			for i := 0; i < 5; i++ {
				if err := nodes[from].Send(from, to, testMsg{From: from, Body: "reconcile"}); err != nil {
					t.Fatal(err)
				}
				want++
			}
		}
	}
	// Drain every inbox (delivery also bumps the receive counters).
	got := 0
	var gotBytes int64
	for to := 0; to < m; to++ {
		for i := 0; i < 3*5; i++ {
			select {
			case env := <-nodes[to].Recv(to):
				got++
				gotBytes += env.Bytes
			case <-time.After(5 * time.Second):
				t.Fatalf("peer %d stalled after %d messages", to, i)
			}
		}
	}
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	var sentMsgs, sentBytes, recvMsgs, recvBytes int64
	for _, n := range nodes {
		sm, sb := n.SentStats()
		rm, rb := n.RecvStats()
		sentMsgs += sm
		sentBytes += sb
		recvMsgs += rm
		recvBytes += rb
	}
	if sentMsgs != int64(want) || recvMsgs != int64(want) {
		t.Errorf("message counters: sent %d recv %d want %d", sentMsgs, recvMsgs, want)
	}
	if sentBytes != recvBytes {
		t.Errorf("byte counters diverge: sent %d recv %d", sentBytes, recvBytes)
	}
	if recvBytes != gotBytes {
		t.Errorf("envelope sizes (%d) disagree with recv counter (%d)", gotBytes, recvBytes)
	}
	for _, n := range nodes {
		n.Close()
	}
}

// TestNodeDialRetry starts the receiving listener only after the sender has
// begun dialing: peers of a process cluster boot independently, so sends
// must retry until the neighbour is up.
func TestNodeDialRetry(t *testing.T) {
	defer checkGoroutines(t)()
	// Reserve an address for node 1 without listening on it yet.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := probe.Addr().String()
	probe.Close()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), addr1}
	n0 := NewNode(0, ln0, addrs, NodeOptions{DialTimeout: 10 * time.Second})
	defer n0.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- n0.Send(0, 1, testMsg{Body: "late"}) }()

	time.Sleep(150 * time.Millisecond) // let several dial attempts fail
	ln1, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Skipf("could not re-bind reserved address %s: %v", addr1, err)
	}
	n1 := NewNode(1, ln1, addrs, NodeOptions{})
	defer n1.Close()

	if err := <-errCh; err != nil {
		t.Fatalf("send did not survive late listener: %v", err)
	}
	select {
	case env := <-n1.Recv(1):
		if env.Payload.(testMsg).Body != "late" {
			t.Errorf("payload = %+v", env.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered after late start")
	}
	n0.Close()
	n1.Close()
}

func TestNodeCloseIdempotentAndWaits(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	// Generate live connections in both directions before closing.
	for i := 0; i < 10; i++ {
		if err := nodes[0].Send(0, 1, testMsg{From: i}); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Send(1, 0, testMsg{From: i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[0].Send(0, 1, testMsg{}); err == nil {
		t.Error("send after close should fail")
	}
}

// TestNodeConcurrentSenders exercises the per-connection write lock.
func TestNodeConcurrentSenders(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 4)
	const perSender = 25
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := nodes[s].Send(s, 3, testMsg{From: s}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < 3*perSender; i++ {
		select {
		case <-nodes[3].Recv(3):
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d messages delivered", i)
		}
	}
	for _, n := range nodes {
		n.Close()
	}
}

func TestListenNode(t *testing.T) {
	defer checkGoroutines(t)()
	n, err := ListenNode(0, []string{"127.0.0.1:0"}, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Addr() == "" {
		t.Error("no bound address")
	}
	n.Close()
	if _, err := ListenNode(2, []string{"127.0.0.1:0"}, NodeOptions{}); err == nil {
		t.Error("id outside table should fail")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	// Sender- and receiver-side sizes must agree for every frame.
	r, w := net.Pipe()
	defer r.Close()
	defer w.Close()
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := writeFrame(w, wireFrame{From: i, To: 1, Payload: testMsg{From: i, Body: "frame"}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		f, n, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.From != i || f.To != 1 {
			t.Errorf("frame %d routed as %d→%d", i, f.From, f.To)
		}
		if m, ok := f.Payload.(testMsg); !ok || m.Body != "frame" {
			t.Errorf("payload = %+v", f.Payload)
		}
		want, err := frameSize(wireFrame{From: i, To: 1, Payload: testMsg{From: i, Body: "frame"}})
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Errorf("frame %d: read size %d, sender size %d", i, n, want)
		}
	}
}

// TestNodeWriteTimeout: a peer that accepts connections but never reads
// (wedged process) must fail the sender's Send once the socket buffers
// fill, instead of blocking it forever — the session's receive deadline
// cannot fire while a send is stuck in the kernel.
// restartPeer closes a node and starts a replacement on the same address,
// as a crashed-and-replaced peer process would.
func restartPeer(t *testing.T, old *Node, addrs []string) *Node {
	t.Helper()
	old.Close()
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		ln, err = net.Listen("tcp", addrs[old.ID()])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addrs[old.ID()], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fresh := NewNode(old.ID(), ln, addrs, NodeOptions{DialTimeout: 5 * time.Second})
	t.Cleanup(func() { fresh.Close() })
	return fresh
}

func TestNodeResetConnReachesRestartedPeer(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	addrs := []string{nodes[0].Addr(), nodes[1].Addr()}

	if err := nodes[0].Send(0, 1, testMsg{Body: "warm"}); err != nil {
		t.Fatal(err)
	}
	<-nodes[1].Recv(1) // outgoing connection 0→1 is now cached

	fresh := restartPeer(t, nodes[1], addrs)
	// Without the reset, the cached connection leads to the dead process and
	// TCP swallows the first frame written to it without an error.
	nodes[0].ResetConn(1)
	if err := nodes[0].Send(0, 1, testMsg{Body: "fresh"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-fresh.Recv(1):
		if m, ok := env.Payload.(testMsg); !ok || m.Body != "fresh" {
			t.Errorf("payload = %+v", env.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame after ResetConn never reached the restarted peer")
	}
	nodes[0].Close()
	fresh.Close()
}

func TestNodeSendRedialsDeadConnection(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	addrs := []string{nodes[0].Addr(), nodes[1].Addr()}

	if err := nodes[0].Send(0, 1, testMsg{Body: "warm"}); err != nil {
		t.Fatal(err)
	}
	<-nodes[1].Recv(1)

	fresh := restartPeer(t, nodes[1], addrs)
	// No ResetConn: the first write after the peer died may vanish silently,
	// but the write after the RST fails, which must evict the dead connection
	// and redial — so a short burst of sends reaches the replacement without
	// any out-of-band signal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("sends never recovered onto a fresh connection")
		}
		nodes[0].Send(0, 1, testMsg{Body: "ping"}) // pre-fix this fails forever
		select {
		case env := <-fresh.Recv(1):
			if m, ok := env.Payload.(testMsg); !ok || m.Body != "ping" {
				t.Fatalf("payload = %+v", env.Payload)
			}
			nodes[0].Close()
			fresh.Close()
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestNodeWriteTimeout(t *testing.T) {
	defer checkGoroutines(t)()
	// A dummy peer 1 that accepts and then ignores the connection.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	stopAccept := make(chan struct{})
	var held []net.Conn
	var heldMu sync.Mutex
	go func() {
		for {
			c, err := stall.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c) // keep open, never read
			heldMu.Unlock()
			select {
			case <-stopAccept:
				return
			default:
			}
		}
	}()
	defer func() {
		close(stopAccept)
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()

	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), stall.Addr().String()}
	n0 := NewNode(0, ln0, addrs, NodeOptions{WriteTimeout: 200 * time.Millisecond})
	defer n0.Close()

	big := testMsg{Body: strings.Repeat("x", 1<<20)}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("sends kept succeeding; write deadline never fired")
		}
		if err := n0.Send(0, 1, big); err != nil {
			t.Logf("send %d failed as expected: %v", i, err)
			break
		}
	}
	n0.Close()
}

// TestDialBackoff pins the exponential-backoff schedule: doubling from the
// base, capped at max, with full jitter in [d/2, d).
func TestDialBackoff(t *testing.T) {
	base, max := 50*time.Millisecond, 400*time.Millisecond
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond,
	}
	for attempt, w := range want {
		for trial := 0; trial < 32; trial++ {
			d := dialBackoff(base, max, attempt)
			if d < w/2 || d > w {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, w/2, w)
			}
		}
	}
}

// TestDialErrorAttempts asserts a failed dial surfaces as a typed DialError
// carrying the attempt count — recovery logic distinguishes "never
// reachable" (many attempts) from "flapped" through it.
func TestDialErrorAttempts(t *testing.T) {
	defer checkGoroutines(t)()
	// Reserve an address nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	self, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(0, self, []string{self.Addr().String(), dead}, NodeOptions{
		DialTimeout:   300 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond,
		RetryMax:      50 * time.Millisecond,
	})
	defer n.Close()

	err = n.Send(0, 1, testMsg{From: 0, Body: "nobody home"})
	if err == nil {
		t.Fatal("send to a dead address succeeded")
	}
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *DialError: %v", err, err)
	}
	if de.Attempts < 2 {
		t.Errorf("expected several dial attempts within the window, got %d", de.Attempts)
	}
	if de.Peer != 1 || de.Node != 0 {
		t.Errorf("DialError identity = %+v", de)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("attempt count missing from error text: %v", err)
	}
}

// TestNodeDropsStaleEpochFrames is the regression test for the reused-
// address staleness bug: frames stamped with an epoch older than the
// receiving node's current view must be dropped at the read loop (counted,
// not buffered), while current- and future-epoch frames and epoch-less
// control frames (EpochAny) pass.
func TestNodeDropsStaleEpochFrames(t *testing.T) {
	defer checkGoroutines(t)()
	nodes := newNodes(t, 2)
	nodes[1].SetEpoch(1, 2) // node 1 has advanced to epoch 2

	// Stale: node 0 still at epoch 1 — its frame must be dropped.
	nodes[0].SetEpoch(0, 1)
	if err := nodes[0].Send(0, 1, testMsg{From: 0, Body: "stale"}); err != nil {
		t.Fatal(err)
	}
	// Epoch-less control traffic crosses epochs.
	if err := nodes[0].SendStamped(0, 1, EpochAny, testMsg{From: 0, Body: "control"}); err != nil {
		t.Fatal(err)
	}
	// Current epoch passes.
	nodes[0].SetEpoch(0, 2)
	if err := nodes[0].Send(0, 1, testMsg{From: 0, Body: "current"}); err != nil {
		t.Fatal(err)
	}

	var got []string
	for len(got) < 2 {
		select {
		case env := <-nodes[1].Recv(1):
			got = append(got, env.Payload.(testMsg).Body)
		case <-time.After(5 * time.Second):
			t.Fatalf("delivered %v, waiting for 2 frames", got)
		}
	}
	if got[0] != "control" || got[1] != "current" {
		t.Errorf("delivered %v, want [control current]", got)
	}
	select {
	case env := <-nodes[1].Recv(1):
		t.Fatalf("stale frame delivered: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if n := nodes[1].DroppedStale(); n != 1 {
		t.Errorf("DroppedStale = %d, want 1", n)
	}
	for _, n := range nodes {
		n.Close()
	}
}
