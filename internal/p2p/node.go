package p2p

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default Node tunables.
const (
	// DefaultDialTimeout bounds how long a Node retries dialing a peer
	// whose listener is not up yet (peer processes boot independently).
	DefaultDialTimeout = 30 * time.Second
	// DefaultDialRetry is the pause between dial attempts.
	DefaultDialRetry = 50 * time.Millisecond
	// DefaultWriteTimeout bounds one frame write. A peer that stops
	// reading (wedged process, full socket buffers) would otherwise block
	// the sender forever — the session's RoundTimeout only covers
	// receives, not a send stuck in the kernel.
	DefaultWriteTimeout = 30 * time.Second
)

// NodeOptions tunes a single Node.
type NodeOptions struct {
	// DialTimeout bounds how long Send waits for a peer's listener to come
	// up; dials are retried until the deadline (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// RetryInterval is the pause between dial attempts (0 = DefaultDialRetry).
	RetryInterval time.Duration
	// WriteTimeout bounds each frame write (0 = DefaultWriteTimeout,
	// negative = none). A timed-out write fails the Send, which fails the
	// sending session instead of hanging it.
	WriteTimeout time.Duration
	// InboxDepth sizes the receive buffer (0 = DefaultInboxDepth).
	InboxDepth int
}

// Node is the single-peer TCP transport: one process hosts exactly one peer.
// It listens on one address, dials the other peers through a peer-id→address
// table, and opens every outgoing connection with a gob handshake carrying
// its peer id. Frames travel length-prefixed, so the receive side stamps
// Envelope.Bytes with the actual wire size.
//
// Node implements Transport for its own id only: Send requires from == ID()
// and Recv must be called with self == ID(). In-process deployments that
// need all m peers in one struct use ChanTransport or the TCPTransport
// adapter (m Nodes behind the old interface).
type Node struct {
	id    int
	addrs []string
	ln    net.Listener
	inbox chan Envelope
	opts  NodeOptions

	sent Stats
	recv Stats

	mu       sync.Mutex
	dialed   map[int]*nodeConn
	accepted map[net.Conn]struct{}
	closed   atomic.Bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// nodeConn serializes frame writes on one outgoing connection.
type nodeConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// ListenNode starts a Node for peer id listening on addrs[id].
func ListenNode(id int, addrs []string, opts NodeOptions) (*Node, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("p2p: node id %d outside peer table of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("p2p: node %d listen %s: %w", id, addrs[id], err)
	}
	return NewNode(id, ln, addrs, opts), nil
}

// NewNode starts a Node for peer id on an existing listener. addrs is the
// peer-id→address table used for outgoing dials; addrs[id] is informational
// (the listener may be bound to a different interface or an ephemeral port).
func NewNode(id int, ln net.Listener, addrs []string, opts NodeOptions) *Node {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = DefaultDialRetry
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = DefaultInboxDepth
	}
	n := &Node{
		id:       id,
		addrs:    append([]string(nil), addrs...),
		ln:       ln,
		inbox:    make(chan Envelope, opts.InboxDepth),
		opts:     opts,
		dialed:   map[int]*nodeConn{},
		accepted: map[net.Conn]struct{}{},
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n
}

// ID returns this node's peer id.
func (n *Node) ID() int { return n.id }

// Addr returns the bound listen address (useful with ephemeral ports).
func (n *Node) Addr() string { return n.ln.Addr().String() }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed.Load() {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	// Handshake: the first frame must identify the dialing peer and be
	// addressed to this node. A violation means a mis-wired peer table;
	// drop the connection.
	f, _, err := readFrame(conn)
	if err != nil {
		return
	}
	h, ok := f.Payload.(hello)
	if !ok || h.From < 0 || h.From >= len(n.addrs) || f.To != n.id {
		return
	}
	for {
		f, sz, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.To != n.id {
			continue // misrouted frame; drop
		}
		select {
		case n.inbox <- Envelope{From: f.From, To: f.To, Bytes: sz, Payload: f.Payload}:
			n.recv.Messages.Add(1)
			n.recv.Bytes.Add(sz)
		case <-n.done:
			return
		}
	}
}

// Send implements Transport. from must equal the node's own id; sending to
// self is delivered through the local inbox with the same size accounting a
// wire round-trip would produce.
func (n *Node) Send(from, to int, payload any) error {
	if n.closed.Load() {
		return errors.New("p2p: node closed")
	}
	if from != n.id {
		return fmt.Errorf("p2p: node %d cannot send as peer %d", n.id, from)
	}
	if to < 0 || to >= len(n.addrs) {
		return fmt.Errorf("p2p: unknown peer %d", to)
	}
	f := wireFrame{From: from, To: to, Payload: payload}
	if to == n.id {
		sz, err := frameSize(f)
		if err != nil {
			return err
		}
		select {
		case n.inbox <- Envelope{From: from, To: to, Bytes: sz, Payload: payload}:
		case <-n.done:
			return errors.New("p2p: node closed")
		}
		n.sent.Messages.Add(1)
		n.sent.Bytes.Add(sz)
		n.recv.Messages.Add(1)
		n.recv.Bytes.Add(sz)
		return nil
	}
	pc, err := n.connTo(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n.opts.WriteTimeout > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	sz, err := writeFrame(pc.conn, f)
	if err != nil {
		return fmt.Errorf("p2p: node %d send to %d: %w", n.id, to, err)
	}
	n.sent.Messages.Add(1)
	n.sent.Bytes.Add(sz)
	return nil
}

// connTo returns the (lazily dialed) outgoing connection to a peer. Dials
// are retried until DialTimeout because peer processes start independently
// and a neighbour's listener may not be up yet.
func (n *Node) connTo(to int) (*nodeConn, error) {
	n.mu.Lock()
	if pc, ok := n.dialed[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	n.mu.Unlock()

	deadline := time.Now().Add(n.opts.DialTimeout)
	var conn net.Conn
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("p2p: node %d: dial peer %d (%s): timed out after %v",
				n.id, to, n.addrs[to], n.opts.DialTimeout)
		}
		var err error
		conn, err = net.DialTimeout("tcp", n.addrs[to], remaining)
		if err == nil {
			break
		}
		select {
		case <-n.done:
			return nil, errors.New("p2p: node closed")
		case <-time.After(n.opts.RetryInterval):
		}
	}
	// Handshake first, so the acceptor can attribute the connection before
	// any payload frame arrives. Handshake traffic stays out of the stats
	// on both sides.
	if n.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	if _, err := writeFrame(conn, wireFrame{From: n.id, To: to, Payload: hello{From: n.id}}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("p2p: node %d handshake with %d: %w", n.id, to, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		conn.Close()
		return nil, errors.New("p2p: node closed")
	}
	if pc, ok := n.dialed[to]; ok { // lost a concurrent dial race
		conn.Close()
		return pc, nil
	}
	pc := &nodeConn{conn: conn}
	n.dialed[to] = pc
	return pc, nil
}

// Recv implements Transport; self must be the node's own id.
func (n *Node) Recv(self int) <-chan Envelope {
	if self != n.id {
		panic(fmt.Sprintf("p2p: node %d asked for peer %d's inbox", n.id, self))
	}
	return n.inbox
}

// Peers implements Transport.
func (n *Node) Peers() int { return len(n.addrs) }

// Close shuts the listener and all connections down and waits for the
// accept/read goroutines to exit. Idempotent.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.done)
	n.ln.Close()
	n.mu.Lock()
	for _, pc := range n.dialed {
		pc.conn.Close()
	}
	for conn := range n.accepted {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

// SentStats returns the messages/bytes this node put on the wire.
func (n *Node) SentStats() (msgs, bytes int64) {
	return n.sent.Messages.Load(), n.sent.Bytes.Load()
}

// RecvStats returns the messages/bytes this node delivered from the wire.
func (n *Node) RecvStats() (msgs, bytes int64) {
	return n.recv.Messages.Load(), n.recv.Bytes.Load()
}
