package p2p

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Default Node tunables.
const (
	// DefaultDialTimeout bounds how long a Node retries dialing a peer
	// whose listener is not up yet (peer processes boot independently).
	DefaultDialTimeout = 30 * time.Second
	// DefaultDialRetry is the initial pause between dial attempts; the
	// pause grows exponentially (with jitter) up to DefaultDialRetryMax.
	DefaultDialRetry = 50 * time.Millisecond
	// DefaultDialRetryMax caps the exponential dial backoff.
	DefaultDialRetryMax = 2 * time.Second
	// DefaultWriteTimeout bounds one frame write. A peer that stops
	// reading (wedged process, full socket buffers) would otherwise block
	// the sender forever — the session's RoundTimeout only covers
	// receives, not a send stuck in the kernel.
	DefaultWriteTimeout = 30 * time.Second
)

// NodeOptions tunes a single Node.
type NodeOptions struct {
	// DialTimeout bounds how long Send waits for a peer's listener to come
	// up; dials are retried until the deadline (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// RetryInterval is the initial pause between dial attempts
	// (0 = DefaultDialRetry). Successive attempts back off exponentially
	// with full jitter — interval·2^n scaled by a random factor in
	// [0.5, 1.0) — so a cluster of peers hammering one dead listener does
	// not synchronize into retry storms.
	RetryInterval time.Duration
	// RetryMax caps the exponential backoff between dial attempts
	// (0 = DefaultDialRetryMax).
	RetryMax time.Duration
	// WriteTimeout bounds each frame write (0 = DefaultWriteTimeout,
	// negative = none). A timed-out write fails the Send, which fails the
	// sending session instead of hanging it.
	WriteTimeout time.Duration
	// InboxDepth sizes the receive buffer (0 = DefaultInboxDepth).
	InboxDepth int
}

// DialError reports a failed (retried) dial to a peer. Attempts lets
// recovery logic distinguish a peer that was never reachable (many attempts
// over the whole window) from one that flapped midway (few attempts before
// an unrelated failure); it travels in the error string too, so wrapped
// errors keep the context.
type DialError struct {
	// Node is the dialing peer, Peer the dialed one.
	Node, Peer int
	// Addr is the dialed address.
	Addr string
	// Attempts is the number of dial attempts made before giving up.
	Attempts int
	// Elapsed is the total time spent retrying.
	Elapsed time.Duration
	// Err is the last dial error.
	Err error
}

// Error implements error.
func (e *DialError) Error() string {
	return fmt.Sprintf("p2p: node %d: dial peer %d (%s): %d attempts over %v: %v",
		e.Node, e.Peer, e.Addr, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Err)
}

// Unwrap exposes the last dial error.
func (e *DialError) Unwrap() error { return e.Err }

// Node is the single-peer TCP transport: one process hosts exactly one peer.
// It listens on one address, dials the other peers through a peer-id→address
// table, and opens every outgoing connection with a gob handshake carrying
// its peer id. Frames travel length-prefixed, so the receive side stamps
// Envelope.Bytes with the actual wire size.
//
// Node implements Transport for its own id only: Send requires from == ID()
// and Recv must be called with self == ID(). In-process deployments that
// need all m peers in one struct use ChanTransport or the TCPTransport
// adapter (m Nodes behind the old interface).
type Node struct {
	id    int
	addrs []string
	ln    net.Listener
	inbox chan Envelope
	opts  NodeOptions

	sent Stats
	recv Stats

	// epoch is the membership epoch stamped on outgoing frames; incoming
	// frames with a strictly older (non-EpochAny) epoch are dropped at the
	// read loop and counted in droppedStale — a restarted peer on a reused
	// address must never deliver traffic from the view it crashed out of.
	epoch        atomic.Int64
	droppedStale atomic.Int64

	mu       sync.Mutex
	dialed   map[int]*nodeConn
	accepted map[net.Conn]struct{}
	closed   atomic.Bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// nodeConn serializes frame writes on one outgoing connection.
type nodeConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// ListenNode starts a Node for peer id listening on addrs[id].
func ListenNode(id int, addrs []string, opts NodeOptions) (*Node, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("p2p: node id %d outside peer table of %d", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("p2p: node %d listen %s: %w", id, addrs[id], err)
	}
	return NewNode(id, ln, addrs, opts), nil
}

// NewNode starts a Node for peer id on an existing listener. addrs is the
// peer-id→address table used for outgoing dials; addrs[id] is informational
// (the listener may be bound to a different interface or an ephemeral port).
func NewNode(id int, ln net.Listener, addrs []string, opts NodeOptions) *Node {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = DefaultDialTimeout
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = DefaultDialRetry
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = DefaultDialRetryMax
	}
	if opts.RetryMax < opts.RetryInterval {
		opts.RetryMax = opts.RetryInterval
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = DefaultInboxDepth
	}
	n := &Node{
		id:       id,
		addrs:    append([]string(nil), addrs...),
		ln:       ln,
		inbox:    make(chan Envelope, opts.InboxDepth),
		opts:     opts,
		dialed:   map[int]*nodeConn{},
		accepted: map[net.Conn]struct{}{},
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n
}

// ID returns this node's peer id.
func (n *Node) ID() int { return n.id }

// Addr returns the bound listen address (useful with ephemeral ports).
func (n *Node) Addr() string { return n.ln.Addr().String() }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed.Load() {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	// Handshake: the first frame must identify the dialing peer and be
	// addressed to this node. A violation means a mis-wired peer table;
	// drop the connection.
	f, _, err := readFrame(conn)
	if err != nil {
		return
	}
	h, ok := f.Payload.(hello)
	if !ok || h.From < 0 || h.From >= len(n.addrs) || f.To != n.id {
		return
	}
	for {
		f, sz, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.To != n.id {
			continue // misrouted frame; drop
		}
		if f.Epoch != EpochAny && int64(f.Epoch) < n.epoch.Load() {
			// Straggler from a superseded membership view (e.g. a frame
			// addressed to the peer that previously held this address).
			// Delivering it would park it in a session reorder buffer
			// forever; drop it deterministically instead.
			n.droppedStale.Add(1)
			continue
		}
		select {
		case n.inbox <- Envelope{From: f.From, To: f.To, Epoch: f.Epoch, Bytes: sz, Payload: f.Payload}:
			n.recv.Messages.Add(1)
			n.recv.Bytes.Add(sz)
		case <-n.done:
			return
		}
	}
}

// Send implements Transport. from must equal the node's own id; sending to
// self is delivered through the local inbox with the same size accounting a
// wire round-trip would produce. Frames are stamped with the node's current
// membership epoch (see SetEpoch).
func (n *Node) Send(from, to int, payload any) error {
	return n.SendStamped(from, to, int(n.epoch.Load()), payload)
}

// SendStamped sends a payload with an explicit epoch stamp. Membership
// control traffic (join requests, suspicion reports) uses EpochAny so it
// crosses epoch boundaries; everything else goes through Send, which stamps
// the current epoch.
func (n *Node) SendStamped(from, to, epoch int, payload any) error {
	if n.closed.Load() {
		return errors.New("p2p: node closed")
	}
	if from != n.id {
		return fmt.Errorf("p2p: node %d cannot send as peer %d", n.id, from)
	}
	if to < 0 || to >= len(n.addrs) {
		return fmt.Errorf("p2p: unknown peer %d", to)
	}
	f := wireFrame{From: from, To: to, Epoch: epoch, Payload: payload}
	if to == n.id {
		sz, err := frameSize(f)
		if err != nil {
			return err
		}
		select {
		case n.inbox <- Envelope{From: from, To: to, Epoch: epoch, Bytes: sz, Payload: payload}:
		case <-n.done:
			return errors.New("p2p: node closed")
		}
		n.sent.Messages.Add(1)
		n.sent.Bytes.Add(sz)
		n.recv.Messages.Add(1)
		n.recv.Bytes.Add(sz)
		return nil
	}
	sz, err := n.writeTo(to, f)
	if err != nil {
		// A cached connection whose peer died fails on write (the remote
		// RST surfaces here, one frame late). Evict it and retry once over
		// a fresh dial: the slot may already be occupied by a replacement
		// process listening on the same address. A write *timeout* is not
		// retried — the peer stopped reading, and a fresh connection would
		// only mask the stall behind empty socket buffers.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("p2p: node %d send to %d: %w", n.id, to, err)
		}
		n.ResetConn(to)
		if sz, err = n.writeTo(to, f); err != nil {
			return fmt.Errorf("p2p: node %d send to %d: %w", n.id, to, err)
		}
	}
	n.sent.Messages.Add(1)
	n.sent.Bytes.Add(sz)
	return nil
}

// writeTo writes one frame on the (lazily dialed) connection to a peer.
func (n *Node) writeTo(to int, f wireFrame) (int64, error) {
	pc, err := n.connTo(to)
	if err != nil {
		return 0, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n.opts.WriteTimeout > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	return writeFrame(pc.conn, f)
}

// ResetConn drops the cached outgoing connection to a peer, forcing the next
// send to dial fresh. Recovery logic calls this when it learns a peer slot is
// now occupied by a different process on the same address: writes on the old
// connection would otherwise disappear into the dead socket — TCP reports
// the failure only on the write after the remote RST, so the first frame is
// lost silently rather than erroring.
func (n *Node) ResetConn(to int) {
	n.mu.Lock()
	pc, ok := n.dialed[to]
	if ok {
		delete(n.dialed, to)
	}
	n.mu.Unlock()
	if ok {
		pc.conn.Close()
	}
}

// connTo returns the (lazily dialed) outgoing connection to a peer. Dials
// are retried with capped, jittered exponential backoff until DialTimeout
// because peer processes start independently and a neighbour's listener may
// not be up yet; a flapping listener is retried the same way.
func (n *Node) connTo(to int) (*nodeConn, error) {
	n.mu.Lock()
	if pc, ok := n.dialed[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	n.mu.Unlock()

	t0 := time.Now()
	deadline := t0.Add(n.opts.DialTimeout)
	var conn net.Conn
	attempts := 0
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, &DialError{
				Node: n.id, Peer: to, Addr: n.addrs[to],
				Attempts: attempts, Elapsed: time.Since(t0),
				Err: fmt.Errorf("timed out after %v", n.opts.DialTimeout),
			}
		}
		var err error
		conn, err = net.DialTimeout("tcp", n.addrs[to], remaining)
		attempts++
		if err == nil {
			break
		}
		select {
		case <-n.done:
			return nil, &DialError{
				Node: n.id, Peer: to, Addr: n.addrs[to],
				Attempts: attempts, Elapsed: time.Since(t0),
				Err: errors.New("node closed while retrying"),
			}
		case <-time.After(dialBackoff(n.opts.RetryInterval, n.opts.RetryMax, attempts-1)):
		}
	}
	// Handshake first, so the acceptor can attribute the connection before
	// any payload frame arrives. Handshake traffic stays out of the stats
	// on both sides.
	if n.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(n.opts.WriteTimeout))
	}
	if _, err := writeFrame(conn, wireFrame{From: n.id, To: to, Payload: hello{From: n.id}}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("p2p: node %d handshake with %d: %w", n.id, to, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed.Load() {
		conn.Close()
		return nil, errors.New("p2p: node closed")
	}
	if pc, ok := n.dialed[to]; ok { // lost a concurrent dial race
		conn.Close()
		return pc, nil
	}
	pc := &nodeConn{conn: conn}
	n.dialed[to] = pc
	return pc, nil
}

// dialBackoff returns the pause before retrying a dial that has already
// failed attempt+1 times: base·2^attempt capped at max, scaled by a random
// factor in [0.5, 1.0) (full jitter keeps a fleet of dialers from
// synchronizing into retry storms against one recovering listener).
func dialBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// SetEpoch implements EpochSetter for the node's own peer: outgoing frames
// are stamped with the epoch and incoming frames with a strictly older
// (non-EpochAny) epoch are dropped at the read loop. self must be the
// node's own id.
func (n *Node) SetEpoch(self, epoch int) {
	if self != n.id {
		panic(fmt.Sprintf("p2p: node %d asked to set peer %d's epoch", n.id, self))
	}
	n.epoch.Store(int64(epoch))
}

// Epoch returns the node's current membership epoch.
func (n *Node) Epoch() int { return int(n.epoch.Load()) }

// DroppedStale returns the number of frames the read loop rejected because
// their epoch predated the node's current one.
func (n *Node) DroppedStale() int64 { return n.droppedStale.Load() }

// Recv implements Transport; self must be the node's own id.
func (n *Node) Recv(self int) <-chan Envelope {
	if self != n.id {
		panic(fmt.Sprintf("p2p: node %d asked for peer %d's inbox", n.id, self))
	}
	return n.inbox
}

// Peers implements Transport.
func (n *Node) Peers() int { return len(n.addrs) }

// Close shuts the listener and all connections down and waits for the
// accept/read goroutines to exit. Idempotent.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.done)
	n.ln.Close()
	n.mu.Lock()
	for _, pc := range n.dialed {
		pc.conn.Close()
	}
	for conn := range n.accepted {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return nil
}

// SentStats returns the messages/bytes this node put on the wire.
func (n *Node) SentStats() (msgs, bytes int64) {
	return n.sent.Messages.Load(), n.sent.Bytes.Load()
}

// RecvStats returns the messages/bytes this node delivered from the wire.
func (n *Node) RecvStats() (msgs, bytes int64) {
	return n.recv.Messages.Load(), n.recv.Bytes.Load()
}
