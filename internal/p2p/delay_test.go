package p2p

import (
	"testing"
	"time"
)

func TestDelayTransportDelivers(t *testing.T) {
	inner := NewChanTransport(2, func(any) int64 { return 4 })
	d := NewDelayTransport(inner, 2*time.Millisecond, 1)
	defer d.Close()
	if d.Peers() != 2 {
		t.Fatalf("Peers = %d", d.Peers())
	}
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := d.Send(0, 1, testMsg{From: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case env := <-d.Recv(1):
			if env.Payload.(testMsg).From != i {
				t.Fatalf("reordered: got %d want %d", env.Payload.(testMsg).From, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("delivery stalled")
		}
	}
	if time.Since(start) > 3*time.Second {
		t.Error("delays excessive")
	}
}

func TestDelayTransportZeroDelay(t *testing.T) {
	inner := NewChanTransport(2, nil)
	d := NewDelayTransport(inner, 0, 1)
	defer d.Close()
	if err := d.Send(0, 1, testMsg{Body: "fast"}); err != nil {
		t.Fatal(err)
	}
	<-d.Recv(1)
}

func TestDelayTransportCloses(t *testing.T) {
	inner := NewChanTransport(2, nil)
	d := NewDelayTransport(inner, time.Millisecond, 1)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Send(0, 1, testMsg{}); err == nil {
		t.Error("send after close should fail")
	}
}
