// Package p2p is the peer-to-peer network substrate the distributed
// algorithms run on. Peers are identified by dense integer ids [0..m).
//
// The wire-level primitive is Node: a single-peer transport that listens on
// one address, dials the other peers through a peer-id→address table, and
// opens every connection with a gob handshake carrying the dialer's peer id.
// Frames are gob-encoded and length-prefixed ("net" + "encoding/gob" only),
// so the frame size travels on the wire and both sides account identical
// byte counts. One Node per OS process gives a genuinely distributed
// deployment (see cmd/cxkpeer).
//
// Two all-peers adapters implement the same Transport interface for
// single-process runs:
//
//   - ChanTransport: in-process buffered channels — deterministic, zero
//     dependency, used by tests and benchmarks;
//   - TCPTransport: m Nodes on loopback ephemeral ports behind one struct —
//     exercises the real wire format in one process.
//
// Every delivered Envelope is stamped with its wire size so algorithms can
// account traffic per peer and per round; ChanTransport stamps the modeled
// size produced by a Sizer, Node (and therefore TCPTransport) stamps the
// actual encoded frame size on both the send and the receive path.
package p2p

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Envelope is one delivered message.
type Envelope struct {
	From    int
	To      int
	Epoch   int   // sender's membership epoch at send time (EpochAny = epoch-less)
	Bytes   int64 // wire size (modeled or actual, per transport)
	Payload any
}

// Sizer models the wire size of a payload (used by ChanTransport, and by
// algorithms that want transport-independent accounting).
type Sizer func(payload any) int64

// EpochSetter is implemented by transports that stamp outgoing envelopes
// with the sending peer's membership epoch. The elastic session runtime
// bumps the epoch on every membership change so stragglers from an old view
// are rejected deterministically; transports without epochs keep stamping 0
// and sessions simply never see a stale frame.
type EpochSetter interface {
	// SetEpoch sets the epoch stamped on peer self's outgoing envelopes
	// (and, where the transport filters, the minimum epoch it delivers).
	SetEpoch(self, epoch int)
}

// Transport moves envelopes between peers. Implementations must be safe
// for concurrent Send from multiple goroutines; Recv(i) must be consumed by
// peer i only.
type Transport interface {
	// Send delivers payload from one peer to another. Sending to self is
	// allowed and delivered like any other message.
	Send(from, to int, payload any) error
	// Recv returns the receive channel of a peer.
	Recv(self int) <-chan Envelope
	// Peers returns the number of peers m.
	Peers() int
	// Close releases resources; pending messages may be dropped.
	Close() error
}

// Stats accumulates global transport counters.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
}

// ChanTransport is the in-process channel transport.
type ChanTransport struct {
	inboxes []chan Envelope
	epochs  []atomic.Int64
	sizer   Sizer
	stats   Stats
	closed  atomic.Bool
}

// DefaultInboxDepth is sized so that a full round of all-to-all traffic
// never blocks a sender (k representatives to m peers, with slack).
const DefaultInboxDepth = 1024

// NewChanTransport creates a transport for m peers. sizer may be nil, in
// which case payload sizes are recorded as 0.
func NewChanTransport(m int, sizer Sizer) *ChanTransport {
	t := &ChanTransport{
		inboxes: make([]chan Envelope, m),
		epochs:  make([]atomic.Int64, m),
		sizer:   sizer,
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan Envelope, DefaultInboxDepth)
	}
	return t
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to int, payload any) error {
	if t.closed.Load() {
		return fmt.Errorf("p2p: transport closed")
	}
	if to < 0 || to >= len(t.inboxes) {
		return fmt.Errorf("p2p: unknown peer %d", to)
	}
	var n int64
	if t.sizer != nil {
		n = t.sizer(payload)
	}
	var epoch int
	if from >= 0 && from < len(t.epochs) {
		epoch = int(t.epochs[from].Load())
	}
	t.stats.Messages.Add(1)
	t.stats.Bytes.Add(n)
	t.inboxes[to] <- Envelope{From: from, To: to, Epoch: epoch, Bytes: n, Payload: payload}
	return nil
}

// SetEpoch implements EpochSetter: envelopes sent by peer self are stamped
// with the given epoch from now on. Delivery-side filtering is left to the
// session layer (in-process runs share one address space, so the reused-
// address staleness the Node filter guards against cannot occur here).
func (t *ChanTransport) SetEpoch(self, epoch int) {
	if self >= 0 && self < len(t.epochs) {
		t.epochs[self].Store(int64(epoch))
	}
}

// Recv implements Transport.
func (t *ChanTransport) Recv(self int) <-chan Envelope { return t.inboxes[self] }

// Peers implements Transport.
func (t *ChanTransport) Peers() int { return len(t.inboxes) }

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.closed.Store(true)
	return nil
}

// Stats exposes the global counters.
func (t *ChanTransport) Stats() (msgs, bytes int64) {
	return t.stats.Messages.Load(), t.stats.Bytes.Load()
}

// TimeModel converts traffic into simulated wire time, mirroring the
// t_comm term of the paper's cost analysis (Sect. 4.3.3–4.3.4). The
// defaults match the paper's testbed: GigaBit ethernet, sub-millisecond
// LAN latency.
type TimeModel struct {
	// LatencyPerMsg is the fixed per-message cost.
	LatencyPerMsg time.Duration
	// BytesPerSecond is the link bandwidth.
	BytesPerSecond float64
}

// DefaultTimeModel returns the GigaBit LAN model used by the experiments.
func DefaultTimeModel() TimeModel {
	return TimeModel{LatencyPerMsg: 100 * time.Microsecond, BytesPerSecond: 125e6}
}

// CommTime returns the simulated time to move msgs messages totalling
// bytes over one link endpoint.
func (tm TimeModel) CommTime(msgs, bytes int64) time.Duration {
	if msgs <= 0 && bytes <= 0 {
		return 0
	}
	d := time.Duration(msgs) * tm.LatencyPerMsg
	if tm.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / tm.BytesPerSecond * float64(time.Second))
	}
	return d
}
