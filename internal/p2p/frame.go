package p2p

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// wireFrame is the unit of exchange between peers on a TCP wire: one routed
// payload. On the wire a frame travels as an 8-byte big-endian body length
// followed by a self-contained gob encoding of the frame, so the frame size
// is carried in-band and the receive side stamps Envelope.Bytes with the
// exact wire size (header + body) — identical to the sender's count by
// construction, with no re-encoding.
//
// Epoch stamps the sender's membership epoch on the frame (see
// Node.SetEpoch); EpochAny marks epoch-less control traffic. The receive
// side drops frames whose epoch predates its own — a restarted peer on a
// reused address must never deliver (or buffer forever) traffic from the
// session view it crashed out of.
type wireFrame struct {
	From    int
	To      int
	Epoch   int
	Payload any
}

// EpochAny is the epoch value of epoch-less frames: membership control
// traffic (join requests, suspicion reports) that must cross epoch
// boundaries is stamped with it and always delivered.
const EpochAny = -1

// hello is the handshake payload a dialing Node sends first on every new
// connection, identifying the dialing peer. It is never delivered to the
// application and is excluded from traffic stats on both sides.
type hello struct {
	From int
}

// RegisterWireType registers a concrete payload type with gob so it can
// travel through the TCP transports. Algorithms register their message
// structs in an init function.
func RegisterWireType(v any) { gob.Register(v) }

func init() { gob.Register(hello{}) }

const (
	frameHeaderSize = 8
	// maxFrameBody bounds a frame body so a corrupted or hostile length
	// header cannot exhaust memory.
	maxFrameBody = 1 << 30
)

// writeFrame encodes f as one length-prefixed frame and writes it with a
// single Write call, returning the total number of bytes put on the wire.
// Each frame uses a fresh gob encoder, so frames are self-delimiting and
// decodable in isolation.
func writeFrame(w io.Writer, f wireFrame) (int64, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderSize)) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return 0, fmt.Errorf("p2p: encode frame: %w", err)
	}
	b := buf.Bytes()
	body := len(b) - frameHeaderSize
	if body > maxFrameBody {
		return 0, fmt.Errorf("p2p: frame body of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint64(b[:frameHeaderSize], uint64(body))
	if _, err := w.Write(b); err != nil {
		return 0, err
	}
	return int64(len(b)), nil
}

// readFrame reads one length-prefixed frame, returning it together with its
// total wire size (header + body).
func readFrame(r io.Reader) (wireFrame, int64, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return wireFrame{}, 0, err
	}
	body := binary.BigEndian.Uint64(hdr[:])
	if body > maxFrameBody {
		return wireFrame{}, 0, fmt.Errorf("p2p: frame body of %d bytes exceeds limit", body)
	}
	b := make([]byte, body)
	if _, err := io.ReadFull(r, b); err != nil {
		return wireFrame{}, 0, err
	}
	var f wireFrame
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&f); err != nil {
		return wireFrame{}, 0, fmt.Errorf("p2p: decode frame: %w", err)
	}
	return f, int64(frameHeaderSize) + int64(body), nil
}

// frameSize returns the wire size writeFrame would produce for f without
// sending it (used for loopback self-delivery accounting).
func frameSize(f wireFrame) (int64, error) {
	return writeFrame(io.Discard, f)
}
