package p2p

import (
	"math/rand"
	"sync"
	"time"
)

// DelayTransport wraps another transport and stalls every send by a random
// duration in [0, MaxDelay], modeling a congested but lossless LAN. The
// wrapped transport's per-pair FIFO ordering is preserved (the delay
// happens before handing the message to the inner transport). Used by the
// robustness tests to shake out cross-peer ordering assumptions in the
// round protocols.
type DelayTransport struct {
	Inner    Transport
	MaxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDelayTransport wraps inner with random send delays drawn from the
// seeded rng.
func NewDelayTransport(inner Transport, maxDelay time.Duration, seed int64) *DelayTransport {
	return &DelayTransport{
		Inner:    inner,
		MaxDelay: maxDelay,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Send implements Transport.
func (d *DelayTransport) Send(from, to int, payload any) error {
	if d.MaxDelay > 0 {
		d.mu.Lock()
		delay := time.Duration(d.rng.Int63n(int64(d.MaxDelay) + 1))
		d.mu.Unlock()
		time.Sleep(delay)
	}
	return d.Inner.Send(from, to, payload)
}

// Recv implements Transport.
func (d *DelayTransport) Recv(self int) <-chan Envelope { return d.Inner.Recv(self) }

// Peers implements Transport.
func (d *DelayTransport) Peers() int { return d.Inner.Peers() }

// Close implements Transport.
func (d *DelayTransport) Close() error { return d.Inner.Close() }
