package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"XML-based   clustering", []string{"xml", "based", "clustering"}},
		{"year 2003", []string{"year", "2003"}},
		{"", nil},
		{"a b c", nil}, // single-rune tokens dropped
		{"K-means", []string{"means"}},
		{"état Über", []string{"état", "über"}},
		{"foo_bar", []string{"foo", "bar"}},
		{"e1,e2;e3", []string{"e1", "e2", "e3"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !eqStrings(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MiXeD CaSe TeXT") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lowercase", tok)
		}
	}
}

func TestTokenizeProperty(t *testing.T) {
	// Every token has length ≥ 2 and contains only letters/digits.
	prop := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < 2 {
				return false
			}
			for _, r := range tok {
				if !isAlnum(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func isAlnum(r rune) bool {
	return r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') ||
		r >= 0x80 || (r >= 'A' && r <= 'Z')
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "a"} {
		if !IsStopword(w) {
			t.Errorf("expected %q to be a stopword", w)
		}
	}
	for _, w := range []string{"clustering", "xml", "similarity", "peer"} {
		if IsStopword(w) {
			t.Errorf("did not expect %q to be a stopword", w)
		}
	}
}

// Porter reference pairs from the algorithm description and the classic
// test vocabulary.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		"clustering":     "cluster",
		"documents":      "document",
		"similarity":     "similar",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	if got := Stem("at"); got != "at" {
		t.Errorf("Stem(at) = %q", got)
	}
	if got := Stem("über"); got != "über" {
		t.Errorf("non-ASCII word must pass through, got %q", got)
	}
	if got := Stem("x2y"); got != "x2y" {
		t.Errorf("alnum word should survive, got %q", got)
	}
}

func TestStemIdempotentOnVocabulary(t *testing.T) {
	// Stemming a stem may reduce it further in rare Porter cases; the
	// important property for interning stability is determinism.
	words := []string{"clustering", "clustered", "clusters", "collaborative",
		"representatives", "transactions", "structural", "similarities"}
	for _, w := range words {
		a, b := Stem(w), Stem(w)
		if a != b {
			t.Errorf("Stem(%q) nondeterministic: %q vs %q", w, a, b)
		}
	}
}

func TestStemPropertyNoGrowth(t *testing.T) {
	prop := func(s string) bool {
		w := strings.ToLower(s)
		return len(Stem(w)) <= len(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStemFamiliesCollapse(t *testing.T) {
	families := [][]string{
		{"cluster", "clusters", "clustered", "clustering"},
		{"connect", "connected", "connecting", "connection", "connections"},
		{"relate", "related", "relating"},
	}
	for _, fam := range families {
		stem := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != stem {
				t.Errorf("family %v: Stem(%q)=%q, want %q", fam, w, got, stem)
			}
		}
	}
}

func TestPreprocessPipeline(t *testing.T) {
	got := Preprocess("The Clustering of XML Documents, and their Structures!")
	want := []string{"cluster", "xml", "document", "structur"}
	if !eqStrings(got, want) {
		t.Errorf("Preprocess = %v, want %v", got, want)
	}
}

func TestPreprocessDropsStopwordStems(t *testing.T) {
	// "being" stems to "be" which is a stopword and too short.
	got := Preprocess("being there")
	for _, w := range got {
		if IsStopword(w) || len(w) < 2 {
			t.Errorf("Preprocess leaked %q", w)
		}
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkStem(b *testing.B) {
	words := []string{"clustering", "collaborative", "representatives",
		"transactions", "effectiveness", "traditional", "probabilistic"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkPreprocess(b *testing.B) {
	text := "Clustering XML documents is extensively used to organize large " +
		"collections of XML documents in groups that are coherent according " +
		"to structure and content features"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Preprocess(text)
	}
}
