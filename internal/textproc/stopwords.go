package textproc

// stopwords is a standard English stopword list (close to the classic SMART
// short list used by most IR systems). Lookup is O(1).
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (lowercase) token is an English stopword.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn", "did", "didn", "do", "does", "doesn",
	"doing", "don", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn", "has", "hasn", "have", "haven", "having",
	"he", "her", "here", "hers", "herself", "him", "himself", "his", "how",
	"i", "if", "in", "into", "is", "isn", "it", "its", "itself", "just",
	"let", "me", "more", "most", "mustn", "my", "myself", "no", "nor",
	"not", "of", "off", "on", "once", "only", "or", "other", "ought",
	"our", "ours", "ourselves", "out", "over", "own", "same", "shan",
	"she", "should", "shouldn", "so", "some", "such", "than", "that",
	"the", "their", "theirs", "them", "themselves", "then", "there",
	"these", "they", "this", "those", "through", "thy", "thee", "thou",
	"to", "too", "under", "until", "up", "very", "was", "wasn", "we",
	"were", "weren", "what", "when", "where", "which", "while", "who",
	"whom", "why", "with", "won", "would", "wouldn", "you", "your",
	"yours", "yourself", "yourselves", "will", "shall", "may", "might",
	"must", "also", "upon", "unto", "hath", "doth", "er", "st", "nd",
	"rd", "th", "via", "etc", "eg", "ie",
}
