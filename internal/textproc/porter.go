package textproc

// Porter stemming algorithm, implemented from the original description:
// M.F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980.
//
// The implementation operates on ASCII lowercase words; tokens containing
// non-ASCII letters are returned unchanged. It follows the five-step
// structure of the original paper, including the m() measure, *v*, *d and
// *o conditions.

// Stem returns the Porter stem of a lowercase word.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			if c < '0' || c > '9' {
				return word // non-ASCII or mixed token: leave as is
			}
		}
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
	// j marks the end (inclusive) of the stem candidate during suffix checks.
	j int
}

// isConsonant reports whether b[i] is a consonant in Porter's sense.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m() for the prefix b[0..s.j]: the number of VC sequences.
func (s *stemmer) measure() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports *v*: the prefix b[0..s.j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports *d: b[i-1..i] is a double consonant.
func (s *stemmer) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports *o for the prefix ending at i: consonant-vowel-consonant where
// the final consonant is not w, x or y.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends checks whether the word ends with suffix; if so it sets s.j to the
// last index of the stem part and returns true.
func (s *stemmer) ends(suffix string) bool {
	n := len(suffix)
	if n > len(s.b) {
		return false
	}
	if string(s.b[len(s.b)-n:]) != suffix {
		return false
	}
	s.j = len(s.b) - n - 1
	return true
}

// setTo replaces the suffix after s.j with repl.
func (s *stemmer) setTo(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
}

// r replaces the suffix with repl when m() > 0.
func (s *stemmer) r(repl string) {
	if s.measure() > 0 {
		s.setTo(repl)
	}
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (s *stemmer) step1a() {
	if len(s.b) == 0 || s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.b = s.b[:len(s.b)-2]
	case s.ends("ies"):
		s.setTo("i")
	case len(s.b) >= 2 && s.b[len(s.b)-2] != 's':
		s.b = s.b[:len(s.b)-1]
	}
}

// step1b handles -ed and -ing.
func (s *stemmer) step1b() {
	switch {
	case s.ends("eed"):
		if s.measure() > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	case s.ends("ed"):
		if !s.vowelInStem() {
			return
		}
		s.b = s.b[:s.j+1]
	case s.ends("ing"):
		if !s.vowelInStem() {
			return
		}
		s.b = s.b[:s.j+1]
	default:
		return
	}
	// Post-processing after removing -ed/-ing.
	switch {
	case s.endsNoSet("at"), s.endsNoSet("bl"), s.endsNoSet("iz"):
		s.b = append(s.b, 'e')
	case s.doubleConsonant(len(s.b) - 1):
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	default:
		s.j = len(s.b) - 1
		if s.measure() == 1 && s.cvc(len(s.b)-1) {
			s.b = append(s.b, 'e')
		}
	}
}

// endsNoSet is ends without the implicit contract that s.j is used later.
func (s *stemmer) endsNoSet(suffix string) bool {
	n := len(suffix)
	return n <= len(s.b) && string(s.b[len(s.b)-n:]) == suffix
}

// step1c turns terminal y to i when there is a vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

type rule struct{ suffix, repl string }

var step2Rules = []rule{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, r := range step2Rules {
		if s.ends(r.suffix) {
			s.r(r.repl)
			return
		}
	}
}

var step3Rules = []rule{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, r := range step3Rules {
		if s.ends(r.suffix) {
			s.r(r.repl)
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

// step4 removes derivational suffixes when m() > 1.
func (s *stemmer) step4() {
	if s.ends("ion") {
		if s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') && s.measure() > 1 {
			s.b = s.b[:s.j+1]
		}
		return
	}
	for _, suf := range step4Suffixes {
		if s.ends(suf) {
			if s.measure() > 1 {
				s.b = s.b[:s.j+1]
			}
			return
		}
	}
}

// step5a removes a terminal e when m() > 1, or when m() == 1 and not *o.
func (s *stemmer) step5a() {
	if len(s.b) == 0 || s.b[len(s.b)-1] != 'e' {
		return
	}
	s.j = len(s.b) - 2
	m := s.measure()
	if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
		s.b = s.b[:len(s.b)-1]
	}
}

// step5b maps -ll to -l when m() > 1.
func (s *stemmer) step5b() {
	n := len(s.b)
	if n >= 2 && s.b[n-1] == 'l' && s.b[n-2] == 'l' {
		s.j = n - 1
		if s.measure() > 1 {
			s.b = s.b[:n-1]
		}
	}
}
