// Package textproc implements the language-specific text preprocessing the
// paper relies on for textual content units (TCUs): lexical analysis,
// stopword removal and word stemming (Sect. 4.1.2, footnote 1).
//
// The pipeline is deliberately self-contained (stdlib only): a Unicode-aware
// tokenizer, a standard English stopword list and a from-scratch
// implementation of the Porter stemming algorithm.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize splits raw text into lowercase word tokens. A token is a maximal
// run of letters or digits; runs consisting only of digits are kept (years
// such as "2003" are content-bearing in bibliographic data), while
// single-rune tokens are dropped as noise.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if len(tok) < 2 {
			return
		}
		tokens = append(tokens, tok)
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Preprocess runs the full pipeline used to turn a TCU's raw text into index
// terms: tokenization, stopword removal and Porter stemming.
func Preprocess(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if IsStopword(t) {
			continue
		}
		s := Stem(t)
		if len(s) < 2 || IsStopword(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}
