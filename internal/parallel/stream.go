package parallel

import "sync"

// OrderedStream pulls items from next, maps each through fn on a pool of
// workers, and delivers the results to emit strictly in input order — the
// fan-out/fan-in primitive behind the streaming ingest pipeline.
//
// next is called only from one goroutine (sources need no locking) and
// reports exhaustion by returning ok == false. fn runs concurrently and must
// not touch shared state; emit runs serially on the caller's goroutine in
// ascending index order, so order-sensitive work (interning, appending)
// belongs there. Because the emit order is the input order regardless of the
// worker count or schedule, a pipeline built on OrderedStream produces
// byte-identical output for any number of workers.
//
// At most window items are in flight between next and emit (window < workers
// is raised to workers; the serial path holds one). The first error from
// next, fn or emit cancels the stream and is returned after all goroutines
// have drained. The returned peak is the high-water mark of results that sat
// completed waiting for an earlier index to emit — the reorder-buffer bound
// callers surface as "peak queued" in ingest stats.
func OrderedStream[T, R any](workers, window int,
	next func() (T, bool, error),
	fn func(i int, item T) (R, error),
	emit func(i int, r R) error,
) (peak int, err error) {
	workers = Resolve(workers)
	if workers <= 1 {
		for i := 0; ; i++ {
			item, ok, err := next()
			if err != nil {
				return peak, err
			}
			if !ok {
				return peak, nil
			}
			if peak < 1 {
				peak = 1
			}
			r, err := fn(i, item)
			if err != nil {
				return peak, err
			}
			if err := emit(i, r); err != nil {
				return peak, err
			}
		}
	}
	if window < workers {
		window = workers
	}

	type job struct {
		i int
		v T
	}
	type res struct {
		i   int
		v   R
		err error
	}
	jobs := make(chan job)
	// results is buffered to the full window so workers never block on a
	// stalled merger: everything in flight fits in the buffer.
	results := make(chan res, window)
	stop := make(chan struct{})
	sem := make(chan struct{}, window)

	var prodErr error
	var prodWG, workWG sync.WaitGroup
	prodWG.Add(1)
	go func() { // producer: the only caller of next
		defer prodWG.Done()
		defer close(jobs)
		for i := 0; ; i++ {
			select {
			case sem <- struct{}{}:
			case <-stop:
				return
			}
			item, ok, err := next()
			if err != nil {
				prodErr = err
				return
			}
			if !ok {
				return
			}
			select {
			case jobs <- job{i, item}:
			case <-stop:
				return
			}
		}
	}()
	workWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer workWG.Done()
			for j := range jobs {
				r, err := fn(j.i, j.v)
				select {
				case results <- res{j.i, r, err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() { workWG.Wait(); close(results) }()

	// Merger: reorder completed results and emit in index order.
	pending := make(map[int]R)
	nextIdx := 0
	var firstErr error
	fail := func(e error) {
		if firstErr == nil {
			firstErr = e
			close(stop)
		}
	}
	for r := range results {
		if firstErr != nil {
			continue // drain so workers and producer can exit
		}
		if r.err != nil {
			fail(r.err)
			continue
		}
		pending[r.i] = r.v
		if len(pending) > peak {
			peak = len(pending)
		}
		for {
			v, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			if err := emit(nextIdx, v); err != nil {
				fail(err)
				break
			}
			<-sem
			nextIdx++
		}
	}
	prodWG.Wait()
	if firstErr == nil {
		firstErr = prodErr
	}
	return peak, firstErr
}
