package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCtxNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var n atomic.Int64
		if err := ForCtx(ctx, 4, 100, func(i int) { n.Add(1) }); err != nil {
			t.Fatalf("uncancelable ctx returned %v", err)
		}
		if n.Load() != 100 {
			t.Fatalf("ran %d of 100 indices", n.Load())
		}
	}
}

func TestForCtxCancelStopsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		err := ForCtx(ctx, workers, 10000, func(i int) {
			if n.Add(1) == 10 {
				cancel()
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: canceled run returned nil", workers)
		}
		if got := n.Load(); got >= 10000 {
			t.Errorf("workers=%d: cancellation did not stop the loop (%d ran)", workers, got)
		}
		cancel()
	}
}

func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	if err := ForCtx(ctx, 4, 100, func(i int) { n.Add(1) }); err == nil {
		t.Fatal("pre-canceled ctx returned nil")
	}
	if n.Load() != 0 {
		t.Errorf("pre-canceled run still executed %d indices", n.Load())
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := Resolve(w); got != w {
			t.Fatalf("Resolve(%d) = %d", w, got)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			hits := make([]atomic.Int32, n)
			For(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSlotWritesMatchSerial(t *testing.T) {
	const n = 513
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, want[i], got[i])
		}
	}
}

func TestSumMatchesSerialOrder(t *testing.T) {
	// Terms of wildly different magnitudes expose any reduction reorder.
	const n = 2048
	term := func(i int) float64 {
		v := float64(i%17) * 1e-9
		if i%5 == 0 {
			v += float64(i) * 1e6
		}
		return v
	}
	serial := 0.0
	for i := 0; i < n; i++ {
		serial += term(i)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		if got := Sum(workers, n, term); got != serial {
			t.Fatalf("workers=%d: Sum = %v, serial = %v (must be bit-identical)", workers, got, serial)
		}
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(4, 0, func(int) float64 { return 1 }); got != 0 {
		t.Fatalf("Sum over empty range = %v", got)
	}
}

func TestWorkerCount(t *testing.T) {
	cpuCapped := runtime.GOMAXPROCS(0)
	if cpuCapped > 2 {
		cpuCapped = 2
	}
	for _, tc := range []struct{ workers, n, want int }{
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3},
		{4, 0, 1},
		{-1, 2, cpuCapped}, // <1 resolves to the CPU count, capped at n
	} {
		if got := WorkerCount(tc.workers, tc.n); got != tc.want {
			t.Errorf("WorkerCount(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
}

// TestForWorkersIDsAndCoverage: every index runs exactly once and every
// worker id stays inside [0, WorkerCount).
func TestForWorkersIDsAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 257
		nw := WorkerCount(workers, n)
		var ran [n]atomic.Int64
		var badID atomic.Bool
		ForWorkers(workers, n, func(w, i int) {
			if w < 0 || w >= nw {
				badID.Store(true)
			}
			ran[i].Add(1)
		})
		if badID.Load() {
			t.Fatalf("workers=%d: worker id outside [0,%d)", workers, nw)
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, ran[i].Load())
			}
		}
	}
}

// TestForWorkersPerWorkerStateIsPrivate: per-worker slots accumulate the
// whole range with no index lost, proving each index is charged to exactly
// the worker that ran it.
func TestForWorkersPerWorkerStateIsPrivate(t *testing.T) {
	const n = 1000
	nw := WorkerCount(4, n)
	sums := make([]int, nw)
	ForWorkers(4, n, func(w, i int) { sums[w] += i })
	total := 0
	for _, s := range sums {
		total += s
	}
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("per-worker sums total %d, want %d", total, want)
	}
}

func TestSumWorkersMatchesSum(t *testing.T) {
	const n = 999
	term := func(i int) float64 { return float64(i%13) * 1e-7 }
	want := Sum(1, n, term)
	for _, workers := range []int{2, 8} {
		if got := SumWorkers(workers, n, func(_, i int) float64 { return term(i) }); got != want {
			t.Fatalf("workers=%d: SumWorkers = %v, want %v (bit-identical)", workers, got, want)
		}
	}
}

func TestForCtxWorkersCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForCtxWorkers(ctx, 4, 100, func(_, _ int) { ran = true })
	if err == nil {
		t.Fatal("canceled ctx produced nil error")
	}
	_ = ran // indices in flight may run; only the error contract is pinned
}
