package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCtxNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var n atomic.Int64
		if err := ForCtx(ctx, 4, 100, func(i int) { n.Add(1) }); err != nil {
			t.Fatalf("uncancelable ctx returned %v", err)
		}
		if n.Load() != 100 {
			t.Fatalf("ran %d of 100 indices", n.Load())
		}
	}
}

func TestForCtxCancelStopsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		err := ForCtx(ctx, workers, 10000, func(i int) {
			if n.Add(1) == 10 {
				cancel()
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: canceled run returned nil", workers)
		}
		if got := n.Load(); got >= 10000 {
			t.Errorf("workers=%d: cancellation did not stop the loop (%d ran)", workers, got)
		}
		cancel()
	}
}

func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	if err := ForCtx(ctx, 4, 100, func(i int) { n.Add(1) }); err == nil {
		t.Fatal("pre-canceled ctx returned nil")
	}
	if n.Load() != 0 {
		t.Errorf("pre-canceled run still executed %d indices", n.Load())
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := Resolve(w); got != w {
			t.Fatalf("Resolve(%d) = %d", w, got)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			hits := make([]atomic.Int32, n)
			For(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSlotWritesMatchSerial(t *testing.T) {
	const n = 513
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("slot %d: serial %d parallel %d", i, want[i], got[i])
		}
	}
}

func TestSumMatchesSerialOrder(t *testing.T) {
	// Terms of wildly different magnitudes expose any reduction reorder.
	const n = 2048
	term := func(i int) float64 {
		v := float64(i%17) * 1e-9
		if i%5 == 0 {
			v += float64(i) * 1e6
		}
		return v
	}
	serial := 0.0
	for i := 0; i < n; i++ {
		serial += term(i)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		if got := Sum(workers, n, term); got != serial {
			t.Fatalf("workers=%d: Sum = %v, serial = %v (must be bit-identical)", workers, got, serial)
		}
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(4, 0, func(int) float64 { return 1 }); got != 0 {
		t.Fatalf("Sum over empty range = %v", got)
	}
}
