// Package parallel provides the deterministic fork-join primitives the
// clustering hot paths are built on.
//
// The paper's CXK-means is a parallel algorithm by construction — every
// peer clusters its local transaction set independently — and Sect. 4.3
// observes that similarity computation, not iteration count, dominates the
// cost. The primitives here parallelize exactly those similarity-bound
// loops while preserving bit-for-bit reproducibility: work items are
// identified by index, every worker writes only into the slot of the index
// it drew, and floating-point reductions are re-associated in index order
// by the caller (see Sum). Consequently a run with N workers produces
// output byte-identical to the serial run, for any N.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: any value below 1 means "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(i) for every i in [0,n), spread over the given number of
// workers. workers < 1 resolves to the CPU count; workers == 1 (or n ≤ 1)
// runs inline with no goroutines, so the serial path stays allocation- and
// scheduler-free.
//
// Scheduling is dynamic (workers draw the next index from a shared atomic
// counter), which balances loads whose per-index cost varies — e.g. cluster
// members of very different transaction lengths. fn must be safe to call
// concurrently and must confine its writes to state owned by index i;
// under that contract the result is independent of the schedule.
func For(workers, n int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: before drawing each index,
// workers (and the inline serial path) check ctx and stop scheduling new
// work once it is done, then return ctx's error. Indices already in flight
// run to completion, so fn never races with the return; on a non-nil error
// the output slots are incomplete and the caller must discard them. A nil
// ctx (or one that can never be canceled) degenerates to For.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		For(workers, n, fn)
		return nil
	}
	done := ctx.Done()
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					canceled.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// Sum evaluates fn(i) for every i in [0,n) across workers and returns
// Σ fn(i) accumulated in ascending index order. Computing the terms in
// parallel but reducing them serially keeps the floating-point result
// identical to the serial loop — addition is not associative, so a
// schedule-dependent reduction order would leak into cluster objectives
// and break run-to-run reproducibility.
func Sum(workers, n int, fn func(i int) float64) float64 {
	if Resolve(workers) <= 1 || n <= 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += fn(i)
		}
		return s
	}
	terms := make([]float64, n)
	For(workers, n, func(i int) {
		terms[i] = fn(i)
	})
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}
