// Package parallel provides the deterministic fork-join primitives the
// clustering hot paths are built on.
//
// The paper's CXK-means is a parallel algorithm by construction — every
// peer clusters its local transaction set independently — and Sect. 4.3
// observes that similarity computation, not iteration count, dominates the
// cost. The primitives here parallelize exactly those similarity-bound
// loops while preserving bit-for-bit reproducibility: work items are
// identified by index, every worker writes only into the slot of the index
// it drew, and floating-point reductions are re-associated in index order
// by the caller (see Sum). Consequently a run with N workers produces
// output byte-identical to the serial run, for any N.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count knob: any value below 1 means "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// WorkerCount reports how many workers the fork-join primitives will
// actually spawn for a knob value and a work-item count: Resolve(workers)
// capped at n, never below 1. Callers use it to size per-worker state (one
// similarity Scratch per worker, for example) before handing the state out
// by worker id in ForWorkers/ForCtxWorkers/SumWorkers.
func WorkerCount(workers, n int) int {
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0,n), spread over the given number of
// workers. workers < 1 resolves to the CPU count; workers == 1 (or n ≤ 1)
// runs inline with no goroutines, so the serial path stays allocation- and
// scheduler-free.
//
// Scheduling is dynamic (workers draw the next index from a shared atomic
// counter), which balances loads whose per-index cost varies — e.g. cluster
// members of very different transaction lengths. fn must be safe to call
// concurrently and must confine its writes to state owned by index i;
// under that contract the result is independent of the schedule.
func For(workers, n int, fn func(i int)) {
	ForWorkers(workers, n, func(_, i int) { fn(i) })
}

// ForWorkers is For with a per-worker state hook: fn additionally receives
// the dense id (in [0, WorkerCount(workers, n))) of the worker executing
// the index, so callers can give every worker goroutine private mutable
// state — scratch buffers, counters — without locking. Which worker draws
// which index is schedule-dependent; the per-worker state must therefore
// never influence results, only performance (the similarity kernel's
// Scratch is the canonical example). The serial path runs as worker 0.
func ForWorkers(workers, n int, fn func(worker, i int)) {
	workers = WorkerCount(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: before drawing each index,
// workers (and the inline serial path) check ctx and stop scheduling new
// work once it is done, then return ctx's error. Indices already in flight
// run to completion, so fn never races with the return; on a non-nil error
// the output slots are incomplete and the caller must discard them. A nil
// ctx (or one that can never be canceled) degenerates to For.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForCtxWorkers(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForCtxWorkers combines ForWorkers' per-worker state hook with ForCtx's
// cooperative cancellation (see both for the contracts).
func ForCtxWorkers(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if ctx == nil || ctx.Done() == nil {
		ForWorkers(workers, n, fn)
		return nil
	}
	done := ctx.Done()
	workers = WorkerCount(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					canceled.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// Sum evaluates fn(i) for every i in [0,n) across workers and returns
// Σ fn(i) accumulated in ascending index order. Computing the terms in
// parallel but reducing them serially keeps the floating-point result
// identical to the serial loop — addition is not associative, so a
// schedule-dependent reduction order would leak into cluster objectives
// and break run-to-run reproducibility.
func Sum(workers, n int, fn func(i int) float64) float64 {
	return SumWorkers(workers, n, func(_, i int) float64 { return fn(i) })
}

// SumWorkers is Sum with the per-worker state hook of ForWorkers: fn
// receives the executing worker's dense id alongside the index, and the
// terms are still reduced in ascending index order, so the float result is
// byte-identical to the serial loop for any worker count and any schedule.
func SumWorkers(workers, n int, fn func(worker, i int) float64) float64 {
	if WorkerCount(workers, n) <= 1 || n <= 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += fn(0, i)
		}
		return s
	}
	terms := make([]float64, n)
	ForWorkers(workers, n, func(w, i int) {
		terms[i] = fn(w, i)
	})
	s := 0.0
	for _, t := range terms {
		s += t
	}
	return s
}
