package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// streamSquares runs OrderedStream over 0..n-1 with fn(i) = i*i and
// returns the emitted values in emit order.
func streamSquares(t *testing.T, workers, window, n int, delay bool) ([]int, int) {
	t.Helper()
	next := 0
	var got []int
	peak, err := OrderedStream(workers, window,
		func() (int, bool, error) {
			if next >= n {
				return 0, false, nil
			}
			v := next
			next++
			return v, true, nil
		},
		func(i, item int) (int, error) {
			if delay {
				// Jitter derived from the index (fn runs concurrently, so no
				// shared rng): late indexes sometimes finish first.
				time.Sleep(time.Duration((item*7)%3) * time.Millisecond)
			}
			return item * item, nil
		},
		func(i, r int) error {
			got = append(got, r)
			return nil
		},
	)
	if err != nil {
		t.Fatalf("OrderedStream: %v", err)
	}
	return got, peak
}

func TestOrderedStreamOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		got, _ := streamSquares(t, workers, 0, 100, workers > 1)
		if len(got) != 100 {
			t.Fatalf("workers=%d: emitted %d of 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: emit[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestOrderedStreamEmpty(t *testing.T) {
	got, peak := streamSquares(t, 4, 0, 0, false)
	if len(got) != 0 || peak != 0 {
		t.Fatalf("empty stream: emitted %d, peak %d", len(got), peak)
	}
}

func TestOrderedStreamBoundedInFlight(t *testing.T) {
	const workers, window, n = 4, 8, 200
	var inFlight, maxInFlight atomic.Int64
	next := 0
	_, err := OrderedStream(workers, window,
		func() (int, bool, error) {
			if next >= n {
				return 0, false, nil
			}
			v := next
			next++
			cur := inFlight.Add(1)
			for {
				old := maxInFlight.Load()
				if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
					break
				}
			}
			return v, true, nil
		},
		func(i, item int) (int, error) { return item, nil },
		func(i, r int) error {
			inFlight.Add(-1)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The producer acquires a window slot before reading an item, so no
	// more than window items can sit between next and emit.
	if got := maxInFlight.Load(); got > window {
		t.Fatalf("max in flight %d exceeds window %d", got, window)
	}
}

func TestOrderedStreamErrors(t *testing.T) {
	boom := errors.New("boom")
	mk := func() (func() (int, bool, error), func(int, int) (int, error), func(int, int) error) {
		next := 0
		return func() (int, bool, error) {
				if next >= 50 {
					return 0, false, nil
				}
				v := next
				next++
				return v, true, nil
			},
			func(i, item int) (int, error) { return item, nil },
			func(i, r int) error { return nil }
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("next-error-w%d", workers), func(t *testing.T) {
			_, fn, emit := mk()
			n := 0
			_, err := OrderedStream(workers, 0, func() (int, bool, error) {
				if n == 10 {
					return 0, false, boom
				}
				n++
				return n, true, nil
			}, fn, emit)
			if !errors.Is(err, boom) {
				t.Fatalf("want boom, got %v", err)
			}
		})
		t.Run(fmt.Sprintf("fn-error-w%d", workers), func(t *testing.T) {
			next, _, emit := mk()
			_, err := OrderedStream(workers, 0, next, func(i, item int) (int, error) {
				if item == 17 {
					return 0, boom
				}
				return item, nil
			}, emit)
			if !errors.Is(err, boom) {
				t.Fatalf("want boom, got %v", err)
			}
		})
		t.Run(fmt.Sprintf("emit-error-w%d", workers), func(t *testing.T) {
			next, fn, _ := mk()
			emitted := 0
			_, err := OrderedStream(workers, 0, next, fn, func(i, r int) error {
				if i == 13 {
					return boom
				}
				emitted++
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("want boom, got %v", err)
			}
			if emitted != 13 {
				t.Fatalf("emitted %d before error, want 13", emitted)
			}
		})
	}
}

func TestOrderedStreamPeakReflectsReordering(t *testing.T) {
	// Make item 0 the slowest: later items pile up in the reorder buffer.
	var release = make(chan struct{})
	next := 0
	peak, err := OrderedStream(4, 8,
		func() (int, bool, error) {
			if next >= 20 {
				return 0, false, nil
			}
			v := next
			next++
			return v, true, nil
		},
		func(i, item int) (int, error) {
			if item == 0 {
				<-release
			} else if item == 7 {
				// Everything except item 0 has had a chance to finish.
				time.Sleep(20 * time.Millisecond)
				close(release)
			}
			return item, nil
		},
		func(i, r int) error { return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Fatalf("peak %d: expected reordering to queue results behind item 0", peak)
	}
	if peak > 8 {
		t.Fatalf("peak %d exceeds window 8", peak)
	}
}
