package corpus

import (
	"fmt"
	"io"
	"time"

	"xmlclust/internal/parallel"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// Options configures a streaming corpus build.
type Options struct {
	// Tuple bounds tree tuple extraction per document.
	Tuple tuple.Options
	// Parse maps raw XML onto the tree model; nil selects
	// xmltree.DefaultParseOptions(). Ignored for pre-parsed Tree documents.
	Parse *xmltree.ParseOptions
	// Labels optionally assigns ground-truth classes by document index
	// (source order). A label the source itself carries (Document.Label ≥ 0,
	// e.g. from a Trees source) takes precedence; −1 falls back to this
	// slice, then to −1.
	Labels []int
	// Workers is the number of parse/extract workers (0 or negative = one
	// per CPU, 1 = serial). The corpus is byte-identical for any value —
	// workers only parse and extract; interning and weighting are
	// serialized through an index-ordered merge.
	Workers int
	// Window bounds how many documents may be in flight between the source
	// and the merge (0 = 2×workers). Peak resident parsed trees are
	// O(Window), independent of corpus size.
	Window int
}

// Stats describes one streaming ingestion run.
type Stats struct {
	// Docs is the number of documents ingested.
	Docs int
	// Transactions, Items and Terms are the sizes of the resulting corpus.
	Transactions int
	Items        int
	Terms        int
	// TruncatedDocs counts documents whose tuple enumeration hit the cap.
	TruncatedDocs int
	// PeakQueuedTrees is the high-water mark of parsed documents that sat
	// completed in the reorder buffer waiting for an earlier document to
	// merge — bounded by Options.Window, never by the corpus size.
	PeakQueuedTrees int
	// Workers echoes the resolved worker count.
	Workers int
	// Duration is the wall time of the ingest.
	Duration time.Duration
}

// DocsPerSec returns the ingestion throughput.
func (s Stats) DocsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Docs) / s.Duration.Seconds()
}

// String renders a one-line summary for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("%d documents → %d transactions, %d items, vocabulary %d (%.0f docs/s, %d workers, peak %d queued, %d truncated)",
		s.Docs, s.Transactions, s.Items, s.Terms, s.DocsPerSec(), s.Workers, s.PeakQueuedTrees, s.TruncatedDocs)
}

// parsed is one document after the worker stage: the tree plus its
// extracted tuples, ready for the order-sensitive merge.
type parsed struct {
	tree  *xmltree.Tree
	res   tuple.Result
	label int
}

// Build streams every document of src through the full preprocessing
// pipeline — parse, tuple extraction, interning, transaction construction,
// ttf.itf weighting — holding at most O(Workers) parsed trees at any
// instant. Parsing and extraction fan out over Options.Workers goroutines;
// an index-ordered merge serializes interning and the per-document
// weighting fold, so the resulting corpus is byte-identical to the batch
// txn.Build + weighting.Apply path (and to itself) for any worker count.
// The source is drained and closed on return, success or not.
func Build(src Source, opts Options) (*txn.Corpus, Stats, error) {
	defer src.Close()
	parseOpts := xmltree.DefaultParseOptions()
	if opts.Parse != nil {
		parseOpts = *opts.Parse
	}
	b := txn.NewBuilder(txn.BuildOptions{Tuple: opts.Tuple})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)

	workers := parallel.Resolve(opts.Workers)
	window := opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	start := time.Now()
	peak, err := parallel.OrderedStream(workers, window,
		func() (*Document, bool, error) {
			d, err := src.Next()
			if err == io.EOF {
				return nil, false, nil
			}
			if err != nil {
				return nil, false, err
			}
			if d == nil {
				return nil, false, fmt.Errorf("corpus: source yielded a nil document")
			}
			return d, true, nil
		},
		func(i int, d *Document) (parsed, error) {
			t := d.Tree
			if t == nil {
				rc, err := d.Open()
				if err != nil {
					return parsed{}, fmt.Errorf("corpus: %s: %w", d.Name, err)
				}
				t, err = xmltree.Parse(rc, parseOpts)
				rc.Close()
				if err != nil {
					return parsed{}, fmt.Errorf("corpus: %s: %w", d.Name, err)
				}
				t.Name = d.Name
			}
			return parsed{tree: t, res: tuple.Extract(t, opts.Tuple), label: d.Label}, nil
		},
		func(i int, p parsed) error {
			label := p.label
			if label < 0 && i < len(opts.Labels) {
				label = opts.Labels[i]
			}
			b.AddExtracted(p.tree, p.res, label)
			return nil
		},
	)
	if err != nil {
		return nil, Stats{}, err
	}
	c := b.Finish()
	wstats := acc.Finalize()
	stats := Stats{
		Docs:            b.Docs(),
		Transactions:    len(c.Transactions),
		Items:           c.Items.Len(),
		Terms:           wstats.Vocabulary,
		TruncatedDocs:   c.TruncatedDocs,
		PeakQueuedTrees: peak,
		Workers:         workers,
		Duration:        time.Since(start),
	}
	return c, stats, nil
}
