// Package corpus implements the streaming ingestion pipeline: Source
// abstractions that yield XML documents one at a time (directory walks,
// file lists, tar archives, in-process tree generators) and a parallel
// bounded-memory Build driver that turns any Source into a weighted
// transactional corpus without ever materializing the whole collection of
// parsed trees. The output is byte-identical to the batch
// txn.Build + weighting.Apply path for any worker count.
package corpus

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xmlclust/internal/xmltree"
)

// Document is one unit yielded by a Source: either raw XML obtained through
// Open, or an already-parsed Tree (in-process generators). Exactly one of
// the two is set.
type Document struct {
	// Name identifies the document (file path, archive entry, generator id).
	Name string
	// Label is the ground-truth class when known, else −1.
	Label int
	// Tree is the pre-parsed form; nil when the document is raw XML.
	Tree *xmltree.Tree
	// Open returns a reader over the raw XML; nil when Tree is set. It may
	// be called at most once, from any goroutine.
	Open func() (io.ReadCloser, error)
}

// Source yields the documents of a corpus one at a time, in a deterministic
// order. Next returns io.EOF after the last document. Next is never called
// concurrently; Close releases underlying resources and is safe after a
// partial iteration.
type Source interface {
	Next() (*Document, error)
	Close() error
}

// fileSource yields one document per path.
type fileSource struct {
	paths []string
	i     int
}

// Files returns a source over an explicit list of XML files, in the given
// order.
func Files(paths ...string) Source {
	return &fileSource{paths: paths}
}

func (s *fileSource) Next() (*Document, error) {
	if s.i >= len(s.paths) {
		return nil, io.EOF
	}
	p := s.paths[s.i]
	s.i++
	return &Document{
		Name:  p,
		Label: -1,
		Open: func() (io.ReadCloser, error) {
			return os.Open(p)
		},
	}, nil
}

func (s *fileSource) Close() error { return nil }

// Dir returns a source over every *.xml file under root, recursively, in
// lexical path order. It fails up front when the walk yields no XML
// documents, so a mistyped path surfaces as a clear error instead of an
// empty corpus.
func Dir(root string) (Source, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".xml") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: walk %s: %w", root, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no XML documents under %s", root)
	}
	sort.Strings(paths)
	return Files(paths...), nil
}

// treeSource yields pre-parsed trees.
type treeSource struct {
	name   string
	trees  []*xmltree.Tree
	labels []int
	i      int
}

// Trees returns a source over already-parsed trees — the adapter that turns
// an in-process generator (e.g. the cxkgen synthetic corpora) into an
// ingestion source. labels may be nil or shorter than trees; missing
// entries yield −1. The slice is not copied and not mutated.
func Trees(name string, trees []*xmltree.Tree, labels []int) Source {
	return &treeSource{name: name, trees: trees, labels: labels}
}

func (s *treeSource) Next() (*Document, error) {
	if s.i >= len(s.trees) {
		return nil, io.EOF
	}
	i := s.i
	s.i++
	label := -1
	if i < len(s.labels) {
		label = s.labels[i]
	}
	name := s.trees[i].Name
	if name == "" {
		name = fmt.Sprintf("%s-%04d", s.name, i)
	}
	return &Document{Name: name, Label: label, Tree: s.trees[i]}, nil
}

func (s *treeSource) Close() error { return nil }

// multiSource concatenates sources.
type multiSource struct {
	srcs []Source
	i    int
}

// Multi concatenates sources: documents of the first source, then the
// second, and so on. Close closes every underlying source.
func Multi(srcs ...Source) Source {
	return &multiSource{srcs: srcs}
}

func (s *multiSource) Next() (*Document, error) {
	for s.i < len(s.srcs) {
		d, err := s.srcs[s.i].Next()
		if err == io.EOF {
			s.i++
			continue
		}
		return d, err
	}
	return nil, io.EOF
}

func (s *multiSource) Close() error {
	var first error
	for _, src := range s.srcs {
		if err := src.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// bytesDoc builds a raw-XML document over an in-memory buffer.
func bytesDoc(name string, label int, data []byte) *Document {
	return &Document{
		Name:  name,
		Label: label,
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		},
	}
}
