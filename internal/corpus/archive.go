package corpus

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// tarSource streams *.xml entries out of a tar (optionally gzip-compressed)
// archive. Tar is a sequential format, so each entry is buffered into
// memory at Next time — one document of raw bytes in flight, never the
// archive — which lets the parallel ingest stage parse entries
// concurrently while the archive reader stays single-threaded.
type tarSource struct {
	tr     *tar.Reader
	gz     *gzip.Reader
	closer io.Closer // underlying file when opened via TarFile
	name   string
	done   bool
}

// Tar returns a source over the *.xml entries of a tar or tar.gz stream,
// in archive order. Compression is detected from the gzip magic bytes, so
// .tar and .tar.gz need no separate entry points. name labels errors.
func Tar(r io.Reader, name string) (Source, error) {
	br := bufio.NewReader(r)
	src := &tarSource{name: name}
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: gzip: %w", name, err)
		}
		src.gz = gz
		src.tr = tar.NewReader(gz)
	} else {
		src.tr = tar.NewReader(br)
	}
	return src, nil
}

func (s *tarSource) Next() (*Document, error) {
	if s.done {
		return nil, io.EOF
	}
	for {
		hdr, err := s.tr.Next()
		if err == io.EOF {
			s.done = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: tar: %w", s.name, err)
		}
		if hdr.Typeflag != tar.TypeReg || !strings.HasSuffix(strings.ToLower(hdr.Name), ".xml") {
			continue
		}
		data, err := io.ReadAll(s.tr)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: tar entry %s: %w", s.name, hdr.Name, err)
		}
		return bytesDoc(s.name+":"+hdr.Name, -1, data), nil
	}
}

func (s *tarSource) Close() error {
	var first error
	if s.gz != nil {
		if err := s.gz.Close(); err != nil {
			first = err
		}
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
