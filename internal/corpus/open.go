package corpus

import (
	"fmt"
	"io"
	"os"
	"unicode"
)

// Kind classifies what a filesystem path holds, so CLIs can route a single
// -corpus/positional argument to the right ingestion source (or to the gob
// corpus loader).
type Kind int

const (
	// KindUnknown is anything the sniffer does not recognize — callers with
	// a fallback format (e.g. a saved corpus gob) try that.
	KindUnknown Kind = iota
	// KindDir is a directory (walked recursively for *.xml).
	KindDir
	// KindTar is a tar or tar.gz archive.
	KindTar
	// KindXML is a single XML document.
	KindXML
)

// Detect classifies path by stat and content sniffing: directories, gzip
// magic (tar.gz), the ustar magic at offset 257 (tar), or a document whose
// first non-space byte is '<' (XML). Anything else is KindUnknown.
func Detect(path string) (Kind, error) {
	info, err := os.Stat(path)
	if err != nil {
		return KindUnknown, err
	}
	if info.IsDir() {
		return KindDir, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return KindUnknown, err
	}
	defer f.Close()
	head := make([]byte, 512)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return KindUnknown, err
	}
	head = head[:n]
	if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
		return KindTar, nil // gzip; Tar re-sniffs and decompresses
	}
	if len(head) >= 262 && string(head[257:262]) == "ustar" {
		return KindTar, nil
	}
	if len(head) >= 3 && head[0] == 0xef && head[1] == 0xbb && head[2] == 0xbf {
		head = head[3:] // UTF-8 BOM before the first tag
	}
	for _, b := range head {
		if unicode.IsSpace(rune(b)) {
			continue
		}
		if b == '<' {
			return KindXML, nil
		}
		break
	}
	return KindUnknown, nil
}

// Open returns an ingestion source for path: a recursive directory walk, a
// tar/tar.gz archive stream, or a single XML file, auto-detected via
// Detect. Unrecognized content is an error (use Detect directly when a
// fallback format exists).
func Open(path string) (Source, error) {
	kind, err := Detect(path)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindDir:
		return Dir(path)
	case KindTar:
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		src, err := Tar(f, path)
		if err != nil {
			f.Close()
			return nil, err
		}
		src.(*tarSource).closer = f
		return src, nil
	case KindXML:
		return Files(path), nil
	}
	return nil, fmt.Errorf("corpus: %s is neither a directory, a tar[.gz] archive nor an XML document", path)
}
