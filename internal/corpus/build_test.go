package corpus_test

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xmlclust/internal/corpus"
	"xmlclust/internal/dataset"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// saveBytes serializes a corpus; Save covers paths, terms, items (with
// vectors) and transactions, so equal bytes mean equal corpora in every
// field the clustering pipeline reads.
func saveBytes(t testing.TB, c *txn.Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// batchFromFiles is the legacy pipeline: parse everything, hold all trees,
// batch-build, weight.
func batchFromFiles(t testing.TB, paths []string, maxTuples int) *txn.Corpus {
	t.Helper()
	var trees []*xmltree.Tree
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := xmltree.Parse(f, xmltree.DefaultParseOptions())
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		tree.Name = p
		trees = append(trees, tree)
	}
	c := txn.Build(trees, txn.BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: maxTuples}})
	weighting.Apply(c)
	return c
}

// renderCollection writes a generated collection to dir as XML files in
// document order and returns the sorted file paths.
func renderCollection(t testing.TB, col *dataset.Collection, dir string) []string {
	t.Helper()
	paths := make([]string, len(col.Trees))
	for i, tree := range col.Trees {
		p := filepath.Join(dir, fmt.Sprintf("%s-%04d.xml", col.Name, i))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := xmltree.Render(f, tree); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

// fuzzShapedDocs are adversarial inputs in the shape the parser fuzzer
// exercises: deep nesting, repeated siblings (tuple blow-up), attributes,
// mixed text, unicode, empty elements, entities.
var fuzzShapedDocs = []string{
	`<r><a><b><c><d><e>deep</e></d></c></b></a></r>`,
	`<r><x>1</x><x>2</x><x>3</x><y>a</y><y>b</y></r>`,
	`<r a="1" b="2"><c d="3">text</c><c d="4">more</c></r>`,
	`<r>mixed <b>bold</b> tail</r>`,
	`<r><empty/><empty/><full>x</full></r>`,
	`<r><u>héllo wörld — ünïcode ✓</u><u>ασδφ</u></r>`,
	`<r>&amp;&lt;&gt; entities</r>`,
	`<r><a/></r>`,
	`<root><p><q>v</q></p><p><q>w</q></p><p><q>v</q></p></root>`,
	`<r><long>` + string(bytes.Repeat([]byte("word "), 200)) + `</long></r>`,
}

func TestBuildEquivalentToBatchOnRealCorpus(t *testing.T) {
	col := dataset.DBLP(dataset.Spec{Docs: 40, Seed: 424242})
	dir := t.TempDir()
	paths := renderCollection(t, col, dir)
	const maxTuples = 24

	want := saveBytes(t, batchFromFiles(t, paths, maxTuples))
	for _, workers := range []int{1, 2, 8} {
		src, err := corpus.Dir(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, stats, err := corpus.Build(src, corpus.Options{
			Tuple:   tuple.Options{MaxTuplesPerTree: maxTuples},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := saveBytes(t, c); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: streaming corpus differs from batch (%d vs %d bytes)", workers, len(got), len(want))
		}
		if stats.Docs != len(paths) {
			t.Fatalf("workers=%d: ingested %d docs, want %d", workers, stats.Docs, len(paths))
		}
		if stats.Transactions != len(c.Transactions) || stats.Items != c.Items.Len() || stats.Terms != c.Terms.Len() {
			t.Fatalf("workers=%d: stats %+v disagree with corpus", workers, stats)
		}
	}
}

func TestBuildEquivalentToBatchOnFuzzShapedInputs(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, doc := range fuzzShapedDocs {
		p := filepath.Join(dir, fmt.Sprintf("fuzz-%02d.xml", i))
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	want := saveBytes(t, batchFromFiles(t, paths, 0))
	for _, workers := range []int{1, 2, 8} {
		src, err := corpus.Dir(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := corpus.Build(src, corpus.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := saveBytes(t, c); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: streaming corpus differs from batch on fuzz-shaped inputs", workers)
		}
	}
}

func TestBuildTreeSourceEquivalentToBatchWithLabels(t *testing.T) {
	col := dataset.IEEE(dataset.Spec{Docs: 24, Seed: 424242})
	labels, _ := col.Labels(dataset.ByHybrid)
	batch := txn.Build(col.Trees, txn.BuildOptions{
		Tuple:  tuple.Options{MaxTuplesPerTree: 32},
		Labels: labels,
	})
	weighting.Apply(batch)
	want := saveBytes(t, batch)

	for _, workers := range []int{1, 2, 8} {
		c, _, err := corpus.Build(col.Source(dataset.ByHybrid), corpus.Options{
			Tuple:   tuple.Options{MaxTuplesPerTree: 32},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := saveBytes(t, c); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: tree-source streaming corpus differs from batch", workers)
		}
		// Labels ride along per document on the streaming path.
		for i, tr := range c.Transactions {
			if tr.Label != batch.Transactions[i].Label {
				t.Fatalf("workers=%d: transaction %d label %d, want %d", workers, i, tr.Label, batch.Transactions[i].Label)
			}
		}
	}
}

func TestBuildTarEquivalentToDir(t *testing.T) {
	col := dataset.Shakespeare(dataset.Spec{Docs: 4, Seed: 424242})
	dir := t.TempDir()
	renderCollection(t, col, dir)

	dsrc, err := corpus.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromDir, _, err := corpus.Build(dsrc, corpus.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Pack the same files into an in-memory tar.gz and ingest that.
	var tarBytes bytes.Buffer
	writeTarGz(t, &tarBytes, dir)
	tsrc, err := corpus.Tar(bytes.NewReader(tarBytes.Bytes()), "mem.tar.gz")
	if err != nil {
		t.Fatal(err)
	}
	fromTar, _, err := corpus.Build(tsrc, corpus.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, fromDir), saveBytes(t, fromTar)) {
		t.Fatal("tar.gz ingest differs from directory ingest of the same files")
	}
}

// writeTarGz packs every file under dir into a gzipped tar in lexical
// order (matching the Dir source's document order).
func writeTarGz(t testing.TB, w *bytes.Buffer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := tw.WriteHeader(&tar.Header{Name: e.Name(), Mode: 0o644, Size: int64(len(data))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBoundedQueue(t *testing.T) {
	col := dataset.DBLP(dataset.Spec{Docs: 60, Seed: 424242})
	for _, workers := range []int{2, 4} {
		window := 2 * workers
		_, stats, err := corpus.Build(col.Source(dataset.ByHybrid), corpus.Options{
			Tuple:   tuple.Options{MaxTuplesPerTree: 16},
			Workers: workers,
			Window:  window,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.PeakQueuedTrees > window {
			t.Fatalf("workers=%d: peak queued %d exceeds window %d — ingest is not bounded-memory",
				workers, stats.PeakQueuedTrees, window)
		}
		if stats.Docs != 60 {
			t.Fatalf("docs %d, want 60", stats.Docs)
		}
	}
}

func TestBuildParseErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.xml"), []byte("   "), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := corpus.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := corpus.Build(src, corpus.Options{Workers: 2}); err == nil {
		t.Fatal("document with no root element should fail the build")
	}
}
