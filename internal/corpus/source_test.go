package corpus

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlclust/internal/xmltree"
)

// drain collects the names of every document a source yields.
func drain(t *testing.T, src Source) []string {
	t.Helper()
	var names []string
	for {
		d, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		names = append(names, d.Name)
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return names
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDirSourceRecursesAndSorts(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "b.xml"), "<b/>")
	writeFile(t, filepath.Join(root, "sub", "a.xml"), "<a/>")
	writeFile(t, filepath.Join(root, "sub", "deep", "c.XML"), "<c/>")
	writeFile(t, filepath.Join(root, "sub", "ignored.txt"), "nope")

	src, err := Dir(root)
	if err != nil {
		t.Fatal(err)
	}
	names := drain(t, src)
	if len(names) != 3 {
		t.Fatalf("found %d documents, want 3 (recursion into subdirectories): %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if !strings.Contains(names[2], filepath.Join("sub", "deep")) && !strings.Contains(names[1], filepath.Join("sub", "deep")) {
		t.Fatalf("nested file missing: %v", names)
	}
}

func TestDirSourceEmptyIsError(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "notes.txt"), "no xml here")
	if _, err := Dir(root); err == nil {
		t.Fatal("Dir over a directory without XML should fail")
	} else if !strings.Contains(err.Error(), "no XML documents") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := Dir(filepath.Join(root, "missing")); err == nil {
		t.Fatal("Dir over a missing path should fail")
	}
}

func TestFilesSourceOpens(t *testing.T) {
	root := t.TempDir()
	p := filepath.Join(root, "doc.xml")
	writeFile(t, p, "<doc><a>x</a></doc>")
	src := Files(p)
	d, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Label != -1 {
		t.Fatalf("file documents carry label %d, want -1", d.Label)
	}
	rc, err := d.Open()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "<doc><a>x</a></doc>" {
		t.Fatalf("read %q", data)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// makeTar builds a tar (optionally gzipped) holding the given name→content
// entries plus one non-XML entry that must be skipped.
func makeTar(t *testing.T, gz bool, entries map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w io.Writer = &buf
	var gzw *gzip.Writer
	if gz {
		gzw = gzip.NewWriter(&buf)
		w = gzw
	}
	tw := tar.NewWriter(w)
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	// Deterministic archive order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		c := entries[n]
		if err := tw.WriteHeader(&tar.Header{Name: n, Mode: 0o644, Size: int64(len(c))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write([]byte(c)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.WriteHeader(&tar.Header{Name: "README.md", Mode: 0o644, Size: 4}); err != nil {
		t.Fatal(err)
	}
	tw.Write([]byte("skip"))
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if gzw != nil {
		if err := gzw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestTarSourcePlainAndGzip(t *testing.T) {
	entries := map[string]string{
		"a.xml":     "<a>one</a>",
		"sub/b.xml": "<b>two</b>",
	}
	for _, gz := range []bool{false, true} {
		data := makeTar(t, gz, entries)
		src, err := Tar(bytes.NewReader(data), "test.tar")
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			d, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			rc, err := d.Open()
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(rc)
			rc.Close()
			got = append(got, d.Name+"="+string(b))
		}
		src.Close()
		want := []string{"test.tar:a.xml=<a>one</a>", "test.tar:sub/b.xml=<b>two</b>"}
		if len(got) != len(want) {
			t.Fatalf("gz=%v: got %v want %v", gz, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("gz=%v: got %v want %v", gz, got, want)
			}
		}
	}
}

func TestTreesSourceLabels(t *testing.T) {
	trees := []*xmltree.Tree{
		xmltree.MustParseString("<a/>", xmltree.DefaultParseOptions()),
		xmltree.MustParseString("<b/>", xmltree.DefaultParseOptions()),
		xmltree.MustParseString("<c/>", xmltree.DefaultParseOptions()),
	}
	src := Trees("gen", trees, []int{4, 9}) // short labels: third doc → −1
	want := []int{4, 9, -1}
	for i := 0; ; i++ {
		d, err := src.Next()
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("yielded %d docs, want 3", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d.Tree == nil {
			t.Fatal("tree source must set Tree")
		}
		if d.Label != want[i] {
			t.Fatalf("doc %d label %d, want %d", i, d.Label, want[i])
		}
	}
}

func TestMultiConcatenates(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "x.xml"), "<x/>")
	a := Files(filepath.Join(root, "x.xml"))
	b := Trees("g", []*xmltree.Tree{xmltree.MustParseString("<y/>", xmltree.DefaultParseOptions())}, nil)
	names := drain(t, Multi(a, b))
	if len(names) != 2 || !strings.HasSuffix(names[0], "x.xml") {
		t.Fatalf("multi order wrong: %v", names)
	}
}

func TestDetectAndOpen(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "docs")
	writeFile(t, filepath.Join(dir, "a.xml"), "<a/>")
	xml := filepath.Join(root, "one.dat") // XML content without .xml extension
	writeFile(t, xml, "  \n<doc/>")
	tarPath := filepath.Join(root, "c.tar")
	if err := os.WriteFile(tarPath, makeTar(t, false, map[string]string{"t.xml": "<t/>"}), 0o644); err != nil {
		t.Fatal(err)
	}
	tgzPath := filepath.Join(root, "c.bin") // gzip magic, arbitrary extension
	if err := os.WriteFile(tgzPath, makeTar(t, true, map[string]string{"t.xml": "<t/>"}), 0o644); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(root, "junk.gob")
	writeFile(t, junk, "\x01\x02\x03 definitely not xml")

	cases := []struct {
		path string
		want Kind
	}{
		{dir, KindDir},
		{xml, KindXML},
		{tarPath, KindTar},
		{tgzPath, KindTar},
		{junk, KindUnknown},
	}
	for _, c := range cases {
		got, err := Detect(c.path)
		if err != nil {
			t.Fatalf("Detect(%s): %v", c.path, err)
		}
		if got != c.want {
			t.Fatalf("Detect(%s) = %v, want %v", c.path, got, c.want)
		}
	}

	for _, p := range []string{dir, xml, tarPath, tgzPath} {
		src, err := Open(p)
		if err != nil {
			t.Fatalf("Open(%s): %v", p, err)
		}
		if names := drain(t, src); len(names) != 1 {
			t.Fatalf("Open(%s) yielded %v", p, names)
		}
	}
	if _, err := Open(junk); err == nil {
		t.Fatal("Open on unrecognized content should fail")
	}
}
