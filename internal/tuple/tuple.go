// Package tuple implements XML tree tuple extraction (Sect. 3.2 of the
// paper). A tree tuple is a maximal subtree τ of an XML tree XT such that
// the answer of every (tag or complete) path of XT on τ has size at most
// one — the XML analogue of a relational tuple (Arenas & Libkin).
//
// Extraction enumerates, for every node, the cross product over the
// distinct-label child groups of the alternatives contributed by each group
// (two children with the same label can never coexist in one tuple because
// their shared path would then have two answers; children with different
// labels always coexist by maximality).
package tuple

import (
	"fmt"

	"xmlclust/internal/xmltree"
)

// Leaf is one leaf retained by a tree tuple, together with its complete path.
type Leaf struct {
	Node *xmltree.Node
	Path xmltree.Path
}

// TreeTuple is one tree tuple τ extracted from a source tree. The tuple is
// identified by the set of original leaves it retains; its node set is the
// union of the root paths of those leaves.
type TreeTuple struct {
	// Source is the tree the tuple was extracted from.
	Source *xmltree.Tree
	// Index is the position of the tuple in the enumeration order for its
	// source tree (stable for a fixed tree).
	Index int
	// Leaves lists the retained leaves in document order.
	Leaves []Leaf
}

// ID renders a stable human-readable identifier, e.g. "doc12#3".
func (t *TreeTuple) ID() string { return fmt.Sprintf("doc%d#%d", t.Source.DocID, t.Index) }

// Options bounds the enumeration.
type Options struct {
	// MaxTuplesPerTree caps the number of tuples materialized per source
	// tree; 0 means DefaultMaxTuplesPerTree. Trees whose combinatorial
	// product exceeds the cap are truncated deterministically (the first
	// MaxTuplesPerTree combinations in mixed-radix order) and reported via
	// Result.Truncated.
	MaxTuplesPerTree int
}

// DefaultMaxTuplesPerTree bounds the per-tree tuple blow-up. Text-centric
// documents (e.g. whole plays) can yield products in the millions; the cap
// keeps extraction linear in the returned output.
const DefaultMaxTuplesPerTree = 4096

// Result carries the tuples of one tree plus truncation diagnostics.
type Result struct {
	Tuples []*TreeTuple
	// Truncated reports that the full product exceeded the cap.
	Truncated bool
	// TotalCombinations is the untruncated number of tuples (saturating at
	// a large sentinel to avoid overflow).
	TotalCombinations int64
}

const combinationCap = int64(1) << 50

// Extract enumerates the tree tuples of t.
func Extract(t *xmltree.Tree, opts Options) Result {
	max := opts.MaxTuplesPerTree
	if max <= 0 {
		max = DefaultMaxTuplesPerTree
	}
	if t.Root == nil {
		return Result{}
	}
	vs, total := variants(t.Root, max)
	res := Result{TotalCombinations: total, Truncated: total > int64(len(vs))}
	res.Tuples = make([]*TreeTuple, len(vs))
	for i, v := range vs {
		leaves := make([]Leaf, len(v))
		for j, n := range v {
			leaves[j] = Leaf{Node: n, Path: xmltree.NodePath(n)}
		}
		res.Tuples[i] = &TreeTuple{Source: t, Index: i, Leaves: leaves}
	}
	return res
}

// ExtractAll extracts tuples for every tree of a collection, preserving
// order. The returned slice concatenates per-tree tuples.
func ExtractAll(trees []*xmltree.Tree, opts Options) ([]*TreeTuple, []Result) {
	var all []*TreeTuple
	results := make([]Result, len(trees))
	for i, t := range trees {
		r := Extract(t, opts)
		results[i] = r
		all = append(all, r.Tuples...)
	}
	return all, results
}

// variant is the leaf set of one subtree alternative, in document order.
type variant []*xmltree.Node

// variants returns up to max leaf-set alternatives for the subtree rooted at
// n, together with the untruncated total count.
func variants(n *xmltree.Node, max int) ([]variant, int64) {
	if n.IsLeaf() {
		return []variant{{n}}, 1
	}
	if len(n.Children) == 0 {
		// Empty element: a single alternative contributing no leaves.
		return []variant{{}}, 1
	}
	// Group children by label, preserving first-seen order.
	type group struct {
		alts  []variant
		total int64
	}
	order := make([]string, 0, 4)
	groups := make(map[string]*group, 4)
	for _, c := range n.Children {
		g, ok := groups[c.Label]
		if !ok {
			g = &group{}
			groups[c.Label] = g
			order = append(order, c.Label)
		}
		cv, ct := variants(c, max)
		g.alts = append(g.alts, cv...)
		g.total = satAdd(g.total, ct)
		if len(g.alts) > max {
			g.alts = g.alts[:max]
		}
	}
	total := int64(1)
	for _, lbl := range order {
		total = satMul(total, groups[lbl].total)
	}
	// Mixed-radix cross product over groups, deterministic order, capped.
	// The enumerable count is bounded by the product of the (possibly
	// already truncated) per-group alternative counts.
	radices := make([]int, len(order))
	enumerable := int64(1)
	for i, lbl := range order {
		radices[i] = len(groups[lbl].alts)
		enumerable = satMul(enumerable, int64(radices[i]))
	}
	limit := total
	if limit > int64(max) {
		limit = int64(max)
	}
	if limit > enumerable {
		limit = enumerable
	}
	out := make([]variant, 0, limit)
	for idx := int64(0); idx < limit; idx++ {
		rem := idx
		v := variant{}
		ok := true
		for gi := len(order) - 1; gi >= 0; gi-- {
			r := int64(radices[gi])
			if r == 0 {
				ok = false
				break
			}
			pick := rem % r
			rem /= r
			v = append(v, groups[order[gi]].alts[pick]...)
		}
		if !ok {
			break
		}
		// Restore document order of leaves (groups were visited reversed).
		sortByDocOrder(v)
		out = append(out, v)
	}
	return out, total
}

func sortByDocOrder(v variant) {
	// Leaves carry their tree-wide ID which is assigned in document order.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1].ID > v[j].ID; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func satAdd(a, b int64) int64 {
	if a > combinationCap-b {
		return combinationCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > combinationCap/b {
		return combinationCap
	}
	return a * b
}

// Materialize builds the tuple as a standalone xmltree.Tree: the union of
// the root-to-leaf paths of its retained leaves. Used by tests to check the
// tree tuple invariant and by examples for display.
func (t *TreeTuple) Materialize() *xmltree.Tree {
	out := &xmltree.Tree{DocID: t.Source.DocID, Name: t.ID()}
	if len(t.Leaves) == 0 {
		if t.Source.Root != nil {
			out.Root = out.NewNode(xmltree.Element, t.Source.Root.Label, "", nil)
		}
		return out
	}
	// Map from source node to materialized node.
	made := map[*xmltree.Node]*xmltree.Node{}
	var ensure func(src *xmltree.Node) *xmltree.Node
	ensure = func(src *xmltree.Node) *xmltree.Node {
		if n, ok := made[src]; ok {
			return n
		}
		var parent *xmltree.Node
		if src.Parent != nil {
			parent = ensure(src.Parent)
		}
		n := out.NewNode(src.Kind, src.Label, src.Value, parent)
		if src.Parent == nil {
			out.Root = n
		}
		made[src] = n
		return n
	}
	for _, lf := range t.Leaves {
		ensure(lf.Node)
	}
	return out
}

// CheckInvariant verifies that the materialized tuple satisfies the tree
// tuple condition |Aτ(p)| ≤ 1 for every complete and tag path of the tuple.
// It returns a descriptive error on violation (nil when valid).
func (t *TreeTuple) CheckInvariant() error {
	m := t.Materialize()
	counts := map[string]int{}
	var walk func(n *xmltree.Node, prefix string)
	walk = func(n *xmltree.Node, prefix string) {
		p := prefix + n.Label
		counts[p]++
		for _, c := range n.Children {
			walk(c, p+".")
		}
	}
	if m.Root != nil {
		walk(m.Root, "")
	}
	for p, c := range counts {
		if c > 1 {
			return fmt.Errorf("tuple %s: path %s has %d answers", t.ID(), p, c)
		}
	}
	return nil
}
