package tuple

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlclust/internal/xmltree"
)

// paperDoc is the Fig. 2 example whose tuple decomposition is given in
// Fig. 3: exactly three tree tuples.
const paperDoc = `
<dblp>
  <inproceedings key="conf/kdd/ZakiA03">
    <author>M.J. Zaki</author>
    <author>C.C. Aggarwal</author>
    <title>XRules: an effective structural classifier for XML data</title>
    <year>2003</year>
    <booktitle>KDD</booktitle>
    <pages>316-325</pages>
  </inproceedings>
  <inproceedings key="conf/kdd/Zaki02">
    <author>M.J. Zaki</author>
    <title>Efficiently mining frequent trees in a forest</title>
    <year>2002</year>
    <booktitle>KDD</booktitle>
    <pages>71-80</pages>
  </inproceedings>
</dblp>`

func paperTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPaperExampleYieldsThreeTuples(t *testing.T) {
	res := Extract(paperTree(t), Options{})
	if len(res.Tuples) != 3 {
		t.Fatalf("tuples = %d, want 3 (Fig. 3)", len(res.Tuples))
	}
	if res.Truncated {
		t.Error("unexpected truncation")
	}
	if res.TotalCombinations != 3 {
		t.Errorf("total = %d, want 3", res.TotalCombinations)
	}
	// Each tuple has 6 leaves (key, one author, title, year, booktitle, pages).
	for _, tt := range res.Tuples {
		if len(tt.Leaves) != 6 {
			t.Errorf("tuple %s has %d leaves, want 6", tt.ID(), len(tt.Leaves))
		}
	}
}

func TestTuplesSatisfyInvariant(t *testing.T) {
	res := Extract(paperTree(t), Options{})
	for _, tt := range res.Tuples {
		if err := tt.CheckInvariant(); err != nil {
			t.Error(err)
		}
	}
}

func TestTupleAuthorsAreAlternatives(t *testing.T) {
	res := Extract(paperTree(t), Options{})
	authorSets := map[string]int{}
	for _, tt := range res.Tuples {
		m := tt.Materialize()
		authors := m.Answer(xmltree.ParsePath("dblp.inproceedings.author.S"))
		if len(authors) != 1 {
			t.Fatalf("tuple %s has %d authors, want 1", tt.ID(), len(authors))
		}
		authorSets[authors[0]]++
	}
	// Zaki appears in two tuples (one per paper), Aggarwal in one.
	if authorSets["M.J. Zaki"] != 2 || authorSets["C.C. Aggarwal"] != 1 {
		t.Errorf("author multiplicities: %v", authorSets)
	}
}

func TestSingleRecordNoAlternatives(t *testing.T) {
	doc := `<root><a>1</a><b>2</b><c attr="x">3</c></root>`
	tree, _ := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	res := Extract(tree, Options{})
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(res.Tuples))
	}
	if got := len(res.Tuples[0].Leaves); got != 4 {
		t.Errorf("leaves = %d, want 4", got)
	}
}

func TestEmptyElementContributesNothing(t *testing.T) {
	doc := `<root><a>1</a><empty/></root>`
	tree, _ := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	res := Extract(tree, Options{})
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(res.Tuples))
	}
	if got := len(res.Tuples[0].Leaves); got != 1 {
		t.Errorf("leaves = %d, want 1 (empty element has no answer)", got)
	}
}

func TestCrossProductCount(t *testing.T) {
	// Two groups with 2 and 3 same-label children → 6 tuples.
	doc := `<r><a>1</a><a>2</a><b>x</b><b>y</b><b>z</b></r>`
	tree, _ := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	res := Extract(tree, Options{})
	if len(res.Tuples) != 6 {
		t.Fatalf("tuples = %d, want 6", len(res.Tuples))
	}
	seen := map[string]bool{}
	for _, tt := range res.Tuples {
		m := tt.Materialize()
		key := fmt.Sprint(m.Answer(xmltree.ParsePath("r.a.S")), m.Answer(xmltree.ParsePath("r.b.S")))
		if seen[key] {
			t.Errorf("duplicate combination %s", key)
		}
		seen[key] = true
		if err := tt.CheckInvariant(); err != nil {
			t.Error(err)
		}
	}
}

func TestNestedAlternatives(t *testing.T) {
	// Nested same-label children multiply through the levels:
	// outer group has 2 children, each with 2 inner alternatives → 4.
	doc := `<r><g><x>1</x><x>2</x></g><g><x>3</x><x>4</x></g></r>`
	tree, _ := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
	res := Extract(tree, Options{})
	if len(res.Tuples) != 4 {
		t.Fatalf("tuples = %d, want 4", len(res.Tuples))
	}
}

func TestTruncationCap(t *testing.T) {
	// 4 groups of 4 alternatives each → 256 combinations; cap at 10.
	tree := xmltree.NewTree("r")
	for g := 0; g < 4; g++ {
		for c := 0; c < 4; c++ {
			el := tree.AddElement(tree.Root, fmt.Sprintf("g%d", g))
			tree.AddText(el, fmt.Sprintf("%d-%d", g, c))
		}
	}
	res := Extract(tree, Options{MaxTuplesPerTree: 10})
	if len(res.Tuples) != 10 {
		t.Fatalf("tuples = %d, want 10", len(res.Tuples))
	}
	if !res.Truncated {
		t.Error("expected truncation flag")
	}
	if res.TotalCombinations != 256 {
		t.Errorf("total = %d, want 256", res.TotalCombinations)
	}
	for _, tt := range res.Tuples {
		if err := tt.CheckInvariant(); err != nil {
			t.Error(err)
		}
	}
}

func TestDeterministicEnumeration(t *testing.T) {
	tree := paperTree(t)
	a := Extract(tree, Options{})
	b := Extract(tree, Options{})
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatal("nondeterministic count")
	}
	for i := range a.Tuples {
		la, lb := a.Tuples[i].Leaves, b.Tuples[i].Leaves
		if len(la) != len(lb) {
			t.Fatalf("tuple %d leaf count differs", i)
		}
		for j := range la {
			if la[j].Node.ID != lb[j].Node.ID {
				t.Fatalf("tuple %d leaf %d differs", i, j)
			}
		}
	}
}

func TestLeavesInDocumentOrder(t *testing.T) {
	res := Extract(paperTree(t), Options{})
	for _, tt := range res.Tuples {
		for j := 1; j < len(tt.Leaves); j++ {
			if tt.Leaves[j-1].Node.ID >= tt.Leaves[j].Node.ID {
				t.Errorf("tuple %s leaves out of order", tt.ID())
			}
		}
	}
}

func TestExtractAll(t *testing.T) {
	t1 := paperTree(t)
	t2, _ := xmltree.ParseString(`<r><a>1</a></r>`, xmltree.DefaultParseOptions())
	all, results := ExtractAll([]*xmltree.Tree{t1, t2}, Options{})
	if len(all) != 4 {
		t.Fatalf("total tuples = %d, want 4", len(all))
	}
	if len(results) != 2 || len(results[0].Tuples) != 3 || len(results[1].Tuples) != 1 {
		t.Fatalf("per-tree results wrong: %+v", results)
	}
}

// TestPropertyRandomTreesInvariant extracts tuples from random trees and
// checks the defining invariant plus the count formula on every tuple.
func TestPropertyRandomTreesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		tree := randomTree(rng)
		res := Extract(tree, Options{MaxTuplesPerTree: 200})
		if len(res.Tuples) == 0 {
			t.Fatalf("trial %d: no tuples", trial)
		}
		for _, tt := range res.Tuples {
			if err := tt.CheckInvariant(); err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, tree)
			}
		}
		if !res.Truncated && res.TotalCombinations != int64(len(res.Tuples)) {
			t.Fatalf("trial %d: total %d != produced %d",
				trial, res.TotalCombinations, len(res.Tuples))
		}
	}
}

func randomTree(rng *rand.Rand) *xmltree.Tree {
	tree := xmltree.NewTree("root")
	labels := []string{"a", "b", "c", "d"}
	var grow func(parent *xmltree.Node, depth int)
	grow = func(parent *xmltree.Node, depth int) {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			lbl := labels[rng.Intn(len(labels))]
			if depth >= 3 || rng.Float64() < 0.5 {
				el := tree.AddElement(parent, lbl)
				tree.AddText(el, fmt.Sprintf("v%d", rng.Intn(100)))
				continue
			}
			el := tree.AddElement(parent, lbl)
			grow(el, depth+1)
		}
	}
	grow(tree.Root, 0)
	return tree
}

func TestMaterializePreservesValues(t *testing.T) {
	res := Extract(paperTree(t), Options{})
	m := res.Tuples[0].Materialize()
	if m.Root.Label != "dblp" {
		t.Errorf("materialized root = %q", m.Root.Label)
	}
	if got := m.Answer(xmltree.ParsePath("dblp.inproceedings.booktitle.S")); len(got) != 1 || got[0] != "KDD" {
		t.Errorf("booktitle = %v", got)
	}
}

func BenchmarkExtractPaperDoc(b *testing.B) {
	tree, _ := xmltree.ParseString(paperDoc, xmltree.DefaultParseOptions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(tree, Options{})
	}
}
