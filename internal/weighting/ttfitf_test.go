package weighting

import (
	"math"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

func buildCorpus(t *testing.T, docs ...string) *txn.Corpus {
	t.Helper()
	var trees []*xmltree.Tree
	for _, d := range docs {
		tree, err := xmltree.ParseString(d, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	return txn.Build(trees, txn.BuildOptions{})
}

func TestApplyAssignsVectors(t *testing.T) {
	c := buildCorpus(t,
		`<r><a>clustering structures</a><b>clustering documents</b></r>`,
		`<r><a>network protocols</a><b>routing network</b></r>`,
	)
	stats := Apply(c)
	if stats.Vocabulary == 0 || stats.TotalTCUs == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
	nonZero := 0
	for id := 0; id < c.Items.Len(); id++ {
		if !c.Items.Get(txn.ItemID(id)).Vector.IsZero() {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no item received a vector")
	}
}

func TestUbiquitousTermGetsZeroWeight(t *testing.T) {
	// "shared" occurs in every TCU → idf = ln(1) = 0 → dropped.
	c := buildCorpus(t,
		`<r><a>shared alpha</a><b>shared beta</b></r>`,
	)
	Apply(c)
	sharedID, ok := c.Terms.Lookup("share") // stemmed
	if !ok {
		t.Fatal("term 'share' not in vocabulary")
	}
	for id := 0; id < c.Items.Len(); id++ {
		v := c.Items.Get(txn.ItemID(id)).Vector
		if v.Weight(sharedID) != 0 {
			t.Errorf("ubiquitous term has weight %v", v.Weight(sharedID))
		}
	}
}

func TestRareTermOutweighsCommonOne(t *testing.T) {
	c := buildCorpus(t,
		`<r><a>common rare</a><b>common alpha</b><c>common beta</c><d>common gamma</d></r>`,
	)
	Apply(c)
	rareID, ok1 := c.Terms.Lookup("rare")
	commonID, ok2 := c.Terms.Lookup("common")
	if !ok1 || !ok2 {
		t.Fatal("terms missing from vocabulary")
	}
	// Find the item containing both terms.
	var v vector.Sparse
	for id := 0; id < c.Items.Len(); id++ {
		it := c.Items.Get(txn.ItemID(id))
		if it.Answer == "common rare" {
			v = it.Vector
		}
	}
	if v.IsZero() {
		t.Fatal("item not found")
	}
	if v.Weight(rareID) <= v.Weight(commonID) {
		t.Errorf("rare %v should outweigh common %v", v.Weight(rareID), v.Weight(commonID))
	}
}

func TestTermFrequencyRaisesWeight(t *testing.T) {
	c := buildCorpus(t,
		`<r><a>echo echo echo noise</a><b>echo other words</b><c>quiet text here</c></r>`,
	)
	Apply(c)
	echoID, ok := c.Terms.Lookup("echo")
	if !ok {
		t.Fatal("echo not in vocabulary")
	}
	var tripple, single float64
	for id := 0; id < c.Items.Len(); id++ {
		it := c.Items.Get(txn.ItemID(id))
		switch it.Answer {
		case "echo echo echo noise":
			tripple = it.Vector.Weight(echoID)
		case "echo other words":
			single = it.Vector.Weight(echoID)
		}
	}
	if tripple <= single {
		t.Errorf("tf=3 weight %v should exceed tf=1 weight %v", tripple, single)
	}
}

func TestEmptyItemsCounted(t *testing.T) {
	// Attribute values that preprocess to nothing (stopwords, numbers of
	// one digit) yield zero vectors and are counted.
	c := buildCorpus(t, `<r><a>the of and</a><b>substantive words</b></r>`)
	stats := Apply(c)
	if stats.EmptyItems == 0 {
		t.Errorf("expected at least one empty item, got %+v", stats)
	}
}

func TestWeightsNonNegativeFinite(t *testing.T) {
	c := buildCorpus(t,
		`<r><a>alpha beta gamma</a><a>beta gamma delta</a><b>epsilon zeta</b></r>`,
		`<r><a>alpha epsilon</a><b>eta theta iota</b></r>`,
	)
	Apply(c)
	for id := 0; id < c.Items.Len(); id++ {
		for _, e := range c.Items.Get(txn.ItemID(id)).Vector.Entries() {
			if e.Weight <= 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
				t.Fatalf("bad weight %v for term %d", e.Weight, e.Term)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *txn.Corpus {
		c := buildCorpus(t,
			`<r><a>alpha beta</a><b>beta gamma</b></r>`,
			`<r><a>gamma delta</a><b>delta alpha</b></r>`,
		)
		Apply(c)
		return c
	}
	c1, c2 := mk(), mk()
	if c1.Items.Len() != c2.Items.Len() {
		t.Fatal("item counts differ")
	}
	for id := 0; id < c1.Items.Len(); id++ {
		v1 := c1.Items.Get(txn.ItemID(id)).Vector
		v2 := c2.Items.Get(txn.ItemID(id)).Vector
		if !vector.Equal(v1, v2) {
			t.Fatalf("item %d vectors differ: %v vs %v", id, v1, v2)
		}
	}
}

// TestSharedItemAveragesContexts exercises the multi-occurrence averaging:
// an item appearing in two tuples gets the mean of its per-occurrence
// context factors.
func TestSharedItemAveragesContexts(t *testing.T) {
	// 'KDD'-style shared leaf: two same-label records share a booktitle.
	c := buildCorpus(t, `
<dblp>
  <rec><who>first person</who><where>venue shared words</where></rec>
  <rec><who>second human</who><where>venue shared words</where></rec>
</dblp>`)
	stats := Apply(c)
	if stats.TotalTCUs != 4 {
		t.Fatalf("TotalTCUs = %d, want 4 (2 tuples × 2 TCUs)", stats.TotalTCUs)
	}
	// The shared 'where' item must have a well-formed vector.
	found := false
	for id := 0; id < c.Items.Len(); id++ {
		it := c.Items.Get(txn.ItemID(id))
		if it.Answer == "venue shared words" {
			found = true
			if it.Vector.IsZero() {
				t.Error("shared item has zero vector")
			}
		}
	}
	if !found {
		t.Fatal("shared item not interned once")
	}
}

func BenchmarkApply(b *testing.B) {
	var docs []string
	for i := 0; i < 20; i++ {
		docs = append(docs, `<r><a>alpha beta gamma delta epsilon</a><b>zeta eta theta iota kappa</b><c>lambda mu nu xi omicron</c></r>`)
	}
	var trees []*xmltree.Tree
	for _, d := range docs {
		tr, _ := xmltree.ParseString(d, xmltree.DefaultParseOptions())
		trees = append(trees, tr)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := txn.Build(trees, txn.BuildOptions{})
		Apply(c)
	}
}
