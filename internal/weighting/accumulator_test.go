package weighting_test

import (
	"fmt"
	"math"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

func accTestTrees(t *testing.T, n int) []*xmltree.Tree {
	t.Helper()
	trees := make([]*xmltree.Tree, n)
	for i := range trees {
		doc := fmt.Sprintf(
			`<paper key="k%d"><title>clustering xml trees %d</title><author>greco</author><author>tagarelli %d</author><venue>icpp</venue></paper>`,
			i, i%4, i%2)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tree
	}
	return trees
}

// TestAccumulatorMatchesApply feeds the same corpus twice — once through
// the batch Apply pass, once document-by-document through an Accumulator
// attached to an incremental Builder — and requires identical vectors,
// term ids and stats.
func TestAccumulatorMatchesApply(t *testing.T) {
	mk := func() []*xmltree.Tree { return accTestTrees(t, 7) }

	batch := txn.Build(mk(), txn.BuildOptions{})
	batchStats := weighting.Apply(batch)

	b := txn.NewBuilder(txn.BuildOptions{})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)
	for _, tree := range mk() {
		b.Add(tree)
	}
	stream := b.Finish()
	streamStats := acc.Finalize()

	if batchStats != streamStats {
		t.Fatalf("stats differ: batch %+v, streaming %+v", batchStats, streamStats)
	}
	if batch.Terms.Len() != stream.Terms.Len() {
		t.Fatalf("vocabulary %d != %d", batch.Terms.Len(), stream.Terms.Len())
	}
	for i := int32(0); i < int32(batch.Terms.Len()); i++ {
		if batch.Terms.Term(i) != stream.Terms.Term(i) {
			t.Fatalf("term id %d is %q batch vs %q streaming — interning order diverged",
				i, batch.Terms.Term(i), stream.Terms.Term(i))
		}
	}
	if batch.Items.Len() != stream.Items.Len() {
		t.Fatalf("items %d != %d", batch.Items.Len(), stream.Items.Len())
	}
	for i := 0; i < batch.Items.Len(); i++ {
		a, s := batch.Items.Get(txn.ItemID(i)), stream.Items.Get(txn.ItemID(i))
		if !vector.Equal(a.Vector, s.Vector) {
			t.Fatalf("item %d (%q): vector differs between batch Apply and streaming Accumulator", i, a.Answer)
		}
	}
}

// TestAccumulatorEmptyDocs checks documents that contribute no items
// (empty elements only) flow through the per-document fold without
// skewing counts.
func TestAccumulatorEmptyDocs(t *testing.T) {
	docs := []string{
		`<r><a/><b/></r>`, // tuples with no content leaves
		`<r><x>real content here</x></r>`,
		`<r><c/></r>`,
	}
	trees := make([]*xmltree.Tree, len(docs))
	for i, d := range docs {
		trees[i] = xmltree.MustParseString(d, xmltree.DefaultParseOptions())
	}
	batch := txn.Build(trees, txn.BuildOptions{})
	batchStats := weighting.Apply(batch)

	trees2 := make([]*xmltree.Tree, len(docs))
	for i, d := range docs {
		trees2[i] = xmltree.MustParseString(d, xmltree.DefaultParseOptions())
	}
	b := txn.NewBuilder(txn.BuildOptions{})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)
	for _, tree := range trees2 {
		b.Add(tree)
	}
	stream := b.Finish()
	streamStats := acc.Finalize()
	if batchStats != streamStats {
		t.Fatalf("stats differ with empty docs: %+v vs %+v", batchStats, streamStats)
	}
	for i := 0; i < batch.Items.Len(); i++ {
		if !vector.Equal(batch.Items.Get(txn.ItemID(i)).Vector, stream.Items.Get(txn.ItemID(i)).Vector) {
			t.Fatalf("item %d vector differs", i)
		}
	}
}

// TestWeighNewFrozenITF covers the online weighting pass of the serving
// layer: items interned after Finalize get vectors under the frozen
// collection counters, already-weighted items keep theirs byte for byte,
// and synthetic (conflated) items are never re-derived.
func TestWeighNewFrozenITF(t *testing.T) {
	b := txn.NewBuilder(txn.BuildOptions{})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)
	for _, tree := range accTestTrees(t, 3) {
		b.Add(tree)
	}
	c := b.Finish()
	acc.Finalize()

	if n := acc.WeighNew(); n != 0 {
		t.Fatalf("WeighNew right after Finalize weighted %d items, want 0", n)
	}
	itemsBefore := c.Items.Len()
	before := make([]vector.Sparse, itemsBefore)
	for i := range before {
		before[i] = c.Items.Get(txn.ItemID(i)).Vector
	}

	// A synthetic item must keep its conflated vector across WeighNew.
	synVec := vector.FromMap(map[int32]float64{0: 0.125})
	synID := c.Items.InternSynthetic(c.Items.Get(0).Path, "syn merged answer key", synVec, []txn.ItemID{0, 1})

	// Stream one more document with fresh vocabulary through a reopened
	// builder; its items exist but are unweighted until WeighNew runs.
	tree, err := xmltree.ParseString(
		`<paper key="k9"><title>quantum entanglement puzzles</title><author>unseen scribe</author><venue>icpp</venue></paper>`,
		xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	b2 := txn.ReopenBuilder(c, 3, txn.BuildOptions{})
	b2.Observe(acc)
	b2.AddLabeled(tree, -1)

	newID := txn.ItemID(-1)
	for i := int(synID) + 1; i < c.Items.Len(); i++ {
		it := c.Items.Get(txn.ItemID(i))
		if !it.Vector.IsZero() {
			t.Fatalf("item %d (%q) weighted before WeighNew", i, it.Answer)
		}
		if it.Answer == "quantum entanglement puzzles" {
			newID = txn.ItemID(i)
		}
	}
	if newID < 0 {
		t.Fatal("new document's title item not interned")
	}

	n := acc.WeighNew()
	if n == 0 {
		t.Fatal("WeighNew weighted nothing after a new document")
	}
	if c.Items.Get(newID).Vector.IsZero() {
		t.Fatal("new item still has a zero vector after WeighNew")
	}
	if !vector.Equal(c.Items.Get(synID).Vector, synVec) {
		t.Fatal("WeighNew re-derived a synthetic item's conflated vector")
	}
	for i := range before {
		if !vector.Equal(c.Items.Get(txn.ItemID(i)).Vector, before[i]) {
			t.Fatalf("WeighNew changed already-weighted item %d", i)
		}
	}
	if n2 := acc.WeighNew(); n2 != 0 {
		t.Fatalf("second WeighNew re-weighted %d items", n2)
	}

	// Transient classify-time items (interned directly, observed by no
	// document) weight with a neutral context and a clamped n_{j,T} ≥ 1,
	// so unseen terms keep a finite idf.
	transient := c.Items.Intern(c.Items.Get(0).Path, "totally novel wording")
	if acc.WeighNew() == 0 {
		t.Fatal("WeighNew skipped a directly interned item")
	}
	tv := c.Items.Get(transient).Vector
	if tv.IsZero() {
		t.Fatal("transient item got a zero vector")
	}
	for _, e := range tv.Entries() {
		if math.IsInf(e.Weight, 0) || math.IsNaN(e.Weight) {
			t.Fatalf("transient item weight is not finite: %v", tv)
		}
	}
}
