package weighting_test

import (
	"fmt"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

func accTestTrees(t *testing.T, n int) []*xmltree.Tree {
	t.Helper()
	trees := make([]*xmltree.Tree, n)
	for i := range trees {
		doc := fmt.Sprintf(
			`<paper key="k%d"><title>clustering xml trees %d</title><author>greco</author><author>tagarelli %d</author><venue>icpp</venue></paper>`,
			i, i%4, i%2)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tree
	}
	return trees
}

// TestAccumulatorMatchesApply feeds the same corpus twice — once through
// the batch Apply pass, once document-by-document through an Accumulator
// attached to an incremental Builder — and requires identical vectors,
// term ids and stats.
func TestAccumulatorMatchesApply(t *testing.T) {
	mk := func() []*xmltree.Tree { return accTestTrees(t, 7) }

	batch := txn.Build(mk(), txn.BuildOptions{})
	batchStats := weighting.Apply(batch)

	b := txn.NewBuilder(txn.BuildOptions{})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)
	for _, tree := range mk() {
		b.Add(tree)
	}
	stream := b.Finish()
	streamStats := acc.Finalize()

	if batchStats != streamStats {
		t.Fatalf("stats differ: batch %+v, streaming %+v", batchStats, streamStats)
	}
	if batch.Terms.Len() != stream.Terms.Len() {
		t.Fatalf("vocabulary %d != %d", batch.Terms.Len(), stream.Terms.Len())
	}
	for i := int32(0); i < int32(batch.Terms.Len()); i++ {
		if batch.Terms.Term(i) != stream.Terms.Term(i) {
			t.Fatalf("term id %d is %q batch vs %q streaming — interning order diverged",
				i, batch.Terms.Term(i), stream.Terms.Term(i))
		}
	}
	if batch.Items.Len() != stream.Items.Len() {
		t.Fatalf("items %d != %d", batch.Items.Len(), stream.Items.Len())
	}
	for i := 0; i < batch.Items.Len(); i++ {
		a, s := batch.Items.Get(txn.ItemID(i)), stream.Items.Get(txn.ItemID(i))
		if !vector.Equal(a.Vector, s.Vector) {
			t.Fatalf("item %d (%q): vector differs between batch Apply and streaming Accumulator", i, a.Answer)
		}
	}
}

// TestAccumulatorEmptyDocs checks documents that contribute no items
// (empty elements only) flow through the per-document fold without
// skewing counts.
func TestAccumulatorEmptyDocs(t *testing.T) {
	docs := []string{
		`<r><a/><b/></r>`, // tuples with no content leaves
		`<r><x>real content here</x></r>`,
		`<r><c/></r>`,
	}
	trees := make([]*xmltree.Tree, len(docs))
	for i, d := range docs {
		trees[i] = xmltree.MustParseString(d, xmltree.DefaultParseOptions())
	}
	batch := txn.Build(trees, txn.BuildOptions{})
	batchStats := weighting.Apply(batch)

	trees2 := make([]*xmltree.Tree, len(docs))
	for i, d := range docs {
		trees2[i] = xmltree.MustParseString(d, xmltree.DefaultParseOptions())
	}
	b := txn.NewBuilder(txn.BuildOptions{})
	acc := weighting.NewAccumulator(b.Corpus())
	b.Observe(acc)
	for _, tree := range trees2 {
		b.Add(tree)
	}
	stream := b.Finish()
	streamStats := acc.Finalize()
	if batchStats != streamStats {
		t.Fatalf("stats differ with empty docs: %+v vs %+v", batchStats, streamStats)
	}
	for i := 0; i < batch.Items.Len(); i++ {
		if !vector.Equal(batch.Items.Get(txn.ItemID(i)).Vector, stream.Items.Get(txn.ItemID(i)).Vector) {
			t.Fatalf("item %d vector differs", i)
		}
	}
}
