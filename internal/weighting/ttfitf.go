// Package weighting implements the ttf.itf relevance weighting scheme of
// Sect. 4.1.2 — Tree tuple Term Frequency · Inverse Tree tuple Frequency —
// used to build the textual content unit (TCU) vectors of tree tuple items:
//
//	ttf.itf(w_j, u_i | τ) = tf(w_j,u_i) · exp(n_{j,τ}/N_τ) · (n_{j,XT}/N_XT) · ln(N_T/n_{j,T})
//
// where N_τ (resp. n_{j,τ}) is the number of TCUs in the tuple τ (resp.
// those containing w_j), N_XT/n_{j,XT} are the analogous counts at the
// document-tree level and N_T/n_{j,T} at the whole-collection level.
//
// One interpretation point: an item ⟨p, answer⟩ can occur in several tuples
// and trees (cf. item e5 in Fig. 4), so its context factors differ per
// occurrence while the item is a single domain object. We assign to the
// item the average of its per-occurrence ttf.itf weights; this keeps the
// item domain well-defined without losing the context sensitivity of the
// scheme (documented in DESIGN.md).
//
// The scheme decomposes into a per-document part and a collection part: the
// tuple and tree factors of an occurrence depend only on the occurrence's
// own document, while the itf factor ln(N_T/n_{j,T}) needs collection
// totals that are plain monotone counters. Accumulator exploits this to
// weight a corpus in one streaming pass — per-document counts are folded
// into per-item running sums the moment a document completes, so no
// document state outlives its document — with Finalize applying the
// collection-level factors at the end. Apply is the batch driver over the
// same accumulator.
package weighting

import (
	"math"

	"xmlclust/internal/textproc"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
)

// Stats carries the collection-level counters computed during weighting,
// exposed for tests and diagnostics.
type Stats struct {
	// TotalTCUs is N_T: the number of TCUs over all tree tuples.
	TotalTCUs int
	// Vocabulary is |V| after term interning.
	Vocabulary int
	// EmptyItems counts items whose preprocessed text is empty (their TCU
	// vector is the zero vector; content similarity treats them as 0).
	EmptyItems int
}

// Accumulator computes ttf.itf incrementally. Feed each document's
// transactions with ObserveDoc as they are built (it implements
// txn.DocSink, so it plugs straight into txn.Builder.Observe), then call
// Finalize once to assign every item's vector. Memory is bounded by the
// item/term tables plus the current document — never by the corpus's
// document count. For the same corpus fed in the same document order the
// resulting vectors are byte-identical to the historical batch pass:
// per-item context sums accumulate in document order either way, and the
// collection-level itf factor is only applied at the end.
type Accumulator struct {
	c *txn.Corpus
	// Per-item term multiset (tf map) and distinct-term list, extended
	// lazily as interning grows the item table; term interning therefore
	// happens in item-id order, keeping term ids deterministic.
	itemTF    []map[int32]int
	itemTerms [][]int32
	// Collection-level counters, following the tuple-multiplicity reading:
	// N_T = Σ_τ N_τ and n_{j,T} = Σ_τ n_{j,τ}.
	nT  int
	njT map[int32]int
	// Per-item occurrence-context running sums:
	// ctx[t] = Σ over occurrences of exp(n_{j,τ}/N_τ)·(n_{j,XT}/N_XT).
	accCtx []map[int32]float64
	accN   []int
	// weighted marks items whose vector a Finalize or WeighNew pass has
	// already assigned; WeighNew only touches unmarked items.
	weighted []bool
}

// NewAccumulator creates an accumulator bound to the corpus under
// construction (the interning tables must be the ones the transactions
// reference).
func NewAccumulator(c *txn.Corpus) *Accumulator {
	return &Accumulator{c: c, njT: map[int32]int{}}
}

// syncItems extends the per-item state to cover items interned since the
// last call, preprocessing their answers and interning their terms.
func (a *Accumulator) syncItems() {
	n := a.c.Items.Len()
	for id := len(a.itemTF); id < n; id++ {
		it := a.c.Items.Get(txn.ItemID(id))
		tf := map[int32]int{}
		for _, w := range textproc.Preprocess(it.Answer) {
			tf[a.c.Terms.Intern(w)]++
		}
		a.itemTF = append(a.itemTF, tf)
		terms := make([]int32, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		a.itemTerms = append(a.itemTerms, terms)
		a.accCtx = append(a.accCtx, nil)
		a.accN = append(a.accN, 0)
		a.weighted = append(a.weighted, false)
	}
}

// ObserveDoc folds one completed document into the accumulator: trs must be
// all transactions of document doc, exactly once per document, in document
// order. Implements txn.DocSink.
func (a *Accumulator) ObserveDoc(doc int, trs []*txn.Transaction) {
	a.syncItems()

	// Document-level counts over the document's distinct items.
	docItems := map[txn.ItemID]struct{}{}
	for _, tr := range trs {
		a.nT += tr.Len()
		for _, id := range tr.Items {
			// itemTerms is already the distinct-term list of the item, so
			// n_{j,T} counts each (occurrence, term) pair exactly once.
			for _, t := range a.itemTerms[id] {
				a.njT[t]++
			}
			docItems[id] = struct{}{}
		}
	}
	nXT := len(docItems)
	if nXT == 0 {
		return
	}
	njXT := map[int32]int{}
	for id := range docItems {
		for _, t := range a.itemTerms[id] {
			njXT[t]++
		}
	}

	// Per-occurrence context factors, folded into the per-item sums.
	for _, tr := range trs {
		if tr.Len() == 0 {
			continue
		}
		nTau := float64(tr.Len())
		// n_{j,τ}: per-term count of TCUs (items) in this tuple.
		njTau := map[int32]int{}
		for _, id := range tr.Items {
			for _, t := range a.itemTerms[id] {
				njTau[t]++
			}
		}
		for _, id := range tr.Items {
			if a.accCtx[id] == nil {
				a.accCtx[id] = map[int32]float64{}
			}
			a.accN[id]++
			ctx := a.accCtx[id]
			for _, t := range a.itemTerms[id] {
				tupleFactor := math.Exp(float64(njTau[t]) / nTau)
				treeFactor := float64(njXT[t]) / float64(nXT)
				ctx[t] += tupleFactor * treeFactor
			}
		}
	}
}

// Finalize applies the collection-level itf factor and assigns every item's
// TCU vector. Call once, after the last document.
func (a *Accumulator) Finalize() Stats {
	a.syncItems()
	stats := Stats{TotalTCUs: a.nT}
	for id := range a.itemTF {
		if a.c.Items.Get(txn.ItemID(id)).Synthetic {
			// Synthetic representative items carry vectors conflated at
			// intern time; re-deriving them from the merged answer key
			// would clobber the exact conflation.
			a.weighted[id] = true
			continue
		}
		a.weighted[id] = true
		tf := a.itemTF[id]
		if len(tf) == 0 {
			stats.EmptyItems++
			continue
		}
		a.c.Items.SetVector(txn.ItemID(id), a.weigh(id, tf, a.njT))
	}
	// Every raw item's vector may have changed: bring the whole columnar
	// weight column (per-position vector norms) back in sync.
	a.c.RefreshColumnarWeights()
	stats.Vocabulary = a.c.Terms.Len()
	return stats
}

// weigh computes one item's ttf.itf vector from its term-frequency map and
// a collection-level document-frequency view.
func (a *Accumulator) weigh(id int, tf map[int32]int, njT map[int32]int) vector.Sparse {
	weights := make(map[int32]float64, len(tf))
	for t, f := range tf {
		nj := njT[t]
		if nj < 1 {
			// Term unseen by any observed document (transient classify-time
			// items): treat it as occurring once so the idf stays finite.
			nj = 1
		}
		idf := math.Log(float64(a.nT) / float64(nj))
		avgCtx := 1.0
		if a.accN[id] > 0 {
			avgCtx = a.accCtx[id][t] / float64(a.accN[id])
		}
		w := float64(f) * avgCtx * idf
		if w > 0 {
			weights[t] = w
		}
	}
	return vector.FromMap(weights)
}

// WeighNew assigns TCU vectors to the items interned since the last
// Finalize/WeighNew pass, using the CURRENT collection counters as a
// frozen-itf approximation — the online path of the serving layer, where a
// new document must be weighted and assigned immediately while the exact
// collection-wide re-weighting is deferred to the next representative
// refresh. Already-weighted items keep their vectors (their itf factors
// are not retroactively updated; only a fresh Finalize over a rebuilt
// corpus is exact), synthetic representative items are never touched, and
// items observed by no document weight with a neutral context factor.
// Returns the number of items weighted.
func (a *Accumulator) WeighNew() int {
	a.syncItems()
	n := 0
	for id := range a.itemTF {
		if a.weighted[id] {
			continue
		}
		a.weighted[id] = true
		n++
		if a.c.Items.Get(txn.ItemID(id)).Synthetic {
			continue
		}
		tf := a.itemTF[id]
		if len(tf) == 0 || a.nT == 0 {
			continue // zero vector: no text, or nothing observed yet
		}
		a.c.Items.SetVector(txn.ItemID(id), a.weigh(id, tf, a.njT))
	}
	// Only never-weighted items changed, and older spans cannot reference
	// them, so refreshing the positions appended since the last pass keeps
	// the whole weight column current without an arena-wide scan per add.
	a.c.RefreshNewColumnarWeights()
	return n
}

// Apply computes the ttf.itf TCU vector of every item in the corpus in one
// batch: it groups the corpus's transactions per document (first-seen
// order; txn.Build emits documents contiguously, so this is the build
// order) and drives an Accumulator over them. It must run once, after
// txn.Build and before clustering.
func Apply(c *txn.Corpus) Stats {
	a := NewAccumulator(c)
	var docs []int
	byDoc := map[int][]*txn.Transaction{}
	for _, tr := range c.Transactions {
		if _, ok := byDoc[tr.Doc]; !ok {
			docs = append(docs, tr.Doc)
		}
		byDoc[tr.Doc] = append(byDoc[tr.Doc], tr)
	}
	for _, doc := range docs {
		a.ObserveDoc(doc, byDoc[doc])
	}
	return a.Finalize()
}
