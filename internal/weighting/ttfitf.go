// Package weighting implements the ttf.itf relevance weighting scheme of
// Sect. 4.1.2 — Tree tuple Term Frequency · Inverse Tree tuple Frequency —
// used to build the textual content unit (TCU) vectors of tree tuple items:
//
//	ttf.itf(w_j, u_i | τ) = tf(w_j,u_i) · exp(n_{j,τ}/N_τ) · (n_{j,XT}/N_XT) · ln(N_T/n_{j,T})
//
// where N_τ (resp. n_{j,τ}) is the number of TCUs in the tuple τ (resp.
// those containing w_j), N_XT/n_{j,XT} are the analogous counts at the
// document-tree level and N_T/n_{j,T} at the whole-collection level.
//
// One interpretation point: an item ⟨p, answer⟩ can occur in several tuples
// and trees (cf. item e5 in Fig. 4), so its context factors differ per
// occurrence while the item is a single domain object. We assign to the
// item the average of its per-occurrence ttf.itf weights; this keeps the
// item domain well-defined without losing the context sensitivity of the
// scheme (documented in DESIGN.md).
package weighting

import (
	"math"

	"xmlclust/internal/textproc"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
)

// Stats carries the collection-level counters computed during Apply,
// exposed for tests and diagnostics.
type Stats struct {
	// TotalTCUs is N_T: the number of TCUs over all tree tuples.
	TotalTCUs int
	// Vocabulary is |V| after term interning.
	Vocabulary int
	// EmptyItems counts items whose preprocessed text is empty (their TCU
	// vector is the zero vector; content similarity treats them as 0).
	EmptyItems int
}

// Apply computes the ttf.itf TCU vector of every item in the corpus.
// It must run once, after txn.Build and before clustering.
func Apply(c *txn.Corpus) Stats {
	nItems := c.Items.Len()
	// Term multiset per item (tf maps), interned through the corpus table.
	itemTF := make([]map[int32]int, nItems)
	itemTerms := make([][]int32, nItems) // distinct terms, for set passes
	for id := 0; id < nItems; id++ {
		it := c.Items.Get(txn.ItemID(id))
		tf := map[int32]int{}
		for _, w := range textproc.Preprocess(it.Answer) {
			tf[c.Terms.Intern(w)]++
		}
		itemTF[id] = tf
		terms := make([]int32, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		itemTerms[id] = terms
	}

	// Collection-level counters, following the tuple-multiplicity reading:
	// N_T = Σ_τ N_τ and n_{j,T} = Σ_τ n_{j,τ}.
	nT := 0
	njT := map[int32]int{}
	// Per-document (tree) counters over the document's distinct items.
	type docStat struct {
		nXT  int
		njXT map[int32]int
	}
	docStats := map[int]*docStat{}
	docItems := map[int]map[txn.ItemID]struct{}{}
	for _, tr := range c.Transactions {
		nT += tr.Len()
		for _, id := range tr.Items {
			seen := map[int32]struct{}{}
			for _, t := range itemTerms[id] {
				seen[t] = struct{}{}
			}
			for t := range seen {
				njT[t]++
			}
			di, ok := docItems[tr.Doc]
			if !ok {
				di = map[txn.ItemID]struct{}{}
				docItems[tr.Doc] = di
			}
			di[id] = struct{}{}
		}
	}
	for doc, items := range docItems {
		ds := &docStat{njXT: map[int32]int{}}
		ds.nXT = len(items)
		for id := range items {
			for _, t := range itemTerms[id] {
				ds.njXT[t]++
			}
		}
		docStats[doc] = ds
	}

	// Per-occurrence context factors, accumulated per item then averaged.
	type acc struct {
		ctx map[int32]float64 // term → Σ exp(n_{j,τ}/N_τ)·(n_{j,XT}/N_XT)
		n   int
	}
	accs := make([]acc, nItems)
	for _, tr := range c.Transactions {
		if tr.Len() == 0 {
			continue
		}
		nTau := float64(tr.Len())
		// n_{j,τ}: per-term count of TCUs (items) in this tuple.
		njTau := map[int32]int{}
		for _, id := range tr.Items {
			for _, t := range itemTerms[id] {
				njTau[t]++
			}
		}
		ds := docStats[tr.Doc]
		for _, id := range tr.Items {
			a := &accs[id]
			if a.ctx == nil {
				a.ctx = map[int32]float64{}
			}
			a.n++
			for _, t := range itemTerms[id] {
				tupleFactor := math.Exp(float64(njTau[t]) / nTau)
				treeFactor := float64(ds.njXT[t]) / float64(ds.nXT)
				a.ctx[t] += tupleFactor * treeFactor
			}
		}
	}

	stats := Stats{TotalTCUs: nT}
	for id := 0; id < nItems; id++ {
		tf := itemTF[id]
		if len(tf) == 0 {
			stats.EmptyItems++
			continue
		}
		a := accs[id]
		weights := make(map[int32]float64, len(tf))
		for t, f := range tf {
			idf := math.Log(float64(nT) / float64(njT[t]))
			avgCtx := 1.0
			if a.n > 0 {
				avgCtx = a.ctx[t] / float64(a.n)
			}
			w := float64(f) * avgCtx * idf
			if w > 0 {
				weights[t] = w
			}
		}
		c.Items.SetVector(txn.ItemID(id), vector.FromMap(weights))
	}
	stats.Vocabulary = c.Terms.Len()
	return stats
}
