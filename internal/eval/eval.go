// Package eval implements the cluster validity measures of Sect. 5.3: the
// overall F-measure against a reference classification (the weighted sum of
// the per-class maximum F scores), plus the standard purity and normalized
// mutual information measures used by the extended diagnostics.
package eval

import "math"

// Contingency holds the cluster-vs-class co-occurrence counts for a
// clustering C = {C_1..C_K} against a reference Γ = {Γ_1..Γ_H} over a set
// of transactions. Unassigned objects (negative labels or assignments) are
// excluded from clusters but classes keep their full size, penalizing
// trash-heavy clusterings through recall, exactly as |Γ_i| appears in the
// paper's formula.
type Contingency struct {
	N          int     // objects with a valid reference label
	ClassSize  []int   // |Γ_i|
	ClusterSz  []int   // |C_j| (labeled members only)
	CoOccur    [][]int // [class][cluster]
	NumClass   int
	NumCluster int
}

// NewContingency builds the table from per-object labels and assignments.
// labels[i] is the reference class of object i (negative = unlabeled);
// assign[i] is its cluster (negative = trash/unassigned). numCluster must
// be ≥ 1 + max(assign).
func NewContingency(labels, assign []int, numCluster int) *Contingency {
	numClass := 0
	for _, l := range labels {
		if l+1 > numClass {
			numClass = l + 1
		}
	}
	c := &Contingency{
		ClassSize:  make([]int, numClass),
		ClusterSz:  make([]int, numCluster),
		NumClass:   numClass,
		NumCluster: numCluster,
	}
	c.CoOccur = make([][]int, numClass)
	for i := range c.CoOccur {
		c.CoOccur[i] = make([]int, numCluster)
	}
	for i, l := range labels {
		if l < 0 {
			continue
		}
		c.N++
		c.ClassSize[l]++
		if i < len(assign) && assign[i] >= 0 && assign[i] < numCluster {
			c.ClusterSz[assign[i]]++
			c.CoOccur[l][assign[i]]++
		}
	}
	return c
}

// FMeasure computes the overall F-measure (Sect. 5.3):
//
//	F(C,Γ) = 1/|S| · Σ_i |Γ_i| · max_j F_ij
//
// with F_ij the harmonic mean of precision |C_j∩Γ_i|/|C_j| and recall
// |C_j∩Γ_i|/|Γ_i|.
func (c *Contingency) FMeasure() float64 {
	if c.N == 0 {
		return 0
	}
	total := 0.0
	for i := 0; i < c.NumClass; i++ {
		if c.ClassSize[i] == 0 {
			continue
		}
		best := 0.0
		for j := 0; j < c.NumCluster; j++ {
			inter := c.CoOccur[i][j]
			if inter == 0 || c.ClusterSz[j] == 0 {
				continue
			}
			p := float64(inter) / float64(c.ClusterSz[j])
			r := float64(inter) / float64(c.ClassSize[i])
			f := 2 * p * r / (p + r)
			if f > best {
				best = f
			}
		}
		total += float64(c.ClassSize[i]) * best
	}
	return total / float64(c.N)
}

// Purity is the fraction of clustered objects that belong to their
// cluster's majority class.
func (c *Contingency) Purity() float64 {
	clustered := 0
	agree := 0
	for j := 0; j < c.NumCluster; j++ {
		clustered += c.ClusterSz[j]
		best := 0
		for i := 0; i < c.NumClass; i++ {
			if c.CoOccur[i][j] > best {
				best = c.CoOccur[i][j]
			}
		}
		agree += best
	}
	if clustered == 0 {
		return 0
	}
	return float64(agree) / float64(clustered)
}

// NMI computes the normalized mutual information between the clustering
// and the reference classes over the clustered objects, normalized by the
// arithmetic mean of the entropies. Returns 0 when degenerate.
func (c *Contingency) NMI() float64 {
	n := 0
	for _, s := range c.ClusterSz {
		n += s
	}
	if n == 0 {
		return 0
	}
	fn := float64(n)
	var mi, hClass, hCluster float64
	for i := 0; i < c.NumClass; i++ {
		classInClustered := 0
		for j := 0; j < c.NumCluster; j++ {
			classInClustered += c.CoOccur[i][j]
		}
		if classInClustered > 0 {
			p := float64(classInClustered) / fn
			hClass -= p * math.Log(p)
		}
		for j := 0; j < c.NumCluster; j++ {
			nij := c.CoOccur[i][j]
			if nij == 0 || c.ClusterSz[j] == 0 {
				continue
			}
			pij := float64(nij) / fn
			pi := float64(classInClustered) / fn
			pj := float64(c.ClusterSz[j]) / fn
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	for j := 0; j < c.NumCluster; j++ {
		if c.ClusterSz[j] > 0 {
			p := float64(c.ClusterSz[j]) / fn
			hCluster -= p * math.Log(p)
		}
	}
	denom := (hClass + hCluster) / 2
	if denom == 0 {
		return 0
	}
	nmi := mi / denom
	if nmi < 0 {
		nmi = 0
	} else if nmi > 1 {
		nmi = 1
	}
	return nmi
}

// FMeasure is a convenience wrapper building the contingency table and
// returning the overall F-measure directly.
func FMeasure(labels, assign []int, numCluster int) float64 {
	return NewContingency(labels, assign, numCluster).FMeasure()
}

// TrashFraction reports the fraction of labeled objects left unassigned.
func TrashFraction(labels, assign []int) float64 {
	labeled, trash := 0, 0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		labeled++
		if i >= len(assign) || assign[i] < 0 {
			trash++
		}
	}
	if labeled == 0 {
		return 0
	}
	return float64(trash) / float64(labeled)
}
