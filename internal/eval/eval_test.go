package eval

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFMeasurePerfect(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	assign := []int{0, 0, 1, 1, 2, 2}
	if got := FMeasure(labels, assign, 3); !approx(got, 1) {
		t.Errorf("perfect clustering F = %v", got)
	}
}

func TestFMeasurePermutationInvariant(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	// Same partition, permuted cluster ids.
	assign := []int{2, 2, 0, 0, 1, 1}
	if got := FMeasure(labels, assign, 3); !approx(got, 1) {
		t.Errorf("permuted perfect clustering F = %v", got)
	}
}

func TestFMeasureSingleCluster(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	assign := []int{0, 0, 0, 0, 0, 0}
	// Each class: P = 3/6, R = 1 → F_ij = 2·0.5·1/1.5 = 2/3.
	if got := FMeasure(labels, assign, 1); !approx(got, 2.0/3.0) {
		t.Errorf("single-cluster F = %v, want 2/3", got)
	}
}

func TestFMeasureHandComputed(t *testing.T) {
	// Class 0: {o0,o1,o2}; class 1: {o3,o4}.
	// Cluster 0: {o0,o1,o3}; cluster 1: {o2,o4}.
	labels := []int{0, 0, 0, 1, 1}
	assign := []int{0, 0, 1, 0, 1}
	// Class 0 vs cluster 0: P=2/3, R=2/3, F=2/3; vs cluster 1: P=1/2,
	// R=1/3, F=0.4 → max 2/3.
	// Class 1 vs cluster 0: P=1/3, R=1/2 → F=0.4; vs cluster 1: P=1/2,
	// R=1/2, F=1/2 → max 1/2.
	// Overall: (3·(2/3) + 2·(1/2))/5 = 3/5 = 0.6.
	if got := FMeasure(labels, assign, 2); !approx(got, 0.6) {
		t.Errorf("F = %v, want 0.6", got)
	}
}

func TestFMeasureTrashPenalizesRecall(t *testing.T) {
	labels := []int{0, 0, 0, 0}
	full := FMeasure(labels, []int{0, 0, 0, 0}, 1)
	half := FMeasure(labels, []int{0, 0, -1, -1}, 1)
	if full <= half {
		t.Errorf("trash should reduce F: full=%v half=%v", full, half)
	}
	// Half in trash: P=1, R=1/2 → F=2/3.
	if !approx(half, 2.0/3.0) {
		t.Errorf("half-trash F = %v, want 2/3", half)
	}
}

func TestFMeasureUnlabeledExcluded(t *testing.T) {
	labels := []int{0, 0, -1, 1}
	assign := []int{0, 0, 0, 1}
	if got := FMeasure(labels, assign, 2); !approx(got, 1) {
		// Unlabeled object in cluster 0 still counts toward |C_0| through
		// ClusterSz? No: unlabeled objects are excluded entirely.
		t.Errorf("F = %v, want 1", got)
	}
}

func TestFMeasureEmpty(t *testing.T) {
	if got := FMeasure(nil, nil, 3); got != 0 {
		t.Errorf("empty F = %v", got)
	}
	if got := FMeasure([]int{-1, -1}, []int{0, 1}, 2); got != 0 {
		t.Errorf("all-unlabeled F = %v", got)
	}
}

func TestPurity(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	cont := NewContingency(labels, []int{0, 0, 1, 1}, 2)
	if got := cont.Purity(); !approx(got, 1) {
		t.Errorf("perfect purity = %v", got)
	}
	cont = NewContingency(labels, []int{0, 1, 0, 1}, 2)
	if got := cont.Purity(); !approx(got, 0.5) {
		t.Errorf("mixed purity = %v, want 0.5", got)
	}
}

func TestNMIPerfectAndRandom(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	perfect := NewContingency(labels, []int{1, 1, 1, 0, 0, 0}, 2).NMI()
	if !approx(perfect, 1) {
		t.Errorf("perfect NMI = %v", perfect)
	}
	single := NewContingency(labels, []int{0, 0, 0, 0, 0, 0}, 1).NMI()
	if single != 0 {
		t.Errorf("single-cluster NMI = %v, want 0", single)
	}
}

func TestNMIRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		h := 1 + rng.Intn(5)
		labels := make([]int, n)
		assign := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(h)
			assign[i] = rng.Intn(k) - 1 // sometimes trash
		}
		c := NewContingency(labels, assign, k)
		if v := c.NMI(); v < 0 || v > 1 {
			t.Fatalf("NMI out of range: %v", v)
		}
		if v := c.FMeasure(); v < 0 || v > 1 {
			t.Fatalf("F out of range: %v", v)
		}
		if v := c.Purity(); v < 0 || v > 1 {
			t.Fatalf("purity out of range: %v", v)
		}
	}
}

func TestFMeasureRandomWorseThanExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, k := 60, 4
	labels := make([]int, n)
	exact := make([]int, n)
	random := make([]int, n)
	for i := range labels {
		labels[i] = i % k
		exact[i] = labels[i]
		random[i] = rng.Intn(k)
	}
	if FMeasure(labels, exact, k) <= FMeasure(labels, random, k) {
		t.Error("random clustering scored at least as high as exact")
	}
}

func TestTrashFraction(t *testing.T) {
	labels := []int{0, 1, -1, 0}
	assign := []int{0, -1, -1, 1}
	// Labeled: 3; trash among labeled: 1 (index 1).
	if got := TrashFraction(labels, assign); !approx(got, 1.0/3.0) {
		t.Errorf("trash fraction = %v, want 1/3", got)
	}
	if got := TrashFraction(nil, nil); got != 0 {
		t.Errorf("empty trash fraction = %v", got)
	}
	// Assignment shorter than labels counts as trash.
	if got := TrashFraction([]int{0, 0}, []int{0}); !approx(got, 0.5) {
		t.Errorf("short assign trash = %v", got)
	}
}

func TestContingencyCounts(t *testing.T) {
	labels := []int{0, 0, 1, 2}
	assign := []int{0, 1, 1, -1}
	c := NewContingency(labels, assign, 2)
	if c.N != 4 {
		t.Errorf("N = %d", c.N)
	}
	if c.NumClass != 3 || c.NumCluster != 2 {
		t.Errorf("dims = %d×%d", c.NumClass, c.NumCluster)
	}
	if c.ClassSize[0] != 2 || c.ClassSize[1] != 1 || c.ClassSize[2] != 1 {
		t.Errorf("class sizes = %v", c.ClassSize)
	}
	if c.ClusterSz[0] != 1 || c.ClusterSz[1] != 2 {
		t.Errorf("cluster sizes = %v", c.ClusterSz)
	}
	if c.CoOccur[0][0] != 1 || c.CoOccur[0][1] != 1 || c.CoOccur[1][1] != 1 {
		t.Errorf("co-occurrence = %v", c.CoOccur)
	}
}
