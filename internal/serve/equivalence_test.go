package serve

import (
	"context"
	"fmt"
	"testing"

	"xmlclust"
)

// TestIncrementalEquivalence is the acceptance test of the incremental
// service: after the maintenance loop converges, the incremental state —
// per-transaction assignments AND cluster representatives — must match a
// from-scratch Engine.Cluster run on the same documents with the same
// options and seed, byte for byte.
//
// The service earns this by construction: a refresh rebuilds a fresh
// corpus from the retained raw XML of the live documents in original add
// order, so interning, weighting and clustering see exactly the inputs a
// batch run would. The test drives a realistic churn history (interleaved
// adds, removals, read-only classifies) through maintenance rounds with a
// hair-trigger drift threshold before comparing.
// It runs once per representative-index mode: the indexed assignment path
// must leave the converged state — and hence the equivalence — untouched.
func TestIncrementalEquivalence(t *testing.T) {
	for _, mode := range []xmlclust.RepIndexMode{xmlclust.RepIndexOff, xmlclust.RepIndexAuto} {
		name := "index-off"
		if mode != xmlclust.RepIndexOff {
			name = "index-on"
		}
		t.Run(name, func(t *testing.T) { testIncrementalEquivalence(t, mode, xmlclust.DeltaRoundsAuto) })
	}
	// Cross-mode delta gate: the service refreshes with the cross-round
	// delta engine (the default), while the from-scratch reference runs
	// with DeltaRoundsOff — recomputing every round. The byte-identity
	// asserts below then prove the delta engine changes nothing observable.
	t.Run("delta-off-reference", func(t *testing.T) {
		testIncrementalEquivalence(t, xmlclust.RepIndexOff, xmlclust.DeltaRoundsOff)
	})
}

func testIncrementalEquivalence(t *testing.T, mode xmlclust.RepIndexMode, refDelta xmlclust.DeltaRoundsMode) {
	cfg := serveConfig()
	cfg.DriftThreshold = -1 // any drift at all refreshes on the next round
	cfg.IndexReps = mode
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	docs := serveDocs(5) // ids 0-4 papers, 5-9 reports

	maintain := func() RoundStats {
		t.Helper()
		rs, err := s.MaintenanceRound(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}

	// Churn: add in batches with maintenance between, remove a doc of each
	// topic, interleave read-only classifies (they must not perturb state).
	for i, doc := range docs[:4] {
		if _, err := s.AddDocument(ctx, fmt.Sprintf("doc%d", i), []byte(doc), -1); err != nil {
			t.Fatal(err)
		}
		maintain()
	}
	for i, doc := range docs[4:] {
		if _, err := s.AddDocument(ctx, fmt.Sprintf("doc%d", 4+i), []byte(doc), -1); err != nil {
			t.Fatal(err)
		}
	}
	maintain()
	if _, err := s.Classify(ctx, []byte(docs[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveDocument(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveDocument(7); err != nil {
		t.Fatal(err)
	}
	maintain()
	if _, err := s.Classify(ctx, []byte(docs[9])); err != nil {
		t.Fatal(err)
	}

	// Converge: maintenance rounds until one observes no drift and does not
	// refresh.
	converged := false
	for i := 0; i < 5; i++ {
		rs := maintain()
		if !rs.Refreshed && rs.DirtyDocs == 0 && rs.Drift == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("maintenance loop did not converge")
	}

	// From-scratch reference: the live documents in original add order.
	var trees []*xmlclust.Tree
	for i, doc := range docs {
		if i == 2 || i == 7 {
			continue // removed above
		}
		tree, err := xmlclust.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		tree.Name = fmt.Sprintf("doc%d", i)
		trees = append(trees, tree)
	}
	corpus := xmlclust.BuildCorpus(trees, xmlclust.CorpusOptions{MaxTuplesPerTree: cfg.MaxTuplesPerTree})
	eng, err := xmlclust.NewEngine(corpus, xmlclust.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Cluster(ctx, xmlclust.ClusterOptions{
		K: cfg.K, F: cfg.F, Gamma: cfg.Gamma,
		Seed: cfg.Seed, Workers: cfg.Workers, MaxRounds: cfg.MaxRounds,
		IndexReps: mode, DeltaRounds: refDelta,
	})
	if err != nil {
		t.Fatal(err)
	}

	// With the index on, the service must actually be using it: the stats
	// surface reports a live index and counter movement.
	if st := s.Stats(); mode != xmlclust.RepIndexOff {
		if st.IndexedReps == 0 {
			t.Error("index on but stats report no indexed representatives")
		}
		if st.IndexCandidates+st.IndexSkipped == 0 {
			t.Error("index on but no index counter movement")
		}
	} else if st.IndexEntries != 0 || st.IndexCandidates+st.IndexSkipped != 0 {
		t.Errorf("index off but stats report index activity: %+v", st)
	}

	// Assignments must match transaction for transaction.
	got := s.Assignment()
	if len(got) != len(ref.Assign) {
		t.Fatalf("incremental state has %d transactions, from-scratch %d", len(got), len(ref.Assign))
	}
	for i := range got {
		if got[i] != ref.Assign[i] {
			t.Errorf("transaction %d: incremental cluster %d, from-scratch %d", i, got[i], ref.Assign[i])
		}
	}

	// Representatives must match item set for item set. Both corpora were
	// built from identical documents in identical order, so item ids are
	// directly comparable.
	reps := s.Representatives()
	if len(reps) != len(ref.Reps) {
		t.Fatalf("incremental state has %d representatives, from-scratch %d", len(reps), len(ref.Reps))
	}
	for j := range reps {
		switch {
		case reps[j] == nil && ref.Reps[j] == nil:
		case reps[j] == nil || ref.Reps[j] == nil:
			t.Errorf("representative %d: nil mismatch (incremental %v, from-scratch %v)", j, reps[j], ref.Reps[j])
		case !reps[j].Equal(ref.Reps[j]):
			t.Errorf("representative %d: item sets differ\nincremental:  %v\nfrom-scratch: %v",
				j, reps[j].Items, ref.Reps[j].Items)
		}
	}

	// And the document-level view agrees with DocumentClusters on the
	// reference run.
	refDocs := xmlclust.DocumentClusters(corpus, ref.Assign)
	i := 0
	for _, info := range s.Documents() {
		if info.Removed {
			continue
		}
		if want := refDocs[i]; info.Cluster != want {
			t.Errorf("doc %d (service id %d): incremental cluster %d, from-scratch %d", i, info.ID, info.Cluster, want)
		}
		i++
	}
}
