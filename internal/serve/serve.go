// Package serve implements the incremental clustering service behind
// cmd/cxkserve: a long-lived Service holds a clustered corpus in memory and
// keeps answering while the collection changes.
//
// Writes go through the online path: AddDocument streams the raw XML
// through a reopened txn.Builder (shared interning tables), folds the
// document into the ttf.itf accumulator, weights the unseen items with the
// frozen-itf online pass (weighting.Accumulator.WeighNew) and assigns the
// new transactions to the current representatives with the branch-and-bound
// relocation kernel. RemoveDocument tombstones a document. Classify is the
// read-only probe: it scores a document against the current representatives
// without changing any clustering state.
//
// Both online ingestion and removal are approximations — new items carry
// frozen itf factors and representatives are not recomputed per write — so
// the Service tracks drift: the fraction of live transactions touched
// (added, removed or reassigned) since the representatives were last
// computed. A background maintenance loop (Run, or explicit
// MaintenanceRound calls) re-relocates the dirty documents and, once drift
// crosses Config.DriftThreshold, refreshes: it rebuilds a fresh corpus from
// the retained raw XML of the live documents (in original add order) and
// re-clusters it from scratch with Engine.Cluster under the service seed.
// Refreshing from clean inputs — rather than patching the live tables —
// is what makes the converged incremental state provably equal to a batch
// run on the same documents: identical inputs in identical order intern
// identically, so assignments and representatives match byte for byte
// (pinned by TestIncrementalEquivalence).
//
// A Service is safe for concurrent use. One RWMutex serializes writes and
// maintenance; reads (Stats, QueryCluster, Documents) share the read lock.
// Classify takes the write lock too: it never mutates clustering state, but
// it may intern unseen paths/items/terms and assign their frozen weights
// through the shared accumulator. Requests therefore block briefly during a
// refresh; the refresh itself honors context cancellation.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"xmlclust"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
)

// DefaultDriftThreshold triggers a representative refresh once a quarter of
// the live transactions are dirty.
const DefaultDriftThreshold = 0.25

// DefaultMaintenanceInterval paces the background maintenance loop.
const DefaultMaintenanceInterval = 30 * time.Second

// Config parameterizes a Service. K, F, Gamma, Seed, Workers and MaxRounds
// are the clustering options every refresh runs with (see
// xmlclust.ClusterOptions); holding them fixed is what makes the converged
// state reproducible.
type Config struct {
	K                int
	F, Gamma         float64
	Seed             int64
	Workers          int
	MaxRounds        int
	MaxTuplesPerTree int
	// DriftThreshold is the dirty fraction of live transactions at which a
	// maintenance round refreshes the representatives
	// (0 = DefaultDriftThreshold; negative = refresh on any drift at all).
	DriftThreshold float64
	// IndexReps selects the inverted representative index for every
	// assignment scan the service runs — refreshes, online adds, classify
	// probes and maintenance re-relocations (default RepIndexAuto = on).
	// Each refresh prebuilds the index once against the new representative
	// set; assignments are byte-identical in every mode.
	IndexReps xmlclust.RepIndexMode
	// DeltaRounds selects the cross-round delta engine for every refresh run
	// (default DeltaRoundsAuto = on): late refresh rounds reuse memoized
	// representatives and skip provably settled documents. Assignments and
	// representatives are byte-identical in every mode.
	DeltaRounds xmlclust.DeltaRoundsMode
	// Events, when non-nil, receives the clustering progress events of every
	// refresh run (see xmlclust.ClusterOptions.Events).
	Events func(xmlclust.Event)
	// OnMaintenance, when non-nil, observes every maintenance round driven
	// by Run (manual MaintenanceRound calls report to the caller instead).
	OnMaintenance func(RoundStats, error)
}

// Typed request failures, surfaced as 4xx by the HTTP layer.
var (
	ErrUnknownDocument = errors.New("serve: unknown document")
	ErrRemovedDocument = errors.New("serve: document already removed")
)

// DocInfo describes one document the service holds.
type DocInfo struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Label int    `json:"label"`
	// Cluster is the document-level majority cluster under the current
	// assignment (xmlclust.TrashCluster before the first refresh or when
	// every transaction is trash).
	Cluster int `json:"cluster"`
	// Transactions is the number of transactions the document decomposed
	// into.
	Transactions int  `json:"transactions"`
	Removed      bool `json:"removed"`
}

// Stats is a point-in-time snapshot of the service state.
type Stats struct {
	Docs        int `json:"docs"`
	LiveDocs    int `json:"live_docs"`
	RemovedDocs int `json:"removed_docs"`
	LiveTxns    int `json:"live_txns"`
	DirtyDocs   int `json:"dirty_docs"`
	DirtyTxns   int `json:"dirty_txns"`
	// Drift is DirtyTxns / LiveTxns (1 when nothing is live but drift
	// exists).
	Drift float64 `json:"drift"`
	K     int     `json:"k"`
	// ClusterSizes counts live documents per cluster id [0,K); Trash counts
	// live documents whose majority vote is the trash cluster.
	ClusterSizes []int `json:"cluster_sizes"`
	Trash        int   `json:"trash"`
	// Refreshes / MaintenanceRounds / Reassigned are cumulative counters.
	Refreshes         int `json:"refreshes"`
	MaintenanceRounds int `json:"maintenance_rounds"`
	Reassigned        int `json:"reassigned"`
	// PrunedRows / ScratchReuses total the similarity-kernel counters over
	// every request and maintenance round (see xmlclust.Result).
	PrunedRows    int64 `json:"pruned_rows"`
	ScratchReuses int64 `json:"scratch_reuses"`
	// IndexEntries / IndexedReps describe the current prebuilt
	// representative index (postings keys and covered representatives; both
	// zero when the index is off or no refresh has run).
	// IndexCandidates / IndexSkipped total the index counters over every
	// request and maintenance round: representatives evaluated with the
	// kernel vs representatives proven unable to win and never touched.
	IndexEntries    int   `json:"index_entries"`
	IndexedReps     int   `json:"indexed_reps"`
	IndexCandidates int64 `json:"index_candidates"`
	IndexSkipped    int64 `json:"index_skipped"`
	// RepsReused / DocsSkipped / DeltaRepBytes total the delta-round counters
	// over every refresh run: representatives reused verbatim from the
	// cross-round memo, documents decided from their cached relocation anchor
	// with zero kernel evaluations, and modeled wire bytes saved by
	// unchanged-representative markers (zero for single-peer refreshes).
	RepsReused    int64 `json:"reps_reused"`
	DocsSkipped   int64 `json:"docs_skipped"`
	DeltaRepBytes int64 `json:"delta_rep_bytes"`
}

// RoundStats reports one maintenance round.
type RoundStats struct {
	// DirtyDocs is how many documents the round re-relocated; Reassigned
	// counts their transactions that changed cluster.
	DirtyDocs  int `json:"dirty_docs"`
	Reassigned int `json:"reassigned"`
	// Drift is the dirty fraction after re-relocation, the value compared
	// against the threshold.
	Drift float64 `json:"drift"`
	// Refreshed reports that the round rebuilt and re-clustered; in that
	// case RefreshRounds is the clustering round count of the refresh run.
	Refreshed       bool  `json:"refreshed"`
	RefreshRounds   int   `json:"refresh_rounds"`
	PrunedRows      int64 `json:"pruned_rows"`
	ScratchReuses   int64 `json:"scratch_reuses"`
	IndexCandidates int64 `json:"index_candidates"`
	IndexSkipped    int64 `json:"index_skipped"`
}

// docRecord retains what a refresh needs to rebuild the document exactly:
// its raw XML, name and label, in add order.
type docRecord struct {
	id      int
	name    string
	label   int
	xml     []byte
	removed bool
}

// snapshot is the mutable clustered state: the live corpus plus the engine,
// builder and accumulator bound to it. A refresh swaps the whole snapshot
// atomically under the service lock.
type snapshot struct {
	corpus  *xmlclust.Corpus
	eng     *xmlclust.Engine
	builder *txn.Builder
	acc     *weighting.Accumulator
	// reps / assign mirror xmlclust.Result for the last refresh, extended
	// online as documents arrive; assign is indexed like
	// corpus.Transactions.
	reps   []*xmlclust.Transaction
	assign []int
	// ranges maps service document id → [start,end) into
	// corpus.Transactions (live documents only).
	ranges   map[int][2]int
	liveTxns int
	// idx is the prebuilt representative index over reps (nil when disabled
	// or before the first refresh). Items interned after the build are
	// handled soundly, so the index stays valid until reps change — i.e.
	// until the snapshot itself is replaced.
	idx *xmlclust.RepIndex
}

// Service is the incremental clustering service. Create with NewService.
type Service struct {
	cfg Config

	mu   sync.RWMutex
	docs []*docRecord
	snap *snapshot
	// dirty marks documents whose assignment has not been confirmed against
	// the current representatives; dirtyTxns counts transactions touched
	// since the last refresh (the drift numerator).
	dirty     map[int]struct{}
	dirtyTxns int

	refreshes  int
	rounds     int
	reassigned int
	pruned     int64
	reuses     int64
	idxCand    int64
	idxSkip    int64
	repsReused int64
	docsSkip   int64
	deltaBytes int64
}

// NewService validates the configuration and returns an empty service
// (no documents, no representatives: everything classifies to the trash
// cluster until documents arrive and a refresh runs).
func NewService(cfg Config) (*Service, error) {
	if err := xmlclust.ValidateClusterOptions(cfg.clusterOptions()); err != nil {
		return nil, err
	}
	snap, err := emptySnapshot(cfg)
	if err != nil {
		return nil, err
	}
	return &Service{cfg: cfg, snap: snap, dirty: map[int]struct{}{}}, nil
}

func (cfg Config) clusterOptions() xmlclust.ClusterOptions {
	return xmlclust.ClusterOptions{
		K: cfg.K, F: cfg.F, Gamma: cfg.Gamma,
		Seed: cfg.Seed, Workers: cfg.Workers, MaxRounds: cfg.MaxRounds,
		IndexReps: cfg.IndexReps, DeltaRounds: cfg.DeltaRounds, Events: cfg.Events,
	}
}

// classifyOptionsLocked resolves the classify options against the current
// snapshot's prebuilt representative index; the caller holds s.mu.
func (s *Service) classifyOptionsLocked() xmlclust.ClassifyOptions {
	return xmlclust.ClassifyOptions{
		F: s.cfg.F, Gamma: s.cfg.Gamma, Workers: s.cfg.Workers,
		MaxTuplesPerTree: s.cfg.MaxTuplesPerTree,
		IndexReps:        s.cfg.IndexReps, Index: s.snap.idx,
	}
}

func (cfg Config) buildOptions() txn.BuildOptions {
	return txn.BuildOptions{Tuple: tuple.Options{MaxTuplesPerTree: cfg.MaxTuplesPerTree}}
}

func emptySnapshot(cfg Config) (*snapshot, error) {
	b := txn.NewBuilder(cfg.buildOptions())
	c := b.Corpus()
	acc := weighting.NewAccumulator(c)
	b.Observe(acc)
	eng, err := xmlclust.NewEngine(c, xmlclust.EngineOptions{})
	if err != nil {
		return nil, err
	}
	return &snapshot{
		corpus: c, eng: eng, builder: b, acc: acc,
		ranges: map[int][2]int{},
	}, nil
}

// AddDocument ingests one raw XML document online: parse, append through
// the builder (which folds it into the ttf.itf accumulator), weight the
// unseen items with frozen itf factors, and assign its transactions to the
// current representatives. The document is marked dirty so the next
// maintenance round accounts for it in the drift. label is the optional
// ground-truth class (−1 = unknown).
func (s *Service) AddDocument(ctx context.Context, name string, xmlData []byte, label int) (DocInfo, error) {
	tree, err := xmlclust.ParseString(string(xmlData))
	if err != nil {
		return DocInfo{}, fmt.Errorf("serve: add %q: %w", name, err)
	}
	tree.Name = name

	s.mu.Lock()
	defer s.mu.Unlock()
	sn := s.snap
	id := len(s.docs)
	rec := &docRecord{id: id, name: name, label: label, xml: append([]byte(nil), xmlData...)}
	start := len(sn.corpus.Transactions)
	sn.builder.AddLabeled(tree, label)
	end := len(sn.corpus.Transactions)
	sn.acc.WeighNew()

	s.docs = append(s.docs, rec)
	sn.ranges[id] = [2]int{start, end}
	n := end - start
	sn.liveTxns += n
	s.dirty[id] = struct{}{}
	s.dirtyTxns += n

	res, err := sn.eng.ClassifyTransactions(ctx, sn.corpus.Transactions[start:end], sn.reps, s.classifyOptionsLocked())
	if err != nil {
		// The document is ingested either way; park its transactions in the
		// trash so the assignment stays aligned with the corpus, and leave
		// it dirty for the next maintenance round.
		for i := 0; i < n; i++ {
			sn.assign = append(sn.assign, xmlclust.TrashCluster)
		}
		return s.docInfoLocked(id), err
	}
	sn.assign = append(sn.assign, res.Assign...)
	s.pruned += res.PrunedRows
	s.reuses += res.ScratchReuses
	s.idxCand += res.IndexCandidates
	s.idxSkip += res.IndexSkipped
	return s.docInfoLocked(id), nil
}

// RemoveDocument tombstones a document: its transactions stop counting as
// live immediately and the next refresh drops them (and their itf
// contributions) entirely.
func (s *Service) RemoveDocument(id int) (DocInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.docs) {
		return DocInfo{}, fmt.Errorf("%w: %d", ErrUnknownDocument, id)
	}
	rec := s.docs[id]
	if rec.removed {
		return DocInfo{}, fmt.Errorf("%w: %d", ErrRemovedDocument, id)
	}
	info := s.docInfoLocked(id) // capture the pre-removal cluster
	rec.removed = true
	if r, ok := s.snap.ranges[id]; ok {
		n := r[1] - r[0]
		s.snap.liveTxns -= n
		s.dirtyTxns += n
		delete(s.snap.ranges, id)
		delete(s.dirty, id)
	}
	info.Removed = true
	return info, nil
}

// Classify scores a raw XML document against the current representatives
// and returns the per-transaction assignment plus the document-level
// majority cluster. It is read-only with respect to clustering state —
// assignments, representatives and the drift accounting are untouched and
// the document is NOT added — though unseen paths/items/terms are interned
// (append-only) and weighted with frozen itf factors.
func (s *Service) Classify(ctx context.Context, xmlData []byte) (*xmlclust.Classification, error) {
	tree, err := xmlclust.ParseString(string(xmlData))
	if err != nil {
		return nil, fmt.Errorf("serve: classify: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := s.snap
	trs := sn.eng.ExtractTransactions(tree, s.cfg.MaxTuplesPerTree)
	sn.acc.WeighNew()
	res, err := sn.eng.ClassifyTransactions(ctx, trs, sn.reps, s.classifyOptionsLocked())
	if err != nil {
		return nil, err
	}
	s.pruned += res.PrunedRows
	s.reuses += res.ScratchReuses
	s.idxCand += res.IndexCandidates
	s.idxSkip += res.IndexSkipped
	return res, nil
}

// Document returns one document's current info.
func (s *Service) Document(id int) (DocInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || id >= len(s.docs) {
		return DocInfo{}, fmt.Errorf("%w: %d", ErrUnknownDocument, id)
	}
	return s.docInfoLocked(id), nil
}

// Documents lists every document the service has seen, in add order.
func (s *Service) Documents() []DocInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DocInfo, len(s.docs))
	for id := range s.docs {
		out[id] = s.docInfoLocked(id)
	}
	return out
}

// QueryCluster lists the live documents whose majority cluster is cl
// (xmlclust.TrashCluster queries the trash).
func (s *Service) QueryCluster(cl int) []DocInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []DocInfo
	for id, rec := range s.docs {
		if rec.removed {
			continue
		}
		if info := s.docInfoLocked(id); info.Cluster == cl {
			out = append(out, info)
		}
	}
	return out
}

// Representatives returns a copy of the current cluster representatives
// (nil entries for clusters that never formed; empty before the first
// refresh).
func (s *Service) Representatives() []*xmlclust.Transaction {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*xmlclust.Transaction, len(s.snap.reps))
	for i, rep := range s.snap.reps {
		if rep != nil {
			out[i] = rep.Clone()
		}
	}
	return out
}

// Assignment returns a copy of the current per-transaction assignment (the
// equivalence-test surface; indexed like the live corpus's transactions).
func (s *Service) Assignment() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]int(nil), s.snap.assign...)
}

// Stats reports the current service state.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Docs: len(s.docs), K: s.cfg.K,
		LiveTxns: s.snap.liveTxns, DirtyDocs: len(s.dirty), DirtyTxns: s.dirtyTxns,
		Drift:     s.driftLocked(),
		Refreshes: s.refreshes, MaintenanceRounds: s.rounds, Reassigned: s.reassigned,
		PrunedRows: s.pruned, ScratchReuses: s.reuses,
		IndexEntries: s.snap.idx.Entries(), IndexedReps: s.snap.idx.Reps(),
		IndexCandidates: s.idxCand, IndexSkipped: s.idxSkip,
		RepsReused: s.repsReused, DocsSkipped: s.docsSkip, DeltaRepBytes: s.deltaBytes,
		ClusterSizes: make([]int, s.cfg.K),
	}
	for id, rec := range s.docs {
		if rec.removed {
			st.RemovedDocs++
			continue
		}
		st.LiveDocs++
		switch cl := s.docInfoLocked(id).Cluster; {
		case cl >= 0 && cl < s.cfg.K:
			st.ClusterSizes[cl]++
		default:
			st.Trash++
		}
	}
	return st
}

// docInfoLocked assembles one document's info; the caller holds s.mu.
func (s *Service) docInfoLocked(id int) DocInfo {
	rec := s.docs[id]
	info := DocInfo{
		ID: rec.id, Name: rec.name, Label: rec.label,
		Cluster: xmlclust.TrashCluster, Removed: rec.removed,
	}
	if r, ok := s.snap.ranges[id]; ok {
		info.Transactions = r[1] - r[0]
		info.Cluster = xmlclust.MajorityCluster(s.snap.assign[r[0]:r[1]])
	}
	return info
}

func (s *Service) driftLocked() float64 {
	switch {
	case s.snap.liveTxns > 0:
		return float64(s.dirtyTxns) / float64(s.snap.liveTxns)
	case s.dirtyTxns > 0:
		return 1
	}
	return 0
}

// MaintenanceRound runs one maintenance pass: re-relocate every dirty
// document against the current representatives (counting real
// reassignments), then refresh — rebuild and re-cluster from the retained
// raw XML — when the drift fraction has crossed the threshold. On error
// (typically context cancellation mid-refresh) the previous snapshot stays
// in place and the round can simply be retried.
func (s *Service) MaintenanceRound(ctx context.Context) (RoundStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rs RoundStats
	sn := s.snap

	ids := make([]int, 0, len(s.dirty))
	for id := range s.dirty {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r, ok := sn.ranges[id]
		if !ok {
			delete(s.dirty, id)
			continue
		}
		res, err := sn.eng.ClassifyTransactions(ctx, sn.corpus.Transactions[r[0]:r[1]], sn.reps, s.classifyOptionsLocked())
		if err != nil {
			return rs, err
		}
		rs.DirtyDocs++
		for i, a := range res.Assign {
			if sn.assign[r[0]+i] != a {
				sn.assign[r[0]+i] = a
				rs.Reassigned++
			}
		}
		rs.PrunedRows += res.PrunedRows
		rs.ScratchReuses += res.ScratchReuses
		rs.IndexCandidates += res.IndexCandidates
		rs.IndexSkipped += res.IndexSkipped
		delete(s.dirty, id)
	}

	rs.Drift = s.driftLocked()
	thr := s.cfg.DriftThreshold
	if thr == 0 {
		thr = DefaultDriftThreshold
	}
	if thr < 0 {
		thr = 0 // any drift at all triggers
	}
	if s.dirtyTxns > 0 && rs.Drift >= thr {
		rounds, err := s.refreshLocked(ctx)
		if err != nil {
			return rs, err
		}
		rs.Refreshed = true
		rs.RefreshRounds = rounds
	}
	s.rounds++
	s.reassigned += rs.Reassigned
	s.pruned += rs.PrunedRows
	s.reuses += rs.ScratchReuses
	s.idxCand += rs.IndexCandidates
	s.idxSkip += rs.IndexSkipped
	return rs, nil
}

// Refresh forces a representative refresh regardless of drift: rebuild a
// fresh corpus from the retained raw XML of the live documents (original
// add order) and re-cluster it from scratch under the service seed. The
// snapshot swaps atomically; on error the previous state is kept.
func (s *Service) Refresh(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.refreshLocked(ctx)
	return err
}

// refreshLocked is the refresh under the held write lock; it returns the
// clustering round count of the rebuild run.
func (s *Service) refreshLocked(ctx context.Context) (int, error) {
	b := txn.NewBuilder(s.cfg.buildOptions())
	c := b.Corpus()
	acc := weighting.NewAccumulator(c)
	b.Observe(acc)

	live := 0
	ranges := map[int][2]int{}
	for _, rec := range s.docs {
		if rec.removed {
			continue
		}
		tree, err := xmlclust.ParseString(string(rec.xml))
		if err != nil {
			return 0, fmt.Errorf("serve: refresh: reparse %q: %w", rec.name, err)
		}
		tree.Name = rec.name
		start := len(c.Transactions)
		b.AddLabeled(tree, rec.label)
		ranges[rec.id] = [2]int{start, len(c.Transactions)}
		live++
	}
	b.Finish()
	acc.Finalize()

	eng, err := xmlclust.NewEngine(c, xmlclust.EngineOptions{})
	if err != nil {
		return 0, err
	}
	var (
		assign []int
		reps   []*xmlclust.Transaction
		rounds int
	)
	if len(c.Transactions) > 0 {
		res, err := eng.Cluster(ctx, s.cfg.clusterOptions())
		if err != nil {
			return 0, err
		}
		assign, reps, rounds = res.Assign, res.Reps, res.Rounds
		s.pruned += res.PrunedRows
		s.reuses += res.ScratchReuses
		s.idxCand += res.IndexCandidates
		s.idxSkip += res.IndexSkipped
		s.repsReused += res.RepsReused
		s.docsSkip += res.DocsSkipped
		s.deltaBytes += res.DeltaRepBytes
	}

	// Prebuild the representative index once per refresh: every classify
	// scan until the next refresh reuses it (items interned online are
	// handled soundly, so it never goes stale before reps change).
	var idx *xmlclust.RepIndex
	if s.cfg.IndexReps != xmlclust.RepIndexOff && len(reps) > 0 {
		idx, err = eng.BuildRepIndex(reps, s.cfg.F, s.cfg.Gamma)
		if err != nil {
			return 0, err
		}
	}

	nb := txn.ReopenBuilder(c, live, s.cfg.buildOptions())
	nb.Observe(acc)
	s.snap = &snapshot{
		corpus: c, eng: eng, builder: nb, acc: acc,
		reps: reps, assign: assign, ranges: ranges, liveTxns: len(c.Transactions),
		idx: idx,
	}
	s.dirty = map[int]struct{}{}
	s.dirtyTxns = 0
	s.refreshes++
	return rounds, nil
}

// Run drives the background maintenance loop until ctx is done, one
// MaintenanceRound per interval tick (interval ≤ 0 =
// DefaultMaintenanceInterval). Round outcomes go to Config.OnMaintenance;
// errors do not stop the loop (a canceled round simply retries next tick
// unless ctx itself is done). Returns ctx.Err().
func (s *Service) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = DefaultMaintenanceInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			rs, err := s.MaintenanceRound(ctx)
			if s.cfg.OnMaintenance != nil {
				s.cfg.OnMaintenance(rs, err)
			}
		}
	}
}
