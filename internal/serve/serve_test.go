package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"xmlclust"
)

// serveDocs is a small two-topic collection, separable at k=2: conference
// papers vs lab reports, with distinct tags, authors and vocabulary.
func serveDocs(n int) []string {
	var docs []string
	for i := 0; i < n; i++ {
		docs = append(docs, fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i))
	}
	for i := 0; i < n; i++ {
		docs = append(docs, fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i))
	}
	return docs
}

func serveConfig() Config {
	// γ = 0.3 lets same-topic items match while cross-topic similarity
	// stays zero, so the two topics separate for any initial seed.
	return Config{K: 2, F: 0.5, Gamma: 0.3, Seed: 7, Workers: 1}
}

func addAll(t *testing.T, s *Service, docs []string) {
	t.Helper()
	for i, doc := range docs {
		if _, err := s.AddDocument(context.Background(), fmt.Sprintf("doc%d", i), []byte(doc), -1); err != nil {
			t.Fatalf("AddDocument %d: %v", i, err)
		}
	}
}

func TestServiceAddClassifyQuery(t *testing.T) {
	s, err := NewService(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := serveDocs(4)
	addAll(t, s, docs)

	// Before any refresh there are no representatives: everything is trash.
	st := s.Stats()
	if st.Docs != 8 || st.LiveDocs != 8 {
		t.Fatalf("stats %+v, want 8 live docs", st)
	}
	if st.Trash != 8 {
		t.Fatalf("before the first refresh every doc should be trash, got %+v", st)
	}

	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Trash != 0 {
		t.Fatalf("after refresh no doc should be trash: %+v", st)
	}
	// The two topics must separate: each cluster holds exactly one topic.
	var clusters [2][]int
	for _, info := range s.Documents() {
		if info.Cluster < 0 || info.Cluster > 1 {
			t.Fatalf("doc %d in cluster %d", info.ID, info.Cluster)
		}
		clusters[info.Cluster] = append(clusters[info.Cluster], info.ID)
	}
	for cl, members := range clusters {
		if len(members) != 4 {
			t.Fatalf("cluster %d has members %v, want 4", cl, members)
		}
		for _, id := range members[1:] {
			if (id < 4) != (members[0] < 4) {
				t.Fatalf("cluster %d mixes topics: %v", cl, members)
			}
		}
	}

	// QueryCluster agrees with Documents.
	for cl := 0; cl < 2; cl++ {
		if got := s.QueryCluster(cl); len(got) != 4 {
			t.Fatalf("QueryCluster(%d) returned %d docs, want 4", cl, len(got))
		}
	}

	// Classify a held-out document of each topic (read-only): it must land
	// with its topic and must not change any state.
	before := s.Assignment()
	paperCl := s.Documents()[0].Cluster
	reportCl := 1 - paperCl
	held := []struct {
		xml  string
		want int
	}{
		{`<db><paper key="px"><writer>alice cooper</writer><name>mining frequent patterns holdout</name><venue>KDD</venue></paper></db>`, paperCl},
		{`<db><report key="rx"><editor>bob dylan</editor><heading>routing wireless networks holdout</heading><lab>NETLAB</lab></report></db>`, reportCl},
	}
	for _, h := range held {
		res, err := s.Classify(context.Background(), []byte(h.xml))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cluster != h.want {
			t.Fatalf("held-out doc classified to %d, want %d", res.Cluster, h.want)
		}
	}
	after := s.Assignment()
	if len(before) != len(after) {
		t.Fatalf("Classify changed the assignment length: %d → %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Classify mutated assignment at %d", i)
		}
	}
	if st2 := s.Stats(); st2.Docs != st.Docs || st2.Refreshes != st.Refreshes {
		t.Fatalf("Classify mutated service stats: %+v vs %+v", st2, st)
	}
}

func TestServiceRemoveDocument(t *testing.T) {
	s, err := NewService(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, s, serveDocs(3))
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}

	info, err := s.RemoveDocument(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Removed {
		t.Fatal("RemoveDocument did not report the doc as removed")
	}
	if _, err := s.RemoveDocument(0); !errors.Is(err, ErrRemovedDocument) {
		t.Fatalf("double remove: got %v, want ErrRemovedDocument", err)
	}
	if _, err := s.RemoveDocument(99); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("unknown id: got %v, want ErrUnknownDocument", err)
	}
	if _, err := s.RemoveDocument(-1); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("negative id: got %v, want ErrUnknownDocument", err)
	}

	st := s.Stats()
	if st.RemovedDocs != 1 || st.LiveDocs != 5 {
		t.Fatalf("stats after remove: %+v", st)
	}
	if st.DirtyTxns == 0 {
		t.Fatal("removal must count as drift")
	}

	// The next refresh drops the removed document entirely.
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, info := range s.Documents() {
		if info.ID == 0 {
			if !info.Removed || info.Transactions != 0 {
				t.Fatalf("removed doc still materialized: %+v", info)
			}
		} else if info.Transactions == 0 {
			t.Fatalf("live doc %d lost its transactions", info.ID)
		}
	}
	if st := s.Stats(); st.DirtyTxns != 0 {
		t.Fatalf("refresh must clear drift: %+v", st)
	}
}

func TestServiceMaintenanceTriggersRefresh(t *testing.T) {
	cfg := serveConfig()
	cfg.DriftThreshold = 0.5
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := serveDocs(4)
	addAll(t, s, docs[:6])
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One more doc on six live: drift 1/7 < 0.5 → no refresh.
	addAll(t, s, docs[6:7])
	rs, err := s.MaintenanceRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Refreshed {
		t.Fatalf("round refreshed below threshold: %+v", rs)
	}
	if rs.DirtyDocs != 1 {
		t.Fatalf("round re-relocated %d docs, want 1", rs.DirtyDocs)
	}
	if st := s.Stats(); st.DirtyDocs != 0 {
		t.Fatalf("maintenance must clear the dirty set: %+v", st)
	}

	// Remove enough to cross the threshold.
	for id := 0; id < 4; id++ {
		if _, err := s.RemoveDocument(id); err != nil {
			t.Fatal(err)
		}
	}
	rs, err = s.MaintenanceRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Refreshed {
		t.Fatalf("round did not refresh above threshold: %+v drift=%g", rs, rs.Drift)
	}
	if st := s.Stats(); st.Refreshes != 2 || st.DirtyTxns != 0 {
		t.Fatalf("stats after refreshing round: %+v", st)
	}
}

func TestServiceCancellation(t *testing.T) {
	s, err := NewService(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, s, serveDocs(3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Refresh(ctx); !errors.Is(err, xmlclust.ErrCanceled) {
		t.Fatalf("canceled refresh: got %v, want ErrCanceled", err)
	}
	// The old (pre-refresh) snapshot must survive a failed refresh.
	if st := s.Stats(); st.Refreshes != 0 || st.LiveDocs != 6 {
		t.Fatalf("failed refresh corrupted state: %+v", st)
	}
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Refreshes != 1 || st.Trash != 0 {
		t.Fatalf("retry after canceled refresh: %+v", st)
	}
}

func TestNewServiceValidation(t *testing.T) {
	cases := []Config{
		{K: 0, F: 0.5, Gamma: 0.5},
		{K: 2, F: -0.1, Gamma: 0.5},
		{K: 2, F: 0.5, Gamma: 1.5},
		{K: 2, F: 0.5, Gamma: 0.5, Workers: -1},
		{K: 2, F: 0.5, Gamma: 0.5, MaxRounds: -3},
	}
	for i, cfg := range cases {
		_, err := NewService(cfg)
		var oe *xmlclust.OptionsError
		if !errors.As(err, &oe) {
			t.Errorf("case %d (%+v): got %v, want *OptionsError", i, cfg, err)
		}
	}
}
