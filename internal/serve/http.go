package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"xmlclust"
)

// maxBodyBytes bounds request bodies (raw XML documents are small compared
// to the corpora the paper serves; 16 MiB is generous).
const maxBodyBytes = 16 << 20

// NewHandler exposes a Service over HTTP:
//
//	POST   /v1/documents        {"name","xml","label"?} → DocInfo (online add)
//	GET    /v1/documents        → [DocInfo]
//	GET    /v1/documents/{id}   → DocInfo
//	DELETE /v1/documents/{id}   → DocInfo (tombstoned)
//	POST   /v1/classify         {"xml"} → classification (read-only)
//	GET    /v1/clusters/{id}    → {"cluster","docs"} ("trash" or -1 queries the trash)
//	GET    /v1/stats            → Stats
//	POST   /v1/maintenance      → RoundStats (one maintenance round now)
//	POST   /v1/refresh          → Stats (forced representative refresh)
//	GET    /healthz             → 200 "ok"
//
// Errors are JSON {"error": "..."}: 400 for malformed requests or XML, 404
// for unknown documents, 410 for removed ones, 503 when a request's work
// was canceled mid-flight.
func NewHandler(s *Service) http.Handler {
	h := &handler{s: s}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("POST /v1/documents", h.addDocument)
	mux.HandleFunc("GET /v1/documents", h.listDocuments)
	mux.HandleFunc("GET /v1/documents/{id}", h.getDocument)
	mux.HandleFunc("DELETE /v1/documents/{id}", h.removeDocument)
	mux.HandleFunc("POST /v1/classify", h.classify)
	mux.HandleFunc("GET /v1/clusters/{id}", h.queryCluster)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("POST /v1/maintenance", h.maintenance)
	mux.HandleFunc("POST /v1/refresh", h.refresh)
	return mux
}

type handler struct {
	s *Service
}

type addDocumentRequest struct {
	Name  string `json:"name"`
	XML   string `json:"xml"`
	Label *int   `json:"label"`
}

type classifyRequest struct {
	XML string `json:"xml"`
}

type classifyResponse struct {
	Cluster       int       `json:"cluster"`
	Assign        []int     `json:"assign"`
	Sims          []float64 `json:"sims"`
	PrunedRows    int64     `json:"pruned_rows"`
	ScratchReuses int64     `json:"scratch_reuses"`
}

type clusterResponse struct {
	Cluster int       `json:"cluster"`
	Docs    []DocInfo `json:"docs"`
}

func (h *handler) addDocument(w http.ResponseWriter, r *http.Request) {
	var req addDocumentRequest
	if !decode(w, r, &req) {
		return
	}
	if req.XML == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty xml field"))
		return
	}
	label := -1
	if req.Label != nil {
		label = *req.Label
	}
	info, err := h.s.AddDocument(r.Context(), req.Name, []byte(req.XML), label)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (h *handler) listDocuments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.s.Documents())
}

func (h *handler) getDocument(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	info, err := h.s.Document(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *handler) removeDocument(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	info, err := h.s.RemoveDocument(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *handler) classify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decode(w, r, &req) {
		return
	}
	if req.XML == "" {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty xml field"))
		return
	}
	res, err := h.s.Classify(r.Context(), []byte(req.XML))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{
		Cluster: res.Cluster, Assign: res.Assign, Sims: res.Sims,
		PrunedRows: res.PrunedRows, ScratchReuses: res.ScratchReuses,
	})
}

func (h *handler) queryCluster(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	var cl int
	if raw == "trash" {
		cl = xmlclust.TrashCluster
	} else {
		var err error
		cl, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, errors.New("serve: cluster id must be an integer or \"trash\""))
			return
		}
	}
	writeJSON(w, http.StatusOK, clusterResponse{Cluster: cl, Docs: h.s.QueryCluster(cl)})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.s.Stats())
}

func (h *handler) maintenance(w http.ResponseWriter, r *http.Request) {
	rs, err := h.s.MaintenanceRound(r.Context())
	if err != nil {
		writeError(w, serverStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rs)
}

func (h *handler) refresh(w http.ResponseWriter, r *http.Request) {
	if err := h.s.Refresh(r.Context()); err != nil {
		writeError(w, serverStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, h.s.Stats())
}

// serverStatusFor classifies failures of server-driven work (maintenance,
// refresh), where the request body cannot be at fault.
func serverStatusFor(err error) int {
	if errors.Is(err, xmlclust.ErrCanceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("serve: document id must be an integer"))
		return 0, false
	}
	return id, true
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownDocument):
		return http.StatusNotFound
	case errors.Is(err, ErrRemovedDocument):
		return http.StatusGone
	case errors.Is(err, xmlclust.ErrCanceled):
		return http.StatusServiceUnavailable
	}
	// Parse failures and any other request-shaped error are the client's.
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
