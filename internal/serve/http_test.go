package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func httpService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s, err := NewService(serveConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	_, srv := httpService(t)
	docs := serveDocs(3)

	// Ingest over HTTP.
	for i, doc := range docs {
		var info DocInfo
		doJSON(t, http.MethodPost, srv.URL+"/v1/documents",
			addDocumentRequest{Name: fmt.Sprintf("doc%d", i), XML: doc},
			http.StatusCreated, &info)
		if info.ID != i {
			t.Fatalf("doc %d got id %d", i, info.ID)
		}
	}

	// Force a refresh, then stats must show a clustered collection.
	var st Stats
	doJSON(t, http.MethodPost, srv.URL+"/v1/refresh", nil, http.StatusOK, &st)
	if st.Refreshes != 1 || st.LiveDocs != 6 || st.Trash != 0 {
		t.Fatalf("stats after refresh: %+v", st)
	}

	// Classify a held-out report.
	var cl classifyResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/classify",
		classifyRequest{XML: `<db><report key="rx"><editor>bob dylan</editor><heading>routing wireless networks holdout</heading><lab>NETLAB</lab></report></db>`},
		http.StatusOK, &cl)
	var report DocInfo
	doJSON(t, http.MethodGet, srv.URL+"/v1/documents/3", nil, http.StatusOK, &report) // doc 3 is a report
	if cl.Cluster != report.Cluster {
		t.Fatalf("held-out report classified to %d, stored reports sit in %d", cl.Cluster, report.Cluster)
	}

	// Query the report cluster.
	var q clusterResponse
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/clusters/%d", srv.URL, report.Cluster), nil, http.StatusOK, &q)
	if len(q.Docs) != 3 {
		t.Fatalf("cluster %d holds %d docs, want 3: %+v", report.Cluster, len(q.Docs), q.Docs)
	}

	// Remove a document, run maintenance via HTTP.
	var removed DocInfo
	doJSON(t, http.MethodDelete, srv.URL+"/v1/documents/0", nil, http.StatusOK, &removed)
	if !removed.Removed {
		t.Fatalf("delete response: %+v", removed)
	}
	var rs RoundStats
	doJSON(t, http.MethodPost, srv.URL+"/v1/maintenance", nil, http.StatusOK, &rs)
	if rs.Drift == 0 {
		t.Fatalf("maintenance after removal reported no drift: %+v", rs)
	}

	// Listing includes the tombstone.
	var all []DocInfo
	doJSON(t, http.MethodGet, srv.URL+"/v1/documents", nil, http.StatusOK, &all)
	if len(all) != 6 || !all[0].Removed {
		t.Fatalf("document listing: %+v", all)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := httpService(t)

	// Malformed JSON, empty XML, broken XML.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/documents", bytes.NewReader([]byte("{not json")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	doJSON(t, http.MethodPost, srv.URL+"/v1/documents", addDocumentRequest{Name: "x"}, http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, srv.URL+"/v1/documents", addDocumentRequest{Name: "x", XML: "<unclosed"}, http.StatusBadRequest, nil)
	doJSON(t, http.MethodPost, srv.URL+"/v1/classify", classifyRequest{XML: "<unclosed"}, http.StatusBadRequest, nil)

	// Unknown / removed / non-integer document ids.
	doJSON(t, http.MethodGet, srv.URL+"/v1/documents/5", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodDelete, srv.URL+"/v1/documents/5", nil, http.StatusNotFound, nil)
	doJSON(t, http.MethodGet, srv.URL+"/v1/documents/abc", nil, http.StatusBadRequest, nil)
	var info DocInfo
	doJSON(t, http.MethodPost, srv.URL+"/v1/documents",
		addDocumentRequest{Name: "d", XML: "<a><b>text</b></a>"}, http.StatusCreated, &info)
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/documents/%d", srv.URL, info.ID), nil, http.StatusOK, nil)
	doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/documents/%d", srv.URL, info.ID), nil, http.StatusGone, nil)

	// Bad cluster id.
	doJSON(t, http.MethodGet, srv.URL+"/v1/clusters/abc", nil, http.StatusBadRequest, nil)
	// The trash alias works.
	doJSON(t, http.MethodGet, srv.URL+"/v1/clusters/trash", nil, http.StatusOK, nil)
}
