package pkmeans

import (
	"context"
	"fmt"
	"testing"

	"xmlclust/internal/cluster"
	"xmlclust/internal/core"
	"xmlclust/internal/eval"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

func miniCorpus(t testing.TB, perGroup int) (*txn.Corpus, []int) {
	t.Helper()
	var trees []*xmltree.Tree
	var labels []int
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 0)
	}
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 1)
	}
	corpus := txn.Build(trees, txn.BuildOptions{Labels: labels})
	weighting.Apply(corpus)
	tl := make([]int, len(corpus.Transactions))
	for i, tr := range corpus.Transactions {
		tl[i] = tr.Label
	}
	return corpus, tl
}

func runPK(t testing.TB, corpus *txn.Corpus, k, m int, seed int64) *core.Result {
	t.Helper()
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	res, err := Run(context.Background(), cx, corpus, Options{
		K: k, Params: cx.Params, Peers: m,
		Partition: core.EqualPartition(len(corpus.Transactions), m, seed),
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPKSinglePeer(t *testing.T) {
	corpus, labels := miniCorpus(t, 6)
	bestF := -1.0
	for seed := int64(1); seed <= 5; seed++ {
		res := runPK(t, corpus, 2, 1, seed)
		if res.Rounds == 0 {
			t.Fatal("did not run")
		}
		if f := eval.FMeasure(labels, res.Assign, 2); f > bestF {
			bestF = f
		}
	}
	if bestF < 0.9 {
		t.Errorf("single-peer best F = %v", bestF)
	}
}

func TestPKMultiPeerTerminates(t *testing.T) {
	corpus, labels := miniCorpus(t, 8)
	for _, m := range []int{2, 3, 5} {
		bestF := -1.0
		for seed := int64(1); seed <= 5; seed++ {
			res := runPK(t, corpus, 2, m, seed)
			if res.Rounds == 0 || res.Rounds > core.DefaultMaxRounds+1 {
				t.Fatalf("m=%d rounds = %d", m, res.Rounds)
			}
			if f := eval.FMeasure(labels, res.Assign, 2); f > bestF {
				bestF = f
			}
		}
		if bestF < 0.6 {
			t.Errorf("m=%d best F = %v", m, bestF)
		}
	}
}

func TestPKDeterministic(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	a := runPK(t, corpus, 2, 3, 7)
	b := runPK(t, corpus, 2, 3, 7)
	if a.Rounds != b.Rounds {
		t.Errorf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ across identical runs")
		}
	}
}

// TestPKTrafficExceedsCXK verifies the defining property of the
// non-collaborative baseline: all-to-all representative exchange moves
// strictly more data than CXK's responsibility-partitioned pattern at the
// same network size (Sect. 5.5.3, Fig. 8).
func TestPKTrafficExceedsCXK(t *testing.T) {
	corpus, _ := miniCorpus(t, 10)
	m := 5
	cxPK := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	pk, err := Run(context.Background(), cxPK, corpus, Options{
		K: 2, Params: cxPK.Params, Peers: m,
		Partition: core.EqualPartition(len(corpus.Transactions), m, 3),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cxCXK := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	cxk, err := core.Run(context.Background(), cxCXK, corpus, core.Options{
		K: 2, Params: cxCXK.Params, Peers: m,
		Partition: core.EqualPartition(len(corpus.Transactions), m, 3),
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, pkBytes := pk.TotalTraffic()
	_, cxkBytes := cxk.TotalTraffic()
	pkPerRound := float64(pkBytes) / float64(pk.Rounds)
	cxkPerRound := float64(cxkBytes) / float64(cxk.Rounds)
	if pkPerRound <= cxkPerRound {
		t.Errorf("PK per-round traffic %.0f should exceed CXK %.0f", pkPerRound, cxkPerRound)
	}
}

func TestPKValidation(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	if _, err := Run(context.Background(), cx, corpus, Options{K: 2, Peers: 0}); err == nil {
		t.Error("peers=0 should fail")
	}
	if _, err := Run(context.Background(), cx, corpus, Options{K: 0, Peers: 1}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Run(context.Background(), cx, corpus, Options{K: 2, Peers: 3, Partition: make([][]int, 2)}); err == nil {
		t.Error("partition mismatch should fail")
	}
}

func TestPKAssignmentsValid(t *testing.T) {
	corpus, _ := miniCorpus(t, 5)
	res := runPK(t, corpus, 2, 3, 4)
	if len(res.Assign) != len(corpus.Transactions) {
		t.Fatalf("assign length %d", len(res.Assign))
	}
	for i, a := range res.Assign {
		if a != cluster.TrashCluster && (a < 0 || a >= 2) {
			t.Errorf("transaction %d invalid assignment %d", i, a)
		}
	}
}

func TestPKPeerReportsConsistent(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	res := runPK(t, corpus, 2, 3, 8)
	var sent, recv int64
	for i := range res.Peers {
		for r := range res.Peers[i].SentMsgsByRound {
			sent += res.Peers[i].SentMsgsByRound[r]
			recv += res.Peers[i].RecvMsgsByRound[r]
		}
	}
	if sent != recv {
		t.Errorf("message conservation violated: sent=%d recv=%d", sent, recv)
	}
	if sent == 0 {
		t.Error("no messages recorded")
	}
}

func BenchmarkPKRunM3(b *testing.B) {
	corpus, _ := miniCorpus(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPK(b, corpus, 2, 3, int64(i))
	}
}

// TestPKWorkersEquivalence asserts the PK-means baseline inherits the
// engine's determinism guarantee: identical output for any intra-peer
// worker count.
func TestPKWorkersEquivalence(t *testing.T) {
	corpus, _ := miniCorpus(t, 8)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	run := func(workers int) *core.Result {
		res, err := Run(context.Background(), cx, corpus, Options{
			K: 2, Params: cx.Params, Peers: 3, Workers: workers,
			Partition: core.EqualPartition(len(corpus.Transactions), 3, 7),
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{4, 0} {
		got := run(w)
		if serial.Rounds != got.Rounds {
			t.Errorf("workers=%d: rounds %d vs %d", w, serial.Rounds, got.Rounds)
		}
		for i := range serial.Assign {
			if serial.Assign[i] != got.Assign[i] {
				t.Fatalf("workers=%d: assignment %d differs", w, i)
			}
		}
		for j := range serial.Reps {
			switch {
			case serial.Reps[j] == nil && got.Reps[j] == nil:
			case serial.Reps[j] == nil || got.Reps[j] == nil:
				t.Errorf("workers=%d: rep %d nil-ness differs", w, j)
			case !serial.Reps[j].Equal(got.Reps[j]):
				t.Errorf("workers=%d: rep %d differs", w, j)
			}
		}
	}
}
