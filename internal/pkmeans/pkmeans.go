// Package pkmeans implements the non-collaborative distributed baseline of
// Sect. 5.5.3: the parallel K-means of Dhillon & Modha (1999) adapted to
// the XML transactional domain. As in the paper's adaptation, the algorithm
// is equipped with the XML transaction similarity (simγJ in place of the
// Euclidean distance) and with XML cluster representative computation (in
// place of the vector mean), and the message-passing multiprocessor scheme
// is mapped onto the same P2P network substrate used by CXK-means.
//
// The defining difference from CXK-means is the communication pattern:
// every peer ships its local representatives for *all* k clusters to
// *every* other peer each iteration (all-to-all, Θ(k·m) transfers per
// peer-round instead of Θ(k)), computes every global representative
// redundantly, and the iteration stops when the summed global SSE no longer
// changes.
package pkmeans

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/core"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// RepsMsg is the per-iteration all-to-all payload: a peer's local
// representatives for every cluster plus its local SSE contribution.
type RepsMsg struct {
	From  int
	Round int
	// Reps maps cluster id → (representative, |C_i_j|) for all k clusters.
	Reps map[int]core.WeightedWireRep
	// SSE is the local sum of (1 − simγJ(tr, rep_assigned)).
	SSE float64
	// Initial marks the round-0 seeding message (reps only for the peer's
	// responsibility range, so all peers agree on the k initial centers).
	Initial bool
}

func init() { p2p.RegisterWireType(RepsMsg{}) }

// Options configures a PK-means run. The fields mirror core.Options so
// that the Fig. 8 comparison feeds both algorithms identically.
type Options struct {
	K         int
	Params    sim.Params
	Peers     int
	Partition [][]int
	MaxRounds int
	Seed      int64
	Rule      cluster.ReturnRule
	// Workers bounds each peer's intra-peer parallelism (see core.Options).
	Workers int
	// IndexReps enables the inverted representative index for the local
	// assignment step (see core.Options.IndexReps); assignments are
	// byte-identical either way.
	IndexReps bool
	// DeltaRounds carries a cross-round delta cache through each peer's
	// iteration (see core.Options.DeltaRounds): unchanged memberships reuse
	// memoized representatives and documents whose cached best center provably
	// still wins skip the assignment scan. Assignments are byte-identical
	// either way. PK-means ships all k representatives all-to-all every round
	// by design, so the delta representative exchange does not apply here.
	DeltaRounds      bool
	Transport        p2p.Transport
	SerializeCompute bool
	// SSEEpsilon is the stop threshold on the global SSE change.
	SSEEpsilon float64
	// Observer, when non-nil, receives round-boundary progress events
	// (RoundStart/RoundEnd with the peer's local SSE as the objective,
	// peer-level Done, and one run-level Done with Peer == -1). PK-means
	// has no phase machine, so no PhaseChange events are emitted. Must be
	// safe for concurrent calls.
	Observer core.Observer
}

// DefaultSSEEpsilon stops the iteration when the global SSE moves less
// than this amount.
const DefaultSSEEpsilon = 1e-9

// Run executes PK-means and returns a core.Result (same accounting shape
// as CXK-means so the experiment harness can compare them directly).
// Cancellation of ctx aborts every peer at its next round boundary or
// blocking receive and Run returns an error wrapping core.ErrCanceled; a
// nil ctx never cancels.
func Run(ctx context.Context, cx *sim.Context, corpus *txn.Corpus, opts Options) (*core.Result, error) {
	m := opts.Peers
	if m <= 0 {
		return nil, fmt.Errorf("pkmeans: need at least one peer, got %d", m)
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("pkmeans: need k ≥ 1, got %d", opts.K)
	}
	if len(opts.Partition) != m {
		return nil, fmt.Errorf("pkmeans: partition has %d parts for %d peers", len(opts.Partition), m)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = core.DefaultMaxRounds
	}
	eps := opts.SSEEpsilon
	if eps <= 0 {
		eps = DefaultSSEEpsilon
	}
	transport := opts.Transport
	if transport == nil {
		transport = p2p.NewChanTransport(m, sizer(corpus.Items))
		defer transport.Close()
	}

	var computeToken chan struct{}
	if opts.SerializeCompute {
		computeToken = make(chan struct{}, 1)
		computeToken <- struct{}{}
	}

	peers := make([]*peer, m)
	for i := 0; i < m; i++ {
		local := make([]*txn.Transaction, len(opts.Partition[i]))
		for j, idx := range opts.Partition[i] {
			local[j] = corpus.Transactions[idx]
		}
		peers[i] = &peer{
			id: i, cx: cx, local: local, globalIdx: opts.Partition[i],
			transport: transport, sizer: sizer(corpus.Items),
			k: opts.K, maxRounds: maxRounds, seed: opts.Seed + int64(i),
			rule: opts.Rule, workers: opts.Workers, eps: eps, computeToken: computeToken,
			indexReps:   opts.IndexReps,
			deltaRounds: opts.DeltaRounds,
			zi:          core.ResponsibilityPartition(opts.K, m)[i],
			observer:    opts.Observer,
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = peers[i].run(ctx)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pkmeans: peer %d: %w", i, err)
		}
	}

	res := &core.Result{
		Assign:   make([]int, len(corpus.Transactions)),
		Reps:     peers[0].global,
		WallTime: wall,
		Peers:    make([]core.PeerReport, m),
	}
	for i := range res.Assign {
		res.Assign[i] = cluster.TrashCluster
	}
	for i, p := range peers {
		res.Peers[i] = p.report
		if p.rounds > res.Rounds {
			res.Rounds = p.rounds
		}
		for localIdx, a := range p.assign {
			res.Assign[p.globalIdx[localIdx]] = a
		}
	}
	if opts.Observer != nil {
		msgs, bytes := res.TotalTraffic()
		opts.Observer(core.Event{
			Kind: core.EventDone, Peer: -1, Round: res.Rounds, Phase: core.PhaseDone,
			SentMsgs: msgs, SentBytes: bytes,
			PrunedRows:      cx.Counters.PrunedRows.Load(),
			ScratchReuses:   cx.Counters.ScratchReuses.Load(),
			IndexCandidates: cx.Counters.IndexCandidates.Load(),
			IndexSkipped:    cx.Counters.IndexSkipped.Load(),
			RepsReused:      cx.Counters.RepsReused.Load(),
			DocsSkipped:     cx.Counters.DocsSkipped.Load(),
			DeltaRepBytes:   cx.Counters.DeltaRepBytes.Load(),
			Elapsed:         wall,
		})
	}
	return res, nil
}

// sizer models wire sizes like core.Sizer but for RepsMsg.
func sizer(items *txn.ItemTable) p2p.Sizer {
	base := core.Sizer(items)
	return func(payload any) int64 {
		msg, ok := payload.(RepsMsg)
		if !ok {
			return base(payload)
		}
		n := int64(33) // header + SSE + flags
		for _, r := range msg.Reps {
			n += 16 + core.WireTxnSize(items, r.Rep)
		}
		return n
	}
}

type peer struct {
	id           int
	cx           *sim.Context
	local        []*txn.Transaction
	globalIdx    []int
	transport    p2p.Transport
	sizer        p2p.Sizer
	k            int
	zi           []int
	maxRounds    int
	seed         int64
	rule         cluster.ReturnRule
	workers      int
	eps          float64
	computeToken chan struct{}
	indexReps    bool
	repIndex     *sim.RepIndex
	deltaRounds  bool
	delta        *cluster.DeltaState

	observer core.Observer
	t0       time.Time

	global  []*txn.Transaction
	assign  []int
	rounds  int
	report  core.PeerReport
	pending map[int][]RepsMsg
}

// emit publishes a progress event when an observer is configured.
func (p *peer) emit(kind core.EventKind, round int, objective float64) {
	if p.observer == nil {
		return
	}
	sm, sb, rm, rb := p.report.TrafficTotals()
	p.observer(core.Event{
		Kind: kind, Peer: p.id, Round: round, Objective: objective,
		SentMsgs: sm, SentBytes: sb, RecvMsgs: rm, RecvBytes: rb,
		PrunedRows:      p.cx.Counters.PrunedRows.Load(),
		ScratchReuses:   p.cx.Counters.ScratchReuses.Load(),
		IndexCandidates: p.cx.Counters.IndexCandidates.Load(),
		IndexSkipped:    p.cx.Counters.IndexSkipped.Load(),
		RepsReused:      p.cx.Counters.RepsReused.Load(),
		DocsSkipped:     p.cx.Counters.DocsSkipped.Load(),
		DeltaRepBytes:   p.cx.Counters.DeltaRepBytes.Load(),
		Elapsed:         time.Since(p.t0),
	})
}

// canceled reports a done ctx as a core.ErrCanceled-wrapping error.
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	default:
		return nil
	}
}

func (p *peer) run(ctx context.Context) error {
	p.t0 = time.Now()
	m := p.transport.Peers()
	p.pending = map[int][]RepsMsg{}
	p.global = make([]*txn.Transaction, p.k)
	p.assign = make([]int, len(p.local))
	for i := range p.assign {
		p.assign[i] = cluster.TrashCluster
	}
	repCfg := cluster.RepConfig{Ctx: p.cx, Rule: p.rule, Workers: p.workers}

	// Round 0: agree on the k initial centers. Peer i seeds the clusters in
	// its responsibility range from its local data and broadcasts them.
	rng := rand.New(rand.NewSource(p.seed))
	initial := map[int]core.WeightedWireRep{}
	for idx, tr := range cluster.SelectInitial(p.local, len(p.zi), rng) {
		j := p.zi[idx]
		p.global[j] = tr
		initial[j] = core.WeightedWireRep{Rep: wireOf(tr), Weight: 1}
	}
	p.growRound(0)
	for h := 0; h < m; h++ {
		if h == p.id {
			continue
		}
		p.send(0, h, RepsMsg{From: p.id, Round: 0, Reps: initial, Initial: true})
	}
	for received := 0; received < m-1; {
		msg, err := p.next(ctx, 0)
		if err != nil {
			return err
		}
		if !msg.Initial {
			return fmt.Errorf("expected initial reps, got round %d message", msg.Round)
		}
		for j, wr := range msg.Reps {
			p.global[j] = txnOf(wr.Rep)
		}
		received++
	}

	prevSSE := math.Inf(1)
	// seenSSE guards against SSE orbits: the greedy XML representative
	// update is not monotone like the Euclidean mean, so the global SSE can
	// cycle; a revisited value stops the iteration (same rationale as the
	// CXK peer's state fingerprinting).
	seenSSE := map[uint64]struct{}{}
	for round := 1; round <= p.maxRounds; round++ {
		if err := canceled(ctx); err != nil {
			return err // clean round-boundary abort
		}
		p.rounds = round + 1 // rounds counts the seeding round too
		p.growRound(round)
		// Event.Round is 0-based (see core.Event); the local round counter
		// is 1-based because round 0 is the seeding exchange.
		p.emit(core.EventRoundStart, round-1, 0)

		// Local K-means step against the shared centers.
		var localReps map[int]core.WeightedWireRep
		var localSSE float64
		p.compute(round, func() {
			var ix *sim.RepIndex
			if p.indexReps {
				if p.repIndex == nil {
					p.repIndex = sim.NewRepIndex()
				}
				p.repIndex.Build(p.cx, p.global)
				ix = p.repIndex
			}
			if p.deltaRounds && p.delta == nil {
				p.delta = cluster.NewDeltaState(p.k)
			}
			if p.delta != nil {
				p.assign, _ = p.delta.Relocate(nil, p.cx, p.local, p.global, p.workers, ix)
			} else {
				p.assign, _ = cluster.RelocateCtxIndexed(nil, p.cx, p.local, p.global, p.workers, ix)
			}
			members := make([][]*txn.Transaction, p.k)
			for i, a := range p.assign {
				if a >= 0 {
					members[a] = append(members[a], p.local[i])
				}
			}
			var memberFps []uint64
			if p.delta != nil {
				memberFps = p.delta.MemberFingerprints(p.assign)
			}
			localReps = map[int]core.WeightedWireRep{}
			for j := 0; j < p.k; j++ {
				if len(members[j]) == 0 {
					continue
				}
				var rep *txn.Transaction
				if p.delta != nil {
					rep = p.delta.LocalRep(repCfg, j, memberFps[j], members[j])
				} else {
					rep = cluster.ComputeLocalRepresentative(repCfg, members[j])
				}
				if rep != nil {
					localReps[j] = core.WeightedWireRep{Rep: wireOf(rep), Weight: len(members[j])}
				}
			}
			localSSE = cluster.SSEWorkers(p.cx, p.local, p.assign, p.global, p.workers)
		})

		// All-to-all exchange: every peer ships all k local reps + SSE.
		for h := 0; h < m; h++ {
			if h == p.id {
				continue
			}
			p.send(round, h, RepsMsg{From: p.id, Round: round, Reps: localReps, SSE: localSSE})
		}
		// Per-peer slots keep aggregation order deterministic: every peer
		// must compute bit-identical global SSEs (the stop rule) and
		// identical representative input orders, independent of message
		// arrival order.
		sseBy := make([]float64, m)
		repsBy := make([]map[int]core.WeightedWireRep, m)
		sseBy[p.id] = localSSE
		repsBy[p.id] = localReps
		for received := 0; received < m-1; {
			msg, err := p.next(ctx, round)
			if err != nil {
				return err
			}
			sseBy[msg.From] = msg.SSE
			repsBy[msg.From] = msg.Reps
			received++
		}
		globalSSE := 0.0
		perCluster := make([][]cluster.WeightedRep, p.k)
		for h := 0; h < m; h++ {
			globalSSE += sseBy[h]
			for j, wr := range repsBy[h] {
				perCluster[j] = append(perCluster[j], cluster.WeightedRep{Rep: txnOf(wr.Rep), Weight: wr.Weight})
			}
		}

		// Redundant global representative computation on every peer.
		p.compute(round, func() {
			for j := 0; j < p.k; j++ {
				if len(perCluster[j]) == 0 {
					continue
				}
				if g := cluster.ComputeGlobalRepresentative(repCfg, perCluster[j]); g != nil {
					p.global[j] = g
				}
			}
		})

		p.emit(core.EventRoundEnd, round-1, localSSE)

		if math.Abs(globalSSE-prevSSE) <= p.eps {
			break
		}
		bits := math.Float64bits(globalSSE)
		if _, cycle := seenSSE[bits]; cycle {
			break
		}
		seenSSE[bits] = struct{}{}
		prevSSE = globalSSE
	}
	p.emit(core.EventDone, p.rounds, 0)
	return nil
}

func (p *peer) growRound(round int) {
	for len(p.report.ComputeByRound) <= round {
		p.report.ComputeByRound = append(p.report.ComputeByRound, 0)
		p.report.SentBytesByRound = append(p.report.SentBytesByRound, 0)
		p.report.RecvBytesByRound = append(p.report.RecvBytesByRound, 0)
		p.report.SentMsgsByRound = append(p.report.SentMsgsByRound, 0)
		p.report.RecvMsgsByRound = append(p.report.RecvMsgsByRound, 0)
	}
	p.report.LocalTransactions = len(p.local)
}

func (p *peer) compute(round int, fn func()) {
	if p.computeToken != nil {
		<-p.computeToken
		defer func() { p.computeToken <- struct{}{} }()
	}
	t0 := time.Now()
	fn()
	p.report.ComputeByRound[round] += time.Since(t0)
}

func (p *peer) send(round, to int, payload any) {
	if err := p.transport.Send(p.id, to, payload); err != nil {
		return
	}
	p.report.SentMsgsByRound[round]++
	p.report.SentBytesByRound[round] += p.sizer(payload)
}

func (p *peer) next(ctx context.Context, round int) (RepsMsg, error) {
	if q := p.pending[round]; len(q) > 0 {
		msg := q[0]
		p.pending[round] = q[1:]
		return msg, nil
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		var env p2p.Envelope
		select {
		case e, ok := <-p.transport.Recv(p.id):
			if !ok {
				return RepsMsg{}, fmt.Errorf("transport closed while awaiting reps")
			}
			env = e
		case <-ctxDone:
			return RepsMsg{}, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
		}
		msg, ok := env.Payload.(RepsMsg)
		if !ok {
			return RepsMsg{}, fmt.Errorf("unexpected message %T", env.Payload)
		}
		p.growRound(msg.Round)
		p.report.RecvMsgsByRound[msg.Round]++
		p.report.RecvBytesByRound[msg.Round] += p.sizer(msg)
		if msg.Round == round {
			return msg, nil
		}
		p.pending[msg.Round] = append(p.pending[msg.Round], msg)
	}
}

func wireOf(tr *txn.Transaction) core.WireTxn {
	if tr == nil {
		return core.WireTxn{}
	}
	return core.WireTxn{Items: append([]txn.ItemID(nil), tr.Items...)}
}

func txnOf(w core.WireTxn) *txn.Transaction {
	if len(w.Items) == 0 {
		return nil
	}
	return txn.NewTransaction(w.Items, -1, -1, -1)
}
