package core

import (
	"errors"
	"fmt"
)

// Phase identifies one step of the per-round CXK-means protocol engine
// (Fig. 5). A session advances Startup → (BroadcastGlobals → Relocate →
// ExchangeLocals → RefineGlobals)* → Done; ExchangeLocals short-circuits to
// Done when every peer reported a stable local clustering.
type Phase int

const (
	// PhaseStartup awaits node N0's StartMsg and selects the initial
	// global representatives this peer is responsible for.
	PhaseStartup Phase = iota
	// PhaseBroadcastGlobals broadcasts the peer's own global
	// representatives and collects the other peers' (protocol phase 1).
	PhaseBroadcastGlobals
	// PhaseRelocate runs the local relocation loop against the fixed
	// globals and recomputes the local representatives (phase 2).
	PhaseRelocate
	// PhaseExchangeLocals exchanges local representatives or done flags
	// with every other peer (phase 3).
	PhaseExchangeLocals
	// PhaseRefineGlobals recomputes the global representatives of the
	// clusters this peer owns from the collected locals (phase 4), then
	// advances the round.
	PhaseRefineGlobals
	// PhaseDone is the terminal phase: the session has converged or
	// exhausted MaxRounds.
	PhaseDone
	// PhaseRejoin awaits a recovery state instead of a StartMsg: a peer
	// launched with PeerConfig.Rejoin parks protocol traffic and waits for
	// the fabric hooks to deliver an installable SessionState (resume from
	// a local checkpoint is installed before the loop ever runs; a fresh
	// joiner waits here for the coordinator's state transfer).
	PhaseRejoin
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseStartup:
		return "startup"
	case PhaseBroadcastGlobals:
		return "broadcast-globals"
	case PhaseRelocate:
		return "relocate"
	case PhaseExchangeLocals:
		return "exchange-locals"
	case PhaseRefineGlobals:
		return "refine-globals"
	case PhaseDone:
		return "done"
	case PhaseRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Typed session failures, matched with errors.Is through SessionError.
var (
	// ErrRoundDeadline reports that a peer waited longer than the
	// configured RoundTimeout for a protocol message — the dead-peer /
	// lost-message failure mode of a real deployment.
	ErrRoundDeadline = errors.New("core: round deadline exceeded")
	// ErrTransportClosed reports that the transport's receive stream ended
	// while the session still expected messages.
	ErrTransportClosed = errors.New("core: transport closed")
	// ErrUnexpectedMessage reports a payload the protocol state machine
	// cannot accept in its current phase.
	ErrUnexpectedMessage = errors.New("core: unexpected message")
	// ErrSend reports a transport send failure. Sends are never silently
	// swallowed: a peer that cannot reach a neighbour fails its session
	// instead of leaving the neighbour to starve.
	ErrSend = errors.New("core: send failed")
	// ErrCanceled reports that the run's context was canceled (or its
	// deadline expired) and the session aborted at the nearest safe
	// boundary — a phase edge, a blocking receive, or between relocation
	// passes. The context's own error is attached as detail.
	ErrCanceled = errors.New("core: run canceled")
	// ErrConfigMismatch reports that node N0's StartMsg disagrees with
	// this peer's own run parameters — a multi-process cluster launched
	// with divergent flags (seed, k, f, γ, corpus, partition) would
	// otherwise compute silently wrong assignments.
	ErrConfigMismatch = errors.New("core: run configuration mismatch")
	// ErrLeft reports that the peer left the session on purpose (graceful
	// leave through the fabric): the session stops without a result and the
	// caller should not treat it as a failure.
	ErrLeft = errors.New("core: peer left the session")
	// ErrCoordinatorLost reports that the recovery coordinator (peer 0)
	// became unreachable; elastic sessions recover member failures but do
	// not re-elect a coordinator.
	ErrCoordinatorLost = errors.New("core: coordinator lost")
	// ErrRecoveryTimeout reports that a failure was detected but recovery
	// did not complete within the configured recovery window.
	ErrRecoveryTimeout = errors.New("core: recovery window exceeded")
)

// SessionError wraps a session failure with the peer, round and phase it
// occurred in. Unwrap exposes the cause for errors.Is/As.
type SessionError struct {
	Peer  int
	Round int
	Phase Phase
	Err   error
}

// Error implements error.
func (e *SessionError) Error() string {
	return fmt.Sprintf("core: peer %d round %d %s: %v", e.Peer, e.Round, e.Phase, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *SessionError) Unwrap() error { return e.Err }
