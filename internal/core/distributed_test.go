package core

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
)

// startNodes wires m p2p.Nodes on loopback ephemeral ports.
func startNodes(t *testing.T, m int) []*p2p.Node {
	t.Helper()
	listeners := make([]net.Listener, m)
	addrs := make([]string, m)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*p2p.Node, m)
	for i := range nodes {
		nodes[i] = p2p.NewNode(i, listeners[i], addrs, p2p.NodeOptions{})
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// TestRunPeerNodeEquivalence is the in-process vs multi-process engine
// check: three RunPeer sessions over real TCP Nodes — each with its own
// similarity context, as three OS processes would have — must produce the
// byte-identical assignment of the in-process ChanTransport driver. One
// peer additionally runs behind a DelayTransport, so arrival-order
// assumptions across the wire are exercised too.
func TestRunPeerNodeEquivalence(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	const m, k, seed = 3, 2, 4
	baseline := runCXK(t, corpus, k, m, seed)

	nodes := startNodes(t, m)
	part := EqualPartition(len(corpus.Transactions), m, seed)
	results := make([]*PeerResult, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each "process" builds its own similarity context.
			cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
			var tr p2p.Transport = nodes[i]
			if i == 1 {
				tr = p2p.NewDelayTransport(nodes[i], 2*time.Millisecond, 99)
			}
			results[i], errs[i] = RunPeer(context.Background(), cx, corpus, Options{
				K: k, Params: cx.Params, Peers: m, Partition: part,
				Seed: seed, Transport: tr, RoundTimeout: 30 * time.Second,
			}, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
	}
	for i := 1; i < m; i++ {
		if results[i].Global != nil {
			t.Errorf("peer %d assembled a global assignment", i)
		}
	}
	global := results[0].Global
	if global == nil {
		t.Fatal("coordinator did not assemble the global assignment")
	}
	if len(global) != len(baseline.Assign) {
		t.Fatalf("global assignment covers %d of %d", len(global), len(baseline.Assign))
	}
	for i := range global {
		if global[i] != baseline.Assign[i] {
			t.Fatalf("assignment %d differs: node run %d vs in-process %d", i, global[i], baseline.Assign[i])
		}
	}
	if results[0].Rounds != baseline.Rounds {
		t.Errorf("rounds differ: %d vs %d", results[0].Rounds, baseline.Rounds)
	}
	// Local views must agree with the assembled global assignment.
	for i := 0; i < m; i++ {
		for li, a := range results[i].Assign {
			if global[part[i][li]] != a {
				t.Fatalf("peer %d local assignment %d inconsistent", i, li)
			}
		}
	}
}

// TestRunPeerValidation covers the option checks of the distributed entry
// point.
func TestRunPeerValidation(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	base := Options{K: 2, Params: cx.Params, Peers: 2, Partition: part, Seed: 1}
	ctx := context.Background()
	if _, err := RunPeer(ctx, cx, corpus, base, 0); err == nil {
		t.Error("missing transport should fail")
	}
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	withTr := base
	withTr.Transport = tr
	if _, err := RunPeer(ctx, cx, corpus, withTr, 5); err == nil {
		t.Error("peer id outside range should fail")
	}
	bad := withTr
	bad.K = 0
	if _, err := RunPeer(ctx, cx, corpus, bad, 0); err == nil {
		t.Error("k=0 should fail")
	}
	bad = withTr
	bad.Partition = part[:1]
	if _, err := RunPeer(ctx, cx, corpus, bad, 0); err == nil {
		t.Error("partition mismatch should fail")
	}
	small := p2p.NewChanTransport(1, nil)
	defer small.Close()
	bad = withTr
	bad.Transport = small
	if _, err := RunPeer(ctx, cx, corpus, bad, 0); err == nil {
		t.Error("transport size mismatch should fail")
	}
}

// TestCollectAssignmentsTimeout: the coordinator must not hang when a peer
// dies between its session end and its final report.
func TestCollectAssignmentsTimeout(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	opts := Options{Peers: 2, Partition: part, Transport: tr, RoundTimeout: 50 * time.Millisecond}
	own := make([]int, len(part[0]))
	_, err := collectAssignments(context.Background(), opts, len(corpus.Transactions), own, nil)
	if !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("want ErrRoundDeadline, got %v", err)
	}
}

// TestCollectAssignmentsMergesPartition checks the local→corpus index
// mapping through an unequal partition.
func TestCollectAssignmentsMergesPartition(t *testing.T) {
	corpus, _ := miniCorpus(t, 3)
	n := len(corpus.Transactions)
	part := UnequalPartition(n, 2, 3)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	own := make([]int, len(part[0]))
	for i := range own {
		own[i] = 0
	}
	other := make([]int, len(part[1]))
	for i := range other {
		other[i] = 1
	}
	if err := tr.Send(1, 0, AssignMsg{From: 1, Rounds: 1, Assign: other}); err != nil {
		t.Fatal(err)
	}
	opts := Options{Peers: 2, Partition: part, Transport: tr, RoundTimeout: time.Second}
	full, err := collectAssignments(context.Background(), opts, n, own, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range part[0] {
		if full[idx] != 0 {
			t.Errorf("index %d not mapped to peer 0's assignment", idx)
		}
	}
	for _, idx := range part[1] {
		if full[idx] != 1 {
			t.Errorf("index %d not mapped to peer 1's assignment", idx)
		}
	}
}
