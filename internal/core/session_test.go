package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// testPeer builds a Peer for corpus partition part over the given transport.
func testPeer(corpus *txn.Corpus, tr p2p.Transport, id int, part [][]int, extra func(*PeerConfig)) *Peer {
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	local := make([]*txn.Transaction, len(part[id]))
	for j, idx := range part[id] {
		local[j] = corpus.Transactions[idx]
	}
	cfg := PeerConfig{
		ID: id, Ctx: cx, Local: local, Transport: tr,
		Sizer: Sizer(corpus.Items), Seed: 1 + int64(id),
	}
	if extra != nil {
		extra(&cfg)
	}
	return NewPeer(cfg)
}

func startMsgFor(k, m int) StartMsg {
	return StartMsg{Zs: ResponsibilityPartition(k, m), K: k, F: 0.5, Gamma: 0.6}
}

// ---------------------------------------------------------------- phases

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseStartup:          "startup",
		PhaseBroadcastGlobals: "broadcast-globals",
		PhaseRelocate:         "relocate",
		PhaseExchangeLocals:   "exchange-locals",
		PhaseRefineGlobals:    "refine-globals",
		PhaseDone:             "done",
		Phase(42):             "phase(42)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

// TestSessionStartupPhase drives the startup phase alone and inspects the
// initialized protocol state.
func TestSessionStartupPhase(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	s := newSession(p)
	if s.phase != PhaseStartup {
		t.Fatalf("fresh session in %s", s.phase)
	}
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseBroadcastGlobals {
		t.Fatalf("after startup: %s", s.phase)
	}
	if s.k != 2 || s.m != 2 || len(s.zi) != 1 {
		t.Errorf("state: k=%d m=%d |zi|=%d", s.k, s.m, len(s.zi))
	}
	// The peer must have selected an initial representative for each owned
	// cluster and marked every local transaction unassigned.
	for _, j := range s.zi {
		if s.global[j] == nil {
			t.Errorf("no initial representative for owned cluster %d", j)
		}
	}
	for i, a := range s.assign {
		if a != cluster.TrashCluster {
			t.Errorf("transaction %d pre-assigned to %d", i, a)
		}
	}
}

// TestSessionBroadcastGlobalsPhase checks that phase 1 sends one message
// per neighbour and installs the received representatives.
func TestSessionBroadcastGlobalsPhase(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	s := newSession(p)
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pre-queue peer 1's broadcast: it owns cluster 1.
	rep := toWire(corpus.Items, corpus.Transactions[part[1][0]])
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 0, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseRelocate {
		t.Fatalf("after broadcast-globals: %s", s.phase)
	}
	if s.global[1] == nil || !s.global[1].Equal(fromWire(corpus.Items, rep)) {
		t.Error("peer 1's representative not installed")
	}
	// Exactly one outgoing message (to peer 1), carrying cluster 0.
	select {
	case env := <-tr.Recv(1):
		msg, ok := env.Payload.(GlobalRepsMsg)
		if !ok || msg.From != 0 || msg.Round != 0 {
			t.Fatalf("unexpected outgoing %+v", env.Payload)
		}
		if _, owns := msg.Reps[0]; !owns {
			t.Error("broadcast lacks the owned cluster 0")
		}
	default:
		t.Fatal("no broadcast sent to peer 1")
	}
}

// TestSessionRelocateAndExchangePhases drives phases 2 and 3 and checks the
// relocation output, the outgoing exchange message and the termination
// transition.
func TestSessionRelocateAndExchangePhases(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	s := newSession(p)
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	rep := toWire(corpus.Items, corpus.Transactions[part[1][0]])
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 0, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	for s.phase != PhaseRelocate {
		if err := s.step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.step(context.Background()); err != nil { // relocate
		t.Fatal(err)
	}
	if s.phase != PhaseExchangeLocals {
		t.Fatalf("after relocate: %s", s.phase)
	}
	assigned := 0
	for _, a := range s.assign {
		if a != cluster.TrashCluster {
			if a < 0 || a >= s.k {
				t.Fatalf("invalid assignment %d", a)
			}
			assigned++
		}
	}
	if assigned == 0 {
		t.Error("relocation assigned nothing")
	}
	if !s.changed {
		t.Error("first round must report changed local representatives")
	}
	// Peer 1 claims it is done; peer 0 changed, so the session continues
	// into the refine phase.
	if err := tr.Send(1, 0, LocalRepsMsg{From: 1, Round: 0, Flag: FlagDone}); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil { // exchange-locals
		t.Fatal(err)
	}
	if s.phase != PhaseRefineGlobals {
		t.Fatalf("after exchange-locals: %s", s.phase)
	}
	if !s.anyContinue {
		t.Error("continue flag lost")
	}
	// The outgoing exchange carries peer 1's clusters only.
	<-tr.Recv(1) // drop the phase-1 broadcast
	select {
	case env := <-tr.Recv(1):
		msg, ok := env.Payload.(LocalRepsMsg)
		if !ok || msg.Flag != FlagContinue {
			t.Fatalf("unexpected exchange message %+v", env.Payload)
		}
		for j := range msg.Reps {
			if j != 1 {
				t.Errorf("exchange leaked cluster %d to peer 1", j)
			}
		}
	default:
		t.Fatal("no exchange message sent to peer 1")
	}
	// Refine advances the round and loops back to phase 1.
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseBroadcastGlobals || s.round != 1 {
		t.Fatalf("after refine-globals: %s round %d", s.phase, s.round)
	}
}

// TestSessionTerminatesWhenAllDone: a stable peer that receives only done
// flags must transition straight to PhaseDone from the exchange phase.
func TestSessionTerminatesWhenAllDone(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	s := newSession(p)
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	rep := toWire(corpus.Items, corpus.Transactions[part[1][0]])
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 0, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	for s.phase != PhaseExchangeLocals {
		if err := s.step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	s.changed = false // force local stability
	if err := tr.Send(1, 0, LocalRepsMsg{From: 1, Round: 0, Flag: FlagDone}); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseDone {
		t.Fatalf("all-done exchange left session in %s", s.phase)
	}
	res := s.result()
	if res.Rounds != 1 || len(res.Assign) != len(part[0]) || len(res.Reps) != 2 {
		t.Errorf("result shape: rounds=%d |assign|=%d |reps|=%d", res.Rounds, len(res.Assign), len(res.Reps))
	}
}

// TestSessionStartupBuffersEarlyMessages reproduces a real-network race:
// on separate TCP connections a fast neighbour's round-0 broadcast (or even
// a post-session AssignMsg) can overtake the coordinator's StartMsg. The
// startup phase must buffer, not reject, and the buffered broadcast must
// feed phase 1 afterwards.
func TestSessionStartupBuffersEarlyMessages(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	s := newSession(p)
	rep := toWire(corpus.Items, corpus.Transactions[part[1][0]])
	// The neighbour's broadcast and a stray assignment report arrive first.
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 0, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, 0, AssignMsg{From: 1, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseBroadcastGlobals {
		t.Fatalf("after startup: %s", s.phase)
	}
	if len(s.pendGlobal[0]) != 1 {
		t.Fatalf("early broadcast not buffered: %d", len(s.pendGlobal[0]))
	}
	if len(s.pendAssign) != 1 {
		t.Fatalf("early AssignMsg not buffered: %d", len(s.pendAssign))
	}
	// Phase 1 must complete from the buffer alone — no further messages.
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseRelocate || s.global[1] == nil {
		t.Fatalf("buffered broadcast not consumed: phase=%s", s.phase)
	}
}

// ---------------------------------------------------------------- failures

func TestSessionStartupRejectsBadMessage(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	// Protocol messages (globals/locals/assignments) are buffered during
	// startup — only a genuinely foreign payload is a protocol violation.
	if err := tr.Send(0, 0, "bogus payload"); err != nil {
		t.Fatal(err)
	}
	_, err := p.RunSession(context.Background())
	if err == nil {
		t.Fatal("bad startup message must fail the session")
	}
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("error not typed: %v", err)
	}
	var se *SessionError
	if !errors.As(err, &se) || se.Phase != PhaseStartup || se.Peer != 0 {
		t.Errorf("session error context wrong: %+v", se)
	}
}

// TestSessionDeadPeerTimeout: peer 2 never starts, so the running peers
// must fail their sessions with ErrRoundDeadline instead of hanging.
func TestSessionDeadPeerTimeout(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(3, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 3, 1)
	start := startMsgFor(2, 3)
	for i := 0; i < 3; i++ {
		if err := tr.Send(0, i, start); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 2)
	for _, id := range []int{0, 1} {
		p := testPeer(corpus, tr, id, part, func(cfg *PeerConfig) {
			cfg.RoundTimeout = 100 * time.Millisecond
		})
		go func() {
			_, err := p.RunSession(context.Background())
			errc <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrRoundDeadline) {
				t.Errorf("want ErrRoundDeadline, got %v", err)
			}
			var se *SessionError
			if !errors.As(err, &se) || se.Phase != PhaseBroadcastGlobals {
				t.Errorf("deadline not attributed to broadcast-globals: %+v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("dead peer hung the session despite RoundTimeout")
		}
	}
}

func TestSessionStartupDeadline(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.RoundTimeout = 50 * time.Millisecond
	})
	_, err := p.RunSession(context.Background()) // no StartMsg ever arrives
	if !errors.Is(err, ErrRoundDeadline) {
		t.Fatalf("want ErrRoundDeadline, got %v", err)
	}
}

func TestSessionContextCancel(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := p.RunSession(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// failingTransport refuses sends to a given peer, emulating a broken link.
type failingTransport struct {
	p2p.Transport
	failTo int
}

func (f *failingTransport) Send(from, to int, payload any) error {
	if to == f.failTo {
		return fmt.Errorf("link to %d down", to)
	}
	return f.Transport.Send(from, to, payload)
}

// TestSessionSendFailurePropagates: a failed send must fail the session
// with ErrSend instead of being silently swallowed (the old engine dropped
// the error and left the receiving peer to starve).
func TestSessionSendFailurePropagates(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	inner := p2p.NewChanTransport(2, nil)
	defer inner.Close()
	tr := &failingTransport{Transport: inner, failTo: 1}
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	if err := inner.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	p := testPeer(corpus, tr, 0, part, nil)
	_, err := p.RunSession(context.Background())
	if err == nil {
		t.Fatal("send failure must fail the session")
	}
	if !errors.Is(err, ErrSend) {
		t.Errorf("want ErrSend, got %v", err)
	}
	var se *SessionError
	if !errors.As(err, &se) || se.Phase != PhaseBroadcastGlobals {
		t.Errorf("send failure not attributed to broadcast-globals: %+v", err)
	}
}

// TestRunSessionSinglePeer runs the full engine through the public Peer
// surface for m=1 and cross-checks the thin-driver path.
func TestRunSessionSinglePeer(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	ref := runCXK(t, corpus, 2, 1, 7)

	tr := p2p.NewChanTransport(1, Sizer(corpus.Items))
	defer tr.Close()
	if err := tr.Send(0, 0, StartMsg{Zs: ResponsibilityPartition(2, 1), K: 2, F: 0.5, Gamma: 0.6}); err != nil {
		t.Fatal(err)
	}
	part := EqualPartition(len(corpus.Transactions), 1, 7)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) { cfg.Seed = 7 })
	res, err := p.RunSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != ref.Rounds {
		t.Errorf("rounds %d vs driver %d", res.Rounds, ref.Rounds)
	}
	for i, a := range res.Assign {
		if ref.Assign[part[0][i]] != a {
			t.Fatalf("assignment %d differs from driver run", i)
		}
	}
}

// TestSessionConfigMismatch: a peer launched with different flags than the
// coordinator (here: another seed) must fail its session with
// ErrConfigMismatch instead of silently clustering a divergent partition.
func TestSessionConfigMismatch(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.Expect = &StartExpectation{
			K: 2, F: 0.5, Gamma: 0.6, Seed: 5, // coordinator announces seed 0
			Txns: len(corpus.Transactions), PartitionHash: PartitionFingerprint(part),
		}
	})
	msg := startMsgFor(2, 1)
	msg.Txns = len(corpus.Transactions)
	msg.PartitionHash = PartitionFingerprint(part)
	if err := tr.Send(0, 0, msg); err != nil {
		t.Fatal(err)
	}
	_, err := p.RunSession(context.Background())
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("want ErrConfigMismatch, got %v", err)
	}
	var se *SessionError
	if !errors.As(err, &se) || se.Phase != PhaseStartup {
		t.Errorf("mismatch not attributed to startup: %+v", err)
	}
}

// TestRunPeerSeedMismatchFails drives the config check through the full
// distributed entry point: two RunPeer processes with different seeds must
// not produce a result.
func TestRunPeerSeedMismatchFails(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, Sizer(corpus.Items))
	defer tr.Close()
	errc := make(chan error, 2)
	for id, seed := range map[int]int64{0: 3, 1: 5} {
		go func(id int, seed int64) {
			cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
			_, err := RunPeer(context.Background(), cx, corpus, Options{
				K: 2, Params: cx.Params, Peers: 2,
				Partition: EqualPartition(len(corpus.Transactions), 2, seed),
				Seed:      seed, Transport: tr, RoundTimeout: 2 * time.Second,
			}, id)
			errc <- err
		}(id, seed)
	}
	sawMismatch := false
	for i := 0; i < 2; i++ {
		err := <-errc
		if err == nil {
			t.Fatal("mismatched seeds must not produce a result")
		}
		if errors.Is(err, ErrConfigMismatch) {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Error("no peer reported ErrConfigMismatch")
	}
}

// TestSessionStartupTimeoutOutlivesRoundTimeout: distributed peers boot in
// any order, so the startup wait must tolerate a coordinator that appears
// long after one round-timeout has elapsed.
func TestSessionStartupTimeoutOutlivesRoundTimeout(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.RoundTimeout = 50 * time.Millisecond
		cfg.StartupTimeout = 5 * time.Second
	})
	go func() {
		time.Sleep(200 * time.Millisecond) // > RoundTimeout, < StartupTimeout
		tr.Send(0, 0, startMsgFor(2, 1))
	}()
	res, err := p.RunSession(context.Background())
	if err != nil {
		t.Fatalf("late coordinator killed the session: %v", err)
	}
	if res.Rounds == 0 {
		t.Error("session did not run")
	}
}
