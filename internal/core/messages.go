// Package core implements CXK-means (Fig. 5 of the paper): the
// collaborative distributed clustering of XML transactions over a P2P
// network. Every peer clusters its local transactions against the k global
// representatives, computes local cluster representatives, and exchanges
// them so that the peers responsible for each cluster can compute the
// global representatives collaboratively.
//
// # Delta rounds
//
// With Options.DeltaRounds on (the default at the public surface), each
// peer threads a cluster.DeltaState through its rounds — memoized
// representatives and anchored relocation — and the representative
// exchange ships an unchanged representative as a digest marker
// (UnchangedRep) instead of the full wire transaction. The mode is part
// of the wire protocol: the coordinator announces it in
// StartMsg.DeltaExchange, a peer configured differently rejects the
// session with ErrConfigMismatch, and a marker the receiver never cached
// (or whose digest disagrees) fails the round with ErrUnexpectedMessage.
// Output is byte-identical with the engine on or off. The delta caches
// assume round-over-round continuity, so any break invalidates them:
// installing a checkpoint or a coordinator state stream (restore, crash
// recovery, -join), a membership epoch change, and worker errors all
// drop the DeltaState and both exchange caches, and the next round
// recomputes and re-ships everything from scratch.
package core

import (
	"sort"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
)

// WireTxn is the transport representation of a (representative)
// transaction: the flattened raw item ids of its leaves. Raw item ids are
// stable across every process that loaded the same corpus, while synthetic
// (conflated) representative items are process-local — so senders flatten
// to raw constituents (toWire) and receivers re-conflate in their own
// interning table (fromWire). WireTxnSize accounts for the full semantic
// payload (paths, answers, TCU vectors) a cross-machine deployment ships,
// matching the paper's cost model O(|tr|·(|u|+depth)).
type WireTxn struct {
	Items []txn.ItemID
}

// StartMsg is the trivial startup message of node N0: the partition of the
// cluster identifiers {1..k} into responsibility sets Z_1..Z_m, plus the
// clustering parameters. Seed, Txns and PartitionHash let every peer check
// that the whole cluster was launched with one consistent configuration —
// a multi-process deployment with divergent flags would otherwise compute
// silently wrong assignments.
type StartMsg struct {
	Zs    [][]int
	K     int
	F     float64
	Gamma float64
	// Seed is the base seed of the run (peer i derives Seed+i).
	Seed int64
	// Txns is the corpus size |S|.
	Txns int
	// PartitionHash fingerprints the data partition S_1..S_m.
	PartitionHash uint64
	// DeltaExchange announces that the run ships unchanged local
	// representatives as digest markers (LocalRepsMsg.Unchanged) instead of
	// full wire transactions. Every peer must agree: a receiver that does
	// not maintain the delta cache cannot resolve a marker, so a mixed
	// deployment fails fast at startup (StartExpectation.check) instead of
	// mid-round.
	DeltaExchange bool
}

// GlobalRepsMsg broadcasts the global representatives a peer is responsible
// for at the start of every round.
type GlobalRepsMsg struct {
	From  int
	Round int
	// Reps maps cluster id → representative.
	Reps map[int]WireTxn
}

// Flag is a peer's per-round state signal.
type Flag uint8

const (
	// FlagContinue signals that the peer's local representatives changed.
	FlagContinue Flag = iota
	// FlagDone signals a stable local clustering.
	FlagDone
)

// LocalRepsMsg carries a peer's local representatives (with cluster sizes
// as weights) for the clusters the destination peer is responsible for —
// or an empty broadcast when the peer is done.
type LocalRepsMsg struct {
	From  int
	Round int
	Flag  Flag
	// Reps maps cluster id → (representative, |C_i_j|).
	Reps map[int]WeightedWireRep
	// Unchanged maps cluster id → digest marker for representatives that
	// are byte-identical to the last full representative this sender shipped
	// to this destination for that cluster (delta exchange; only sent when
	// the StartMsg negotiated DeltaExchange). The weight still travels —
	// cluster sizes can change while the representative does not.
	Unchanged map[int]UnchangedRep
}

// WeightedWireRep pairs a representative with its local cluster size.
type WeightedWireRep struct {
	Rep    WireTxn
	Weight int
}

// UnchangedRep is the delta-exchange marker for one unchanged local
// representative: the digest of the full wire form the receiver already
// holds, plus the (possibly updated) cluster size.
type UnchangedRep struct {
	Weight int
	Digest uint64
}

// unchangedRepSize models the wire cost of one delta-exchange marker:
// cluster id + weight + digest.
const unchangedRepSize = 24

// cachedWireRep is a receiver-side delta-exchange cache entry: the last full
// wire representative a sender shipped for one cluster, with its digest so
// incoming UnchangedRep markers can be verified before reuse.
type cachedWireRep struct {
	wire WireTxn
	dig  uint64
}

// wireDigest fingerprints a wire transaction's flattened raw item ids
// (FNV-1a, order-sensitive — toWire is deterministic, so equal
// representatives produce equal sequences). Senders key their sent-rep
// caches on it and receivers verify delta-exchange markers against it.
func wireDigest(w WireTxn) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range w.Items {
		v := uint64(id)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// AssignMsg reports a peer's final local assignment to the coordinator
// after its session terminates. Fig. 5 leaves result collection out of
// scope; multi-process deployments (RunPeer / cmd/cxkpeer) use it so the
// coordinator can assemble the corpus-wide assignment.
type AssignMsg struct {
	From   int
	Rounds int
	// Assign is the sender's local assignment in local transaction order
	// (the coordinator maps it back through the shared partition).
	Assign []int
}

func init() {
	p2p.RegisterWireType(StartMsg{})
	p2p.RegisterWireType(GlobalRepsMsg{})
	p2p.RegisterWireType(LocalRepsMsg{})
	p2p.RegisterWireType(AssignMsg{})
}

// toWire converts a transaction to its wire form: the flattened raw item
// ids (nil-safe). Synthetic (conflated) representative items are
// process-local — their ids do not exist in a remote peer's interning
// table — but they are fully determined by their raw constituents, which
// are corpus items and therefore share ids across every process that loaded
// the same corpus.
func toWire(items *txn.ItemTable, tr *txn.Transaction) WireTxn {
	if tr == nil {
		return WireTxn{}
	}
	out := make([]txn.ItemID, 0, len(tr.Items))
	for _, id := range tr.Items {
		out = append(out, items.Get(id).Flatten()...)
	}
	return WireTxn{Items: out}
}

// fromWire rebuilds a transaction by re-conflating the raw ids in the local
// interning table (nil for the empty wire form). Conflation is
// deterministic and dedupes through the table, so on a shared in-process
// table it reproduces the sender's exact item ids, and across processes it
// reproduces items with identical semantics (path, merged answer, vector).
func fromWire(items *txn.ItemTable, w WireTxn) *txn.Transaction {
	if len(w.Items) == 0 {
		return nil
	}
	return cluster.ConflateItems(items, w.Items)
}

// RepsDigest canonically fingerprints a representative set: FNV-1a over
// each representative's sorted flattened raw item ids with separators, so
// two processes (or two runs) with the same corpus produce equal digests
// exactly when their representatives are identical item sets. This is the
// cross-process equality check behind the fabric's recovery-equivalence
// gate — synthetic item ids are process-local, raw constituents are not.
func RepsDigest(items *txn.ItemTable, reps []*txn.Transaction) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, rep := range reps {
		mix(^uint64(0)) // representative separator
		w := toWire(items, rep)
		ids := append([]txn.ItemID(nil), w.Items...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			mix(uint64(id))
		}
	}
	return h
}

// WireTxnSize models the semantic wire size of a representative: each item
// costs its dotted path length + answer length + 12 bytes per sparse vector
// entry (term id + weight), mirroring the O(|trmax|·(|umax|+depth))
// transfer-cost bound of Sect. 4.3.3.
func WireTxnSize(items *txn.ItemTable, w WireTxn) int64 {
	n := int64(8)
	for _, id := range w.Items {
		it := items.Get(id)
		n += int64(len(it.Answer)) + 8
		n += int64(len(items.Paths().Path(it.Path).String()))
		n += vectorBytes(it.Vector)
	}
	return n
}

// Sizer returns a p2p.Sizer that models wire sizes for the core message
// types against the given item table.
func Sizer(items *txn.ItemTable) p2p.Sizer {
	return func(payload any) int64 {
		switch m := payload.(type) {
		case StartMsg:
			return int64(16 + 8*m.K)
		case GlobalRepsMsg:
			n := int64(16)
			for _, r := range m.Reps {
				n += 8 + WireTxnSize(items, r)
			}
			return n
		case LocalRepsMsg:
			n := int64(17)
			for _, r := range m.Reps {
				n += 16 + WireTxnSize(items, r.Rep)
			}
			n += int64(unchangedRepSize * len(m.Unchanged))
			return n
		case AssignMsg:
			return int64(24 + 8*len(m.Assign))
		default:
			return 64
		}
	}
}

// vectorBytes models the cost of shipping a sparse TCU vector.
func vectorBytes(v vector.Sparse) int64 { return int64(12 * v.Len()) }
