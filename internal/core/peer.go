package core

import (
	"fmt"
	"math/rand"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// peerState is the per-peer process N_i of Fig. 5.
type peerState struct {
	id        int
	cx        *sim.Context
	local     []*txn.Transaction // S_i
	globalIdx []int              // corpus index of each local transaction
	transport p2p.Transport
	sizer     p2p.Sizer
	maxRounds int
	seed      int64
	rule      cluster.ReturnRule
	workers   int
	// computeToken, when non-nil, serializes compute sections across peers
	// so per-peer timings stay clean on oversubscribed hosts.
	computeToken chan struct{}

	// Protocol state.
	k          int
	zs         [][]int
	zi         []int
	global     []*txn.Transaction // g_1..g_k
	localRp    []*txn.Transaction // ℓ_i1..ℓ_ik
	newLocalRp []*txn.Transaction // scratch for the current round
	sizes      []int              // |C_i_j|
	assign     []int              // local assignment
	rounds     int
	report     PeerReport
	// seenStates fingerprints past local-representative states. Fig. 5
	// terminates on exact representative stability; greedy representative
	// refinement can cycle through a short orbit of states instead of
	// reaching a fixpoint, so a revisited state is treated as stable
	// (guaranteeing termination without changing converged results).
	seenStates map[uint64]struct{}

	// Message reordering buffers: peers may run ahead by one phase, so
	// envelopes are buffered per (round, type).
	pendGlobal map[int][]GlobalRepsMsg
	pendLocal  map[int][]LocalRepsMsg
}

func (p *peerState) run() error {
	p.pendGlobal = map[int][]GlobalRepsMsg{}
	p.pendLocal = map[int][]LocalRepsMsg{}
	p.seenStates = map[uint64]struct{}{}

	// Receive N0's startup message.
	env := <-p.transport.Recv(p.id)
	startMsg, ok := env.Payload.(StartMsg)
	if !ok {
		return fmt.Errorf("expected StartMsg, got %T", env.Payload)
	}
	p.recvAccount(0, env)
	p.k = startMsg.K
	p.zs = startMsg.Zs
	p.zi = startMsg.Zs[p.id]

	p.global = make([]*txn.Transaction, p.k)
	p.localRp = make([]*txn.Transaction, p.k)
	p.sizes = make([]int, p.k)
	p.assign = make([]int, len(p.local))
	for i := range p.assign {
		p.assign[i] = cluster.TrashCluster
	}

	// Select q_i initial global representatives from distinct local trees.
	rng := rand.New(rand.NewSource(p.seed))
	for idx, tr := range cluster.SelectInitial(p.local, len(p.zi), rng) {
		p.global[p.zi[idx]] = tr
	}

	m := p.transport.Peers()
	repCfg := cluster.RepConfig{Ctx: p.cx, Rule: p.rule, Workers: p.workers}

	for round := 0; round < p.maxRounds; round++ {
		p.rounds = round + 1
		p.growRound(round)

		// Phase 1 — broadcast the global representatives this peer is
		// responsible for, then collect everyone else's.
		own := map[int]WireTxn{}
		for _, j := range p.zi {
			own[j] = toWire(p.global[j])
		}
		for h := 0; h < m; h++ {
			if h == p.id {
				continue
			}
			p.send(round, h, GlobalRepsMsg{From: p.id, Round: round, Reps: own})
		}
		for received := 0; received < m-1; {
			msg, err := p.nextGlobal(round)
			if err != nil {
				return err
			}
			for j, w := range msg.Reps {
				p.global[j] = fromWire(w)
			}
			received++
		}

		// Phase 2 — local relocation loop against the fixed globals.
		p.compute(round, func() {
			for {
				assign := cluster.RelocateWorkers(p.cx, p.local, p.global, p.workers)
				if intsEqual(assign, p.assign) {
					break
				}
				p.assign = assign
			}
			members := make([][]*txn.Transaction, p.k)
			for i, a := range p.assign {
				if a >= 0 {
					members[a] = append(members[a], p.local[i])
				}
			}
			for j := 0; j < p.k; j++ {
				p.sizes[j] = len(members[j])
				if len(members[j]) == 0 {
					p.newLocalRp[j] = nil
					continue
				}
				p.newLocalRp[j] = cluster.ComputeLocalRepresentative(repCfg, members[j])
			}
		})
		changed := !repSliceEqual(p.newLocalRp, p.localRp)
		copy(p.localRp, p.newLocalRp)
		if changed {
			fp := fingerprintReps(p.localRp)
			if _, cycle := p.seenStates[fp]; cycle {
				changed = false
			}
			p.seenStates[fp] = struct{}{}
		}

		// Phase 3 — exchange local representatives (or a done broadcast).
		flag := FlagContinue
		if !changed {
			flag = FlagDone
		}
		for h := 0; h < m; h++ {
			if h == p.id {
				continue
			}
			msg := LocalRepsMsg{From: p.id, Round: round, Flag: flag}
			if changed {
				reps := map[int]WeightedWireRep{}
				for _, j := range p.zs[h] {
					if p.localRp[j] != nil {
						reps[j] = WeightedWireRep{Rep: toWire(p.localRp[j]), Weight: p.sizes[j]}
					}
				}
				msg.Reps = reps
			}
			p.send(round, h, msg)
		}

		// Collect the other peers' local representatives for own clusters.
		// Per-sender slots keep the representative input order deterministic
		// regardless of message arrival order (reproducibility for a fixed
		// seed; floating-point aggregation is order-sensitive).
		bySender := make([]map[int]WeightedWireRep, m)
		anyContinue := changed
		for received := 0; received < m-1; {
			msg, err := p.nextLocal(round)
			if err != nil {
				return err
			}
			if msg.Flag == FlagContinue {
				anyContinue = true
			}
			bySender[msg.From] = msg.Reps
			received++
		}

		if !anyContinue {
			break // V_1 = … = V_m = done
		}

		// Phase 4 — compute the global representatives for own clusters
		// from the m local representatives in peer-id order.
		p.compute(round, func() {
			for _, j := range p.zi {
				var reps []cluster.WeightedRep
				for h := 0; h < m; h++ {
					if h == p.id {
						if p.localRp[j] != nil {
							reps = append(reps, cluster.WeightedRep{Rep: p.localRp[j], Weight: p.sizes[j]})
						}
						continue
					}
					if wr, ok := bySender[h][j]; ok {
						reps = append(reps, cluster.WeightedRep{Rep: fromWire(wr.Rep), Weight: wr.Weight})
					}
				}
				if len(reps) == 0 {
					continue // keep the previous global representative
				}
				if g := cluster.ComputeGlobalRepresentative(repCfg, reps); g != nil {
					p.global[j] = g
				}
			}
		})
	}
	return nil
}

// growRound ensures the per-round accounting slices cover the given round.
// Idempotent: messages can arrive one phase ahead of the local round.
func (p *peerState) growRound(round int) {
	for len(p.report.ComputeByRound) <= round {
		p.report.ComputeByRound = append(p.report.ComputeByRound, 0)
		p.report.SentBytesByRound = append(p.report.SentBytesByRound, 0)
		p.report.RecvBytesByRound = append(p.report.RecvBytesByRound, 0)
		p.report.SentMsgsByRound = append(p.report.SentMsgsByRound, 0)
		p.report.RecvMsgsByRound = append(p.report.RecvMsgsByRound, 0)
	}
	p.report.LocalTransactions = len(p.local)
	if p.newLocalRp == nil {
		p.newLocalRp = make([]*txn.Transaction, p.k)
	}
}

// compute runs fn under the optional compute token, accounting its wall
// time to the given round.
func (p *peerState) compute(round int, fn func()) {
	if p.computeToken != nil {
		<-p.computeToken
		defer func() { p.computeToken <- struct{}{} }()
	}
	t0 := time.Now()
	fn()
	p.report.ComputeByRound[round] += time.Since(t0)
}

func (p *peerState) send(round, to int, payload any) {
	if err := p.transport.Send(p.id, to, payload); err != nil {
		// Transport failures surface on the receive side as missing
		// messages; record and continue (channel transport never fails).
		return
	}
	p.report.SentMsgsByRound[round]++
	p.report.SentBytesByRound[round] += p.sizer(payload)
}

func (p *peerState) recvAccount(round int, env p2p.Envelope) {
	if round < 0 || p.k == 0 {
		return // startup message, before the protocol state exists
	}
	p.growRound(round)
	p.report.RecvMsgsByRound[round]++
	p.report.RecvBytesByRound[round] += p.sizer(env.Payload)
}

// nextGlobal returns the next GlobalRepsMsg for the given round, buffering
// out-of-phase messages.
func (p *peerState) nextGlobal(round int) (GlobalRepsMsg, error) {
	if q := p.pendGlobal[round]; len(q) > 0 {
		msg := q[0]
		p.pendGlobal[round] = q[1:]
		return msg, nil
	}
	for env := range p.transport.Recv(p.id) {
		switch msg := env.Payload.(type) {
		case GlobalRepsMsg:
			p.recvAccount(msg.Round, env)
			if msg.Round == round {
				return msg, nil
			}
			p.pendGlobal[msg.Round] = append(p.pendGlobal[msg.Round], msg)
		case LocalRepsMsg:
			p.recvAccount(msg.Round, env)
			p.pendLocal[msg.Round] = append(p.pendLocal[msg.Round], msg)
		default:
			return GlobalRepsMsg{}, fmt.Errorf("unexpected message %T", env.Payload)
		}
	}
	return GlobalRepsMsg{}, fmt.Errorf("transport closed while awaiting global reps")
}

// nextLocal returns the next LocalRepsMsg for the given round.
func (p *peerState) nextLocal(round int) (LocalRepsMsg, error) {
	if q := p.pendLocal[round]; len(q) > 0 {
		msg := q[0]
		p.pendLocal[round] = q[1:]
		return msg, nil
	}
	for env := range p.transport.Recv(p.id) {
		switch msg := env.Payload.(type) {
		case LocalRepsMsg:
			p.recvAccount(msg.Round, env)
			if msg.Round == round {
				return msg, nil
			}
			p.pendLocal[msg.Round] = append(p.pendLocal[msg.Round], msg)
		case GlobalRepsMsg:
			p.recvAccount(msg.Round, env)
			p.pendGlobal[msg.Round] = append(p.pendGlobal[msg.Round], msg)
		default:
			return LocalRepsMsg{}, fmt.Errorf("unexpected message %T", env.Payload)
		}
	}
	return LocalRepsMsg{}, fmt.Errorf("transport closed while awaiting local reps")
}

// globalRepsSnapshot returns the final global representatives as seen by
// this peer (all peers converge to the same set on termination).
func (p *peerState) globalRepsSnapshot() []*txn.Transaction {
	return append([]*txn.Transaction(nil), p.global...)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fingerprintReps hashes a representative slice (FNV-1a over item ids and
// separators) for cycle detection.
func fingerprintReps(reps []*txn.Transaction) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, rep := range reps {
		mix(^uint64(0)) // cluster separator
		if rep == nil {
			continue
		}
		for _, id := range rep.Items {
			mix(uint64(id))
		}
	}
	return h
}

func repSliceEqual(a, b []*txn.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch {
		case a[i] == nil && b[i] == nil:
		case a[i] == nil || b[i] == nil:
			return false
		case !a[i].Equal(b[i]):
			return false
		}
	}
	return true
}
