package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// PeerConfig assembles everything one peer process N_i of Fig. 5 needs to
// join a CXK-means session.
type PeerConfig struct {
	// ID is this peer's dense id in [0, Transport.Peers()).
	ID int
	// Ctx is the similarity context over the peer's interning tables.
	Ctx *sim.Context
	// Local is S_i, the peer's local transaction set.
	Local []*txn.Transaction
	// Transport connects the peer to the network. For multi-process
	// deployments this is a p2p.Node; in-process runs use ChanTransport or
	// TCPTransport.
	Transport p2p.Transport
	// Sizer models wire sizes for the per-round traffic report (nil
	// records zero bytes).
	Sizer p2p.Sizer
	// MaxRounds bounds the collaborative loop (0 = DefaultMaxRounds).
	MaxRounds int
	// Seed drives the initial representative selection.
	Seed int64
	// Rule selects the GenerateTreeTuple return reading.
	Rule cluster.ReturnRule
	// Workers bounds intra-peer parallelism (see Options.Workers).
	Workers int
	// IndexReps relocates through an inverted representative index rebuilt
	// once per round (see Options.IndexReps); assignments are byte-identical
	// either way.
	IndexReps bool
	// DeltaRounds carries a cluster.DeltaState across rounds (representative
	// memoization + delta relocation) and ships unchanged local
	// representatives as digest markers instead of full wire transactions
	// (see Options.DeltaRounds). Output is byte-identical either way; every
	// peer of a session must agree (StartMsg.DeltaExchange).
	DeltaRounds bool
	// RoundTimeout bounds every blocking receive of the session; a peer
	// that waits longer fails with ErrRoundDeadline instead of hanging on
	// a dead neighbour. 0 disables the deadline (trusted in-process runs).
	RoundTimeout time.Duration
	// StartupTimeout bounds the wait for N0's StartMsg. Peer processes of
	// a distributed deployment boot in any order, so this is typically
	// much longer than RoundTimeout. 0 falls back to RoundTimeout;
	// negative disables the startup deadline.
	StartupTimeout time.Duration
	// Expect, when non-nil, pins the run parameters this peer was
	// launched with; a StartMsg that disagrees fails the session with
	// ErrConfigMismatch instead of computing silently wrong assignments
	// (every process of a distributed run must share one configuration).
	Expect *StartExpectation
	// ComputeToken, when non-nil, serializes compute sections across peers
	// so per-peer timings stay clean on oversubscribed hosts.
	ComputeToken chan struct{}
	// Observer, when non-nil, receives progress events (phase changes,
	// round boundaries, termination). Peers run concurrently, so it must be
	// safe for concurrent calls. Enabling it also turns on the per-round
	// local objective computation reported in RoundEnd events.
	Observer Observer
	// Epoch is the membership epoch the session starts in (0 for a fresh
	// session; a recovered session starts in the epoch of its restored
	// state). Envelopes stamped with an older epoch are dropped, newer ones
	// parked until the session catches up.
	Epoch int
	// Initial, when non-nil, is a restored SessionState the session
	// installs instead of running startup: the peer skips the StartMsg wait
	// and re-enters the round loop at Initial.Round (cxkpeer -resume).
	Initial *SessionState
	// Rejoin makes the session await a recovery state transfer (delivered
	// through Hooks.Control) instead of a StartMsg: the state machine
	// starts in PhaseRejoin (cxkpeer -join). Mutually exclusive with
	// Initial.
	Rejoin bool
	// Hooks, when non-nil, attaches a fabric layer to the session: round
	// boundaries (checkpointing), control messages (membership, recovery)
	// and deadline expiries (failure detection) are routed through it. All
	// calls happen on the session goroutine.
	Hooks Hooks
}

// StartExpectation pins the parameters a peer expects node N0 to announce.
type StartExpectation struct {
	K             int
	F             float64
	Gamma         float64
	Seed          int64
	Txns          int
	PartitionHash uint64
	DeltaExchange bool
}

// check compares the expectation against a received StartMsg.
func (e *StartExpectation) check(msg StartMsg) error {
	switch {
	case msg.K != e.K:
		return fmt.Errorf("%w: k = %d here, %d at N0", ErrConfigMismatch, e.K, msg.K)
	case msg.F != e.F || msg.Gamma != e.Gamma:
		return fmt.Errorf("%w: (f, γ) = (%v, %v) here, (%v, %v) at N0",
			ErrConfigMismatch, e.F, e.Gamma, msg.F, msg.Gamma)
	case msg.Seed != e.Seed:
		return fmt.Errorf("%w: seed = %d here, %d at N0", ErrConfigMismatch, e.Seed, msg.Seed)
	case msg.Txns != e.Txns:
		return fmt.Errorf("%w: corpus has %d transactions here, %d at N0", ErrConfigMismatch, e.Txns, msg.Txns)
	case msg.PartitionHash != e.PartitionHash:
		return fmt.Errorf("%w: data partition diverges from N0's (check the split flags)", ErrConfigMismatch)
	case msg.DeltaExchange != e.DeltaExchange:
		return fmt.Errorf("%w: delta exchange %v here, %v at N0 (check -no-delta-rounds)",
			ErrConfigMismatch, e.DeltaExchange, msg.DeltaExchange)
	}
	return nil
}

// PartitionFingerprint hashes a data partition (FNV-1a over part sizes and
// indices) so peers can cross-check that they derived the same split.
func PartitionFingerprint(part [][]int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, p := range part {
		mix(^uint64(0)) // part separator
		for _, idx := range p {
			mix(uint64(idx))
		}
	}
	return h
}

// Peer is one protocol participant. Create it with NewPeer and execute the
// protocol with RunSession; a Peer can run several sessions sequentially.
type Peer struct {
	cfg PeerConfig
}

// NewPeer validates and captures a peer configuration.
func NewPeer(cfg PeerConfig) *Peer {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	return &Peer{cfg: cfg}
}

// SessionResult is the local outcome of one completed session.
type SessionResult struct {
	// Assign is the final local assignment, parallel to PeerConfig.Local.
	Assign []int
	// Reps are the final global representatives as seen by this peer (all
	// peers converge to the same set on termination).
	Reps []*txn.Transaction
	// Rounds is the number of collaborative rounds executed.
	Rounds int
	// Report carries the per-round accounting.
	Report PeerReport
	// PendingAssigns are AssignMsg reports from peers that terminated
	// ahead of this one and whose messages overtook the final round
	// (coordinator only; consumed by RunPeer's collection step).
	PendingAssigns []AssignMsg
}

// RunSession executes the CXK-means protocol for this peer until
// convergence, MaxRounds, ctx cancellation or a protocol failure. Errors
// are *SessionError values wrapping the typed causes of phase.go;
// cancellation surfaces as ErrCanceled, observed at phase boundaries,
// blocking receives and between relocation passes.
func (p *Peer) RunSession(ctx context.Context) (*SessionResult, error) {
	s := newSession(p)
	if st := p.cfg.Initial; st != nil {
		if err := s.install(st); err != nil {
			return nil, &SessionError{Peer: p.cfg.ID, Round: s.round, Phase: s.phase, Err: err}
		}
	}
	for s.phase != PhaseDone {
		from := s.phase
		if err := s.step(ctx); err != nil {
			var rb *rollbackError
			if errors.As(err, &rb) {
				// A fabric hook rolled the session back (or delivered the
				// rejoin state): install it and re-enter the round loop.
				if ierr := s.install(rb.st); ierr != nil {
					return nil, &SessionError{Peer: p.cfg.ID, Round: s.round, Phase: s.phase, Err: ierr}
				}
				s.emit(EventPhaseChange, s.round, 0)
				continue
			}
			return nil, &SessionError{Peer: p.cfg.ID, Round: s.round, Phase: s.phase, Err: err}
		}
		if s.phase != from {
			s.emit(EventPhaseChange, s.round, 0)
		}
	}
	s.emit(EventDone, s.rounds, s.objective)
	return s.result(), nil
}

// session owns the run state of one protocol execution: the current phase
// and round, the representative sets, the reordering buffers and the
// per-round accounting. Each phase is one method; step dispatches on the
// current phase and the phase methods perform the transitions.
type session struct {
	p        *Peer
	phase    Phase
	round    int
	t0       time.Time // session start, for Event.Elapsed
	deadline time.Time // armed at every blocking-receive phase entry

	// objective is the peer's local clustering objective after the latest
	// relocation pass; maintained only when an Observer is configured.
	objective float64

	// Protocol state (Fig. 5 notation in the comments of peer fields).
	k          int
	m          int
	zs         [][]int
	zi         []int
	global     []*txn.Transaction // g_1..g_k
	localRp    []*txn.Transaction // ℓ_i1..ℓ_ik
	newLocalRp []*txn.Transaction // scratch for the current round
	sizes      []int              // |C_i_j|
	assign     []int              // local assignment
	rounds     int
	report     PeerReport
	// repIndex is the per-round inverted representative index (IndexReps);
	// rebuilt at each relocation phase over the fixed globals, its arrays
	// reused across rounds.
	repIndex *sim.RepIndex
	// seenStates fingerprints past local-representative states. Fig. 5
	// terminates on exact representative stability; greedy representative
	// refinement can cycle through a short orbit of states instead of
	// reaching a fixpoint, so a revisited state is treated as stable
	// (guaranteeing termination without changing converged results).
	seenStates map[uint64]struct{}
	// changed / bySender / anyContinue carry intermediate per-round state
	// between the Relocate, ExchangeLocals and RefineGlobals phases.
	changed     bool
	bySender    []map[int]WeightedWireRep
	anyContinue bool
	// delta carries the cross-round memoization caches (DeltaRounds):
	// per-cluster representative memos, per-document relocation anchors and
	// the global-representative merge memo. Reset on every rollback/install.
	delta *cluster.DeltaState
	// sentRepDigest / recvRepCache implement the delta representative
	// exchange: per (destination, cluster) the digest of the last full
	// representative shipped, and per (sender, cluster) the last full wire
	// representative received with its digest — so an UnchangedRep marker
	// resolves to the cached wire form. Both reset on install: the first
	// post-rollback round ships full representatives again on every link.
	sentRepDigest []map[int]uint64
	recvRepCache  []map[int]cachedWireRep

	// Message reordering buffers: peers may run ahead by one phase, so
	// envelopes are buffered per (round, type). A peer that terminates
	// ahead of this one may even deliver its post-session AssignMsg while
	// this session still drains the final round; those are parked in
	// pendAssign for the post-session consumer (see RunPeer).
	pendGlobal map[int][]GlobalRepsMsg
	pendLocal  map[int][]LocalRepsMsg
	pendAssign []AssignMsg

	// epoch is the membership epoch the session currently runs in. FIFO
	// holds per connection, not across connections, so after a membership
	// change a peer can receive new-epoch traffic before its own view
	// update (parked in pendFuture) or stale traffic from the abandoned
	// epoch (dropped, counted in staleDropped).
	epoch        int
	pendFuture   []p2p.Envelope
	staleDropped int64
}

func newSession(p *Peer) *session {
	s := &session{
		p:          p,
		phase:      PhaseStartup,
		t0:         time.Now(),
		m:          p.cfg.Transport.Peers(),
		epoch:      p.cfg.Epoch,
		seenStates: map[uint64]struct{}{},
		pendGlobal: map[int][]GlobalRepsMsg{},
		pendLocal:  map[int][]LocalRepsMsg{},
	}
	if p.cfg.Rejoin {
		s.phase = PhaseRejoin
	}
	if es, ok := p.cfg.Transport.(p2p.EpochSetter); ok {
		es.SetEpoch(p.cfg.ID, s.epoch)
	}
	return s
}

// emit publishes a progress event when an observer is configured.
func (s *session) emit(kind EventKind, round int, objective float64) {
	obs := s.p.cfg.Observer
	if obs == nil {
		return
	}
	sm, sb, rm, rb := s.report.TrafficTotals()
	ctrs := &s.p.cfg.Ctx.Counters
	obs(Event{
		Kind: kind, Peer: s.p.cfg.ID, Round: round, Phase: s.phase,
		Objective: objective,
		SentMsgs:  sm, SentBytes: sb, RecvMsgs: rm, RecvBytes: rb,
		PrunedRows:      ctrs.PrunedRows.Load(),
		ScratchReuses:   ctrs.ScratchReuses.Load(),
		IndexCandidates: ctrs.IndexCandidates.Load(),
		IndexSkipped:    ctrs.IndexSkipped.Load(),
		RepsReused:      ctrs.RepsReused.Load(),
		DocsSkipped:     ctrs.DocsSkipped.Load(),
		DeltaRepBytes:   ctrs.DeltaRepBytes.Load(),
		Elapsed:         time.Since(s.t0),
	})
}

// step executes the current phase. Phase methods mutate s.phase to advance
// the state machine. Cancellation is observed here at every phase edge, so
// an aborted session always stops on a clean protocol boundary.
func (s *session) step(ctx context.Context) error {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		default:
		}
	}
	switch s.phase {
	case PhaseStartup:
		return s.startup(ctx)
	case PhaseBroadcastGlobals:
		return s.broadcastGlobals(ctx)
	case PhaseRelocate:
		return s.relocate(ctx)
	case PhaseExchangeLocals:
		return s.exchangeLocals(ctx)
	case PhaseRefineGlobals:
		return s.refineGlobals(ctx)
	case PhaseRejoin:
		return s.rejoin(ctx)
	default:
		return fmt.Errorf("core: step in terminal phase %s", s.phase)
	}
}

// startup awaits N0's StartMsg, initializes the protocol state and selects
// the initial global representatives this peer is responsible for. Round
// messages from fast neighbours may overtake the StartMsg on a real network
// (FIFO holds per connection, not across connections), so they are buffered
// rather than rejected.
func (s *session) startup(ctx context.Context) error {
	s.armStartupDeadline()
	var startMsg StartMsg
awaitStart:
	for {
		env, err := s.recvEnvelope(ctx)
		if err != nil {
			return err
		}
		switch msg := env.Payload.(type) {
		case StartMsg:
			startMsg = msg
			break awaitStart
		case GlobalRepsMsg:
			s.pendGlobal[msg.Round] = append(s.pendGlobal[msg.Round], msg)
		case LocalRepsMsg:
			s.pendLocal[msg.Round] = append(s.pendLocal[msg.Round], msg)
		case AssignMsg:
			s.pendAssign = append(s.pendAssign, msg)
		default:
			return fmt.Errorf("%w: expected StartMsg, got %T", ErrUnexpectedMessage, env.Payload)
		}
	}
	id := s.p.cfg.ID
	if len(startMsg.Zs) != s.m || id >= s.m {
		return fmt.Errorf("%w: StartMsg for %d peers, transport has %d (peer %d)",
			ErrUnexpectedMessage, len(startMsg.Zs), s.m, id)
	}
	if e := s.p.cfg.Expect; e != nil {
		if err := e.check(startMsg); err != nil {
			return err
		}
	}
	s.k = startMsg.K
	s.zs = startMsg.Zs
	s.zi = startMsg.Zs[id]

	s.global = make([]*txn.Transaction, s.k)
	s.localRp = make([]*txn.Transaction, s.k)
	s.sizes = make([]int, s.k)
	s.assign = make([]int, len(s.p.cfg.Local))
	for i := range s.assign {
		s.assign[i] = cluster.TrashCluster
	}

	// Select q_i initial global representatives from distinct local trees.
	rng := rand.New(rand.NewSource(s.p.cfg.Seed))
	for idx, tr := range cluster.SelectInitial(s.p.cfg.Local, len(s.zi), rng) {
		s.global[s.zi[idx]] = tr
	}
	s.phase = PhaseBroadcastGlobals
	return nil
}

// broadcastGlobals is protocol phase 1: send the global representatives
// this peer is responsible for, then collect everyone else's. Its entry is
// the round boundary: the protocol state is quiescent (no message of the
// round sent yet), so this is where the fabric hook checkpoints — and where
// a coordinator admits pending joins, which may install a same-round state
// under a bumped epoch.
func (s *session) broadcastGlobals(ctx context.Context) error {
	if h := s.p.cfg.Hooks; h != nil {
		st, err := h.RoundBoundary(s.capture())
		if err != nil {
			return err
		}
		if st != nil {
			return &rollbackError{st: st}
		}
	}
	s.rounds = s.round + 1
	s.growRound(s.round)
	s.emit(EventRoundStart, s.round, 0)

	own := map[int]WireTxn{}
	for _, j := range s.zi {
		own[j] = toWire(s.items(), s.global[j])
	}
	id := s.p.cfg.ID
	for h := 0; h < s.m; h++ {
		if h == id {
			continue
		}
		if err := s.send(s.round, h, GlobalRepsMsg{From: id, Round: s.round, Reps: own}); err != nil {
			return err
		}
	}
	s.armDeadline()
	for received := 0; received < s.m-1; {
		msg, err := s.nextGlobal(ctx, s.round)
		if err != nil {
			return err
		}
		for j, w := range msg.Reps {
			s.global[j] = fromWire(s.items(), w)
		}
		received++
	}
	s.phase = PhaseRelocate
	return nil
}

// relocate is protocol phase 2: the local relocation loop against the fixed
// globals, followed by the local representative of every non-empty cluster.
// The relocation passes are cancellable: ctx is checked between passes and
// inside the parallel fork-join, so a canceled session aborts the compute
// section without finishing the corpus scan.
func (s *session) relocate(ctx context.Context) error {
	cfg := &s.p.cfg
	repCfg := cluster.RepConfig{Ctx: cfg.Ctx, Rule: cfg.Rule, Workers: cfg.Workers}
	if cfg.DeltaRounds && s.delta == nil {
		s.delta = cluster.NewDeltaState(s.k)
	}
	var relocErr error
	s.compute(s.round, func() {
		// The globals are fixed for the whole relocation loop, so one index
		// build serves every pass of this round. The session keeps the index
		// across rounds: rebuilds reuse its slabs and maps.
		var ix *sim.RepIndex
		if cfg.IndexReps {
			if s.repIndex == nil {
				s.repIndex = sim.NewRepIndex()
			}
			s.repIndex.Build(cfg.Ctx, s.global)
			ix = s.repIndex
		}
		for {
			var assign []int
			var err error
			if s.delta != nil {
				// The delta state spans rounds AND the passes of this loop:
				// pass 2 over unchanged globals short-circuits to the cached
				// anchors (every document skipped), reproducing the fixpoint
				// check at zero kernel cost.
				assign, err = s.delta.Relocate(ctx, cfg.Ctx, cfg.Local, s.global, cfg.Workers, ix)
			} else {
				assign, err = cluster.RelocateCtxIndexed(ctx, cfg.Ctx, cfg.Local, s.global, cfg.Workers, ix)
			}
			if err != nil {
				relocErr = fmt.Errorf("%w: %w", ErrCanceled, err)
				return
			}
			if intsEqual(assign, s.assign) {
				break
			}
			s.assign = assign
		}
		members := make([][]*txn.Transaction, s.k)
		for i, a := range s.assign {
			if a >= 0 {
				members[a] = append(members[a], cfg.Local[i])
			}
		}
		var memberFps []uint64
		if s.delta != nil {
			memberFps = s.delta.MemberFingerprints(s.assign)
		}
		for j := 0; j < s.k; j++ {
			s.sizes[j] = len(members[j])
			if len(members[j]) == 0 {
				s.newLocalRp[j] = nil
				continue
			}
			if s.delta != nil {
				s.newLocalRp[j] = s.delta.LocalRep(repCfg, j, memberFps[j], members[j])
				continue
			}
			s.newLocalRp[j] = cluster.ComputeLocalRepresentative(repCfg, members[j])
		}
	})
	if relocErr != nil {
		return relocErr
	}
	if cfg.Observer != nil {
		// Outside the compute section on purpose: the per-round objective
		// is instrumentation and must not inflate ComputeByRound (and with
		// it the paper's SimulatedTime metric).
		s.objective = cluster.SSEWorkers(cfg.Ctx, cfg.Local, s.assign, s.global, cfg.Workers)
	}
	s.changed = !repSliceEqual(s.newLocalRp, s.localRp)
	copy(s.localRp, s.newLocalRp)
	if s.changed {
		fp := fingerprintReps(s.localRp)
		if _, cycle := s.seenStates[fp]; cycle {
			s.changed = false
		}
		s.seenStates[fp] = struct{}{}
	}
	s.phase = PhaseExchangeLocals
	return nil
}

// exchangeLocals is protocol phase 3: exchange local representatives (or a
// done broadcast) and collect the other peers' for own clusters. When every
// peer is done the session terminates; the flags are identical at every
// peer, so termination is consistent.
func (s *session) exchangeLocals(ctx context.Context) error {
	id := s.p.cfg.ID
	flag := FlagContinue
	if !s.changed {
		flag = FlagDone
	}
	for h := 0; h < s.m; h++ {
		if h == id {
			continue
		}
		msg := LocalRepsMsg{From: id, Round: s.round, Flag: flag}
		if s.changed {
			reps := map[int]WeightedWireRep{}
			var unchanged map[int]UnchangedRep
			for _, j := range s.zs[h] {
				if s.localRp[j] == nil {
					continue
				}
				w := toWire(s.items(), s.localRp[j])
				if s.p.cfg.DeltaRounds {
					if s.sentRepDigest == nil {
						s.sentRepDigest = make([]map[int]uint64, s.m)
					}
					if s.sentRepDigest[h] == nil {
						s.sentRepDigest[h] = map[int]uint64{}
					}
					dig := wireDigest(w)
					if prev, ok := s.sentRepDigest[h][j]; ok && prev == dig {
						// The receiver still holds this exact wire form: ship a
						// digest marker instead of the full representative. The
						// weight travels regardless — cluster sizes can change
						// while the representative does not.
						if unchanged == nil {
							unchanged = map[int]UnchangedRep{}
						}
						unchanged[j] = UnchangedRep{Weight: s.sizes[j], Digest: dig}
						s.p.cfg.Ctx.Counters.DeltaRepBytes.Add(16 + WireTxnSize(s.items(), w) - unchangedRepSize)
						continue
					}
					s.sentRepDigest[h][j] = dig
				}
				reps[j] = WeightedWireRep{Rep: w, Weight: s.sizes[j]}
			}
			msg.Reps = reps
			msg.Unchanged = unchanged
		}
		if err := s.send(s.round, h, msg); err != nil {
			return err
		}
	}

	// Per-sender slots keep the representative input order deterministic
	// regardless of message arrival order (reproducibility for a fixed
	// seed; floating-point aggregation is order-sensitive).
	s.bySender = make([]map[int]WeightedWireRep, s.m)
	s.anyContinue = s.changed
	s.armDeadline()
	for received := 0; received < s.m-1; {
		msg, err := s.nextLocal(ctx, s.round)
		if err != nil {
			return err
		}
		if msg.Flag == FlagContinue {
			s.anyContinue = true
		}
		reps, err := s.expandLocalReps(msg)
		if err != nil {
			return err
		}
		s.bySender[msg.From] = reps
		received++
	}
	s.emit(EventRepsExchanged, s.round, 0)

	if !s.anyContinue {
		s.emit(EventRoundEnd, s.round, s.objective)
		s.phase = PhaseDone // V_1 = … = V_m = done
		return nil
	}
	s.phase = PhaseRefineGlobals
	return nil
}

// expandLocalReps resolves a received LocalRepsMsg into the full per-cluster
// representative map, expanding delta-exchange markers from the per-sender
// cache and refreshing that cache with every full representative received.
// A marker with no matching cache entry is a protocol violation — the sender
// believes it shipped a full representative earlier that this peer never
// cached — and fails the session rather than risking a silently divergent
// refinement.
func (s *session) expandLocalReps(msg LocalRepsMsg) (map[int]WeightedWireRep, error) {
	if !s.p.cfg.DeltaRounds {
		return msg.Reps, nil
	}
	if s.recvRepCache == nil {
		s.recvRepCache = make([]map[int]cachedWireRep, s.m)
	}
	cache := s.recvRepCache[msg.From]
	if cache == nil {
		cache = map[int]cachedWireRep{}
		s.recvRepCache[msg.From] = cache
	}
	for j, wr := range msg.Reps {
		cache[j] = cachedWireRep{wire: wr.Rep, dig: wireDigest(wr.Rep)}
	}
	if len(msg.Unchanged) == 0 {
		return msg.Reps, nil
	}
	// In-process transports deliver the sender's own map object: merge into a
	// fresh map, never into msg.Reps.
	merged := make(map[int]WeightedWireRep, len(msg.Reps)+len(msg.Unchanged))
	for j, wr := range msg.Reps {
		merged[j] = wr
	}
	for j, u := range msg.Unchanged {
		c, ok := cache[j]
		if !ok || c.dig != u.Digest {
			return nil, fmt.Errorf("%w: delta marker for cluster %d from peer %d has no matching cached representative",
				ErrUnexpectedMessage, j, msg.From)
		}
		merged[j] = WeightedWireRep{Rep: c.wire, Weight: u.Weight}
	}
	return merged, nil
}

// refineGlobals is protocol phase 4: compute the global representatives for
// own clusters from the m local representatives in peer-id order, then
// advance the round.
func (s *session) refineGlobals(ctx context.Context) error {
	_ = ctx // pure local compute; cancellation is observed at the next receive
	cfg := &s.p.cfg
	repCfg := cluster.RepConfig{Ctx: cfg.Ctx, Rule: cfg.Rule, Workers: cfg.Workers}
	s.compute(s.round, func() {
		for _, j := range s.zi {
			var reps []cluster.WeightedRep
			for h := 0; h < s.m; h++ {
				if h == cfg.ID {
					if s.localRp[j] != nil {
						reps = append(reps, cluster.WeightedRep{Rep: s.localRp[j], Weight: s.sizes[j]})
					}
					continue
				}
				if wr, ok := s.bySender[h][j]; ok {
					reps = append(reps, cluster.WeightedRep{Rep: fromWire(s.items(), wr.Rep), Weight: wr.Weight})
				}
			}
			if len(reps) == 0 {
				continue // keep the previous global representative
			}
			var g *txn.Transaction
			if s.delta != nil {
				g = s.delta.GlobalRep(repCfg, j, reps)
			} else {
				g = cluster.ComputeGlobalRepresentative(repCfg, reps)
			}
			if g != nil {
				s.global[j] = g
			}
		}
	})
	s.bySender = nil
	s.emit(EventRoundEnd, s.round, s.objective)
	s.round++
	if s.round >= s.p.cfg.MaxRounds {
		s.phase = PhaseDone
		return nil
	}
	s.phase = PhaseBroadcastGlobals
	return nil
}

// result snapshots the session outcome.
func (s *session) result() *SessionResult {
	return &SessionResult{
		Assign:         append([]int(nil), s.assign...),
		Reps:           append([]*txn.Transaction(nil), s.global...),
		Rounds:         s.rounds,
		Report:         s.report,
		PendingAssigns: s.pendAssign,
	}
}

// armDeadline starts the receive deadline for the current blocking phase.
func (s *session) armDeadline() {
	if s.p.cfg.RoundTimeout > 0 {
		s.deadline = time.Now().Add(s.p.cfg.RoundTimeout)
	} else {
		s.deadline = time.Time{}
	}
}

// armStartupDeadline starts the (typically longer) deadline for the wait on
// N0's StartMsg: peer processes boot in any order, so the first wait must
// tolerate the whole cluster's spin-up, not just one round's slack.
func (s *session) armStartupDeadline() {
	st := s.p.cfg.StartupTimeout
	switch {
	case st > 0:
		s.deadline = time.Now().Add(st)
	case st == 0:
		s.armDeadline()
	default:
		s.deadline = time.Time{}
	}
}

// recvEnvelope blocks for the next protocol envelope of the current epoch,
// honouring ctx and the armed phase deadline. Control-plane payloads are
// routed to the fabric hooks from here — any phase, any epoch — and never
// surface to the protocol state machine; a hook that returns a state makes
// recvEnvelope fail with the internal rollback signal, unwound by
// RunSession. Stale-epoch protocol traffic is dropped, future-epoch traffic
// parked until the session catches up.
func (s *session) recvEnvelope(ctx context.Context) (p2p.Envelope, error) {
	ch := s.p.cfg.Transport.Recv(s.p.cfg.ID)
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		if env, ok := s.takeFuture(); ok {
			return env, nil
		}
		var timer *time.Timer
		var timerC <-chan time.Time
		if !s.deadline.IsZero() {
			d := time.Until(s.deadline)
			if d <= 0 {
				if err := s.deadlineExpired(); err != nil {
					return p2p.Envelope{}, err
				}
				continue
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case env, ok := <-ch:
			if timer != nil {
				timer.Stop()
			}
			if !ok {
				return p2p.Envelope{}, ErrTransportClosed
			}
			if _, ctl := env.Payload.(ControlPayload); ctl {
				if err := s.handleControl(env); err != nil {
					return p2p.Envelope{}, err
				}
				continue
			}
			if env.Epoch != p2p.EpochAny {
				if env.Epoch < s.epoch {
					s.staleDropped++
					continue
				}
				if env.Epoch > s.epoch {
					s.pendFuture = append(s.pendFuture, env)
					continue
				}
			}
			return env, nil
		case <-ctxDone:
			if timer != nil {
				timer.Stop()
			}
			return p2p.Envelope{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		case <-timerC:
			if err := s.deadlineExpired(); err != nil {
				return p2p.Envelope{}, err
			}
		}
	}
}

// handleControl routes a control-plane envelope to the fabric hooks. A
// session without hooks cannot participate in membership changes, so
// control traffic reaching it is a deployment mismatch and fails loudly.
func (s *session) handleControl(env p2p.Envelope) error {
	h := s.p.cfg.Hooks
	if h == nil {
		return fmt.Errorf("%w: control message %T on a session without fabric hooks",
			ErrUnexpectedMessage, env.Payload)
	}
	st, err := h.Control(env)
	if err != nil {
		return err
	}
	if st != nil {
		return &rollbackError{st: st}
	}
	return nil
}

// deadlineExpired consults the fabric hooks when a blocking receive ran out
// of time. Without hooks the legacy behaviour holds: the session fails with
// ErrRoundDeadline. With hooks, (nil, nil) grants one more timeout window
// (the hook does its own accounting — e.g. reporting a suspect to the
// coordinator and bounding the recovery wait), a state rolls back, an error
// fails the session.
func (s *session) deadlineExpired() error {
	h := s.p.cfg.Hooks
	if h == nil {
		return ErrRoundDeadline
	}
	st, err := h.Deadline(s.phase, s.round)
	if err != nil {
		return err
	}
	if st != nil {
		return &rollbackError{st: st}
	}
	s.armDeadline()
	return nil
}

// takeFuture scans the future-epoch parking lot for envelopes the session
// has caught up to; entries whose epoch fell behind in the meantime are
// dropped.
func (s *session) takeFuture() (p2p.Envelope, bool) {
	for i := 0; i < len(s.pendFuture); i++ {
		env := s.pendFuture[i]
		if env.Epoch < s.epoch {
			s.pendFuture = append(s.pendFuture[:i], s.pendFuture[i+1:]...)
			s.staleDropped++
			i--
			continue
		}
		if env.Epoch == s.epoch {
			s.pendFuture = append(s.pendFuture[:i], s.pendFuture[i+1:]...)
			return env, true
		}
	}
	return p2p.Envelope{}, false
}

// rejoin parks protocol traffic while the fabric negotiates this peer's
// admission; the session leaves this phase only through a rollback install
// (the recovery state arrives via Hooks.Control) or a failure. Protocol
// messages of the admission epoch race ahead of the state transfer on other
// connections, so they are parked rather than rejected — takeFuture replays
// them once the state is installed.
func (s *session) rejoin(ctx context.Context) error {
	if s.p.cfg.Hooks == nil {
		return fmt.Errorf("%w: rejoin requires fabric hooks", ErrUnexpectedMessage)
	}
	s.armStartupDeadline()
	for {
		env, err := s.recvEnvelope(ctx)
		if err != nil {
			return err
		}
		// Anything surfacing here carries the session's pre-admission epoch:
		// leftovers of the slot's previous occupant. They predate the view
		// the joiner will be admitted under, and install drops the buffers —
		// parking them is bookkeeping, not acceptance. (New-epoch traffic
		// racing ahead of the state transfer is parked inside recvEnvelope
		// and replayed by takeFuture after the install.)
		switch msg := env.Payload.(type) {
		case GlobalRepsMsg:
			s.pendGlobal[msg.Round] = append(s.pendGlobal[msg.Round], msg)
		case LocalRepsMsg:
			s.pendLocal[msg.Round] = append(s.pendLocal[msg.Round], msg)
		case AssignMsg, StartMsg:
			// Superseded by the incoming state transfer.
		default:
			return fmt.Errorf("%w: %T while awaiting rejoin state", ErrUnexpectedMessage, env.Payload)
		}
	}
}

// growRound ensures the per-round accounting slices cover the given round.
// Idempotent: messages can arrive one phase ahead of the local round.
func (s *session) growRound(round int) {
	for len(s.report.ComputeByRound) <= round {
		s.report.ComputeByRound = append(s.report.ComputeByRound, 0)
		s.report.SentBytesByRound = append(s.report.SentBytesByRound, 0)
		s.report.RecvBytesByRound = append(s.report.RecvBytesByRound, 0)
		s.report.SentMsgsByRound = append(s.report.SentMsgsByRound, 0)
		s.report.RecvMsgsByRound = append(s.report.RecvMsgsByRound, 0)
	}
	s.report.LocalTransactions = len(s.p.cfg.Local)
	if s.newLocalRp == nil {
		s.newLocalRp = make([]*txn.Transaction, s.k)
	}
}

// compute runs fn under the optional compute token, accounting its wall
// time to the given round.
func (s *session) compute(round int, fn func()) {
	if tok := s.p.cfg.ComputeToken; tok != nil {
		<-tok
		defer func() { tok <- struct{}{} }()
	}
	t0 := time.Now()
	fn()
	s.report.ComputeByRound[round] += time.Since(t0)
}

// send delivers a payload and accounts it; transport failures fail the
// session (a silent drop would leave the receiving peer to starve) unless
// fabric hooks decide the failure is survivable — then the message is
// dropped unaccounted and the deadline/recovery machinery reconciles.
func (s *session) send(round, to int, payload any) error {
	if err := s.p.cfg.Transport.Send(s.p.cfg.ID, to, payload); err != nil {
		if h := s.p.cfg.Hooks; h != nil {
			if herr := h.SendFailed(to, round, err); herr != nil {
				return herr
			}
			return nil
		}
		return fmt.Errorf("%w: to peer %d: %v", ErrSend, to, err)
	}
	s.report.SentMsgsByRound[round]++
	s.report.SentBytesByRound[round] += s.size(payload)
	return nil
}

func (s *session) size(payload any) int64 {
	if s.p.cfg.Sizer == nil {
		return 0
	}
	return s.p.cfg.Sizer(payload)
}

// items is the peer's interning table (shared in-process, private per OS
// process).
func (s *session) items() *txn.ItemTable { return s.p.cfg.Ctx.Items }

func (s *session) recvAccount(round int, env p2p.Envelope) {
	if round < 0 || s.k == 0 {
		return // startup message, before the protocol state exists
	}
	s.growRound(round)
	s.report.RecvMsgsByRound[round]++
	s.report.RecvBytesByRound[round] += s.size(env.Payload)
}

// nextGlobal returns the next GlobalRepsMsg for the given round, buffering
// out-of-phase messages.
func (s *session) nextGlobal(ctx context.Context, round int) (GlobalRepsMsg, error) {
	if q := s.pendGlobal[round]; len(q) > 0 {
		msg := q[0]
		s.pendGlobal[round] = q[1:]
		return msg, nil
	}
	for {
		env, err := s.recvEnvelope(ctx)
		if err != nil {
			return GlobalRepsMsg{}, err
		}
		switch msg := env.Payload.(type) {
		case GlobalRepsMsg:
			s.recvAccount(msg.Round, env)
			if msg.Round == round {
				return msg, nil
			}
			s.pendGlobal[msg.Round] = append(s.pendGlobal[msg.Round], msg)
		case LocalRepsMsg:
			s.recvAccount(msg.Round, env)
			s.pendLocal[msg.Round] = append(s.pendLocal[msg.Round], msg)
		case AssignMsg:
			s.pendAssign = append(s.pendAssign, msg)
		default:
			return GlobalRepsMsg{}, fmt.Errorf("%w: %T while awaiting global reps", ErrUnexpectedMessage, env.Payload)
		}
	}
}

// nextLocal returns the next LocalRepsMsg for the given round.
func (s *session) nextLocal(ctx context.Context, round int) (LocalRepsMsg, error) {
	if q := s.pendLocal[round]; len(q) > 0 {
		msg := q[0]
		s.pendLocal[round] = q[1:]
		return msg, nil
	}
	for {
		env, err := s.recvEnvelope(ctx)
		if err != nil {
			return LocalRepsMsg{}, err
		}
		switch msg := env.Payload.(type) {
		case LocalRepsMsg:
			s.recvAccount(msg.Round, env)
			if msg.Round == round {
				return msg, nil
			}
			s.pendLocal[msg.Round] = append(s.pendLocal[msg.Round], msg)
		case GlobalRepsMsg:
			s.recvAccount(msg.Round, env)
			s.pendGlobal[msg.Round] = append(s.pendGlobal[msg.Round], msg)
		case AssignMsg:
			s.pendAssign = append(s.pendAssign, msg)
		default:
			return LocalRepsMsg{}, fmt.Errorf("%w: %T while awaiting local reps", ErrUnexpectedMessage, env.Payload)
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fingerprintReps hashes a representative slice (FNV-1a over item ids and
// separators) for cycle detection.
func fingerprintReps(reps []*txn.Transaction) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, rep := range reps {
		mix(^uint64(0)) // cluster separator
		if rep == nil {
			continue
		}
		for _, id := range rep.Items {
			mix(uint64(id))
		}
	}
	return h
}

func repSliceEqual(a, b []*txn.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch {
		case a[i] == nil && b[i] == nil:
		case a[i] == nil || b[i] == nil:
			return false
		case !a[i].Equal(b[i]):
			return false
		}
	}
	return true
}
