package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"xmlclust/internal/p2p"
)

// testHooks adapts closures to the Hooks interface.
type testHooks struct {
	onBoundary   func(st *SessionState) (*SessionState, error)
	onControl    func(env p2p.Envelope) (*SessionState, error)
	onDeadline   func(phase Phase, round int) (*SessionState, error)
	onSendFailed func(to, round int, err error) error
}

func (h *testHooks) SendFailed(to, round int, err error) error {
	if h.onSendFailed != nil {
		return h.onSendFailed(to, round, err)
	}
	return err
}

func (h *testHooks) RoundBoundary(st *SessionState) (*SessionState, error) {
	if h.onBoundary != nil {
		return h.onBoundary(st)
	}
	return nil, nil
}

func (h *testHooks) Control(env p2p.Envelope) (*SessionState, error) {
	if h.onControl != nil {
		return h.onControl(env)
	}
	return nil, nil
}

func (h *testHooks) Deadline(phase Phase, round int) (*SessionState, error) {
	if h.onDeadline != nil {
		return h.onDeadline(phase, round)
	}
	return nil, nil
}

// testCtl is a minimal control-plane payload for exercising Hooks.Control.
type testCtl struct{ N int }

func (testCtl) SessionControl() {}

// runSolo runs a single-peer session to completion, capturing the boundary
// state of every round through the fabric hook.
func runSolo(t *testing.T, seed int64) (*SessionResult, []*SessionState) {
	t.Helper()
	corpus, _ := miniCorpus(t, 6)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, seed)
	var states []*SessionState
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.Seed = seed
		cfg.Hooks = &testHooks{onBoundary: func(st *SessionState) (*SessionState, error) {
			states = append(states, st)
			return nil, nil
		}}
	})
	if err := tr.Send(0, 0, startMsgFor(2, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, states
}

// TestSessionStateGobRoundTrip: the checkpoint payload must survive gob
// byte-identically — the fabric persists and replicates exactly this. The
// check re-encodes the decoded state and compares encodings (gob elides
// empty fields, so value comparison would trip over nil-vs-empty slices
// that are semantically identical).
func TestSessionStateGobRoundTrip(t *testing.T) {
	_, states := runSolo(t, 11)
	if len(states) == 0 {
		t.Fatal("no round boundaries observed")
	}
	for i, st := range states {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatalf("encode state %d: %v", i, err)
		}
		var back SessionState
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
			t.Fatalf("decode state %d: %v", i, err)
		}
		var again bytes.Buffer
		if err := gob.NewEncoder(&again).Encode(&back); err != nil {
			t.Fatalf("re-encode state %d: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("state %d changed across gob round-trip", i)
		}
	}
}

// TestSessionResumeFromEveryBoundary: installing the state captured at any
// round boundary into a fresh session must replay the remaining rounds to
// the same final assignments, representatives and round count — the
// determinism contract checkpoint/restore recovery rests on.
func TestSessionResumeFromEveryBoundary(t *testing.T) {
	ref, states := runSolo(t, 11)
	corpus, _ := miniCorpus(t, 6)
	part := EqualPartition(len(corpus.Transactions), 1, 11)
	for i, st := range states {
		tr := p2p.NewChanTransport(1, nil)
		p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
			cfg.Seed = 11
			cfg.Initial = st
			cfg.Hooks = &testHooks{}
		})
		res, err := p.RunSession(context.Background())
		tr.Close()
		if err != nil {
			t.Fatalf("resume from boundary %d: %v", i, err)
		}
		if res.Rounds != ref.Rounds {
			t.Fatalf("resume from boundary %d: %d rounds, reference %d", i, res.Rounds, ref.Rounds)
		}
		if !intsEqual(res.Assign, ref.Assign) {
			t.Fatalf("resume from boundary %d diverged in assignments", i)
		}
		if !repSliceEqual(res.Reps, ref.Reps) {
			t.Fatalf("resume from boundary %d diverged in representatives", i)
		}
	}
}

// TestSessionRollbackMidRun: a hook that rolls the session back to an
// earlier boundary must not change the converged outcome (the protocol is
// deterministic, so the replayed rounds reproduce themselves).
func TestSessionRollbackMidRun(t *testing.T) {
	ref, states := runSolo(t, 11)
	if len(states) < 2 {
		t.Skip("session converged before a rollback target existed")
	}
	corpus, _ := miniCorpus(t, 6)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 11)
	rolled := false
	var saved *SessionState
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.Seed = 11
		cfg.Hooks = &testHooks{onBoundary: func(st *SessionState) (*SessionState, error) {
			if st.Round == 0 && saved == nil {
				saved = st
			}
			if st.Round == 1 && !rolled {
				rolled = true
				return saved, nil
			}
			return nil, nil
		}}
	})
	if err := tr.Send(0, 0, startMsgFor(2, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rolled {
		t.Fatal("rollback hook never fired")
	}
	if !intsEqual(res.Assign, ref.Assign) || !repSliceEqual(res.Reps, ref.Reps) {
		t.Fatal("rollback changed the converged outcome")
	}
}

// TestSessionRejoinInstallsControlState: a peer launched in PhaseRejoin
// must park protocol traffic until its hook turns a control message into an
// installable state, then replay to the reference outcome.
func TestSessionRejoinInstallsControlState(t *testing.T) {
	ref, states := runSolo(t, 11)
	corpus, _ := miniCorpus(t, 6)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 11)
	st := states[len(states)-1]
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.Seed = 11
		cfg.Rejoin = true
		cfg.Hooks = &testHooks{onControl: func(env p2p.Envelope) (*SessionState, error) {
			if _, ok := env.Payload.(testCtl); ok {
				return st, nil
			}
			return nil, nil
		}}
	})
	if err := tr.Send(0, 0, testCtl{N: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(res.Assign, ref.Assign) || !repSliceEqual(res.Reps, ref.Reps) {
		t.Fatal("rejoined session diverged from the reference outcome")
	}
}

// TestSessionRejoinWithoutHooksFails: PhaseRejoin without a fabric layer
// can never terminate; the session must reject the configuration.
func TestSessionRejoinWithoutHooksFails(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) { cfg.Rejoin = true })
	_, err := p.RunSession(context.Background())
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Fatalf("want ErrUnexpectedMessage, got %v", err)
	}
}

// TestSessionEpochFiltering: protocol traffic from an older membership
// epoch is dropped, newer traffic parked until the session catches up;
// epoch-less control frames pass regardless.
func TestSessionEpochFiltering(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	ctlSeen := 0
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.Epoch = 1
		cfg.Hooks = &testHooks{onControl: func(env p2p.Envelope) (*SessionState, error) {
			ctlSeen++
			return nil, nil
		}}
	})
	s := newSession(p)
	if s.epoch != 1 {
		t.Fatalf("session epoch = %d, want 1", s.epoch)
	}
	rep := toWire(corpus.Items, corpus.Transactions[part[1][0]])
	// Stale (epoch 0), future (epoch 2) and a control message precede the
	// coordinator's current-epoch StartMsg.
	tr.SetEpoch(1, 0)
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 0, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	tr.SetEpoch(1, 2)
	if err := tr.Send(1, 0, GlobalRepsMsg{From: 1, Round: 5, Reps: map[int]WireTxn{1: rep}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, 0, testCtl{N: 7}); err != nil {
		t.Fatal(err)
	}
	tr.SetEpoch(0, 1)
	if err := tr.Send(0, 0, startMsgFor(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.phase != PhaseBroadcastGlobals {
		t.Fatalf("after startup: %s", s.phase)
	}
	if s.staleDropped != 1 {
		t.Errorf("staleDropped = %d, want 1", s.staleDropped)
	}
	if len(s.pendFuture) != 1 || s.pendFuture[0].Epoch != 2 {
		t.Errorf("future-epoch envelope not parked: %+v", s.pendFuture)
	}
	if ctlSeen != 1 {
		t.Errorf("control hook saw %d messages, want 1", ctlSeen)
	}
	// Once the session advances to epoch 2, the parked envelope surfaces.
	s.epoch = 2
	env, ok := s.takeFuture()
	if !ok || env.Epoch != 2 {
		t.Fatalf("parked envelope not released at epoch 2: ok=%v %+v", ok, env)
	}
}

// TestSessionDeadlineHookExtends: with fabric hooks the deadline expiry is
// a failure-detection event, not an immediate session failure — the hook
// may grant extra windows before giving up with its own error.
func TestSessionDeadlineHookExtends(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := p2p.NewChanTransport(1, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 1, 1)
	wantErr := errors.New("suspect confirmed dead")
	calls := 0
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) {
		cfg.RoundTimeout = 30 * time.Millisecond
		cfg.Hooks = &testHooks{onDeadline: func(phase Phase, round int) (*SessionState, error) {
			calls++
			if calls < 3 {
				return nil, nil
			}
			return nil, wantErr
		}}
	})
	// No StartMsg ever arrives: the startup wait must expire three times.
	_, err := p.RunSession(context.Background())
	if !errors.Is(err, wantErr) {
		t.Fatalf("want the hook's error, got %v", err)
	}
	if calls != 3 {
		t.Errorf("deadline hook called %d times, want 3", calls)
	}
}
