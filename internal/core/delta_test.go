package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"xmlclust/internal/dataset"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

func runCXKDelta(t testing.TB, cx *sim.Context, corpus *txn.Corpus, k, m int, seed int64, workers int, delta, indexed bool) *Result {
	t.Helper()
	res, err := Run(context.Background(), cx, corpus, Options{
		K: k, Params: cx.Params, Peers: m, Workers: workers,
		Partition:   EqualPartition(len(corpus.Transactions), m, seed),
		Seed:        seed,
		DeltaRounds: delta, IndexReps: indexed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunDeltaEquivalence asserts the collaborative engine produces
// byte-identical results — assignments, rounds AND representative item
// sequences — with the delta-round engine on and off, across network sizes,
// worker counts, both relocation paths and several corpora. This is the
// session-level byte-identity gate of the delta rounds (the relocation
// anchors, the representative memo and the digest-marker exchange all run
// in the delta configuration here).
func TestRunDeltaEquivalence(t *testing.T) {
	type corpusCase struct {
		name   string
		corpus *txn.Corpus
		k      int
	}
	mini, _ := miniCorpus(t, 8)
	cases := []corpusCase{{"two-topic", mini, 2}}
	for _, ds := range []struct {
		name string
		docs int
	}{{"DBLP", 20}, {"IEEE", 6}} {
		gen, ok := dataset.ByName(ds.name)
		if !ok {
			t.Fatalf("unknown dataset %q", ds.name)
		}
		col := gen(dataset.Spec{Docs: ds.docs, Seed: 99})
		cases = append(cases, corpusCase{ds.name, col.BuildCorpus(dataset.ByHybrid, 24, 1), col.K(dataset.ByHybrid)})
	}
	for _, c := range cases {
		cx := sim.NewContext(c.corpus, sim.Params{F: 0.5, Gamma: 0.7})
		for _, m := range []int{1, 3} {
			plain := runCXKDelta(t, cx, c.corpus, c.k, m, 9, 1, false, false)
			for _, workers := range []int{1, 4} {
				for _, indexed := range []bool{false, true} {
					got := runCXKDelta(t, cx, c.corpus, c.k, m, 9, workers, true, indexed)
					label := fmt.Sprintf("%s m=%d workers=%d indexed=%v delta", c.name, m, workers, indexed)
					assertResultsEqual(t, label, plain, got)
				}
			}
		}
	}
}

// TestRunDeltaCountersAndTraffic pins the observable effects of the delta
// engine on a multi-peer run: the reuse/skip counters move, unchanged
// representatives ship as digest markers (modeled bytes saved), and the
// total modeled traffic drops below the full-shipping run's.
func TestRunDeltaCountersAndTraffic(t *testing.T) {
	gen, _ := dataset.ByName("DBLP")
	col := gen(dataset.Spec{Docs: 20, Seed: 99})
	corpus := col.BuildCorpus(dataset.ByHybrid, 24, 1)
	k := col.K(dataset.ByHybrid)

	cxOff := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.7})
	off := runCXKDelta(t, cxOff, corpus, k, 3, 9, 1, false, false)
	if got := cxOff.Counters.RepsReused.Load() + cxOff.Counters.DocsSkipped.Load() + cxOff.Counters.DeltaRepBytes.Load(); got != 0 {
		t.Fatalf("delta-off run moved delta counters: %d", got)
	}

	cxOn := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.7})
	on := runCXKDelta(t, cxOn, corpus, k, 3, 9, 1, true, false)
	assertResultsEqual(t, "counters run", off, on)
	if on.Rounds < 3 {
		t.Skipf("run converged in %d rounds; too short to exercise the caches", on.Rounds)
	}
	if v := cxOn.Counters.DocsSkipped.Load(); v == 0 {
		t.Error("DocsSkipped did not move on a multi-round delta run")
	}
	if v := cxOn.Counters.RepsReused.Load(); v == 0 {
		t.Error("RepsReused did not move on a multi-round delta run")
	}
	if v := cxOn.Counters.DeltaRepBytes.Load(); v <= 0 {
		t.Error("DeltaRepBytes did not move: no representative shipped as a digest marker")
	}
	offMsgs, offBytes := off.TotalTraffic()
	onMsgs, onBytes := on.TotalTraffic()
	if onMsgs != offMsgs {
		t.Errorf("delta exchange changed the message count: %d vs %d", onMsgs, offMsgs)
	}
	if onBytes >= offBytes {
		t.Errorf("delta exchange did not reduce modeled traffic: %d B vs %d B", onBytes, offBytes)
	}
}

// TestRunPeerDeltaMismatchFails drives the wire-protocol agreement check:
// a peer that disables delta rounds while the coordinator announces the
// delta exchange (or vice versa) must fail fast with ErrConfigMismatch
// instead of stalling on markers it cannot expand.
func TestRunPeerDeltaMismatchFails(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, Sizer(corpus.Items))
	defer tr.Close()
	errc := make(chan error, 2)
	for id, delta := range map[int]bool{0: true, 1: false} {
		go func(id int, delta bool) {
			cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
			_, err := RunPeer(context.Background(), cx, corpus, Options{
				K: 2, Params: cx.Params, Peers: 2,
				Partition: EqualPartition(len(corpus.Transactions), 2, 3),
				Seed:      3, Transport: tr, RoundTimeout: 2 * time.Second,
				DeltaRounds: delta,
			}, id)
			errc <- err
		}(id, delta)
	}
	sawMismatch := false
	for i := 0; i < 2; i++ {
		err := <-errc
		if err == nil {
			t.Fatal("mismatched delta modes must not produce a result")
		}
		if errors.Is(err, ErrConfigMismatch) {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Error("no peer reported ErrConfigMismatch")
	}
}

// TestDeltaMarkerWithoutCacheFails pins the receiver-side protocol error: a
// digest marker for a representative the receiver never cached (or whose
// digest disagrees) is a protocol violation, not something to paper over.
func TestDeltaMarkerWithoutCacheFails(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	tr := p2p.NewChanTransport(2, nil)
	defer tr.Close()
	part := EqualPartition(len(corpus.Transactions), 2, 1)
	p := testPeer(corpus, tr, 0, part, func(cfg *PeerConfig) { cfg.DeltaRounds = true })
	s := newSession(p)
	start := startMsgFor(2, 2)
	start.DeltaExchange = true
	if err := tr.Send(0, 0, start); err != nil {
		t.Fatal(err)
	}
	if err := s.step(context.Background()); err != nil {
		t.Fatal(err)
	}

	// No full representative for cluster 0 was ever received from peer 1:
	// the marker has nothing to expand.
	_, err := s.expandLocalReps(LocalRepsMsg{
		From: 1, Round: 0,
		Unchanged: map[int]UnchangedRep{0: {Weight: 2, Digest: 0xdead}},
	})
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Fatalf("stray marker: want ErrUnexpectedMessage, got %v", err)
	}

	// A cached representative with a disagreeing digest is just as fatal.
	w := toWire(corpus.Items, corpus.Transactions[0])
	if _, err := s.expandLocalReps(LocalRepsMsg{
		From: 1, Round: 0,
		Reps: map[int]WeightedWireRep{0: {Rep: w, Weight: 2}},
	}); err != nil {
		t.Fatalf("full representative must expand cleanly: %v", err)
	}
	_, err = s.expandLocalReps(LocalRepsMsg{
		From: 1, Round: 1,
		Unchanged: map[int]UnchangedRep{0: {Weight: 2, Digest: wireDigest(w) + 1}},
	})
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Fatalf("digest mismatch: want ErrUnexpectedMessage, got %v", err)
	}

	// The matching digest expands to the cached representative with the
	// marker's weight.
	reps, err := s.expandLocalReps(LocalRepsMsg{
		From: 1, Round: 1,
		Unchanged: map[int]UnchangedRep{0: {Weight: 5, Digest: wireDigest(w)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reps[0]
	if !ok || got.Weight != 5 || wireDigest(got.Rep) != wireDigest(w) {
		t.Fatalf("marker expansion: got %+v, want cached rep at weight 5", got)
	}
}
