package core

import (
	"fmt"
	"sort"

	"xmlclust/internal/p2p"
	"xmlclust/internal/txn"
)

// SessionState is the restorable protocol state of a peer session at a
// round boundary (the entry of PhaseBroadcastGlobals, before any message of
// the round is sent). It is the unit of checkpointing and recovery for the
// elastic peer fabric: gob-encodable and process-portable — representatives
// travel in wire form (flattened raw item ids), so a state captured in one
// OS process installs into a fresh process that loaded the same corpus and
// replays the remaining rounds byte-identically.
type SessionState struct {
	// Epoch is the membership epoch the state belongs to. A session
	// installing a state adopts its epoch and rejects older traffic.
	Epoch int
	// Round is the 0-based round about to start.
	Round int
	// Rounds is the executed-round count at capture time (== Round).
	Rounds int
	// K is the cluster count; Zs the responsibility partition Z_1..Z_m
	// exactly as announced in the StartMsg.
	K  int
	Zs [][]int
	// Assign is the local assignment, parallel to PeerConfig.Local.
	Assign []int
	// Sizes holds the per-cluster local membership counts |C_i_j|.
	Sizes []int
	// Global and LocalRp are the global and local representatives in wire
	// form (index = cluster id; empty wire form = nil representative).
	Global  []WireTxn
	LocalRp []WireTxn
	// SeenStates are the cycle-detection fingerprints of past local
	// representative states, sorted so the encoding is deterministic.
	SeenStates []uint64
}

// ControlPayload marks message types that belong to the session-control
// plane (membership, checkpointing, recovery) rather than the clustering
// protocol itself. The session routes them to the configured Hooks from any
// blocking receive, in any phase, regardless of epoch — control traffic is
// what moves a session BETWEEN epochs.
type ControlPayload interface {
	SessionControl()
}

// Hooks lets a fabric layer ride along with a peer session: observe round
// boundaries (checkpointing), consume control messages (membership and
// recovery traffic), and decide what happens when a receive deadline
// expires (failure detection). All methods are called from the session's
// own goroutine; a returned *SessionState makes the session abandon its
// current round and install that state — the rollback/rejoin primitive.
type Hooks interface {
	// RoundBoundary is invoked at the entry of every round, before the
	// globals broadcast, with the session's captured state. Returning a
	// non-nil state installs it (e.g. a coordinator admitting a pending
	// join bumps the epoch in place); returning an error fails the session
	// (ErrLeft terminates it as a graceful leave).
	RoundBoundary(st *SessionState) (*SessionState, error)
	// Control is invoked for every ControlPayload envelope. Returning a
	// non-nil state rolls the session back to it.
	Control(env p2p.Envelope) (*SessionState, error)
	// Deadline is invoked when a blocking receive exceeds its deadline.
	// Returning (nil, nil) re-arms the deadline for one more window
	// (bounded by the hook's own accounting); a state rolls back; an error
	// fails the session.
	Deadline(phase Phase, round int) (*SessionState, error)
	// SendFailed is invoked when a protocol send fails. Returning nil
	// suppresses the failure — the message is dropped and the receive
	// deadline / recovery machinery reconciles the session later (a dead
	// neighbour must not cascade into every survivor failing with ErrSend
	// before recovery can run). Returning an error fails the session.
	SendFailed(to, round int, err error) error
}

// rollbackError carries an installable state up the phase-method stack to
// the RunSession loop. It never escapes RunSession.
type rollbackError struct {
	st *SessionState
}

func (e *rollbackError) Error() string {
	return fmt.Sprintf("core: rollback to epoch %d round %d", e.st.Epoch, e.st.Round)
}

// capture snapshots the session's restorable state. Valid at round
// boundaries only (protocol state initialized, no round in flight).
func (s *session) capture() *SessionState {
	zs := make([][]int, len(s.zs))
	for i, z := range s.zs {
		zs[i] = append([]int(nil), z...)
	}
	seen := make([]uint64, 0, len(s.seenStates))
	for fp := range s.seenStates {
		seen = append(seen, fp)
	}
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	return &SessionState{
		Epoch:      s.epoch,
		Round:      s.round,
		Rounds:     s.rounds,
		K:          s.k,
		Zs:         zs,
		Assign:     append([]int(nil), s.assign...),
		Sizes:      append([]int(nil), s.sizes...),
		Global:     wireReps(s.items(), s.global),
		LocalRp:    wireReps(s.items(), s.localRp),
		SeenStates: seen,
	}
}

// install replaces the session's protocol state with st and re-enters the
// round loop at st.Round under st.Epoch: reorder buffers are reset (traffic
// from the abandoned attempt belongs to a dead epoch), the transport's
// epoch stamp is advanced, and parked future-epoch envelopes become
// deliverable. The inverse of capture.
func (s *session) install(st *SessionState) error {
	id := s.p.cfg.ID
	if st.K <= 0 || len(st.Zs) != s.m || id >= len(st.Zs) {
		return fmt.Errorf("%w: state for %d peers, transport has %d (peer %d)",
			ErrUnexpectedMessage, len(st.Zs), s.m, id)
	}
	if len(st.Assign) != len(s.p.cfg.Local) {
		return fmt.Errorf("%w: state carries %d assignments for %d local transactions",
			ErrUnexpectedMessage, len(st.Assign), len(s.p.cfg.Local))
	}
	if len(st.Global) != st.K || len(st.LocalRp) != st.K {
		return fmt.Errorf("%w: state carries %d/%d representatives for k = %d",
			ErrUnexpectedMessage, len(st.Global), len(st.LocalRp), st.K)
	}
	s.epoch = st.Epoch
	if es, ok := s.p.cfg.Transport.(p2p.EpochSetter); ok {
		es.SetEpoch(id, s.epoch)
	}
	s.k = st.K
	s.zs = st.Zs
	s.zi = st.Zs[id]
	s.round = st.Round
	s.rounds = st.Rounds
	s.assign = append([]int(nil), st.Assign...)
	s.sizes = make([]int, s.k)
	copy(s.sizes, st.Sizes)
	s.global = unwireReps(s.items(), st.Global)
	s.localRp = unwireReps(s.items(), st.LocalRp)
	s.newLocalRp = nil
	s.seenStates = make(map[uint64]struct{}, len(st.SeenStates))
	for _, fp := range st.SeenStates {
		s.seenStates[fp] = struct{}{}
	}
	s.changed = false
	s.bySender = nil
	s.anyContinue = false
	s.pendGlobal = map[int][]GlobalRepsMsg{}
	s.pendLocal = map[int][]LocalRepsMsg{}
	// The delta-round caches anchor to the abandoned attempt's assignments and
	// shipped representatives: drop them, so the first post-install round runs
	// the full scans and ships full representatives on every link (relocate
	// re-creates the delta state lazily, sized to the installed k).
	s.delta = nil
	s.sentRepDigest = nil
	s.recvRepCache = nil
	s.phase = PhaseBroadcastGlobals
	return nil
}

// wireReps converts a representative slice to wire form (nil-safe per
// entry; nil representatives become the empty wire form).
func wireReps(items *txn.ItemTable, reps []*txn.Transaction) []WireTxn {
	out := make([]WireTxn, len(reps))
	for i, rep := range reps {
		out[i] = toWire(items, rep)
	}
	return out
}

// unwireReps re-conflates a wire-form representative slice in the local
// interning table.
func unwireReps(items *txn.ItemTable, reps []WireTxn) []*txn.Transaction {
	out := make([]*txn.Transaction, len(reps))
	for i, w := range reps {
		out[i] = fromWire(items, w)
	}
	return out
}
