// Protocol notes — the Fig. 5 message pattern as implemented.
//
// The protocol runs as an explicit phase engine: every peer is a Peer
// (NewPeer) whose RunSession executes a session — a state machine advancing
// startup → (broadcast-globals → relocate → exchange-locals →
// refine-globals)* → done, with one method per phase, per-phase receive
// deadlines (PeerConfig.RoundTimeout) and typed errors (SessionError
// wrapping ErrRoundDeadline / ErrTransportClosed / ErrUnexpectedMessage /
// ErrSend). Two drivers sit on top: Run executes all m sessions in one
// process over a shared transport, RunPeer executes exactly one session per
// OS process over a p2p.Node (see cmd/cxkpeer).
//
// Startup. The orchestrator (playing node N₀, which the paper notes can be
// any peer — peer 0 in both drivers) computes the responsibility partition
// Z₁..Z_m of the cluster ids and sends every peer a StartMsg. Peer i then
// selects q_i = |Z_i| initial global representatives from its local
// transactions, drawn from distinct source documents. On a real network a
// fast neighbour's round message can overtake the StartMsg (FIFO holds per
// connection, not across connections); startup buffers such messages.
//
// Each round has four phases:
//
//	Phase 1  broadcast  — peer i sends {g_j | j ∈ Z_i} to every other peer
//	                      and waits for the complementing m−1 messages, so
//	                      each peer holds all k global representatives.
//	Phase 2  relocate   — relocation against the fixed globals (zero
//	                      similarity ⇒ trash cluster k+1) until the local
//	                      assignment is a fixpoint, then one local
//	                      representative ℓ_ij per non-empty cluster.
//	Phase 3  exchange   — if no ℓ_ij changed (or the state revisits a
//	                      previous fingerprint), peer i broadcasts an empty
//	                      LocalRepsMsg with FlagDone; otherwise it sends
//	                      each peer h the pairs {(ℓ_ij, |C_ij|) | j ∈ Z_h}.
//	                      Every peer receives exactly m−1 LocalRepsMsg per
//	                      round, so the pattern is symmetric and the rounds
//	                      self-synchronize without a barrier.
//	Phase 4  refine     — if any flag was FlagContinue, peer i recomputes
//	                      g_j = ComputeGlobalRepresentative over the
//	                      received weighted locals (in peer-id order, for
//	                      reproducibility) for each j ∈ Z_i. If all m flags
//	                      were FlagDone the loop terminates — the flags are
//	                      identical at every peer, so termination is
//	                      consistent.
//
// Wire form. Representatives travel as flattened raw item ids: synthetic
// (conflated) items are interned per process, so toWire decomposes them
// into their raw constituents — stable across every process that loaded the
// same corpus — and fromWire re-conflates them in the local table. On a
// shared in-process table this reproduces the sender's exact item ids, so
// multi-process runs are byte-identical to in-process runs.
//
// Message reordering. A peer may run one phase ahead of a slow neighbour;
// nextGlobal/nextLocal buffer out-of-phase envelopes per (round, type), and
// a terminated peer's post-session AssignMsg is parked for the coordinator's
// collection step. The protocol therefore tolerates any interleaving a
// FIFO-per-pair transport can produce (exercised by the DelayTransport
// robustness tests).
//
// Failure handling. Sends propagate transport errors and fail the session
// (a silent drop would starve the receiving peer); receives honour the
// per-round deadline, so a dead peer surfaces as ErrRoundDeadline with the
// round and phase it struck in rather than a hung process.
//
// Accounting. Every peer records, per round: compute time (optionally
// serialized across peers via a token so measurements are not polluted by
// host-core oversubscription), modeled sent/received bytes and message
// counts. Result.SimulatedTime folds these into the paper's runtime
// metric: Σ_rounds (max_i compute + max_i wire-time).
package core
