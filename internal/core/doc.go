// Protocol notes — the Fig. 5 message pattern as implemented.
//
// Startup. The orchestrator (playing node N₀, which the paper notes can be
// any peer) computes the responsibility partition Z₁..Z_m of the cluster
// ids and sends every peer a StartMsg. Peer i then selects q_i = |Z_i|
// initial global representatives from its local transactions, drawn from
// distinct source documents.
//
// Each round has four phases:
//
//	Phase 1  broadcast  — peer i sends {g_j | j ∈ Z_i} to every other peer
//	                      and waits for the complementing m−1 messages, so
//	                      each peer holds all k global representatives.
//	Phase 2  local      — relocation against the fixed globals (zero
//	                      similarity ⇒ trash cluster k+1) until the local
//	                      assignment is a fixpoint, then one local
//	                      representative ℓ_ij per non-empty cluster.
//	Phase 3  exchange   — if no ℓ_ij changed (or the state revisits a
//	                      previous fingerprint), peer i broadcasts an empty
//	                      LocalRepsMsg with FlagDone; otherwise it sends
//	                      each peer h the pairs {(ℓ_ij, |C_ij|) | j ∈ Z_h}.
//	                      Every peer receives exactly m−1 LocalRepsMsg per
//	                      round, so the pattern is symmetric and the rounds
//	                      self-synchronize without a barrier.
//	Phase 4  merge      — if any flag was FlagContinue, peer i recomputes
//	                      g_j = ComputeGlobalRepresentative over the
//	                      received weighted locals (in peer-id order, for
//	                      reproducibility) for each j ∈ Z_i. If all m flags
//	                      were FlagDone the loop terminates — the flags are
//	                      identical at every peer, so termination is
//	                      consistent.
//
// Message reordering. A peer may run one phase ahead of a slow neighbour;
// nextGlobal/nextLocal buffer out-of-phase envelopes per (round, type), so
// the protocol tolerates any interleaving a FIFO-per-pair transport can
// produce (exercised by the DelayTransport robustness test).
//
// Accounting. Every peer records, per round: compute time (optionally
// serialized across peers via a token so measurements are not polluted by
// host-core oversubscription), modeled sent/received bytes and message
// counts. Result.SimulatedTime folds these into the paper's runtime
// metric: Σ_rounds (max_i compute + max_i wire-time).
package core
