package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// Options configures a CXK-means run.
type Options struct {
	// K is the desired number of clusters (a (k+1)-th trash cluster is
	// maintained implicitly).
	K int
	// Params are the similarity knobs (f, γ).
	Params sim.Params
	// Peers is the network size m; 1 reproduces the centralized baseline.
	Peers int
	// Partition assigns corpus transaction indices to peers; len must be
	// Peers. Use EqualPartition / UnequalPartition to build one.
	Partition [][]int
	// MaxRounds bounds the collaborative outer loop (paper: < 10).
	MaxRounds int
	// Seed drives initial representative selection (peer i uses Seed+i).
	Seed int64
	// Rule selects the GenerateTreeTuple return reading.
	Rule cluster.ReturnRule
	// Workers bounds the goroutines each peer uses for its local
	// similarity-heavy loops (relocation, ranking, refinement objectives).
	// 0/negative = one per CPU, 1 = serial. Peers always run concurrently
	// with each other; Workers adds intra-peer parallelism on top, and the
	// result stays byte-identical to Workers: 1 for a fixed Seed.
	Workers int
	// IndexReps relocates each round through an inverted representative
	// index (sim.RepIndex) rebuilt after every refinement phase: documents
	// only evaluate the representatives the index cannot prove losers, with
	// assignments byte-identical to the flat scan. The index self-disables
	// (falling back to the flat scan) at γ ≤ 0 or under semantic tag
	// matchers.
	IndexReps bool
	// DeltaRounds carries a cross-round delta cache through every peer
	// session (cluster.DeltaState): unchanged cluster memberships reuse their
	// memoized representatives, documents whose cached best cluster provably
	// still wins skip relocation outright, and unchanged local
	// representatives travel as digest markers instead of full wire
	// transactions. Assignments and representatives are byte-identical either
	// way; every peer of a session must agree (enforced via
	// StartMsg.DeltaExchange).
	DeltaRounds bool
	// Transport overrides the default in-process channel transport.
	Transport p2p.Transport
	// SerializeCompute runs peers' compute sections under a mutual
	// exclusion token so that measured per-peer compute times are not
	// polluted by scheduler interleaving on machines with fewer cores than
	// peers. Communication still overlaps. Benchmarks enable this; live
	// deployments leave it off.
	SerializeCompute bool
	// RoundTimeout bounds every blocking receive of each peer's session;
	// a peer that waits longer fails with ErrRoundDeadline instead of
	// hanging on a dead neighbour. 0 disables the deadline (the default
	// for trusted in-process runs).
	RoundTimeout time.Duration
	// StartupTimeout bounds the wait for the StartMsg (see
	// PeerConfig.StartupTimeout); distributed peers boot in any order, so
	// it is typically much longer than RoundTimeout. 0 falls back to
	// RoundTimeout; negative disables it.
	StartupTimeout time.Duration
	// Observer, when non-nil, receives progress events from every peer
	// session (see PeerConfig.Observer) plus one run-level Done event with
	// Peer == -1 after all sessions terminate. Must be safe for concurrent
	// calls.
	Observer Observer
	// Epoch, Initial, Rejoin and Hooks attach the elastic peer fabric to a
	// RunPeer session (see the matching PeerConfig fields; ignored by the
	// in-process Run driver, whose peers share one failure domain).
	Epoch   int
	Initial *SessionState
	Rejoin  bool
	Hooks   Hooks
}

// DefaultMaxRounds bounds the collaborative loop.
const DefaultMaxRounds = 30

// PeerReport carries per-peer accounting for one run.
type PeerReport struct {
	// ComputeByRound is the measured local compute time per round.
	ComputeByRound []time.Duration
	// SentBytesByRound / RecvBytesByRound use the modeled Sizer sizes.
	SentBytesByRound []int64
	RecvBytesByRound []int64
	SentMsgsByRound  []int64
	RecvMsgsByRound  []int64
	// LocalTransactions is |S_i|.
	LocalTransactions int
}

// TotalCompute sums compute time across rounds.
func (pr *PeerReport) TotalCompute() time.Duration {
	var d time.Duration
	for _, c := range pr.ComputeByRound {
		d += c
	}
	return d
}

// Result is the outcome of a collaborative run.
type Result struct {
	// Assign maps corpus transaction index → cluster in [0,K) or
	// cluster.TrashCluster.
	Assign []int
	// Reps are the final global representatives.
	Reps []*txn.Transaction
	// Rounds is the number of collaborative rounds executed.
	Rounds int
	// Peers holds per-peer accounting.
	Peers []PeerReport
	// WallTime is the end-to-end wall-clock duration of the run.
	WallTime time.Duration
}

// SimulatedTime reproduces the paper's runtime metric on simulated
// hardware: per round, the slowest peer's compute time plus the busiest
// peer's wire time under the given network model (Sect. 4.3.4). For m = 1
// it degenerates to the pure compute time.
func (r *Result) SimulatedTime(tm p2p.TimeModel) time.Duration {
	var total time.Duration
	for round := 0; round < r.Rounds; round++ {
		var maxCompute, maxComm time.Duration
		for i := range r.Peers {
			pr := &r.Peers[i]
			if round < len(pr.ComputeByRound) && pr.ComputeByRound[round] > maxCompute {
				maxCompute = pr.ComputeByRound[round]
			}
			var msgs, bytes int64
			if round < len(pr.SentMsgsByRound) {
				msgs += pr.SentMsgsByRound[round] + pr.RecvMsgsByRound[round]
				bytes += pr.SentBytesByRound[round] + pr.RecvBytesByRound[round]
			}
			if ct := tm.CommTime(msgs, bytes); ct > maxComm {
				maxComm = ct
			}
		}
		total += maxCompute + maxComm
	}
	return total
}

// TotalTraffic sums modeled sent bytes over all peers and rounds.
func (r *Result) TotalTraffic() (msgs, bytes int64) {
	for i := range r.Peers {
		pr := &r.Peers[i]
		for round := range pr.SentMsgsByRound {
			msgs += pr.SentMsgsByRound[round]
			bytes += pr.SentBytesByRound[round]
		}
	}
	return msgs, bytes
}

// EqualPartition splits n transaction indices over m peers as evenly as
// possible after a seeded shuffle (the paper's first scenario:
// |S_i| = |S|/m).
func EqualPartition(n, m int, seed int64) [][]int {
	return weightedPartition(n, uniformWeights(m), seed)
}

// UnequalPartition implements the paper's second scenario: half of the
// peers hold twice the share of the other half (m/2 peers with 4|S|/3m and
// m/2 peers with 2|S|/3m transactions). For odd m the extra peer takes the
// light share.
func UnequalPartition(n, m int, seed int64) [][]int {
	w := make([]float64, m)
	for i := range w {
		if i < m/2 {
			w[i] = 2
		} else {
			w[i] = 1
		}
	}
	return weightedPartition(n, w, seed)
}

func uniformWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

func weightedPartition(n int, weights []float64, seed int64) [][]int {
	m := len(weights)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	out := make([][]int, m)
	start := 0
	var acc float64
	for i := 0; i < m; i++ {
		acc += weights[i]
		end := int(acc/wsum*float64(n) + 0.5)
		if i == m-1 {
			end = n
		}
		if end < start {
			end = start
		}
		out[i] = append([]int(nil), perm[start:end]...)
		sort.Ints(out[i])
		start = end
	}
	return out
}

// ResponsibilityPartition splits the cluster ids {0..k-1} into m contiguous
// subsets Z_1..Z_m (node N0's startup duty in Fig. 5).
func ResponsibilityPartition(k, m int) [][]int {
	zs := make([][]int, m)
	for i := 0; i < m; i++ {
		lo, hi := i*k/m, (i+1)*k/m
		for j := lo; j < hi; j++ {
			zs[i] = append(zs[i], j)
		}
	}
	return zs
}

// Run executes CXK-means as a thin driver over the session engine: it plays
// node N0 (startup), builds one Peer per partition part and runs all m
// sessions concurrently over the shared transport. The corpus supplies the
// transaction set S and interning tables; cx must be a similarity context
// over the same corpus with Params equal to opts.Params.
//
// Cancellation of ctx aborts every session at its next safe boundary and
// Run returns an error wrapping ErrCanceled; a nil ctx never cancels.
func Run(ctx context.Context, cx *sim.Context, corpus *txn.Corpus, opts Options) (*Result, error) {
	m := opts.Peers
	if m <= 0 {
		return nil, fmt.Errorf("core: need at least one peer, got %d", m)
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: need k ≥ 1, got %d", opts.K)
	}
	if len(opts.Partition) != m {
		return nil, fmt.Errorf("core: partition has %d parts for %d peers", len(opts.Partition), m)
	}
	transport := opts.Transport
	if transport == nil {
		transport = p2p.NewChanTransport(m, Sizer(corpus.Items))
		defer transport.Close()
	}
	sizer := Sizer(corpus.Items)

	// Node N0 startup (Fig. 5): define Z_1..Z_m and ship parameters. Peer 0
	// plays N0 — the paper notes any peer can perform this trivial duty.
	start := startMsgFrom(cx, corpus, opts)
	for i := 0; i < m; i++ {
		if err := transport.Send(0, i, start); err != nil {
			return nil, err
		}
	}

	var computeToken chan struct{}
	if opts.SerializeCompute {
		computeToken = make(chan struct{}, 1)
		computeToken <- struct{}{}
	}

	peers := make([]*Peer, m)
	for i := 0; i < m; i++ {
		local := make([]*txn.Transaction, len(opts.Partition[i]))
		for j, idx := range opts.Partition[i] {
			local[j] = corpus.Transactions[idx]
		}
		peers[i] = NewPeer(PeerConfig{
			ID:             i,
			Ctx:            cx,
			Local:          local,
			Transport:      transport,
			Sizer:          sizer,
			MaxRounds:      opts.MaxRounds,
			Seed:           opts.Seed + int64(i),
			Rule:           opts.Rule,
			Workers:        opts.Workers,
			IndexReps:      opts.IndexReps,
			DeltaRounds:    opts.DeltaRounds,
			RoundTimeout:   opts.RoundTimeout,
			StartupTimeout: opts.StartupTimeout,
			Expect:         expectationFrom(cx, corpus, opts),
			ComputeToken:   computeToken,
			Observer:       opts.Observer,
		})
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	results := make([]*SessionResult, m)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = peers[i].RunSession(ctx)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Assign:   make([]int, len(corpus.Transactions)),
		Reps:     results[0].Reps,
		WallTime: wall,
		Peers:    make([]PeerReport, m),
	}
	for i := range res.Assign {
		res.Assign[i] = cluster.TrashCluster
	}
	for i, sr := range results {
		res.Peers[i] = sr.Report
		if sr.Rounds > res.Rounds {
			res.Rounds = sr.Rounds
		}
		for localIdx, a := range sr.Assign {
			res.Assign[opts.Partition[i][localIdx]] = a
		}
	}
	if opts.Observer != nil {
		msgs, bytes := res.TotalTraffic()
		opts.Observer(Event{
			Kind: EventDone, Peer: -1, Round: res.Rounds, Phase: PhaseDone,
			SentMsgs: msgs, SentBytes: bytes,
			PrunedRows:      cx.Counters.PrunedRows.Load(),
			ScratchReuses:   cx.Counters.ScratchReuses.Load(),
			IndexCandidates: cx.Counters.IndexCandidates.Load(),
			IndexSkipped:    cx.Counters.IndexSkipped.Load(),
			RepsReused:      cx.Counters.RepsReused.Load(),
			DocsSkipped:     cx.Counters.DocsSkipped.Load(),
			DeltaRepBytes:   cx.Counters.DeltaRepBytes.Load(),
			Elapsed:         wall,
		})
	}
	return res, nil
}

// startMsgFrom builds node N0's StartMsg for a run configuration.
func startMsgFrom(cx *sim.Context, corpus *txn.Corpus, opts Options) StartMsg {
	return StartMsg{
		Zs:            ResponsibilityPartition(opts.K, opts.Peers),
		K:             opts.K,
		F:             cx.Params.F,
		Gamma:         cx.Params.Gamma,
		Seed:          opts.Seed,
		Txns:          len(corpus.Transactions),
		PartitionHash: PartitionFingerprint(opts.Partition),
		DeltaExchange: opts.DeltaRounds,
	}
}

// expectationFrom pins the run parameters a peer launched with this
// configuration must see in the StartMsg.
func expectationFrom(cx *sim.Context, corpus *txn.Corpus, opts Options) *StartExpectation {
	return &StartExpectation{
		K:             opts.K,
		F:             cx.Params.F,
		Gamma:         cx.Params.Gamma,
		Seed:          opts.Seed,
		Txns:          len(corpus.Transactions),
		PartitionHash: PartitionFingerprint(opts.Partition),
		DeltaExchange: opts.DeltaRounds,
	}
}
