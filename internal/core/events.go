package core

import (
	"fmt"
	"time"
)

// EventKind discriminates the progress events a run emits.
type EventKind int

const (
	// EventPhaseChange reports that a peer's session advanced to a new
	// protocol phase (Event.Phase).
	EventPhaseChange EventKind = iota
	// EventRoundStart reports that a peer entered collaborative round
	// Event.Round.
	EventRoundStart
	// EventRepsExchanged reports that a peer finished the representative
	// exchange of the round (all neighbour messages collected).
	EventRepsExchanged
	// EventRoundEnd reports that a peer completed a round; Event.Objective
	// carries the peer's local clustering objective for the round.
	EventRoundEnd
	// EventDone reports run termination. Peer-level Done events carry the
	// peer id; the run-level Done event (emitted once per Run) has
	// Peer == -1 and the final round count.
	EventDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPhaseChange:
		return "phase-change"
	case EventRoundStart:
		return "round-start"
	case EventRepsExchanged:
		return "reps-exchanged"
	case EventRoundEnd:
		return "round-end"
	case EventDone:
		return "done"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one progress notification of a running clustering job.
type Event struct {
	// Kind discriminates the event.
	Kind EventKind
	// Peer is the emitting peer id, or -1 for run-level events.
	Peer int
	// Round is the collaborative round the event belongs to (0-based;
	// for EventDone it is the total number of rounds executed).
	Round int
	// Phase is the session phase after a PhaseChange (PhaseDone for Done).
	Phase Phase
	// Objective is the peer's local clustering objective — the K-means-style
	// sum Σ (1 − simγJ(tr, rep)) over the peer's transactions — populated on
	// RoundEnd (and on pkmeans round events). Lower is better.
	Objective float64
	// SentMsgs/SentBytes/RecvMsgs/RecvBytes total the peer's modeled
	// traffic so far (cumulative over all completed accounting rounds).
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
	// PrunedRows and ScratchReuses snapshot the similarity context's kernel
	// counters at emission time: match-matrix rows skipped by the exact
	// branch-and-bound of the assignment path, and kernel invocations that
	// ran on a fully warm (zero-allocation) Scratch. In-process peers share
	// one context, so these are run-wide running totals, not per-peer ones.
	PrunedRows, ScratchReuses int64
	// IndexCandidates and IndexSkipped snapshot the representative-index
	// counters (IndexReps runs): representatives actually evaluated by
	// index-guided relocation versus representatives the index proved could
	// not win and never touched. Same run-wide running-total semantics as
	// PrunedRows.
	IndexCandidates, IndexSkipped int64
	// RepsReused, DocsSkipped and DeltaRepBytes snapshot the delta-round
	// counters (DeltaRounds runs): representatives returned verbatim from the
	// cross-round memo, documents whose relocation was decided from the cached
	// anchor with zero kernel evaluations, and wire bytes saved by shipping
	// unchanged-representative digest markers instead of full representatives.
	// Same run-wide running-total semantics as PrunedRows.
	RepsReused, DocsSkipped, DeltaRepBytes int64
	// Elapsed is the time since the session (or run, for Peer == -1)
	// started.
	Elapsed time.Duration
}

// Observer receives progress events. Peers run concurrently, so an
// Observer must be safe for concurrent calls (the public xmlclust surface
// serializes them before user callbacks).
type Observer func(Event)

// TrafficTotals sums the report's per-round traffic counters — the
// "traffic so far" carried by progress events.
func (pr *PeerReport) TrafficTotals() (sentMsgs, sentBytes, recvMsgs, recvBytes int64) {
	for r := range pr.SentMsgsByRound {
		sentMsgs += pr.SentMsgsByRound[r]
		sentBytes += pr.SentBytesByRound[r]
		recvMsgs += pr.RecvMsgsByRound[r]
		recvBytes += pr.RecvBytesByRound[r]
	}
	return
}
