package core

import (
	"context"
	"testing"

	"xmlclust/internal/eval"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
)

func TestChanVsTCPEquivalence(t *testing.T) {
	corpus, labels := miniCorpus(t, 5)
	for seed := int64(1); seed <= 5; seed++ {
		chanRes := runCXK(t, corpus, 2, 3, seed)
		fChan := eval.FMeasure(labels, chanRes.Assign, 2)
		tr, err := p2p.NewTCPTransport(3)
		if err != nil {
			t.Fatal(err)
		}
		cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
		tcpRes, err := Run(context.Background(), cx, corpus, Options{
			K: 2, Params: cx.Params, Peers: 3,
			Partition: EqualPartition(len(corpus.Transactions), 3, seed),
			Seed:      seed, Transport: tr,
		})
		tr.Close()
		if err != nil {
			t.Fatal(err)
		}
		fTCP := eval.FMeasure(labels, tcpRes.Assign, 2)
		t.Logf("seed=%d F(chan)=%.3f F(tcp)=%.3f rounds=%d/%d", seed, fChan, fTCP, chanRes.Rounds, tcpRes.Rounds)
	}
}
