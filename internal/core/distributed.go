package core

import (
	"context"
	"fmt"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// PeerResult is the outcome of one peer process of a distributed run.
type PeerResult struct {
	// ID is the peer id this result belongs to.
	ID int
	// Rounds is the number of collaborative rounds executed.
	Rounds int
	// Assign is the peer's local assignment (local transaction order).
	Assign []int
	// Reps are the final global representatives as seen by this peer.
	Reps []*txn.Transaction
	// Report carries the per-round accounting.
	Report PeerReport
	// Global is the corpus-wide assignment, assembled from every peer's
	// AssignMsg. Populated on the coordinator (ID 0) only.
	Global []int
	// WallTime is the end-to-end duration of this peer's session
	// (including, on the coordinator, assignment collection).
	WallTime time.Duration
}

// RunPeer executes exactly one peer of a distributed CXK-means session —
// the entry point for multi-process deployments where every OS process owns
// one peer and opts.Transport is that process's p2p.Node.
//
// All processes must be configured identically (same corpus, K, seed,
// partition and round limit); the partition and per-peer seeds are derived
// exactly as in Run, so a multi-process run is byte-identical to the
// in-process engine for the same parameters.
//
// Peer 0 is the coordinator: it plays node N0 (broadcasting StartMsg) and,
// after its own session terminates, collects every other peer's AssignMsg
// to assemble the corpus-wide assignment in PeerResult.Global.
// Non-coordinator peers send their AssignMsg and return their local result.
func RunPeer(ctx context.Context, cx *sim.Context, corpus *txn.Corpus, opts Options, id int) (*PeerResult, error) {
	m := opts.Peers
	if m <= 0 {
		return nil, fmt.Errorf("core: need at least one peer, got %d", m)
	}
	if id < 0 || id >= m {
		return nil, fmt.Errorf("core: peer id %d outside [0,%d)", id, m)
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: need k ≥ 1, got %d", opts.K)
	}
	if len(opts.Partition) != m {
		return nil, fmt.Errorf("core: partition has %d parts for %d peers", len(opts.Partition), m)
	}
	if opts.Transport == nil {
		return nil, fmt.Errorf("core: RunPeer needs an explicit transport (one p2p.Node per process)")
	}
	if tp := opts.Transport.Peers(); tp != m {
		return nil, fmt.Errorf("core: transport has %d peers, options say %d", tp, m)
	}
	if id == 0 && (opts.Rejoin || opts.Initial != nil) {
		return nil, fmt.Errorf("core: the coordinator cannot rejoin or resume (%w on coordinator death)", ErrCoordinatorLost)
	}
	sizer := Sizer(corpus.Items)

	if id == 0 {
		start := startMsgFrom(cx, corpus, opts)
		for i := 0; i < m; i++ {
			// The dial inside Send is not ctx-aware (it bounds itself with
			// the transport's DialTimeout), so cancellation is observed
			// between sends rather than mid-dial.
			if ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
			}
			if err := opts.Transport.Send(0, i, start); err != nil {
				return nil, fmt.Errorf("core: startup send to peer %d: %w", i, err)
			}
		}
	}

	local := make([]*txn.Transaction, len(opts.Partition[id]))
	for j, idx := range opts.Partition[id] {
		local[j] = corpus.Transactions[idx]
	}
	peer := NewPeer(PeerConfig{
		ID:             id,
		Ctx:            cx,
		Local:          local,
		Transport:      opts.Transport,
		Sizer:          sizer,
		MaxRounds:      opts.MaxRounds,
		Seed:           opts.Seed + int64(id),
		Rule:           opts.Rule,
		Workers:        opts.Workers,
		IndexReps:      opts.IndexReps,
		DeltaRounds:    opts.DeltaRounds,
		RoundTimeout:   opts.RoundTimeout,
		StartupTimeout: opts.StartupTimeout,
		Expect:         expectationFrom(cx, corpus, opts),
		Observer:       opts.Observer,
		Epoch:          opts.Epoch,
		Initial:        opts.Initial,
		Rejoin:         opts.Rejoin,
		Hooks:          opts.Hooks,
	})

	t0 := time.Now()
	sres, err := peer.RunSession(ctx)
	if err != nil {
		return nil, err
	}
	pr := &PeerResult{
		ID:     id,
		Rounds: sres.Rounds,
		Assign: sres.Assign,
		Reps:   sres.Reps,
		Report: sres.Report,
	}

	if id != 0 {
		msg := AssignMsg{From: id, Rounds: sres.Rounds, Assign: sres.Assign}
		if err := opts.Transport.Send(id, 0, msg); err != nil {
			return nil, fmt.Errorf("%w: final assignment to coordinator: %v", ErrSend, err)
		}
		pr.WallTime = time.Since(t0)
		return pr, nil
	}

	global, err := collectAssignments(ctx, opts, len(corpus.Transactions), sres.Assign, sres.PendingAssigns)
	if err != nil {
		return nil, err
	}
	pr.Global = global
	pr.WallTime = time.Since(t0)
	return pr, nil
}

// collectAssignments gathers the m−1 AssignMsg reports on the coordinator
// and merges them with its own local assignment through the partition.
// pending holds reports from peers whose AssignMsg overtook the
// coordinator's final protocol round (buffered by the session).
func collectAssignments(ctx context.Context, opts Options, n int, ownAssign []int, pending []AssignMsg) ([]int, error) {
	m := opts.Peers
	full := make([]int, n)
	for i := range full {
		full[i] = cluster.TrashCluster
	}
	place := func(peerID int, assign []int) error {
		part := opts.Partition[peerID]
		if len(assign) != len(part) {
			return fmt.Errorf("%w: peer %d reported %d assignments for %d local transactions",
				ErrUnexpectedMessage, peerID, len(assign), len(part))
		}
		for li, a := range assign {
			full[part[li]] = a
		}
		return nil
	}
	if err := place(0, ownAssign); err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	accept := func(msg AssignMsg) error {
		if msg.From <= 0 || msg.From >= m || seen[msg.From] {
			return fmt.Errorf("%w: duplicate or invalid AssignMsg from peer %d", ErrUnexpectedMessage, msg.From)
		}
		if err := place(msg.From, msg.Assign); err != nil {
			return err
		}
		seen[msg.From] = true
		return nil
	}
	for _, msg := range pending {
		if err := accept(msg); err != nil {
			return nil, err
		}
	}

	var deadlineC <-chan time.Time
	if opts.RoundTimeout > 0 {
		timer := time.NewTimer(opts.RoundTimeout)
		defer timer.Stop()
		deadlineC = timer.C
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	ch := opts.Transport.Recv(0)
	for len(seen) < m-1 {
		var env p2p.Envelope
		select {
		case e, ok := <-ch:
			if !ok {
				return nil, ErrTransportClosed
			}
			env = e
		case <-ctxDone:
			return nil, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		case <-deadlineC:
			return nil, fmt.Errorf("%w: collected %d of %d final assignments", ErrRoundDeadline, len(seen), m-1)
		}
		if _, ctl := env.Payload.(ControlPayload); ctl {
			// Late control traffic (e.g. checkpoint replicas from peers
			// still draining their final round) is irrelevant once the
			// coordinator's own session has terminated.
			continue
		}
		msg, ok := env.Payload.(AssignMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %T while collecting final assignments", ErrUnexpectedMessage, env.Payload)
		}
		if err := accept(msg); err != nil {
			return nil, err
		}
	}
	return full, nil
}
