package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/dataset"
	"xmlclust/internal/eval"
	"xmlclust/internal/p2p"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// miniCorpus builds 2·perGroup single-record documents in two well-separated
// groups and returns the corpus plus per-transaction labels.
func miniCorpus(t testing.TB, perGroup int) (*txn.Corpus, []int) {
	t.Helper()
	var trees []*xmltree.Tree
	var labels []int
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 0)
	}
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 1)
	}
	corpus := txn.Build(trees, txn.BuildOptions{Labels: labels})
	weighting.Apply(corpus)
	tl := make([]int, len(corpus.Transactions))
	for i, tr := range corpus.Transactions {
		tl[i] = tr.Label
	}
	return corpus, tl
}

func TestEqualPartitionCoversAll(t *testing.T) {
	p := EqualPartition(10, 3, 1)
	if len(p) != 3 {
		t.Fatalf("parts = %d", len(p))
	}
	seen := map[int]bool{}
	for _, part := range p {
		for _, idx := range part {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d of 10", len(seen))
	}
	// Sizes as even as possible.
	for _, part := range p {
		if len(part) < 3 || len(part) > 4 {
			t.Errorf("part size %d", len(part))
		}
	}
}

func TestUnequalPartitionRatios(t *testing.T) {
	// m=4, n=120: first 2 peers get 2 shares (40 each), last 2 get 1 (20).
	p := UnequalPartition(120, 4, 1)
	if len(p[0]) != 40 || len(p[1]) != 40 || len(p[2]) != 20 || len(p[3]) != 20 {
		t.Errorf("sizes = %d %d %d %d", len(p[0]), len(p[1]), len(p[2]), len(p[3]))
	}
	total := 0
	for _, part := range p {
		total += len(part)
	}
	if total != 120 {
		t.Errorf("total = %d", total)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := EqualPartition(50, 5, 7)
	b := EqualPartition(50, 5, 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("content differs")
			}
		}
	}
}

func TestResponsibilityPartition(t *testing.T) {
	zs := ResponsibilityPartition(16, 5)
	if len(zs) != 5 {
		t.Fatalf("parts = %d", len(zs))
	}
	seen := map[int]bool{}
	for _, z := range zs {
		for _, j := range z {
			if seen[j] {
				t.Fatalf("cluster %d owned twice", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d of 16 clusters", len(seen))
	}
	// More peers than clusters: some Z_i empty, all clusters covered.
	zs = ResponsibilityPartition(2, 5)
	count := 0
	for _, z := range zs {
		count += len(z)
	}
	if count != 2 {
		t.Errorf("clusters covered = %d", count)
	}
}

func runCXK(t testing.TB, corpus *txn.Corpus, k, m int, seed int64) *Result {
	t.Helper()
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	res, err := Run(context.Background(), cx, corpus, Options{
		K: k, Params: cx.Params, Peers: m,
		Partition: EqualPartition(len(corpus.Transactions), m, seed),
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// bestOverSeeds runs a few seeds and returns the best F-measure result —
// centroid seeding is luck-sensitive (the paper averages 10 runs); accuracy
// assertions care that the algorithm *can* separate the data.
func bestOverSeeds(t testing.TB, corpus *txn.Corpus, labels []int, k, m int) (*Result, float64) {
	t.Helper()
	var best *Result
	bestF := -1.0
	for seed := int64(1); seed <= 5; seed++ {
		res := runCXK(t, corpus, k, m, seed)
		if f := eval.FMeasure(labels, res.Assign, k); f > bestF {
			bestF, best = f, res
		}
	}
	return best, bestF
}

func TestSinglePeerMatchesCentralizedShape(t *testing.T) {
	corpus, labels := miniCorpus(t, 6)
	res, f := bestOverSeeds(t, corpus, labels, 2, 1)
	if res.Rounds == 0 || res.Rounds > DefaultMaxRounds {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if len(res.Assign) != len(corpus.Transactions) {
		t.Fatalf("assign length %d", len(res.Assign))
	}
	if f < 0.9 {
		t.Errorf("centralized F = %v on separable data", f)
	}
	// No communication for m=1.
	msgs, bytes := res.TotalTraffic()
	if msgs != 0 || bytes != 0 {
		t.Errorf("m=1 traffic: %d msgs %d bytes", msgs, bytes)
	}
}

func TestMultiPeerTerminatesAndClusters(t *testing.T) {
	corpus, labels := miniCorpus(t, 8)
	for _, m := range []int{2, 3, 5} {
		res, f := bestOverSeeds(t, corpus, labels, 2, m)
		if res.Rounds == 0 || res.Rounds > DefaultMaxRounds {
			t.Fatalf("m=%d rounds = %d", m, res.Rounds)
		}
		if f < 0.6 {
			t.Errorf("m=%d F = %v too low", m, f)
		}
		msgs, bytes := res.TotalTraffic()
		if msgs == 0 || bytes == 0 {
			t.Errorf("m=%d produced no traffic", m)
		}
	}
}

func TestEveryTransactionAssignedOrTrash(t *testing.T) {
	corpus, _ := miniCorpus(t, 5)
	res := runCXK(t, corpus, 2, 3, 4)
	for i, a := range res.Assign {
		if a != cluster.TrashCluster && (a < 0 || a >= 2) {
			t.Errorf("transaction %d has invalid assignment %d", i, a)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	a := runCXK(t, corpus, 2, 3, 9)
	b := runCXK(t, corpus, 2, 3, 9)
	if a.Rounds != b.Rounds {
		t.Errorf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs across identical runs", i)
		}
	}
}

func TestMorePeersThanClusters(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	res := runCXK(t, corpus, 2, 5, 5) // 5 peers, 2 clusters: some Z_i empty
	if res.Rounds == 0 {
		t.Fatal("did not run")
	}
}

func TestMorePeersThanTransactions(t *testing.T) {
	corpus, _ := miniCorpus(t, 2) // 4 transactions
	res := runCXK(t, corpus, 2, 6, 5)
	if res.Rounds == 0 {
		t.Fatal("did not run")
	}
	assigned := 0
	for _, a := range res.Assign {
		if a >= 0 {
			assigned++
		}
	}
	if assigned == 0 {
		t.Error("nothing clustered")
	}
}

func TestUnequalPartitionRun(t *testing.T) {
	corpus, labels := miniCorpus(t, 8)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	bestF := -1.0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := Run(context.Background(), cx, corpus, Options{
			K: 2, Params: cx.Params, Peers: 4,
			Partition: UnequalPartition(len(corpus.Transactions), 4, seed),
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if f := eval.FMeasure(labels, res.Assign, 2); f > bestF {
			bestF = f
		}
	}
	if bestF < 0.5 {
		t.Errorf("unequal-split best F = %v", bestF)
	}
}

func TestRunOverTCPTransport(t *testing.T) {
	corpus, labels := miniCorpus(t, 5)
	bestF := -1.0
	var msgs, bytes int64
	for seed := int64(1); seed <= 5; seed++ {
		tr, err := p2p.NewTCPTransport(3)
		if err != nil {
			t.Fatal(err)
		}
		cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
		res, err := Run(context.Background(), cx, corpus, Options{
			K: 2, Params: cx.Params, Peers: 3,
			Partition: EqualPartition(len(corpus.Transactions), 3, seed),
			Seed:      seed, Transport: tr,
		})
		if err != nil {
			tr.Close()
			t.Fatal(err)
		}
		if f := eval.FMeasure(labels, res.Assign, 2); f > bestF {
			bestF = f
		}
		m, b := tr.Stats()
		msgs += m
		bytes += b
		tr.Close()
	}
	if bestF < 0.5 {
		t.Errorf("TCP-run best F = %v", bestF)
	}
	if msgs == 0 || bytes == 0 {
		t.Error("no TCP traffic recorded")
	}
}

func TestRunValidation(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	if _, err := Run(context.Background(), cx, corpus, Options{K: 2, Peers: 0}); err == nil {
		t.Error("peers=0 should fail")
	}
	if _, err := Run(context.Background(), cx, corpus, Options{K: 0, Peers: 1}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Run(context.Background(), cx, corpus, Options{K: 2, Peers: 2, Partition: make([][]int, 1)}); err == nil {
		t.Error("partition mismatch should fail")
	}
}

func TestSimulatedTimePositive(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	res := runCXK(t, corpus, 2, 3, 8)
	st := res.SimulatedTime(p2p.DefaultTimeModel())
	if st <= 0 {
		t.Errorf("simulated time = %v", st)
	}
	// Zero model: simulated time equals per-round max compute only.
	st0 := res.SimulatedTime(p2p.TimeModel{})
	if st0 <= 0 || st0 > st {
		t.Errorf("compute-only time %v vs full %v", st0, st)
	}
}

func TestPeerReportsConsistent(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	res := runCXK(t, corpus, 2, 3, 8)
	totalLocal := 0
	for i := range res.Peers {
		pr := &res.Peers[i]
		totalLocal += pr.LocalTransactions
		if len(pr.SentMsgsByRound) != len(pr.SentBytesByRound) {
			t.Errorf("peer %d slices misaligned", i)
		}
		if pr.TotalCompute() <= 0 {
			t.Errorf("peer %d no compute recorded", i)
		}
	}
	if totalLocal != len(corpus.Transactions) {
		t.Errorf("local transactions sum %d != %d", totalLocal, len(corpus.Transactions))
	}
	// Conservation: total sent messages equals total received messages.
	var sent, recv int64
	for i := range res.Peers {
		for r := range res.Peers[i].SentMsgsByRound {
			sent += res.Peers[i].SentMsgsByRound[r]
			recv += res.Peers[i].RecvMsgsByRound[r]
		}
	}
	if sent != recv {
		t.Errorf("message conservation violated: sent=%d recv=%d", sent, recv)
	}
}

func TestWireRoundtrip(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	tr := corpus.Transactions[0]
	w := toWire(corpus.Items, tr)
	back := fromWire(corpus.Items, w)
	if !tr.Equal(back) {
		t.Errorf("wire roundtrip changed transaction: %v vs %v", tr.Items, back.Items)
	}
	if fromWire(corpus.Items, toWire(corpus.Items, nil)) != nil {
		t.Error("nil roundtrip should stay nil")
	}
	// Representatives carry synthetic (conflated) items whose ids are
	// process-local: the wire form must flatten them to raw corpus ids, and
	// re-conflation on a shared table must reproduce the exact transaction.
	var all []txn.ItemID
	for _, tx := range corpus.Transactions[:2] {
		all = append(all, tx.Items...)
	}
	syn := cluster.ConflateItems(corpus.Items, all)
	ws := toWire(corpus.Items, syn)
	for _, id := range ws.Items {
		if corpus.Items.Get(id).Synthetic {
			t.Fatalf("synthetic item %d leaked onto the wire", id)
		}
	}
	backSyn := fromWire(corpus.Items, ws)
	if !syn.Equal(backSyn) {
		t.Errorf("synthetic roundtrip changed transaction: %v vs %v", syn.Items, backSyn.Items)
	}
}

func TestSizerPositive(t *testing.T) {
	corpus, _ := miniCorpus(t, 2)
	s := Sizer(corpus.Items)
	msg := GlobalRepsMsg{Reps: map[int]WireTxn{0: toWire(corpus.Items, corpus.Transactions[0])}}
	if s(msg) <= 16 {
		t.Errorf("global reps size = %d", s(msg))
	}
	if s(StartMsg{K: 4}) <= 0 {
		t.Error("start msg size")
	}
	if s(LocalRepsMsg{}) <= 0 {
		t.Error("local reps size")
	}
	if s(struct{}{}) != 64 {
		t.Error("default size")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := []*txn.Transaction{txn.NewTransaction([]txn.ItemID{1, 2}, 0, 0, -1), nil}
	b := []*txn.Transaction{txn.NewTransaction([]txn.ItemID{1, 3}, 0, 0, -1), nil}
	c := []*txn.Transaction{nil, txn.NewTransaction([]txn.ItemID{1, 2}, 0, 0, -1)}
	if fingerprintReps(a) == fingerprintReps(b) {
		t.Error("different items same fingerprint")
	}
	if fingerprintReps(a) == fingerprintReps(c) {
		t.Error("different positions same fingerprint")
	}
	if fingerprintReps(a) != fingerprintReps(a) {
		t.Error("fingerprint unstable")
	}
}

func BenchmarkCXKRunM3(b *testing.B) {
	corpus, _ := miniCorpus(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCXK(b, corpus, 2, 3, int64(i))
	}
}

// TestRunUnderMessageDelays shakes out ordering assumptions: random send
// delays must change neither termination nor the result for a fixed seed
// (aggregation is per-sender slotted, so arrival order is immaterial).
func TestRunUnderMessageDelays(t *testing.T) {
	corpus, _ := miniCorpus(t, 6)
	baseline := runCXK(t, corpus, 2, 3, 4)
	inner := p2p.NewChanTransport(3, Sizer(corpus.Items))
	delayed := p2p.NewDelayTransport(inner, 2*time.Millisecond, 99)
	defer delayed.Close()
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	res, err := Run(context.Background(), cx, corpus, Options{
		K: 2, Params: cx.Params, Peers: 3,
		Partition: EqualPartition(len(corpus.Transactions), 3, 4),
		Seed:      4, Transport: delayed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.Rounds > DefaultMaxRounds {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	for i := range res.Assign {
		if res.Assign[i] != baseline.Assign[i] {
			t.Fatalf("delays changed assignment %d: %d vs %d",
				i, res.Assign[i], baseline.Assign[i])
		}
	}
}

// ---------------------------------------------------------------- Workers

func runCXKWorkers(t testing.TB, cx *sim.Context, corpus *txn.Corpus, k, m int, seed int64, workers int) *Result {
	t.Helper()
	res, err := Run(context.Background(), cx, corpus, Options{
		K: k, Params: cx.Params, Peers: m, Workers: workers,
		Partition: EqualPartition(len(corpus.Transactions), m, seed),
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertResultsEqual(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Rounds != got.Rounds {
		t.Errorf("%s: rounds %d vs %d", label, want.Rounds, got.Rounds)
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: assignment %d differs: %d vs %d", label, i, want.Assign[i], got.Assign[i])
		}
	}
	if len(want.Reps) != len(got.Reps) {
		t.Fatalf("%s: rep count %d vs %d", label, len(want.Reps), len(got.Reps))
	}
	for j := range want.Reps {
		switch {
		case want.Reps[j] == nil && got.Reps[j] == nil:
		case want.Reps[j] == nil || got.Reps[j] == nil:
			t.Errorf("%s: rep %d nil-ness differs", label, j)
		case !want.Reps[j].Equal(got.Reps[j]):
			t.Errorf("%s: rep %d differs", label, j)
		}
	}
}

// TestRunWorkersEquivalence asserts that the collaborative engine produces
// byte-identical results for any intra-peer worker count, across network
// sizes and several synthetic corpora.
func TestRunWorkersEquivalence(t *testing.T) {
	type corpusCase struct {
		name   string
		corpus *txn.Corpus
		k      int
	}
	mini, _ := miniCorpus(t, 8)
	cases := []corpusCase{{"two-topic", mini, 2}}
	for _, ds := range []struct {
		name string
		docs int
	}{{"DBLP", 20}, {"IEEE", 6}} {
		gen, ok := dataset.ByName(ds.name)
		if !ok {
			t.Fatalf("unknown dataset %q", ds.name)
		}
		col := gen(dataset.Spec{Docs: ds.docs, Seed: 99})
		cases = append(cases, corpusCase{ds.name, col.BuildCorpus(dataset.ByHybrid, 24, 1), col.K(dataset.ByHybrid)})
	}
	for _, c := range cases {
		cx := sim.NewContext(c.corpus, sim.Params{F: 0.5, Gamma: 0.7})
		for _, m := range []int{1, 3} {
			serial := runCXKWorkers(t, cx, c.corpus, c.k, m, 9, 1)
			for _, w := range []int{4, 0} {
				got := runCXKWorkers(t, cx, c.corpus, c.k, m, 9, w)
				assertResultsEqual(t, fmt.Sprintf("%s m=%d workers=%d", c.name, m, w), serial, got)
			}
		}
	}
}
