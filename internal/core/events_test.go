package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"xmlclust/internal/sim"
)

// TestRunObserverEvents asserts the engine-level event contract at the
// core layer: per-peer round events with consistent traffic accounting,
// peer-level Done per session and one run-level Done.
func TestRunObserverEvents(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	var mu sync.Mutex
	var events []Event
	res, err := Run(context.Background(), cx, corpus, Options{
		K: 2, Params: cx.Params, Peers: 2,
		Partition: EqualPartition(len(corpus.Transactions), 2, 7),
		Seed:      7,
		Observer: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts, ends, peerDone, runDone := 0, 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EventRoundStart:
			starts++
		case EventRoundEnd:
			ends++
			if ev.Objective < 0 {
				t.Errorf("negative objective %v", ev.Objective)
			}
		case EventDone:
			if ev.Peer == -1 {
				runDone++
				if ev.Round != res.Rounds {
					t.Errorf("run Done rounds %d, result %d", ev.Round, res.Rounds)
				}
				msgs, bytes := res.TotalTraffic()
				if ev.SentMsgs != msgs || ev.SentBytes != bytes {
					t.Errorf("run Done traffic (%d, %d) != result (%d, %d)",
						ev.SentMsgs, ev.SentBytes, msgs, bytes)
				}
			} else {
				peerDone++
			}
		}
	}
	if starts != 2*res.Rounds || ends != 2*res.Rounds {
		t.Errorf("round events %d/%d, want %d each (peers×rounds)", starts, ends, 2*res.Rounds)
	}
	if peerDone != 2 || runDone != 1 {
		t.Errorf("Done events: %d peer-level (want 2), %d run-level (want 1)", peerDone, runDone)
	}
	if last := events[len(events)-1]; last.Kind != EventDone || last.Peer != -1 {
		t.Errorf("last event kind=%v peer=%d, want run-level Done", last.Kind, last.Peer)
	}
}

// TestRunObserverIdenticalOutput asserts that observing a run (which turns
// on the per-round objective computation) never changes its output.
func TestRunObserverIdenticalOutput(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	run := func(observer Observer) *Result {
		cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
		res, err := Run(context.Background(), cx, corpus, Options{
			K: 2, Params: cx.Params, Peers: 2,
			Partition: EqualPartition(len(corpus.Transactions), 2, 7),
			Seed:      7, Observer: observer,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var mu sync.Mutex
	plain := run(nil)
	observed := run(func(Event) { mu.Lock(); mu.Unlock() })
	if plain.Rounds != observed.Rounds {
		t.Fatalf("rounds differ: %d vs %d", plain.Rounds, observed.Rounds)
	}
	for i := range plain.Assign {
		if plain.Assign[i] != observed.Assign[i] {
			t.Fatalf("assignment %d differs under observation", i)
		}
	}
}

// TestRunCanceled asserts the ErrCanceled surface of the in-process driver
// for both a mid-run cancel (triggered from the event stream) and a
// pre-canceled context.
func TestRunCanceled(t *testing.T) {
	corpus, _ := miniCorpus(t, 4)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := Run(ctx, cx, corpus, Options{
		K: 2, Params: cx.Params, Peers: 2,
		Partition: EqualPartition(len(corpus.Transactions), 2, 7),
		Seed:      7, MaxRounds: 1000,
		Observer: func(ev Event) {
			if ev.Kind == EventRoundStart {
				once.Do(cancel)
			}
		},
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: want ErrCanceled wrapping context.Canceled, got %v", err)
	}
	var se *SessionError
	if !errors.As(err, &se) {
		t.Fatalf("cancellation should surface as a SessionError, got %T", err)
	}

	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Run(pre, cx, corpus, Options{
		K: 2, Params: cx.Params, Peers: 1,
		Partition: EqualPartition(len(corpus.Transactions), 1, 7),
		Seed:      7,
	}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled: want ErrCanceled, got %v", err)
	}
}
