// Package semantics implements the paper's declared extension (Sect. 4.1.1
// and Sect. 6): enriching structural similarity with semantic information
// about tag names. The published algorithm scores tag pairs with the
// Dirichlet (exact-equality) function Δ; here Δ generalizes to a
// TagSimilarity that can consult a synonym dictionary and a lexical
// (token-stem overlap) matcher, so that e.g. `author` ≈ `writer` and
// `bookTitle` ≈ `book-title` contribute partial structural matches.
//
// The default pipeline stays byte-exact with the paper (Exact); the
// semantic matchers are opt-in and exercised by the semantic ablation
// benchmark.
package semantics

import (
	"strings"
	"sync"

	"xmlclust/internal/textproc"
)

// TagSimilarity scores two XML tag names in [0,1]. Implementations must be
// symmetric and safe for concurrent use.
type TagSimilarity interface {
	Sim(a, b string) float64
}

// Exact is the paper's Dirichlet function Δ: 1 on equality, else 0.
type Exact struct{}

// Sim implements TagSimilarity.
func (Exact) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// Dictionary scores tag pairs through synonym classes: tags mapped to the
// same class id match with the configured score. Lookups are
// case-insensitive. Unknown pairs fall back to exact matching.
type Dictionary struct {
	// Score is the similarity granted to same-class tags (default 1).
	Score float64

	mu      sync.RWMutex
	classOf map[string]int
	nextID  int
}

// NewDictionary creates an empty dictionary with full-score synonyms.
func NewDictionary() *Dictionary {
	return &Dictionary{Score: 1, classOf: map[string]int{}}
}

// AddSynonyms registers a synonym class. Tags already known keep their
// class, merging is not performed (first class wins), mirroring how flat
// thesauri behave.
func (d *Dictionary) AddSynonyms(tags ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	for _, t := range tags {
		key := strings.ToLower(t)
		if _, exists := d.classOf[key]; !exists {
			d.classOf[key] = id
		}
	}
}

// Sim implements TagSimilarity.
func (d *Dictionary) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := strings.ToLower(a), strings.ToLower(b)
	if la == lb {
		return 1
	}
	d.mu.RLock()
	ca, oka := d.classOf[la]
	cb, okb := d.classOf[lb]
	d.mu.RUnlock()
	if oka && okb && ca == cb {
		return d.Score
	}
	return 0
}

// Lexical scores tags by the Jaccard overlap of their stemmed name tokens:
// tag names are split on case transitions, digits, `-`, `_`, `.` and `:`
// (common XML naming conventions), stopworded and Porter-stemmed. It
// captures near-synonymy such as bookTitle / book_title / booktitles.
type Lexical struct {
	// MinScore truncates weak overlaps to 0 to avoid noise (default 0.5
	// through NewLexical).
	MinScore float64

	mu    sync.RWMutex
	cache map[string][]string
}

// NewLexical creates a lexical matcher with the default noise floor.
func NewLexical() *Lexical {
	return &Lexical{MinScore: 0.5, cache: map[string][]string{}}
}

// Sim implements TagSimilarity.
func (l *Lexical) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	ta := l.tokens(a)
	tb := l.tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	seen := map[string]bool{}
	for _, t := range ta {
		seen[t] = true
	}
	union := len(seen)
	for _, t := range tb {
		if seen[t] {
			inter++
			seen[t] = false // count each shared token once
		} else {
			union++
		}
	}
	score := float64(inter) / float64(union)
	if score < l.MinScore {
		return 0
	}
	return score
}

func (l *Lexical) tokens(tag string) []string {
	l.mu.RLock()
	toks, ok := l.cache[tag]
	l.mu.RUnlock()
	if ok {
		return toks
	}
	toks = SplitTagName(tag)
	out := toks[:0]
	for _, t := range toks {
		if textproc.IsStopword(t) {
			continue
		}
		s := textproc.Stem(t)
		if s != "" {
			out = append(out, s)
		}
	}
	l.mu.Lock()
	l.cache[tag] = out
	l.mu.Unlock()
	return out
}

// SplitTagName splits an XML name into lowercase word tokens on case
// transitions and punctuation: "bookTitle" → [book title],
// "book_title-2" → [book title 2... digits dropped], "ns:localName" →
// [local name] (prefix dropped).
func SplitTagName(tag string) []string {
	// Drop a namespace prefix.
	if i := strings.LastIndexByte(tag, ':'); i >= 0 {
		tag = tag[i+1:]
	}
	tag = strings.TrimPrefix(tag, "@")
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 { // single letters are noise
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	prevLower := false
	for _, r := range tag {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
			prevLower = true
		case r >= 'A' && r <= 'Z':
			if prevLower {
				flush()
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return tokens
}

// Chain tries a sequence of matchers and returns the maximum score — the
// usual way to stack a domain dictionary on top of the lexical fallback.
type Chain []TagSimilarity

// Sim implements TagSimilarity.
func (c Chain) Sim(a, b string) float64 {
	best := 0.0
	for _, m := range c {
		if s := m.Sim(a, b); s > best {
			best = s
			if best >= 1 {
				return 1
			}
		}
	}
	return best
}
