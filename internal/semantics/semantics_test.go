package semantics

import (
	"math/rand"
	"testing"
)

func TestExact(t *testing.T) {
	e := Exact{}
	if e.Sim("author", "author") != 1 {
		t.Error("equal tags must match")
	}
	if e.Sim("author", "writer") != 0 {
		t.Error("different tags must not match")
	}
	if e.Sim("Author", "author") != 0 {
		t.Error("Δ is case-sensitive by definition")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	d.AddSynonyms("author", "writer", "creator")
	d.AddSynonyms("title", "name", "heading")
	cases := []struct {
		a, b string
		want float64
	}{
		{"author", "writer", 1},
		{"writer", "creator", 1},
		{"title", "heading", 1},
		{"author", "title", 0},
		{"author", "author", 1},
		{"unknown", "writer", 0},
		{"unknown", "unknown", 1},
		{"AUTHOR", "Writer", 1}, // case-insensitive lookup
	}
	for _, c := range cases {
		if got := d.Sim(c.a, c.b); got != c.want {
			t.Errorf("Sim(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDictionaryScore(t *testing.T) {
	d := NewDictionary()
	d.Score = 0.8
	d.AddSynonyms("author", "writer")
	if got := d.Sim("author", "writer"); got != 0.8 {
		t.Errorf("scored synonym = %v", got)
	}
	if got := d.Sim("author", "author"); got != 1 {
		t.Errorf("identity must stay 1, got %v", got)
	}
}

func TestDictionaryFirstClassWins(t *testing.T) {
	d := NewDictionary()
	d.AddSynonyms("a", "b")
	d.AddSynonyms("b", "c") // b keeps class 0; c joins class 1
	if d.Sim("a", "b") != 1 {
		t.Error("a~b broken")
	}
	if d.Sim("b", "c") != 0 {
		t.Error("b should not merge into the second class")
	}
}

func TestSplitTagName(t *testing.T) {
	cases := map[string][]string{
		"bookTitle":     {"book", "title"},
		"book_title":    {"book", "title"},
		"book-title":    {"book", "title"},
		"BOOKTitle":     {"booktitle"},
		"ns:localName":  {"local", "name"},
		"@key":          {"key"},
		"inproceedings": {"inproceedings"},
		"sec2":          {"sec"},
		"x":             nil,
	}
	for in, want := range cases {
		got := SplitTagName(in)
		if len(got) != len(want) {
			t.Errorf("SplitTagName(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("SplitTagName(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
}

func TestLexical(t *testing.T) {
	l := NewLexical()
	if got := l.Sim("bookTitle", "book_title"); got != 1 {
		t.Errorf("naming-convention variants = %v, want 1", got)
	}
	if got := l.Sim("bookTitles", "book_title"); got != 1 {
		t.Errorf("plural variant = %v, want 1 (stemming)", got)
	}
	if got := l.Sim("author", "publisher"); got != 0 {
		t.Errorf("unrelated tags = %v", got)
	}
	// Partial overlap above the floor: {book,title} vs {book,name} = 1/3 < 0.5 → 0.
	if got := l.Sim("bookTitle", "bookName"); got != 0 {
		t.Errorf("weak overlap should floor to 0, got %v", got)
	}
	l.MinScore = 0.2
	if got := l.Sim("bookTitle", "bookName"); got <= 0 || got >= 1 {
		t.Errorf("partial overlap = %v, want (0,1)", got)
	}
}

func TestLexicalSymmetric(t *testing.T) {
	l := NewLexical()
	tags := []string{"bookTitle", "book_title", "author", "authorName", "sec", "section"}
	for _, a := range tags {
		for _, b := range tags {
			if l.Sim(a, b) != l.Sim(b, a) {
				t.Errorf("asymmetric for %q,%q", a, b)
			}
		}
	}
}

func TestLexicalCacheConcurrent(t *testing.T) {
	l := NewLexical()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				l.Sim("bookTitle", "book_title")
				l.Sim("authorName", "author_name")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestChain(t *testing.T) {
	d := NewDictionary()
	d.AddSynonyms("author", "writer")
	c := Chain{d, NewLexical()}
	if got := c.Sim("author", "writer"); got != 1 {
		t.Errorf("dictionary through chain = %v", got)
	}
	if got := c.Sim("bookTitle", "book_title"); got != 1 {
		t.Errorf("lexical through chain = %v", got)
	}
	if got := c.Sim("author", "publisher"); got != 0 {
		t.Errorf("no matcher should fire, got %v", got)
	}
	empty := Chain{}
	if got := empty.Sim("a", "a"); got != 0 {
		t.Errorf("empty chain = %v", got)
	}
}

func TestRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tags := []string{"author", "writer", "bookTitle", "book_title", "sec",
		"section", "x", "", "Ns:thing", "@attr"}
	matchers := []TagSimilarity{Exact{}, NewLexical(), func() TagSimilarity {
		d := NewDictionary()
		d.AddSynonyms("author", "writer")
		return d
	}()}
	for i := 0; i < 500; i++ {
		a := tags[rng.Intn(len(tags))]
		b := tags[rng.Intn(len(tags))]
		for _, m := range matchers {
			s := m.Sim(a, b)
			if s < 0 || s > 1 {
				t.Fatalf("score out of range: %T(%q,%q)=%v", m, a, b, s)
			}
		}
	}
}
