package dataset

import (
	"fmt"
	"math/rand"

	"xmlclust/internal/xmltree"
)

// Shakespeare structural classes, identified in the paper by the presence
// or absence of discriminatory paths: personae.pgroup, act.prologue and
// act.epilogue (Sect. 5.2).
const (
	shakPGroup = iota
	shakPrologue
	shakEpilogue
)

const shakNumTopics = 5

// shakHybrid lists the 12 structure×topic combinations used as hybrid
// classes (the paper groups tree tuples into 12 classes for
// structure/content-driven clustering).
var shakHybrid = func() [][2]int {
	var combos [][2]int
	for t := 0; t < shakNumTopics; t++ {
		combos = append(combos, [2]int{shakPGroup, t})
	}
	for t := 0; t < shakNumTopics; t++ {
		combos = append(combos, [2]int{shakPrologue, t})
	}
	combos = append(combos, [2]int{shakEpilogue, 0}, [2]int{shakEpilogue, 2})
	return combos
}()

// Shakespeare generates the play corpus: very few, very large documents
// whose tuple decomposition yields thousands of transactions each (the
// extraction cap keeps the combinatorial product bounded; see
// tuple.Options). The real archive has 7 plays; the synthetic default uses
// 14 so that all 12 hybrid classes are populated (DESIGN.md §3).
func Shakespeare(spec Spec) *Collection {
	docs := spec.docsOr(14)
	rng := rand.New(rand.NewSource(spec.Seed))
	topics := newTopicSet(shakNumTopics, 90, 250, 0.8, rng)
	names := newNameGen(rng)

	c := &Collection{
		Name:       "Shakespeare",
		NumStruct:  3,
		NumContent: shakNumTopics,
		NumHybrid:  len(shakHybrid),
	}
	for i := 0; i < docs; i++ {
		combo := shakHybrid[i%len(shakHybrid)]
		s, t := combo[0], combo[1]
		c.StructLabels = append(c.StructLabels, s)
		c.ContentLabels = append(c.ContentLabels, t)
		c.HybridLabels = append(c.HybridLabels, i%len(shakHybrid))
		c.Trees = append(c.Trees, shakDoc(rng, topics, names, s, t, i))
	}
	return c
}

func shakDoc(rng *rand.Rand, topics *topicSet, names *nameGen, s, t, idx int) *xmltree.Tree {
	g := topics.gen(t)
	tree := xmltree.NewTree("PLAY")
	title := tree.AddElement(tree.Root, "TITLE")
	tree.AddText(title, "the tragedy of "+g.text(3, rng)+fmt.Sprintf(" %d", idx))

	personae := tree.AddElement(tree.Root, "PERSONAE")
	pt := tree.AddElement(personae, "TITLE")
	tree.AddText(pt, "dramatis personae")
	nPersona := 4 + rng.Intn(3)
	cast := make([]string, 0, nPersona+2)
	for p := 0; p < nPersona; p++ {
		nm := names.name(rng)
		cast = append(cast, nm)
		pe := tree.AddElement(personae, "PERSONA")
		tree.AddText(pe, nm+", "+g.text(3, rng))
	}
	if s == shakPGroup {
		pg := tree.AddElement(personae, "PGROUP")
		for p := 0; p < 2; p++ {
			nm := names.name(rng)
			cast = append(cast, nm)
			pe := tree.AddElement(pg, "PERSONA")
			tree.AddText(pe, nm)
		}
		gd := tree.AddElement(pg, "GRPDESCR")
		tree.AddText(gd, g.text(4, rng))
	}

	speech := func(parent *xmltree.Node) {
		sp := tree.AddElement(parent, "SPEECH")
		speaker := tree.AddElement(sp, "SPEAKER")
		tree.AddText(speaker, cast[rng.Intn(len(cast))])
		// Lines of one speech are concatenated into one speech.line element,
		// exactly as the paper preprocesses the archive (Sect. 5.2).
		line := tree.AddElement(sp, "LINE")
		tree.AddText(line, g.text(18+rng.Intn(10), rng))
	}

	for a := 0; a < 3; a++ {
		act := tree.AddElement(tree.Root, "ACT")
		at := tree.AddElement(act, "TITLE")
		tree.AddText(at, fmt.Sprintf("act %d", a+1))
		if s == shakPrologue && a == 0 {
			pro := tree.AddElement(act, "PROLOGUE")
			prt := tree.AddElement(pro, "TITLE")
			tree.AddText(prt, "prologue")
			speech(pro)
		}
		for sc := 0; sc < 2+rng.Intn(2); sc++ {
			scene := tree.AddElement(act, "SCENE")
			sct := tree.AddElement(scene, "TITLE")
			tree.AddText(sct, fmt.Sprintf("scene %d. ", sc+1)+g.text(4, rng))
			for sp := 0; sp < 5+rng.Intn(4); sp++ {
				speech(scene)
			}
		}
		if s == shakEpilogue && a == 2 {
			epi := tree.AddElement(act, "EPILOGUE")
			ept := tree.AddElement(epi, "TITLE")
			tree.AddText(ept, "epilogue")
			speech(epi)
		}
	}
	return tree
}
