package dataset

import (
	"math/rand"

	"xmlclust/internal/xmltree"
)

// IEEE structural categories: "transactions" vs "non-transactions"
// articles (Sect. 5.2). The two schema variants differ in their wrapper
// structure (front/body/back matter vs flat header+body), reproducing the
// INEX IEEE categorization.
const (
	ieeeTransactions = iota
	ieeeNonTransactions
)

const ieeeNumTopics = 8

// ieeeHybrid lists the 14 observed hybrid classes: transactions articles
// span all eight topics, non-transactions six of them.
var ieeeHybrid = func() [][2]int {
	var combos [][2]int
	for t := 0; t < ieeeNumTopics; t++ {
		combos = append(combos, [2]int{ieeeTransactions, t})
	}
	for t := 0; t < 6; t++ {
		combos = append(combos, [2]int{ieeeNonTransactions, t})
	}
	return combos
}()

// IEEE generates the journal-article corpus: long, sectioned documents with
// a complex schema, the heaviest workload of the four (the real collection
// has 211909 transactions; the synthetic default is scaled down but keeps
// the many-tuples-per-document profile — see DESIGN.md §3).
func IEEE(spec Spec) *Collection {
	docs := spec.docsOr(90)
	rng := rand.New(rand.NewSource(spec.Seed))
	topics := newTopicSet(ieeeNumTopics, 110, 350, 0.8, rng)
	names := newNameGen(rng)
	journals := make([]*phrasePool, ieeeNumTopics)
	keywords := make([]*phrasePool, ieeeNumTopics)
	authors := make([]*namePool, ieeeNumTopics)
	for t := 0; t < ieeeNumTopics; t++ {
		journals[t] = newPhrasePool(topics.gen(t).topic, 3, 3, rng)
		keywords[t] = newPhrasePool(topics.gen(t).topic, 8, 2, rng)
		authors[t] = newNamePool(25, names, rng)
	}

	c := &Collection{
		Name:       "IEEE",
		NumStruct:  2,
		NumContent: ieeeNumTopics,
		NumHybrid:  len(ieeeHybrid),
	}
	for i := 0; i < docs; i++ {
		combo := ieeeHybrid[i%len(ieeeHybrid)]
		s, t := combo[0], combo[1]
		c.StructLabels = append(c.StructLabels, s)
		c.ContentLabels = append(c.ContentLabels, t)
		c.HybridLabels = append(c.HybridLabels, i%len(ieeeHybrid))
		c.Trees = append(c.Trees, ieeeDoc(rng, topics, journals[t], keywords[t], authors[t], s, t, i))
	}
	return c
}

func ieeeDoc(rng *rand.Rand, topics *topicSet, journal, kwds *phrasePool, authors *namePool, s, t, idx int) *xmltree.Tree {
	g := topics.gen(t)
	tree := xmltree.NewTree("article")
	tree.AddAttribute(tree.Root, "id", docKey("ieee", idx))

	switch s {
	case ieeeTransactions:
		fm := tree.AddElement(tree.Root, "fm")
		jt := tree.AddElement(fm, "jt")
		tree.AddText(jt, "ieee transactions on "+journal.pick(rng))
		ti := tree.AddElement(fm, "ti")
		tree.AddText(ti, g.text(8+rng.Intn(4), rng))
		for a := 0; a < 2+rng.Intn(3); a++ {
			au := tree.AddElement(fm, "au")
			tree.AddText(au, authors.name(rng))
		}
		for kw := 0; kw < 2; kw++ {
			kwd := tree.AddElement(fm, "kwd")
			tree.AddText(kwd, kwds.pick(rng))
		}
		abs := tree.AddElement(fm, "abs")
		absP := tree.AddElement(abs, "p")
		tree.AddText(absP, g.text(18+rng.Intn(10), rng))

		bdy := tree.AddElement(tree.Root, "bdy")
		for sec := 0; sec < 3+rng.Intn(3); sec++ {
			se := tree.AddElement(bdy, "sec")
			st := tree.AddElement(se, "st")
			tree.AddText(st, g.text(3+rng.Intn(3), rng))
			for p := 0; p < 2+rng.Intn(2); p++ {
				par := tree.AddElement(se, "ip1")
				tree.AddText(par, g.text(20+rng.Intn(12), rng))
			}
		}

		bm := tree.AddElement(tree.Root, "bm")
		bib := tree.AddElement(bm, "bib")
		for b := 0; b < 2; b++ {
			bb := tree.AddElement(bib, "bb")
			tree.AddText(bb, authors.name(rng)+" "+g.text(5, rng))
		}
	case ieeeNonTransactions:
		hdr := tree.AddElement(tree.Root, "hdr")
		jn := tree.AddElement(hdr, "jn")
		tree.AddText(jn, "ieee "+journal.pick(rng)+" magazine")
		atl := tree.AddElement(hdr, "atl")
		tree.AddText(atl, g.text(8+rng.Intn(4), rng))
		aug := tree.AddElement(hdr, "aug")
		for a := 0; a < 1+rng.Intn(3); a++ {
			au := tree.AddElement(aug, "au")
			tree.AddText(au, authors.name(rng))
		}
		kwg := tree.AddElement(hdr, "kwd")
		tree.AddText(kwg, kwds.pick(rng))
		bdy := tree.AddElement(tree.Root, "bdy")
		for sec := 0; sec < 2+rng.Intn(3); sec++ {
			se := tree.AddElement(bdy, "sec")
			h := tree.AddElement(se, "h")
			tree.AddText(h, g.text(3+rng.Intn(2), rng))
			for p := 0; p < 1+rng.Intn(3); p++ {
				par := tree.AddElement(se, "para")
				tree.AddText(par, g.text(20+rng.Intn(12), rng))
			}
		}
	}
	return tree
}
