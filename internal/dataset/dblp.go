package dataset

import (
	"fmt"
	"math/rand"

	"xmlclust/internal/xmltree"
)

// DBLP structural categories (Sect. 5.2: "journal articles", "conference
// papers", "books", "book chapters").
const (
	dblpArticle = iota
	dblpInproceedings
	dblpBook
	dblpIncollection
)

var dblpStructNames = []string{"article", "inproceedings", "book", "incollection"}

// dblpTopics are the six topical classes of the paper's DBLP subset.
const dblpNumTopics = 6

// dblpHybrid enumerates the 16 observed structure×topic combinations
// (article and inproceedings span all six topics; book and incollection
// two each), matching the paper's 16 hybrid classes.
var dblpHybrid = func() [][2]int {
	var combos [][2]int
	for t := 0; t < dblpNumTopics; t++ {
		combos = append(combos, [2]int{dblpArticle, t})
	}
	for t := 0; t < dblpNumTopics; t++ {
		combos = append(combos, [2]int{dblpInproceedings, t})
	}
	combos = append(combos, [2]int{dblpBook, 0}, [2]int{dblpBook, 3})
	combos = append(combos, [2]int{dblpIncollection, 1}, [2]int{dblpIncollection, 4})
	return combos
}()

// DBLP generates the bibliographic corpus: one record per document, short
// text fields, 1–3 authors per record (so records yield 1–3 tree tuples,
// reproducing the ~2 transactions/document ratio of the real subset).
// Venue names repeat verbatim within a topical community and authorship is
// community-correlated, as in the real archive.
func DBLP(spec Spec) *Collection {
	docs := spec.docsOr(240)
	rng := rand.New(rand.NewSource(spec.Seed))
	topics := newTopicSet(dblpNumTopics, 70, 200, 0.85, rng)
	names := newNameGen(rng)
	venues := make([]*phrasePool, dblpNumTopics)
	authors := make([]*namePool, dblpNumTopics)
	for t := 0; t < dblpNumTopics; t++ {
		venues[t] = newPhrasePool(topics.gen(t).topic, 3, 3, rng)
		authors[t] = newNamePool(20, names, rng)
	}

	c := &Collection{
		Name:       "DBLP",
		NumStruct:  len(dblpStructNames),
		NumContent: dblpNumTopics,
		NumHybrid:  len(dblpHybrid),
	}
	for i := 0; i < docs; i++ {
		combo := dblpHybrid[i%len(dblpHybrid)]
		s, t := combo[0], combo[1]
		c.StructLabels = append(c.StructLabels, s)
		c.ContentLabels = append(c.ContentLabels, t)
		c.HybridLabels = append(c.HybridLabels, i%len(dblpHybrid))
		c.Trees = append(c.Trees, dblpDoc(rng, topics, venues[t], authors[t], s, t, i))
	}
	return c
}

func dblpDoc(rng *rand.Rand, topics *topicSet, venues *phrasePool, authors *namePool, s, t, idx int) *xmltree.Tree {
	tree := xmltree.NewTree("dblp")
	rec := tree.AddElement(tree.Root, dblpStructNames[s])
	tree.AddAttribute(rec, "key", docKey(dblpStructNames[s], idx))

	nAuthors := 1 + rng.Intn(3)
	for a := 0; a < nAuthors; a++ {
		au := tree.AddElement(rec, "author")
		tree.AddText(au, authors.name(rng))
	}
	title := tree.AddElement(rec, "title")
	tree.AddText(title, topics.gen(t).text(8+rng.Intn(5), rng))
	year := tree.AddElement(rec, "year")
	tree.AddText(year, fmt.Sprintf("%d", 1995+rng.Intn(15)))

	switch s {
	case dblpArticle:
		j := tree.AddElement(rec, "journal")
		tree.AddText(j, "journal of "+venues.pick(rng))
		v := tree.AddElement(rec, "volume")
		tree.AddText(v, fmt.Sprintf("%d", 1+rng.Intn(40)))
		p := tree.AddElement(rec, "pages")
		tree.AddText(p, pageRange(rng))
	case dblpInproceedings:
		b := tree.AddElement(rec, "booktitle")
		tree.AddText(b, "proceedings of "+venues.pick(rng))
		p := tree.AddElement(rec, "pages")
		tree.AddText(p, pageRange(rng))
	case dblpBook:
		pub := tree.AddElement(rec, "publisher")
		tree.AddText(pub, "press of "+venues.pick(rng))
		isbn := tree.AddElement(rec, "isbn")
		tree.AddText(isbn, fmt.Sprintf("%d-%d", 100+rng.Intn(900), 1000+rng.Intn(9000)))
	case dblpIncollection:
		b := tree.AddElement(rec, "booktitle")
		tree.AddText(b, "handbook of "+venues.pick(rng))
		ch := tree.AddElement(rec, "chapter")
		tree.AddText(ch, fmt.Sprintf("%d", 1+rng.Intn(20)))
	}
	return tree
}

func pageRange(rng *rand.Rand) string {
	lo := 1 + rng.Intn(400)
	return fmt.Sprintf("%d-%d", lo, lo+5+rng.Intn(20))
}
