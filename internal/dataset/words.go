// Package dataset generates the four synthetic XML corpora the experiments
// run on, reproducing the *class geometry* of the paper's real collections
// (Sect. 5.2): DBLP (4 structural × 6 topical → 16 hybrid classes, short
// texts), IEEE (2 structural × 8 topical → 14 hybrid, long sectioned
// articles), Shakespeare (3 structural × 5 topical → 12 hybrid, few long
// plays) and Wikipedia (21 topical classes over a homogeneous structure).
// See DESIGN.md §3 for why this substitution preserves the paper's
// conclusions.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// vocabulary is a generated word list with Zipf-ish sampling.
type vocabulary struct {
	words []string
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
	"sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
	"va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
}

// newVocabulary builds n distinct pseudo-words for vocabulary id tag. The
// first syllable encodes the vocabulary id, so vocabularies are pairwise
// disjoint and survive stemming without cross-vocabulary collisions.
func newVocabulary(tag int, n int, rng *rand.Rand) *vocabulary {
	marker := syllables[tag%len(syllables)]
	seen := map[string]struct{}{}
	words := make([]string, 0, n)
	for len(words) < n {
		var b strings.Builder
		b.WriteString(marker)
		k := 2 + rng.Intn(2)
		for s := 0; s < k; s++ {
			b.WriteString(syllables[rng.Intn(len(syllables))])
		}
		w := b.String()
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	return &vocabulary{words: words}
}

// sample draws one word with a power-law rank bias (low ranks frequent).
func (v *vocabulary) sample(rng *rand.Rand) string {
	u := rng.Float64()
	idx := int(u * u * float64(len(v.words)))
	if idx >= len(v.words) {
		idx = len(v.words) - 1
	}
	return v.words[idx]
}

// textGen mixes a topic vocabulary with shared background noise.
type textGen struct {
	topic      *vocabulary
	background *vocabulary
	// topicProb is the probability of drawing from the topic vocabulary.
	topicProb float64
}

// text produces n space-separated words.
func (g *textGen) text(n int, rng *rand.Rand) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		if rng.Float64() < g.topicProb {
			b.WriteString(g.topic.sample(rng))
		} else {
			b.WriteString(g.background.sample(rng))
		}
	}
	return b.String()
}

// nameGen produces person-like names from a dedicated vocabulary.
type nameGen struct{ v *vocabulary }

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{v: newVocabulary(7, 300, rng)}
}

func (ng *nameGen) name(rng *rand.Rand) string {
	return capitalize(ng.v.sample(rng)) + " " + capitalize(ng.v.sample(rng))
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// phrasePool is a small set of fixed multi-word strings reused verbatim —
// the synthetic analogue of the exact-match categorical fields of the real
// corpora (conference names, journal titles, keywords, portal categories)
// that give γ-matching its anchors.
type phrasePool struct {
	phrases []string
}

func newPhrasePool(v *vocabulary, count, wordsEach int, rng *rand.Rand) *phrasePool {
	pp := &phrasePool{}
	seen := map[string]struct{}{}
	for len(pp.phrases) < count {
		var b strings.Builder
		for w := 0; w < wordsEach; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.sample(rng))
		}
		p := b.String()
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		pp.phrases = append(pp.phrases, p)
	}
	return pp
}

func (pp *phrasePool) pick(rng *rand.Rand) string {
	return pp.phrases[rng.Intn(len(pp.phrases))]
}

// namePool draws author-like names from a per-topic pool with occasional
// cross-topic names, mimicking community-correlated authorship.
type namePool struct {
	local  []string
	global *nameGen
}

func newNamePool(size int, global *nameGen, rng *rand.Rand) *namePool {
	np := &namePool{global: global}
	for i := 0; i < size; i++ {
		np.local = append(np.local, global.name(rng))
	}
	return np
}

func (np *namePool) name(rng *rand.Rand) string {
	if rng.Float64() < 0.85 {
		return np.local[rng.Intn(len(np.local))]
	}
	return np.global.name(rng)
}

// topicSet prepares per-topic generators sharing one background vocabulary.
type topicSet struct {
	gens []*textGen
	bg   *vocabulary
}

func newTopicSet(numTopics, topicWords, bgWords int, topicProb float64, rng *rand.Rand) *topicSet {
	bg := newVocabulary(0, bgWords, rng)
	ts := &topicSet{bg: bg}
	for t := 0; t < numTopics; t++ {
		ts.gens = append(ts.gens, &textGen{
			topic:      newVocabulary(t+10, topicWords, rng),
			background: bg,
			topicProb:  topicProb,
		})
	}
	return ts
}

func (ts *topicSet) gen(topic int) *textGen { return ts.gens[topic] }

// docKey produces identifiers such as "conf/kd/Doc42".
func docKey(prefix string, i int) string { return fmt.Sprintf("%s/%04d", prefix, i) }
