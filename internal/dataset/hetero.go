package dataset

import "xmlclust/internal/xmltree"

// dblpSynonymTags renames DBLP element names to plausible alternatives, as
// produced by sources with different markup vocabularies (the paper's
// intro scenario). camelCase/dashed variants are recoverable by the
// lexical matcher; true synonyms need a dictionary.
var dblpSynonymTags = map[string]string{
	"author":    "writer",
	"title":     "name",
	"journal":   "periodical",
	"booktitle": "bookTitle",
	"year":      "pubYear",
	"pages":     "page-range",
	"publisher": "press",
	"volume":    "vol",
	"isbn":      "isbn-code",
	"chapter":   "chapter-no",
}

// RenameTags rewrites element labels in place according to the mapping
// (attribute and text labels are left alone). Returns the tree for
// chaining.
func RenameTags(t *xmltree.Tree, mapping map[string]string) *xmltree.Tree {
	for _, n := range t.Nodes {
		if n.Kind != xmltree.Element {
			continue
		}
		if repl, ok := mapping[n.Label]; ok {
			n.Label = repl
		}
	}
	return t
}

// DBLPHeterogeneous generates the DBLP corpus with half of the documents
// re-tagged through the synonym vocabulary — same reference classes, two
// markup dialects. With the paper's exact Dirichlet Δ the dialects never
// match structurally; the semantics extension (dictionary + lexical tag
// matching) restores the cross-dialect matches. Used by the semantics
// ablation.
func DBLPHeterogeneous(spec Spec) *Collection {
	c := DBLP(spec)
	c.Name = "DBLP-hetero"
	for i, t := range c.Trees {
		if i%2 == 1 {
			RenameTags(t, dblpSynonymTags)
		}
	}
	return c
}

// DBLPSynonymDictionary returns the synonym classes bridging the two DBLP
// dialects, for use with semantics.Dictionary.
func DBLPSynonymDictionary() [][]string {
	out := make([][]string, 0, len(dblpSynonymTags))
	for from, to := range dblpSynonymTags {
		out = append(out, []string{from, to})
	}
	return out
}
