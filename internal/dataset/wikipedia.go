package dataset

import (
	"math/rand"

	"xmlclust/internal/xmltree"
)

// wikiNumTopics matches the 21 thematic categories (Wikipedia portals) of
// the INEX 2007 corpus subset (Sect. 5.2).
const wikiNumTopics = 21

// Wikipedia generates the encyclopedia corpus: long articles over a
// homogeneous structure, so only content-driven clustering is meaningful
// (as in the paper); the structural classification is the single class 0.
func Wikipedia(spec Spec) *Collection {
	docs := spec.docsOr(210)
	rng := rand.New(rand.NewSource(spec.Seed))
	topics := newTopicSet(wikiNumTopics, 100, 400, 0.8, rng)
	categories := make([]*phrasePool, wikiNumTopics)
	for t := 0; t < wikiNumTopics; t++ {
		categories[t] = newPhrasePool(topics.gen(t).topic, 3, 2, rng)
	}

	c := &Collection{
		Name:       "Wikipedia",
		NumStruct:  1,
		NumContent: wikiNumTopics,
		NumHybrid:  wikiNumTopics,
	}
	for i := 0; i < docs; i++ {
		t := i % wikiNumTopics
		c.StructLabels = append(c.StructLabels, 0)
		c.ContentLabels = append(c.ContentLabels, t)
		c.HybridLabels = append(c.HybridLabels, t)
		c.Trees = append(c.Trees, wikiDoc(rng, topics, categories[t], t, i))
	}
	return c
}

func wikiDoc(rng *rand.Rand, topics *topicSet, cats *phrasePool, t, idx int) *xmltree.Tree {
	g := topics.gen(t)
	tree := xmltree.NewTree("article")
	tree.AddAttribute(tree.Root, "id", docKey("wiki", idx))
	name := tree.AddElement(tree.Root, "name")
	tree.AddText(name, g.text(2+rng.Intn(2), rng))
	// Portal categories: the thematic organization of the INEX corpus is
	// by Wikipedia portal, which articles reference verbatim.
	for c := 0; c < 2; c++ {
		cat := tree.AddElement(tree.Root, "category")
		tree.AddText(cat, "portal "+cats.pick(rng))
	}
	body := tree.AddElement(tree.Root, "body")
	intro := tree.AddElement(body, "p")
	tree.AddText(intro, g.text(30+rng.Intn(12), rng))
	for s := 0; s < 2+rng.Intn(3); s++ {
		sec := tree.AddElement(body, "section")
		h := tree.AddElement(sec, "title")
		tree.AddText(h, g.text(2+rng.Intn(2), rng))
		for p := 0; p < 1+rng.Intn(2); p++ {
			par := tree.AddElement(sec, "p")
			tree.AddText(par, g.text(28+rng.Intn(12), rng))
		}
	}
	return tree
}
