package dataset

import (
	"fmt"

	"xmlclust/internal/corpus"
	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/xmltree"
)

// ClassKind selects which reference classification labels a corpus build.
type ClassKind int

const (
	// ByContent uses the topical classes (content-driven clustering,
	// f ∈ [0,0.3]).
	ByContent ClassKind = iota
	// ByStructure uses the structural classes (f ∈ [0.7,1]).
	ByStructure
	// ByHybrid uses the combined classes (f ∈ [0.4,0.6]).
	ByHybrid
)

func (k ClassKind) String() string {
	switch k {
	case ByContent:
		return "content"
	case ByStructure:
		return "structure"
	case ByHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("ClassKind(%d)", int(k))
}

// Collection is a generated corpus with its three reference
// classifications.
type Collection struct {
	Name  string
	Trees []*xmltree.Tree
	// Per-document labels for each classification.
	StructLabels, ContentLabels, HybridLabels []int
	// Class counts (the paper's "# of clusters" column per setting).
	NumStruct, NumContent, NumHybrid int
}

// Labels returns the per-document labels and class count for a kind.
func (c *Collection) Labels(kind ClassKind) ([]int, int) {
	switch kind {
	case ByStructure:
		return c.StructLabels, c.NumStruct
	case ByHybrid:
		return c.HybridLabels, c.NumHybrid
	default:
		return c.ContentLabels, c.NumContent
	}
}

// K returns the reference class count for a kind — the k fed to the
// clustering algorithms in the paper's tables.
func (c *Collection) K(kind ClassKind) int {
	_, k := c.Labels(kind)
	return k
}

// Spec scales a generator.
type Spec struct {
	// Docs is the number of documents; 0 selects the generator default.
	Docs int
	// Seed drives all randomness; equal specs generate equal corpora.
	Seed int64
	// MaxTuplesPerTree caps tuple extraction (0 = generator default).
	MaxTuplesPerTree int
}

func (s Spec) docsOr(def int) int {
	if s.Docs > 0 {
		return s.Docs
	}
	return def
}

// Source adapts the collection to the streaming ingestion pipeline: an
// in-process corpus.Source yielding the generated trees one at a time with
// the labels of the requested classification.
func (c *Collection) Source(kind ClassKind) corpus.Source {
	labels, _ := c.Labels(kind)
	return corpus.Trees(c.Name, c.Trees, labels)
}

// BuildCorpus turns a collection into a weighted transactional corpus whose
// transactions carry the labels of the requested classification. It runs
// the streaming ingestion pipeline with the given worker count; the result
// is byte-identical for any value (workers ≤ 1 is serial).
func (c *Collection) BuildCorpus(kind ClassKind, maxTuples, workers int) *txn.Corpus {
	cp, _, err := corpus.Build(c.Source(kind), corpus.Options{
		Tuple:   tuple.Options{MaxTuplesPerTree: maxTuples},
		Workers: workers,
	})
	if err != nil {
		// Tree sources neither parse nor touch I/O; Build cannot fail on them.
		panic(fmt.Sprintf("dataset: corpus build: %v", err))
	}
	return cp
}

// TransactionLabels extracts the per-transaction ground truth from a corpus
// built by BuildCorpus.
func TransactionLabels(corpus *txn.Corpus) []int {
	out := make([]int, len(corpus.Transactions))
	for i, tr := range corpus.Transactions {
		out[i] = tr.Label
	}
	return out
}

// Generator names a corpus builder; used by the CLI tools and the
// experiment harness.
type Generator func(Spec) *Collection

// ByName returns the generator for a paper corpus name.
func ByName(name string) (Generator, bool) {
	switch name {
	case "dblp", "DBLP":
		return DBLP, true
	case "ieee", "IEEE":
		return IEEE, true
	case "shakespeare", "Shakespeare":
		return Shakespeare, true
	case "wikipedia", "Wikipedia":
		return Wikipedia, true
	}
	return nil, false
}

// Names lists the four paper corpora.
func Names() []string { return []string{"DBLP", "IEEE", "Shakespeare", "Wikipedia"} }
