package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"xmlclust/internal/tuple"
	"xmlclust/internal/txn"
	"xmlclust/internal/xmltree"
)

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
		if _, ok := ByName(strings.ToLower(name)); !ok {
			t.Errorf("ByName(%q) lowercase missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name resolved")
	}
}

func checkCollection(t *testing.T, c *Collection, wantStruct, wantContent, wantHybrid int) {
	t.Helper()
	n := len(c.Trees)
	if n == 0 {
		t.Fatal("no documents")
	}
	if len(c.StructLabels) != n || len(c.ContentLabels) != n || len(c.HybridLabels) != n {
		t.Fatalf("label arrays misaligned: %d/%d/%d vs %d docs",
			len(c.StructLabels), len(c.ContentLabels), len(c.HybridLabels), n)
	}
	if c.NumStruct != wantStruct || c.NumContent != wantContent || c.NumHybrid != wantHybrid {
		t.Errorf("class counts = %d/%d/%d, want %d/%d/%d",
			c.NumStruct, c.NumContent, c.NumHybrid, wantStruct, wantContent, wantHybrid)
	}
	for i := 0; i < n; i++ {
		if c.StructLabels[i] < 0 || c.StructLabels[i] >= c.NumStruct {
			t.Fatalf("doc %d struct label %d out of range", i, c.StructLabels[i])
		}
		if c.ContentLabels[i] < 0 || c.ContentLabels[i] >= c.NumContent {
			t.Fatalf("doc %d content label %d out of range", i, c.ContentLabels[i])
		}
		if c.HybridLabels[i] < 0 || c.HybridLabels[i] >= c.NumHybrid {
			t.Fatalf("doc %d hybrid label %d out of range", i, c.HybridLabels[i])
		}
		if c.Trees[i] == nil || c.Trees[i].Root == nil {
			t.Fatalf("doc %d tree empty", i)
		}
	}
	// All classes populated when docs ≥ classes.
	if n >= c.NumHybrid {
		seen := map[int]bool{}
		for _, l := range c.HybridLabels {
			seen[l] = true
		}
		if len(seen) != c.NumHybrid {
			t.Errorf("only %d of %d hybrid classes populated", len(seen), c.NumHybrid)
		}
	}
}

// Class geometries from Sect. 5.2 of the paper.
func TestDBLPGeometry(t *testing.T) {
	checkCollection(t, DBLP(Spec{Docs: 64, Seed: 1}), 4, 6, 16)
}

func TestIEEEGeometry(t *testing.T) {
	checkCollection(t, IEEE(Spec{Docs: 28, Seed: 1}), 2, 8, 14)
}

func TestShakespeareGeometry(t *testing.T) {
	checkCollection(t, Shakespeare(Spec{Docs: 12, Seed: 1}), 3, 5, 12)
}

func TestWikipediaGeometry(t *testing.T) {
	checkCollection(t, Wikipedia(Spec{Docs: 42, Seed: 1}), 1, 21, 21)
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		gen, _ := ByName(name)
		a := gen(Spec{Docs: 10, Seed: 9})
		b := gen(Spec{Docs: 10, Seed: 9})
		if len(a.Trees) != len(b.Trees) {
			t.Fatalf("%s: doc counts differ", name)
		}
		for i := range a.Trees {
			sa, sb := xmltree.RenderString(a.Trees[i]), xmltree.RenderString(b.Trees[i])
			if sa != sb {
				t.Fatalf("%s: doc %d differs across equal seeds", name, i)
			}
		}
		c := gen(Spec{Docs: 10, Seed: 10})
		diff := false
		for i := range a.Trees {
			if xmltree.RenderString(a.Trees[i]) != xmltree.RenderString(c.Trees[i]) {
				diff = true
				break
			}
		}
		if !diff {
			t.Errorf("%s: different seeds produced identical corpora", name)
		}
	}
}

func TestDBLPStructuralSchemas(t *testing.T) {
	c := DBLP(Spec{Docs: 32, Seed: 2})
	for i, tree := range c.Trees {
		rec := tree.Root.Children[0]
		want := dblpStructNames[c.StructLabels[i]]
		if rec.Label != want {
			t.Errorf("doc %d: record label %q, want %q", i, rec.Label, want)
		}
	}
}

func TestShakespeareDiscriminatoryPaths(t *testing.T) {
	c := Shakespeare(Spec{Docs: 12, Seed: 3})
	for i, tree := range c.Trees {
		hasPG := len(tree.Apply(xmltree.ParsePath("PLAY.PERSONAE.PGROUP"))) > 0
		hasPro := len(tree.Apply(xmltree.ParsePath("PLAY.ACT.PROLOGUE"))) > 0
		hasEpi := len(tree.Apply(xmltree.ParsePath("PLAY.ACT.EPILOGUE"))) > 0
		switch c.StructLabels[i] {
		case shakPGroup:
			if !hasPG || hasPro || hasEpi {
				t.Errorf("doc %d: pgroup class has pg=%v pro=%v epi=%v", i, hasPG, hasPro, hasEpi)
			}
		case shakPrologue:
			if hasPG || !hasPro || hasEpi {
				t.Errorf("doc %d: prologue class has pg=%v pro=%v epi=%v", i, hasPG, hasPro, hasEpi)
			}
		case shakEpilogue:
			if hasPG || hasPro || !hasEpi {
				t.Errorf("doc %d: epilogue class has pg=%v pro=%v epi=%v", i, hasPG, hasPro, hasEpi)
			}
		}
	}
}

func TestIEEESchemaVariants(t *testing.T) {
	c := IEEE(Spec{Docs: 14, Seed: 4})
	for i, tree := range c.Trees {
		hasFM := len(tree.Apply(xmltree.ParsePath("article.fm"))) > 0
		hasHdr := len(tree.Apply(xmltree.ParsePath("article.hdr"))) > 0
		if c.StructLabels[i] == ieeeTransactions && (!hasFM || hasHdr) {
			t.Errorf("doc %d: transactions article fm=%v hdr=%v", i, hasFM, hasHdr)
		}
		if c.StructLabels[i] == ieeeNonTransactions && (hasFM || !hasHdr) {
			t.Errorf("doc %d: non-transactions article fm=%v hdr=%v", i, hasFM, hasHdr)
		}
	}
}

func TestDBLPTupleRatio(t *testing.T) {
	// ~2 transactions per document (1–3 authors), as in the real subset.
	c := DBLP(Spec{Docs: 60, Seed: 5})
	tuples, _ := tuple.ExtractAll(c.Trees, tuple.Options{})
	ratio := float64(len(tuples)) / float64(len(c.Trees))
	if ratio < 1.2 || ratio > 3 {
		t.Errorf("tuples per document = %.2f, want ≈2", ratio)
	}
}

func TestIEEEManyTuplesPerDoc(t *testing.T) {
	c := IEEE(Spec{Docs: 6, Seed: 6})
	_, results := tuple.ExtractAll(c.Trees, tuple.Options{MaxTuplesPerTree: 64})
	for i, r := range results {
		if len(r.Tuples) < 5 {
			t.Errorf("doc %d yields only %d tuples", i, len(r.Tuples))
		}
	}
}

func TestBuildCorpusLabelsAndVectors(t *testing.T) {
	c := DBLP(Spec{Docs: 16, Seed: 7})
	corpus := c.BuildCorpus(ByHybrid, 32, 1)
	if len(corpus.Transactions) == 0 {
		t.Fatal("no transactions")
	}
	labels := TransactionLabels(corpus)
	for i, tr := range corpus.Transactions {
		if labels[i] != c.HybridLabels[tr.Doc] {
			t.Errorf("transaction %d label %d != doc label %d", i, labels[i], c.HybridLabels[tr.Doc])
		}
	}
	// Weighting ran: some item has a non-zero vector.
	nonZero := false
	for id := 0; id < corpus.Items.Len() && !nonZero; id++ {
		nonZero = !corpus.Items.Get(txn.ItemID(id)).Vector.IsZero()
	}
	if !nonZero {
		t.Error("no weighted vectors after BuildCorpus")
	}
}

func TestLabelsSelector(t *testing.T) {
	c := DBLP(Spec{Docs: 16, Seed: 8})
	if _, k := c.Labels(ByContent); k != 6 {
		t.Errorf("content k = %d", k)
	}
	if _, k := c.Labels(ByStructure); k != 4 {
		t.Errorf("structure k = %d", k)
	}
	if _, k := c.Labels(ByHybrid); k != 16 {
		t.Errorf("hybrid k = %d", k)
	}
	if c.K(ByContent) != 6 {
		t.Errorf("K() = %d", c.K(ByContent))
	}
}

func TestClassKindString(t *testing.T) {
	if ByContent.String() != "content" || ByStructure.String() != "structure" || ByHybrid.String() != "hybrid" {
		t.Error("ClassKind strings wrong")
	}
	if ClassKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestVocabularyDisjoint(t *testing.T) {
	// Words from different topic vocabularies must not collide (the marker
	// syllable guarantees it).
	rng := rand.New(rand.NewSource(12))
	ts := newTopicSet(6, 80, 120, 0.8, rng)
	seen := map[string]int{}
	for tIdx, g := range ts.gens {
		for _, w := range g.topic.words {
			if prev, ok := seen[w]; ok && prev != tIdx {
				t.Fatalf("word %q in topics %d and %d", w, prev, tIdx)
			}
			seen[w] = tIdx
		}
	}
}

func TestPhrasePoolAndNamePool(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	v := newVocabulary(3, 40, rng)
	pp := newPhrasePool(v, 5, 3, rng)
	if len(pp.phrases) != 5 {
		t.Fatalf("phrases = %d", len(pp.phrases))
	}
	for _, p := range pp.phrases {
		if got := len(strings.Fields(p)); got != 3 {
			t.Errorf("phrase %q has %d words", p, got)
		}
	}
	// pick returns pool members only.
	for i := 0; i < 50; i++ {
		found := false
		p := pp.pick(rng)
		for _, q := range pp.phrases {
			if p == q {
				found = true
			}
		}
		if !found {
			t.Fatalf("pick returned foreign phrase %q", p)
		}
	}
	np := newNamePool(10, newNameGen(rng), rng)
	if len(np.local) != 10 {
		t.Fatalf("name pool = %d", len(np.local))
	}
	if np.name(rng) == "" {
		t.Error("empty name")
	}
}

func TestSampleBiasTowardLowRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	v := newVocabulary(2, 100, rng)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[v.sample(rng)]++
	}
	firstHalf, secondHalf := 0, 0
	idx := map[string]int{}
	for i, w := range v.words {
		idx[w] = i
	}
	for w, c := range counts {
		if idx[w] < 50 {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	if firstHalf <= secondHalf {
		t.Errorf("sampling not rank-biased: %d vs %d", firstHalf, secondHalf)
	}
}

func TestRenderedDocsParse(t *testing.T) {
	for _, name := range Names() {
		gen, _ := ByName(name)
		c := gen(Spec{Docs: 4, Seed: 11})
		for i, tree := range c.Trees {
			out := xmltree.RenderString(tree)
			re, err := xmltree.ParseString(out, xmltree.DefaultParseOptions())
			if err != nil {
				t.Fatalf("%s doc %d roundtrip: %v", name, i, err)
			}
			if re.Root.Label != tree.Root.Label {
				t.Errorf("%s doc %d root changed", name, i)
			}
			if got, want := len(re.Leaves()), len(tree.Leaves()); got != want {
				t.Errorf("%s doc %d leaves %d != %d", name, i, got, want)
			}
		}
	}
}

func TestDBLPHeterogeneous(t *testing.T) {
	c := DBLPHeterogeneous(Spec{Docs: 16, Seed: 3})
	if c.Name != "DBLP-hetero" {
		t.Errorf("name = %q", c.Name)
	}
	// Even documents keep the original vocabulary, odd ones are renamed.
	sawWriter, sawAuthor := false, false
	for i, tree := range c.Trees {
		for _, n := range tree.Nodes {
			switch n.Label {
			case "writer":
				if i%2 == 0 {
					t.Errorf("doc %d (original dialect) has renamed tag", i)
				}
				sawWriter = true
			case "author":
				if i%2 == 1 {
					t.Errorf("doc %d (synonym dialect) kept original tag", i)
				}
				sawAuthor = true
			}
		}
	}
	if !sawWriter || !sawAuthor {
		t.Error("both dialects should appear")
	}
}

func TestRenameTags(t *testing.T) {
	tree, _ := xmltree.ParseString(`<a><b x="1">t</b></a>`, xmltree.DefaultParseOptions())
	RenameTags(tree, map[string]string{"b": "c"})
	if got := tree.Answer(xmltree.ParsePath("a.c.S")); len(got) != 1 {
		t.Errorf("renamed path not answerable: %v", got)
	}
	// Attribute labels untouched.
	if got := tree.Answer(xmltree.ParsePath("a.c.@x")); len(got) != 1 {
		t.Errorf("attribute lost: %v", got)
	}
}

func TestDBLPSynonymDictionary(t *testing.T) {
	classes := DBLPSynonymDictionary()
	if len(classes) == 0 {
		t.Fatal("empty dictionary")
	}
	for _, cl := range classes {
		if len(cl) != 2 {
			t.Errorf("class %v should pair original with synonym", cl)
		}
	}
}
