package experiments

import (
	"fmt"
	"io"
)

// TableRow is one (dataset, m) accuracy entry of Tables 1–2.
type TableRow struct {
	Dataset string
	K       int
	M       int
	F       float64
	Purity  float64
	NMI     float64
	Trash   float64
	Rounds  int
}

// TableResult reproduces one sub-table of Table 1 (equal split) or
// Table 2 (unequal split) for one clustering setting.
type TableResult struct {
	Setting Setting
	Unequal bool
	Rows    []TableRow
}

// AccuracyTable runs one sub-table: every dataset of the setting × every
// network size, averaging the F-measure over the setting's f values and the
// scale's seeds.
func AccuracyTable(setting Setting, unequal bool, scale Scale) (*TableResult, error) {
	res := &TableResult{Setting: setting, Unequal: unequal}
	for _, ds := range TableDatasets(setting.Kind) {
		for _, m := range scale.TableMs {
			spec := RunSpec{
				Dataset: ds, Kind: setting.Kind,
				Gamma: BestGamma(ds, setting.Kind),
				Peers: m, Workers: scale.Workers, Unequal: unequal,
				Docs: scale.Docs[ds], MaxTuples: scale.MaxTuples,
			}
			r, err := AverageF(spec, setting.Fs, scale.tableSeeds())
			if err != nil {
				return nil, fmt.Errorf("table %s m=%d: %w", ds, m, err)
			}
			res.Rows = append(res.Rows, TableRow{
				Dataset: ds, K: r.K, M: m,
				F: r.F, Purity: r.Purity, NMI: r.NMI, Trash: r.Trash, Rounds: r.Rounds,
			})
		}
	}
	return res, nil
}

// Write renders the sub-table in the paper's row format.
func (t *TableResult) Write(w io.Writer) {
	split := "equally"
	table := "Table 1"
	if t.Unequal {
		split = "unequally"
		table = "Table 2"
	}
	fmt.Fprintf(w, "%s — clustering accuracy, data %s distributed: %s\n", table, split, t.Setting.Name)
	fmt.Fprintf(w, "%-12s %10s %8s %12s %8s %8s\n", "set", "#clusters", "#nodes", "F-measure", "purity", "NMI")
	prev := ""
	for _, r := range t.Rows {
		name := r.Dataset
		kcol := fmt.Sprintf("%d", r.K)
		if name == prev {
			name, kcol = "", ""
		} else {
			prev = name
		}
		fmt.Fprintf(w, "%-12s %10s %8d %12.3f %8.3f %8.3f\n", name, kcol, r.M, r.F, r.Purity, r.NMI)
	}
}

// CentralizedLoss returns, per dataset, F(m=1) − F(m) at the given m — the
// paper's loss-of-accuracy check against the saturation point (Sect. 5.5.2
// reports losses below 0.2).
func (t *TableResult) CentralizedLoss(m int) map[string]float64 {
	base := map[string]float64{}
	at := map[string]float64{}
	for _, r := range t.Rows {
		if r.M == 1 {
			base[r.Dataset] = r.F
		}
		if r.M == m {
			at[r.Dataset] = r.F
		}
	}
	out := map[string]float64{}
	for ds, b := range base {
		if v, ok := at[ds]; ok {
			out[ds] = b - v
		}
	}
	return out
}
