package experiments

import (
	"context"
	"fmt"
	"io"

	"xmlclust/internal/cluster"
	"xmlclust/internal/core"
	"xmlclust/internal/dataset"
	"xmlclust/internal/eval"
	"xmlclust/internal/semantics"
	"xmlclust/internal/sim"
)

// SemanticsPoint is one matcher's score on the heterogeneous corpus.
type SemanticsPoint struct {
	Matcher string
	F       float64
	Trash   float64
}

// SemanticsAblation evaluates the Sect. 6 extension: structure-driven
// clustering of a two-dialect DBLP corpus (half the documents use synonym
// tag names) under three Δ functions — the paper's exact equality, the
// lexical tag-name matcher, and a dictionary+lexical chain. Exact Δ cannot
// match across dialects, so the dialects split each structural class in
// two; the semantic matchers restore the cross-dialect matches.
func SemanticsAblation(scale Scale, seed int64) ([]SemanticsPoint, error) {
	col := dataset.DBLPHeterogeneous(dataset.Spec{Docs: scale.Docs["DBLP"], Seed: DataSeed})
	corpus := col.BuildCorpus(dataset.ByStructure, scale.MaxTuples, scale.Workers)
	labels := dataset.TransactionLabels(corpus)
	k := col.K(dataset.ByStructure)

	dict := semantics.NewDictionary()
	for _, class := range dataset.DBLPSynonymDictionary() {
		dict.AddSynonyms(class...)
	}
	matchers := []struct {
		name string
		m    semantics.TagSimilarity
	}{
		{"exact Δ (paper)", semantics.Exact{}},
		{"lexical tag matching", semantics.NewLexical()},
		{"dictionary + lexical chain", semantics.Chain{dict, semantics.NewLexical()}},
	}

	var out []SemanticsPoint
	for _, mt := range matchers {
		cx := sim.NewContext(corpus, sim.Params{F: 0.85, Gamma: 0.6})
		cx.TagSim = mt.m
		bestF, bestTrash := -1.0, 0.0
		for s := seed; s < seed+3; s++ {
			res, err := core.Run(context.Background(), cx, corpus, core.Options{
				K: k, Params: cx.Params, Peers: 1, Workers: scale.Workers,
				Partition: core.EqualPartition(len(corpus.Transactions), 1, s),
				Seed:      s, Rule: cluster.ReturnBestObjective,
			})
			if err != nil {
				return nil, fmt.Errorf("semantics ablation %s: %w", mt.name, err)
			}
			if f := eval.FMeasure(labels, res.Assign, k); f > bestF {
				bestF = f
				bestTrash = eval.TrashFraction(labels, res.Assign)
			}
		}
		out = append(out, SemanticsPoint{Matcher: mt.name, F: bestF, Trash: bestTrash})
	}
	return out, nil
}

// WriteSemanticsAblation renders the comparison.
func WriteSemanticsAblation(w io.Writer, pts []SemanticsPoint) {
	fmt.Fprintln(w, "Ablation — semantic tag similarity (Sect. 6 extension; two-dialect DBLP, structure-driven)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-28s F=%.3f trash=%.2f\n", p.Matcher, p.F, p.Trash)
	}
}
