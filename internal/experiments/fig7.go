package experiments

import (
	"fmt"
	"io"
	"time"

	"xmlclust/internal/dataset"
)

// Fig7Point is one (m, runtime) sample of a Fig. 7 curve.
type Fig7Point struct {
	M       int
	SimTime time.Duration
	Compute time.Duration
	Bytes   int64
	Rounds  int
}

// Fig7Series is one curve (full-size or halved dataset).
type Fig7Series struct {
	Label  string
	Points []Fig7Point
}

// Fig7Result reproduces one panel of Fig. 7: clustering time vs number of
// nodes, full and halved dataset, structure/content-driven setting.
type Fig7Result struct {
	Dataset    string
	Full, Half Fig7Series
}

// SaturationM returns the smallest m whose runtime is within tol of the
// series minimum — the paper's "stabilization point" (Sect. 5.5.1).
func (s Fig7Series) SaturationM(tol float64) int {
	if len(s.Points) == 0 {
		return 0
	}
	min := s.Points[0].SimTime
	for _, p := range s.Points {
		if p.SimTime < min {
			min = p.SimTime
		}
	}
	for _, p := range s.Points {
		if float64(p.SimTime) <= float64(min)*(1+tol) {
			return p.M
		}
	}
	return s.Points[len(s.Points)-1].M
}

// Fig7 runs one panel. Each m is sampled once per seed and averaged.
func Fig7(ds string, scale Scale) (*Fig7Result, error) {
	res := &Fig7Result{Dataset: ds}
	for _, half := range []bool{false, true} {
		docs := scale.Docs[ds]
		label := "full"
		if half {
			docs = scale.HalfDocs(ds)
			label = "half"
		}
		series := Fig7Series{Label: label}
		kind := dataset.ByHybrid
		if ds == "Wikipedia" {
			kind = dataset.ByContent // no structural variety (Sect. 5.2)
		}
		for _, m := range scale.FigMs {
			spec := RunSpec{
				Dataset: ds, Kind: kind,
				Gamma: BestGamma(ds, kind),
				Peers: m, Workers: scale.Workers,
				Docs: docs, MaxTuples: scale.MaxTuples,
			}
			r, err := AverageF(spec, HybridDriven.Fs, scale.Seeds)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s m=%d: %w", ds, m, err)
			}
			series.Points = append(series.Points, Fig7Point{
				M: m, SimTime: r.SimTime, Compute: r.Compute, Bytes: r.Bytes, Rounds: r.Rounds,
			})
		}
		if half {
			res.Half = series
		} else {
			res.Full = series
		}
	}
	return res, nil
}

// Write renders the panel in the paper's series form.
func (r *Fig7Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig. 7 — clustering time vs number of nodes (%s, f∈[0.4,0.6], equal split)\n", r.Dataset)
	fmt.Fprintf(w, "%6s  %16s  %16s\n", "nodes", "time(full)", "time(half)")
	for i, p := range r.Full.Points {
		var half time.Duration
		if i < len(r.Half.Points) {
			half = r.Half.Points[i].SimTime
		}
		fmt.Fprintf(w, "%6d  %16s  %16s\n", p.M, p.SimTime.Round(time.Microsecond), half.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "saturation point: full=%d half=%d nodes (tol 15%%)\n",
		r.Full.SaturationM(0.15), r.Half.SaturationM(0.15))
}
