package experiments

import (
	"fmt"
	"io"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/dataset"
)

// GammaPoint is one sample of the γ sensitivity sweep.
type GammaPoint struct {
	Gamma float64
	F     float64
	Trash float64
}

// GammaSweep reproduces the paper's γ tuning protocol (Sect. 5.1 varies γ
// in [0.5, 1) with step 0.05; the sweep here uses 0.1 steps by default).
func GammaSweep(ds string, kind dataset.ClassKind, f float64, gammas []float64, scale Scale, seed int64) ([]GammaPoint, error) {
	var out []GammaPoint
	for _, g := range gammas {
		r, err := Execute(RunSpec{
			Dataset: ds, Kind: kind, F: f, Gamma: g, Peers: 1, Workers: scale.Workers,
			Docs: scale.Docs[ds], MaxTuples: scale.MaxTuples, Seed: seed,
		})
		if err != nil {
			return nil, fmt.Errorf("gamma sweep %s γ=%.2f: %w", ds, g, err)
		}
		out = append(out, GammaPoint{Gamma: g, F: r.F, Trash: r.Trash})
	}
	return out, nil
}

// WriteGammaSweep renders the sweep.
func WriteGammaSweep(w io.Writer, ds string, pts []GammaPoint) {
	fmt.Fprintf(w, "Ablation — γ sensitivity (%s, centralized)\n", ds)
	fmt.Fprintf(w, "%8s %12s %8s\n", "γ", "F-measure", "trash")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.2f %12.3f %8.2f\n", p.Gamma, p.F, p.Trash)
	}
}

// RulePoint compares the GenerateTreeTuple return readings.
type RulePoint struct {
	Rule  cluster.ReturnRule
	Label string
	F     float64
	Trash float64
}

// ReturnRuleAblation compares the three readings of Fig. 6's return value
// (DESIGN.md "Deliberate interpretation choices").
func ReturnRuleAblation(ds string, kind dataset.ClassKind, scale Scale, seed int64) ([]RulePoint, error) {
	rules := []RulePoint{
		{Rule: cluster.ReturnBestObjective, Label: "best-objective (default)"},
		{Rule: cluster.ReturnLastImproving, Label: "last-improving (first decrease stops)"},
		{Rule: cluster.ReturnPrevious, Label: "previous (Fig. 6 literal)"},
	}
	f := HybridDriven.Fs[0]
	for i := range rules {
		r, err := Execute(RunSpec{
			Dataset: ds, Kind: kind, F: f, Gamma: BestGamma(ds, kind), Peers: 1,
			Workers: scale.Workers,
			Docs:    scale.Docs[ds], MaxTuples: scale.MaxTuples, Seed: seed,
			Rule: rules[i].Rule,
		})
		if err != nil {
			return nil, fmt.Errorf("rule ablation %s: %w", rules[i].Label, err)
		}
		rules[i].F = r.F
		rules[i].Trash = r.Trash
	}
	return rules, nil
}

// WriteRuleAblation renders the comparison.
func WriteRuleAblation(w io.Writer, ds string, pts []RulePoint) {
	fmt.Fprintf(w, "Ablation — GenerateTreeTuple return rule (%s, hybrid, centralized)\n", ds)
	for _, p := range pts {
		fmt.Fprintf(w, "%-40s F=%.3f trash=%.2f\n", p.Label, p.F, p.Trash)
	}
}

// CachePoint compares runtimes with and without the tag-path pair cache.
type CachePoint struct {
	Cached   bool
	Compute  time.Duration
	PathSims int64
}

// PathCacheAblation measures the Sect. 4.3.2 optimization: precomputing
// pairwise tag-path similarities once instead of per item comparison.
// Both arms run the same match kernel, which dedups alignments within one
// transaction pair (distinct tag-path pairs only) and — on the cached arm
// only — through its scratch-local memo; the PathSims column therefore
// reports Eq. 3 alignments actually computed (Counters.PathSims), the
// direct measure of the cache's effect, rather than the ItemSims−CacheHits
// proxy of the pre-kernel code.
func PathCacheAblation(ds string, scale Scale, seed int64) ([]CachePoint, error) {
	var out []CachePoint
	for _, cached := range []bool{true, false} {
		ClearCorpusCache() // isolate counters per run
		spec := RunSpec{
			Dataset: ds, Kind: dataset.ByHybrid, F: 0.5,
			Gamma: BestGamma(ds, dataset.ByHybrid), Peers: 1,
			Workers: scale.Workers,
			Docs:    scale.Docs[ds], MaxTuples: scale.MaxTuples, Seed: seed,
			DisablePathCache: !cached,
		}
		r, err := Execute(spec)
		if err != nil {
			return nil, fmt.Errorf("cache ablation cached=%v: %w", cached, err)
		}
		out = append(out, CachePoint{Cached: cached, Compute: r.Compute, PathSims: r.PathSims})
	}
	return out, nil
}

// WorkersPoint is one sample of the intra-peer parallelism sweep.
type WorkersPoint struct {
	Workers  int
	WallTime time.Duration
	Compute  time.Duration
	// F checks output invariance: the F-measure must not move with the
	// worker count (the engine guarantees byte-identical assignments).
	F       float64
	Speedup float64 // serial wall time / this wall time
	// PrunedRows counts match-matrix rows the kernel's branch-and-bound
	// skipped (identical for every worker count — the bound is exact and
	// each worker threads its own running argmax).
	PrunedRows int64
	// AllocsPerDoc is the heap-allocation delta of the run divided by the
	// corpus document count — the kernel-win axis of the ablation next to
	// the parallelism axis (speedup).
	AllocsPerDoc float64
}

// WorkersAblation sweeps the intra-peer worker count on a centralized run
// (m = 1 isolates the Relocate/representative loops from communication).
// Runs are repeated and the minimum wall time kept, so the sweep is robust
// against scheduler noise; the F column must stay constant across rows —
// the parallel engine is exact, not approximate.
func WorkersAblation(ds string, workerCounts []int, scale Scale, seed int64) ([]WorkersPoint, error) {
	const repeats = 3
	var out []WorkersPoint
	for _, w := range workerCounts {
		spec := RunSpec{
			Dataset: ds, Kind: dataset.ByHybrid, F: 0.5,
			Gamma: BestGamma(ds, dataset.ByHybrid), Peers: 1, Workers: w,
			Docs: scale.Docs[ds], MaxTuples: scale.MaxTuples, Seed: seed,
		}
		pt := WorkersPoint{Workers: w}
		for rep := 0; rep < repeats; rep++ {
			r, err := Execute(spec)
			if err != nil {
				return nil, fmt.Errorf("workers ablation w=%d: %w", w, err)
			}
			if rep == 0 || r.WallTime < pt.WallTime {
				pt.WallTime = r.WallTime
				pt.Compute = r.Compute
				if r.Docs > 0 {
					pt.AllocsPerDoc = float64(r.Mallocs) / float64(r.Docs)
				}
			}
			pt.F = r.F
			pt.PrunedRows = r.PrunedRows
		}
		out = append(out, pt)
	}
	if len(out) > 0 && out[0].WallTime > 0 {
		for i := range out {
			out[i].Speedup = float64(out[0].WallTime) / float64(out[i].WallTime)
		}
	}
	return out, nil
}

// WriteWorkersAblation renders the sweep. Alongside the parallelism win
// (speedup) it quantifies the kernel win: pruned-rows (match-matrix rows
// the exact branch-and-bound skipped — constant across worker counts) and
// allocs/doc (heap allocations per corpus document — near-constant in
// corpus size once the zero-allocation kernel owns the hot path).
func WriteWorkersAblation(w io.Writer, ds string, pts []WorkersPoint) {
	fmt.Fprintf(w, "Ablation — intra-peer workers (%s, hybrid, centralized)\n", ds)
	fmt.Fprintf(w, "%8s %14s %14s %9s %8s %12s %11s\n",
		"workers", "wall", "compute", "speedup", "F", "pruned-rows", "allocs/doc")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %14s %14s %8.2fx %8.3f %12d %11.0f\n",
			p.Workers, p.WallTime.Round(time.Microsecond),
			p.Compute.Round(time.Microsecond), p.Speedup, p.F,
			p.PrunedRows, p.AllocsPerDoc)
	}
}

// WriteCacheAblation renders the comparison.
func WriteCacheAblation(w io.Writer, ds string, pts []CachePoint) {
	fmt.Fprintf(w, "Ablation — tag-path similarity cache (%s, hybrid, centralized)\n", ds)
	for _, p := range pts {
		state := "on"
		if !p.Cached {
			state = "off"
		}
		fmt.Fprintf(w, "cache %-3s  compute=%-14s path-alignments-computed=%d\n",
			state, p.Compute.Round(time.Microsecond), p.PathSims)
	}
}
