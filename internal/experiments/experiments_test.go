package experiments

import (
	"strings"
	"testing"

	"xmlclust/internal/dataset"
)

// tinyScale keeps experiment-driver tests in the seconds range.
func tinyScale() Scale {
	return Scale{
		Name: "tiny",
		Docs: map[string]int{
			"DBLP": 48, "IEEE": 14, "Shakespeare": 4, "Wikipedia": 42,
		},
		MaxTuples: 16,
		FigMs:     []int{1, 3},
		TableMs:   []int{1, 3},
		Seeds:     []int64{17},
	}
}

func TestExecuteBasics(t *testing.T) {
	r, err := Execute(RunSpec{
		Dataset: "DBLP", Kind: dataset.ByHybrid, F: 0.5, Gamma: 0.8,
		Peers: 1, Docs: 48, MaxTuples: 16, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.F <= 0 || r.F > 1 {
		t.Errorf("F = %v", r.F)
	}
	if r.Rounds == 0 || r.Txns == 0 || r.K != 16 {
		t.Errorf("result = %+v", r)
	}
	if r.SimTime <= 0 || r.Compute <= 0 {
		t.Errorf("times = %v %v", r.SimTime, r.Compute)
	}
	if r.ItemSims == 0 || r.TxnSims == 0 {
		t.Error("similarity counters empty")
	}
}

func TestExecuteUnknownDataset(t *testing.T) {
	if _, err := Execute(RunSpec{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestExecuteKOverride(t *testing.T) {
	r, err := Execute(RunSpec{
		Dataset: "DBLP", Kind: dataset.ByContent, F: 0.2, Gamma: 0.6,
		K: 3, Peers: 1, Docs: 48, MaxTuples: 16, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 3 {
		t.Errorf("K = %d, want 3", r.K)
	}
}

func TestAverageF(t *testing.T) {
	spec := RunSpec{
		Dataset: "DBLP", Kind: dataset.ByHybrid, Gamma: 0.8,
		Peers: 1, Docs: 48, MaxTuples: 16,
	}
	r, err := AverageF(spec, []float64{0.4, 0.6}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.F <= 0 || r.F > 1 {
		t.Errorf("avg F = %v", r.F)
	}
	if _, err := AverageF(spec, nil, []int64{1}); err == nil {
		t.Error("empty f list should fail")
	}
}

func TestFig7Driver(t *testing.T) {
	res, err := Fig7("DBLP", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Full.Points) != 2 || len(res.Half.Points) != 2 {
		t.Fatalf("points = %d/%d", len(res.Full.Points), len(res.Half.Points))
	}
	for _, p := range res.Full.Points {
		if p.SimTime <= 0 {
			t.Errorf("m=%d no simulated time", p.M)
		}
	}
	var sb strings.Builder
	res.Write(&sb)
	out := sb.String()
	for _, frag := range []string{"Fig. 7", "DBLP", "saturation"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	if m := res.Full.SaturationM(0.15); m != 1 && m != 3 {
		t.Errorf("saturation m = %d", m)
	}
}

func TestAccuracyTableDriver(t *testing.T) {
	res, err := AccuracyTable(StructureDriven, false, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 2 network sizes.
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.F < 0 || r.F > 1 {
			t.Errorf("%s m=%d F=%v", r.Dataset, r.M, r.F)
		}
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "Table 1") {
		t.Errorf("missing header:\n%s", sb.String())
	}
	loss := res.CentralizedLoss(3)
	if len(loss) != 3 {
		t.Errorf("loss entries = %d", len(loss))
	}
}

func TestAccuracyTableUnequal(t *testing.T) {
	res, err := AccuracyTable(HybridDriven, true, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Errorf("missing Table 2 header")
	}
}

func TestFig8Driver(t *testing.T) {
	res, err := Fig8("DBLP", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.CXKTime <= 0 || p.PKTime <= 0 {
			t.Errorf("m=%d times %v/%v", p.M, p.CXKTime, p.PKTime)
		}
		if p.M > 1 && (p.CXKBytes == 0 || p.PKBytes == 0) {
			t.Errorf("m=%d bytes %d/%d", p.M, p.CXKBytes, p.PKBytes)
		}
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "PK-means") && !strings.Contains(sb.String(), "PK time") {
		t.Errorf("fig8 output:\n%s", sb.String())
	}
}

func TestGammaSweepDriver(t *testing.T) {
	pts, err := GammaSweep("DBLP", dataset.ByHybrid, 0.5, []float64{0.6, 0.8}, tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var sb strings.Builder
	WriteGammaSweep(&sb, "DBLP", pts)
	if !strings.Contains(sb.String(), "γ") {
		t.Error("sweep output missing header")
	}
}

func TestReturnRuleAblationDriver(t *testing.T) {
	pts, err := ReturnRuleAblation("DBLP", dataset.ByHybrid, tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("rules = %d", len(pts))
	}
	var sb strings.Builder
	WriteRuleAblation(&sb, "DBLP", pts)
	if !strings.Contains(sb.String(), "return rule") {
		t.Error("ablation output missing header")
	}
}

func TestPathCacheAblationDriver(t *testing.T) {
	pts, err := PathCacheAblation("DBLP", tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var sb strings.Builder
	WriteCacheAblation(&sb, "DBLP", pts)
	if !strings.Contains(sb.String(), "cache") {
		t.Error("cache output missing header")
	}
}

func TestBestGammaDefaults(t *testing.T) {
	for _, ds := range dataset.Names() {
		for _, kind := range []dataset.ClassKind{dataset.ByContent, dataset.ByHybrid, dataset.ByStructure} {
			g := BestGamma(ds, kind)
			if g < 0.5 || g > 0.95 {
				t.Errorf("BestGamma(%s,%v) = %v", ds, kind, g)
			}
		}
	}
}

func TestScales(t *testing.T) {
	for _, s := range []Scale{QuickScale(), PaperScale()} {
		for _, ds := range dataset.Names() {
			if s.Docs[ds] <= 0 {
				t.Errorf("%s scale missing %s", s.Name, ds)
			}
			if s.HalfDocs(ds) >= s.Docs[ds] && s.Docs[ds] > 1 {
				t.Errorf("%s half ≥ full for %s", s.Name, ds)
			}
		}
		if len(s.FigMs) == 0 || len(s.TableMs) == 0 || len(s.Seeds) == 0 {
			t.Errorf("%s scale degenerate", s.Name)
		}
	}
}

func TestTableDatasets(t *testing.T) {
	if got := TableDatasets(dataset.ByContent); len(got) != 4 {
		t.Errorf("content datasets = %v", got)
	}
	if got := TableDatasets(dataset.ByHybrid); len(got) != 3 {
		t.Errorf("hybrid datasets = %v (Wikipedia has no structural variety)", got)
	}
}

func TestCorpusCacheReuse(t *testing.T) {
	ClearCorpusCache()
	spec := RunSpec{
		Dataset: "DBLP", Kind: dataset.ByHybrid, F: 0.5, Gamma: 0.8,
		Peers: 1, Docs: 48, MaxTuples: 16, Seed: 1,
	}
	if _, err := Execute(spec); err != nil {
		t.Fatal(err)
	}
	corpusMu.Lock()
	n := len(corpusCache)
	corpusMu.Unlock()
	if n != 1 {
		t.Fatalf("cache entries = %d", n)
	}
	spec.Seed = 2
	if _, err := Execute(spec); err != nil {
		t.Fatal(err)
	}
	corpusMu.Lock()
	n2 := len(corpusCache)
	corpusMu.Unlock()
	if n2 != 1 {
		t.Errorf("seed change should reuse corpus, entries = %d", n2)
	}
}

func TestCostModelDriver(t *testing.T) {
	res, err := CostModel("DBLP", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Measured <= 0 || p.Predicted <= 0 {
			t.Errorf("m=%d measured=%v predicted=%v", p.M, p.Measured, p.Predicted)
		}
	}
	if res.OptimalM <= 0 {
		t.Errorf("optimal m = %v", res.OptimalM)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "cost-model") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestSemanticsAblationDriver(t *testing.T) {
	pts, err := SemanticsAblation(tinyScale(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.F < 0 || p.F > 1 {
			t.Errorf("%s F = %v", p.Matcher, p.F)
		}
	}
	// Semantic matching must not hurt on the two-dialect corpus.
	if pts[2].F+1e-9 < pts[0].F {
		t.Errorf("chain F=%.3f worse than exact F=%.3f", pts[2].F, pts[0].F)
	}
	var sb strings.Builder
	WriteSemanticsAblation(&sb, pts)
	if !strings.Contains(sb.String(), "semantic") {
		t.Errorf("output:\n%s", sb.String())
	}
}
