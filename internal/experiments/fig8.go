package experiments

import (
	"fmt"
	"io"
	"time"

	"xmlclust/internal/dataset"
)

// Fig8Point compares the two algorithms at one network size.
type Fig8Point struct {
	M        int
	CXKTime  time.Duration
	PKTime   time.Duration
	CXKBytes int64
	PKBytes  int64
	CXKF     float64
	PKF      float64
}

// Fig8Result reproduces one panel of Fig. 8 (CXK-means vs PK-means
// clustering time by number of nodes) plus the Sect. 5.5.3 accuracy
// comparison on the same runs.
type Fig8Result struct {
	Dataset string
	Points  []Fig8Point
}

// Fig8 runs one panel: structure/content-driven, equal split, both
// algorithms fed the same partitions and seeds.
func Fig8(ds string, scale Scale) (*Fig8Result, error) {
	res := &Fig8Result{Dataset: ds}
	kind := dataset.ByHybrid
	if ds == "Wikipedia" {
		kind = dataset.ByContent
	}
	for _, m := range scale.FigMs {
		spec := RunSpec{
			Dataset: ds, Kind: kind,
			Gamma: BestGamma(ds, kind),
			Peers: m, Workers: scale.Workers,
			Docs: scale.Docs[ds], MaxTuples: scale.MaxTuples,
		}
		cxk, err := AverageF(spec, HybridDriven.Fs, scale.Seeds)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s cxk m=%d: %w", ds, m, err)
		}
		pkSpec := spec
		pkSpec.Algorithm = PK
		pk, err := AverageF(pkSpec, HybridDriven.Fs, scale.Seeds)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s pk m=%d: %w", ds, m, err)
		}
		res.Points = append(res.Points, Fig8Point{
			M:       m,
			CXKTime: cxk.SimTime, PKTime: pk.SimTime,
			CXKBytes: cxk.Bytes, PKBytes: pk.Bytes,
			CXKF: cxk.F, PKF: pk.F,
		})
	}
	return res, nil
}

// Write renders the panel plus the accuracy-margin summary.
func (r *Fig8Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8 — CXK-means vs PK-means clustering time (%s, f∈[0.4,0.6], equal split)\n", r.Dataset)
	fmt.Fprintf(w, "%6s  %14s  %14s  %12s  %12s\n", "nodes", "CXK time", "PK time", "CXK bytes", "PK bytes")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d  %14s  %14s  %12d  %12d\n",
			p.M, p.CXKTime.Round(time.Microsecond), p.PKTime.Round(time.Microsecond), p.CXKBytes, p.PKBytes)
	}
	fmt.Fprintf(w, "accuracy margin (CXK F − PK F, avg over m>1): %+.3f\n", r.AccuracyMargin())
}

// AccuracyMargin averages CXK F − PK F over the distributed runs (m > 1) —
// the paper reports a +0.03 average advantage (Sect. 5.5.3).
func (r *Fig8Result) AccuracyMargin() float64 {
	sum, n := 0.0, 0
	for _, p := range r.Points {
		if p.M <= 1 {
			continue
		}
		sum += p.CXKF - p.PKF
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
