package experiments

import (
	"fmt"
	"io"
	"time"

	"xmlclust/internal/complexity"
	"xmlclust/internal/dataset"
)

// CostModelPoint pairs a measured runtime with the model prediction.
type CostModelPoint struct {
	M         int
	Measured  time.Duration
	Predicted time.Duration
}

// CostModelResult validates the Sect. 4.3.4 analysis: the analytical f(m)
// is calibrated on two measured points and compared against the whole
// measured curve, together with the predicted optimal network size m*.
type CostModelResult struct {
	Dataset  string
	Points   []CostModelPoint
	OptimalM float64
	Model    complexity.Model
}

// CostModel runs the Fig. 7-style sweep on one corpus and fits the
// analytical model to its first and last points.
func CostModel(ds string, scale Scale) (*CostModelResult, error) {
	kind := dataset.ByHybrid
	if ds == "Wikipedia" {
		kind = dataset.ByContent
	}
	spec := RunSpec{
		Dataset: ds, Kind: kind, Gamma: BestGamma(ds, kind),
		Workers: scale.Workers,
		Docs:    scale.Docs[ds], MaxTuples: scale.MaxTuples,
	}
	pc, err := prepare(spec)
	if err != nil {
		return nil, err
	}
	md := complexity.FromCorpus(pc.corpus, pc.k)

	var measured []CostModelPoint
	for _, m := range scale.FigMs {
		s := spec
		s.Peers = m
		r, err := AverageF(s, HybridDriven.Fs, scale.Seeds)
		if err != nil {
			return nil, fmt.Errorf("cost model %s m=%d: %w", ds, m, err)
		}
		measured = append(measured, CostModelPoint{M: m, Measured: r.SimTime})
	}
	if len(measured) >= 2 {
		first, last := measured[0], measured[len(measured)-1]
		// Calibrate on the extremes; a failed fit (non-hyperbolic
		// measurements at this scale) leaves the defaults in place.
		_ = md.Fit(first.M, first.Measured, last.M, last.Measured)
	}
	for i := range measured {
		measured[i].Predicted = md.GlobalTime(measured[i].M)
	}
	return &CostModelResult{
		Dataset: ds, Points: measured, OptimalM: md.OptimalM(), Model: md,
	}, nil
}

// Write renders measured-vs-predicted rows.
func (r *CostModelResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Sect. 4.3.4 cost-model validation (%s)\n", r.Dataset)
	fmt.Fprintf(w, "%6s  %16s  %16s\n", "m", "measured", "f(m) predicted")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%6d  %16s  %16s\n",
			p.M, p.Measured.Round(time.Microsecond), p.Predicted.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "predicted optimal network size m* = %.1f\n", r.OptimalM)
}
