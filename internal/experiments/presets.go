package experiments

import "xmlclust/internal/dataset"

// Setting is one of the paper's three clustering settings, fixing the f
// sub-range and which reference classification scores the run (Sect. 5.1).
type Setting struct {
	Name string
	Kind dataset.ClassKind
	// Fs are the f values averaged over for this setting (the paper sweeps
	// the whole sub-range in 0.1 steps; the defaults sample it).
	Fs []float64
}

// The three settings with their paper f sub-ranges. The quick profile
// samples one representative f per sub-range; PaperScale widens the sweep
// through Setting.WideFs.
var (
	ContentDriven   = Setting{Name: "content-driven (f∈[0,0.3])", Kind: dataset.ByContent, Fs: []float64{0.2}}
	HybridDriven    = Setting{Name: "structure/content-driven (f∈[0.4,0.6])", Kind: dataset.ByHybrid, Fs: []float64{0.5}}
	StructureDriven = Setting{Name: "structure-driven (f∈[0.7,1])", Kind: dataset.ByStructure, Fs: []float64{0.85}}
)

// WideFs returns the denser f sampling of the setting's sub-range used by
// the paper-geometry profile.
func (s Setting) WideFs() []float64 {
	switch s.Kind {
	case dataset.ByContent:
		return []float64{0.1, 0.2, 0.3}
	case dataset.ByHybrid:
		return []float64{0.4, 0.5, 0.6}
	default:
		return []float64{0.7, 0.8, 0.9}
	}
}

// BestGamma returns the tuned similarity threshold for a dataset/setting
// pair. The paper tunes γ per dataset and setting and reports results for
// the best value ("typically above 0.85" on the real corpora); on the
// synthetic corpora the optimum sits lower for content-driven runs because
// the generated TCU texts have less verbatim repetition than real
// bibliographic fields. The ablation benchmark reproduces the sweep.
func BestGamma(ds string, kind dataset.ClassKind) float64 {
	type key struct {
		ds   string
		kind dataset.ClassKind
	}
	table := map[key]float64{
		{"DBLP", dataset.ByContent}:          0.60,
		{"DBLP", dataset.ByHybrid}:           0.80,
		{"DBLP", dataset.ByStructure}:        0.60,
		{"IEEE", dataset.ByContent}:          0.60,
		{"IEEE", dataset.ByHybrid}:           0.70,
		{"IEEE", dataset.ByStructure}:        0.85,
		{"Shakespeare", dataset.ByContent}:   0.85,
		{"Shakespeare", dataset.ByHybrid}:    0.85,
		{"Shakespeare", dataset.ByStructure}: 0.85,
		{"Wikipedia", dataset.ByContent}:     0.70,
		{"Wikipedia", dataset.ByHybrid}:      0.70,
	}
	if g, ok := table[key{ds, kind}]; ok {
		return g
	}
	return 0.7
}

// Scale bundles the corpus sizes and network sizes of one experiment
// profile. The paper's full datasets are large (IEEE: 211909 transactions);
// the profiles scale the synthetic corpora so the whole suite runs on a
// laptop while keeping every qualitative trend (DESIGN.md §3).
type Scale struct {
	Name string
	// Docs per dataset (full size). The "half" series uses Docs/2.
	Docs map[string]int
	// MaxTuples caps per-tree tuple extraction.
	MaxTuples int
	// FigMs are the network sizes for the runtime figures (paper: 1..19).
	FigMs []int
	// TableMs are the network sizes for the accuracy tables (paper: 1..9).
	TableMs []int
	// Seeds are the run seeds averaged over by the runtime figures.
	Seeds []int64
	// TableSeeds are the run seeds for the accuracy tables (empty = Seeds);
	// accuracy is more initialization-sensitive than runtime, so the quick
	// profile averages more seeds here (the paper averages 10 runs).
	TableSeeds []int64
	// Workers is each peer's intra-peer worker count, threaded into every
	// RunSpec the drivers build. The profiles default to 1 (serial) so that
	// per-peer compute timings match the paper's one-core-per-peer testbed;
	// cxkbench -workers overrides it for wall-clock speed.
	Workers int
}

// tableSeeds resolves the seed list for accuracy tables.
func (s Scale) tableSeeds() []int64 {
	if len(s.TableSeeds) > 0 {
		return s.TableSeeds
	}
	return s.Seeds
}

// QuickScale keeps a full suite run in the minutes range; used by the
// default `go test -bench` invocation.
func QuickScale() Scale {
	return Scale{
		Name:    "quick",
		Workers: 1,
		Docs: map[string]int{
			"DBLP": 160, "IEEE": 36, "Shakespeare": 8, "Wikipedia": 84,
		},
		MaxTuples:  40,
		FigMs:      []int{1, 3, 5, 9, 13, 19},
		TableMs:    []int{1, 3, 5, 9},
		Seeds:      []int64{17},
		TableSeeds: []int64{17, 29, 43},
	}
}

// PaperScale approaches the paper's corpus geometry (still synthetic and
// smaller than the real IEEE collection); expect a multi-hour suite.
func PaperScale() Scale {
	return Scale{
		Name:    "paper",
		Workers: 1,
		Docs: map[string]int{
			"DBLP": 240, "IEEE": 90, "Shakespeare": 14, "Wikipedia": 210,
		},
		MaxTuples:  64,
		FigMs:      []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19},
		TableMs:    []int{1, 3, 5, 7, 9},
		Seeds:      []int64{17, 29, 43},
		TableSeeds: []int64{17, 29, 43, 59, 71},
	}
}

// HalfDocs returns the "halved dataset" size for a dataset under a scale.
func (s Scale) HalfDocs(ds string) int {
	d := s.Docs[ds]
	if d <= 1 {
		return d
	}
	return d / 2
}

// TableDatasets lists the datasets evaluated per setting in Tables 1–2:
// Wikipedia is content-only (no structural variety, Sect. 5.2).
func TableDatasets(kind dataset.ClassKind) []string {
	if kind == dataset.ByContent {
		return []string{"DBLP", "IEEE", "Shakespeare", "Wikipedia"}
	}
	return []string{"DBLP", "IEEE", "Shakespeare"}
}
