// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sect. 5), plus the ablations called out in DESIGN.md.
// Every driver is deterministic for a fixed configuration and prints the
// same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"xmlclust/internal/cluster"
	"xmlclust/internal/core"
	"xmlclust/internal/dataset"
	"xmlclust/internal/eval"
	"xmlclust/internal/p2p"
	"xmlclust/internal/pkmeans"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// Algorithm selects the clustering algorithm under test.
type Algorithm int

const (
	// CXK is the paper's collaborative algorithm.
	CXK Algorithm = iota
	// PK is the non-collaborative parallel K-means baseline.
	PK
)

func (a Algorithm) String() string {
	if a == PK {
		return "PK-means"
	}
	return "CXK-means"
}

// RunSpec describes one clustering run.
type RunSpec struct {
	Dataset string            // "DBLP", "IEEE", "Shakespeare", "Wikipedia"
	Kind    dataset.ClassKind // selects labels and default k
	F       float64
	Gamma   float64
	K       int // 0 → reference class count
	Peers   int
	// Workers bounds each peer's intra-peer parallelism (0/negative = one
	// worker per CPU, 1 = serial; the experiment drivers pass the profile's
	// Workers setting, which defaults to serial for timing fidelity).
	// Results are byte-identical for any value; only timings change.
	Workers int
	Unequal bool // paper's second partitioning scenario
	Seed    int64
	// Docs overrides the corpus size (0 = generator default); the paper's
	// "halved datasets" use Docs = default/2.
	Docs int
	// MaxTuples caps tuple extraction per tree (0 = package default).
	MaxTuples int
	Algorithm Algorithm
	Rule      cluster.ReturnRule
	// DisablePathCache turns off the tag-path similarity cache (ablation).
	DisablePathCache bool
}

// RunResult aggregates the metrics the paper reports.
type RunResult struct {
	F         float64
	Purity    float64
	NMI       float64
	Trash     float64
	Rounds    int
	SimTime   time.Duration // simulated runtime under the network model
	WallTime  time.Duration
	Compute   time.Duration // summed per-peer compute
	Bytes     int64         // modeled traffic
	Msgs      int64
	Txns      int
	Docs      int // distinct source documents in the corpus
	K         int
	ItemSims  int64 // similarity-work counters for the complexity study
	TxnSims   int64
	CacheHits int64
	// PathSims counts Eq. 3 alignments actually computed (not served by
	// the path cache) — the direct measure the cache ablation reports.
	PathSims int64
	// PrunedRows counts match-matrix rows skipped by the similarity
	// kernel's exact branch-and-bound during relocation (work avoided with
	// byte-identical output).
	PrunedRows int64
	// Mallocs is the process-wide heap-allocation delta across the
	// clustering run (runtime.MemStats.Mallocs) — with the zero-allocation
	// kernel it scales with rounds and representatives, not with
	// transaction pairs. Divided by Docs it yields the ablation tables'
	// allocs/doc column. Noisy under concurrent load; treat as indicative.
	Mallocs uint64
}

// corpusKey caches prepared corpora across runs: corpus construction and
// ttf.itf weighting are deterministic in these fields.
type corpusKey struct {
	dataset   string
	kind      dataset.ClassKind
	docs      int
	maxTuples int
	seed      int64
}

var (
	corpusMu    sync.Mutex
	corpusCache = map[corpusKey]*preparedCorpus{}
)

type preparedCorpus struct {
	corpus *txn.Corpus
	labels []int
	k      int
	docs   int
}

// countDocs counts the distinct source documents of a corpus.
func countDocs(c *txn.Corpus) int {
	seen := map[int]struct{}{}
	for _, tr := range c.Transactions {
		if tr.Doc >= 0 {
			seen[tr.Doc] = struct{}{}
		}
	}
	return len(seen)
}

// DataSeed fixes the corpus-generation seed; run seeds only affect
// partitioning and initial representative selection, as in the paper where
// the corpora are fixed and runs vary.
const DataSeed = 424242

func prepare(spec RunSpec) (*preparedCorpus, error) {
	gen, ok := dataset.ByName(spec.Dataset)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", spec.Dataset)
	}
	key := corpusKey{spec.Dataset, spec.Kind, spec.Docs, spec.MaxTuples, DataSeed}
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if pc, ok := corpusCache[key]; ok {
		return pc, nil
	}
	col := gen(dataset.Spec{Docs: spec.Docs, Seed: DataSeed})
	corpus := col.BuildCorpus(spec.Kind, spec.MaxTuples, spec.Workers)
	pc := &preparedCorpus{
		corpus: corpus,
		labels: dataset.TransactionLabels(corpus),
		k:      col.K(spec.Kind),
		docs:   countDocs(corpus),
	}
	corpusCache[key] = pc
	return pc, nil
}

// ClearCorpusCache drops prepared corpora (tests use it to bound memory).
func ClearCorpusCache() {
	corpusMu.Lock()
	corpusCache = map[corpusKey]*preparedCorpus{}
	corpusMu.Unlock()
}

// Execute runs one clustering experiment on a background context.
func Execute(spec RunSpec) (RunResult, error) {
	return ExecuteCtx(context.Background(), spec)
}

// ExecuteCtx runs one clustering experiment; ctx cancels it at the next
// safe boundary of the underlying engines. Every run gets a fresh, COLD
// similarity context on purpose: the drivers calibrate timing curves
// (Fig. 7, the cost model) against measured per-round compute, so warm
// caches carried across runs would make points incomparable. Warm-cache
// reuse across runs belongs to the public Engine, not this harness.
func ExecuteCtx(ctx context.Context, spec RunSpec) (RunResult, error) {
	pc, err := prepare(spec)
	if err != nil {
		return RunResult{}, err
	}
	k := spec.K
	if k <= 0 {
		k = pc.k
	}
	cx := sim.NewContext(pc.corpus, sim.Params{F: spec.F, Gamma: spec.Gamma})
	cx.UseCache = !spec.DisablePathCache

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	n := len(pc.corpus.Transactions)
	var part [][]int
	if spec.Unequal {
		part = core.UnequalPartition(n, spec.Peers, spec.Seed)
	} else {
		part = core.EqualPartition(n, spec.Peers, spec.Seed)
	}

	var res *core.Result
	switch spec.Algorithm {
	case PK:
		res, err = pkmeans.Run(ctx, cx, pc.corpus, pkmeans.Options{
			K: k, Params: cx.Params, Peers: spec.Peers, Partition: part,
			Seed: spec.Seed, Rule: spec.Rule, Workers: spec.Workers,
			SerializeCompute: true,
		})
	default:
		res, err = core.Run(ctx, cx, pc.corpus, core.Options{
			K: k, Params: cx.Params, Peers: spec.Peers, Partition: part,
			Seed: spec.Seed, Rule: spec.Rule, Workers: spec.Workers,
			SerializeCompute: true,
		})
	}
	if err != nil {
		return RunResult{}, err
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	cont := eval.NewContingency(pc.labels, res.Assign, k)
	msgs, bytes := res.TotalTraffic()
	var computeSum time.Duration
	for i := range res.Peers {
		computeSum += res.Peers[i].TotalCompute()
	}
	return RunResult{
		F:          cont.FMeasure(),
		Purity:     cont.Purity(),
		NMI:        cont.NMI(),
		Trash:      eval.TrashFraction(pc.labels, res.Assign),
		Rounds:     res.Rounds,
		SimTime:    res.SimulatedTime(p2p.DefaultTimeModel()),
		WallTime:   res.WallTime,
		Compute:    computeSum,
		Bytes:      bytes,
		Msgs:       msgs,
		Txns:       n,
		Docs:       pc.docs,
		K:          k,
		ItemSims:   cx.Counters.ItemSims.Load(),
		TxnSims:    cx.Counters.TxnSims.Load(),
		CacheHits:  cx.Counters.CacheHits.Load(),
		PathSims:   cx.Counters.PathSims.Load(),
		PrunedRows: cx.Counters.PrunedRows.Load(),
		Mallocs:    memAfter.Mallocs - memBefore.Mallocs,
	}, nil
}

// AverageF runs the spec for every f value and seed given, averaging the
// F-measure — the tables' "F-measure (avg)" protocol (Sect. 5.5.2 averages
// over multiple runs and over the f sub-range of each clustering setting).
func AverageF(spec RunSpec, fs []float64, seeds []int64) (RunResult, error) {
	if len(fs) == 0 || len(seeds) == 0 {
		return RunResult{}, fmt.Errorf("experiments: need at least one f and one seed")
	}
	var agg RunResult
	runs := 0
	for _, f := range fs {
		for _, seed := range seeds {
			s := spec
			s.F = f
			s.Seed = seed
			r, err := Execute(s)
			if err != nil {
				return RunResult{}, err
			}
			agg.F += r.F
			agg.Purity += r.Purity
			agg.NMI += r.NMI
			agg.Trash += r.Trash
			agg.Rounds += r.Rounds
			agg.SimTime += r.SimTime
			agg.WallTime += r.WallTime
			agg.Compute += r.Compute
			agg.Bytes += r.Bytes
			agg.Msgs += r.Msgs
			agg.Txns = r.Txns
			agg.K = r.K
			runs++
		}
	}
	inv := 1.0 / float64(runs)
	agg.F *= inv
	agg.Purity *= inv
	agg.NMI *= inv
	agg.Trash *= inv
	agg.Rounds = int(float64(agg.Rounds)*inv + 0.5)
	agg.SimTime = time.Duration(float64(agg.SimTime) * inv)
	agg.WallTime = time.Duration(float64(agg.WallTime) * inv)
	agg.Compute = time.Duration(float64(agg.Compute) * inv)
	agg.Bytes = int64(float64(agg.Bytes) * inv)
	agg.Msgs = int64(float64(agg.Msgs) * inv)
	return agg, nil
}
