package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFromMapSortsAndDropsZeros(t *testing.T) {
	v := FromMap(map[int32]float64{5: 1, 2: 3, 9: 0, 7: -2})
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	es := v.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Term >= es[i].Term {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
	if v.Weight(9) != 0 {
		t.Errorf("zero weight survived")
	}
	if v.Weight(2) != 3 || v.Weight(7) != -2 {
		t.Errorf("weights wrong: %v", v)
	}
}

func TestFromEntriesPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted entries")
		}
	}()
	FromEntries([]Entry{{Term: 3, Weight: 1}, {Term: 1, Weight: 1}})
}

func TestZeroValueUsable(t *testing.T) {
	var v Sparse
	if !v.IsZero() || v.Len() != 0 || v.Norm() != 0 {
		t.Errorf("zero value not empty")
	}
	if got := Cosine(v, FromMap(map[int32]float64{1: 1})); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
}

func TestDotDisjointAndOverlap(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 3: 4})
	b := FromMap(map[int32]float64{2: 5, 4: 6})
	if got := Dot(a, b); got != 0 {
		t.Errorf("disjoint dot = %v", got)
	}
	c := FromMap(map[int32]float64{1: 1, 3: 2})
	if got := Dot(a, c); !approx(got, 2+8) {
		t.Errorf("dot = %v, want 10", got)
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	v := FromMap(map[int32]float64{1: 0.3, 5: 1.7, 9: 2.2})
	if got := Cosine(v, v); !approx(got, 1) {
		t.Errorf("cos(v,v) = %v", got)
	}
}

func TestCosineScaleInvariant(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1, 2: 2, 3: 3})
	b := Scale(a, 7.5)
	if got := Cosine(a, b); !approx(got, 1) {
		t.Errorf("cos(a, 7.5a) = %v", got)
	}
}

func TestAddCombines(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1, 2: 2})
	b := FromMap(map[int32]float64{2: 3, 4: 4})
	s := Add(a, b)
	if s.Weight(1) != 1 || s.Weight(2) != 5 || s.Weight(4) != 4 {
		t.Errorf("Add wrong: %v", s)
	}
	// Cancellation drops the entry entirely.
	c := Add(FromMap(map[int32]float64{3: 1}), FromMap(map[int32]float64{3: -1}))
	if c.Len() != 0 {
		t.Errorf("cancelled entry survived: %v", c)
	}
}

func TestAddZeroIdentity(t *testing.T) {
	a := FromMap(map[int32]float64{1: 1})
	if got := Add(a, Sparse{}); !Equal(got, a) {
		t.Errorf("a+0 != a")
	}
	if got := Add(Sparse{}, a); !Equal(got, a) {
		t.Errorf("0+a != a")
	}
}

func TestNormMatchesDefinition(t *testing.T) {
	v := FromMap(map[int32]float64{1: 3, 2: 4})
	if !approx(v.Norm(), 5) {
		t.Errorf("norm = %v, want 5", v.Norm())
	}
}

func randomVec(rng *rand.Rand, maxTerms int) Sparse {
	n := rng.Intn(maxTerms)
	m := map[int32]float64{}
	for i := 0; i < n; i++ {
		m[int32(rng.Intn(50))] = rng.Float64()*4 - 2
	}
	return FromMap(m)
}

func TestPropertyDotSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a, b := randomVec(rng, 20), randomVec(rng, 20)
		if !approx(Dot(a, b), Dot(b, a)) {
			t.Fatalf("dot not symmetric: %v %v", a, b)
		}
	}
}

func TestPropertyCosineRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		// Non-negative weights as produced by ttf.itf.
		m1, m2 := map[int32]float64{}, map[int32]float64{}
		for j := 0; j < rng.Intn(15); j++ {
			m1[int32(rng.Intn(30))] = rng.Float64() * 3
		}
		for j := 0; j < rng.Intn(15); j++ {
			m2[int32(rng.Intn(30))] = rng.Float64() * 3
		}
		c := Cosine(FromMap(m1), FromMap(m2))
		if c < 0 || c > 1 {
			t.Fatalf("cosine out of range: %v", c)
		}
	}
}

func TestPropertyAddNormTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := randomVec(rng, 20), randomVec(rng, 20)
		if Add(a, b).Norm() > a.Norm()+b.Norm()+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestPropertyCachedNormConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVec(rng, 25)
		return approx(v.Norm(), v.computeNorm())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	v := FromMap(map[int32]float64{1: 2, 2: -3})
	s := Scale(v, -2)
	if s.Weight(1) != -4 || s.Weight(2) != 6 {
		t.Errorf("Scale wrong: %v", s)
	}
	if !approx(s.Norm(), 2*v.Norm()) {
		t.Errorf("Scale norm wrong: %v vs %v", s.Norm(), v.Norm())
	}
	if !Scale(v, 0).IsZero() {
		t.Errorf("Scale by 0 should be zero vector")
	}
}

func TestStringFormat(t *testing.T) {
	v := FromMap(map[int32]float64{1: 1.5})
	if v.String() != "[1:1.500]" {
		t.Errorf("String = %q", v.String())
	}
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m1, m2 := map[int32]float64{}, map[int32]float64{}
	for i := 0; i < 50; i++ {
		m1[int32(rng.Intn(500))] = rng.Float64()
		m2[int32(rng.Intn(500))] = rng.Float64()
	}
	x, y := FromMap(m1), FromMap(m2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m1, m2 := map[int32]float64{}, map[int32]float64{}
	for i := 0; i < 30; i++ {
		m1[int32(rng.Intn(200))] = rng.Float64()
		m2[int32(rng.Intn(200))] = rng.Float64()
	}
	x, y := FromMap(m1), FromMap(m2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}
