// Package vector provides immutable-by-convention sparse term vectors used
// to represent textual content units (TCUs). Components are kept sorted by
// term id, so dot products and merges run in linear time.
package vector

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Entry is a single (term id, weight) component of a sparse vector.
type Entry struct {
	Term   int32
	Weight float64
}

// Sparse is a sparse vector with entries sorted by ascending term id.
// The zero value is the empty vector, ready to use.
type Sparse struct {
	entries []Entry
	norm    float64 // cached Euclidean norm; 0 means "not computed or empty"
}

// FromMap builds a sparse vector from a term→weight map. Zero weights are
// dropped.
func FromMap(m map[int32]float64) Sparse {
	if len(m) == 0 {
		return Sparse{}
	}
	entries := make([]Entry, 0, len(m))
	for t, w := range m {
		if w != 0 {
			entries = append(entries, Entry{Term: t, Weight: w})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Term < entries[j].Term })
	v := Sparse{entries: entries}
	v.norm = v.computeNorm()
	return v
}

// FromEntries builds a sparse vector from entries that must already be
// sorted by term id with no duplicates; it panics otherwise. Use FromMap
// when the input is unordered.
func FromEntries(entries []Entry) Sparse {
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Term >= entries[i].Term {
			panic(fmt.Sprintf("vector: entries not strictly sorted at %d", i))
		}
	}
	v := Sparse{entries: entries}
	v.norm = v.computeNorm()
	return v
}

// Len returns the number of non-zero components.
func (v Sparse) Len() int { return len(v.entries) }

// IsZero reports whether the vector has no non-zero components.
func (v Sparse) IsZero() bool { return len(v.entries) == 0 }

// Entries exposes the underlying components. Callers must not mutate the
// returned slice.
func (v Sparse) Entries() []Entry { return v.entries }

// Weight returns the weight of term t (0 when absent).
func (v Sparse) Weight(t int32) float64 {
	i := sort.Search(len(v.entries), func(i int) bool { return v.entries[i].Term >= t })
	if i < len(v.entries) && v.entries[i].Term == t {
		return v.entries[i].Weight
	}
	return 0
}

func (v Sparse) computeNorm() float64 {
	var s float64
	for _, e := range v.entries {
		s += e.Weight * e.Weight
	}
	return math.Sqrt(s)
}

// Norm returns the Euclidean norm.
func (v Sparse) Norm() float64 { return v.norm }

// Dot returns the inner product of two sparse vectors in O(len(a)+len(b)).
func Dot(a, b Sparse) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.entries) && j < len(b.entries) {
		ta, tb := a.entries[i].Term, b.entries[j].Term
		switch {
		case ta == tb:
			s += a.entries[i].Weight * b.entries[j].Weight
			i++
			j++
		case ta < tb:
			i++
		default:
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of a and b in [0,1] for non-negative
// weights. The cosine of anything with the zero vector is 0.
func Cosine(a, b Sparse) float64 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	c := Dot(a, b) / (a.norm * b.norm)
	// Clamp rounding noise so downstream threshold comparisons are exact.
	if c > 1 {
		c = 1
	} else if c < 0 {
		c = 0
	}
	return c
}

// Add returns the component-wise sum of a and b.
func Add(a, b Sparse) Sparse {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	out := make([]Entry, 0, len(a.entries)+len(b.entries))
	i, j := 0, 0
	for i < len(a.entries) && j < len(b.entries) {
		ta, tb := a.entries[i].Term, b.entries[j].Term
		switch {
		case ta == tb:
			w := a.entries[i].Weight + b.entries[j].Weight
			if w != 0 {
				out = append(out, Entry{Term: ta, Weight: w})
			}
			i++
			j++
		case ta < tb:
			out = append(out, a.entries[i])
			i++
		default:
			out = append(out, b.entries[j])
			j++
		}
	}
	out = append(out, a.entries[i:]...)
	out = append(out, b.entries[j:]...)
	v := Sparse{entries: out}
	v.norm = v.computeNorm()
	return v
}

// Scale returns v scaled by factor c.
func Scale(v Sparse, c float64) Sparse {
	if c == 0 || v.IsZero() {
		return Sparse{}
	}
	out := make([]Entry, len(v.entries))
	for i, e := range v.entries {
		out[i] = Entry{Term: e.Term, Weight: e.Weight * c}
	}
	sv := Sparse{entries: out}
	sv.norm = math.Abs(c) * v.norm
	return sv
}

// Equal reports exact component-wise equality.
func Equal(a, b Sparse) bool {
	if len(a.entries) != len(b.entries) {
		return false
	}
	for i := range a.entries {
		if a.entries[i] != b.entries[i] {
			return false
		}
	}
	return true
}

// String renders the vector for debugging.
func (v Sparse) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range v.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", e.Term, e.Weight)
	}
	b.WriteByte(']')
	return b.String()
}
