// Package sim implements the XML similarity measures of Sect. 4.1:
//
//   - structural tag-path similarity simS (Eq. 3) with the positional
//     penalty (1+|a−l|)^-1 on Dirichlet tag matches;
//   - content similarity simC: cosine over ttf.itf TCU vectors;
//   - the combined item similarity sim = f·simS + (1−f)·simC (Eq. 1) and
//     the γ-matching predicate (Eq. 2);
//   - the γ-shared-item transaction similarity simγJ (Eq. 4) built on the
//     enhanced-intersection match sets matchγ.
//
// A Context carries the parameters (f, γ) and the collection tables. The
// implementation is organized as four performance tiers, from coldest to
// hottest:
//
//  1. PathCache — the sharded store of Eq. 3 tag-path pair similarities,
//     the precomputation Sect. 4.3.2 identifies as the key optimization.
//     Values depend only on the paths and the Δ function, never on (f, γ),
//     so one cache serves every parameter combination over a corpus.
//  2. ItemSimCache — a bounded, per-(f, γ) memo of Eq. 1 item-pair values
//     (content cosine + structural lookup + f-mix), enabled by Engine
//     contexts; γ-matching re-asks the same pairs every relocation pass.
//  3. The match kernel (kernel.go) — the allocation-free Eq. 4 inner loop.
//     A per-goroutine Scratch holds the resolved columns, similarity
//     matrix and match bitsets, grown in place and reused; MatchCount
//     produces |matchγ| without materializing a set, and
//     TransactionsAtLeast adds exact branch-and-bound row pruning for
//     argmax callers. MatchSet remains as a thin materializing wrapper.
//  4. The columnar layout (txn.Columnar) — builder-built corpora carry a
//     struct-of-arrays arena of item ids and tag-path ids with each
//     transaction as a [start,end) span, so the kernel's n1×n2 pass scans
//     contiguous int32/float64 slices and never dereferences a *txn.Item;
//     transactions without a span (synthetic representatives, literal test
//     corpora) take a table-resolved fallback with identical output.
//
// None of the tiers ever changes a result: the caches store pure functions
// of their keys, the kernel's count and pruning decisions are exact, and
// the columnar columns are derived copies of the item table (equivalence-
// and allocation-guarded in kernel_test.go and CI, with SeedTransactions
// in seed.go as the frozen pointer-based oracle).
package sim

import (
	"sync"
	"sync/atomic"

	"xmlclust/internal/semantics"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// Params are the two knobs of the similarity model.
type Params struct {
	// F ∈ [0,1] tunes the influence of structure vs content (Eq. 1):
	// [0,0.3] content-driven, [0.4,0.6] hybrid, [0.7,1] structure-driven.
	F float64
	// Gamma ∈ [0,1] is the minimum item similarity for γ-matching (Eq. 2).
	Gamma float64
}

// Counters tracks how much similarity work was performed; used by the
// complexity experiments. All fields are updated atomically.
type Counters struct {
	ItemSims      atomic.Int64 // calls to Item (Eq. 1)
	PathSims      atomic.Int64 // structural path alignments actually computed
	TxnSims       atomic.Int64 // calls to Transactions/TransactionsAtLeast (Eq. 4)
	CacheHits     atomic.Int64 // path-pair cache hits
	CacheMisses   atomic.Int64
	ItemCacheHits atomic.Int64 // item-pair cache hits (engine contexts only)
	// PrunedRows counts tr1 rows (one row = up to |tr2| Eq. 1 evaluations)
	// skipped by TransactionsAtLeast's branch-and-bound bound — the work the
	// assignment path avoided without changing any result.
	PrunedRows atomic.Int64
	// ScratchReuses counts kernel invocations that ran on a fully warm
	// Scratch (no buffer had to grow) — the zero-allocation steady state.
	ScratchReuses atomic.Int64
	// ColumnarResolves counts kernel side resolutions that read tag paths
	// straight from a corpus's columnar arena span instead of resolving
	// per-position through the item table — the observable proof that the
	// contiguous-scan fast path is actually taken (tests assert it).
	ColumnarResolves atomic.Int64
	// IndexCandidates counts representatives actually evaluated with the
	// kernel by index-guided relocation scans; IndexSkipped counts the
	// representatives those scans proved could not win — either absent from
	// the candidate list (no qualifying overlap with the document) or cut
	// off by the sorted upper-bound early exit — and therefore never
	// touched. Their sum per document equals the active representative
	// count, so IndexCandidates/documents is the evaluated-reps/doc metric
	// of the relocate bench.
	IndexCandidates atomic.Int64
	IndexSkipped    atomic.Int64
	// RepsReused counts cluster representatives reused verbatim from the
	// delta-round memo because the cluster's membership (and the context)
	// was unchanged since the representative was last refined — each reuse
	// skips the full rank + generateTreeTuple objective loop.
	RepsReused atomic.Int64
	// DocsSkipped counts documents whose relocation was decided entirely
	// from the previous round's cached (cluster, score) without a single
	// kernel evaluation: every representative that could beat the cached
	// winner was unchanged since that score was recorded.
	DocsSkipped atomic.Int64
	// DeltaRepBytes counts exchange bytes saved by the delta representative
	// exchange: for every local representative shipped as an "unchanged"
	// digest marker instead of a re-flattened wire transaction, the full
	// wire size minus the marker size is added here.
	DeltaRepBytes atomic.Int64
}

// Context evaluates similarities for one corpus under fixed Params.
// It is safe for concurrent use: peers and intra-peer workers share one
// Context, so the tag-path pair cache is sharded to keep concurrent
// TagPathSim calls from contending on a single lock.
type Context struct {
	Params   Params
	Items    *txn.ItemTable
	Paths    *xmltree.PathTable
	Counters Counters

	// UseCache controls the tag-path pair cache (on by default; the
	// ablation benchmark turns it off).
	UseCache bool
	// TagSim generalizes the Dirichlet function Δ of Eq. 3. The default is
	// exact tag equality, as published; semantic matchers (synonym
	// dictionaries, lexical tag-name overlap) implement the extension
	// sketched in Sect. 4.1.1/Sect. 6 of the paper.
	TagSim semantics.TagSimilarity

	// ItemCache, when non-nil, memoizes Eq. 1 item-pair similarities for
	// this context. Items are interned content-addressed, so the cached
	// value is a pure function of (pair, Params, TagSim) and results stay
	// byte-identical with the cache on or off. Unlike the structural
	// PathCache it must NOT be shared between contexts with different
	// Params — Eq. 1 folds f and the γ threshold sits on top of it — which
	// is why the engine keys its context cache by Params. Off by default:
	// the paper-reproduction experiments count raw Eq. 1 evaluations and a
	// memo layer would change the measured complexity profile. Set it
	// before the context is used concurrently.
	ItemCache *ItemSimCache

	cache *PathCache
}

type pathPair struct{ a, b xmltree.PathID }

// cacheShards is the shard count of the tag-path pair cache. Power of two
// so the shard index is a mask; sized well above typical worker×peer
// products so that concurrent lookups rarely collide on a shard lock.
const cacheShards = 64

// cacheShard is one lock-striped slice of the pair cache. Entries are pure
// functions of the key, so racing writers always store the same value and
// the cache contents are schedule-independent.
type cacheShard struct {
	mu sync.RWMutex
	m  map[pathPair]float64
}

// PathCache is the sharded store of Eq. 3 tag-path pair similarities — the
// precomputation Sect. 4.3.2 identifies as the key optimization. The cached
// values depend only on the tag paths and the Δ function, never on (f, γ),
// so one PathCache can be shared by every Context over the same PathTable
// and TagSim: a parameter sweep then pays the structural alignments once
// and every subsequent cell runs against a warm cache.
//
// A PathCache is safe for concurrent use. It must NOT be shared between
// contexts whose TagSim differs (the cached values would disagree).
type PathCache struct {
	shards [cacheShards]cacheShard
}

// NewPathCache creates an empty tag-path pair cache.
func NewPathCache() *PathCache {
	pc := &PathCache{}
	for i := range pc.shards {
		pc.shards[i].m = make(map[pathPair]float64)
	}
	return pc
}

// Len returns the number of cached pair similarities.
func (pc *PathCache) Len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

func (pc *PathCache) lookup(key pathPair) (float64, bool) {
	sh := &pc.shards[shardOf(key)]
	sh.mu.RLock()
	s, ok := sh.m[key]
	sh.mu.RUnlock()
	return s, ok
}

func (pc *PathCache) store(key pathPair, s float64) {
	sh := &pc.shards[shardOf(key)]
	sh.mu.Lock()
	sh.m[key] = s
	sh.mu.Unlock()
}

// shardOf hashes a pair onto its shard (multiplicative mixing of the two
// interned ids; the pair is already ordered by the caller).
func shardOf(key pathPair) uint32 {
	h := uint32(key.a)*0x9e3779b1 ^ uint32(key.b)*0x85ebca77
	h ^= h >> 16
	return h & (cacheShards - 1)
}

// itemPair packs an ordered item-id pair into one map key (ids are int32,
// so the pair fits a uint64 exactly; uint64 keys hash measurably faster
// than structs on the memo's hot path).
type itemPair uint64

func packItemPair(a, b txn.ItemID) itemPair {
	if b < a {
		a, b = b, a
	}
	return itemPair(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

// itemShard is one lock-striped slice of an ItemSimCache.
type itemShard struct {
	mu sync.RWMutex
	m  map[itemPair]float64
}

// ItemSimCache is a bounded, sharded memo of Eq. 1 item-pair similarities.
// It is the layer above PathCache: one entry saves the content cosine, the
// structural lookup and the f-mix for a pair that recurs — and γ-matching
// recomputes the same pairs every relocation pass, every round, every run.
// The size cap bounds worst-case memory on huge item domains: once the
// capacity is exhausted, further pairs are computed but not stored
// (results do not change, only the hit rate). Because one memo is only
// valid for one Params value, an engine holding many (F, Gamma) contexts
// shares a single entry budget across all of their memos via
// NewItemSimCacheShared — the aggregate footprint stays bounded no matter
// how large the parameter grid grows.
type ItemSimCache struct {
	perShard int
	budget   *atomic.Int64 // shared remaining-entry budget; nil = per-shard cap only
	shards   [cacheShards]itemShard
}

// DefaultItemCachePairs is the default total capacity of an ItemSimCache
// (≈ 24 MB of map payload at float64 values).
const DefaultItemCachePairs = 1 << 20

// NewItemSimCache creates an item-pair cache holding at most maxPairs
// entries (0 or negative = DefaultItemCachePairs).
func NewItemSimCache(maxPairs int) *ItemSimCache {
	if maxPairs <= 0 {
		maxPairs = DefaultItemCachePairs
	}
	per := maxPairs / cacheShards
	if per < 1 {
		per = 1
	}
	c := &ItemSimCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[itemPair]float64)
	}
	return c
}

// NewItemSimCacheShared creates an item-pair cache whose stores draw from
// a shared remaining-entry budget: caches over many Params values then
// compete for one aggregate capacity instead of multiplying it. The
// budget must be initialized to the total number of entries allowed
// across every cache sharing it.
func NewItemSimCacheShared(budget *atomic.Int64) *ItemSimCache {
	c := &ItemSimCache{perShard: int(^uint(0) >> 1), budget: budget}
	for i := range c.shards {
		c.shards[i].m = make(map[itemPair]float64)
	}
	return c
}

// Len returns the number of cached pair similarities.
func (c *ItemSimCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

func itemShardOf(key itemPair) uint32 {
	h := uint32(key>>32)*0x9e3779b1 ^ uint32(key)*0x85ebca77
	h ^= h >> 16
	return h & (cacheShards - 1)
}

func (c *ItemSimCache) lookup(key itemPair) (float64, bool) {
	sh := &c.shards[itemShardOf(key)]
	sh.mu.RLock()
	s, ok := sh.m[key]
	sh.mu.RUnlock()
	return s, ok
}

func (c *ItemSimCache) store(key itemPair, s float64) {
	if c.budget != nil && c.budget.Add(-1) < 0 {
		c.budget.Add(1)
		return
	}
	sh := &c.shards[itemShardOf(key)]
	sh.mu.Lock()
	_, dup := sh.m[key]
	stored := !dup && len(sh.m) < c.perShard
	if stored {
		sh.m[key] = s
	}
	sh.mu.Unlock()
	if !stored && c.budget != nil {
		c.budget.Add(1) // refund: duplicate or full shard consumed no entry
	}
}

// NewContext builds a similarity context over a corpus with a private
// tag-path pair cache.
func NewContext(c *txn.Corpus, p Params) *Context {
	return NewContextShared(c, p, nil)
}

// NewContextShared builds a similarity context that consults the given
// shared PathCache (nil allocates a private one). Contexts with different
// Params may share a cache — the structural pair similarities are
// independent of (f, γ) — as long as they agree on TagSim.
func NewContextShared(c *txn.Corpus, p Params, cache *PathCache) *Context {
	if cache == nil {
		cache = NewPathCache()
	}
	return &Context{
		Params:   p,
		Items:    c.Items,
		Paths:    c.Paths,
		UseCache: true,
		TagSim:   semantics.Exact{},
		cache:    cache,
	}
}

// Cache exposes the context's tag-path pair cache (shared or private).
func (cx *Context) Cache() *PathCache { return cx.cache }

// CacheLen returns the number of cached tag-path pair similarities.
func (cx *Context) CacheLen() int { return cx.cache.Len() }

// Structural returns simS between two items (Eq. 3), comparing their tag
// paths. The result is symmetric and lies in [0,1].
func (cx *Context) Structural(a, b *txn.Item) float64 {
	return cx.TagPathSim(a.TagPath, b.TagPath)
}

// TagPathSim returns the Eq. 3 similarity of two interned tag paths,
// consulting the pair cache.
func (cx *Context) TagPathSim(pa, pb xmltree.PathID) float64 {
	if pa == pb {
		return 1
	}
	key := pathPair{pa, pb}
	if pb < pa {
		key = pathPair{pb, pa}
	}
	if cx.UseCache {
		if s, ok := cx.cache.lookup(key); ok {
			cx.Counters.CacheHits.Add(1)
			return s
		}
		cx.Counters.CacheMisses.Add(1)
	}
	s := PathSimWith(cx.Paths.Path(pa), cx.Paths.Path(pb), cx.TagSim)
	cx.Counters.PathSims.Add(1)
	if cx.UseCache {
		cx.cache.store(key, s)
	}
	return s
}

// PathSim computes Eq. 3 on two raw tag paths with the paper's exact
// Dirichlet Δ:
//
//	simS = 1/(n+m) · ( Σ_h s(t_ih, p_j, h) + Σ_k s(t_jk, p_i, k) )
//	s(t, p, a) = max_{l=1..L} (1+|a−l|)^-1 · Δ(t, t_l)
//
// The positional factor penalizes tags that match but sit at different
// depths.
func PathSim(pi, pj xmltree.Path) float64 {
	return PathSimWith(pi, pj, semantics.Exact{})
}

// PathSimWith is PathSim with a pluggable tag similarity in place of Δ —
// the semantic-enrichment extension of Sect. 4.1.1.
func PathSimWith(pi, pj xmltree.Path, tagSim semantics.TagSimilarity) float64 {
	n, m := len(pi), len(pj)
	if n == 0 || m == 0 {
		if n == m {
			return 1
		}
		return 0
	}
	total := 0.0
	for h, t := range pi {
		total += bestTagMatch(t, pj, h+1, tagSim)
	}
	for k, t := range pj {
		total += bestTagMatch(t, pi, k+1, tagSim)
	}
	return total / float64(n+m)
}

// bestTagMatch is s(t, p, a) with 1-based position a.
func bestTagMatch(t string, p xmltree.Path, a int, tagSim semantics.TagSimilarity) float64 {
	best := 0.0
	for l1, tl := range p {
		d := tagSim.Sim(t, tl)
		if d == 0 {
			continue
		}
		l := l1 + 1
		dist := a - l
		if dist < 0 {
			dist = -dist
		}
		v := d / float64(1+dist)
		if v > best {
			best = v
		}
	}
	return best
}

// Content returns simC: the cosine similarity of the two items' TCU vectors.
func (cx *Context) Content(a, b *txn.Item) float64 {
	return vector.Cosine(a.Vector, b.Vector)
}

// Item returns sim(ei, ej) = f·simS + (1−f)·simC (Eq. 1), consulting the
// optional item-pair memo first. Counters.ItemSims counts calls either way
// (it measures the algorithm's demand, not the cache's effectiveness —
// that is Counters.ItemCacheHits).
func (cx *Context) Item(a, b *txn.Item) float64 {
	cx.Counters.ItemSims.Add(1)
	var key itemPair
	if cx.ItemCache != nil {
		key = packItemPair(a.ID, b.ID)
		if s, ok := cx.ItemCache.lookup(key); ok {
			cx.Counters.ItemCacheHits.Add(1)
			return s
		}
	}
	f := cx.Params.F
	s := 0.0
	if f > 0 {
		s += f * cx.Structural(a, b)
	}
	if f < 1 {
		s += (1 - f) * cx.Content(a, b)
	}
	if cx.ItemCache != nil {
		cx.ItemCache.store(key, s)
	}
	return s
}

// ItemIDs is Item on interned ids.
func (cx *Context) ItemIDs(a, b txn.ItemID) float64 {
	return cx.Item(cx.Items.Get(a), cx.Items.Get(b))
}

// Matched reports γ-matching of two items (Eq. 2).
func (cx *Context) Matched(a, b *txn.Item) bool {
	return cx.Item(a, b) >= cx.Params.Gamma
}

// MatchSet, MatchCount, Transactions and TransactionsAtLeast — the Eq. 4
// surface — live in kernel.go with the allocation-free match kernel.
