package sim

import (
	"math/rand"
	"testing"

	"xmlclust/internal/semantics"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

var repIndexParamsGrid = []Params{
	{F: 0.5, Gamma: 0.4},  // tag or term alone qualifies
	{F: 0.5, Gamma: 0.6},  // AND regime
	{F: 0.5, Gamma: 0.8},  // high-γ AND regime
	{F: 1, Gamma: 0.6},    // structure only
	{F: 0, Gamma: 0.5},    // content only
	{F: 0.4, Gamma: 0.4},  // f = γ boundary
	{F: 0.7, Gamma: 0.75}, // tagQ and termQ both false, bothQ true
	{F: 0.5, Gamma: 1},    // γ = 1 edge
}

// TestRepIndexSoundness is the core index invariant on randomized corpora
// across every qualification regime: for each (document, representative)
// pair with positive Eq. 4 similarity, the representative appears in the
// document's candidate list and its upper bound dominates the true
// similarity in IEEE arithmetic (≥, not approximately); and the candidate
// list is sorted (bound desc, index asc). The corpus includes empty
// transactions, duplicate representatives, and items whose tag path is
// empty (the sentinel-tag edge: two empty tag paths score simS = 1).
func TestRepIndexSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	corpus := randomKernelCorpus(rng, 100, 40)
	// Items with EMPTY tag paths: interned at the bare answer-marker path,
	// whose tag path strips to nothing. PathSim(empty, empty) = 1, so these
	// items structurally match each other exactly.
	emptyTagPath := corpus.Paths.Intern(xmltree.Path{"S"})
	var emptyItems []txn.ItemID
	for i := 0; i < 3; i++ {
		id := corpus.Items.Intern(emptyTagPath, []string{"e1", "e2", "e3"}[i])
		corpus.Items.SetVector(id, vector.FromMap(map[int32]float64{9: 1}))
		emptyItems = append(emptyItems, id)
	}
	docBase := len(corpus.Transactions)
	for i := 0; i < 4; i++ {
		ids := []txn.ItemID{emptyItems[rng.Intn(len(emptyItems))]}
		if rng.Intn(2) == 0 && len(corpus.Transactions[0].Items) > 0 {
			ids = append(ids, corpus.Transactions[0].Items...)
		}
		corpus.Transactions = append(corpus.Transactions, txn.NewTransaction(ids, docBase+i, 0, -1))
	}
	trs := corpus.Transactions

	for _, p := range repIndexParamsGrid {
		cx := NewContext(corpus, p)
		// Random representative sets including nils, empties and duplicates.
		reps := make([]*txn.Transaction, 12)
		for j := range reps {
			switch rng.Intn(6) {
			case 0:
				// leave nil
			case 1:
				reps[j] = trs[0] // duplicate-prone
			default:
				reps[j] = trs[rng.Intn(len(trs))]
			}
		}
		ix := NewRepIndex()
		ix.Build(cx, reps)
		if !ix.Enabled() {
			t.Fatalf("params %+v: index disabled", p)
		}
		rq := NewRepQuery()
		for di, tr := range trs {
			n := ix.Candidates(tr, rq)
			inCand := map[int]float64{}
			prevUB, prevJ := 2.0, -1
			for c := 0; c < n; c++ {
				j, ub := rq.Candidate(c)
				if ub > prevUB || (ub == prevUB && j < prevJ) {
					t.Fatalf("params %+v doc %d: candidates out of order at %d", p, di, c)
				}
				prevUB, prevJ = ub, j
				inCand[j] = ub
			}
			for j, rep := range reps {
				if rep == nil || rep.Len() == 0 {
					continue
				}
				v := cx.Transactions(tr, rep, nil)
				ub, ok := inCand[j]
				if v > 0 && !ok {
					t.Fatalf("params %+v doc %d: rep %d has sim %v but is not a candidate", p, di, j, v)
				}
				if ok && ub < v {
					t.Fatalf("params %+v doc %d rep %d: upper bound %v below true sim %v", p, di, j, ub, v)
				}
			}
		}
	}
}

// TestRepIndexPostBuildInterning pins the staleness contract: tag paths and
// terms interned AFTER Build (the serve layer's online adds) must not break
// candidate completeness — unknown tag paths fall back to the all-active
// bitset and unknown terms contribute nothing, both sound.
func TestRepIndexPostBuildInterning(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	corpus := randomKernelCorpus(rng, 60, 20)
	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0.5})
	reps := []*txn.Transaction{corpus.Transactions[0], corpus.Transactions[1], corpus.Transactions[2]}
	ix := NewRepIndex()
	ix.Build(cx, reps)

	// New path sharing tag "a" with the corpus, new never-seen term 777.
	newPath := corpus.Paths.Intern(xmltree.Path{"root", "a", "new", "S"})
	id := corpus.Items.Intern(newPath, "fresh")
	corpus.Items.SetVector(id, vector.FromMap(map[int32]float64{777: 1}))
	ids := append([]txn.ItemID{id}, corpus.Transactions[3].Items...)
	doc := txn.NewTransaction(ids, 999, 0, -1)

	rq := NewRepQuery()
	n := ix.Candidates(doc, rq)
	inCand := map[int]bool{}
	for c := 0; c < n; c++ {
		j, _ := rq.Candidate(c)
		inCand[j] = true
	}
	for j, rep := range reps {
		if v := cx.Transactions(doc, rep, nil); v > 0 && !inCand[j] {
			t.Fatalf("rep %d has sim %v to post-build doc but is not a candidate", j, v)
		}
	}
}

// TestRepIndexDisabled pins the self-disabling conditions: γ ≤ 0 (every
// pair matches, pruning meaningless) and non-exact tag similarity (the
// shared-channel premise fails for semantic matchers).
func TestRepIndexDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	corpus := randomKernelCorpus(rng, 30, 10)
	reps := corpus.Transactions[:3]

	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0})
	ix := NewRepIndex()
	ix.Build(cx, reps)
	if ix.Enabled() {
		t.Error("index enabled at γ = 0")
	}

	cx = NewContext(corpus, Params{F: 0.5, Gamma: 0.5})
	cx.TagSim = semantics.NewLexical()
	ix.Build(cx, reps)
	if ix.Enabled() {
		t.Error("index enabled under a semantic tag matcher")
	}
}
