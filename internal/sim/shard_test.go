package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// manyPathCorpus builds a corpus whose path table holds a few dozen
// distinct tag paths, enough to spread pairs over many cache shards.
func manyPathCorpus(t testing.TB) *txn.Corpus {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, `<section%d><entry%d><title%d>item %d</title%d><note%d>note %d</note%d></entry%d></section%d>`,
			i%4, i, i, i, i, i, i, i, i, i%4)
	}
	sb.WriteString("</catalog>")
	tree, err := xmltree.ParseString(sb.String(), xmltree.DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	corpus := txn.Build([]*xmltree.Tree{tree}, txn.BuildOptions{})
	weighting.Apply(corpus)
	return corpus
}

// TestShardedCacheConcurrentStress hammers TagPathSim from many goroutines
// and checks that (a) every concurrently computed value equals the serial
// reference, (b) the hit/miss counters reconcile exactly with the call
// count, and (c) the cache converges to one entry per distinct pair.
// Run under `go test -race` this doubles as the cache's race test.
func TestShardedCacheConcurrentStress(t *testing.T) {
	corpus := manyPathCorpus(t)
	nPaths := corpus.Paths.Len()
	if nPaths < 20 {
		t.Fatalf("corpus too small: %d paths", nPaths)
	}

	// Serial reference values on a fresh context.
	ref := NewContext(corpus, Params{F: 1, Gamma: 0.5})
	refVal := make(map[[2]int]float64)
	distinct := 0
	for a := 0; a < nPaths; a++ {
		for b := 0; b < nPaths; b++ {
			refVal[[2]int{a, b}] = ref.TagPathSim(xmltree.PathID(a), xmltree.PathID(b))
			if a < b {
				distinct++
			}
		}
	}

	cx := NewContext(corpus, Params{F: 1, Gamma: 0.5})
	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the pair space from its own offset so
				// shards see mixed access orders.
				for i := 0; i < nPaths*nPaths; i++ {
					idx := (i + g*37) % (nPaths * nPaths)
					a, b := idx/nPaths, idx%nPaths
					got := cx.TagPathSim(xmltree.PathID(a), xmltree.PathID(b))
					if want := refVal[[2]int{a, b}]; got != want {
						select {
						case errs <- fmt.Sprintf("pair (%d,%d): got %v want %v", a, b, got, want):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Counter reconciliation: every call with pa != pb is exactly one hit
	// or one miss; every miss computes exactly one path alignment. Racing
	// misses (two goroutines computing the same pair) are legal, so misses
	// may exceed the distinct pair count but never fall below it.
	offDiagonal := int64(goroutines) * rounds * int64(nPaths*nPaths-nPaths)
	hits := cx.Counters.CacheHits.Load()
	misses := cx.Counters.CacheMisses.Load()
	if hits+misses != offDiagonal {
		t.Errorf("hits(%d) + misses(%d) = %d, want %d calls", hits, misses, hits+misses, offDiagonal)
	}
	if got := cx.Counters.PathSims.Load(); got != misses {
		t.Errorf("path alignments %d != misses %d", got, misses)
	}
	if misses < int64(distinct) {
		t.Errorf("misses %d below distinct pair count %d", misses, distinct)
	}
	if got := cx.CacheLen(); got != distinct {
		t.Errorf("cache holds %d entries, want %d distinct pairs", got, distinct)
	}

	// A fully warmed cache serves a second sweep without a single miss.
	before := cx.Counters.CacheMisses.Load()
	for a := 0; a < nPaths; a++ {
		for b := 0; b < nPaths; b++ {
			cx.TagPathSim(xmltree.PathID(a), xmltree.PathID(b))
		}
	}
	if after := cx.Counters.CacheMisses.Load(); after != before {
		t.Errorf("warmed cache missed %d times", after-before)
	}
}

// TestShardOfStaysInRange pins the shard index mask to the shard count.
func TestShardOfStaysInRange(t *testing.T) {
	for a := 0; a < 200; a++ {
		for b := a; b < 200; b++ {
			if s := shardOf(pathPair{xmltree.PathID(a), xmltree.PathID(b)}); s >= cacheShards {
				t.Fatalf("shardOf(%d,%d) = %d out of range", a, b, s)
			}
		}
	}
}
