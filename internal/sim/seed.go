package sim

import "xmlclust/internal/txn"

// This file is the frozen seed (pre-kernel, pointer-based) implementation
// of the Eq. 4 similarity, kept verbatim as one shared oracle: the
// property tests pin the columnar kernel's output against it pair by pair,
// BenchmarkRelocateSpeedup and cxkbench's kernel experiment report
// throughput against it (the speedup-vs-seed metric with its ≥1.3× CI
// bar). It allocates two item slices, an n1×n2 matrix and a result map per
// call and walks *txn.Item pointers per element — exactly the layout and
// churn the kernel exists to avoid. Do not "optimize" it: its value is
// being the unchanged baseline.

// SeedMatchSet is the seed MatchSet implementation — including the "ties
// all qualify" rule — against which the kernel must be exact.
func SeedMatchSet(cx *Context, tr1, tr2 *txn.Transaction) map[txn.ItemID]struct{} {
	n1, n2 := tr1.Len(), tr2.Len()
	shared := make(map[txn.ItemID]struct{}, n1+n2)
	if n1 == 0 || n2 == 0 {
		return shared
	}
	items1 := make([]*txn.Item, n1)
	for i, id := range tr1.Items {
		items1[i] = cx.Items.Get(id)
	}
	items2 := make([]*txn.Item, n2)
	for j, id := range tr2.Items {
		items2[j] = cx.Items.Get(id)
	}
	simM := make([]float64, n1*n2)
	for i, a := range items1 {
		row := simM[i*n2 : (i+1)*n2]
		for j, b := range items2 {
			row[j] = cx.Item(a, b)
		}
	}
	gamma := cx.Params.Gamma
	for j := 0; j < n2; j++ {
		best := -1.0
		for i := 0; i < n1; i++ {
			if s := simM[i*n2+j]; s > best {
				best = s
			}
		}
		if best < gamma {
			continue
		}
		for i := 0; i < n1; i++ {
			if simM[i*n2+j] == best {
				shared[tr1.Items[i]] = struct{}{}
			}
		}
	}
	for i := 0; i < n1; i++ {
		best := -1.0
		for j := 0; j < n2; j++ {
			if s := simM[i*n2+j]; s > best {
				best = s
			}
		}
		if best < gamma {
			continue
		}
		for j := 0; j < n2; j++ {
			if simM[i*n2+j] == best {
				shared[tr2.Items[j]] = struct{}{}
			}
		}
	}
	return shared
}

// SeedTransactions is the seed Eq. 4 evaluation on top of SeedMatchSet.
func SeedTransactions(cx *Context, tr1, tr2 *txn.Transaction) float64 {
	u := txn.UnionSize(tr1, tr2)
	if u == 0 {
		return 0
	}
	return float64(len(SeedMatchSet(cx, tr1, tr2))) / float64(u)
}
