package sim

import (
	"math"
	"testing"

	"xmlclust/internal/semantics"
	"xmlclust/internal/txn"
	"xmlclust/internal/xmltree"
)

func TestPathSimWithDictionary(t *testing.T) {
	d := semantics.NewDictionary()
	d.AddSynonyms("author", "writer")
	a := xmltree.ParsePath("dblp.article.author")
	b := xmltree.ParsePath("dblp.article.writer")
	// Exact Δ: author vs writer never match → 2 of 3 symbols align.
	if got := PathSim(a, b); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("exact = %v, want 2/3", got)
	}
	// Dictionary Δ: all three symbols align at equal positions → 1.
	if got := PathSimWith(a, b, d); math.Abs(got-1) > 1e-9 {
		t.Errorf("dictionary = %v, want 1", got)
	}
}

func TestPathSimWithPartialScore(t *testing.T) {
	d := semantics.NewDictionary()
	d.Score = 0.5
	d.AddSynonyms("author", "writer")
	a := xmltree.ParsePath("r.author")
	b := xmltree.ParsePath("r.writer")
	// Per direction: r matches (1) + author~writer at same position (0.5).
	// simS = (1 + 0.5 + 1 + 0.5)/4 = 0.75.
	if got := PathSimWith(a, b, d); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("partial-score = %v, want 0.75", got)
	}
}

func TestContextTagSimPluggable(t *testing.T) {
	cx, corpus := buildCtx(t, 1.0, 0.5)
	// Rebuild a context with a dictionary bridging paper/report fields.
	d := semantics.NewDictionary()
	d.AddSynonyms("paper", "report")
	d.AddSynonyms("name", "name") // no-op class
	cxSem := NewContext(corpus, Params{F: 1.0, Gamma: 0.5})
	cxSem.TagSim = semantics.Chain{d, semantics.NewLexical()}

	var paperName, reportName int = -1, -1
	for id := 0; id < corpus.Items.Len(); id++ {
		switch corpus.Items.Get(txn.ItemID(id)).Answer {
		case "mining structured information repositories":
			paperName = id
		case "unrelated plumbing manual":
			reportName = id
		}
	}
	if paperName < 0 || reportName < 0 {
		t.Fatal("items not found")
	}
	exact := cx.ItemIDs(txn.ItemID(paperName), txn.ItemID(reportName))
	sem := cxSem.ItemIDs(txn.ItemID(paperName), txn.ItemID(reportName))
	if sem <= exact {
		t.Errorf("semantic Δ should raise cross-schema structural similarity: %v vs %v", sem, exact)
	}
}

func TestPositionPenaltyWithSemantics(t *testing.T) {
	// A synonym match at a shifted position is still distance-penalized.
	d := semantics.NewDictionary()
	d.AddSynonyms("author", "writer")
	a := xmltree.ParsePath("author")
	b := xmltree.ParsePath("x.writer")
	// a→b: author matches writer at position 2, |1−2| → 0.5.
	// b→a: x no match (0), writer matches author at 1, |2−1| → 0.5.
	// simS = (0.5 + 0 + 0.5)/3 = 1/3.
	if got := PathSimWith(a, b, d); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("penalized synonym = %v, want 1/3", got)
	}
}
