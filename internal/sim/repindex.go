package sim

import (
	"math/bits"
	"sort"

	"xmlclust/internal/semantics"
	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// This file implements the inverted representative index behind sub-linear
// relocation: the K-tree-inspired candidate structure that lets a document
// evaluate only the representatives it could possibly join instead of all k
// of them, while keeping every assignment byte-identical to the flat scan.
//
// The index inverts the *item similarity* structure of Eq. 1 rather than raw
// item ids: under the paper's exact Δ, an item pair can only reach the
// γ-matching threshold (Eq. 2) if the two items share a tag (structural term
// of Eq. 3 is zero otherwise) and/or share a TCU vector term (the cosine of
// Eq. 1 is zero otherwise). Which of the two channels can carry a pair to γ
// depends only on (f, γ):
//
//	tagQ:  f ≥ γ         — a tag-only match can qualify (simS ≤ 1, so the
//	                       structural term is at most f);
//	termQ: (1−f) ≥ γ     — a term-only match can qualify;
//	bothQ: f+(1−f) ≥ γ   — a pair sharing both channels can qualify.
//
// The three predicates are evaluated with the same float64 expressions whose
// rounded values bound the kernel's arithmetic (f·simS ≤ f exactly,
// (1-f)·cos ≤ (1-f) exactly, and their sum ≤ fl(f+(1-f)) by IEEE
// monotonicity), so exclusion is sound: when a predicate is false, no pair
// relying on that channel combination can reach γ in the kernel either.
//
// Build inverts the representatives once per refinement phase: a bitset over
// representatives per tag (tag → reps whose items' tag paths contain it,
// folded into one bitset per interned tag path) and per TCU term (term →
// reps whose items' vectors carry it). A query then makes one pass over the
// document's positions, ORing the regime-appropriate bitsets:
//
//	Q_i = (tagQ ? T_i : 0) | (termQ ? M_i : 0) | (T_i & M_i if only bothQ)
//
// where T_i is the rep-bitset of position i's tag path and M_i the OR of its
// vector terms' rep-bitsets. q1[j] = |{i : j ∈ Q_i}| counts the document
// positions that could possibly be γ-marked against representative j.
//
// The key soundness fact (the reason no rep-side postings are needed to FIND
// candidates): sim(doc, rep_j) > 0 implies q1[j] ≥ 1 in every regime — a
// marked rep item needs a partner position i with sim ≥ γ pairwise, position
// i's global T_i/M_i indicators dominate the pairwise ones, and the regime
// predicate the pair used is exactly the one that folded that channel into
// Q_i. Candidates are therefore {j : q1[j] > 0}; representatives sharing
// nothing with the document are never touched at all.
//
// Per candidate the index completes an exact upper bound on Eq. 4:
//
//	UB_j = (q1[j] + q2[j]) / |tr ∪ rep_j|
//
// with q2[j] bounding the markable rep-side positions (rep length when tagQ
// — every rep position might tag-match — otherwise the count of rep
// positions sharing at least one vector term with the document, read from
// per-position term lists stored at Build). |matchγ| ≤ q1+q2 by the same
// domination argument, the divisor is the same integer u the kernel divides
// by, and IEEE division is monotone in an integer numerator at fixed
// divisor — so UB_j ≥ simγJ(tr, rep_j) holds exactly, never approximately.
// The relocation loop (cluster.RelocateOneIndexed) walks candidates in
// (UB desc, j asc) order and stops when the bound proves no unseen candidate
// can beat — or tie at a lower index than — the running best.
//
// Staleness contract: the index depends only on the representatives' resolved
// columns at Build time (representatives are immutable between refinement
// phases) and on nothing of the document side, which is resolved fresh per
// query. Items, terms or tag paths interned AFTER Build (serve's online
// adds) are handled soundly: an unknown tag path falls back to the
// all-active-reps bitset, and an unknown term simply cannot occur in any
// representative, so its zero contribution is exact.
type RepIndex struct {
	cx   *Context
	reps []*txn.Transaction

	k      int  // len(reps)
	w      int  // bitset words per rep set
	active int  // non-nil, non-empty reps (the flat scan's real workload)
	on     bool // gamma > 0 and exact Δ — otherwise queries fall back to flat

	tagQ, termQ, bothQ bool
	needT, needM       bool // which doc-side channels Q_i consults
	needQ2             bool // rep-side per-position term lists required

	repLen    []int32  // rep length per j (0 = inactive)
	allActive []uint64 // bitset of active reps (unknown-tag-path fallback)

	// tag → rep bitset, folded per interned tag path into pathBits (one
	// w-word slab entry per PathID known at Build). The map persists across
	// Builds — values are zeroed and refilled, keys accumulate the schema's
	// tag vocabulary — so steady-state rebuilds allocate nothing.
	tagReps  map[string][]uint64
	pathsLen int
	pathBits []uint64

	// term → rep bitset as a slot map plus a flat slab (slot*w..slot*w+w).
	termSlot map[int32]int32
	termBits []uint64
	nslots   int

	// Per-position term lists of the representatives, for the lazy q2 pass
	// (only built when needQ2): global position p of rep j covers
	// posTerms[posTermOff[p]:posTermOff[p+1]], with rep j's positions being
	// repPosOff[j]..repPosOff[j+1].
	repPosOff  []int32
	posTermOff []int32
	posTerms   []int32

	// Build-time resolution buffers, reused across Builds.
	bTps  []xmltree.PathID
	bVecs []vector.Sparse
}

// emptyPathTag is the synthetic tag under which empty tag paths are indexed:
// PathSim(empty, empty) = 1 under every Δ, so two empty paths behave like a
// shared tag. Real XML tag names are never empty, so the sentinel cannot
// collide.
const emptyPathTag = ""

// NewRepIndex returns an empty representative index; Build populates it and
// may be called repeatedly (per refinement phase), reusing all internal
// arrays.
func NewRepIndex() *RepIndex {
	return &RepIndex{
		tagReps:  make(map[string][]uint64),
		termSlot: make(map[int32]int32),
	}
}

// Enabled reports whether the index can answer queries exactly: γ must be
// positive (at γ ≤ 0 every pair matches and candidate pruning is
// meaningless) and the tag similarity must be the paper's exact Δ (semantic
// matchers can score disjoint-tag paths above zero, which would break the
// shared-channel premise). When false, callers use the flat scan.
func (ix *RepIndex) Enabled() bool { return ix.on }

// Active returns the number of representatives the last Build indexed
// (non-nil, non-empty) — the per-document workload of the flat scan.
func (ix *RepIndex) Active() int { return ix.active }

// Entries returns the posting-list size of the index: distinct tags plus
// distinct TCU terms carrying a representative bitset. Exposed by the serve
// stats endpoint.
func (ix *RepIndex) Entries() int { return len(ix.tagReps) + ix.nslots }

// Context returns the similarity context the index was built against.
func (ix *RepIndex) Context() *Context { return ix.cx }

// Reps returns the representative slice the index was built over. The slice
// is the caller's; the index never mutates it.
func (ix *RepIndex) Reps() []*txn.Transaction { return ix.reps }

// Build (re)builds the index over reps under cx's parameters. It is called
// once per refinement phase — representatives change once per round while
// documents query n times, which is the asymmetry that makes the inversion
// pay. Build is not safe for concurrent use with queries; callers rebuild
// between relocation passes.
func (ix *RepIndex) Build(cx *Context, reps []*txn.Transaction) {
	ix.cx, ix.reps = cx, reps
	k := len(reps)
	ix.k = k
	w := words(k)
	ix.w = w
	f, gamma := cx.Params.F, cx.Params.Gamma
	_, exact := cx.TagSim.(semantics.Exact)
	ix.on = gamma > 0 && exact
	ix.active = 0
	if !ix.on {
		return
	}
	// Regime predicates, with the kernel's own float expressions (see the
	// file comment for why these exact expressions make exclusion sound).
	ix.tagQ = f >= gamma
	ix.termQ = 1-f >= gamma
	ix.bothQ = f+(1-f) >= gamma
	// Q_i needs the tag channel unless term-sharing alone decides (termQ
	// covers bothQ pairs too when tagQ is false), and the term channel
	// unless tag-sharing alone decides. Note tagQ ⇒ bothQ and termQ ⇒ bothQ
	// (adding the other channel's slack never lowers the bound).
	ix.needT = ix.tagQ || (ix.bothQ && !ix.termQ)
	ix.needM = ix.termQ || (ix.bothQ && !ix.tagQ)
	ix.needQ2 = !ix.tagQ && ix.bothQ
	if !ix.bothQ {
		// No pair can reach γ at all: every similarity is 0 and every
		// document relocates to the trash cluster, flat scan included.
		// Candidates() returns no candidates without any structure.
		return
	}

	ix.repLen = resizeI32(ix.repLen, k)
	ix.allActive = resizeU64(ix.allActive, w)
	maxLen := 0
	for j, rep := range reps {
		if rep == nil || rep.Len() == 0 {
			continue
		}
		ix.repLen[j] = int32(rep.Len())
		setBit(ix.allActive, j)
		ix.active++
		if rep.Len() > maxLen {
			maxLen = rep.Len()
		}
	}

	// Zero the persistent tag bitsets (stale tags keep zeroed entries —
	// harmless under OR — so the map never needs rebuilding).
	if ix.needT {
		for tag, b := range ix.tagReps {
			if cap(b) < w {
				ix.tagReps[tag] = make([]uint64, w)
				continue
			}
			b = b[:w]
			for x := range b {
				b[x] = 0
			}
			ix.tagReps[tag] = b
		}
	}
	if ix.needM {
		clear(ix.termSlot)
		ix.termBits = ix.termBits[:0]
		ix.nslots = 0
	}
	if ix.needQ2 {
		ix.repPosOff = append(ix.repPosOff[:0], 0)
		ix.posTermOff = append(ix.posTermOff[:0], 0)
		ix.posTerms = ix.posTerms[:0]
	}

	if cap(ix.bTps) < maxLen {
		ix.bTps = make([]xmltree.PathID, maxLen)
		ix.bVecs = make([]vector.Sparse, maxLen)
	}
	for j, rep := range reps {
		if rep == nil || rep.Len() == 0 {
			if ix.needQ2 {
				ix.repPosOff = append(ix.repPosOff, int32(len(ix.posTermOff)-1))
			}
			continue
		}
		n := rep.Len()
		tps, vecs := ix.bTps[:n], ix.bVecs[:n]
		// ResolveColumns handles spanless transactions too — representatives
		// are synthetic and never carry a columnar span.
		cx.Items.ResolveColumns(rep.Items, tps, vecs)
		if ix.needT {
			for _, tp := range tps {
				path := cx.Paths.Path(tp)
				if len(path) == 0 {
					ix.addTag(emptyPathTag, j, w)
					continue
				}
				for _, tag := range path {
					ix.addTag(tag, j, w)
				}
			}
		}
		if ix.needM {
			for _, v := range vecs {
				for _, en := range v.Entries() {
					slot, ok := ix.termSlot[en.Term]
					if !ok {
						slot = int32(ix.nslots)
						ix.nslots++
						ix.termSlot[en.Term] = slot
						ix.termBits = appendZeroWords(ix.termBits, w)
					}
					setBit(ix.termBits[int(slot)*w:int(slot)*w+w], j)
				}
			}
		}
		if ix.needQ2 {
			for _, v := range vecs {
				for _, en := range v.Entries() {
					ix.posTerms = append(ix.posTerms, en.Term)
				}
				ix.posTermOff = append(ix.posTermOff, int32(len(ix.posTerms)))
			}
			ix.repPosOff = append(ix.repPosOff, int32(len(ix.posTermOff)-1))
		}
	}

	// Fold tag bitsets into one bitset per interned tag path: position i's
	// T_i is then a single slab read. Built for every PathID known now;
	// paths interned later fall back to allActive at query time.
	if ix.needT {
		P := cx.Paths.Len()
		ix.pathsLen = P
		ix.pathBits = resizeU64(ix.pathBits, P*w)
		for p := 0; p < P; p++ {
			dst := ix.pathBits[p*w : p*w+w]
			path := cx.Paths.Path(xmltree.PathID(p))
			if len(path) == 0 {
				orInto(dst, ix.tagReps[emptyPathTag])
				continue
			}
			for _, tag := range path {
				orInto(dst, ix.tagReps[tag])
			}
		}
	}
}

func (ix *RepIndex) addTag(tag string, j, w int) {
	b, ok := ix.tagReps[tag]
	if !ok {
		b = make([]uint64, w)
		ix.tagReps[tag] = b
	}
	setBit(b, j)
}

// RepQuery is the reusable per-goroutine state of index queries: the q1
// counters, the candidate list with its upper bounds, the document-side
// resolution buffers and the epoch-stamped term set for the lazy q2 pass.
// Like Scratch it is not safe for concurrent use — give each worker its own.
type RepQuery struct {
	q1   []int32
	cand []int32
	ub   []float64

	vecs   []vector.Sparse
	tpRaw  []xmltree.PathID
	tps    []xmltree.PathID
	tpIdx  []int32
	tpBits []uint64 // per-distinct-tag-path rep bitsets (nd × w)
	qBits  []uint64
	mBits  []uint64

	stamp []uint32 // per-term epoch stamps for the lazy q2 membership test
	epoch uint32
}

// NewRepQuery returns an empty query scratch; buffers grow on first use and
// are reused afterwards (warm queries allocate nothing).
func NewRepQuery() *RepQuery { return &RepQuery{} }

// Len, Less, Swap implement sort.Interface over the candidate list:
// descending upper bound, ascending representative index on ties — exactly
// the order in which the relocation loop's early exit is sound.
func (rq *RepQuery) Len() int { return len(rq.cand) }

func (rq *RepQuery) Less(a, b int) bool {
	if rq.ub[a] != rq.ub[b] {
		return rq.ub[a] > rq.ub[b]
	}
	return rq.cand[a] < rq.cand[b]
}

func (rq *RepQuery) Swap(a, b int) {
	rq.cand[a], rq.cand[b] = rq.cand[b], rq.cand[a]
	rq.ub[a], rq.ub[b] = rq.ub[b], rq.ub[a]
}

// Candidate returns the i-th candidate (0 ≤ i < Candidates' return): the
// representative index and its exact upper bound on simγJ.
func (rq *RepQuery) Candidate(i int) (int, float64) {
	return int(rq.cand[i]), rq.ub[i]
}

// reset prepares the scratch for a new query against ix. q1 is sparse-reset
// through the previous candidate list (the only entries that became
// nonzero), so a query costs O(candidates), not O(k).
func (rq *RepQuery) reset(ix *RepIndex) {
	if len(rq.q1) != ix.k {
		rq.q1 = make([]int32, ix.k)
	} else {
		for _, j := range rq.cand {
			rq.q1[j] = 0
		}
	}
	rq.cand = rq.cand[:0]
	rq.ub = rq.ub[:0]
	w := ix.w
	if cap(rq.qBits) < w {
		rq.qBits = make([]uint64, w)
		rq.mBits = make([]uint64, w)
	} else {
		rq.qBits = rq.qBits[:w]
		rq.mBits = rq.mBits[:w]
	}
}

func (rq *RepQuery) ensureDoc(n int) {
	if cap(rq.vecs) < n {
		rq.vecs = make([]vector.Sparse, n)
		rq.tpRaw = make([]xmltree.PathID, n)
		rq.tps = make([]xmltree.PathID, n)
		rq.tpIdx = make([]int32, n)
	} else {
		rq.vecs = rq.vecs[:n]
		rq.tpRaw = rq.tpRaw[:n]
		rq.tps = rq.tps[:n]
		rq.tpIdx = rq.tpIdx[:n]
	}
}

func (rq *RepQuery) bumpEpoch() {
	rq.epoch++
	if rq.epoch == 0 { // wrapped: every stale stamp would read as current
		for i := range rq.stamp {
			rq.stamp[i] = 0
		}
		rq.epoch = 1
	}
}

func (rq *RepQuery) stampTerm(t int32) {
	if int(t) >= len(rq.stamp) {
		grown := make([]uint32, int(t)+1+len(rq.stamp)/2)
		copy(grown, rq.stamp)
		rq.stamp = grown
	}
	rq.stamp[t] = rq.epoch
}

func (rq *RepQuery) stamped(t int32) bool {
	return int(t) < len(rq.stamp) && rq.stamp[t] == rq.epoch
}

// Candidates fills rq with the representatives that could possibly win tr's
// relocation argmax — every rep with nonzero similarity to tr is included —
// sorted by (upper bound desc, rep index asc), and returns their count.
// Candidate i is read with rq.Candidate(i). The bounds are exact (see the
// file comment): UB ≥ simγJ(tr, rep) holds in IEEE arithmetic, not just in
// real arithmetic, so strict comparisons against them reproduce the flat
// scan's decisions byte for byte.
func (ix *RepIndex) Candidates(tr *txn.Transaction, rq *RepQuery) int {
	rq.reset(ix)
	n1 := tr.Len()
	if n1 == 0 || ix.active == 0 || !ix.bothQ {
		return 0
	}
	rq.ensureDoc(n1)
	w := ix.w
	cx := ix.cx

	// Resolve the document side exactly as the kernel does (columnar span
	// when available, table fallback otherwise), minus the kernel's
	// ColumnarResolves accounting — this resolution feeds the index, not an
	// Eq. 4 evaluation.
	var src []xmltree.PathID
	if cols, start := tr.ColumnarSpan(); cols != nil {
		if ix.needM {
			cx.Items.ResolveVectors(tr.Items, rq.vecs)
		}
		src = cols.TagPathSpan(start, n1)
	} else {
		cx.Items.ResolveColumns(tr.Items, rq.tpRaw, rq.vecs)
		src = rq.tpRaw
	}

	nd := 0
	if ix.needT {
		nd = indexTagPaths(src, rq.tps, rq.tpIdx)
		if need := nd * w; cap(rq.tpBits) < need {
			rq.tpBits = make([]uint64, need)
		} else {
			rq.tpBits = rq.tpBits[:need]
		}
		for d := 0; d < nd; d++ {
			dst := rq.tpBits[d*w : d*w+w]
			if p := int(rq.tps[d]); p < ix.pathsLen {
				copy(dst, ix.pathBits[p*w:p*w+w])
			} else {
				// Interned after Build (serve's online adds): no sound
				// per-tag information, so admit every active rep.
				copy(dst, ix.allActive)
			}
		}
	}

	// One pass over the document's positions, accumulating q1.
	for i := 0; i < n1; i++ {
		qb := rq.qBits
		var mb []uint64
		if ix.needM {
			mb = rq.mBits
			for x := range mb {
				mb[x] = 0
			}
			for _, en := range rq.vecs[i].Entries() {
				if slot, ok := ix.termSlot[en.Term]; ok {
					orInto(mb, ix.termBits[int(slot)*w:int(slot)*w+w])
				}
			}
		}
		var tb []uint64
		if ix.needT {
			d := int(rq.tpIdx[i])
			tb = rq.tpBits[d*w : d*w+w]
		}
		switch {
		case ix.tagQ && ix.termQ:
			for x := range qb {
				qb[x] = tb[x] | mb[x]
			}
		case ix.tagQ:
			for x := range qb {
				qb[x] = tb[x]
			}
		case ix.termQ:
			for x := range qb {
				qb[x] = mb[x]
			}
		default: // only bothQ: both channels must be present
			for x := range qb {
				qb[x] = tb[x] & mb[x]
			}
		}
		for x, word := range qb {
			for word != 0 {
				j := x<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if rq.q1[j] == 0 {
					rq.cand = append(rq.cand, int32(j))
				}
				rq.q1[j]++
			}
		}
	}
	if len(rq.cand) == 0 {
		return 0
	}

	// Lazy rep side: stamp the document's term set once, then bound the
	// markable positions of each candidate.
	if ix.needQ2 {
		rq.bumpEpoch()
		for i := 0; i < n1; i++ {
			for _, en := range rq.vecs[i].Entries() {
				rq.stampTerm(en.Term)
			}
		}
	}
	for _, j32 := range rq.cand {
		j := int(j32)
		q := rq.q1[j]
		if ix.tagQ {
			q += ix.repLen[j]
		} else {
			q += ix.lazyQ2(j, rq)
		}
		u := txn.UnionSize(tr, ix.reps[j])
		rq.ub = append(rq.ub, float64(q)/float64(u))
	}
	// sort.Sort on the pointer receiver: the interface conversion boxes a
	// pointer, so a warm query stays allocation-free (sort.Slice would
	// allocate its closure).
	sort.Sort(rq)
	return len(rq.cand)
}

// lazyQ2 counts the positions of rep j sharing at least one TCU term with
// the (stamped) document — the rep-side bound when tag-only matches cannot
// qualify.
func (ix *RepIndex) lazyQ2(j int, rq *RepQuery) int32 {
	var q int32
	for p := ix.repPosOff[j]; p < ix.repPosOff[j+1]; p++ {
		for _, t := range ix.posTerms[ix.posTermOff[p]:ix.posTermOff[p+1]] {
			if rq.stamped(t) {
				q++
				break
			}
		}
	}
	return q
}

func orInto(dst, src []uint64) {
	if src == nil {
		return
	}
	for x := range dst {
		dst[x] |= src[x]
	}
}

func appendZeroWords(b []uint64, n int) []uint64 {
	for i := 0; i < n; i++ {
		b = append(b, 0)
	}
	return b
}

func resizeI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

func resizeU64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}
