package sim

import (
	"math/rand"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// The seed (pre-kernel) oracle the property tests pin the kernel against
// lives in seed.go as SeedMatchSet/SeedTransactions — one frozen snapshot
// shared with the speedup-vs-seed baselines of
// internal/cluster/bench_test.go and cxkbench's kernel experiment.

// randomKernelCorpus builds a synthetic corpus straight from the interning
// tables: nItems items over a deliberately small path and vector vocabulary
// (so exact similarity ties — the case that makes naive pruning bounds
// unsound — occur constantly) and nTxns random transactions over them,
// including empty and single-item ones.
func randomKernelCorpus(rng *rand.Rand, nItems, nTxns int) *txn.Corpus {
	paths := xmltree.NewPathTable()
	tags := []string{"a", "b", "c"}
	var pids []xmltree.PathID
	for _, t1 := range tags {
		for _, t2 := range tags {
			pids = append(pids, paths.Intern(xmltree.Path{"root", t1, t2, "S"}))
		}
	}
	// Four vector patterns shared across many items: identical contents at
	// identical paths intern to the same item, identical contents at
	// different paths force exact content-cosine ties.
	vecs := []map[int32]float64{
		{1: 1.0},
		{1: 0.5, 2: 0.5},
		{3: 1.0, 4: 0.25},
		{5: 0.75},
	}
	answers := []string{"x", "y", "z", "w"}
	items := txn.NewItemTable(paths)
	var ids []txn.ItemID
	for i := 0; i < nItems; i++ {
		v := rng.Intn(len(vecs))
		id := items.Intern(pids[rng.Intn(len(pids))], answers[v]+answers[rng.Intn(len(answers))])
		items.SetVector(id, vector.FromMap(vecs[v]))
		ids = append(ids, id)
	}
	trs := make([]*txn.Transaction, nTxns)
	for i := range trs {
		n := rng.Intn(9) // 0..8 items, duplicates removed by NewTransaction
		pick := make([]txn.ItemID, n)
		for j := range pick {
			pick[j] = ids[rng.Intn(len(ids))]
		}
		trs[i] = txn.NewTransaction(pick, i, 0, -1)
	}
	return &txn.Corpus{Paths: paths, Items: items, Transactions: trs}
}

var kernelParamsGrid = []Params{
	{F: 0, Gamma: 0},
	{F: 0, Gamma: 0.9},
	{F: 0.5, Gamma: 0.4},
	{F: 0.5, Gamma: 0.8},
	{F: 1, Gamma: 0.6},
	{F: 1, Gamma: 0.999},
}

// TestMatchCountEqualsMatchSet pins the count-only kernel to the
// materialized set on randomized corpora: MatchCount == len(MatchSet) ==
// len(referenceMatchSet) for every pair and every params combination, and
// the three Eq. 4 readings (Transactions, TransactionsAtLeast with a
// negative threshold, the seed reference) agree bit for bit.
func TestMatchCountEqualsMatchSet(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		corpus := randomKernelCorpus(rng, 20+rng.Intn(40), 12)
		for _, p := range kernelParamsGrid {
			cx := NewContext(corpus, p)
			sc := NewScratch()
			for _, tr1 := range corpus.Transactions {
				for _, tr2 := range corpus.Transactions {
					ref := SeedMatchSet(cx, tr1, tr2)
					if got := cx.MatchCount(tr1, tr2, sc); got != len(ref) {
						t.Fatalf("seed %d params %+v: MatchCount = %d, reference set has %d",
							seed, p, got, len(ref))
					}
					set := cx.MatchSet(tr1, tr2)
					if len(set) != len(ref) {
						t.Fatalf("seed %d params %+v: MatchSet size %d, reference %d", seed, p, len(set), len(ref))
					}
					for id := range ref {
						if _, ok := set[id]; !ok {
							t.Fatalf("seed %d params %+v: item %d missing from MatchSet", seed, p, id)
						}
					}
					want := SeedTransactions(cx, tr1, tr2)
					if got := cx.Transactions(tr1, tr2, sc); got != want {
						t.Fatalf("seed %d params %+v: Transactions = %v, reference %v", seed, p, got, want)
					}
					if got := cx.TransactionsAtLeast(tr1, tr2, -1, sc); got != want {
						t.Fatalf("seed %d params %+v: TransactionsAtLeast(-1) = %v, reference %v",
							seed, p, got, want)
					}
				}
			}
		}
	}
}

// TestTransactionsAtLeastExactDecisions verifies the branch-and-bound
// contract on random thresholds: whenever the true similarity exceeds the
// threshold the pruned call must return it exactly, and whenever it bails
// the returned value must not beat the threshold under a strict >
// comparison — the two cases an argmax caller distinguishes.
func TestTransactionsAtLeastExactDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	corpus := randomKernelCorpus(rng, 50, 16)
	for _, p := range kernelParamsGrid {
		cx := NewContext(corpus, p)
		sc := NewScratch()
		for _, tr1 := range corpus.Transactions {
			for _, tr2 := range corpus.Transactions {
				full := cx.Transactions(tr1, tr2, sc)
				for _, thr := range []float64{0, rng.Float64(), full, 0.99, 1} {
					got := cx.TransactionsAtLeast(tr1, tr2, thr, sc)
					if full > thr && got != full {
						t.Fatalf("params %+v thr %v: pruned call returned %v, want exact %v", p, thr, got, full)
					}
					if full <= thr && got > thr {
						t.Fatalf("params %+v thr %v: bailed call returned %v > threshold (true %v)", p, thr, got, full)
					}
				}
			}
		}
	}
}

// TestPrunedRowsCounterAdvances: a high threshold against a dissimilar pair
// must actually skip rows, and the skips must be visible in the counter.
func TestPrunedRowsCounterAdvances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpus := randomKernelCorpus(rng, 60, 20)
	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0.9})
	sc := NewScratch()
	before := cx.Counters.PrunedRows.Load()
	for _, tr1 := range corpus.Transactions {
		for _, tr2 := range corpus.Transactions {
			cx.TransactionsAtLeast(tr1, tr2, 0.97, sc)
		}
	}
	if cx.Counters.PrunedRows.Load() == before {
		t.Error("PrunedRows never advanced despite a near-1 threshold")
	}
}

// TestScratchReusesCounter: the second kernel call on the same scratch and
// shape must count as a warm reuse.
func TestScratchReusesCounter(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	trs := corpus.Transactions
	sc := NewScratch()
	cx.Transactions(trs[0], trs[1], sc)
	before := cx.Counters.ScratchReuses.Load()
	cx.Transactions(trs[0], trs[1], sc)
	if cx.Counters.ScratchReuses.Load() != before+1 {
		t.Error("second call on a warm scratch did not count as a reuse")
	}
}

// TestTransactionsZeroAllocWarmScratch is the allocation-regression guard
// (run standalone in the CI lint job): with a warm caller-owned Scratch and
// a warm path cache, Transactions must perform exactly zero heap
// allocations per evaluation. MatchCount and TransactionsAtLeast share the
// kernel and are pinned too.
func TestTransactionsZeroAllocWarmScratch(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	trs := corpus.Transactions
	sc := NewScratch()
	// Warm the scratch buffers and the Eq. 3 pair cache.
	for _, tr1 := range trs {
		for _, tr2 := range trs {
			cx.Transactions(tr1, tr2, sc)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		cx.Transactions(trs[0], trs[1], sc)
	}); avg != 0 {
		t.Errorf("Transactions with warm scratch allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		cx.MatchCount(trs[0], trs[1], sc)
	}); avg != 0 {
		t.Errorf("MatchCount with warm scratch allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		cx.TransactionsAtLeast(trs[0], trs[1], 0.5, sc)
	}); avg != 0 {
		t.Errorf("TransactionsAtLeast with warm scratch allocates %.2f/op, want 0", avg)
	}
}

// kernelBenchFixture prepares a mid-sized random corpus and a warmed
// context so the benchmarks measure the kernel, not first-touch cache
// fills. columnar selects the layout: spans attached (the production
// builder/Load shape, contiguous-scan resolution) or the bare pointer
// table (the fallback for hand-assembled transaction sets).
func kernelBenchFixture(b *testing.B, columnar bool) (*Context, []*txn.Transaction) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	corpus := randomKernelCorpus(rng, 120, 32)
	if columnar {
		corpus.RebuildColumnar()
	}
	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0.7})
	sc := NewScratch()
	for _, tr1 := range corpus.Transactions {
		for _, tr2 := range corpus.Transactions {
			cx.Transactions(tr1, tr2, sc) // warm the path cache
		}
	}
	return cx, corpus.Transactions
}

// BenchmarkMatchKernelCold evaluates every pair with a fresh Scratch per
// evaluation — the price of first-touch buffer growth.
func BenchmarkMatchKernelCold(b *testing.B) {
	cx, trs := kernelBenchFixture(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr1 := trs[i%len(trs)]
		tr2 := trs[(i+7)%len(trs)]
		cx.Transactions(tr1, tr2, NewScratch())
	}
}

// BenchmarkMatchKernelWarm is the steady state on the production layout:
// one Scratch reused across evaluations, transactions carrying columnar
// spans, 0 allocs/op.
func BenchmarkMatchKernelWarm(b *testing.B) {
	cx, trs := kernelBenchFixture(b, true)
	sc := NewScratch()
	cx.Transactions(trs[0], trs[1], sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr1 := trs[i%len(trs)]
		tr2 := trs[(i+7)%len(trs)]
		cx.Transactions(tr1, tr2, sc)
	}
}

// BenchmarkMatchKernelWarmFallback is the same steady state through the
// pointer-table fallback (no spans) — the cost of losing the contiguous
// tag-path scan, visible next to the columnar number.
func BenchmarkMatchKernelWarmFallback(b *testing.B) {
	cx, trs := kernelBenchFixture(b, false)
	sc := NewScratch()
	cx.Transactions(trs[0], trs[1], sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr1 := trs[i%len(trs)]
		tr2 := trs[(i+7)%len(trs)]
		cx.Transactions(tr1, tr2, sc)
	}
}

// BenchmarkMatchKernelSeed is the seed implementation on the same pair
// stream — the baseline the kernel's allocs/op and ns/op are judged
// against.
func BenchmarkMatchKernelSeed(b *testing.B) {
	cx, trs := kernelBenchFixture(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr1 := trs[i%len(trs)]
		tr2 := trs[(i+7)%len(trs)]
		SeedTransactions(cx, tr1, tr2)
	}
}
