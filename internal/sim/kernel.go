package sim

import (
	"math/bits"
	"sync"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
	"xmlclust/internal/xmltree"
)

// This file is the transaction-similarity kernel: the single allocation-free
// inner loop behind Eq. 4 that every hot path of the system funnels into
// (Relocate's argmax scans, the refinement objectives of GenerateTreeTuple,
// the SSE stopping rules). The kernel computes the γ-matching marks of a
// transaction pair in one row-major pass over the item-similarity matrix and
// exposes three readings of them:
//
//   - MatchCount: |matchγ| — all the assignment path ever needs;
//   - TransactionsAtLeast: simγJ with exact branch-and-bound row pruning
//     against a caller-supplied threshold;
//   - MatchSet: the materialized id set, for the few callers (representative
//     conflation, tests) that genuinely need set membership.
//
// The inner loop is columnar: a transaction pair is resolved once into flat
// per-position arrays — item ids straight from the sorted Items slices, tag
// paths from the corpus's columnar arena (txn.Columnar) when the
// transaction carries a span, TCU vector headers bulk-copied from the item
// table's vector column — and the n1×n2 pass then reads only contiguous
// slices. No *txn.Item is dereferenced anywhere on the hot path; the
// pointer-based layout survives only in the SeedTransactions oracle this
// kernel is benchmarked and equivalence-tested against.
//
// Tie rule (shared by all three readings): an item e ∈ tr_i belongs to
// matchγ(tr_i→tr_j) iff some e_h ∈ tr_j has sim(e, e_h) ≥ γ and no other
// item of tr_i matches that e_h strictly better — ties all qualify, i.e.
// every item whose similarity equals the per-row/per-column maximum is
// marked, not just the first one found. The count-only path reproduces the
// set cardinality exactly because marks live on disjoint index spaces
// (mark1 ⊆ tr1's positions, mark2 ⊆ tr2's positions) and the one source of
// double counting — an item id present in BOTH transactions and marked from
// both directions — is subtracted by a merge walk over the two sorted id
// slices.

// Scratch is the reusable working state of the match kernel: the resolved
// per-position vector and tag-path columns, the n1×n2 similarity matrix,
// the per-column maxima and the two direction-mark bitsets. All buffers are
// grown in place and reused across calls, so a warm Scratch makes
// Transactions allocation-free (the CI allocation guard pins this at
// exactly 0 allocs/op on both the columnar and the fallback resolution
// paths).
//
// A Scratch is NOT safe for concurrent use; give each goroutine its own
// (see parallel.ForCtxWorkers) or pass nil to borrow one from the shared
// pool.
type Scratch struct {
	vecs1, vecs2 []vector.Sparse // resolved TCU vector headers per position
	simM         []float64       // row-major n1×n2 item similarities
	colBest      []float64       // per-column maximum over the rows seen so far
	mark1        []uint64        // bitset over tr1 positions (direction tr1→tr2)
	mark2        []uint64        // bitset over tr2 positions (direction tr2→tr1)

	// tpRaw1/tpRaw2 hold the per-position tag paths of a side when the
	// transaction has no columnar span and they must be resolved from the
	// item table (span transactions read the arena block directly, zero
	// copies). tp1/tp2 and tpIdx1/tpIdx2 are the deduplicated view either
	// way: each side's distinct tag paths (tp1[:nd1], tp2[:nd2]) with
	// per-position slot indices, plus the d1×d2 structural similarity
	// matrix filled lazily one d1-row at a time (structDone tracks filled
	// rows). Tree-tuple items share tag paths heavily (every author of an
	// article, say), so one Eq. 3 probe per distinct tag-path pair replaces
	// one per item pair — same float64 values, an order of magnitude fewer
	// sharded-cache probes on same-schema corpora.
	tpRaw1, tpRaw2 []xmltree.PathID
	tp1, tp2       []xmltree.PathID
	tpIdx1, tpIdx2 []int32
	nd1, nd2       int
	structM        []float64
	structDone     []uint64

	// structKey/structVal form a scratch-local, lock-free L1-resident memo
	// of Eq. 3 tag-path pair similarities layered over the shared sharded
	// PathCache: the same pairs recur across every representative of a
	// relocation scan and across the transactions a worker draws, and a
	// direct-mapped probe here replaces a RWMutex + map probe there. Values
	// are the PathCache's own (pure functions of the pair), so results are
	// bit-identical; collisions simply overwrite (it is a cache of a
	// cache). Allocated on first structural use, fixed size afterwards.
	// The memo is only valid for one Context — PathIDs are table-relative
	// and Δ is pluggable — so lastCx guards it and a context switch clears
	// it (rare: a scratch normally lives inside one clustering pass).
	structKey []uint64 // packed ordered pair + 1; 0 = empty slot
	structVal []float64
	lastCx    *Context

	// lastTab/lastVecVer/lastTr1/lastTr2 memoize the column resolution of
	// the previous call: transactions are immutable after construction and
	// the interning table is append-only, so when the same side recurs —
	// tr1 is fixed across a Relocate argmax scan, the candidate
	// representative is fixed across a refinement-objective pass — the
	// resolved columns are reused without touching the table lock. The
	// vector headers are value copies, so unlike the old pointer memo they
	// would NOT see an in-place SetVector; lastVecVer pins the table's
	// vector version at resolution time and any weighting pass since then
	// forces a re-resolve. Holding the *Transaction references also keeps
	// the memo keys from being reused by the allocator.
	lastTab          *txn.ItemTable
	lastVecVer       uint64
	lastTr1, lastTr2 *txn.Transaction
}

// NewScratch returns an empty kernel scratch; buffers are grown on first
// use and reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs the nil-Scratch convenience path. Pool reuse is
// schedule-dependent, but Scratch contents never influence results, only
// allocation behavior.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// getScratch resolves the caller's scratch: non-nil is used as-is, nil
// borrows from the pool (the caller must hand it back with putScratch).
func getScratch(sc *Scratch) (*Scratch, bool) {
	if sc != nil {
		return sc, false
	}
	return scratchPool.Get().(*Scratch), true
}

func putScratch(sc *Scratch, pooled bool) {
	if pooled {
		scratchPool.Put(sc)
	}
}

// words is the uint64 word count of an n-bit bitset.
func words(n int) int { return (n + 63) / 64 }

func setBit(b []uint64, i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func hasBit(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// ensure sizes every buffer for an n1×n2 pair, growing only when capacity
// is insufficient, and reports whether the call reused a fully warm scratch
// (no buffer grew).
func (sc *Scratch) ensure(n1, n2 int) bool {
	reused := true
	if cap(sc.vecs1) < n1 {
		sc.vecs1 = make([]vector.Sparse, n1)
		reused = false
	} else {
		sc.vecs1 = sc.vecs1[:n1]
	}
	if cap(sc.vecs2) < n2 {
		sc.vecs2 = make([]vector.Sparse, n2)
		reused = false
	} else {
		sc.vecs2 = sc.vecs2[:n2]
	}
	if cap(sc.simM) < n1*n2 {
		sc.simM = make([]float64, n1*n2)
		reused = false
	} else {
		sc.simM = sc.simM[:n1*n2]
	}
	if cap(sc.colBest) < n2 {
		sc.colBest = make([]float64, n2)
		reused = false
	} else {
		sc.colBest = sc.colBest[:n2]
	}
	if w := words(n1); cap(sc.mark1) < w {
		sc.mark1 = make([]uint64, w)
		reused = false
	} else {
		sc.mark1 = sc.mark1[:w]
	}
	if w := words(n2); cap(sc.mark2) < w {
		sc.mark2 = make([]uint64, w)
		reused = false
	} else {
		sc.mark2 = sc.mark2[:w]
	}
	if cap(sc.tpRaw1) < n1 {
		sc.tpRaw1 = make([]xmltree.PathID, n1)
		reused = false
	} else {
		sc.tpRaw1 = sc.tpRaw1[:n1]
	}
	if cap(sc.tpRaw2) < n2 {
		sc.tpRaw2 = make([]xmltree.PathID, n2)
		reused = false
	} else {
		sc.tpRaw2 = sc.tpRaw2[:n2]
	}
	if cap(sc.tp1) < n1 {
		sc.tp1 = make([]xmltree.PathID, n1)
		reused = false
	} else {
		sc.tp1 = sc.tp1[:n1]
	}
	if cap(sc.tp2) < n2 {
		sc.tp2 = make([]xmltree.PathID, n2)
		reused = false
	} else {
		sc.tp2 = sc.tp2[:n2]
	}
	if cap(sc.tpIdx1) < n1 {
		sc.tpIdx1 = make([]int32, n1)
		reused = false
	} else {
		sc.tpIdx1 = sc.tpIdx1[:n1]
	}
	if cap(sc.tpIdx2) < n2 {
		sc.tpIdx2 = make([]int32, n2)
		reused = false
	} else {
		sc.tpIdx2 = sc.tpIdx2[:n2]
	}
	if cap(sc.structM) < n1*n2 {
		sc.structM = make([]float64, n1*n2)
		reused = false
	} else {
		sc.structM = sc.structM[:n1*n2]
	}
	if w := words(n1); cap(sc.structDone) < w {
		sc.structDone = make([]uint64, w)
		reused = false
	} else {
		sc.structDone = sc.structDone[:w]
	}
	return reused
}

// structCacheSize is the slot count of the scratch-local structural memo
// (a power of two; 4096 slots ≈ 64 KiB per Scratch).
const structCacheSize = 1 << 12

// structSim returns the Eq. 3 similarity of two interned tag paths through
// the scratch-local memo, falling back to (and refilling from) the
// context's shared path cache. Contexts with UseCache off (the path-cache
// ablation) bypass the memo too — it is a cache of a cache, and the
// ablation's uncached arm must keep measuring real alignment work.
func (sc *Scratch) structSim(cx *Context, pa, pb xmltree.PathID) float64 {
	if !cx.UseCache {
		return cx.TagPathSim(pa, pb)
	}
	a, b := pa, pb
	if b < a {
		a, b = b, a
	}
	// PathIDs are int32, so the packed ordered pair is injective and the
	// +1 keeps every real key distinct from the empty-slot sentinel 0.
	key := (uint64(uint32(a))<<32 | uint64(uint32(b))) + 1
	h := key * 0x9e3779b97f4a7c15
	slot := (h >> 32) & (structCacheSize - 1)
	if sc.structKey[slot] == key {
		return sc.structVal[slot]
	}
	v := cx.TagPathSim(pa, pb)
	sc.structKey[slot] = key
	sc.structVal[slot] = v
	return v
}

// indexTagPaths fills tps[:] with the distinct tag paths of src and idx
// with each position's slot, returning the distinct count. Linear-scan
// dedup: the distinct count is small (tree tuples repeat tag paths) and
// the scan allocates nothing. src is either a columnar arena block or the
// scratch's table-resolved tpRaw buffer — a flat int32 scan either way.
func indexTagPaths(src, tps []xmltree.PathID, idx []int32) int {
	nd := 0
	for j, tp := range src {
		slot := -1
		for d := 0; d < nd; d++ {
			if tps[d] == tp {
				slot = d
				break
			}
		}
		if slot < 0 {
			slot = nd
			tps[nd] = tp
			nd++
		}
		idx[j] = int32(slot)
	}
	return nd
}

// resolveSide fills one side's scratch columns — per-position TCU vector
// headers plus the deduplicated tag-path index — and returns the distinct
// tag-path count. Span transactions read their tag-path block straight out
// of the corpus's columnar arena (no table lock, no copy) and bulk-copy
// the vector headers from the table's vector column; spanless transactions
// (synthetic representatives, hand-assembled corpora, classify-time
// transients) resolve both columns from the table under one lock.
func (cx *Context) resolveSide(tr *txn.Transaction, vecs []vector.Sparse, tpRaw, tps []xmltree.PathID, idx []int32) int {
	if cols, start := tr.ColumnarSpan(); cols != nil {
		cx.Items.ResolveVectors(tr.Items, vecs)
		cx.Counters.ColumnarResolves.Add(1)
		return indexTagPaths(cols.TagPathSpan(start, len(tr.Items)), tps, idx)
	}
	cx.Items.ResolveColumns(tr.Items, tpRaw, vecs)
	return indexTagPaths(tpRaw, tps, idx)
}

// matchKernel computes the γ-matching marks of (tr1, tr2) into sc and
// returns |matchγ| plus whether the pass ran to completion.
//
// When threshold ≥ 0 (and u > 0), the pass is branch-and-bound over the
// rows of tr1: before computing row i it checks the exact upper bound
//
//	UB(i) = qualRows(i) + (n1 − i) + n2
//
// where qualRows(i) counts processed rows whose best similarity reached γ.
// The bound is sound without any assumption on the unseen similarities:
// a tr1 item can only be marked if its row maximum reaches γ (so marked
// processed rows ≤ qualRows(i), and each unprocessed row adds at most
// itself), while a single unprocessed row can — through exact similarity
// ties, which all qualify — mark arbitrarily many tr2 columns, so the
// column side admits no bound tighter than n2 until the last row is done.
// (The tie cases are precisely why the folklore "2 new marks per remaining
// row" bound is unsound; this kernel never trades exactness for pruning.)
// As soon as UB(i)/u ≤ threshold even a perfect remainder cannot beat the
// threshold, the remaining rows are skipped and Counters.PrunedRows grows
// by the rows saved. Integer count and same-divisor IEEE division make the
// bailout decision exact: the true similarity can never exceed the bound's
// quotient, so callers comparing with a strict > observe byte-identical
// decisions with pruning on or off.
func (cx *Context) matchKernel(tr1, tr2 *txn.Transaction, sc *Scratch, threshold float64, u int) (int, bool) {
	n1, n2 := tr1.Len(), tr2.Len()
	if n1 == 0 || n2 == 0 {
		return 0, true
	}
	f := cx.Params.F
	// The resolution memo is current only if the table is the same one AND
	// no SetVector ran since the columns were copied (the headers are value
	// copies; a weighting pass rewrites vectors in place and must not be
	// served stale — see lastVecVer).
	vecVer := cx.Items.VecVersion()
	sameCols := sc.lastTab == cx.Items && sc.lastVecVer == vecVer
	keep1 := sameCols && sc.lastTr1 == tr1
	keep2 := sameCols && sc.lastTr2 == tr2
	reused := sc.ensure(n1, n2)
	useStructMemo := f > 0 && cx.UseCache
	if useStructMemo && sc.structKey == nil {
		sc.structKey = make([]uint64, structCacheSize)
		sc.structVal = make([]float64, structCacheSize)
		reused = false
	}
	if reused {
		cx.Counters.ScratchReuses.Add(1)
	}
	if !keep1 {
		sc.nd1 = cx.resolveSide(tr1, sc.vecs1, sc.tpRaw1, sc.tp1, sc.tpIdx1)
	}
	if !keep2 {
		sc.nd2 = cx.resolveSide(tr2, sc.vecs2, sc.tpRaw2, sc.tp2, sc.tpIdx2)
	}
	sc.lastTab, sc.lastVecVer, sc.lastTr1, sc.lastTr2 = cx.Items, vecVer, tr1, tr2
	colBest := sc.colBest
	for j := range colBest {
		colBest[j] = -1
	}
	mark1, mark2 := sc.mark1, sc.mark2
	for i := range mark1 {
		mark1[i] = 0
	}
	for j := range mark2 {
		mark2[j] = 0
	}

	gamma := cx.Params.Gamma
	prune := threshold >= 0 && u > 0
	if f > 0 {
		for d := range sc.structDone[:words(sc.nd1)] {
			sc.structDone[d] = 0
		}
	}
	if useStructMemo {
		if sc.lastCx != cx {
			for s := range sc.structKey {
				sc.structKey[s] = 0
			}
		}
		sc.lastCx = cx
	}
	ids1, ids2 := tr1.Items, tr2.Items
	vecs2 := sc.vecs2
	qualRows := 0
	for i := 0; i < n1; i++ {
		if prune && float64(qualRows+(n1-i)+n2)/float64(u) <= threshold {
			cx.Counters.PrunedRows.Add(int64(n1 - i))
			return 0, false
		}
		var structRow []float64
		if f > 0 {
			// One Eq. 3 probe per distinct (tr1, tr2) tag-path pair: the d1
			// structural row is filled on the first item row that needs it
			// and reused by every later row sharing the tag path.
			// structRow[d] is exactly the Eq. 3 term of every position pair
			// whose tag paths sit in slots (d1, d).
			d1 := int(sc.tpIdx1[i])
			structRow = sc.structM[d1*sc.nd2 : d1*sc.nd2+sc.nd2]
			if !hasBit(sc.structDone, d1) {
				tpa := sc.tp1[d1]
				for d := 0; d < sc.nd2; d++ {
					structRow[d] = sc.structSim(cx, tpa, sc.tp2[d])
				}
				setBit(sc.structDone, d1)
			}
		} else {
			structRow = sc.structM[:sc.nd2] // unread at f == 0
		}
		row := sc.simM[i*n2 : (i+1)*n2]
		rowBest := -1.0
		va := sc.vecs1[i]
		if cx.ItemCache == nil {
			// The tight loop: contiguous reads only — the tag-path slot
			// column, the resolved vector headers and the similarity row.
			// The arithmetic replicates Item (Eq. 1) operation for
			// operation, so values are bit-identical to direct Item calls.
			for j := range row {
				s := 0.0
				if f > 0 {
					s += f * structRow[sc.tpIdx2[j]]
				}
				if f < 1 {
					s += (1 - f) * vector.Cosine(va, vecs2[j])
				}
				row[j] = s
				if s > rowBest {
					rowBest = s
				}
				if s > colBest[j] {
					colBest[j] = s
				}
			}
		} else {
			// Memoized variant: same arithmetic behind the item-pair cache,
			// keys packed from the flat id slices.
			ida := ids1[i]
			for j := range row {
				var s float64
				key := packItemPair(ida, ids2[j])
				if v, ok := cx.ItemCache.lookup(key); ok {
					cx.Counters.ItemCacheHits.Add(1)
					s = v
				} else {
					s = 0.0
					if f > 0 {
						s += f * structRow[sc.tpIdx2[j]]
					}
					if f < 1 {
						s += (1 - f) * vector.Cosine(va, vecs2[j])
					}
					cx.ItemCache.store(key, s)
				}
				row[j] = s
				if s > rowBest {
					rowBest = s
				}
				if s > colBest[j] {
					colBest[j] = s
				}
			}
		}
		// One batched counter add per processed row instead of one atomic
		// per pair: totals are identical (pruned rows never counted their
		// pairs before either), contention is n2× lower.
		cx.Counters.ItemSims.Add(int64(n2))
		// Direction tr2 → tr1: the best matchers of tr1's item i within tr2.
		// rowBest is final once the row is filled, so the marks are set here,
		// ties all qualifying.
		if rowBest >= gamma {
			qualRows++
			for j, s := range row {
				if s == rowBest {
					setBit(mark2, j)
				}
			}
		}
	}
	// Direction tr1 → tr2: for each tr2 item (column j), the best matchers
	// from tr1 — every row tying the column maximum qualifies.
	for j := 0; j < n2; j++ {
		best := colBest[j]
		if best < gamma {
			continue
		}
		for i := 0; i < n1; i++ {
			if sc.simM[i*n2+j] == best {
				setBit(mark1, i)
			}
		}
	}

	count := 0
	for _, w := range mark1 {
		count += bits.OnesCount64(w)
	}
	for _, w := range mark2 {
		count += bits.OnesCount64(w)
	}
	// matchγ is a set of item ids: an id held by BOTH transactions and
	// marked from both directions must count once, not twice. Both id
	// slices are sorted ascending and distinct, so a merge walk finds the
	// doubly-marked common ids.
	i, j := 0, 0
	for i < n1 && j < n2 {
		switch {
		case ids1[i] == ids2[j]:
			if hasBit(mark1, i) && hasBit(mark2, j) {
				count--
			}
			i++
			j++
		case ids1[i] < ids2[j]:
			i++
		default:
			j++
		}
	}
	return count, true
}

// MatchCount returns |matchγ(tr1, tr2)| — exactly len(MatchSet(tr1, tr2)) —
// without materializing the set. sc may be nil (a pooled scratch is used);
// pass a per-goroutine Scratch on hot paths to stay allocation-free.
func (cx *Context) MatchCount(tr1, tr2 *txn.Transaction, sc *Scratch) int {
	sc, pooled := getScratch(sc)
	n, _ := cx.matchKernel(tr1, tr2, sc, -1, 0)
	putScratch(sc, pooled)
	return n
}

// MatchSet computes matchγ(tr1, tr2) = matchγ(tr1→tr2) ∪ matchγ(tr2→tr1):
// the set of γ-shared items (see the kernel comment for the tie rule). It
// is a thin materializing wrapper over the count kernel. No production
// path needs the set anymore — the assignment and objective paths use
// MatchCount / TransactionsAtLeast — but it stays exported as the
// readable specification of the match semantics and the oracle the
// equivalence tests pin the count-only kernel against.
func (cx *Context) MatchSet(tr1, tr2 *txn.Transaction) map[txn.ItemID]struct{} {
	n1, n2 := tr1.Len(), tr2.Len()
	shared := make(map[txn.ItemID]struct{}, n1+n2)
	if n1 == 0 || n2 == 0 {
		return shared
	}
	sc, pooled := getScratch(nil)
	cx.matchKernel(tr1, tr2, sc, -1, 0)
	for i := 0; i < n1; i++ {
		if hasBit(sc.mark1, i) {
			shared[tr1.Items[i]] = struct{}{}
		}
	}
	for j := 0; j < n2; j++ {
		if hasBit(sc.mark2, j) {
			shared[tr2.Items[j]] = struct{}{}
		}
	}
	putScratch(sc, pooled)
	return shared
}

// Transactions computes simγJ(tr1, tr2) = |matchγ(tr1,tr2)| / |tr1 ∪ tr2|
// (Eq. 4), in [0,1]. sc may be nil (a pooled scratch is borrowed for the
// call); with a warm caller-owned Scratch the evaluation performs zero heap
// allocations.
func (cx *Context) Transactions(tr1, tr2 *txn.Transaction, sc *Scratch) float64 {
	cx.Counters.TxnSims.Add(1)
	u := txn.UnionSize(tr1, tr2)
	if u == 0 {
		return 0
	}
	sc, pooled := getScratch(sc)
	n, _ := cx.matchKernel(tr1, tr2, sc, -1, u)
	putScratch(sc, pooled)
	return float64(n) / float64(u)
}

// TransactionsAtLeast is Transactions with exact branch-and-bound pruning:
// it returns simγJ(tr1, tr2) whenever that value can exceed threshold, and
// bails out early — returning threshold itself — as soon as the running
// upper bound proves even a perfect remainder cannot beat it. Callers that
// keep a running maximum and compare with a strict `>` (Relocate's argmax
// over representatives) therefore make byte-identical decisions with
// pruning on or off; ties keep resolving to the earlier candidate either
// way. A negative threshold disables pruning, making the call exactly
// equivalent to Transactions.
//
// The skipped work is counted in Counters.PrunedRows (tr1 rows whose item
// similarities were never evaluated).
func (cx *Context) TransactionsAtLeast(tr1, tr2 *txn.Transaction, threshold float64, sc *Scratch) float64 {
	cx.Counters.TxnSims.Add(1)
	u := txn.UnionSize(tr1, tr2)
	if u == 0 {
		return 0
	}
	sc, pooled := getScratch(sc)
	n, completed := cx.matchKernel(tr1, tr2, sc, threshold, u)
	putScratch(sc, pooled)
	if !completed {
		return threshold
	}
	return float64(n) / float64(u)
}
