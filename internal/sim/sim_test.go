package sim

import (
	"math"
	"math/rand"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPathSimIdentical(t *testing.T) {
	p := xmltree.ParsePath("dblp.article.title")
	if got := PathSim(p, p); !approx(got, 1) {
		t.Errorf("identical paths sim = %v, want 1", got)
	}
}

func TestPathSimDisjoint(t *testing.T) {
	a := xmltree.ParsePath("a.b.c")
	b := xmltree.ParsePath("x.y.z")
	if got := PathSim(a, b); got != 0 {
		t.Errorf("disjoint paths sim = %v, want 0", got)
	}
}

// TestPathSimEq3Manual verifies Eq. 3 on a hand-computed example:
// p_i = dblp.article.title (n=3), p_j = dblp.inproceedings.title (m=3).
// Matching tags: dblp at position 1↔1 (factor 1), title at 3↔3 (factor 1);
// article/inproceedings do not match. simS = (1+0+1 + 1+0+1)/6 = 2/3.
func TestPathSimEq3Manual(t *testing.T) {
	a := xmltree.ParsePath("dblp.article.title")
	b := xmltree.ParsePath("dblp.inproceedings.title")
	if got := PathSim(a, b); !approx(got, 2.0/3.0) {
		t.Errorf("sim = %v, want 2/3", got)
	}
}

// TestPathSimPositionPenalty: same tags, shifted by one level.
// p_i = a.b (n=2), p_j = r.a.b (m=3).
// For p_i: s(a, p_j, 1): a at position 2 → 1/(1+1) = 0.5; s(b, p_j, 2): b at
// 3 → 0.5. For p_j: s(r, p_i, 1) = 0; s(a, p_i, 2): a at 1 → 0.5;
// s(b, p_i, 3): b at 2 → 0.5. simS = (0.5+0.5+0+0.5+0.5)/5 = 0.4.
func TestPathSimPositionPenalty(t *testing.T) {
	a := xmltree.ParsePath("a.b")
	b := xmltree.ParsePath("r.a.b")
	if got := PathSim(a, b); !approx(got, 0.4) {
		t.Errorf("sim = %v, want 0.4", got)
	}
}

func TestPathSimSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tags := []string{"a", "b", "c", "d"}
	randPath := func() xmltree.Path {
		n := 1 + rng.Intn(4)
		p := make(xmltree.Path, n)
		for i := range p {
			p[i] = tags[rng.Intn(len(tags))]
		}
		return p
	}
	for i := 0; i < 500; i++ {
		a, b := randPath(), randPath()
		if !approx(PathSim(a, b), PathSim(b, a)) {
			t.Fatalf("asymmetric for %v, %v", a, b)
		}
	}
}

func TestPathSimRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tags := []string{"a", "b", "c"}
	for i := 0; i < 500; i++ {
		n, m := 1+rng.Intn(5), 1+rng.Intn(5)
		pa := make(xmltree.Path, n)
		pb := make(xmltree.Path, m)
		for j := range pa {
			pa[j] = tags[rng.Intn(3)]
		}
		for j := range pb {
			pb[j] = tags[rng.Intn(3)]
		}
		s := PathSim(pa, pb)
		if s < 0 || s > 1+1e-9 {
			t.Fatalf("out of range: %v for %v,%v", s, pa, pb)
		}
	}
}

// Three documents: two near-identical papers and one unrelated report.
var testDocs = []string{
	`<db><paper key="p1">
    <writer>alice cooper</writer>
    <name>mining structured information repositories</name>
    <venue>KDD</venue>
  </paper></db>`,
	`<db><paper key="p2">
    <writer>alice cooper</writer>
    <name>mining structured information collections</name>
    <venue>KDD</venue>
  </paper></db>`,
	`<db><report key="r1">
    <writer>somebody else</writer>
    <name>unrelated plumbing manual</name>
  </report></db>`,
}

func buildCtx(t *testing.T, f, gamma float64) (*Context, *txn.Corpus) {
	t.Helper()
	var trees []*xmltree.Tree
	for _, d := range testDocs {
		tree, err := xmltree.ParseString(d, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
	}
	corpus := txn.Build(trees, txn.BuildOptions{})
	weighting.Apply(corpus)
	return NewContext(corpus, Params{F: f, Gamma: gamma}), corpus
}

func TestItemSimBlend(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.5)
	// Find the two venue items — same path, same answer → same item id.
	var venueCount int
	for id := 0; id < corpus.Items.Len(); id++ {
		it := corpus.Items.Get(txn.ItemID(id))
		if it.Answer == "KDD" {
			venueCount++
			if got := cx.Item(it, it); !approx(got, 1) {
				// identical item: simS=1, simC=cos(u,u)=1 unless empty text
				// ("kdd" is a valid token).
				t.Errorf("self sim = %v", got)
			}
		}
	}
	if venueCount != 1 {
		t.Fatalf("venue items = %d, want 1 (interned)", venueCount)
	}
}

func TestItemSimStructureOnlyAndContentOnly(t *testing.T) {
	cxS, corpus := buildCtx(t, 1.0, 0.5)
	cxC := NewContext(corpus, Params{F: 0, Gamma: 0.5})
	var paperName, reportName *txn.Item
	for id := 0; id < corpus.Items.Len(); id++ {
		it := corpus.Items.Get(txn.ItemID(id))
		switch it.Answer {
		case "mining structured information repositories":
			paperName = it
		case "unrelated plumbing manual":
			reportName = it
		}
	}
	if paperName == nil || reportName == nil {
		t.Fatal("items not found")
	}
	// Structure-only: db.paper.name vs db.report.name → Eq. 3 value 2/3.
	if got := cxS.Item(paperName, reportName); !approx(got, 2.0/3.0) {
		t.Errorf("structure-only sim = %v, want 2/3", got)
	}
	// Content-only: no shared terms → 0.
	if got := cxC.Item(paperName, reportName); !approx(got, 0) {
		t.Errorf("content-only sim = %v, want 0", got)
	}
}

func TestMatchedThreshold(t *testing.T) {
	cx, corpus := buildCtx(t, 1.0, 0.7)
	a := corpus.Items.Get(corpus.Transactions[0].Items[0])
	if !cx.Matched(a, a) {
		t.Error("item should γ-match itself under structure-driven setting")
	}
}

func TestTransactionsSimRangeAndSymmetry(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	trs := corpus.Transactions
	for i := range trs {
		for j := range trs {
			s1 := cx.Transactions(trs[i], trs[j], nil)
			s2 := cx.Transactions(trs[j], trs[i], nil)
			if !approx(s1, s2) {
				t.Fatalf("asymmetric txn sim %d,%d: %v vs %v", i, j, s1, s2)
			}
			if s1 < 0 || s1 > 1+1e-9 {
				t.Fatalf("txn sim out of range: %v", s1)
			}
		}
	}
}

func TestTransactionsSelfSimIsOne(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	for _, tr := range corpus.Transactions {
		if got := cx.Transactions(tr, tr, nil); !approx(got, 1) {
			t.Errorf("self sim = %v, want 1", got)
		}
	}
}

func TestSimilarRecordsBeatDissimilar(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	trs := corpus.Transactions
	// trs[0], trs[1] are the two near-identical papers; trs[2] the report.
	sTwin := cx.Transactions(trs[0], trs[1], nil)
	sFar := cx.Transactions(trs[0], trs[2], nil)
	if sTwin <= sFar {
		t.Errorf("twin sim %v should exceed far sim %v", sTwin, sFar)
	}
}

func TestMatchSetEmptyWhenGammaMaxed(t *testing.T) {
	cx, corpus := buildCtx(t, 0.0, 0.999)
	trs := corpus.Transactions
	// Content-only with near-1 threshold: the unrelated report shares no
	// exact text with paper 1.
	ms := cx.MatchSet(trs[0], trs[2])
	if len(ms) != 0 {
		t.Errorf("match set should be empty, got %d", len(ms))
	}
}

func TestMatchSetBestMatcherOnly(t *testing.T) {
	cx, corpus := buildCtx(t, 1.0, 0.5)
	trs := corpus.Transactions
	ms := cx.MatchSet(trs[0], trs[1])
	if len(ms) == 0 {
		t.Fatal("twins should share items structurally")
	}
	// All shared items must come from one of the two transactions.
	for id := range ms {
		if !trs[0].Contains(id) && !trs[1].Contains(id) {
			t.Errorf("foreign item %d in match set", id)
		}
	}
}

func TestPathCacheCountsAndEquivalence(t *testing.T) {
	cxOn, corpus := buildCtx(t, 1.0, 0.5)
	cxOff := NewContext(corpus, Params{F: 1.0, Gamma: 0.5})
	cxOff.UseCache = false
	trs := corpus.Transactions
	for i := range trs {
		for j := range trs {
			// Fresh scratches so cross-pair structural reuse exercises the
			// shared PathCache rather than the scratch-local memo.
			a := cxOn.Transactions(trs[i], trs[j], NewScratch())
			b := cxOff.Transactions(trs[i], trs[j], NewScratch())
			if !approx(a, b) {
				t.Fatalf("cache changed result: %v vs %v", a, b)
			}
		}
	}
	if cxOn.Counters.CacheHits.Load() == 0 {
		t.Error("cache never hit")
	}
	if cxOff.Counters.CacheHits.Load() != 0 || cxOff.Counters.CacheMisses.Load() != 0 {
		t.Error("disabled cache recorded hits/misses")
	}
	if cxOff.Counters.PathSims.Load() <= cxOn.Counters.PathSims.Load() {
		t.Errorf("cache should reduce path alignments: on=%d off=%d",
			cxOn.Counters.PathSims.Load(), cxOff.Counters.PathSims.Load())
	}
}

func TestCountersAdvance(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	before := cx.Counters.TxnSims.Load()
	cx.Transactions(corpus.Transactions[0], corpus.Transactions[1], nil)
	if cx.Counters.TxnSims.Load() != before+1 {
		t.Error("TxnSims not incremented")
	}
	if cx.Counters.ItemSims.Load() == 0 {
		t.Error("ItemSims not incremented")
	}
}

func TestGammaMonotonicity(t *testing.T) {
	// Raising γ can only shrink match sets, so simγJ is non-increasing in γ.
	_, corpus := buildCtx(t, 0.5, 0.5)
	trs := corpus.Transactions
	prev := math.Inf(1)
	for _, gamma := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		cx := NewContext(corpus, Params{F: 0.5, Gamma: gamma})
		s := cx.Transactions(trs[0], trs[1], nil)
		if s > prev+1e-9 {
			t.Fatalf("simγJ increased when γ rose to %v: %v > %v", gamma, s, prev)
		}
		prev = s
	}
}

func BenchmarkTransactionSim(b *testing.B) {
	var trees []*xmltree.Tree
	for _, d := range testDocs {
		tree, _ := xmltree.ParseString(d, xmltree.DefaultParseOptions())
		trees = append(trees, tree)
	}
	corpus := txn.Build(trees, txn.BuildOptions{})
	weighting.Apply(corpus)
	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0.7})
	trs := corpus.Transactions
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cx.Transactions(trs[i%len(trs)], trs[(i+1)%len(trs)], nil)
	}
}

func BenchmarkPathSim(b *testing.B) {
	p1 := xmltree.ParsePath("dblp.inproceedings.author")
	p2 := xmltree.ParsePath("dblp.article.editor")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PathSim(p1, p2)
	}
}
