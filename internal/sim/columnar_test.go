package sim

import (
	"math/rand"
	"testing"

	"xmlclust/internal/vector"
)

// TestColumnarPathEquivalence pins the contiguous-scan (SoA) kernel path to
// the seed oracle on randomized corpora: after RebuildColumnar attaches
// spans, every pair and every params combination must still reproduce
// SeedMatchSet/SeedTransactions bit for bit, and the ColumnarResolves
// counter must prove the columnar path — not the fallback — was taken.
func TestColumnarPathEquivalence(t *testing.T) {
	for seed := int64(21); seed <= 26; seed++ {
		rng := rand.New(rand.NewSource(seed))
		corpus := randomKernelCorpus(rng, 20+rng.Intn(40), 12)
		corpus.RebuildColumnar()
		if corpus.Columnar().NumSpans() != len(corpus.Transactions) {
			t.Fatalf("seed %d: %d spans for %d transactions",
				seed, corpus.Columnar().NumSpans(), len(corpus.Transactions))
		}
		for _, p := range kernelParamsGrid {
			cx := NewContext(corpus, p)
			sc := NewScratch()
			before := cx.Counters.ColumnarResolves.Load()
			for _, tr1 := range corpus.Transactions {
				for _, tr2 := range corpus.Transactions {
					ref := SeedMatchSet(cx, tr1, tr2)
					if got := cx.MatchCount(tr1, tr2, sc); got != len(ref) {
						t.Fatalf("seed %d params %+v: columnar MatchCount = %d, seed set has %d",
							seed, p, got, len(ref))
					}
					want := SeedTransactions(cx, tr1, tr2)
					if got := cx.Transactions(tr1, tr2, sc); got != want {
						t.Fatalf("seed %d params %+v: columnar Transactions = %v, seed %v",
							seed, p, got, want)
					}
				}
			}
			if cx.Counters.ColumnarResolves.Load() == before {
				t.Fatalf("seed %d params %+v: ColumnarResolves never advanced — kernel took the fallback path", seed, p)
			}
		}
	}
}

// TestColumnarMatchesFallback builds the same random corpus twice — one
// with spans attached, one without — and checks the two kernel paths agree
// on every pair: the columnar fast path may change the memory walk, never
// the arithmetic.
func TestColumnarMatchesFallback(t *testing.T) {
	rng1 := rand.New(rand.NewSource(77))
	rng2 := rand.New(rand.NewSource(77))
	colCorpus := randomKernelCorpus(rng1, 45, 14)
	ptrCorpus := randomKernelCorpus(rng2, 45, 14)
	colCorpus.RebuildColumnar()
	if ptrCorpus.Columnar() != nil {
		t.Fatal("hand-assembled corpus unexpectedly has a columnar view")
	}
	for _, p := range kernelParamsGrid {
		cxCol := NewContext(colCorpus, p)
		cxPtr := NewContext(ptrCorpus, p)
		scCol, scPtr := NewScratch(), NewScratch()
		for i, tr1 := range colCorpus.Transactions {
			for j, tr2 := range colCorpus.Transactions {
				got := cxCol.Transactions(tr1, tr2, scCol)
				want := cxPtr.Transactions(ptrCorpus.Transactions[i], ptrCorpus.Transactions[j], scPtr)
				if got != want {
					t.Fatalf("params %+v pair (%d,%d): columnar %v, fallback %v", p, i, j, got, want)
				}
			}
		}
		if cxPtr.Counters.ColumnarResolves.Load() != 0 {
			t.Fatalf("params %+v: fallback context advanced ColumnarResolves", p)
		}
	}
}

// TestSetVectorInvalidatesWarmScratch: the scratch memo snapshots resolved
// vector headers by value, so an in-place SetVector between two calls on
// the same pair must not be served from the stale memo — the version
// counter has to force a re-resolve, and the warm result must match a
// fresh-scratch evaluation exactly.
func TestSetVectorInvalidatesWarmScratch(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	trs := corpus.Transactions
	tr1, tr2 := trs[0], trs[1]
	if tr1.Len() == 0 {
		t.Fatal("fixture transaction is empty")
	}
	sc := NewScratch()
	before := cx.Transactions(tr1, tr2, sc)
	// Redirect one of tr1's items to an orthogonal vector: cosine against
	// everything it used to resemble drops, so the pair similarity must move.
	cx.Items.SetVector(tr1.Items[0], vector.FromMap(map[int32]float64{1 << 20: 1}))
	warm := cx.Transactions(tr1, tr2, sc)
	fresh := cx.Transactions(tr1, tr2, NewScratch())
	if warm != fresh {
		t.Fatalf("warm scratch served a stale vector memo: warm %v, fresh %v (pre-mutation %v)",
			warm, fresh, before)
	}
}

// TestTransactionsZeroAllocWarmScratchFallback is the allocation guard for
// the pointer-table fallback path (corpora without a columnar view, e.g.
// gob-decoded p2p transaction sets): once the scratch is warm, resolution
// through ItemTable.ResolveColumns must also be allocation-free. The name
// shares the TestTransactionsZeroAllocWarmScratch prefix so the CI lint
// job's -run pattern covers both paths.
func TestTransactionsZeroAllocWarmScratchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	corpus := randomKernelCorpus(rng, 60, 16)
	if corpus.Columnar() != nil {
		t.Fatal("fallback fixture unexpectedly has a columnar view")
	}
	cx := NewContext(corpus, Params{F: 0.5, Gamma: 0.6})
	trs := corpus.Transactions
	sc := NewScratch()
	for _, tr1 := range trs {
		for _, tr2 := range trs {
			cx.Transactions(tr1, tr2, sc)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		cx.Transactions(trs[0], trs[1], sc)
	}); avg != 0 {
		t.Errorf("fallback Transactions with warm scratch allocates %.2f/op, want 0", avg)
	}
	if cx.Counters.ColumnarResolves.Load() != 0 {
		t.Error("fallback corpus advanced ColumnarResolves")
	}
}

// TestZeroAllocGuardIsColumnar documents which path the primary zero-alloc
// guard exercises: buildCtx goes through txn.Build, whose builder attaches
// spans to every transaction, so TestTransactionsZeroAllocWarmScratch pins
// the columnar warm path at zero allocations.
func TestZeroAllocGuardIsColumnar(t *testing.T) {
	cx, corpus := buildCtx(t, 0.5, 0.6)
	if corpus.Columnar() == nil {
		t.Fatal("txn.Build corpus has no columnar view")
	}
	trs := corpus.Transactions
	sc := NewScratch()
	cx.Transactions(trs[0], trs[1], sc)
	if cx.Counters.ColumnarResolves.Load() == 0 {
		t.Fatal("builder-built corpus did not take the columnar resolve path")
	}
}
