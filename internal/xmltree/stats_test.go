package xmltree

import (
	"strings"
	"testing"
)

func TestCollectStats(t *testing.T) {
	doc := `<r a="1"><x><y>deep</y></x><x><y>also deep</y></x><z>shallow</z></r>`
	tree, err := ParseString(doc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := Collect([]*Tree{tree})
	if st.Documents != 1 {
		t.Errorf("documents = %d", st.Documents)
	}
	// Nodes: r, @a, x, y, S, x, y, S, z, S = 10.
	if st.Nodes != 10 {
		t.Errorf("nodes = %d, want 10", st.Nodes)
	}
	// Leaves: @a, two deep S, one shallow S = 4.
	if st.Leaves != 4 {
		t.Errorf("leaves = %d, want 4", st.Leaves)
	}
	// r has 4 children (@a, x, x, z).
	if st.MaxFanOut != 4 {
		t.Errorf("max fanout = %d, want 4", st.MaxFanOut)
	}
	// r(1) → x(2) → y(3) → S(4).
	if st.MaxDepth != 4 {
		t.Errorf("max depth = %d, want 4", st.MaxDepth)
	}
	// Distinct complete paths: r.@a, r.x.y.S, r.z.S = 3.
	if st.DistinctPaths != 3 {
		t.Errorf("paths = %d, want 3", st.DistinctPaths)
	}
	// Tags: r, x, y, z.
	if st.DistinctTags != 4 {
		t.Errorf("tags = %d, want 4", st.DistinctTags)
	}
	// Avg leaf depth: (2 + 4 + 4 + 3)/4 = 3.25.
	if got := st.AvgDepth(); got != 3.25 {
		t.Errorf("avg depth = %v, want 3.25", got)
	}
}

func TestCollectEmpty(t *testing.T) {
	st := Collect(nil)
	if st.Documents != 0 || st.Nodes != 0 || st.AvgDepth() != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	// Tree with nil root is skipped.
	st = Collect([]*Tree{{}})
	if st.Nodes != 0 {
		t.Errorf("nil-root tree counted: %+v", st)
	}
}

func TestStatsWrite(t *testing.T) {
	tree, _ := ParseString(`<a><b>x</b></a>`, DefaultParseOptions())
	var sb strings.Builder
	Collect([]*Tree{tree}).Write(&sb)
	for _, frag := range []string{"documents=1", "leaves=1", "max-depth=3"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("stats output missing %q: %s", frag, sb.String())
		}
	}
}
