// Package xmltree implements the labeled rooted tree model for XML documents
// from Sect. 3.1 of the paper: a tree T = ⟨rT, NT, ET, λT⟩ over the alphabet
// Σ = Tag ∪ Att ∪ {S}, where leaves carry attribute values or #PCDATA
// strings via the δ function, plus the associated notions of tag path,
// complete path, path answer and tree depth.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind distinguishes the three label classes of Σ.
type NodeKind uint8

const (
	// Element is an internal node labeled with a tag name.
	Element NodeKind = iota
	// Attribute is a leaf labeled "@name" whose δ value is the attribute value.
	Attribute
	// Text is a leaf labeled with the distinguished symbol S whose δ value is
	// the #PCDATA content.
	Text
)

// TextLabel is the distinguished symbol S used to denote #PCDATA content.
const TextLabel = "S"

// Node is a node of an XML tree. Nodes are owned by their Tree and must not
// be shared across trees.
type Node struct {
	ID       int // position in Tree.Nodes (stable identifier)
	Kind     NodeKind
	Label    string // tag name, "@attr", or TextLabel
	Value    string // δ(n) for leaves; empty for elements
	Parent   *Node  // nil for the root
	Children []*Node
}

// IsLeaf reports whether n is a leaf in the XML-tree sense (attribute or
// text node). An element with no children is an empty element, not a leaf
// carrying content.
func (n *Node) IsLeaf() bool { return n.Kind != Element }

// Tree is an XML tree XT = ⟨T, δ⟩.
type Tree struct {
	// DocID identifies the source document within a collection.
	DocID int
	// Name is an optional human-readable identifier (e.g. file name).
	Name string
	// Root is the distinguished root rT.
	Root *Node
	// Nodes lists all nodes in document order; Nodes[i].ID == i.
	Nodes []*Node
}

// NewTree creates an empty tree with the given root element label.
func NewTree(rootLabel string) *Tree {
	t := &Tree{}
	t.Root = t.NewNode(Element, rootLabel, "", nil)
	return t
}

// NewNode allocates a node, registers it in the tree and links it under
// parent (nil for the root).
func (t *Tree) NewNode(kind NodeKind, label, value string, parent *Node) *Node {
	n := &Node{ID: len(t.Nodes), Kind: kind, Label: label, Value: value, Parent: parent}
	t.Nodes = append(t.Nodes, n)
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// AddElement appends an element child.
func (t *Tree) AddElement(parent *Node, tag string) *Node {
	return t.NewNode(Element, tag, "", parent)
}

// AddAttribute appends an attribute leaf "@name" = value.
func (t *Tree) AddAttribute(parent *Node, name, value string) *Node {
	return t.NewNode(Attribute, "@"+name, value, parent)
}

// AddText appends a #PCDATA leaf.
func (t *Tree) AddText(parent *Node, value string) *Node {
	return t.NewNode(Text, TextLabel, value, parent)
}

// Path is an XML path: a sequence of symbols in Tag ∪ Att ∪ {S}, rendered
// with the paper's dotted notation (e.g. "dblp.inproceedings.author.S").
// Paths are interned per collection via PathTable; within this package they
// are plain symbol slices.
type Path []string

// String renders the dotted form.
func (p Path) String() string { return strings.Join(p, ".") }

// IsComplete reports whether the path is a complete path, i.e. its last
// symbol is an attribute name or S.
func (p Path) IsComplete() bool {
	if len(p) == 0 {
		return false
	}
	last := p[len(p)-1]
	return last == TextLabel || strings.HasPrefix(last, "@")
}

// ParsePath parses the dotted notation into a Path.
func ParsePath(s string) Path {
	if s == "" {
		return nil
	}
	return Path(strings.Split(s, "."))
}

// NodePath returns the label path from the root down to n.
func NodePath(n *Node) Path {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Label)
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p
}

// Depth returns depth(XT): the length of the longest complete path.
func (t *Tree) Depth() int {
	max := 0
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if d > max {
			max = d
		}
		for _, c := range n.Children {
			walk(c, d+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 1)
	}
	return max
}

// Apply returns p(XT): all nodes reachable from the root by following the
// label sequence p.
func (t *Tree) Apply(p Path) []*Node {
	if t.Root == nil || len(p) == 0 || t.Root.Label != p[0] {
		return nil
	}
	frontier := []*Node{t.Root}
	for _, sym := range p[1:] {
		var next []*Node
		for _, n := range frontier {
			for _, c := range n.Children {
				if c.Label == sym {
					next = append(next, c)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// Answer returns the answer of p on the tree (Sect. 3.1): node identifiers
// for a tag path, leaf string values for a complete path.
func (t *Tree) Answer(p Path) []string {
	nodes := t.Apply(p)
	if len(nodes) == 0 {
		return nil
	}
	out := make([]string, 0, len(nodes))
	if p.IsComplete() {
		for _, n := range nodes {
			out = append(out, n.Value)
		}
	} else {
		for _, n := range nodes {
			out = append(out, fmt.Sprintf("n%d", n.ID))
		}
	}
	return out
}

// CompletePaths returns P_XT: the set of distinct complete paths, sorted.
func (t *Tree) CompletePaths() []Path {
	seen := map[string]Path{}
	for _, n := range t.Nodes {
		if n.IsLeaf() {
			p := NodePath(n)
			seen[p.String()] = p
		}
	}
	return sortPathMap(seen)
}

// MaximalTagPaths returns TP_XT: the distinct tag paths obtained by removing
// the last symbol of every complete path, sorted.
func (t *Tree) MaximalTagPaths() []Path {
	seen := map[string]Path{}
	for _, n := range t.Nodes {
		if n.IsLeaf() {
			p := NodePath(n)
			tp := p[:len(p)-1]
			seen[tp.String()] = tp
		}
	}
	return sortPathMap(seen)
}

func sortPathMap(m map[string]Path) []Path {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Path, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Leaves returns the leaf nodes in document order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// Clone produces a deep copy of the tree (fresh nodes, same labels/values).
func (t *Tree) Clone() *Tree {
	c := &Tree{DocID: t.DocID, Name: t.Name}
	if t.Root == nil {
		return c
	}
	var cp func(n *Node, parent *Node) *Node
	cp = func(n *Node, parent *Node) *Node {
		nn := c.NewNode(n.Kind, n.Label, n.Value, parent)
		for _, ch := range n.Children {
			cp(ch, nn)
		}
		return nn
	}
	c.Root = cp(t.Root, nil)
	return c
}

// String renders an indented dump of the tree for debugging and examples.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch n.Kind {
		case Element:
			b.WriteString(n.Label)
		default:
			fmt.Fprintf(&b, "%s=%q", n.Label, n.Value)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	return b.String()
}
