package xmltree

import (
	"fmt"
	"io"
)

// Stats summarizes the structural geometry of a tree or collection, the
// figures the paper reports per corpus (Sect. 5.2: e.g. IEEE has 228869
// leaf nodes, maximum fan-out 43 and average depth ≈ 5).
type Stats struct {
	Documents int
	Nodes     int
	Leaves    int
	MaxFanOut int
	MaxDepth  int
	// SumLeafDepth / Leaves is the average leaf depth.
	SumLeafDepth  int
	DistinctPaths int
	DistinctTags  int
}

// AvgDepth returns the mean depth of the leaves.
func (s Stats) AvgDepth() float64 {
	if s.Leaves == 0 {
		return 0
	}
	return float64(s.SumLeafDepth) / float64(s.Leaves)
}

// Collect computes statistics over a collection of trees.
func Collect(trees []*Tree) Stats {
	st := Stats{Documents: len(trees)}
	paths := map[string]struct{}{}
	tags := map[string]struct{}{}
	for _, t := range trees {
		if t.Root == nil {
			continue
		}
		var walk func(n *Node, depth int)
		walk = func(n *Node, depth int) {
			st.Nodes++
			if n.Kind == Element {
				tags[n.Label] = struct{}{}
			}
			if len(n.Children) > st.MaxFanOut {
				st.MaxFanOut = len(n.Children)
			}
			if depth > st.MaxDepth {
				st.MaxDepth = depth
			}
			if n.IsLeaf() {
				st.Leaves++
				st.SumLeafDepth += depth
				paths[NodePath(n).String()] = struct{}{}
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(t.Root, 1)
	}
	st.DistinctPaths = len(paths)
	st.DistinctTags = len(tags)
	return st
}

// Write renders the statistics.
func (s Stats) Write(w io.Writer) {
	fmt.Fprintf(w, "documents=%d nodes=%d leaves=%d max-fanout=%d max-depth=%d avg-depth=%.2f paths=%d tags=%d\n",
		s.Documents, s.Nodes, s.Leaves, s.MaxFanOut, s.MaxDepth, s.AvgDepth(), s.DistinctPaths, s.DistinctTags)
}
