package xmltree

import (
	"strings"
	"testing"
)

// fuzzOptionSets are the ParseOptions shapes FuzzParse exercises: the
// default mapping, per-text-run leaves, and the strip/inline/depth knobs
// used for the IEEE and Wikipedia corpora.
var fuzzOptionSets = []ParseOptions{
	DefaultParseOptions(),
	{ConcatenateText: false, KeepAttributes: true},
	{ConcatenateText: true, StripTags: []string{"drop", "style"}, InlineTags: []string{"i", "b"}},
	{ConcatenateText: false, MaxDepth: 3},
}

// FuzzParse feeds arbitrary byte soup to the XML → tree mapping. The
// parser may reject input with an error but must never panic, and any
// accepted document must come back with a usable root. The seed corpus is
// drawn from the package's test fixtures plus the malformed/truncated
// shapes the error-path tests use.
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperDoc, // the Fig. 2 DBLP fixture shared with tree_test.go
		`<db><paper key="p1"><writer>alice</writer><name>mining patterns</name></paper></db>`,
		`<a><b>x</b><b>y</b><c attr="v">z</c></a>`,
		`<r>text <i>inline</i> tail<drop><deep/></drop></r>`,
		`<Speech><Speaker>HAMLET</Speaker><Line>To be, or not to be</Line></Speech>`,
		// Malformed and truncated shapes.
		``,
		`no xml here`,
		`<a/><b/>`,              // multiple roots
		`<a><b></a></b>`,        // crossed tags
		`<a><b>unterminated`,    // truncated mid-element
		`<a attr=>bad attr</a>`, // mangled attribute
		`<a>&unknown;</a>`,      // undefined entity
		`<?xml version="1.0"?>`, // prolog only
		`<a>` + strings.Repeat("<d>", 50) + "deep" + strings.Repeat("</d>", 50) + `</a>`,
		"<a>\xff\xfe binary \x00 soup</a>",
		`<a xmlns:x="u"><x:b x:k="v">ns</x:b></a>`,
		`<!-- comment only -->`,
		`<![CDATA[loose cdata]]>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		for _, opts := range fuzzOptionSets {
			tree, err := ParseString(doc, opts)
			if err != nil {
				continue
			}
			if tree == nil || tree.Root == nil {
				t.Fatalf("nil tree/root without error for %q", doc)
			}
			// The accepted tree must be internally consistent enough for the
			// downstream pipeline: walkable and renderable.
			if d := tree.Depth(); d < 1 {
				t.Fatalf("accepted tree has depth %d for %q", d, doc)
			}
		}
	})
}
