package xmltree

import (
	"strings"
	"testing"
)

// paperDoc is the Fig. 2 DBLP example, abridged.
const paperDoc = `<?xml version="1.0"?>
<dblp>
  <inproceedings key="conf/kdd/ZakiA03">
    <author>M.J. Zaki</author>
    <author>C.C. Aggarwal</author>
    <title>XRules: an effective structural classifier for XML data</title>
    <year>2003</year>
    <booktitle>KDD</booktitle>
    <pages>316-325</pages>
  </inproceedings>
  <inproceedings key="conf/kdd/Zaki02">
    <author>M.J. Zaki</author>
    <title>Efficiently mining frequent trees in a forest</title>
    <year>2002</year>
    <booktitle>KDD</booktitle>
    <pages>71-80</pages>
  </inproceedings>
</dblp>`

func mustPaperTree(t *testing.T) *Tree {
	t.Helper()
	tree, err := ParseString(paperDoc, DefaultParseOptions())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tree
}

func TestParsePaperExample(t *testing.T) {
	tree := mustPaperTree(t)
	if tree.Root.Label != "dblp" {
		t.Fatalf("root = %q", tree.Root.Label)
	}
	if got := len(tree.Root.Children); got != 2 {
		t.Fatalf("root children = %d, want 2", got)
	}
	// First inproceedings: @key + 2 authors + title + year + booktitle + pages.
	first := tree.Root.Children[0]
	if len(first.Children) != 7 {
		t.Fatalf("first record children = %d, want 7", len(first.Children))
	}
	if first.Children[0].Kind != Attribute || first.Children[0].Label != "@key" {
		t.Errorf("attribute leaf missing: %+v", first.Children[0])
	}
}

func TestAnswerTagAndCompletePaths(t *testing.T) {
	tree := mustPaperTree(t)
	// Tag path answers are node identifiers (Example 1).
	titles := tree.Answer(ParsePath("dblp.inproceedings.title"))
	if len(titles) != 2 {
		t.Fatalf("title tag path answers = %v", titles)
	}
	// Complete path answers are leaf strings.
	authors := tree.Answer(ParsePath("dblp.inproceedings.author.S"))
	want := map[string]bool{"M.J. Zaki": true, "C.C. Aggarwal": true}
	if len(authors) != 3 {
		t.Fatalf("author answers = %v", authors)
	}
	for _, a := range authors {
		if !want[a] {
			t.Errorf("unexpected author %q", a)
		}
	}
	keys := tree.Answer(ParsePath("dblp.inproceedings.@key"))
	if len(keys) != 2 || keys[0] != "conf/kdd/ZakiA03" {
		t.Errorf("keys = %v", keys)
	}
}

func TestAnswerMissingPath(t *testing.T) {
	tree := mustPaperTree(t)
	if got := tree.Answer(ParsePath("dblp.article.title.S")); got != nil {
		t.Errorf("missing path answered %v", got)
	}
	if got := tree.Answer(ParsePath("wrongroot.title")); got != nil {
		t.Errorf("wrong root answered %v", got)
	}
}

func TestDepth(t *testing.T) {
	tree := mustPaperTree(t)
	// dblp → inproceedings → author → S is 4 levels.
	if got := tree.Depth(); got != 4 {
		t.Errorf("depth = %d, want 4", got)
	}
}

func TestCompleteAndTagPaths(t *testing.T) {
	tree := mustPaperTree(t)
	cps := tree.CompletePaths()
	wantCPs := map[string]bool{
		"dblp.inproceedings.@key":        true,
		"dblp.inproceedings.author.S":    true,
		"dblp.inproceedings.title.S":     true,
		"dblp.inproceedings.year.S":      true,
		"dblp.inproceedings.booktitle.S": true,
		"dblp.inproceedings.pages.S":     true,
	}
	if len(cps) != len(wantCPs) {
		t.Fatalf("complete paths = %v", cps)
	}
	for _, p := range cps {
		if !wantCPs[p.String()] {
			t.Errorf("unexpected complete path %v", p)
		}
		if !p.IsComplete() {
			t.Errorf("path %v should be complete", p)
		}
	}
	tps := tree.MaximalTagPaths()
	if len(tps) != 6 {
		t.Fatalf("maximal tag paths = %v", tps)
	}
	for _, p := range tps {
		if p.IsComplete() {
			t.Errorf("tag path %v claims to be complete", p)
		}
	}
}

func TestNodePathAndLeaves(t *testing.T) {
	tree := mustPaperTree(t)
	leaves := tree.Leaves()
	if len(leaves) != 13 {
		t.Fatalf("leaves = %d, want 13", len(leaves))
	}
	for _, l := range leaves {
		p := NodePath(l)
		if p[0] != "dblp" {
			t.Errorf("leaf path %v does not start at root", p)
		}
		if !p.IsComplete() {
			t.Errorf("leaf path %v not complete", p)
		}
	}
}

func TestParseTextConcatenation(t *testing.T) {
	doc := `<a><b>first part <i>inline</i> second part</b></a>`
	tree, err := ParseString(doc, ParseOptions{ConcatenateText: true, InlineTags: []string{"i"}})
	if err != nil {
		t.Fatal(err)
	}
	texts := tree.Answer(ParsePath("a.b.S"))
	if len(texts) != 1 {
		t.Fatalf("texts = %v, want one concatenated leaf", texts)
	}
	for _, frag := range []string{"first part", "inline", "second part"} {
		if !strings.Contains(texts[0], frag) {
			t.Errorf("concatenated text %q missing %q", texts[0], frag)
		}
	}
}

func TestParseSeparateTextRuns(t *testing.T) {
	doc := `<a>one<b>mid</b>two</a>`
	tree, err := ParseString(doc, ParseOptions{ConcatenateText: false, KeepAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	texts := tree.Answer(ParsePath("a.S"))
	if len(texts) != 2 {
		t.Fatalf("want 2 text leaves, got %v", texts)
	}
}

func TestParseStripTags(t *testing.T) {
	doc := `<doc><keep>yes</keep><drop><keep>no</keep></drop></doc>`
	tree, err := ParseString(doc, ParseOptions{ConcatenateText: true, StripTags: []string{"drop"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Answer(ParsePath("doc.keep.S")); len(got) != 1 || got[0] != "yes" {
		t.Errorf("strip failed: %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("", DefaultParseOptions()); err == nil {
		t.Error("empty document should fail")
	}
	if _, err := ParseString("no xml here", DefaultParseOptions()); err == nil {
		t.Error("non-XML should fail")
	}
}

func TestParseWhitespaceNormalization(t *testing.T) {
	doc := "<a><b>  lots   of\n\t spaces  </b></a>"
	tree, err := ParseString(doc, DefaultParseOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Answer(ParsePath("a.b.S"))
	if len(got) != 1 || got[0] != "lots of spaces" {
		t.Errorf("whitespace not normalized: %q", got)
	}
}

func TestClone(t *testing.T) {
	tree := mustPaperTree(t)
	c := tree.Clone()
	if c.Depth() != tree.Depth() || len(c.Nodes) != len(tree.Nodes) {
		t.Fatal("clone structure differs")
	}
	// Mutating the clone must not affect the original.
	c.AddText(c.Root, "extra")
	if len(c.Nodes) == len(tree.Nodes) {
		t.Error("clone shares node storage")
	}
}

func TestApplyEmptyAndRootOnly(t *testing.T) {
	tree := mustPaperTree(t)
	if got := tree.Apply(nil); got != nil {
		t.Errorf("empty path applied: %v", got)
	}
	if got := tree.Apply(ParsePath("dblp")); len(got) != 1 || got[0] != tree.Root {
		t.Errorf("root path = %v", got)
	}
}

func TestPathString(t *testing.T) {
	p := ParsePath("dblp.inproceedings.author.S")
	if p.String() != "dblp.inproceedings.author.S" {
		t.Errorf("roundtrip failed: %q", p.String())
	}
	if len(p) != 4 {
		t.Errorf("len = %d", len(p))
	}
	if ParsePath("") != nil {
		t.Error("empty string should parse to nil path")
	}
}

func TestRenderRoundtrip(t *testing.T) {
	tree := mustPaperTree(t)
	out := RenderString(tree)
	re, err := ParseString(out, DefaultParseOptions())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	// Answers must survive the roundtrip.
	for _, path := range []string{
		"dblp.inproceedings.@key",
		"dblp.inproceedings.author.S",
		"dblp.inproceedings.booktitle.S",
	} {
		a1 := tree.Answer(ParsePath(path))
		a2 := re.Answer(ParsePath(path))
		if len(a1) != len(a2) {
			t.Fatalf("path %s: %v vs %v", path, a1, a2)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Errorf("path %s answer %d: %q vs %q", path, i, a1[i], a2[i])
			}
		}
	}
}

func TestRenderEscapes(t *testing.T) {
	tree := NewTree("a")
	tree.AddText(tree.Root, `tricky <text> & "quotes"`)
	out := RenderString(tree)
	re, err := ParseString(out, DefaultParseOptions())
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, out)
	}
	got := re.Answer(ParsePath("a.S"))
	if len(got) != 1 || got[0] != `tricky <text> & "quotes"` {
		t.Errorf("escape roundtrip: %q", got)
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	if _, err := ParseString("<a/><b/>", DefaultParseOptions()); err == nil {
		t.Error("multiple roots should fail")
	}
}

func TestTreeString(t *testing.T) {
	tree := NewTree("root")
	tree.AddAttribute(tree.Root, "id", "1")
	child := tree.AddElement(tree.Root, "child")
	tree.AddText(child, "hello")
	s := tree.String()
	for _, frag := range []string{"root", `@id="1"`, "child", `S="hello"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}
