package xmltree

import "sync"

// PathID is the interned identifier of a path within a PathTable.
type PathID int32

// PathTable interns dotted paths collection-wide so that items, similarity
// caches and representatives can refer to paths by dense integer ids. It is
// safe for concurrent use.
type PathTable struct {
	mu    sync.RWMutex
	byStr map[string]PathID
	paths []Path
}

// NewPathTable creates an empty table.
func NewPathTable() *PathTable {
	return &PathTable{byStr: make(map[string]PathID)}
}

// Intern returns the id for p, registering it if unseen.
func (pt *PathTable) Intern(p Path) PathID {
	key := p.String()
	pt.mu.RLock()
	id, ok := pt.byStr[key]
	pt.mu.RUnlock()
	if ok {
		return id
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if id, ok := pt.byStr[key]; ok {
		return id
	}
	id = PathID(len(pt.paths))
	cp := make(Path, len(p))
	copy(cp, p)
	pt.paths = append(pt.paths, cp)
	pt.byStr[key] = id
	return id
}

// Lookup returns the id for p and whether it is registered.
func (pt *PathTable) Lookup(p Path) (PathID, bool) {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	id, ok := pt.byStr[p.String()]
	return id, ok
}

// Path returns the path for an id; it panics on out-of-range ids.
func (pt *PathTable) Path(id PathID) Path {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return pt.paths[id]
}

// Len returns the number of interned paths.
func (pt *PathTable) Len() int {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.paths)
}

// TagPath returns the tag-path prefix of a complete path id (the path minus
// its trailing attribute/S symbol) — unchanged if the path is already a tag
// path — interned in the same table.
func (pt *PathTable) TagPath(id PathID) PathID {
	p := pt.Path(id)
	if !p.IsComplete() {
		return id
	}
	return pt.Intern(p[:len(p)-1])
}
