package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls how raw XML is mapped onto the tree model.
type ParseOptions struct {
	// ConcatenateText merges all #PCDATA directly under one element into a
	// single S leaf (the paper does this for the Shakespeare speech lines).
	// When false, each non-blank text run becomes its own S leaf.
	ConcatenateText bool
	// KeepAttributes maps XML attributes to "@name" leaves. The paper's
	// model includes them (e.g. dblp.inproceedings.@key).
	KeepAttributes bool
	// StripTags lists element names to filter out entirely (with their
	// subtrees); used to drop stylistic/non-logical markup as done for the
	// IEEE and Wikipedia corpora (Sect. 5.2).
	StripTags []string
	// InlineTags lists element names whose tags are removed but whose
	// content is hoisted into the parent (typical for formatting markup such
	// as <b> or <it> inside text).
	InlineTags []string
	// MaxDepth, when positive, truncates the tree below the given depth.
	MaxDepth int
}

// DefaultParseOptions returns the configuration used throughout the paper
// reproduction: attributes kept, text concatenated per element.
func DefaultParseOptions() ParseOptions {
	return ParseOptions{ConcatenateText: true, KeepAttributes: true}
}

// Parse reads one XML document from r and builds its tree.
func Parse(r io.Reader, opts ParseOptions) (*Tree, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = false
	dec.AutoClose = xml.HTMLAutoClose
	dec.Entity = xml.HTMLEntity

	strip := make(map[string]bool, len(opts.StripTags))
	for _, s := range opts.StripTags {
		strip[s] = true
	}
	inline := make(map[string]bool, len(opts.InlineTags))
	for _, s := range opts.InlineTags {
		inline[s] = true
	}

	t := &Tree{}
	// stack holds the chain of open elements; text accumulates per level
	// when ConcatenateText is on.
	type frame struct {
		node *Node // nil when the element is inlined (text hoists upward)
		text strings.Builder
	}
	var stack []*frame
	depth := 0
	skipDepth := 0 // >0 while inside a stripped subtree

	currentNode := func() *Node {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].node != nil {
				return stack[i].node
			}
		}
		return nil
	}
	currentFrame := func() *frame {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].node != nil {
				return stack[i]
			}
		}
		return nil
	}
	flushText := func(f *frame) {
		if f == nil || f.node == nil {
			return
		}
		txt := strings.TrimSpace(f.text.String())
		f.text.Reset()
		if txt != "" {
			t.AddText(f.node, collapseSpace(txt))
		}
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			if skipDepth > 0 {
				skipDepth++
				continue
			}
			name := el.Name.Local
			if strip[name] {
				skipDepth = 1
				continue
			}
			depth++
			if inline[name] || (opts.MaxDepth > 0 && depth > opts.MaxDepth) {
				stack = append(stack, &frame{node: nil})
				continue
			}
			parent := currentNode()
			var n *Node
			if parent == nil {
				if t.Root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements (second: %s)", name)
				}
				n = t.NewNode(Element, name, "", nil)
				t.Root = n
			} else {
				if !opts.ConcatenateText {
					// Text seen so far at the parent becomes its own leaf
					// before the child opens, preserving document order.
					flushText(currentFrame())
				}
				n = t.AddElement(parent, name)
			}
			if opts.KeepAttributes {
				for _, a := range el.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					t.AddAttribute(n, a.Name.Local, collapseSpace(strings.TrimSpace(a.Value)))
				}
			}
			stack = append(stack, &frame{node: n})
		case xml.EndElement:
			if skipDepth > 0 {
				skipDepth--
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", el.Name.Local)
			}
			depth--
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.node != nil {
				flushText(f)
			} else if f.text.Len() > 0 {
				// Inlined element: hoist pending text to the enclosing frame.
				if pf := currentFrame(); pf != nil {
					pf.text.WriteByte(' ')
					pf.text.WriteString(f.text.String())
				}
			}
		case xml.CharData:
			if skipDepth > 0 || len(stack) == 0 {
				continue
			}
			f := stack[len(stack)-1]
			target := f
			if f.node == nil {
				if cf := currentFrame(); cf != nil {
					target = cf
				}
			}
			if target.text.Len() > 0 {
				target.text.WriteByte(' ')
			}
			target.text.WriteString(string(el))
		}
	}
	if t.Root == nil {
		return nil, fmt.Errorf("xmltree: document has no root element")
	}
	return t, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string, opts ParseOptions) (*Tree, error) {
	return Parse(strings.NewReader(s), opts)
}

// MustParseString is ParseString that panics on error; for tests and
// examples operating on literal documents.
func MustParseString(s string, opts ParseOptions) *Tree {
	t, err := ParseString(s, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// collapseSpace normalizes internal whitespace runs to single spaces.
func collapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
