package xmltree

import (
	"fmt"
	"io"
	"strings"
)

// Render writes the tree back out as indented XML. Attribute leaves become
// XML attributes on their parent element; text leaves become character
// data. The output reparses to an equivalent tree under
// DefaultParseOptions (modulo whitespace normalization).
func Render(w io.Writer, t *Tree) error {
	if t.Root == nil {
		return fmt.Errorf("xmltree: render: empty tree")
	}
	if _, err := io.WriteString(w, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"); err != nil {
		return err
	}
	return renderNode(w, t.Root, 0)
}

// RenderString renders to a string, panicking on writer errors (none occur
// with strings.Builder).
func RenderString(t *Tree) string {
	var b strings.Builder
	if err := Render(&b, t); err != nil {
		return ""
	}
	return b.String()
}

func renderNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	var attrs []*Node
	var children []*Node
	for _, c := range n.Children {
		if c.Kind == Attribute {
			attrs = append(attrs, c)
		} else {
			children = append(children, c)
		}
	}
	var b strings.Builder
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Label)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%q", strings.TrimPrefix(a.Label, "@"), escapeXML(a.Value))
	}
	if len(children) == 0 {
		b.WriteString("/>\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	// Pure-text element renders inline.
	if len(children) == 1 && children[0].Kind == Text {
		fmt.Fprintf(&b, ">%s</%s>\n", escapeXML(children[0].Value), n.Label)
		_, err := io.WriteString(w, b.String())
		return err
	}
	b.WriteString(">\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range children {
		if c.Kind == Text {
			if _, err := fmt.Fprintf(w, "%s  %s\n", indent, escapeXML(c.Value)); err != nil {
				return err
			}
			continue
		}
		if err := renderNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Label)
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
