package xmltree

import (
	"sync"
	"testing"
)

func TestPathTableInternDedup(t *testing.T) {
	pt := NewPathTable()
	a := pt.Intern(ParsePath("a.b.S"))
	b := pt.Intern(ParsePath("a.b.S"))
	c := pt.Intern(ParsePath("a.c.S"))
	if a != b {
		t.Errorf("same path interned twice: %d vs %d", a, b)
	}
	if a == c {
		t.Errorf("distinct paths share id")
	}
	if pt.Len() != 2 {
		t.Errorf("Len = %d, want 2", pt.Len())
	}
	if got := pt.Path(a).String(); got != "a.b.S" {
		t.Errorf("Path(a) = %q", got)
	}
}

func TestPathTableLookup(t *testing.T) {
	pt := NewPathTable()
	id := pt.Intern(ParsePath("x.y"))
	if got, ok := pt.Lookup(ParsePath("x.y")); !ok || got != id {
		t.Errorf("Lookup = %v %v", got, ok)
	}
	if _, ok := pt.Lookup(ParsePath("nope")); ok {
		t.Errorf("Lookup found unregistered path")
	}
}

func TestPathTableInternCopies(t *testing.T) {
	pt := NewPathTable()
	p := ParsePath("a.b")
	id := pt.Intern(p)
	p[0] = "mutated"
	if got := pt.Path(id).String(); got != "a.b" {
		t.Errorf("table aliased caller slice: %q", got)
	}
}

func TestTagPathDerivation(t *testing.T) {
	pt := NewPathTable()
	cp := pt.Intern(ParsePath("a.b.S"))
	tp := pt.TagPath(cp)
	if got := pt.Path(tp).String(); got != "a.b" {
		t.Errorf("TagPath = %q, want a.b", got)
	}
	// Attribute completion.
	ap := pt.Intern(ParsePath("a.b.@key"))
	if got := pt.Path(pt.TagPath(ap)).String(); got != "a.b" {
		t.Errorf("TagPath(@key) = %q", got)
	}
	// Already a tag path: unchanged.
	if got := pt.TagPath(tp); got != tp {
		t.Errorf("TagPath(tag path) changed: %v", got)
	}
}

func TestPathTableConcurrent(t *testing.T) {
	pt := NewPathTable()
	paths := []string{"a.b.S", "a.c.S", "a.b.@k", "a.d", "a.e.S"}
	var wg sync.WaitGroup
	ids := make([][]PathID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids[g] = append(ids[g], pt.Intern(ParsePath(paths[i%len(paths)])))
			}
		}(g)
	}
	wg.Wait()
	if pt.Len() != len(paths) {
		t.Fatalf("Len = %d, want %d", pt.Len(), len(paths))
	}
	for g := 1; g < 8; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got different id at %d", g, i)
			}
		}
	}
}
