package cluster

import (
	"fmt"
	"testing"

	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// TestXKMeansDeltaEquivalence pins the full clustering loop byte-identical
// with the delta-round engine on and off — assignments, sizes, iteration
// counts AND representative item sequences — across similarity regimes,
// worker counts and both relocation paths (flat and index-guided).
func TestXKMeansDeltaEquivalence(t *testing.T) {
	corpus := tieHeavyCorpus(t, 50, 23)
	s := corpus.Transactions
	for _, p := range []sim.Params{{F: 0.5, Gamma: 0.6}, {F: 0.5, Gamma: 0.3}, {F: 1, Gamma: 0.7}} {
		cx := sim.NewContext(corpus, p)
		plain := XKMeans(cx, s, Config{K: 5, MaxIter: 8, Seed: 11, Workers: 1})
		for _, workers := range []int{1, 4} {
			for _, indexed := range []bool{false, true} {
				got := XKMeans(cx, s, Config{
					K: 5, MaxIter: 8, Seed: 11, Workers: workers,
					IndexReps: indexed, DeltaRounds: true,
				})
				label := fmt.Sprintf("params %+v workers %d indexed %v", p, workers, indexed)
				assertClusteringsEqual(t, label, plain, got)
			}
		}
	}
}

// repTrajectory returns the representative sets an XKMeans run passes
// through: the reps after 1, 2, … iterations of the same seeded run (the
// deterministic seed makes every prefix identical), with the final set
// repeated once — the converged round where nothing changes.
func repTrajectory(cx *sim.Context, s []*txn.Transaction, k int, iters int) [][]*txn.Transaction {
	var sets [][]*txn.Transaction
	for it := 1; it <= iters; it++ {
		cl := XKMeans(cx, s, Config{K: k, MaxIter: it, Seed: 31, Workers: 1})
		sets = append(sets, cl.Reps)
	}
	return append(sets, sets[len(sets)-1])
}

// TestDeltaRelocateEquivalence replays a run's representative trajectory
// through one DeltaState and requires every round's assignment to be
// byte-identical to a fresh full scan against the same representatives —
// flat and indexed, workers 1 and 4 — while the skip counter proves the
// cross-round cache is actually firing on the repeated (converged) set.
func TestDeltaRelocateEquivalence(t *testing.T) {
	corpus := tieHeavyCorpus(t, 60, 17)
	s := corpus.Transactions
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	sets := repTrajectory(cx, s, 6, 5)
	for _, indexed := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			d := NewDeltaState(6)
			skip0 := cx.Counters.DocsSkipped.Load()
			for round, reps := range sets {
				var ix *sim.RepIndex
				if indexed {
					ix = sim.NewRepIndex()
					ix.Build(cx, reps)
				}
				want, err := RelocateCtxIndexed(nil, cx, s, reps, 1, ix)
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Relocate(nil, cx, s, reps, workers, ix)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("indexed %v workers %d round %d: delta assignment diverges at %d: %d != %d",
							indexed, workers, round, i, got[i], want[i])
					}
				}
			}
			if skipped := cx.Counters.DocsSkipped.Load() - skip0; skipped < int64(len(s)) {
				t.Errorf("indexed %v workers %d: only %d docs skipped across the trajectory; the repeated final set alone should skip all %d",
					indexed, workers, skipped, len(s))
			}
		}
	}
}

// TestDeltaRelocateResetAndResize pins the invalidation paths: Reset drops
// the anchors (the next call runs a full pass and stays correct), and a
// representative set of a different size triggers the defensive reset
// instead of folding against stale anchors.
func TestDeltaRelocateResetAndResize(t *testing.T) {
	corpus := tieHeavyCorpus(t, 40, 3)
	s := corpus.Transactions
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	sets := repTrajectory(cx, s, 5, 3)

	d := NewDeltaState(5)
	for _, reps := range sets[:2] {
		if _, err := d.Relocate(nil, cx, s, reps, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	d.Reset()
	reps := sets[2]
	want, err := RelocateCtxIndexed(nil, cx, s, reps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Relocate(nil, cx, s, reps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-Reset assignment diverges at %d: %d != %d", i, got[i], want[i])
		}
	}

	// Shrunken representative set: d was sized for 5 clusters.
	small := reps[:3]
	want, err = RelocateCtxIndexed(nil, cx, s, small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err = d.Relocate(nil, cx, s, small, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-resize assignment diverges at %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestDeltaRepMemo pins layers 1 and 3: an unchanged membership fingerprint
// returns the cached representative object (no recomputation, counter
// moves), a changed one recomputes; same for the weighted global merge.
func TestDeltaRepMemo(t *testing.T) {
	corpus := twoTopicDocs(t, 6)
	s := corpus.Transactions
	cx := ctxFor(corpus, 0.5, 0.6)
	cfg := RepConfig{Ctx: cx, Workers: 1}
	d := NewDeltaState(2)

	membersA, membersB := s[:6], s[6:]
	assign := make([]int, len(s))
	for i := range assign {
		if i < 6 {
			assign[i] = 0
		} else {
			assign[i] = 1
		}
	}
	fps := d.MemberFingerprints(assign)
	fpA, fpB := fps[0], fps[1]

	reused0 := cx.Counters.RepsReused.Load()
	repA := d.LocalRep(cfg, 0, fpA, membersA)
	if repA == nil {
		t.Fatal("nil representative for non-empty cluster")
	}
	if got := d.LocalRep(cfg, 0, fpA, membersA); got != repA {
		t.Error("unchanged membership did not return the memoized representative object")
	}
	if reused := cx.Counters.RepsReused.Load() - reused0; reused != 1 {
		t.Errorf("RepsReused moved by %d, want 1", reused)
	}
	if got := d.LocalRep(cfg, 0, fpB, membersB); got == repA {
		t.Error("changed membership returned the stale memoized representative")
	}

	// Global-representative memo: identical (weight, items) inputs reuse.
	reps := []WeightedRep{{Rep: repA, Weight: 6}}
	g := d.GlobalRep(cfg, 0, reps)
	if got := d.GlobalRep(cfg, 0, reps); got != g {
		t.Error("unchanged weighted inputs did not return the memoized global representative")
	}
	if got := d.GlobalRep(cfg, 0, []WeightedRep{{Rep: repA, Weight: 7}}); got == g && g != nil {
		// A weight change re-ranks: the memo must not serve the old object.
		t.Error("changed weight returned the stale memoized global representative")
	}
}

// TestDeltaRelocateZeroAllocWarm extends the CI allocation guards to the
// delta skip path: with warm scratch and query state and no changed
// representative able to reach the document, deciding a document from its
// cached anchor performs zero heap allocations and zero kernel evaluations.
func TestDeltaRelocateZeroAllocWarm(t *testing.T) {
	corpus := twoTopicDocs(t, 12)
	s := corpus.Transactions
	cx := ctxFor(corpus, 0.5, 0.6)
	cl := XKMeans(cx, s, Config{K: 4, MaxIter: 3, Seed: 3, Workers: 1})
	reps := cl.Reps
	ix := sim.NewRepIndex()
	ix.Build(cx, reps)
	if !ix.Enabled() {
		t.Fatal("index unexpectedly disabled")
	}
	d := NewDeltaState(4)
	if _, err := d.Relocate(nil, cx, s, reps, 1, ix); err != nil {
		t.Fatal(err) // primes the anchors
	}
	// No representative changed: every document must resolve from its
	// anchor without touching the kernel.
	for j := range d.changed {
		d.changed[j] = false
	}
	sc := sim.NewScratch()
	rq := sim.NewRepQuery()
	j0, v0, skip := d.relocateOneDelta(cx, s[0], reps, ix, rq, sc, d.bestJ[0], d.bestScore[0])
	if !skip {
		t.Fatalf("unchanged reps: document evaluated the kernel (got cluster %d score %v)", j0, v0)
	}
	if j0 != d.bestJ[0] || v0 != d.bestScore[0] {
		t.Fatalf("skip returned (%d, %v), want the cached anchor (%d, %v)", j0, v0, d.bestJ[0], d.bestScore[0])
	}
	if avg := testing.AllocsPerRun(200, func() {
		d.relocateOneDelta(cx, s[0], reps, ix, rq, sc, d.bestJ[0], d.bestScore[0])
	}); avg != 0 {
		t.Errorf("warm delta skip path allocates %.2f/op, want 0", avg)
	}
}
