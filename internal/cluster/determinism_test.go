package cluster

import (
	"math"
	"testing"

	"xmlclust/internal/txn"
	"xmlclust/internal/vector"
)

// TestContentRankSumsDeterminism is the regression guard for the rank
// pipeline's determinism: contentRankSums accumulates float weights into a
// map and materializes it through vector.FromMap, and the delta-round
// representative memo (and every cross-run equivalence guarantee) depends
// on repeated runs over the same items producing bit-identical vectors.
// The tie-heavy corpus maximizes equal-weight collisions, the adversarial
// shape for any ordering slip.
func TestContentRankSumsDeterminism(t *testing.T) {
	corpus := tieHeavyCorpus(t, 80, 41)
	items := distinctItems(corpus.Transactions, corpus.Items)
	if len(items) == 0 {
		t.Fatal("no items")
	}
	base := contentRankSums(items)
	baseEntries := base.Entries()
	for run := 0; run < 10; run++ {
		got := contentRankSums(items)
		entries := got.Entries()
		if len(entries) != len(baseEntries) {
			t.Fatalf("run %d: %d entries, want %d", run, len(entries), len(baseEntries))
		}
		for i := range entries {
			if entries[i].Term != baseEntries[i].Term {
				t.Fatalf("run %d entry %d: term %d, want %d", run, i, entries[i].Term, baseEntries[i].Term)
			}
			if math.Float64bits(entries[i].Weight) != math.Float64bits(baseEntries[i].Weight) {
				t.Fatalf("run %d entry %d (term %d): weight bits %x, want %x",
					run, i, entries[i].Term,
					math.Float64bits(entries[i].Weight), math.Float64bits(baseEntries[i].Weight))
			}
		}
		if math.Float64bits(got.Norm()) != math.Float64bits(base.Norm()) {
			t.Fatalf("run %d: norm bits differ", run)
		}
	}
}

// TestVectorFromMapDeterminism pins vector.FromMap itself: identical maps
// (including zero weights, which must be dropped) materialize to identical
// sorted entry sequences regardless of Go's randomized map iteration.
func TestVectorFromMapDeterminism(t *testing.T) {
	m := map[int32]float64{7: 0.25, 3: 1.5, 12: 0, 5: -2.25, 9: 0.25}
	base := vector.FromMap(m).Entries()
	wantTerms := []int32{3, 5, 7, 9}
	if len(base) != len(wantTerms) {
		t.Fatalf("%d entries, want %d (zero weight must be dropped)", len(base), len(wantTerms))
	}
	for i, term := range wantTerms {
		if base[i].Term != term {
			t.Fatalf("entry %d: term %d, want %d (entries must sort by term)", i, base[i].Term, term)
		}
	}
	for run := 0; run < 20; run++ {
		got := vector.FromMap(m).Entries()
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("run %d entry %d: %+v, want %+v", run, i, got[i], base[i])
			}
		}
	}
}

// TestRepresentativeDeterminism pins the end product: repeated
// ComputeLocalRepresentative calls over the same tie-heavy cluster, at
// every worker count, produce the exact same item id sequence.
func TestRepresentativeDeterminism(t *testing.T) {
	corpus := tieHeavyCorpus(t, 80, 41)
	cx := ctxFor(corpus, 0.5, 0.6)
	ref := ComputeLocalRepresentative(RepConfig{Ctx: cx, Workers: 1}, corpus.Transactions)
	if ref == nil || ref.Len() == 0 {
		t.Fatal("empty reference representative")
	}
	for run := 0; run < 5; run++ {
		for _, workers := range []int{1, 4} {
			rep := ComputeLocalRepresentative(RepConfig{Ctx: cx, Workers: workers}, corpus.Transactions)
			if rep == nil || len(rep.Items) != len(ref.Items) {
				t.Fatalf("run %d workers %d: length differs from reference", run, workers)
			}
			for i := range ref.Items {
				if rep.Items[i] != ref.Items[i] {
					t.Fatalf("run %d workers %d item %d: %d != %d",
						run, workers, i, rep.Items[i], ref.Items[i])
				}
			}
		}
	}
}

// rankedWith builds a ranked slice over the given items with ranks supplied
// per index (callers engineer ties and boundaries explicitly). The slice is
// NOT re-sorted: tests hand it over pre-ordered, exactly as
// generateTreeTuple requires.
func rankedWith(items []*txn.Item, rank func(i int) float64) []rankedItem {
	out := make([]rankedItem, len(items))
	for i, it := range items {
		out[i] = rankedItem{id: it.ID, rank: rank(i)}
	}
	return out
}

// constituents flattens a representative back to the raw item ids it was
// conflated from, as a set.
func constituents(tab *txn.ItemTable, rep *txn.Transaction) map[txn.ItemID]bool {
	set := map[txn.ItemID]bool{}
	if rep == nil {
		return set
	}
	for _, id := range rep.Items {
		for _, raw := range tab.Get(id).Flatten() {
			set[raw] = true
		}
	}
	return set
}

// TestGenerateTreeTupleMinBatchFill exercises the ReturnBestObjective batch
// fill: with far more ranked items than 4·(trmax+1), batches have a minimum
// size, and a rank tie straddling the batch boundary must still travel as
// one unit — the boundary can extend past minBatch for ties but never split
// one.
func TestGenerateTreeTupleMinBatchFill(t *testing.T) {
	corpus := tieHeavyCorpus(t, 80, 7)
	c := corpus.Transactions[:3] // small trmax
	items := distinctItems(corpus.Transactions, corpus.Items)
	trmax := txn.MaxTransactionLen(c)
	minBatch := len(items) / (4 * (trmax + 1))
	if minBatch < 2 {
		t.Fatalf("fixture too small: minBatch %d (items %d, trmax %d), need ≥ 2", minBatch, len(items), trmax)
	}
	// Distinct descending ranks except one tie pair placed exactly at the
	// first batch's boundary: indices minBatch-1 and minBatch share a rank.
	ranked := rankedWith(items, func(i int) float64 {
		if i == minBatch {
			return float64(len(items) - minBatch + 1) // ties with index minBatch-1
		}
		return float64(len(items) - i)
	})
	cfg := RepConfig{Ctx: ctxFor(corpus, 0.5, 0.6), Rule: ReturnBestObjective, Workers: 1}
	rep := generateTreeTuple(cfg, ranked, c)
	if rep == nil || rep.Len() == 0 {
		t.Fatal("empty representative")
	}
	got := constituents(corpus.Items, rep)
	// The result conflates a batch-aligned prefix of ranked: at least the
	// first (tie-extended) batch, and never exactly one half of the tie pair.
	a := false
	for _, raw := range corpus.Items.Get(ranked[minBatch-1].id).Flatten() {
		a = a || got[raw]
	}
	b := false
	for _, raw := range corpus.Items.Get(ranked[minBatch].id).Flatten() {
		b = b || got[raw]
	}
	if a != b {
		t.Errorf("rank tie split across the batch boundary: item %d included=%v, item %d included=%v",
			minBatch-1, a, minBatch, b)
	}
	if !a {
		t.Error("first batch items missing from the representative: the minimum batch fill did not run")
	}
}

// TestGenerateTreeTupleSizeBoundExit pins the |rep| > trmax loop exit: with
// a deep ranked list over a cluster of short transactions, refinement must
// stop growing instead of conflating the entire item universe.
func TestGenerateTreeTupleSizeBoundExit(t *testing.T) {
	corpus := tieHeavyCorpus(t, 80, 7)
	c := corpus.Transactions[:2]
	items := distinctItems(corpus.Transactions, corpus.Items)
	ranked := rankedWith(items, func(i int) float64 { return float64(len(items) - i) })
	all := map[txn.ItemID]bool{}
	for _, it := range items {
		for _, raw := range it.Flatten() {
			all[raw] = true
		}
	}
	for _, rule := range []ReturnRule{ReturnBestObjective, ReturnLastImproving, ReturnPrevious} {
		cfg := RepConfig{Ctx: ctxFor(corpus, 0.5, 0.6), Rule: rule, Workers: 1}
		rep := generateTreeTuple(cfg, ranked, c)
		if rep == nil || rep.Len() == 0 {
			t.Fatalf("rule %d: empty representative", rule)
		}
		got := constituents(corpus.Items, rep)
		if len(got) >= len(all) {
			t.Errorf("rule %d: representative conflates all %d raw items; the size bound (trmax %d) never fired",
				rule, len(all), txn.MaxTransactionLen(c))
		}
	}
}

// TestGenerateTreeTupleDegenerate runs all three return rules over the
// degenerate inputs: a single ranked item, an all-tied ranking (one batch
// swallows everything, so every rule must agree on the full conflation),
// and an empty ranking.
func TestGenerateTreeTupleDegenerate(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	c := corpus.Transactions[:3]
	items := distinctItems(c, corpus.Items)
	rules := []ReturnRule{ReturnBestObjective, ReturnLastImproving, ReturnPrevious}

	t.Run("singleItem", func(t *testing.T) {
		ranked := rankedWith(items[:1], func(int) float64 { return 1 })
		for _, rule := range rules {
			rep := generateTreeTuple(RepConfig{Ctx: cx, Rule: rule, Workers: 1}, ranked, c)
			if rep == nil || rep.Len() == 0 {
				t.Errorf("rule %d: single ranked item produced an empty representative", rule)
			}
		}
	})

	t.Run("allTied", func(t *testing.T) {
		ranked := rankedWith(items, func(int) float64 { return 0.5 })
		var first *txn.Transaction
		for _, rule := range rules {
			rep := generateTreeTuple(RepConfig{Ctx: cx, Rule: rule, Workers: 1}, ranked, c)
			if rep == nil || rep.Len() == 0 {
				t.Fatalf("rule %d: all-tied ranking produced an empty representative", rule)
			}
			if first == nil {
				first = rep
				continue
			}
			if !rep.Equal(first) {
				t.Errorf("rule %d: all-tied ranking diverges across rules — one batch must swallow everything", rule)
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		for _, rule := range rules {
			rep := generateTreeTuple(RepConfig{Ctx: cx, Rule: rule, Workers: 1}, nil, c)
			if rep != nil && rep.Len() != 0 {
				t.Errorf("rule %d: empty ranking produced a non-empty representative", rule)
			}
		}
	})
}
