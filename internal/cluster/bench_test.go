package cluster

// Benchmarks for the parallel execution layer: the Relocate-bound path
// (one transaction similarity per transaction×representative pair) and
// representative generation, each at several worker counts, plus a
// speedup benchmark that measures serial vs parallel in one run and
// reports the ratio. On a single-core host the ratio degenerates to ~1.0
// (goroutines timeshare one CPU); with 4+ cores the Relocate-bound path
// exceeds 1.5×. Reproduce with:
//
//	go test ./internal/cluster -bench 'Relocate|RepresentativeWorkers' -benchtime 3x

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"xmlclust/internal/dataset"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// relocateFixture prepares a DBLP-like corpus, k initial representatives
// and a warmed similarity context, so the benchmarks measure steady-state
// relocation rather than first-touch cache fills.
func relocateFixture(b *testing.B, k int) (*sim.Context, []*txn.Transaction, []*txn.Transaction) {
	b.Helper()
	gen, ok := dataset.ByName("DBLP")
	if !ok {
		b.Fatal("DBLP generator missing")
	}
	col := gen(dataset.Spec{Docs: 64, Seed: 7})
	corpus := col.BuildCorpus(dataset.ByHybrid, 32, 1)
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.8})
	rng := rand.New(rand.NewSource(11))
	reps := SelectInitial(corpus.Transactions, k, rng)
	RelocateWorkers(cx, corpus.Transactions, reps, 0) // warm the pair cache
	return cx, corpus.Transactions, reps
}

func benchmarkRelocate(b *testing.B, workers int) {
	cx, s, reps := relocateFixture(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RelocateWorkers(cx, s, reps, workers)
	}
}

func BenchmarkRelocateWorkers1(b *testing.B) { benchmarkRelocate(b, 1) }
func BenchmarkRelocateWorkers2(b *testing.B) { benchmarkRelocate(b, 2) }
func BenchmarkRelocateWorkers4(b *testing.B) { benchmarkRelocate(b, 4) }
func BenchmarkRelocateWorkers8(b *testing.B) { benchmarkRelocate(b, 8) }

// seedRelocate is the seed relocation loop over sim.SeedTransactions (the
// frozen pre-kernel Eq. 4 snapshot in internal/sim/seed.go, shared with
// the kernel property tests and cxkbench's kernel experiment): every pair
// evaluated to completion, no scratch reuse, no pruning.
func seedRelocate(cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction) []int {
	assign := make([]int, len(s))
	for i, tr := range s {
		best, bestJ := 0.0, TrashCluster
		for j, rep := range reps {
			if rep == nil || rep.Len() == 0 {
				continue
			}
			v := sim.SeedTransactions(cx, tr, rep)
			if v > best {
				best, bestJ = v, j
			}
		}
		assign[i] = bestJ
	}
	return assign
}

// BenchmarkRelocateSpeedup times the seed-kernel serial, the zero-alloc
// kernel serial and the 4-worker relocation back to back on identical
// inputs and reports the ratios, so one run demonstrates both wins — the
// kernel win (speedup-vs-seed: new serial throughput over the seed
// allocating kernel, the ≥1.3× acceptance bar) and the parallelism win
// (speedup-4w) — without cross-benchmark arithmetic. Run with -benchmem:
// allocs/op covers all three variants, so the per-pair map/matrix churn of
// the seed path is visible next to the kernel's near-zero steady state.
// It also re-asserts output equality — a speedup that changed the answer
// would be a bug, not a win.
func BenchmarkRelocateSpeedup(b *testing.B) {
	cx, s, reps := relocateFixture(b, 8)
	var seed, serial, parallel time.Duration
	var want []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		fromSeed := seedRelocate(cx, s, reps)
		seed += time.Since(t0)
		t1 := time.Now()
		want = RelocateWorkers(cx, s, reps, 1)
		serial += time.Since(t1)
		t2 := time.Now()
		got := RelocateWorkers(cx, s, reps, 4)
		parallel += time.Since(t2)
		for j := range want {
			if want[j] != got[j] {
				b.Fatalf("parallel relocation diverged at %d", j)
			}
			if want[j] != fromSeed[j] {
				b.Fatalf("kernel relocation diverged from seed kernel at %d", j)
			}
		}
	}
	b.ReportMetric(float64(seed)/float64(serial), "speedup-vs-seed")
	b.ReportMetric(float64(serial)/float64(parallel), "speedup-4w")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func benchmarkLocalRep(b *testing.B, workers int) {
	cx, s, _ := relocateFixture(b, 8)
	members := s[:len(s)/2]
	cfg := RepConfig{Ctx: cx, Workers: workers}
	ComputeLocalRepresentative(cfg, members) // intern synthetics once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLocalRepresentative(cfg, members)
	}
}

func BenchmarkLocalRepresentativeWorkers1(b *testing.B) { benchmarkLocalRep(b, 1) }
func BenchmarkLocalRepresentativeWorkers4(b *testing.B) { benchmarkLocalRep(b, 4) }
