package cluster

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"xmlclust/internal/parallel"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// TrashCluster is the assignment value for the (k+1)-th cluster collecting
// transactions with zero similarity to every representative (Sect. 4.2).
const TrashCluster = -1

// Config parameterizes the centralized XK-means variant of [33,32]: the
// K-means-like transactional clustering that CXK-means runs per peer and
// that constitutes the m=1 baseline.
type Config struct {
	K int
	// MaxIter bounds the outer relocation/representative loop (the paper
	// observes convergence in fewer than 10 iterations).
	MaxIter int
	// Seed drives the deterministic initial representative selection.
	Seed int64
	// Rule selects the GenerateTreeTuple return reading.
	Rule ReturnRule
	// Workers bounds the goroutines used by the similarity-heavy loops
	// (relocation, item ranking, refinement objectives). 0 or negative
	// means one worker per CPU; 1 forces the serial path. Any value
	// produces output byte-identical to Workers: 1 for a fixed Seed.
	Workers int
	// IndexReps builds a sim.RepIndex over the representatives each
	// iteration and relocates through its candidate lists instead of the
	// flat k-scan. Assignments and representatives are byte-identical
	// either way (the index's bounds are exact); the index only changes how
	// many representatives each document touches.
	IndexReps bool
	// DeltaRounds carries a DeltaState across iterations: unchanged cluster
	// memberships reuse their memoized representatives and unchanged
	// representatives skip re-evaluation in relocation (see delta.go).
	// Output is byte-identical either way.
	DeltaRounds bool
}

// DefaultMaxIter is the safety bound on clustering iterations.
const DefaultMaxIter = 20

// Clustering is the result of a (local or centralized) clustering run.
type Clustering struct {
	// Assign maps transaction index → cluster in [0,K), or TrashCluster.
	Assign []int
	// Reps holds the K cluster representatives (nil for empty clusters).
	Reps []*txn.Transaction
	// Sizes holds |C_j| per cluster.
	Sizes []int
	// Iterations is the number of outer iterations executed.
	Iterations int
}

// Members collects the transactions assigned to cluster j.
func (cl *Clustering) Members(s []*txn.Transaction, j int) []*txn.Transaction {
	var out []*txn.Transaction
	for i, a := range cl.Assign {
		if a == j {
			out = append(out, s[i])
		}
	}
	return out
}

// SelectInitial picks up to q transactions from s originating in distinct
// source documents ("coming from distinct original trees", Fig. 5), using
// the seeded rng for tie-breaking. The selection is deterministic for a
// fixed seed.
func SelectInitial(s []*txn.Transaction, q int, rng *rand.Rand) []*txn.Transaction {
	if q <= 0 || len(s) == 0 {
		return nil
	}
	perm := rng.Perm(len(s))
	seenDoc := map[int]struct{}{}
	var out []*txn.Transaction
	for _, i := range perm {
		tr := s[i]
		if tr.Len() == 0 {
			continue
		}
		if _, dup := seenDoc[tr.Doc]; dup {
			continue
		}
		seenDoc[tr.Doc] = struct{}{}
		out = append(out, tr)
		if len(out) == q {
			return out
		}
	}
	// Fewer distinct documents than q: fill with remaining transactions.
	for _, i := range perm {
		if len(out) == q {
			break
		}
		tr := s[i]
		if tr.Len() == 0 {
			continue
		}
		dup := false
		for _, o := range out {
			if o == tr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, tr)
		}
	}
	return out
}

// Relocate performs the transaction-relocation step of Fig. 5 for a fixed
// set of representatives: every transaction with zero similarity to all
// representatives joins the trash cluster; the others join the argmax
// cluster (ties to the lowest index). nil reps never win.
func Relocate(cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction) []int {
	return RelocateWorkers(cx, s, reps, 1)
}

// RelocateWorkers is Relocate spread over a worker pool. Transactions are
// independent under a fixed representative set, so each worker computes the
// argmax for the indices it draws and writes into the pre-indexed slot of
// the assignment slice; tie-breaking (lowest cluster index) happens inside
// the per-transaction scan, so the result is byte-identical to the serial
// Relocate for any worker count.
func RelocateWorkers(cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction, workers int) []int {
	assign, _ := RelocateCtx(nil, cx, s, reps, workers)
	return assign
}

// RelocateCtx is RelocateWorkers with cooperative cancellation: workers stop
// drawing transactions once ctx is done and the call returns ctx's error
// with a partial (unusable) assignment. A nil ctx never cancels.
//
// Each worker owns one similarity Scratch (reused across every pair it
// evaluates, so the scan allocates nothing per pair) and threads its
// running argmax through sim.TransactionsAtLeast: once a representative
// has scored `best`, later representatives are abandoned as soon as the
// kernel's exact upper bound proves they cannot strictly beat it. The
// bound is exact and ties still resolve to the lowest representative
// index, so assignments stay byte-identical to an unpruned scan for any
// worker count (pinned by TestRelocatePruningEquivalence).
func RelocateCtx(ctx context.Context, cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction, workers int) ([]int, error) {
	return RelocateCtxIndexed(ctx, cx, s, reps, workers, nil)
}

// RelocateCtxIndexed is RelocateCtx driven through a representative index:
// each worker queries ix for the candidate representatives of its
// transaction (sorted by exact upper bound) and runs the branch-and-bound
// argmax over those, stopping as soon as the bounds prove no unseen
// representative can win. A nil or disabled index falls back to the flat
// scan. ix must have been built over exactly this reps slice under cx's
// parameters; assignments are byte-identical with the index on or off.
func RelocateCtxIndexed(ctx context.Context, cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction, workers int, ix *sim.RepIndex) ([]int, error) {
	assign := make([]int, len(s))
	nw := parallel.WorkerCount(workers, len(s))
	scratches := make([]*sim.Scratch, nw)
	var queries []*sim.RepQuery
	if ix != nil && ix.Enabled() {
		queries = make([]*sim.RepQuery, nw)
	}
	err := parallel.ForCtxWorkers(ctx, workers, len(s), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		var rq *sim.RepQuery
		if queries != nil {
			rq = queries[w]
			if rq == nil {
				rq = sim.NewRepQuery()
				queries[w] = rq
			}
		}
		assign[i], _ = RelocateOneIndexed(cx, s[i], reps, ix, rq, sc)
	})
	if err != nil {
		return nil, err
	}
	return assign, nil
}

// RelocateOne relocates a single transaction against a fixed representative
// set: it returns the argmax cluster (ties to the lowest index, nil and
// empty representatives never win, TrashCluster when every similarity is
// zero) together with the winning similarity. This is the per-transaction
// scan RelocateCtx runs — exposed as the single-document entry point of the
// incremental serving layer, so online assignments match what a batch
// relocation would produce for the same representatives by construction.
// The scan threads its running best through the branch-and-bound kernel;
// sc may be nil (a scratch is then allocated per call).
func RelocateOne(cx *sim.Context, tr *txn.Transaction, reps []*txn.Transaction, sc *sim.Scratch) (int, float64) {
	if sc == nil {
		sc = sim.NewScratch()
	}
	best, bestJ := 0.0, TrashCluster
	for j, rep := range reps {
		if rep == nil || rep.Len() == 0 {
			continue
		}
		v := cx.TransactionsAtLeast(tr, rep, best, sc)
		if v > best {
			best, bestJ = v, j
		}
	}
	return bestJ, best
}

// RelocateOneIndexed is RelocateOne through a representative index: only
// ix's candidates for tr are evaluated, in decreasing upper-bound order,
// and the scan stops once the remaining bounds prove no unseen candidate
// can strictly beat the running best — or tie it at a lower cluster index.
// The result is byte-identical to RelocateOne for the same reps:
//
//   - every representative with nonzero similarity to tr is a candidate
//     (sim.RepIndex's soundness guarantee), and a zero-similarity
//     representative can never win the flat scan either (best starts at 0
//     and only strict improvements move it);
//   - the kernel threshold is nudged one ulp below the running best, so a
//     candidate that exactly ties is always evaluated to completion and can
//     claim the tie when its index is lower — the flat scan's lowest-index
//     rule, reached from a different evaluation order;
//   - the early exit only fires when a candidate's bound is strictly below
//     best, or equal to it at a higher index: the (UB desc, index asc)
//     candidate order makes every remaining candidate lose by the same
//     argument.
//
// Work accounting: evaluated candidates are added to
// Counters.IndexCandidates, and the representatives never touched
// (non-candidates plus bound-pruned candidates) to Counters.IndexSkipped;
// the two sum to ix.Active() per call. A nil or disabled index falls back
// to the flat scan (no counters move). rq may be nil (allocates per call);
// pass a per-goroutine RepQuery on hot paths.
func RelocateOneIndexed(cx *sim.Context, tr *txn.Transaction, reps []*txn.Transaction, ix *sim.RepIndex, rq *sim.RepQuery, sc *sim.Scratch) (int, float64) {
	if ix == nil || !ix.Enabled() {
		return RelocateOne(cx, tr, reps, sc)
	}
	if sc == nil {
		sc = sim.NewScratch()
	}
	if rq == nil {
		rq = sim.NewRepQuery()
	}
	n := ix.Candidates(tr, rq)
	best, bestJ := 0.0, TrashCluster
	evaluated := 0
	for c := 0; c < n; c++ {
		j, ub := rq.Candidate(c)
		if ub < best || (ub == best && j > bestJ) {
			break
		}
		v := cx.TransactionsAtLeast(tr, reps[j], math.Nextafter(best, math.Inf(-1)), sc)
		evaluated++
		if v > best {
			best, bestJ = v, j
		} else if v == best && j < bestJ {
			bestJ = j
		}
	}
	cx.Counters.IndexCandidates.Add(int64(evaluated))
	cx.Counters.IndexSkipped.Add(int64(ix.Active() - evaluated))
	return bestJ, best
}

// XKMeans runs the centralized transactional clustering: select k initial
// representatives from distinct documents, then alternate relocation and
// representative recomputation until representatives are stable.
func XKMeans(cx *sim.Context, s []*txn.Transaction, cfg Config) *Clustering {
	k := cfg.K
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	repCfg := RepConfig{Ctx: cx, Rule: cfg.Rule, Workers: cfg.Workers}

	reps := make([]*txn.Transaction, k)
	for i, tr := range SelectInitial(s, k, rng) {
		reps[i] = tr
	}
	cl := &Clustering{Assign: make([]int, len(s)), Reps: reps}
	for i := range cl.Assign {
		cl.Assign[i] = TrashCluster
	}
	var ix *sim.RepIndex
	if cfg.IndexReps {
		ix = sim.NewRepIndex()
	}
	var ds *DeltaState
	if cfg.DeltaRounds {
		ds = NewDeltaState(k)
	}
	for iter := 0; iter < maxIter; iter++ {
		cl.Iterations = iter + 1
		if ix != nil {
			ix.Build(cx, reps)
		}
		var assign []int
		if ds != nil {
			assign, _ = ds.Relocate(nil, cx, s, reps, cfg.Workers, ix)
		} else {
			assign, _ = RelocateCtxIndexed(nil, cx, s, reps, cfg.Workers, ix)
		}
		newReps := make([]*txn.Transaction, k)
		members := make([][]*txn.Transaction, k)
		for i, a := range assign {
			if a >= 0 {
				members[a] = append(members[a], s[i])
			}
		}
		var memberFps []uint64
		if ds != nil {
			memberFps = ds.MemberFingerprints(assign)
		}
		// The cluster loop stays ordered: representative generation interns
		// synthetic items, and interning order must not depend on the
		// schedule (item ids are assigned sequentially). The worker pool
		// parallelizes *inside* each representative computation — ranking
		// and refinement objectives are where the similarity time goes.
		for j := 0; j < k; j++ {
			if len(members[j]) == 0 {
				newReps[j] = reps[j] // keep the old representative alive
				continue
			}
			if ds != nil {
				newReps[j] = ds.LocalRep(repCfg, j, memberFps[j], members[j])
				continue
			}
			newReps[j] = ComputeLocalRepresentative(repCfg, members[j])
		}
		stable := assignEqual(assign, cl.Assign) && repsEqual(newReps, reps)
		cl.Assign = assign
		reps = newReps
		cl.Reps = reps
		if stable {
			break
		}
	}
	cl.Sizes = make([]int, k)
	for _, a := range cl.Assign {
		if a >= 0 {
			cl.Sizes[a]++
		}
	}
	return cl
}

func assignEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func repsEqual(a, b []*txn.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch {
		case a[i] == nil && b[i] == nil:
		case a[i] == nil || b[i] == nil:
			return false
		case !a[i].Equal(b[i]):
			return false
		}
	}
	return true
}

// SSE computes the K-means-style objective adapted to the transactional
// similarity: Σ over non-trash transactions of (1 − simγJ(tr, rep_assigned)).
// Used by the PK-means baseline's global stopping rule.
func SSE(cx *sim.Context, s []*txn.Transaction, assign []int, reps []*txn.Transaction) float64 {
	return SSEWorkers(cx, s, assign, reps, 1)
}

// SSEWorkers is SSE spread over a worker pool, each worker reusing one
// similarity Scratch so the objective allocates nothing per pair. Terms are
// reduced in index order (parallel.SumWorkers), so the float result is
// byte-identical to the serial SSE for any worker count.
func SSEWorkers(cx *sim.Context, s []*txn.Transaction, assign []int, reps []*txn.Transaction, workers int) float64 {
	scratches := make([]*sim.Scratch, parallel.WorkerCount(workers, len(assign)))
	return parallel.SumWorkers(workers, len(assign), func(w, i int) float64 {
		a := assign[i]
		if a < 0 || a >= len(reps) || reps[a] == nil {
			return 1 // trash contributes maximal error
		}
		sc := scratches[w]
		if sc == nil {
			sc = sim.NewScratch()
			scratches[w] = sc
		}
		return 1 - cx.Transactions(s[i], reps[a], sc)
	})
}

// SortedClusterSizes returns the cluster sizes in descending order (used by
// diagnostics and the h-parameter estimate of Sect. 4.3.4).
func SortedClusterSizes(cl *Clustering) []int {
	out := append([]int(nil), cl.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
