package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlclust/internal/dataset"
	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
	"xmlclust/internal/weighting"
	"xmlclust/internal/xmltree"
)

// twoTopicDocs builds a tiny corpus with two clearly separated groups:
// papers about "mining patterns" and reports about "routing networks".
func twoTopicDocs(t testing.TB, perGroup int) *txn.Corpus {
	t.Helper()
	var trees []*xmltree.Tree
	var labels []int
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><paper key="p%d">
			<writer>alice cooper</writer>
			<name>mining frequent patterns number%d</name>
			<venue>KDD</venue>
		</paper></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 0)
	}
	for i := 0; i < perGroup; i++ {
		doc := fmt.Sprintf(`<db><report key="r%d">
			<editor>bob dylan</editor>
			<heading>routing wireless networks number%d</heading>
			<lab>NETLAB</lab>
		</report></db>`, i, i)
		tree, err := xmltree.ParseString(doc, xmltree.DefaultParseOptions())
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tree)
		labels = append(labels, 1)
	}
	corpus := txn.Build(trees, txn.BuildOptions{Labels: labels})
	weighting.Apply(corpus)
	return corpus
}

func ctxFor(corpus *txn.Corpus, f, gamma float64) *sim.Context {
	return sim.NewContext(corpus, sim.Params{F: f, Gamma: gamma})
}

func TestConflateItemsGroupsByPath(t *testing.T) {
	corpus := twoTopicDocs(t, 2)
	cx := ctxFor(corpus, 0.5, 0.6)
	// Take all items of the first two transactions (same schema → same
	// paths, different answers on name/key).
	var ids []txn.ItemID
	ids = append(ids, corpus.Transactions[0].Items...)
	ids = append(ids, corpus.Transactions[1].Items...)
	rep := ConflateItems(cx.Items, ids)
	// The representative must be in tree-tuple form: distinct paths only.
	seen := map[xmltree.PathID]bool{}
	for _, id := range rep.Items {
		p := cx.Items.Get(id).Path
		if seen[p] {
			t.Fatalf("path %v appears twice in conflated representative", p)
		}
		seen[p] = true
	}
	// Shared items (writer, venue) stay raw; divergent ones are synthetic.
	var synth, raw int
	for _, id := range rep.Items {
		if cx.Items.Get(id).Synthetic {
			synth++
		} else {
			raw++
		}
	}
	if synth == 0 || raw == 0 {
		t.Errorf("expected a mix of synthetic and raw items, got %d/%d", synth, raw)
	}
}

func TestConflateItemsDeterministic(t *testing.T) {
	corpus := twoTopicDocs(t, 2)
	cx := ctxFor(corpus, 0.5, 0.6)
	ids := append([]txn.ItemID(nil), corpus.Transactions[0].Items...)
	ids = append(ids, corpus.Transactions[1].Items...)
	a := ConflateItems(cx.Items, ids)
	// Reversed input order must produce the same representative.
	rev := make([]txn.ItemID, len(ids))
	for i, id := range ids {
		rev[len(ids)-1-i] = id
	}
	b := ConflateItems(cx.Items, rev)
	if !a.Equal(b) {
		t.Errorf("conflation order-sensitive: %v vs %v", a.Items, b.Items)
	}
}

func TestConflateFlattensNestedSynthetics(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	ids01 := append([]txn.ItemID(nil), corpus.Transactions[0].Items...)
	ids01 = append(ids01, corpus.Transactions[1].Items...)
	rep01 := ConflateItems(cx.Items, ids01)
	// Conflating the conflation with transaction 2 must equal conflating
	// all three directly (exactness of constituent tracking).
	idsNested := append([]txn.ItemID(nil), rep01.Items...)
	var flat []txn.ItemID
	for _, id := range idsNested {
		flat = append(flat, cx.Items.Get(id).Flatten()...)
	}
	flat = append(flat, corpus.Transactions[2].Items...)
	nested := ConflateItems(cx.Items, flat)

	var direct []txn.ItemID
	for _, tr := range corpus.Transactions[:3] {
		direct = append(direct, tr.Items...)
	}
	want := ConflateItems(cx.Items, direct)
	if !nested.Equal(want) {
		t.Errorf("nested conflation differs: %v vs %v", nested.Items, want.Items)
	}
}

func TestComputeLocalRepresentativeEmpty(t *testing.T) {
	corpus := twoTopicDocs(t, 1)
	cx := ctxFor(corpus, 0.5, 0.6)
	if got := ComputeLocalRepresentative(RepConfig{Ctx: cx}, nil); got != nil {
		t.Errorf("empty cluster rep = %v, want nil", got)
	}
}

func TestComputeLocalRepresentativeCoversCluster(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:4]
	rep := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers)
	if rep == nil || rep.Len() == 0 {
		t.Fatal("nil/empty representative")
	}
	// The representative must be γ-similar to every member.
	for i, tr := range papers {
		if got := cx.Transactions(tr, rep, nil); got == 0 {
			t.Errorf("member %d has zero similarity to its representative", i)
		}
	}
	// Size bound: |rep| ≤ max member length (+ slack of 0: per Fig. 6 it
	// can exceed trmax only transiently, never in the returned value under
	// the default rule... the guard allows ≤ trmax in returns).
	if rep.Len() > txn.MaxTransactionLen(papers)+1 {
		t.Errorf("representative too long: %d > %d", rep.Len(), txn.MaxTransactionLen(papers))
	}
}

func TestRepresentativeSeparatesGroups(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:4]
	reports := corpus.Transactions[4:]
	prep := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers)
	rrep := ComputeLocalRepresentative(RepConfig{Ctx: cx}, reports)
	for _, tr := range papers {
		if cx.Transactions(tr, prep, nil) <= cx.Transactions(tr, rrep, nil) {
			t.Errorf("paper closer to report representative")
		}
	}
	for _, tr := range reports {
		if cx.Transactions(tr, rrep, nil) <= cx.Transactions(tr, prep, nil) {
			t.Errorf("report closer to paper representative")
		}
	}
}

func TestComputeGlobalRepresentativeMergesLocals(t *testing.T) {
	corpus := twoTopicDocs(t, 6)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:6]
	l1 := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers[:3])
	l2 := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers[3:])
	g := ComputeGlobalRepresentative(RepConfig{Ctx: cx}, []WeightedRep{
		{Rep: l1, Weight: 3}, {Rep: l2, Weight: 3},
	})
	if g == nil || g.Len() == 0 {
		t.Fatal("nil global representative")
	}
	for i, tr := range papers {
		if cx.Transactions(tr, g, nil) == 0 {
			t.Errorf("paper %d unreachable from global representative", i)
		}
	}
}

func TestComputeGlobalRepresentativeNilInputs(t *testing.T) {
	corpus := twoTopicDocs(t, 1)
	cx := ctxFor(corpus, 0.5, 0.6)
	if got := ComputeGlobalRepresentative(RepConfig{Ctx: cx}, nil); got != nil {
		t.Errorf("no reps should yield nil, got %v", got)
	}
	if got := ComputeGlobalRepresentative(RepConfig{Ctx: cx}, []WeightedRep{{Rep: nil, Weight: 5}}); got != nil {
		t.Errorf("all-nil reps should yield nil, got %v", got)
	}
}

func TestGlobalRepresentativeWeightInfluence(t *testing.T) {
	corpus := twoTopicDocs(t, 6)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:6]
	reports := corpus.Transactions[6:]
	lp := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers)
	lr := ComputeLocalRepresentative(RepConfig{Ctx: cx}, reports)
	// Heavily weighted paper rep should dominate the merge.
	g := ComputeGlobalRepresentative(RepConfig{Ctx: cx}, []WeightedRep{
		{Rep: lp, Weight: 100}, {Rep: lr, Weight: 1},
	})
	simP := cx.Transactions(papers[0], g, nil)
	simR := cx.Transactions(reports[0], g, nil)
	if simP <= simR {
		t.Errorf("weight 100 paper rep should dominate: paper=%v report=%v", simP, simR)
	}
}

func TestSelectInitialDistinctDocs(t *testing.T) {
	corpus := twoTopicDocs(t, 5)
	rng := rand.New(rand.NewSource(7))
	sel := SelectInitial(corpus.Transactions, 4, rng)
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
	docs := map[int]bool{}
	for _, tr := range sel {
		if docs[tr.Doc] {
			t.Errorf("duplicate source document %d", tr.Doc)
		}
		docs[tr.Doc] = true
	}
}

func TestSelectInitialMoreThanDocs(t *testing.T) {
	corpus := twoTopicDocs(t, 1) // 2 documents, 2 transactions
	rng := rand.New(rand.NewSource(7))
	sel := SelectInitial(corpus.Transactions, 5, rng)
	if len(sel) != 2 {
		t.Fatalf("selected %d, want all 2", len(sel))
	}
	if got := SelectInitial(corpus.Transactions, 0, rng); got != nil {
		t.Errorf("q=0 should select nothing")
	}
	if got := SelectInitial(nil, 3, rng); got != nil {
		t.Errorf("empty input should select nothing")
	}
}

func TestSelectInitialDeterministic(t *testing.T) {
	corpus := twoTopicDocs(t, 5)
	a := SelectInitial(corpus.Transactions, 3, rand.New(rand.NewSource(9)))
	b := SelectInitial(corpus.Transactions, 3, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selection not deterministic for equal seeds")
		}
	}
}

func TestRelocateTrashAndArgmax(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:3]
	reports := corpus.Transactions[3:]
	reps := []*txn.Transaction{
		ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers),
		ComputeLocalRepresentative(RepConfig{Ctx: cx}, reports),
	}
	assign := Relocate(cx, corpus.Transactions, reps)
	for i := 0; i < 3; i++ {
		if assign[i] != 0 {
			t.Errorf("paper %d assigned to %d", i, assign[i])
		}
	}
	for i := 3; i < 6; i++ {
		if assign[i] != 1 {
			t.Errorf("report %d assigned to %d", i, assign[i])
		}
	}
	// Nil representatives are skipped; all-nil → trash.
	assign = Relocate(cx, corpus.Transactions, []*txn.Transaction{nil, nil})
	for _, a := range assign {
		if a != TrashCluster {
			t.Errorf("expected trash with nil reps, got %d", a)
		}
	}
}

func TestXKMeansTwoGroups(t *testing.T) {
	corpus := twoTopicDocs(t, 5)
	cx := ctxFor(corpus, 0.5, 0.6)
	// An unlucky seed can draw both initial representatives from one group
	// (the other group then lands in the trash cluster, which is legitimate
	// behavior); pick the first seed whose initial selection spans both.
	var cl *Clustering
	for seed := int64(0); seed < 10; seed++ {
		init := SelectInitial(corpus.Transactions, 2, rand.New(rand.NewSource(seed)))
		if len(init) == 2 && (init[0].Doc < 5) != (init[1].Doc < 5) {
			cl = XKMeans(cx, corpus.Transactions, Config{K: 2, Seed: seed})
			break
		}
	}
	if cl == nil {
		t.Fatal("no seed produced cross-group initial representatives")
	}
	if cl.Iterations == 0 || cl.Iterations > DefaultMaxIter {
		t.Fatalf("iterations = %d", cl.Iterations)
	}
	// Perfect separation: each group lands in one cluster.
	first := cl.Assign[0]
	if first == TrashCluster {
		t.Fatal("paper 0 in trash")
	}
	for i := 1; i < 5; i++ {
		if cl.Assign[i] != first {
			t.Errorf("papers split: %v", cl.Assign)
		}
	}
	second := cl.Assign[5]
	if second == first || second == TrashCluster {
		t.Fatalf("reports not separated: %v", cl.Assign)
	}
	for i := 6; i < 10; i++ {
		if cl.Assign[i] != second {
			t.Errorf("reports split: %v", cl.Assign)
		}
	}
	if cl.Sizes[first] != 5 || cl.Sizes[second] != 5 {
		t.Errorf("sizes = %v", cl.Sizes)
	}
}

func TestXKMeansDeterministic(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := ctxFor(corpus, 0.5, 0.6)
	a := XKMeans(cx, corpus.Transactions, Config{K: 2, Seed: 11})
	b := XKMeans(cx, corpus.Transactions, Config{K: 2, Seed: 11})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignments differ across identical runs")
		}
	}
}

func TestXKMeansKOne(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.5)
	cl := XKMeans(cx, corpus.Transactions, Config{K: 1, Seed: 1})
	nonTrash := 0
	for _, a := range cl.Assign {
		if a == 0 {
			nonTrash++
		}
	}
	if nonTrash == 0 {
		t.Error("k=1 clustered nothing")
	}
}

func TestSSE(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:3]
	rep := ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers)
	assign := []int{0, 0, 0}
	sse := SSE(cx, papers, assign, []*txn.Transaction{rep})
	if sse < 0 || sse > 3 {
		t.Errorf("sse = %v out of range", sse)
	}
	// Trash assignments contribute 1 each.
	sseTrash := SSE(cx, papers, []int{-1, -1, -1}, []*txn.Transaction{rep})
	if sseTrash != 3 {
		t.Errorf("trash sse = %v, want 3", sseTrash)
	}
}

func TestMembersAndSortedSizes(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	cl := XKMeans(cx, corpus.Transactions, Config{K: 2, Seed: 3})
	total := 0
	for j := 0; j < 2; j++ {
		total += len(cl.Members(corpus.Transactions, j))
	}
	if total > len(corpus.Transactions) {
		t.Errorf("members exceed transactions")
	}
	sizes := SortedClusterSizes(cl)
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] < sizes[i] {
			t.Errorf("sizes not descending: %v", sizes)
		}
	}
}

func TestGenerateTreeTupleRules(t *testing.T) {
	corpus := twoTopicDocs(t, 4)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:4]
	for _, rule := range []ReturnRule{ReturnBestObjective, ReturnLastImproving, ReturnPrevious} {
		rep := ComputeLocalRepresentative(RepConfig{Ctx: cx, Rule: rule}, papers)
		if rep == nil || rep.Len() == 0 {
			t.Errorf("rule %d produced empty representative", rule)
		}
	}
}

func BenchmarkComputeLocalRepresentative(b *testing.B) {
	corpus := twoTopicDocs(b, 8)
	cx := ctxFor(corpus, 0.5, 0.6)
	papers := corpus.Transactions[:8]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLocalRepresentative(RepConfig{Ctx: cx}, papers)
	}
}

func BenchmarkXKMeans(b *testing.B) {
	corpus := twoTopicDocs(b, 10)
	cx := ctxFor(corpus, 0.5, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XKMeans(cx, corpus.Transactions, Config{K: 2, Seed: int64(i)})
	}
}

// ---------------------------------------------------------------- Workers

// synthCorpus builds one of the synthetic corpora via the dataset
// generators (used by the Workers-equivalence tests, which want varied
// schema/content geometry rather than the toy two-topic docs).
func synthCorpus(t testing.TB, ds string, docs int) (*txn.Corpus, int) {
	t.Helper()
	gen, ok := dataset.ByName(ds)
	if !ok {
		t.Fatalf("unknown dataset %q", ds)
	}
	col := gen(dataset.Spec{Docs: docs, Seed: 99})
	corpus := col.BuildCorpus(dataset.ByHybrid, 24, 1)
	return corpus, col.K(dataset.ByHybrid)
}

// assertClusteringsEqual fails unless the two clusterings are
// byte-identical: same assignments, sizes, iteration count and
// representative item sets.
func assertClusteringsEqual(t *testing.T, label string, want, got *Clustering) {
	t.Helper()
	if want.Iterations != got.Iterations {
		t.Errorf("%s: iterations %d vs %d", label, want.Iterations, got.Iterations)
	}
	if len(want.Assign) != len(got.Assign) {
		t.Fatalf("%s: assign length %d vs %d", label, len(want.Assign), len(got.Assign))
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: assignment %d differs: %d vs %d", label, i, want.Assign[i], got.Assign[i])
		}
	}
	for j := range want.Sizes {
		if want.Sizes[j] != got.Sizes[j] {
			t.Errorf("%s: size of cluster %d differs: %d vs %d", label, j, want.Sizes[j], got.Sizes[j])
		}
	}
	if !repsEqual(want.Reps, got.Reps) {
		t.Errorf("%s: representatives differ", label)
	}
}

// TestXKMeansWorkersEquivalence asserts the tentpole determinism guarantee:
// for a fixed seed, Workers: N produces output byte-identical to
// Workers: 1 — identical Assign, Reps, Sizes and Iterations — on several
// synthetic corpora and seeds.
func TestXKMeansWorkersEquivalence(t *testing.T) {
	cases := []struct {
		ds   string
		docs int
	}{
		{"DBLP", 24},
		{"IEEE", 6},
		{"Shakespeare", 2},
	}
	for _, tc := range cases {
		corpus, k := synthCorpus(t, tc.ds, tc.docs)
		cx := ctxFor(corpus, 0.5, 0.7)
		for _, seed := range []int64{3, 17} {
			serial := XKMeans(cx, corpus.Transactions, Config{K: k, Seed: seed, Workers: 1})
			for _, w := range []int{2, 4, 0} {
				par := XKMeans(cx, corpus.Transactions, Config{K: k, Seed: seed, Workers: w})
				assertClusteringsEqual(t, fmt.Sprintf("%s seed=%d workers=%d", tc.ds, seed, w), serial, par)
			}
		}
	}
}

// TestRelocateWorkersEquivalence checks the relocation step alone across
// worker counts, including the trash-cluster and tie-to-lowest-index rules.
func TestRelocateWorkersEquivalence(t *testing.T) {
	corpus, _ := synthCorpus(t, "DBLP", 16)
	cx := ctxFor(corpus, 0.5, 0.7)
	rng := rand.New(rand.NewSource(5))
	reps := SelectInitial(corpus.Transactions, 4, rng)
	reps = append(reps, nil) // nil reps must never win, under any schedule
	serial := Relocate(cx, corpus.Transactions, reps)
	for _, w := range []int{2, 3, 8, 0} {
		got := RelocateWorkers(cx, corpus.Transactions, reps, w)
		for i := range serial {
			if serial[i] != got[i] {
				t.Fatalf("workers=%d: assignment %d differs: %d vs %d", w, i, serial[i], got[i])
			}
		}
	}
}

// TestRepresentativeWorkersEquivalence checks local and global
// representative generation across worker counts and return rules.
func TestRepresentativeWorkersEquivalence(t *testing.T) {
	corpus, _ := synthCorpus(t, "IEEE", 6)
	cx := ctxFor(corpus, 0.5, 0.7)
	half := len(corpus.Transactions) / 2
	for _, rule := range []ReturnRule{ReturnBestObjective, ReturnLastImproving, ReturnPrevious} {
		serial := ComputeLocalRepresentative(RepConfig{Ctx: cx, Rule: rule, Workers: 1}, corpus.Transactions[:half])
		for _, w := range []int{4, 0} {
			got := ComputeLocalRepresentative(RepConfig{Ctx: cx, Rule: rule, Workers: w}, corpus.Transactions[:half])
			if (serial == nil) != (got == nil) || (serial != nil && !serial.Equal(got)) {
				t.Errorf("rule %d workers %d: local representative differs", rule, w)
			}
		}
	}
	l1 := ComputeLocalRepresentative(RepConfig{Ctx: cx, Workers: 1}, corpus.Transactions[:half])
	l2 := ComputeLocalRepresentative(RepConfig{Ctx: cx, Workers: 1}, corpus.Transactions[half:])
	wreps := []WeightedRep{{Rep: l1, Weight: half}, {Rep: l2, Weight: len(corpus.Transactions) - half}}
	serial := ComputeGlobalRepresentative(RepConfig{Ctx: cx, Workers: 1}, wreps)
	for _, w := range []int{4, 0} {
		got := ComputeGlobalRepresentative(RepConfig{Ctx: cx, Workers: w}, wreps)
		if (serial == nil) != (got == nil) || (serial != nil && !serial.Equal(got)) {
			t.Errorf("workers %d: global representative differs", w)
		}
	}
}

// TestRelocateOneMatchesRelocate pins the single-transaction kernel (the
// serving layer's classify path) to the batch relocation it was factored out
// of: same winner, and a winning similarity consistent with a direct
// TransactionsAtLeast evaluation.
func TestRelocateOneMatchesRelocate(t *testing.T) {
	corpus := twoTopicDocs(t, 3)
	cx := ctxFor(corpus, 0.5, 0.6)
	reps := []*txn.Transaction{
		ComputeLocalRepresentative(RepConfig{Ctx: cx}, corpus.Transactions[:3]),
		ComputeLocalRepresentative(RepConfig{Ctx: cx}, corpus.Transactions[3:]),
	}
	batch := Relocate(cx, corpus.Transactions, reps)
	sc := sim.NewScratch()
	for i, tr := range corpus.Transactions {
		gotJ, gotSim := RelocateOne(cx, tr, reps, sc)
		if gotJ != batch[i] {
			t.Errorf("transaction %d: RelocateOne chose %d, Relocate chose %d", i, gotJ, batch[i])
		}
		if gotJ == TrashCluster {
			if gotSim != 0 {
				t.Errorf("transaction %d: trash with sim %g", i, gotSim)
			}
			continue
		}
		// The reported similarity must be the exact pairwise value of the
		// winner (threshold −1 disables pruning for the reference value).
		want := cx.TransactionsAtLeast(tr, reps[gotJ], -1, sc)
		if gotSim != want {
			t.Errorf("transaction %d: RelocateOne sim %g, direct %g", i, gotSim, want)
		}
		// nil scratch must allocate and agree.
		j2, s2 := RelocateOne(cx, tr, reps, nil)
		if j2 != gotJ || s2 != gotSim {
			t.Errorf("transaction %d: nil-scratch RelocateOne (%d,%g) != (%d,%g)", i, j2, s2, gotJ, gotSim)
		}
	}
	// Nil and empty representative sets are trash.
	if j, s := RelocateOne(cx, corpus.Transactions[0], nil, sc); j != TrashCluster || s != 0 {
		t.Errorf("empty reps: got (%d,%g)", j, s)
	}
	if j, _ := RelocateOne(cx, corpus.Transactions[0], []*txn.Transaction{nil, nil}, sc); j != TrashCluster {
		t.Errorf("all-nil reps: got cluster %d", j)
	}
}
