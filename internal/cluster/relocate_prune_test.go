package cluster

import (
	"math/rand"
	"testing"

	"xmlclust/internal/sim"
	"xmlclust/internal/txn"
)

// unprunedRelocate is the pre-kernel relocation semantics: every
// (transaction, representative) pair evaluated to completion with the full
// Eq. 4 similarity, argmax with ties to the lowest representative index.
// It is the oracle for the pruning equivalence test.
func unprunedRelocate(cx *sim.Context, s []*txn.Transaction, reps []*txn.Transaction) []int {
	assign := make([]int, len(s))
	for i, tr := range s {
		best, bestJ := 0.0, TrashCluster
		for j, rep := range reps {
			if rep == nil || rep.Len() == 0 {
				continue
			}
			v := cx.Transactions(tr, rep, nil)
			if v > best {
				best, bestJ = v, j
			}
		}
		assign[i] = bestJ
	}
	return assign
}

// TestRelocatePruningEquivalence pins the branch-and-bound assignment path
// byte-identical to the unpruned full evaluation, across parameter settings
// (including the tie-heavy γ = 0 and structure-only cases), with both raw
// initial representatives and synthetic (conflated) refined ones, for
// workers ∈ {1, 4}.
func TestRelocatePruningEquivalence(t *testing.T) {
	corpus := twoTopicDocs(t, 10)
	s := corpus.Transactions
	for _, p := range []sim.Params{
		{F: 0, Gamma: 0},
		{F: 0.5, Gamma: 0.6},
		{F: 0.5, Gamma: 0.9},
		{F: 1, Gamma: 0.7},
	} {
		cx := sim.NewContext(corpus, p)
		rng := rand.New(rand.NewSource(31))
		initial := SelectInitial(s, 4, rng)
		// Refined representatives contain conflated synthetic items — the
		// shape Relocate sees from round two onwards.
		cl := XKMeans(cx, s, Config{K: 4, MaxIter: 3, Seed: 31, Workers: 1})
		for _, reps := range [][]*txn.Transaction{initial, cl.Reps} {
			want := unprunedRelocate(cx, s, reps)
			for _, workers := range []int{1, 4} {
				got := RelocateWorkers(cx, s, reps, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("params %+v workers %d: pruned assignment diverges at %d: %d != %d",
							p, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSSEWorkersEquivalence pins the scratch-reusing parallel SSE to the
// serial objective bit for bit.
func TestSSEWorkersEquivalence(t *testing.T) {
	corpus := twoTopicDocs(t, 8)
	s := corpus.Transactions
	cx := sim.NewContext(corpus, sim.Params{F: 0.5, Gamma: 0.6})
	cl := XKMeans(cx, s, Config{K: 3, MaxIter: 4, Seed: 5, Workers: 1})
	want := SSE(cx, s, cl.Assign, cl.Reps)
	for _, workers := range []int{2, 4, 8} {
		if got := SSEWorkers(cx, s, cl.Assign, cl.Reps, workers); got != want {
			t.Fatalf("SSEWorkers(%d) = %v, serial %v", workers, got, want)
		}
	}
}
